// Standalone scenario replay: loads a .scn pack, replays it against the
// single and/or sharded engine, prints the summary, optionally dumps the
// deterministic metrics JSON, and exits non-zero when any envelope fails.
// --check-replay replays each selected engine twice and demands
// byte-identical JSON — the CI scenario-smoke gate.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/pack.h"
#include "scenario/runner.h"
#include "util/string_util.h"

namespace {

using crowdrtse::scenario::LoadPackFile;
using crowdrtse::scenario::Pack;
using crowdrtse::scenario::RunnerOptions;
using crowdrtse::scenario::RunReport;
using crowdrtse::scenario::RunScenario;

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --pack <file.scn> [options]\n"
      << "  --pack <file>          scenario pack to replay (required)\n"
      << "  --seed <n>             replay seed (default: the pack's seed)\n"
      << "  --engine <kind>        single | sharded | both (default single)\n"
      << "  --shards <k>           shard count (default: the pack's)\n"
      << "  --json_out <file>      write the deterministic metrics JSON\n"
      << "  --flight_dump <stem>   on envelope failure, dump the flight\n"
      << "                         recorder to <stem>.<engine>.flight.json\n"
      << "  --check-replay         replay twice, fail on any byte diff\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string pack_path;
  std::string engine = "single";
  std::string json_out;
  std::string flight_dump;
  uint64_t seed = 0;
  int shards = 0;
  bool check_replay = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--pack" && has_value) {
      pack_path = argv[++i];
    } else if (arg == "--seed" && has_value) {
      auto parsed = crowdrtse::util::ParseInt(argv[++i]);
      if (!parsed.ok() || *parsed < 0) {
        std::cerr << "bad --seed\n";
        return 2;
      }
      seed = static_cast<uint64_t>(*parsed);
    } else if (arg == "--engine" && has_value) {
      engine = argv[++i];
    } else if (arg == "--shards" && has_value) {
      auto parsed = crowdrtse::util::ParseInt(argv[++i]);
      if (!parsed.ok() || *parsed < 1) {
        std::cerr << "bad --shards\n";
        return 2;
      }
      shards = *parsed;
    } else if (arg == "--json_out" && has_value) {
      json_out = argv[++i];
    } else if (arg == "--flight_dump" && has_value) {
      flight_dump = argv[++i];
    } else if (arg == "--check-replay") {
      check_replay = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (pack_path.empty()) return Usage(argv[0]);
  if (engine != "single" && engine != "sharded" && engine != "both") {
    return Usage(argv[0]);
  }

  auto pack = LoadPackFile(pack_path);
  if (!pack.ok()) {
    std::cerr << "failed to load " << pack_path << ": "
              << pack.status().ToString() << "\n";
    return 1;
  }

  std::vector<RunnerOptions::EngineKind> kinds;
  if (engine == "single" || engine == "both") {
    kinds.push_back(RunnerOptions::EngineKind::kSingle);
  }
  if (engine == "sharded" || engine == "both") {
    kinds.push_back(RunnerOptions::EngineKind::kSharded);
  }

  bool all_passed = true;
  std::string json_payload;
  for (const auto kind : kinds) {
    RunnerOptions options;
    options.engine = kind;
    options.seed = seed;
    options.shards = shards;
    if (!flight_dump.empty()) {
      // Per-engine file so a --engine both run keeps both dumps.
      options.flight_dump_path =
          flight_dump + "." +
          crowdrtse::scenario::EngineKindName(kind) + ".flight.json";
    }
    auto report = RunScenario(*pack, options);
    if (!report.ok()) {
      std::cerr << "replay failed: " << report.status().ToString() << "\n";
      return 1;
    }
    std::cout << report->Summary();
    if (!report->AllPassed()) all_passed = false;

    const std::string json = report->ToJson();
    if (check_replay) {
      auto again = RunScenario(*pack, options);
      if (!again.ok()) {
        std::cerr << "second replay failed: " << again.status().ToString()
                  << "\n";
        return 1;
      }
      if (again->ToJson() != json) {
        std::cerr << "REPLAY MISMATCH (" << report->engine
                  << "): two runs of the same (pack, seed) differ\n"
                  << "first:  " << json << "\n"
                  << "second: " << again->ToJson() << "\n";
        return 1;
      }
      std::cout << "replay check OK (" << report->engine << "): digest "
                << "stable across runs\n";
    }
    if (!json_payload.empty()) json_payload += "\n";
    json_payload += json;
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::cerr << "cannot write " << json_out << "\n";
      return 1;
    }
    out << json_payload << "\n";
  }

  return all_passed ? 0 : 1;
}
