// Performance-trend gate (CI): compares a fresh reduced-sweep bench run
// against the committed baseline JSON and fails on regression.
//
// Raw ns_per_op and QPS numbers are machine-speed dependent — a CI runner
// is not the machine the baselines were recorded on — so the gate compares
// only the RATIO metrics the bench artifacts carry (speedups and scaling
// factors, which divide the machine speed out) plus hard invariants that
// must hold on any machine:
//   microkernels  gsp_speedup_reference_to_auto        (band, default 50%)
//                 gamma_refresh_speedup_full_to_incremental (band, 50%)
//                 every baseline kernel still present in the fresh run
//   scale         qps_ratio_1_to_max                   (band, default 50%)
//                 failed == 0 at every sweep point; served > 0
// A band of t means the fresh ratio must stay >= baseline * (1 - t); the
// upper side is unchecked — getting faster is not a regression.
//
// Usage: bench_trend --baseline=PATH --fresh=PATH --kind=micro|scale
//                    [--tolerance=0.5]
// Exits nonzero after printing every violated band, so the perf-trend CI
// job reports the full diagnosis in one run.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "net/json.h"
#include "util/status.h"

namespace crowdrtse::tools {
namespace {

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (ok) return;
  std::printf("FAIL: %s\n", what.c_str());
  ++g_failures;
}

util::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::InvalidArgument("cannot read " + path);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// One banded ratio comparison: fresh must reach baseline * (1 - tol).
void CheckRatio(const net::json::Value& baseline, const net::json::Value& fresh,
                const std::string& key, double tolerance) {
  const net::json::Value* base = baseline.Find(key);
  const net::json::Value* now = fresh.Find(key);
  Check(base != nullptr, "baseline lacks metric " + key);
  Check(now != nullptr, "fresh run lacks metric " + key);
  if (base == nullptr || now == nullptr) return;
  const double floor = base->AsDouble() * (1.0 - tolerance);
  const bool ok = now->AsDouble() >= floor;
  std::printf("%-44s baseline %8.2f  fresh %8.2f  floor %8.2f  %s\n",
              key.c_str(), base->AsDouble(), now->AsDouble(), floor,
              ok ? "ok" : "REGRESSED");
  Check(ok, key + " regressed below the tolerance band");
}

/// Every kernel the baseline measured must still exist in the fresh run —
/// a dropped kernel would silently shrink coverage, not show as a ratio.
void CheckMicrokernels(const net::json::Value& baseline,
                       const net::json::Value& fresh, double tolerance) {
  CheckRatio(baseline, fresh, "gsp_speedup_reference_to_auto", tolerance);
  CheckRatio(baseline, fresh, "gamma_refresh_speedup_full_to_incremental",
             tolerance);

  const net::json::Value* base_kernels = baseline.Find("kernels");
  const net::json::Value* fresh_kernels = fresh.Find("kernels");
  Check(base_kernels != nullptr, "baseline lacks a kernels array");
  Check(fresh_kernels != nullptr, "fresh run lacks a kernels array");
  if (base_kernels == nullptr || fresh_kernels == nullptr) return;
  std::set<std::string> seen;
  for (const auto& k : fresh_kernels->AsArray()) {
    const net::json::Value* name = k.Find("kernel");
    const net::json::Value* ns = k.Find("ns_per_op");
    if (name != nullptr) seen.insert(name->AsString());
    Check(ns != nullptr && ns->AsDouble() > 0.0,
          "fresh kernel has a non-positive ns_per_op");
  }
  for (const auto& k : base_kernels->AsArray()) {
    const net::json::Value* name = k.Find("kernel");
    if (name == nullptr) continue;
    Check(seen.count(name->AsString()) == 1,
          "kernel '" + name->AsString() + "' vanished from the fresh run");
  }
}

void CheckScale(const net::json::Value& baseline, const net::json::Value& fresh,
                double tolerance) {
  CheckRatio(baseline, fresh, "qps_ratio_1_to_max", tolerance);

  const net::json::Value* sweep = fresh.Find("sweep");
  Check(sweep != nullptr, "fresh run lacks a sweep array");
  if (sweep == nullptr) return;
  Check(!sweep->AsArray().empty(), "fresh sweep is empty");
  for (const auto& point : sweep->AsArray()) {
    const net::json::Value* shards = point.Find("shards");
    const net::json::Value* failed = point.Find("failed");
    const net::json::Value* served = point.Find("served");
    const std::string at =
        shards != nullptr
            ? std::to_string(static_cast<int64_t>(shards->AsDouble()))
            : "?";
    Check(failed != nullptr && failed->AsDouble() == 0.0,
          "sweep point shards=" + at + " has failed queries");
    Check(served != nullptr && served->AsDouble() > 0.0,
          "sweep point shards=" + at + " served nothing");
  }
}

int Run(int argc, char** argv) {
  std::string baseline_path;
  std::string fresh_path;
  std::string kind;
  double tolerance = 0.5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--fresh=", 0) == 0) {
      fresh_path = arg.substr(8);
    } else if (arg.rfind("--kind=", 0) == 0) {
      kind = arg.substr(7);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::strtod(arg.c_str() + 12, nullptr);
    } else {
      std::printf("unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (baseline_path.empty() || fresh_path.empty() ||
      (kind != "micro" && kind != "scale")) {
    std::printf(
        "usage: bench_trend --baseline=PATH --fresh=PATH"
        " --kind=micro|scale [--tolerance=0.5]\n");
    return 2;
  }
  if (tolerance <= 0.0 || tolerance >= 1.0) {
    std::printf("tolerance must be in (0, 1), got %f\n", tolerance);
    return 2;
  }

  const auto baseline_text = ReadFile(baseline_path);
  const auto fresh_text = ReadFile(fresh_path);
  Check(baseline_text.ok(), "baseline: " + baseline_text.status().message());
  Check(fresh_text.ok(), "fresh: " + fresh_text.status().message());
  if (g_failures > 0) return 1;

  const auto baseline = net::json::Parse(*baseline_text);
  const auto fresh = net::json::Parse(*fresh_text);
  Check(baseline.ok(), "baseline is not valid JSON: " + baseline_path);
  Check(fresh.ok(), "fresh run is not valid JSON: " + fresh_path);
  if (g_failures > 0) return 1;

  std::printf("bench trend %s: %s vs %s (tolerance %.0f%%)\n", kind.c_str(),
              fresh_path.c_str(), baseline_path.c_str(), tolerance * 100.0);
  if (kind == "micro") {
    CheckMicrokernels(*baseline, *fresh, tolerance);
  } else {
    CheckScale(*baseline, *fresh, tolerance);
  }

  if (g_failures > 0) {
    std::printf("bench trend FAILED: %d violations\n", g_failures);
    return 1;
  }
  std::printf("bench trend OK\n");
  return 0;
}

}  // namespace
}  // namespace crowdrtse::tools

int main(int argc, char** argv) {
  return crowdrtse::tools::Run(argc, argv);
}
