// Serving smoke checker (CI): boots the network front-end over a real
// QueryEngine, drives queries over both wire protocols, and validates the
// whole serve path end to end —
//   * HTTP/1.1 queries answer with well-formed JSON (status, shed level,
//     speeds aligned with the asked roads);
//   * pipelined binary frames on the same port answer frame-for-frame;
//   * /healthz, /metrics, /metrics.json and /stats agree with the number
//     of queries actually served (the Prometheus counter, the JSON
//     rendering, and the front-end report are cross-checked);
//   * the admin channel round-trips a knob (get / set / get) and "drain"
//     flips the front-end into explicit 503 "draining" rejections while
//     the observability GETs keep serving;
//   * a burst against a deliberately tiny admission queue degrades before
//     it drops: every request receives exactly one explicit response, and
//     the shed ladder (none / budget_cap / periodic_fallback / reject)
//     accounts for all of them.
// Exits nonzero after printing every violation, so CI gets a complete
// diagnosis in one run. The /metrics scrape and /metrics.json body are
// left next to the binary for upload.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "semi_synthetic.h"
#include "net/frame.h"
#include "net/http.h"
#include "net/json.h"
#include "net/socket.h"
#include "server/budget_ledger.h"
#include "server/frontend.h"
#include "server/query_engine.h"
#include "server/worker_registry.h"
#include "util/logging.h"
#include "util/rng.h"

namespace crowdrtse::tools {
namespace {

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (ok) return;
  std::printf("FAIL: %s\n", what.c_str());
  ++g_failures;
}

void WriteArtifact(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  Check(file != nullptr, "cannot write artifact " + path);
  if (file == nullptr) return;
  std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

std::string RoadsJson(const std::vector<graph::RoadId>& roads) {
  std::string out = "[";
  for (size_t i = 0; i < roads.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(roads[i]);
  }
  return out + "]";
}

std::string QueryJson(int64_t id, int slot,
                      const std::vector<graph::RoadId>& roads) {
  return "{\"id\":" + std::to_string(id) +
         ",\"slot\":" + std::to_string(slot) +
         ",\"roads\":" + RoadsJson(roads) + "}";
}

util::Status Post(int fd, const std::string& target, const std::string& body,
                  int* status, std::string* response_body) {
  const std::string wire = "POST " + target + " HTTP/1.1\r\nContent-Length: " +
                           std::to_string(body.size()) + "\r\n\r\n" + body;
  CROWDRTSE_RETURN_IF_ERROR(net::WriteAll(fd, wire));
  return net::ReadHttpResponse(fd, status, response_body);
}

util::Status Get(int fd, const std::string& target, int* status,
                 std::string* response_body) {
  CROWDRTSE_RETURN_IF_ERROR(
      net::WriteAll(fd, "GET " + target + " HTTP/1.1\r\n\r\n"));
  return net::ReadHttpResponse(fd, status, response_body);
}

/// Reads one length-prefixed frame off a blocking fd and returns its
/// payload; an empty result already registered the failure.
std::string ReadFrame(int fd) {
  std::string header;
  if (!net::ReadExact(fd, net::kFrameHeaderBytes, &header).ok()) {
    Check(false, "short read on frame header");
    return std::string();
  }
  uint32_t magic = 0, length = 0;
  std::memcpy(&magic, header.data(), 4);
  std::memcpy(&length, header.data() + 4, 4);
  Check(magic == net::kFrameMagic, "frame response has bad magic");
  std::string payload;
  if (!net::ReadExact(fd, length, &payload).ok()) {
    Check(false, "short read on frame payload");
    return std::string();
  }
  return payload;
}

/// Validates one successful /query response body; returns the parsed shed
/// level name ("" on malformed).
std::string ValidateQueryResponse(const std::string& body, int64_t want_id,
                                  size_t want_roads) {
  const auto doc = net::json::Parse(body);
  Check(doc.ok(), "query response is not valid JSON: " + body);
  if (!doc.ok()) return std::string();
  Check(doc->Find("status") != nullptr &&
            doc->Find("status")->AsString() == "ok",
        "query response status is not ok: " + body);
  Check(doc->Find("id") != nullptr && *doc->Find("id")->AsInt() == want_id,
        "query response id mismatch: " + body);
  const auto* speeds = doc->Find("speeds");
  Check(speeds != nullptr && speeds->AsArray().size() == want_roads,
        "query response speeds misaligned with the asked roads: " + body);
  if (speeds != nullptr) {
    for (const auto& s : speeds->AsArray()) {
      Check(s.AsDouble() > 0.0 && s.AsDouble() < 200.0,
            "query speed out of range: " + body);
    }
  }
  const auto* shed = doc->Find("shed");
  Check(shed != nullptr, "query response lacks a shed level: " + body);
  return shed != nullptr ? shed->AsString() : std::string();
}

int Run(const std::string& prom_path, const std::string& json_path) {
  // A small world keeps the smoke fast; the serving surface is the same.
  bench::WorldOptions world_options;
  world_options.num_roads = 120;
  world_options.num_days = 6;
  const bench::SemiSyntheticWorld world = bench::BuildWorld(world_options);
  auto system =
      core::CrowdRtse::BuildOffline(world.network, world.history, {});
  CROWDRTSE_CHECK(system.ok());

  server::WorkerRegistryOptions registry_options;
  registry_options.num_workers = world.network.num_roads() * 3;
  server::WorkerRegistry registry(world.network, registry_options, 5);
  const crowd::CostModel costs =
      crowd::CostModel::Constant(world.network.num_roads(), 2);
  server::BudgetLedger ledger(-1, /*per_query_cap=*/20);
  crowd::CrowdSimulator crowd_sim({}, util::Rng(9));
  server::QueryEngine engine(*system, registry, ledger, costs, crowd_sim);

  server::FrontendOptions options;
  options.num_workers = 2;
  server::Frontend frontend(engine, world.truth, options);
  CROWDRTSE_CHECK(frontend.Start().ok());
  std::printf("front-end listening on 127.0.0.1:%u\n", frontend.port());

  // --- HTTP protocol: liveness, then a handful of full-service queries.
  auto http = net::ConnectLocal(frontend.port());
  CROWDRTSE_CHECK(http.ok());
  int status = 0;
  std::string body;
  Check(Get(http->get(), "/healthz", &status, &body).ok() && status == 200 &&
            body == "ok\n",
        "/healthz did not answer ok");

  constexpr int kHttpQueries = 6;
  for (int q = 0; q < kHttpQueries; ++q) {
    const auto roads =
        bench::MakeQuery(world, 12, 300 + static_cast<uint64_t>(q));
    const int slot = 40 * (q + 1);
    Check(
        Post(http->get(), "/query", QueryJson(q, slot, roads), &status, &body)
            .ok(),
        "HTTP query transport failed");
    Check(status == 200, "HTTP query status " + std::to_string(status));
    const std::string shed = ValidateQueryResponse(body, q, roads.size());
    Check(shed == "none",
          "unloaded query was shed at level '" + shed + "'");
  }
  std::printf("http: %d queries served\n", kHttpQueries);

  // --- Frame protocol: pipeline every request, then match responses back
  // by id (workers complete out of order).
  auto framed = net::ConnectLocal(frontend.port());
  CROWDRTSE_CHECK(framed.ok());
  constexpr int kFrameQueries = 4;
  std::map<int64_t, size_t> frame_sizes;
  std::string wire;
  for (int q = 0; q < kFrameQueries; ++q) {
    const int64_t id = 100 + q;
    const auto roads =
        bench::MakeQuery(world, 10, 400 + static_cast<uint64_t>(q));
    frame_sizes[id] = roads.size();
    wire += net::EncodeFrame(QueryJson(id, 60, roads));
  }
  Check(net::WriteAll(framed->get(), wire).ok(), "frame pipeline write failed");
  for (int q = 0; q < kFrameQueries; ++q) {
    const std::string payload = ReadFrame(framed->get());
    if (payload.empty()) continue;
    const auto doc = net::json::Parse(payload);
    Check(doc.ok(), "frame payload is not valid JSON: " + payload);
    if (!doc.ok()) continue;
    const auto* id = doc->Find("id");
    Check(id != nullptr && frame_sizes.count(*id->AsInt()) == 1,
          "frame response id unknown: " + payload);
    if (id == nullptr || frame_sizes.count(*id->AsInt()) != 1) continue;
    ValidateQueryResponse(payload, *id->AsInt(),
                          frame_sizes[*id->AsInt()]);
    frame_sizes.erase(*id->AsInt());
  }
  Check(frame_sizes.empty(), "not every pipelined frame was answered");
  std::printf("frames: %d pipelined queries answered\n", kFrameQueries);

  // --- Observability: the scrape, the JSON rendering, and the report must
  // all agree with what was just served.
  const int64_t served = engine.stats().queries_served;
  Check(served == kHttpQueries + kFrameQueries,
        "engine served " + std::to_string(served) + " queries, drove " +
            std::to_string(kHttpQueries + kFrameQueries));

  std::string prometheus;
  Check(Get(http->get(), "/metrics", &status, &prometheus).ok() &&
            status == 200,
        "/metrics scrape failed");
  const std::string want_counter =
      "crowdrtse_queries_served_total " + std::to_string(served);
  Check(prometheus.find(want_counter) != std::string::npos,
        "/metrics lacks '" + want_counter + "'");
  Check(prometheus.find("# TYPE crowdrtse_serve_latency_ms histogram") !=
            std::string::npos,
        "/metrics lacks the serve latency histogram");

  std::string metrics_json;
  Check(Get(http->get(), "/metrics.json", &status, &metrics_json).ok() &&
            status == 200,
        "/metrics.json failed");
  const auto metrics = net::json::Parse(metrics_json);
  Check(metrics.ok(), "/metrics.json is not valid JSON");
  if (metrics.ok()) {
    const auto* counter = metrics->Find("crowdrtse_queries_served_total");
    Check(counter != nullptr && *counter->AsInt() == served,
          "/metrics.json served counter disagrees with the engine");
  }

  Check(Get(http->get(), "/stats", &status, &body).ok() && status == 200 &&
            body.find("Frontend:") != std::string::npos,
        "/stats lacks the front-end report");
  const server::FrontendStats fstats = frontend.stats();
  Check(fstats.queries_received == kHttpQueries + kFrameQueries,
        "front-end counted " + std::to_string(fstats.queries_received) +
            " queries");
  Check(fstats.frame_requests >= kFrameQueries,
        "front-end frame counter too low");
  WriteArtifact(prom_path, prometheus);
  WriteArtifact(json_path, metrics_json);

  // --- Admin channel: knob round-trip.
  Check(Post(http->get(), "/admin", "get capacity", &status, &body).ok() &&
            status == 200 && body == "capacity = 64\n",
        "admin 'get capacity' answered '" + body + "'");
  Check(Post(http->get(), "/admin", "set shed_low 3", &status, &body).ok() &&
            status == 200 && body == "ok: shed_low = 3\n",
        "admin 'set shed_low 3' answered '" + body + "'");
  Check(Post(http->get(), "/admin", "get shed_low", &status, &body).ok() &&
            body == "shed_low = 3\n",
        "admin knob did not stick: '" + body + "'");
  Check(Post(http->get(), "/admin", "bogus", &status, &body).ok() &&
            body.rfind("error:", 0) == 0,
        "admin accepted an unknown command: '" + body + "'");

  // --- Overload: a second front-end with a tiny queue and one slow worker.
  // Every concurrent request must come back with exactly one explicit
  // response; the ladder accounts for all of them (degrade before drop).
  server::FrontendOptions tight;
  tight.num_workers = 1;
  tight.admission.capacity = 2;
  tight.admission.shed_low_watermark = 1;
  tight.admission.hard_capacity = 4;
  server::Frontend overloaded(engine, world.truth, tight);
  CROWDRTSE_CHECK(overloaded.Start().ok());
  constexpr int kBurst = 12;
  std::atomic<int> transport_errors{0}, ok_count{0}, rejected{0};
  std::atomic<int> shed_counts[3] = {{0}, {0}, {0}};  // none/cap/fallback
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kBurst; ++c) {
      clients.emplace_back([&, c] {
        auto conn = net::ConnectLocal(overloaded.port());
        if (!conn.ok()) {
          ++transport_errors;
          return;
        }
        const auto roads =
            bench::MakeQuery(world, 8, 500 + static_cast<uint64_t>(c));
        int st = 0;
        std::string resp;
        if (!Post(conn->get(), "/query", QueryJson(c, 80, roads), &st, &resp)
                 .ok()) {
          ++transport_errors;
          return;
        }
        const auto doc = net::json::Parse(resp);
        if (!doc.ok() || doc->Find("status") == nullptr) {
          ++transport_errors;
          return;
        }
        const std::string word = doc->Find("status")->AsString();
        if (word == "ok") {
          ++ok_count;
          const std::string shed = doc->Find("shed")->AsString();
          if (shed == "none") ++shed_counts[0];
          if (shed == "budget_cap") ++shed_counts[1];
          if (shed == "periodic_fallback") ++shed_counts[2];
        } else if (word == "rejected") {
          ++rejected;
        }
      });
    }
    for (std::thread& c : clients) c.join();
  }
  Check(transport_errors.load() == 0, "overload burst lost responses");
  Check(ok_count.load() + rejected.load() == kBurst,
        "overload responses do not account for every request");
  Check(shed_counts[0].load() + shed_counts[1].load() +
                shed_counts[2].load() ==
            ok_count.load(),
        "shed levels do not account for every served query");
  std::printf(
      "overload: %d requests -> %d full, %d budget-capped, %d fallback, "
      "%d rejected, 0 silent\n",
      kBurst, shed_counts[0].load(), shed_counts[1].load(),
      shed_counts[2].load(), rejected.load());
  overloaded.Shutdown();

  // --- Drain: admitted no more, observability still up.
  Check(Post(http->get(), "/admin", "drain", &status, &body).ok() &&
            body.find("draining") != std::string::npos,
        "admin 'drain' answered '" + body + "'");
  Check(Post(http->get(), "/query",
             QueryJson(999, 80, bench::MakeQuery(world, 8, 600)), &status,
             &body)
                .ok() &&
            status == 503,
        "draining front-end did not answer 503");
  const auto drained = net::json::Parse(body);
  Check(drained.ok() && drained->Find("status")->AsString() == "rejected",
        "draining rejection is not explicit: " + body);
  Check(Get(http->get(), "/healthz", &status, &body).ok() && status == 200,
        "/healthz went down during drain");
  frontend.Shutdown();

  if (g_failures > 0) {
    std::printf("serve smoke FAILED: %d violations\n", g_failures);
    return 1;
  }
  std::printf("serve smoke OK: both protocols, observability, admin, "
              "overload ladder, drain\n");
  return 0;
}

}  // namespace
}  // namespace crowdrtse::tools

int main(int argc, char** argv) {
  const std::string prom_path =
      argc > 1 ? argv[1] : "serve_smoke_metrics.prom";
  const std::string json_path =
      argc > 2 ? argv[2] : "serve_smoke_metrics.json";
  return crowdrtse::tools::Run(prom_path, json_path);
}
