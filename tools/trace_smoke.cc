// Tracing smoke checker (CI): serves a small faulted query batch at
// trace_sample_rate = 1.0, exports the Chrome trace and the Prometheus
// exposition, and validates both structurally —
//   * the trace is well-formed JSON with a traceEvents array;
//   * every served query id appears as a tid, every span's parent resolves
//     inside its own trace, child windows nest inside their parents, and
//     each query has exactly one root span named "serve" plus the expected
//     phase spans (ocs, crowd.dispatch with crowd.attempt children under
//     the fault storm, gsp.propagate);
//   * the Prometheus text parses line by line (exemplar suffixes
//     tolerated), histogram bucket series are cumulative, and the counters
//     match EngineStats;
//   * a cross-shard query against a K=4 sharded engine over the 607-road
//     world produces ONE stitched trace at /trace/<id>: every parent span
//     resolves (no orphans), a single root "serve", per-shard "shard"
//     children covering every owner shard, and a "merge" span — plus a
//     /debug/flight dump that parses and contains the shard.split event.
// Exits nonzero on the first class of failure, printing every violation,
// so CI gets a complete diagnosis in one run. The two artifacts are left
// next to the binary for upload.
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "semi_synthetic.h"
#include "crowd/fault_plan.h"
#include "graph/generators.h"
#include "net/http.h"
#include "net/json.h"
#include "net/socket.h"
#include "obs/flight_recorder.h"
#include "partition/partitioner.h"
#include "server/budget_ledger.h"
#include "server/frontend.h"
#include "server/query_engine.h"
#include "server/sharded_engine.h"
#include "server/worker_registry.h"
#include "traffic/traffic_simulator.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/logging.h"

namespace crowdrtse::tools {
namespace {

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (ok) return;
  std::printf("FAIL: %s\n", what.c_str());
  ++g_failures;
}

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough DOM to walk the Chrome trace export.
// Rejects malformed input (that is the point of the smoke test); tolerates
// duplicate keys by keeping all pairs.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole input as one value; false on any syntax error or
  /// trailing garbage.
  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + static_cast<size_t>(i)]))) {
                return false;
              }
            }
            pos_ += 4;
            out->push_back('?');  // codepoint value is irrelevant here
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_++] != ':') return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null");
    }
    // Number.
    char* end = nullptr;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    pos_ = static_cast<size_t>(end - text_.c_str());
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Chrome trace validation.

struct SpanEvent {
  std::string name;
  int64_t span_id = 0;
  int64_t parent = 0;
  double ts = 0.0;
  double dur = 0.0;
};

void ValidateChromeTrace(const std::string& json,
                         const std::vector<int64_t>& query_ids) {
  JsonValue root;
  Check(JsonParser(json).Parse(&root), "chrome trace is not well-formed JSON");
  if (g_failures > 0) return;
  Check(root.kind == JsonValue::Kind::kObject, "trace root is not an object");
  const JsonValue* events = root.Find("traceEvents");
  Check(events != nullptr && events->kind == JsonValue::Kind::kArray,
        "trace has no traceEvents array");
  if (g_failures > 0) return;

  // Group complete ("X") span events by tid == query id.
  std::map<int64_t, std::vector<SpanEvent>> by_query;
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.Find("ph");
    const JsonValue* tid = event.Find("tid");
    Check(ph != nullptr && tid != nullptr, "event lacks ph/tid");
    if (ph == nullptr || tid == nullptr) continue;
    if (ph->string != "X") continue;  // skip thread_name metadata
    const JsonValue* args = event.Find("args");
    const JsonValue* name = event.Find("name");
    const JsonValue* ts = event.Find("ts");
    const JsonValue* dur = event.Find("dur");
    Check(name != nullptr && ts != nullptr && dur != nullptr &&
              args != nullptr && args->kind == JsonValue::Kind::kObject,
          "span event lacks name/ts/dur/args");
    if (name == nullptr || ts == nullptr || dur == nullptr ||
        args == nullptr) {
      continue;
    }
    const JsonValue* span_id = args->Find("span_id");
    const JsonValue* parent = args->Find("parent");
    const JsonValue* query_id = args->Find("query_id");
    Check(span_id != nullptr && parent != nullptr && query_id != nullptr,
          "span args lack span_id/parent/query_id");
    if (span_id == nullptr || parent == nullptr || query_id == nullptr) {
      continue;
    }
    Check(static_cast<int64_t>(query_id->number) ==
              static_cast<int64_t>(tid->number),
          "span query_id does not match its tid");
    SpanEvent span;
    span.name = name->string;
    span.span_id = static_cast<int64_t>(span_id->number);
    span.parent = static_cast<int64_t>(parent->number);
    span.ts = ts->number;
    span.dur = dur->number;
    by_query[static_cast<int64_t>(tid->number)].push_back(std::move(span));
  }

  for (int64_t id : query_ids) {
    Check(by_query.count(id) == 1,
          "query " + std::to_string(id) + " missing from trace");
  }

  int64_t attempts_total = 0;
  for (const auto& [qid, spans] : by_query) {
    const std::string q = "query " + std::to_string(qid) + ": ";
    std::map<int64_t, const SpanEvent*> by_id;
    std::set<std::string> names;
    int roots = 0;
    for (const SpanEvent& span : spans) {
      Check(by_id.emplace(span.span_id, &span).second,
            q + "duplicate span id " + std::to_string(span.span_id));
      names.insert(span.name);
      if (span.parent == 0) {
        ++roots;
        Check(span.name == "serve", q + "root span is '" + span.name +
                                        "', expected 'serve'");
      }
      if (span.name == "crowd.attempt") ++attempts_total;
    }
    Check(roots == 1,
          q + std::to_string(roots) + " root spans, expected exactly 1");
    for (const SpanEvent& span : spans) {
      if (span.parent == 0) continue;
      const auto it = by_id.find(span.parent);
      Check(it != by_id.end(), q + "span '" + span.name +
                                   "' has unresolved parent " +
                                   std::to_string(span.parent));
      if (it == by_id.end()) continue;
      const SpanEvent& parent = *it->second;
      Check(parent.ts <= span.ts &&
                span.ts + span.dur <= parent.ts + parent.dur,
            q + "span '" + span.name + "' escapes its parent '" +
                parent.name + "' window");
    }
    for (const char* expected :
         {"serve", "ocs", "ocs.select", "crowd", "crowd.dispatch",
          "crowd.aggregate", "gsp", "gsp.propagate", "settle"}) {
      Check(names.count(expected) == 1,
            q + "missing expected span '" + std::string(expected) + "'");
    }
  }
  // The fault storm must have produced per-attempt child spans somewhere.
  Check(attempts_total > 0, "no crowd.attempt spans under the fault storm");
  std::printf("trace: %zu queries, %lld attempt spans, nesting OK\n",
              by_query.size(), static_cast<long long>(attempts_total));
}

// ---------------------------------------------------------------------------
// Prometheus exposition validation.

void ValidatePrometheus(const std::string& text,
                        const server::EngineStats& stats,
                        int64_t traces_collected) {
  std::map<std::string, double> samples;
  std::map<std::string, std::vector<double>> bucket_series;
  size_t line_start = 0;
  int line_number = 0;
  while (line_start < text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    const std::string line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      Check(line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0,
            "prometheus line " + std::to_string(line_number) +
                " is an unknown comment form");
      continue;
    }
    // OpenMetrics exemplar suffix (' # {trace_id="N"} <value>') rides on
    // bucket lines of exemplar-bearing histograms; the sample proper is
    // everything before it.
    const size_t exemplar = line.find(" # ");
    const std::string sample =
        exemplar == std::string::npos ? line : line.substr(0, exemplar);
    const size_t space = sample.rfind(' ');
    Check(space != std::string::npos && space + 1 < sample.size(),
          "prometheus line " + std::to_string(line_number) +
              " has no sample value");
    if (space == std::string::npos) continue;
    const std::string key = sample.substr(0, space);
    char* end = nullptr;
    const std::string value_text = sample.substr(space + 1);
    const double value = std::strtod(value_text.c_str(), &end);
    Check(end == value_text.c_str() + value_text.size(),
          "prometheus value does not parse on line " +
              std::to_string(line_number) + ": " + line);
    samples[key] = value;
    const size_t brace = key.find("_bucket{le=\"");
    if (brace != std::string::npos) {
      bucket_series[key.substr(0, brace)].push_back(value);
    }
  }

  for (const auto& [name, series] : bucket_series) {
    for (size_t i = 1; i < series.size(); ++i) {
      Check(series[i] >= series[i - 1],
            name + " bucket series is not cumulative");
    }
    const auto count = samples.find(name + "_count");
    Check(count != samples.end() && !series.empty() &&
              series.back() == count->second,
          name + " +Inf bucket disagrees with _count");
  }

  const auto expect = [&](const std::string& name, int64_t want) {
    const auto it = samples.find(name);
    Check(it != samples.end(), "prometheus is missing " + name);
    if (it == samples.end()) return;
    Check(static_cast<int64_t>(it->second) == want,
          name + " = " + std::to_string(static_cast<int64_t>(it->second)) +
              ", stats say " + std::to_string(want));
  };
  expect("crowdrtse_queries_served_total", stats.queries_served);
  expect("crowdrtse_queries_rejected_total", stats.queries_rejected);
  expect("crowdrtse_queries_failed_total", stats.queries_failed);
  expect("crowdrtse_paid_units_total", stats.total_paid);
  expect("crowdrtse_roads_degraded_total", stats.roads_degraded);
  expect("crowdrtse_dispatch_retries_total", stats.crowd_retries);
  expect("crowdrtse_serve_latency_ms_count", stats.queries_served);
  expect("crowdrtse_traces_collected", traces_collected);
  std::printf("prometheus: %zu samples, %zu histogram series, counters OK\n",
              samples.size(), bucket_series.size());
}

// ---------------------------------------------------------------------------
// Stitched sharded trace validation: one cross-shard query must yield a
// single span tree at /trace/<id> — every parent resolves, no orphans, one
// root "serve", shard children covering every owner shard, and a merge.

util::Status HttpGet(int fd, const std::string& target, int* status,
                     std::string* body) {
  CROWDRTSE_RETURN_IF_ERROR(
      net::WriteAll(fd, "GET " + target + " HTTP/1.1\r\n\r\n"));
  return net::ReadHttpResponse(fd, status, body);
}

util::Status HttpPost(int fd, const std::string& target,
                      const std::string& body, int* status,
                      std::string* response_body) {
  const std::string wire = "POST " + target +
                           " HTTP/1.1\r\nContent-Length: " +
                           std::to_string(body.size()) + "\r\n\r\n" + body;
  CROWDRTSE_RETURN_IF_ERROR(net::WriteAll(fd, wire));
  return net::ReadHttpResponse(fd, status, response_body);
}

void ValidateStitchedTrace(const std::string& json, int64_t query_id,
                           const std::set<int>& want_shards) {
  JsonValue root;
  Check(JsonParser(json).Parse(&root),
        "stitched trace is not well-formed JSON");
  if (g_failures > 0) return;
  const JsonValue* events = root.Find("traceEvents");
  Check(events != nullptr && events->kind == JsonValue::Kind::kArray,
        "stitched trace has no traceEvents array");
  if (g_failures > 0) return;

  std::map<int64_t, const JsonValue*> by_id;
  std::vector<const JsonValue*> spans;
  int roots = 0;
  std::set<int> shard_spans;
  bool have_merge = false;
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || ph->string != "X") continue;
    const JsonValue* tid = event.Find("tid");
    const JsonValue* args = event.Find("args");
    const JsonValue* name = event.Find("name");
    if (tid == nullptr || args == nullptr || name == nullptr) {
      Check(false, "stitched span lacks tid/args/name");
      continue;
    }
    Check(static_cast<int64_t>(tid->number) == query_id,
          "stitched trace carries a span of foreign query " +
              std::to_string(static_cast<int64_t>(tid->number)));
    const JsonValue* span_id = args->Find("span_id");
    const JsonValue* parent = args->Find("parent");
    if (span_id == nullptr || parent == nullptr) {
      Check(false, "stitched span lacks span_id/parent");
      continue;
    }
    by_id[static_cast<int64_t>(span_id->number)] = &event;
    spans.push_back(&event);
    if (static_cast<int64_t>(parent->number) == 0) {
      ++roots;
      Check(name->string == "serve",
            "stitched root span is '" + name->string + "', want 'serve'");
    }
    if (name->string == "shard") {
      const JsonValue* shard = args->Find("shard");
      Check(shard != nullptr, "shard span lacks a shard annotation");
      if (shard != nullptr) {
        shard_spans.insert(std::atoi(shard->string.c_str()));
      }
    }
    if (name->string == "merge") have_merge = true;
  }
  Check(roots == 1, "stitched trace has " + std::to_string(roots) +
                        " roots, want exactly 1");
  int orphans = 0;
  for (const JsonValue* span : spans) {
    const int64_t parent = static_cast<int64_t>(
        span->Find("args")->Find("parent")->number);
    if (parent == 0) continue;
    if (by_id.find(parent) == by_id.end()) {
      ++orphans;
      Check(false, "orphan span '" + span->Find("name")->string +
                       "': parent " + std::to_string(parent) +
                       " not in this trace");
    }
  }
  for (const int shard : want_shards) {
    Check(shard_spans.count(shard) == 1,
          "no shard span for owner shard " + std::to_string(shard));
  }
  Check(have_merge, "cross-shard trace lacks a merge span");
  std::printf(
      "stitched trace: %zu spans, %zu shard children, %d orphans\n",
      spans.size(), shard_spans.size(), orphans);
}

int RunShardedStitching() {
  // The paper's 607-road world, K=4 geographic shards, every query traced
  // and profiled.
  util::Rng rng(3);
  graph::RoadNetworkOptions net_options;
  net_options.num_roads = 607;
  std::vector<std::pair<double, double>> positions;
  auto graph = graph::RoadNetwork(net_options, rng, &positions);
  CROWDRTSE_CHECK(graph.ok());
  traffic::TrafficModelOptions traffic_options;
  traffic_options.num_days = 8;
  traffic::TrafficSimulator sim(*graph, traffic_options, 5);
  const traffic::HistoryStore history = sim.GenerateHistory();
  const traffic::DayMatrix truth = sim.GenerateEvaluationDay();

  core::CrowdRtseConfig config;
  config.correlation_hop_radius = 2;
  config.gsp.hop_limit = 2;
  config.gsp.num_threads = 1;
  config.refine_with_ccd = false;

  partition::PartitionerOptions part_options;
  part_options.num_shards = 4;
  part_options.halo_radius = 5;
  part_options.seed = 17;
  auto partition = partition::PartitionByGeography(*graph, positions,
                                                   part_options);
  CROWDRTSE_CHECK(partition.ok());

  const crowd::CostModel costs =
      crowd::CostModel::Constant(graph->num_roads(), 2);
  std::vector<crowd::Worker> workers;
  crowd::WorkerId next_id = 0;
  for (graph::RoadId r = 0; r < graph->num_roads(); ++r) {
    for (int k = 0; k < 4; ++k) {
      crowd::Worker w;
      w.id = next_id++;
      w.road = r;
      w.bias = 1.0;
      w.noise_kmh = 0.0;
      workers.push_back(w);
    }
  }

  server::BudgetLedger ledger(-1, /*per_query_cap=*/24);
  server::ShardedEngineOptions options;
  options.crowd.min_bias = options.crowd.max_bias = 1.0;
  options.crowd.min_noise_kmh = options.crowd.max_noise_kmh = 0.0;
  options.crowd.outlier_rate = 0.0;
  options.engine.trace_sample_rate = 1.0;
  options.engine.profile_sample_rate = 1.0;
  auto engine = server::ShardedEngine::Create(*graph, *partition, history,
                                              config, costs, workers,
                                              ledger, truth, options);
  CROWDRTSE_CHECK(engine.ok());

  // A query spanning every shard: the first three roads each shard owns.
  std::map<int, int> taken;
  std::vector<graph::RoadId> roads;
  std::set<int> owners;
  for (graph::RoadId r = 0; r < graph->num_roads(); ++r) {
    const int owner = partition->OwnerOf(r);
    if (taken[owner] < 3) {
      ++taken[owner];
      roads.push_back(r);
      owners.insert(owner);
    }
  }
  Check(owners.size() == 4, "partition did not spread over 4 shards");

  server::FrontendOptions frontend_options;
  server::Frontend frontend(**engine, truth, frontend_options);
  CROWDRTSE_CHECK(frontend.Start().ok());
  auto http = net::ConnectLocal(frontend.port());
  CROWDRTSE_CHECK(http.ok());

  std::string body = "{\"id\":1,\"slot\":12,\"roads\":[";
  for (size_t i = 0; i < roads.size(); ++i) {
    if (i > 0) body += ",";
    body += std::to_string(roads[i]);
  }
  body += "]}";
  int status = 0;
  std::string response;
  Check(HttpPost(http->get(), "/query", body, &status, &response).ok() &&
            status == 200,
        "cross-shard /query failed: " + response);
  int64_t query_id = 0;
  if (auto parsed = net::json::Parse(response); parsed.ok()) {
    const auto* id = parsed->Find("query_id");
    Check(id != nullptr, "query response lacks query_id");
    if (id != nullptr) query_id = *id->AsInt();
  } else {
    Check(false, "query response is not JSON: " + response);
  }

  std::string trace_json;
  Check(HttpGet(http->get(), "/trace/" + std::to_string(query_id), &status,
                &trace_json)
                .ok() &&
            status == 200,
        "/trace/" + std::to_string(query_id) + " -> " +
            std::to_string(status));
  if (status == 200) ValidateStitchedTrace(trace_json, query_id, owners);

  // The profiler fed the stage histograms with exemplars; the exposition
  // must still parse line by line.
  const std::string prometheus = (*engine)->metrics().RenderPrometheus();
  Check(prometheus.find("crowdrtse_stage_wall_ms") != std::string::npos,
        "sharded metrics lack the stage profiler histograms");
  Check(prometheus.find("trace_id=\"" + std::to_string(query_id) + "\"") !=
            std::string::npos,
        "stage histograms carry no exemplar for the profiled query");

  std::string flight;
  Check(HttpGet(http->get(), "/debug/flight", &status, &flight).ok() &&
            status == 200,
        "/debug/flight failed");
  JsonValue flight_root;
  Check(JsonParser(flight).Parse(&flight_root),
        "/debug/flight is not well-formed JSON");
  Check(flight.find("\"shard.split\"") != std::string::npos,
        "flight dump lacks the shard.split event of the cross-shard query");

  frontend.Shutdown();
  (*engine)->Drain();
  std::printf("sharded stitching OK: query %lld across %zu shards\n",
              static_cast<long long>(query_id), owners.size());
  return g_failures;
}

// ---------------------------------------------------------------------------

void WriteArtifact(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  Check(file != nullptr, "cannot write artifact " + path);
  if (file == nullptr) return;
  std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

int Run(const std::string& trace_path, const std::string& prom_path) {
  // A small faulted world: every query traced, every fault path exercised.
  bench::WorldOptions world_options;
  world_options.num_roads = 120;
  world_options.num_days = 6;
  const bench::SemiSyntheticWorld world = bench::BuildWorld(world_options);
  core::CrowdRtseConfig config;
  auto system =
      core::CrowdRtse::BuildOffline(world.network, world.history, config);
  CROWDRTSE_CHECK(system.ok());

  server::WorkerRegistryOptions registry_options;
  registry_options.num_workers = world.network.num_roads() * 3;
  server::WorkerRegistry registry(world.network, registry_options, 5);
  const crowd::CostModel costs =
      crowd::CostModel::Constant(world.network.num_roads(), 2);
  server::BudgetLedger ledger(100'000, /*per_query_cap=*/30);
  crowd::CrowdSimulator crowd_sim({}, util::Rng(9));
  util::SimClock clock;
  server::QueryEngine::Options engine_options;
  engine_options.fault_tolerant_dispatch = true;
  engine_options.clock = &clock;
  crowd::FaultSpec storm;
  storm.drop_rate = 0.3;
  storm.delay_rate = 0.2;
  engine_options.fault_plan = crowd::FaultPlan(storm, /*seed=*/7);
  engine_options.trace_sample_rate = 1.0;
  engine_options.trace_ring_size = 64;
  server::QueryEngine engine(*system, registry, ledger, costs, crowd_sim,
                             engine_options);

  std::vector<int64_t> query_ids;
  for (int slot = 0; slot < traffic::kSlotsPerDay; slot += 48) {
    for (int q = 0; q < 2; ++q) {
      server::QueryRequest request;
      request.slot = slot;
      request.queried =
          bench::MakeQuery(world, 15, 200 + static_cast<uint64_t>(q));
      const auto response = engine.Serve(request, world.truth);
      CROWDRTSE_CHECK(response.ok());
      query_ids.push_back(response->query_id);
      Check(!response->trace_summary.empty(),
            "sampled query has an empty trace summary");
      Check(response->degraded_reasons.size() ==
                response->degraded_roads.size(),
            "degraded_reasons misaligned with degraded_roads");
    }
    registry.AdvanceSlot();
  }

  const server::EngineStats stats = engine.stats();
  Check(stats.queries_served == static_cast<int64_t>(query_ids.size()),
        "not every query was served");
  Check(engine.traces().collected() ==
            static_cast<int64_t>(query_ids.size()),
        "collector missed sampled queries");

  const std::string chrome = engine.traces().ChromeTraceJson();
  const std::string prometheus = engine.metrics().RenderPrometheus();
  WriteArtifact(trace_path, chrome);
  WriteArtifact(prom_path, prometheus);

  ValidateChromeTrace(chrome, query_ids);
  ValidatePrometheus(prometheus, stats, engine.traces().collected());

  RunShardedStitching();

  if (g_failures > 0) {
    std::printf("trace smoke FAILED: %d violations\n", g_failures);
    return 1;
  }
  std::printf("trace smoke OK: %zu queries traced and validated\n",
              query_ids.size());
  return 0;
}

}  // namespace
}  // namespace crowdrtse::tools

int main(int argc, char** argv) {
  const std::string trace_path =
      argc > 1 ? argv[1] : "trace_smoke_trace.json";
  const std::string prom_path =
      argc > 2 ? argv[2] : "trace_smoke_metrics.prom";
  return crowdrtse::tools::Run(trace_path, prom_path);
}
