// Tracing smoke checker (CI): serves a small faulted query batch at
// trace_sample_rate = 1.0, exports the Chrome trace and the Prometheus
// exposition, and validates both structurally —
//   * the trace is well-formed JSON with a traceEvents array;
//   * every served query id appears as a tid, every span's parent resolves
//     inside its own trace, child windows nest inside their parents, and
//     each query has exactly one root span named "serve" plus the expected
//     phase spans (ocs, crowd.dispatch with crowd.attempt children under
//     the fault storm, gsp.propagate);
//   * the Prometheus text parses line by line, histogram bucket series are
//     cumulative, and the counters match EngineStats.
// Exits nonzero on the first class of failure, printing every violation,
// so CI gets a complete diagnosis in one run. The two artifacts are left
// next to the binary for upload.
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "semi_synthetic.h"
#include "crowd/fault_plan.h"
#include "server/budget_ledger.h"
#include "server/query_engine.h"
#include "server/worker_registry.h"
#include "util/clock.h"
#include "util/logging.h"

namespace crowdrtse::tools {
namespace {

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (ok) return;
  std::printf("FAIL: %s\n", what.c_str());
  ++g_failures;
}

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough DOM to walk the Chrome trace export.
// Rejects malformed input (that is the point of the smoke test); tolerates
// duplicate keys by keeping all pairs.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole input as one value; false on any syntax error or
  /// trailing garbage.
  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + static_cast<size_t>(i)]))) {
                return false;
              }
            }
            pos_ += 4;
            out->push_back('?');  // codepoint value is irrelevant here
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_++] != ':') return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null");
    }
    // Number.
    char* end = nullptr;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    pos_ = static_cast<size_t>(end - text_.c_str());
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Chrome trace validation.

struct SpanEvent {
  std::string name;
  int64_t span_id = 0;
  int64_t parent = 0;
  double ts = 0.0;
  double dur = 0.0;
};

void ValidateChromeTrace(const std::string& json,
                         const std::vector<int64_t>& query_ids) {
  JsonValue root;
  Check(JsonParser(json).Parse(&root), "chrome trace is not well-formed JSON");
  if (g_failures > 0) return;
  Check(root.kind == JsonValue::Kind::kObject, "trace root is not an object");
  const JsonValue* events = root.Find("traceEvents");
  Check(events != nullptr && events->kind == JsonValue::Kind::kArray,
        "trace has no traceEvents array");
  if (g_failures > 0) return;

  // Group complete ("X") span events by tid == query id.
  std::map<int64_t, std::vector<SpanEvent>> by_query;
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.Find("ph");
    const JsonValue* tid = event.Find("tid");
    Check(ph != nullptr && tid != nullptr, "event lacks ph/tid");
    if (ph == nullptr || tid == nullptr) continue;
    if (ph->string != "X") continue;  // skip thread_name metadata
    const JsonValue* args = event.Find("args");
    const JsonValue* name = event.Find("name");
    const JsonValue* ts = event.Find("ts");
    const JsonValue* dur = event.Find("dur");
    Check(name != nullptr && ts != nullptr && dur != nullptr &&
              args != nullptr && args->kind == JsonValue::Kind::kObject,
          "span event lacks name/ts/dur/args");
    if (name == nullptr || ts == nullptr || dur == nullptr ||
        args == nullptr) {
      continue;
    }
    const JsonValue* span_id = args->Find("span_id");
    const JsonValue* parent = args->Find("parent");
    const JsonValue* query_id = args->Find("query_id");
    Check(span_id != nullptr && parent != nullptr && query_id != nullptr,
          "span args lack span_id/parent/query_id");
    if (span_id == nullptr || parent == nullptr || query_id == nullptr) {
      continue;
    }
    Check(static_cast<int64_t>(query_id->number) ==
              static_cast<int64_t>(tid->number),
          "span query_id does not match its tid");
    SpanEvent span;
    span.name = name->string;
    span.span_id = static_cast<int64_t>(span_id->number);
    span.parent = static_cast<int64_t>(parent->number);
    span.ts = ts->number;
    span.dur = dur->number;
    by_query[static_cast<int64_t>(tid->number)].push_back(std::move(span));
  }

  for (int64_t id : query_ids) {
    Check(by_query.count(id) == 1,
          "query " + std::to_string(id) + " missing from trace");
  }

  int64_t attempts_total = 0;
  for (const auto& [qid, spans] : by_query) {
    const std::string q = "query " + std::to_string(qid) + ": ";
    std::map<int64_t, const SpanEvent*> by_id;
    std::set<std::string> names;
    int roots = 0;
    for (const SpanEvent& span : spans) {
      Check(by_id.emplace(span.span_id, &span).second,
            q + "duplicate span id " + std::to_string(span.span_id));
      names.insert(span.name);
      if (span.parent == 0) {
        ++roots;
        Check(span.name == "serve", q + "root span is '" + span.name +
                                        "', expected 'serve'");
      }
      if (span.name == "crowd.attempt") ++attempts_total;
    }
    Check(roots == 1,
          q + std::to_string(roots) + " root spans, expected exactly 1");
    for (const SpanEvent& span : spans) {
      if (span.parent == 0) continue;
      const auto it = by_id.find(span.parent);
      Check(it != by_id.end(), q + "span '" + span.name +
                                   "' has unresolved parent " +
                                   std::to_string(span.parent));
      if (it == by_id.end()) continue;
      const SpanEvent& parent = *it->second;
      Check(parent.ts <= span.ts &&
                span.ts + span.dur <= parent.ts + parent.dur,
            q + "span '" + span.name + "' escapes its parent '" +
                parent.name + "' window");
    }
    for (const char* expected :
         {"serve", "ocs", "ocs.select", "crowd", "crowd.dispatch",
          "crowd.aggregate", "gsp", "gsp.propagate", "settle"}) {
      Check(names.count(expected) == 1,
            q + "missing expected span '" + std::string(expected) + "'");
    }
  }
  // The fault storm must have produced per-attempt child spans somewhere.
  Check(attempts_total > 0, "no crowd.attempt spans under the fault storm");
  std::printf("trace: %zu queries, %lld attempt spans, nesting OK\n",
              by_query.size(), static_cast<long long>(attempts_total));
}

// ---------------------------------------------------------------------------
// Prometheus exposition validation.

void ValidatePrometheus(const std::string& text,
                        const server::EngineStats& stats,
                        int64_t traces_collected) {
  std::map<std::string, double> samples;
  std::map<std::string, std::vector<double>> bucket_series;
  size_t line_start = 0;
  int line_number = 0;
  while (line_start < text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    const std::string line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      Check(line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0,
            "prometheus line " + std::to_string(line_number) +
                " is an unknown comment form");
      continue;
    }
    const size_t space = line.rfind(' ');
    Check(space != std::string::npos && space + 1 < line.size(),
          "prometheus line " + std::to_string(line_number) +
              " has no sample value");
    if (space == std::string::npos) continue;
    const std::string key = line.substr(0, space);
    char* end = nullptr;
    const std::string value_text = line.substr(space + 1);
    const double value = std::strtod(value_text.c_str(), &end);
    Check(end == value_text.c_str() + value_text.size(),
          "prometheus value does not parse on line " +
              std::to_string(line_number) + ": " + line);
    samples[key] = value;
    const size_t brace = key.find("_bucket{le=\"");
    if (brace != std::string::npos) {
      bucket_series[key.substr(0, brace)].push_back(value);
    }
  }

  for (const auto& [name, series] : bucket_series) {
    for (size_t i = 1; i < series.size(); ++i) {
      Check(series[i] >= series[i - 1],
            name + " bucket series is not cumulative");
    }
    const auto count = samples.find(name + "_count");
    Check(count != samples.end() && !series.empty() &&
              series.back() == count->second,
          name + " +Inf bucket disagrees with _count");
  }

  const auto expect = [&](const std::string& name, int64_t want) {
    const auto it = samples.find(name);
    Check(it != samples.end(), "prometheus is missing " + name);
    if (it == samples.end()) return;
    Check(static_cast<int64_t>(it->second) == want,
          name + " = " + std::to_string(static_cast<int64_t>(it->second)) +
              ", stats say " + std::to_string(want));
  };
  expect("crowdrtse_queries_served_total", stats.queries_served);
  expect("crowdrtse_queries_rejected_total", stats.queries_rejected);
  expect("crowdrtse_queries_failed_total", stats.queries_failed);
  expect("crowdrtse_paid_units_total", stats.total_paid);
  expect("crowdrtse_roads_degraded_total", stats.roads_degraded);
  expect("crowdrtse_dispatch_retries_total", stats.crowd_retries);
  expect("crowdrtse_serve_latency_ms_count", stats.queries_served);
  expect("crowdrtse_traces_collected", traces_collected);
  std::printf("prometheus: %zu samples, %zu histogram series, counters OK\n",
              samples.size(), bucket_series.size());
}

// ---------------------------------------------------------------------------

void WriteArtifact(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  Check(file != nullptr, "cannot write artifact " + path);
  if (file == nullptr) return;
  std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

int Run(const std::string& trace_path, const std::string& prom_path) {
  // A small faulted world: every query traced, every fault path exercised.
  bench::WorldOptions world_options;
  world_options.num_roads = 120;
  world_options.num_days = 6;
  const bench::SemiSyntheticWorld world = bench::BuildWorld(world_options);
  core::CrowdRtseConfig config;
  auto system =
      core::CrowdRtse::BuildOffline(world.network, world.history, config);
  CROWDRTSE_CHECK(system.ok());

  server::WorkerRegistryOptions registry_options;
  registry_options.num_workers = world.network.num_roads() * 3;
  server::WorkerRegistry registry(world.network, registry_options, 5);
  const crowd::CostModel costs =
      crowd::CostModel::Constant(world.network.num_roads(), 2);
  server::BudgetLedger ledger(100'000, /*per_query_cap=*/30);
  crowd::CrowdSimulator crowd_sim({}, util::Rng(9));
  util::SimClock clock;
  server::QueryEngine::Options engine_options;
  engine_options.fault_tolerant_dispatch = true;
  engine_options.clock = &clock;
  crowd::FaultSpec storm;
  storm.drop_rate = 0.3;
  storm.delay_rate = 0.2;
  engine_options.fault_plan = crowd::FaultPlan(storm, /*seed=*/7);
  engine_options.trace_sample_rate = 1.0;
  engine_options.trace_ring_size = 64;
  server::QueryEngine engine(*system, registry, ledger, costs, crowd_sim,
                             engine_options);

  std::vector<int64_t> query_ids;
  for (int slot = 0; slot < traffic::kSlotsPerDay; slot += 48) {
    for (int q = 0; q < 2; ++q) {
      server::QueryRequest request;
      request.slot = slot;
      request.queried =
          bench::MakeQuery(world, 15, 200 + static_cast<uint64_t>(q));
      const auto response = engine.Serve(request, world.truth);
      CROWDRTSE_CHECK(response.ok());
      query_ids.push_back(response->query_id);
      Check(!response->trace_summary.empty(),
            "sampled query has an empty trace summary");
      Check(response->degraded_reasons.size() ==
                response->degraded_roads.size(),
            "degraded_reasons misaligned with degraded_roads");
    }
    registry.AdvanceSlot();
  }

  const server::EngineStats stats = engine.stats();
  Check(stats.queries_served == static_cast<int64_t>(query_ids.size()),
        "not every query was served");
  Check(engine.traces().collected() ==
            static_cast<int64_t>(query_ids.size()),
        "collector missed sampled queries");

  const std::string chrome = engine.traces().ChromeTraceJson();
  const std::string prometheus = engine.metrics().RenderPrometheus();
  WriteArtifact(trace_path, chrome);
  WriteArtifact(prom_path, prometheus);

  ValidateChromeTrace(chrome, query_ids);
  ValidatePrometheus(prometheus, stats, engine.traces().collected());

  if (g_failures > 0) {
    std::printf("trace smoke FAILED: %d violations\n", g_failures);
    return 1;
  }
  std::printf("trace smoke OK: %zu queries traced and validated\n",
              query_ids.size());
  return 0;
}

}  // namespace
}  // namespace crowdrtse::tools

int main(int argc, char** argv) {
  const std::string trace_path =
      argc > 1 ? argv[1] : "trace_smoke_trace.json";
  const std::string prom_path =
      argc > 2 ? argv[2] : "trace_smoke_metrics.prom";
  return crowdrtse::tools::Run(trace_path, prom_path);
}
