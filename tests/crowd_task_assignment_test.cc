#include "crowd/task_assignment.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace crowdrtse::crowd {
namespace {

Worker MakeWorker(WorkerId id, graph::RoadId road, double noise) {
  Worker w;
  w.id = id;
  w.road = road;
  w.noise_kmh = noise;
  return w;
}

TEST(TaskAssignmentTest, FillsQuotasFromPresentWorkers) {
  const CostModel costs = CostModel::Constant(5, 2);
  std::vector<Worker> workers{
      MakeWorker(0, 1, 1.0), MakeWorker(1, 1, 2.0), MakeWorker(2, 1, 3.0),
      MakeWorker(3, 3, 1.0), MakeWorker(4, 3, 2.0),
  };
  const auto plan = AssignTasks({1, 3}, costs, workers);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->FullyStaffed());
  EXPECT_EQ(plan->assignments.size(), 4u);
  EXPECT_EQ(plan->total_payment, 4);
  std::map<graph::RoadId, int> per_road;
  for (const TaskAssignment& t : plan->assignments) ++per_road[t.road];
  EXPECT_EQ(per_road[1], 2);
  EXPECT_EQ(per_road[3], 2);
}

TEST(TaskAssignmentTest, PrefersLowNoiseWorkers) {
  const CostModel costs = CostModel::Constant(2, 1);
  std::vector<Worker> workers{
      MakeWorker(0, 0, 5.0), MakeWorker(1, 0, 0.5), MakeWorker(2, 0, 2.0),
  };
  const auto plan = AssignTasks({0}, costs, workers);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->assignments.size(), 1u);
  EXPECT_EQ(plan->assignments[0].worker, 1);  // the cleanest reporter
}

TEST(TaskAssignmentTest, ReportsUnderfilledRoads) {
  const CostModel costs = CostModel::Constant(3, 4);
  std::vector<Worker> workers{MakeWorker(0, 2, 1.0), MakeWorker(1, 2, 1.5)};
  const auto plan = AssignTasks({2, 1}, costs, workers);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->FullyStaffed());
  // Road 2 gets 2 of 4; road 1 gets 0 of 4.
  EXPECT_EQ(plan->assignments.size(), 2u);
  ASSERT_EQ(plan->underfilled_roads.size(), 2u);
  EXPECT_EQ(plan->underfilled_roads[0], 2);
  EXPECT_EQ(plan->underfilled_roads[1], 1);
}

TEST(TaskAssignmentTest, WorkerTakesAtMostOneTask) {
  const CostModel costs = CostModel::Constant(3, 2);
  std::vector<Worker> workers{
      MakeWorker(0, 0, 1.0), MakeWorker(1, 0, 1.0), MakeWorker(2, 1, 1.0),
      MakeWorker(3, 1, 1.0),
  };
  const auto plan = AssignTasks({0, 1}, costs, workers);
  ASSERT_TRUE(plan.ok());
  std::set<WorkerId> assigned;
  for (const TaskAssignment& t : plan->assignments) {
    EXPECT_TRUE(assigned.insert(t.worker).second)
        << "worker " << t.worker << " double-booked";
  }
}

TEST(TaskAssignmentTest, EmptySelection) {
  const CostModel costs = CostModel::Constant(2, 1);
  const auto plan = AssignTasks({}, costs, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->assignments.empty());
  EXPECT_TRUE(plan->FullyStaffed());
  EXPECT_EQ(plan->total_payment, 0);
}

TEST(TaskAssignmentTest, Validation) {
  const CostModel costs = CostModel::Constant(2, 1);
  EXPECT_FALSE(AssignTasks({-1}, costs, {}).ok());
  EXPECT_FALSE(AssignTasks({5}, costs, {}).ok());
  EXPECT_FALSE(AssignTasks({0, 0}, costs, {}).ok());
}

}  // namespace
}  // namespace crowdrtse::crowd
