// Brute-force verification of the correlation closure: on small graphs,
// enumerate EVERY simple path between every road pair and check that the
// Dijkstra-based table returns exactly the maximal edge-rho product
// (paper Eq. 8).
#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "rtf/correlation_table.h"
#include "util/rng.h"

namespace crowdrtse::rtf {
namespace {

/// DFS over all simple paths src..dst accumulating the best product.
class PathEnumerator {
 public:
  PathEnumerator(const graph::Graph& g, const std::vector<double>& rho)
      : graph_(g), rho_(rho) {}

  double BestProduct(graph::RoadId src, graph::RoadId dst) {
    best_ = 0.0;
    visited_.assign(static_cast<size_t>(graph_.num_roads()), false);
    visited_[static_cast<size_t>(src)] = true;
    Dfs(src, dst, 1.0);
    return best_;
  }

 private:
  void Dfs(graph::RoadId at, graph::RoadId dst, double product) {
    if (at == dst) {
      best_ = std::max(best_, product);
      return;
    }
    for (const graph::Adjacency& adj : graph_.Neighbors(at)) {
      if (visited_[static_cast<size_t>(adj.neighbor)]) continue;
      visited_[static_cast<size_t>(adj.neighbor)] = true;
      Dfs(adj.neighbor, dst,
          product * rho_[static_cast<size_t>(adj.edge)]);
      visited_[static_cast<size_t>(adj.neighbor)] = false;
    }
  }

  const graph::Graph& graph_;
  const std::vector<double>& rho_;
  double best_ = 0.0;
  std::vector<bool> visited_;
};

class CorrelationExhaustiveTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CorrelationExhaustiveTest, TableEqualsBruteForceMaxProduct) {
  util::Rng rng(GetParam());
  graph::RoadNetworkOptions net;
  net.num_roads = 10;  // small enough for full path enumeration
  const graph::Graph g = *graph::RoadNetwork(net, rng);
  std::vector<double> rho(static_cast<size_t>(g.num_edges()));
  for (double& r : rho) r = rng.UniformDouble(0.2, 0.98);
  const auto table = CorrelationTable::FromEdgeCorrelations(g, rho);
  ASSERT_TRUE(table.ok());
  PathEnumerator enumerator(g, rho);
  for (graph::RoadId i = 0; i < g.num_roads(); ++i) {
    for (graph::RoadId j = 0; j < g.num_roads(); ++j) {
      if (i == j) continue;
      EXPECT_NEAR(table->Corr(i, j), enumerator.BestProduct(i, j), 1e-10)
          << "pair (" << i << ", " << j << ") seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorrelationExhaustiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(CorrelationExhaustiveTest, GridGraph) {
  const graph::Graph g = *graph::GridNetwork(3, 3);
  util::Rng rng(99);
  std::vector<double> rho(static_cast<size_t>(g.num_edges()));
  for (double& r : rho) r = rng.UniformDouble(0.3, 0.95);
  const auto table = CorrelationTable::FromEdgeCorrelations(g, rho);
  ASSERT_TRUE(table.ok());
  PathEnumerator enumerator(g, rho);
  for (graph::RoadId i = 0; i < 9; ++i) {
    for (graph::RoadId j = i + 1; j < 9; ++j) {
      EXPECT_NEAR(table->Corr(i, j), enumerator.BestProduct(i, j), 1e-10);
    }
  }
}

}  // namespace
}  // namespace crowdrtse::rtf
