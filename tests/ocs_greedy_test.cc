#include "ocs/greedy_selectors.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"

namespace crowdrtse::ocs {
namespace {

/// Builds a star graph: hub 0 with leaves 1..n-1 and chosen edge rhos.
struct StarFixture {
  explicit StarFixture(const std::vector<double>& rhos)
      : graph(BuildStar(static_cast<int>(rhos.size()) + 1)),
        table(*rtf::CorrelationTable::FromEdgeCorrelations(graph, rhos)) {}

  static graph::Graph BuildStar(int n) {
    graph::GraphBuilder builder(n);
    for (int leaf = 1; leaf < n; ++leaf) builder.AddEdge(0, leaf);
    return *builder.Build();
  }

  graph::Graph graph;
  rtf::CorrelationTable table;
};

TEST(RatioGreedyTest, PrefersCheapRoads) {
  // Query the hub. Leaf 1 corr 0.9 cost 3; leaf 2 corr 0.5 cost 1.
  StarFixture f({0.9, 0.5});
  crowd::CostModel costs = crowd::CostModel::Constant(3, 1);
  // Hand-craft costs: road 1 -> 3, road 2 -> 1.
  auto made = crowd::CostModel::FromVolatility({0.0, 1.0, 0.0}, 1, 3);
  ASSERT_TRUE(made.ok());
  const auto problem = OcsProblem::Create(f.table, {0}, {1.0}, {1, 2},
                                          *made, 1, 1.0);
  ASSERT_TRUE(problem.ok());
  const OcsSolution ratio = RatioGreedy(*problem);
  // Budget 1 only fits road 2.
  EXPECT_EQ(ratio.roads, (std::vector<graph::RoadId>{2}));
  EXPECT_NEAR(ratio.objective, 0.5, 1e-12);
}

TEST(GreedyTest, PaperWorstCaseExample) {
  // Paper Example 1: two candidates, costs 1 and K; correlations 1/K-ish
  // vs K-1. Ratio-Greedy picks the cheap one, Objective-Greedy the good
  // one, Hybrid keeps the winner.
  // Build: query road q with two candidate roads a (cheap, weak) and b
  // (expensive, strong). Use a star with rhos defining the correlations.
  const int budget = 5;  // the paper's K
  StarFixture f({0.3, 0.9});  // corr(q=0, a=1)=0.3, corr(q=0, b=2)=0.9
  // cost(a)=1, cost(b)=5.
  auto costs = crowd::CostModel::FromVolatility({0.0, 0.0, 1.0}, 1, 5);
  ASSERT_TRUE(costs.ok());
  ASSERT_EQ(costs->Cost(1), 1);
  ASSERT_EQ(costs->Cost(2), 5);
  const auto problem =
      OcsProblem::Create(f.table, {0}, {1.0}, {1, 2}, *costs, budget, 1.0);
  ASSERT_TRUE(problem.ok());
  const OcsSolution ratio = RatioGreedy(*problem);
  const OcsSolution objective = ObjectiveGreedy(*problem);
  const OcsSolution hybrid = HybridGreedy(*problem);
  // Ratio picks the cheap road first (0.3/1 > 0.9/5); then b no longer
  // fits the remaining budget of 4.
  EXPECT_EQ(ratio.roads, (std::vector<graph::RoadId>{1}));
  EXPECT_EQ(objective.roads, (std::vector<graph::RoadId>{2}));
  EXPECT_NEAR(hybrid.objective, 0.9, 1e-12);
}

TEST(GreedyTest, HybridIsMaxOfBoth) {
  StarFixture f({0.8, 0.7, 0.6, 0.5});
  util::Rng rng(3);
  auto costs = crowd::CostModel::UniformRandom(5, 1, 4, rng);
  ASSERT_TRUE(costs.ok());
  const auto problem = OcsProblem::Create(f.table, {0, 1}, {1.0, 2.0},
                                          {1, 2, 3, 4}, *costs, 6, 1.0);
  ASSERT_TRUE(problem.ok());
  const OcsSolution ratio = RatioGreedy(*problem);
  const OcsSolution objective = ObjectiveGreedy(*problem);
  const OcsSolution hybrid = HybridGreedy(*problem);
  EXPECT_DOUBLE_EQ(hybrid.objective,
                   std::max(ratio.objective, objective.objective));
}

TEST(GreedyTest, SolutionsAlwaysFeasible) {
  util::Rng rng(7);
  graph::RoadNetworkOptions net;
  net.num_roads = 80;
  const graph::Graph g = *graph::RoadNetwork(net, rng);
  std::vector<double> rho(static_cast<size_t>(g.num_edges()));
  for (double& r : rho) r = rng.UniformDouble(0.3, 0.95);
  const auto table = rtf::CorrelationTable::FromEdgeCorrelations(g, rho);
  ASSERT_TRUE(table.ok());
  auto costs = crowd::CostModel::UniformRandom(80, 1, 5, rng);
  ASSERT_TRUE(costs.ok());
  std::vector<graph::RoadId> queried;
  std::vector<double> weights;
  for (int i = 0; i < 20; ++i) {
    queried.push_back(i * 4);
    weights.push_back(rng.UniformDouble(0.5, 8.0));
  }
  std::vector<graph::RoadId> candidates;
  for (int i = 0; i < 80; ++i) candidates.push_back(i);
  for (double theta : {0.92, 1.0}) {
    for (int budget : {5, 15, 40}) {
      const auto problem = OcsProblem::Create(*table, queried, weights,
                                              candidates, *costs, budget,
                                              theta);
      ASSERT_TRUE(problem.ok());
      for (const OcsSolution& solution :
           {RatioGreedy(*problem), ObjectiveGreedy(*problem),
            HybridGreedy(*problem)}) {
        EXPECT_TRUE(problem->IsFeasible(solution.roads));
        EXPECT_LE(solution.total_cost, budget);
        EXPECT_NEAR(solution.objective, problem->Objective(solution.roads),
                    1e-9);
      }
    }
  }
}

TEST(GreedyTest, ObjectiveMonotoneInBudget) {
  StarFixture f({0.9, 0.8, 0.7, 0.6, 0.5});
  const crowd::CostModel costs = crowd::CostModel::Constant(6, 2);
  double last = -1.0;
  for (int budget = 0; budget <= 10; budget += 2) {
    const auto problem = OcsProblem::Create(
        f.table, {0}, {1.0}, {1, 2, 3, 4, 5}, costs, budget, 1.0);
    ASSERT_TRUE(problem.ok());
    const OcsSolution hybrid = HybridGreedy(*problem);
    EXPECT_GE(hybrid.objective, last - 1e-12);
    last = hybrid.objective;
  }
}

TEST(RandomSelectTest, FeasibleAndDeterministicPerSeed) {
  StarFixture f({0.9, 0.8, 0.7, 0.6});
  const crowd::CostModel costs = crowd::CostModel::Constant(5, 2);
  const auto problem = OcsProblem::Create(f.table, {0}, {1.0},
                                          {1, 2, 3, 4}, costs, 4, 1.0);
  ASSERT_TRUE(problem.ok());
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  const OcsSolution a = RandomSelect(*problem, rng_a);
  const OcsSolution b = RandomSelect(*problem, rng_b);
  EXPECT_EQ(a.roads, b.roads);
  EXPECT_TRUE(problem->IsFeasible(a.roads));
  EXPECT_EQ(a.total_cost, 4);  // fills the budget with unit-cost-2 roads
}

TEST(TrivialCaseTest, OverAdequateBudgetTakesAll) {
  StarFixture f({0.9, 0.8});
  const crowd::CostModel costs = crowd::CostModel::Constant(3, 1);
  const auto problem =
      OcsProblem::Create(f.table, {0}, {1.0}, {1, 2}, costs, 10, 1.0);
  ASSERT_TRUE(problem.ok());
  const auto solution = SolveTrivialCase(*problem);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->roads.size(), 2u);
}

TEST(TrivialCaseTest, FewQueriesPicksBestPerQuery) {
  StarFixture f({0.9, 0.3, 0.5});
  const crowd::CostModel costs = crowd::CostModel::Constant(4, 1);
  // |R^q| = 1 < budget 2 < |R^w| = 3.
  const auto problem =
      OcsProblem::Create(f.table, {0}, {1.0}, {1, 2, 3}, costs, 2, 1.0);
  ASSERT_TRUE(problem.ok());
  const auto solution = SolveTrivialCase(*problem);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->roads, (std::vector<graph::RoadId>{1}));
  // Greedy matches the trivial optimum... and may add more roads with the
  // leftover budget, so only compare the objective.
  const OcsSolution hybrid = HybridGreedy(*problem);
  EXPECT_GE(hybrid.objective, solution->objective - 1e-12);
}

TEST(TrivialCaseTest, NonTrivialRejected) {
  StarFixture f({0.9, 0.8});
  const crowd::CostModel expensive = crowd::CostModel::Constant(3, 2);
  const auto problem =
      OcsProblem::Create(f.table, {0}, {1.0}, {1, 2}, expensive, 10, 1.0);
  ASSERT_TRUE(problem.ok());
  EXPECT_FALSE(SolveTrivialCase(*problem).ok());  // non-unit costs
  const crowd::CostModel unit = crowd::CostModel::Constant(3, 1);
  const auto theta_problem =
      OcsProblem::Create(f.table, {0}, {1.0}, {1, 2}, unit, 10, 0.9);
  ASSERT_TRUE(theta_problem.ok());
  EXPECT_FALSE(SolveTrivialCase(*theta_problem).ok());  // theta < 1
}

}  // namespace
}  // namespace crowdrtse::ocs
