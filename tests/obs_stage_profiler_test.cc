#include "obs/stage_profiler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "util/metrics.h"

namespace crowdrtse::obs {
namespace {

using util::metrics::MetricsRegistry;

TEST(StageProfilerTest, SampleRateExtremesAndDeterminism) {
  MetricsRegistry registry;
  StageProfiler always(&registry, {.sample_rate = 1.0});
  StageProfiler never(&registry, {.sample_rate = 0.0});
  StageProfiler half(&registry, {.sample_rate = 0.5});
  for (int64_t id = 1; id <= 200; ++id) {
    EXPECT_TRUE(always.ShouldProfile(id));
    EXPECT_FALSE(never.ShouldProfile(id));
    EXPECT_EQ(half.ShouldProfile(id), half.ShouldProfile(id))
        << "sampling must be deterministic per query id";
  }
}

TEST(StageProfilerTest, StageNamesAreStable) {
  EXPECT_STREQ(StageName(Stage::kOcsSelect), "ocs.select");
  EXPECT_STREQ(StageName(Stage::kCrowdDispatch), "crowd.dispatch");
  EXPECT_STREQ(StageName(Stage::kGammaCompute), "gamma.compute");
  EXPECT_STREQ(StageName(Stage::kGspSweep), "gsp.sweep");
  EXPECT_STREQ(StageName(Stage::kMerge), "merge");
}

TEST(StageProfilerTest, TimerIsNoopWithoutActiveScope) {
  ASSERT_EQ(ActiveProfiler(), nullptr);
  {
    StageTimer timer(Stage::kGspSweep);
  }  // must not crash and must record nothing anywhere
  EXPECT_EQ(ActiveProfileQueryId(), 0);
}

TEST(StageProfilerTest, ScopedProfileInstallsAndRestores) {
  MetricsRegistry registry;
  StageProfiler profiler(&registry, {.sample_rate = 1.0});
  EXPECT_EQ(ActiveProfiler(), nullptr);
  {
    ScopedProfile outer(&profiler, 7);
    EXPECT_EQ(ActiveProfiler(), &profiler);
    EXPECT_EQ(ActiveProfileQueryId(), 7);
    {
      ScopedProfile inner(&profiler, 9);
      EXPECT_EQ(ActiveProfileQueryId(), 9);
    }
    EXPECT_EQ(ActiveProfileQueryId(), 7);
  }
  EXPECT_EQ(ActiveProfiler(), nullptr);
  EXPECT_EQ(ActiveProfileQueryId(), 0);
}

TEST(StageProfilerTest, UnsampledQueryInstallsNoScope) {
  MetricsRegistry registry;
  StageProfiler profiler(&registry, {.sample_rate = 0.0});
  ScopedProfile scope(&profiler, 7);
  EXPECT_EQ(ActiveProfiler(), nullptr);
  {
    StageTimer timer(Stage::kOcsSelect);
  }
  // Histograms exist (the profiler registers them eagerly) but stay empty.
  EXPECT_NE(registry.RenderPrometheus().find(
                "crowdrtse_stage_wall_ms_count{stage=\"ocs.select\"} 0"),
            std::string::npos);
}

TEST(StageProfilerTest, TimerRecordsLabeledHistogramsWithExemplar) {
  MetricsRegistry registry;
  StageProfiler profiler(&registry, {.sample_rate = 1.0});
  {
    ScopedProfile scope(&profiler, 42);
    StageTimer timer(Stage::kOcsSelect);
    timer.Stop();
    StageTimer gsp(Stage::kGspSweep);
  }
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("crowdrtse_stage_wall_ms_count{stage=\"ocs.select\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("crowdrtse_stage_cpu_ms_count{stage=\"ocs.select\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("crowdrtse_stage_wall_ms_count{stage=\"gsp.sweep\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("crowdrtse_stage_wall_ms_bucket{stage=\"ocs.select\",le="),
            std::string::npos);
  // The profiled query id rides along as the wall bucket's exemplar.
  EXPECT_NE(text.find("trace_id=\"42\""), std::string::npos) << text;
}

TEST(StageProfilerTest, StopIsIdempotent) {
  MetricsRegistry registry;
  StageProfiler profiler(&registry, {.sample_rate = 1.0});
  ScopedProfile scope(&profiler, 5);
  StageTimer timer(Stage::kMerge);
  timer.Stop();
  timer.Stop();  // second stop must not double-record
  const std::string text = registry.RenderPrometheus();
  const std::string count_line = "crowdrtse_stage_wall_ms_count{stage=\"merge\"}";
  const size_t at = text.find(count_line);
  ASSERT_NE(at, std::string::npos) << text;
  const size_t eol = text.find('\n', at);
  const std::string value =
      text.substr(at + count_line.size() + 1, eol - at - count_line.size() - 1);
  EXPECT_EQ(value, "1") << text;
}

}  // namespace
}  // namespace crowdrtse::obs
