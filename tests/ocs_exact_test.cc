#include "ocs/exact_solver.h"

#include <gtest/gtest.h>
#include <cmath>
#include <algorithm>

#include "graph/generators.h"
#include "ocs/greedy_selectors.h"
#include "util/rng.h"

namespace crowdrtse::ocs {
namespace {

/// Brute-force reference: enumerate all candidate subsets.
OcsSolution BruteForce(const OcsProblem& problem) {
  const auto& candidates = problem.candidate_roads();
  const size_t n = candidates.size();
  OcsSolution best;
  for (size_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<graph::RoadId> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset.push_back(candidates[i]);
    }
    if (!problem.IsFeasible(subset)) continue;
    const double objective = problem.Objective(subset);
    if (objective > best.objective) {
      best.objective = objective;
      best.roads = subset;
    }
  }
  best.total_cost = problem.costs().TotalCost(best.roads);
  return best;
}

struct RandomInstance {
  graph::Graph graph;
  rtf::CorrelationTable table;
  crowd::CostModel costs;
};

RandomInstance MakeInstance(int num_roads, uint64_t seed) {
  util::Rng rng(seed);
  graph::RoadNetworkOptions net;
  net.num_roads = num_roads;
  RandomInstance inst{*graph::RoadNetwork(net, rng), {}, {}};
  std::vector<double> rho(static_cast<size_t>(inst.graph.num_edges()));
  for (double& r : rho) r = rng.UniformDouble(0.3, 0.95);
  inst.table = *rtf::CorrelationTable::FromEdgeCorrelations(inst.graph, rho);
  inst.costs = *crowd::CostModel::UniformRandom(num_roads, 1, 4, rng);
  return inst;
}

TEST(ExactSolverTest, MatchesBruteForceOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const RandomInstance inst = MakeInstance(14, seed);
    util::Rng rng(seed * 100);
    std::vector<graph::RoadId> queried;
    std::vector<double> weights;
    for (int i = 0; i < 5; ++i) {
      queried.push_back(i * 2);
      weights.push_back(rng.UniformDouble(0.5, 5.0));
    }
    std::vector<graph::RoadId> candidates;
    for (int i = 1; i < 14; i += 1) candidates.push_back(i);
    const double theta = seed % 2 == 0 ? 1.0 : 0.85;
    const auto problem = OcsProblem::Create(inst.table, queried, weights,
                                            candidates, inst.costs,
                                            /*budget=*/6, theta);
    ASSERT_TRUE(problem.ok());
    const auto exact = ExactSolve(*problem);
    ASSERT_TRUE(exact.ok());
    const OcsSolution brute = BruteForce(*problem);
    EXPECT_NEAR(exact->objective, brute.objective, 1e-9)
        << "seed " << seed;
    EXPECT_TRUE(problem->IsFeasible(exact->roads));
  }
}

TEST(ExactSolverTest, RefusesHugeInstances) {
  const RandomInstance inst = MakeInstance(40, 1);
  std::vector<graph::RoadId> candidates;
  for (int i = 0; i < 40; ++i) candidates.push_back(i);
  const auto problem = OcsProblem::Create(inst.table, {0}, {1.0},
                                          candidates, inst.costs, 5, 1.0);
  ASSERT_TRUE(problem.ok());
  EXPECT_FALSE(ExactSolve(*problem).ok());
}

TEST(ExactSolverTest, EmptyBudgetGivesEmptySolution) {
  const RandomInstance inst = MakeInstance(10, 2);
  const auto problem = OcsProblem::Create(inst.table, {0}, {1.0},
                                          {1, 2, 3}, inst.costs, 0, 1.0);
  ASSERT_TRUE(problem.ok());
  const auto exact = ExactSolve(*problem);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->roads.empty());
  EXPECT_DOUBLE_EQ(exact->objective, 0.0);
}

TEST(ExactSolverTest, HybridWithinTheoremBound) {
  // Theorem 2: Hybrid-Greedy >= (1 - 1/e)/2 of the optimum.
  const double bound = (1.0 - 1.0 / std::exp(1.0)) / 2.0;
  for (uint64_t seed = 10; seed < 25; ++seed) {
    const RandomInstance inst = MakeInstance(16, seed);
    util::Rng rng(seed);
    std::vector<graph::RoadId> queried;
    std::vector<double> weights;
    for (int i = 0; i < 6; ++i) {
      queried.push_back(static_cast<graph::RoadId>(
          rng.UniformUint64(16)));
      weights.push_back(rng.UniformDouble(0.5, 4.0));
    }
    // De-duplicate queried roads (Create tolerates duplicates in R^q?
    // keep distinct to be safe).
    std::sort(queried.begin(), queried.end());
    queried.erase(std::unique(queried.begin(), queried.end()),
                  queried.end());
    weights.resize(queried.size());
    std::vector<graph::RoadId> candidates;
    for (int i = 0; i < 16; ++i) candidates.push_back(i);
    const auto problem = OcsProblem::Create(inst.table, queried, weights,
                                            candidates, inst.costs, 8, 1.0);
    ASSERT_TRUE(problem.ok());
    const auto exact = ExactSolve(*problem);
    ASSERT_TRUE(exact.ok());
    const OcsSolution hybrid = HybridGreedy(*problem);
    if (exact->objective > 0.0) {
      EXPECT_GE(hybrid.objective / exact->objective, bound - 1e-9)
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace crowdrtse::ocs
