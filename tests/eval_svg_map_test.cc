#include "eval/svg_map.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "graph/generators.h"
#include "util/rng.h"

namespace crowdrtse::eval {
namespace {

TEST(SpeedRatioColorTest, GradientEndpoints) {
  // Blocked (ratio ~0) renders red-ish; free flow renders green-ish.
  const std::string blocked = SpeedRatioColor(0.1);
  const std::string free_flow = SpeedRatioColor(1.0);
  EXPECT_EQ(blocked.substr(0, 3), "#dc");   // red channel saturated
  EXPECT_EQ(free_flow.substr(1, 2), "00");  // red channel gone
  EXPECT_NE(blocked, free_flow);
  // Out-of-range ratios clamp instead of crashing.
  EXPECT_EQ(SpeedRatioColor(-5.0), SpeedRatioColor(0.0));
  EXPECT_EQ(SpeedRatioColor(99.0), SpeedRatioColor(1.2));
}

TEST(SvgMapTest, RendersAllElements) {
  util::Rng rng(3);
  std::vector<std::pair<double, double>> positions;
  graph::RoadNetworkOptions net;
  net.num_roads = 30;
  const graph::Graph g = *graph::RoadNetwork(net, rng, &positions);
  ASSERT_EQ(positions.size(), 30u);
  std::vector<double> ratios(30, 1.0);
  ratios[5] = 0.2;
  SvgMapOptions options;
  options.title = "test map";
  const auto svg = RenderSvgMap(g, positions, ratios, {5, 10}, options);
  ASSERT_TRUE(svg.ok());
  // One circle per road, one line per adjacency, title present.
  size_t circles = 0;
  size_t pos = 0;
  while ((pos = svg->find("<circle", pos)) != std::string::npos) {
    ++circles;
    ++pos;
  }
  EXPECT_EQ(circles, 30u);
  size_t lines = 0;
  pos = 0;
  while ((pos = svg->find("<line", pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, static_cast<size_t>(g.num_edges()));
  EXPECT_NE(svg->find("test map"), std::string::npos);
  // Probed roads carry the white ring stroke.
  EXPECT_NE(svg->find("stroke=\"#ffffff\""), std::string::npos);
}

TEST(SvgMapTest, Validation) {
  const graph::Graph g = *graph::PathNetwork(3);
  const std::vector<std::pair<double, double>> positions(3, {0.5, 0.5});
  const std::vector<double> ratios(3, 1.0);
  EXPECT_FALSE(RenderSvgMap(g, {}, ratios, {}).ok());
  EXPECT_FALSE(RenderSvgMap(g, positions, {1.0}, {}).ok());
  EXPECT_FALSE(RenderSvgMap(g, positions, ratios, {9}).ok());
}

TEST(SvgMapTest, FileWrite) {
  const graph::Graph g = *graph::PathNetwork(4);
  const std::vector<std::pair<double, double>> positions{
      {0.1, 0.1}, {0.4, 0.2}, {0.7, 0.5}, {0.9, 0.9}};
  const std::vector<double> ratios{1.0, 0.8, 0.4, 0.2};
  const std::string path = ::testing::TempDir() + "/map_test.svg";
  ASSERT_TRUE(WriteSvgMap(path, g, positions, ratios, {0}).ok());
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_FALSE(
      WriteSvgMap("/no/such/dir/map.svg", g, positions, ratios, {}).ok());
}

}  // namespace
}  // namespace crowdrtse::eval
