#include "graph/dijkstra.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"

namespace crowdrtse::graph {
namespace {

TEST(DijkstraTest, PathGraphDistances) {
  const Graph g = *PathNetwork(5);
  const auto weights = [](EdgeId) { return 2.0; };
  const ShortestPaths tree = Dijkstra(g, 0, weights);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(tree.distance[static_cast<size_t>(i)], 2.0 * i);
  }
}

TEST(DijkstraTest, PrefersCheaperLongerPath) {
  // 0 -e0- 1 -e1- 2  and direct chord 0 -e2- 2 with a high weight.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);  // e0
  builder.AddEdge(1, 2);  // e1
  builder.AddEdge(0, 2);  // e2
  const Graph g = *builder.Build();
  const std::vector<double> w{1.0, 1.0, 10.0};
  const ShortestPaths tree =
      Dijkstra(g, 0, [&](EdgeId e) { return w[static_cast<size_t>(e)]; });
  EXPECT_DOUBLE_EQ(tree.distance[2], 2.0);
  EXPECT_EQ(ReconstructPath(tree, 0, 2), (std::vector<RoadId>{0, 1, 2}));
}

TEST(DijkstraTest, UnreachableIsInfinity) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  const Graph g = *builder.Build();
  const ShortestPaths tree = Dijkstra(g, 0, [](EdgeId) { return 1.0; });
  EXPECT_EQ(tree.distance[2], kUnreachable);
  EXPECT_TRUE(ReconstructPath(tree, 0, 2).empty());
}

TEST(DijkstraTest, SourceDistanceZero) {
  const Graph g = *RingNetwork(6);
  const ShortestPaths tree = Dijkstra(g, 3, [](EdgeId) { return 1.0; });
  EXPECT_DOUBLE_EQ(tree.distance[3], 0.0);
  EXPECT_EQ(tree.parent[3], kInvalidRoad);
}

TEST(DijkstraTest, RingGoesBothWays) {
  const Graph g = *RingNetwork(8);
  const ShortestPaths tree = Dijkstra(g, 0, [](EdgeId) { return 1.0; });
  EXPECT_DOUBLE_EQ(tree.distance[4], 4.0);
  EXPECT_DOUBLE_EQ(tree.distance[6], 2.0);  // shorter backwards
}

TEST(DijkstraTest, InfiniteWeightEdgeBlocked) {
  const Graph g = *PathNetwork(3);
  const ShortestPaths tree = Dijkstra(g, 0, [](EdgeId e) {
    return e == 1 ? kUnreachable : 1.0;
  });
  EXPECT_DOUBLE_EQ(tree.distance[1], 1.0);
  EXPECT_EQ(tree.distance[2], kUnreachable);
}

TEST(DijkstraTest, InvalidSourceAllUnreachable) {
  const Graph g = *PathNetwork(3);
  const ShortestPaths tree = Dijkstra(g, 99, [](EdgeId) { return 1.0; });
  for (double d : tree.distance) EXPECT_EQ(d, kUnreachable);
}

TEST(DijkstraTest, ReconstructPathSingleNode) {
  const Graph g = *PathNetwork(3);
  const ShortestPaths tree = Dijkstra(g, 1, [](EdgeId) { return 1.0; });
  EXPECT_EQ(ReconstructPath(tree, 1, 1), (std::vector<RoadId>{1}));
}

TEST(DijkstraTest, GridMatchesManhattanWithUnitWeights) {
  const Graph g = *GridNetwork(5, 5);
  const ShortestPaths tree = Dijkstra(g, 0, [](EdgeId) { return 1.0; });
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_DOUBLE_EQ(tree.distance[static_cast<size_t>(r * 5 + c)],
                       static_cast<double>(r + c));
    }
  }
}

}  // namespace
}  // namespace crowdrtse::graph
