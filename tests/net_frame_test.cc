#include "net/frame.h"

#include <gtest/gtest.h>

#include <string>

namespace crowdrtse::net {
namespace {

TEST(FrameTest, EncodeDecodeRoundTrip) {
  const std::string payload = "{\"slot\":3,\"roads\":[1,2]}";
  const std::string wire = EncodeFrame(payload);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + payload.size());
  EXPECT_EQ(wire.substr(0, 4), "CQRC");

  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
  std::string out;
  const auto got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  EXPECT_EQ(out, payload);
  EXPECT_FALSE(*decoder.Next(&out));
}

TEST(FrameTest, ByteAtATimeAndBackToBack) {
  const std::string wire =
      EncodeFrame("first") + EncodeFrame("") + EncodeFrame("third");
  FrameDecoder decoder;
  std::string out;
  int frames = 0;
  for (const char c : wire) {
    ASSERT_TRUE(decoder.Feed(&c, 1).ok());
    for (;;) {
      const auto got = decoder.Next(&out);
      ASSERT_TRUE(got.ok());
      if (!*got) break;
      ++frames;
      if (frames == 1) {
        EXPECT_EQ(out, "first");
      } else if (frames == 2) {
        EXPECT_EQ(out, "");
      } else if (frames == 3) {
        EXPECT_EQ(out, "third");
      }
    }
  }
  EXPECT_EQ(frames, 3);
}

TEST(FrameTest, BinaryPayloadSurvives) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  FrameDecoder decoder;
  const std::string wire = EncodeFrame(payload);
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
  std::string out;
  ASSERT_TRUE(*decoder.Next(&out));
  EXPECT_EQ(out, payload);
}

TEST(FrameTest, BadMagicPoisonsStream) {
  FrameDecoder decoder;
  const std::string wire = "HTTP/1.1 oops this is not a frame";
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
  std::string out;
  EXPECT_FALSE(decoder.Next(&out).ok());
}

TEST(FrameTest, OversizeLengthRejected) {
  std::string wire = EncodeFrame("x");
  // Patch the length field to something absurd.
  const uint32_t huge = kMaxFramePayloadBytes + 1;
  wire[4] = static_cast<char>(huge & 0xFF);
  wire[5] = static_cast<char>((huge >> 8) & 0xFF);
  wire[6] = static_cast<char>((huge >> 16) & 0xFF);
  wire[7] = static_cast<char>((huge >> 24) & 0xFF);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
  std::string out;
  EXPECT_FALSE(decoder.Next(&out).ok());
}

}  // namespace
}  // namespace crowdrtse::net
