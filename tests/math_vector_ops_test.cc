#include "math/vector_ops.h"

#include <gtest/gtest.h>

namespace crowdrtse::math {
namespace {

TEST(VectorOpsTest, Dot) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(VectorOpsTest, Norms) {
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Norm1({-1, 2, -3}), 6.0);
  EXPECT_DOUBLE_EQ(NormInf({-1, 2, -3}), 3.0);
  EXPECT_DOUBLE_EQ(NormInf({}), 0.0);
}

TEST(VectorOpsTest, Axpy) {
  std::vector<double> y{1, 1, 1};
  Axpy(2.0, {1, 2, 3}, y);
  EXPECT_EQ(y, (std::vector<double>{3, 5, 7}));
}

TEST(VectorOpsTest, Scale) {
  std::vector<double> x{1, -2};
  Scale(-3.0, x);
  EXPECT_EQ(x, (std::vector<double>{-3, 6}));
}

TEST(VectorOpsTest, AddSubtract) {
  EXPECT_EQ(Add({1, 2}, {3, 4}), (std::vector<double>{4, 6}));
  EXPECT_EQ(Subtract({1, 2}, {3, 4}), (std::vector<double>{-2, -2}));
}

TEST(SoftThresholdTest, ThreeRegimes) {
  EXPECT_DOUBLE_EQ(SoftThreshold(5.0, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(-5.0, 2.0), -3.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(-1.5, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(2.0, 2.0), 0.0);  // boundary maps to zero
}

}  // namespace
}  // namespace crowdrtse::math
