#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "graph/generators.h"
#include "ocs/exact_solver.h"
#include "ocs/greedy_selectors.h"
#include "ocs/ocs_problem.h"
#include "util/rng.h"

namespace crowdrtse::ocs {
namespace {

/// Parameterised property sweep over (seed, budget, theta, cost range).
using OcsParams = std::tuple<uint64_t, int, double, int>;

class OcsPropertyTest : public ::testing::TestWithParam<OcsParams> {
 protected:
  void SetUp() override {
    const auto [seed, budget, theta, max_cost] = GetParam();
    seed_ = seed;
    budget_ = budget;
    theta_ = theta;
    util::Rng rng(seed);
    graph::RoadNetworkOptions net;
    net.num_roads = 60;
    graph_ = *graph::RoadNetwork(net, rng);
    std::vector<double> rho(static_cast<size_t>(graph_.num_edges()));
    for (double& r : rho) r = rng.UniformDouble(0.3, 0.95);
    table_ = *rtf::CorrelationTable::FromEdgeCorrelations(graph_, rho);
    costs_ = *crowd::CostModel::UniformRandom(60, 1, max_cost, rng);
    for (int i = 0; i < 15; ++i) {
      queried_.push_back(static_cast<graph::RoadId>(rng.UniformUint64(60)));
      weights_.push_back(rng.UniformDouble(0.5, 8.0));
    }
    std::sort(queried_.begin(), queried_.end());
    queried_.erase(std::unique(queried_.begin(), queried_.end()),
                   queried_.end());
    weights_.resize(queried_.size());
    for (int i = 0; i < 60; ++i) candidates_.push_back(i);
  }

  OcsProblem Problem() const {
    return *OcsProblem::Create(table_, queried_, weights_, candidates_,
                               costs_, budget_, theta_);
  }

  uint64_t seed_;
  int budget_;
  double theta_;
  graph::Graph graph_;
  rtf::CorrelationTable table_;
  crowd::CostModel costs_;
  std::vector<graph::RoadId> queried_;
  std::vector<double> weights_;
  std::vector<graph::RoadId> candidates_;
};

TEST_P(OcsPropertyTest, AllSelectorsProduceFeasibleSolutions) {
  const OcsProblem problem = Problem();
  util::Rng rng(seed_ + 1);
  for (const OcsSolution& s :
       {RatioGreedy(problem), ObjectiveGreedy(problem),
        HybridGreedy(problem), RandomSelect(problem, rng)}) {
    EXPECT_TRUE(problem.IsFeasible(s.roads));
    EXPECT_LE(s.total_cost, budget_);
  }
}

TEST_P(OcsPropertyTest, ReportedObjectiveMatchesRecomputation) {
  const OcsProblem problem = Problem();
  for (const OcsSolution& s :
       {RatioGreedy(problem), ObjectiveGreedy(problem),
        HybridGreedy(problem)}) {
    EXPECT_NEAR(s.objective, problem.Objective(s.roads), 1e-9);
  }
}

TEST_P(OcsPropertyTest, HybridDominatesComponents) {
  const OcsProblem problem = Problem();
  const OcsSolution hybrid = HybridGreedy(problem);
  EXPECT_GE(hybrid.objective, RatioGreedy(problem).objective - 1e-12);
  EXPECT_GE(hybrid.objective, ObjectiveGreedy(problem).objective - 1e-12);
}

TEST_P(OcsPropertyTest, HybridBeatsRandomOnAverage) {
  const OcsProblem problem = Problem();
  const OcsSolution hybrid = HybridGreedy(problem);
  util::Rng rng(seed_ + 2);
  double random_sum = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    random_sum += RandomSelect(problem, rng).objective;
  }
  EXPECT_GE(hybrid.objective, random_sum / trials - 1e-9);
}

TEST_P(OcsPropertyTest, GreedyNoBudgetLeftForAnyFeasibleCandidate) {
  // Maximality: after greedy terminates no remaining candidate fits the
  // leftover budget and redundancy constraint with positive cost... (it
  // may have zero gain, but greedy only stops when nothing is feasible).
  const OcsProblem problem = Problem();
  const OcsSolution s = HybridGreedy(problem);
  const int leftover = budget_ - s.total_cost;
  for (graph::RoadId c : candidates_) {
    if (std::find(s.roads.begin(), s.roads.end(), c) != s.roads.end()) {
      continue;
    }
    const bool fits = costs_.Cost(c) <= leftover &&
                      problem.RedundancyOk(c, s.roads);
    EXPECT_FALSE(fits) << "candidate " << c << " still feasible";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OcsPropertyTest,
    ::testing::Combine(::testing::Values(1ULL, 2ULL, 3ULL),
                       ::testing::Values(5, 20, 60),
                       ::testing::Values(0.85, 0.92, 1.0),
                       ::testing::Values(5, 10)));

}  // namespace
}  // namespace crowdrtse::ocs
