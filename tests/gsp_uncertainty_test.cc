#include "gsp/uncertainty.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "util/rng.h"

namespace crowdrtse::gsp {
namespace {

rtf::RtfModel RandomModel(const graph::Graph& g, uint64_t seed) {
  util::Rng rng(seed);
  rtf::RtfModel model(g, 1);
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    model.SetMu(0, r, rng.UniformDouble(30.0, 70.0));
    model.SetSigma(0, r, rng.UniformDouble(1.0, 6.0));
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    model.SetRho(0, e, rng.UniformDouble(0.3, 0.95));
  }
  return model;
}

TEST(UncertaintyTest, SampledRoadsHaveZeroVariance) {
  const graph::Graph g = *graph::PathNetwork(6);
  const rtf::RtfModel model = RandomModel(g, 1);
  const auto exact = ExactPosteriorVariances(model, 0, {2, 4});
  const auto local = LocalConditionalVariances(model, 0, {2, 4});
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(local.ok());
  EXPECT_DOUBLE_EQ((*exact)[2], 0.0);
  EXPECT_DOUBLE_EQ((*exact)[4], 0.0);
  EXPECT_DOUBLE_EQ((*local)[2], 0.0);
  EXPECT_DOUBLE_EQ((*local)[4], 0.0);
  for (graph::RoadId r : {0, 1, 3, 5}) {
    EXPECT_GT((*exact)[static_cast<size_t>(r)], 0.0);
  }
}

TEST(UncertaintyTest, LocalIsLowerBoundOnExact) {
  util::Rng rng(3);
  graph::RoadNetworkOptions net;
  net.num_roads = 50;
  const graph::Graph g = *graph::RoadNetwork(net, rng);
  const rtf::RtfModel model = RandomModel(g, 5);
  const auto exact = ExactPosteriorVariances(model, 0, {0, 25});
  const auto local = LocalConditionalVariances(model, 0, {0, 25});
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(local.ok());
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    EXPECT_LE((*local)[static_cast<size_t>(r)],
              (*exact)[static_cast<size_t>(r)] + 1e-12)
        << "road " << r;
  }
}

TEST(UncertaintyTest, MoreProbesNeverIncreaseVariance) {
  util::Rng rng(7);
  graph::RoadNetworkOptions net;
  net.num_roads = 40;
  const graph::Graph g = *graph::RoadNetwork(net, rng);
  const rtf::RtfModel model = RandomModel(g, 9);
  const auto sparse = ExactPosteriorVariances(model, 0, {0});
  const auto dense = ExactPosteriorVariances(model, 0, {0, 10, 20, 30});
  ASSERT_TRUE(sparse.ok());
  ASSERT_TRUE(dense.ok());
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    EXPECT_LE((*dense)[static_cast<size_t>(r)],
              (*sparse)[static_cast<size_t>(r)] + 1e-12);
  }
}

TEST(UncertaintyTest, VarianceGrowsWithDistanceFromProbe) {
  // On a uniform path probed at one end, confidence decays along the path.
  const graph::Graph g = *graph::PathNetwork(8);
  rtf::RtfModel model(g, 1);
  for (graph::RoadId r = 0; r < 8; ++r) {
    model.SetMu(0, r, 50.0);
    model.SetSigma(0, r, 4.0);
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    model.SetRho(0, e, 0.9);
  }
  const auto exact = ExactPosteriorVariances(model, 0, {0});
  ASSERT_TRUE(exact.ok());
  for (graph::RoadId r = 1; r < 7; ++r) {
    EXPECT_LT((*exact)[static_cast<size_t>(r)],
              (*exact)[static_cast<size_t>(r) + 1]);
  }
}

TEST(UncertaintyTest, NoSamplesGivesPriorMarginals) {
  const graph::Graph g = *graph::PathNetwork(4);
  const rtf::RtfModel model = RandomModel(g, 11);
  const auto exact = ExactPosteriorVariances(model, 0, {});
  ASSERT_TRUE(exact.ok());
  for (double v : *exact) EXPECT_GT(v, 0.0);
}

TEST(UncertaintyTest, EverythingSampledAllZero) {
  const graph::Graph g = *graph::PathNetwork(3);
  const rtf::RtfModel model = RandomModel(g, 13);
  const auto exact = ExactPosteriorVariances(model, 0, {0, 1, 2});
  ASSERT_TRUE(exact.ok());
  for (double v : *exact) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(UncertaintyTest, Validation) {
  const graph::Graph g = *graph::PathNetwork(3);
  const rtf::RtfModel model = RandomModel(g, 15);
  EXPECT_FALSE(ExactPosteriorVariances(model, 9, {}).ok());
  EXPECT_FALSE(ExactPosteriorVariances(model, 0, {7}).ok());
  EXPECT_FALSE(LocalConditionalVariances(model, -1, {}).ok());
}

}  // namespace
}  // namespace crowdrtse::gsp
