#include "core/congestion_monitor.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace crowdrtse::core {
namespace {

rtf::RtfModel FlatModel(const graph::Graph& g, double mu) {
  rtf::RtfModel model(g, 1);
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    model.SetMu(0, r, mu);
    model.SetSigma(0, r, 3.0);
  }
  return model;
}

TEST(CongestionMonitorTest, GradesBySeverity) {
  const graph::Graph g = *graph::PathNetwork(2);
  const rtf::RtfModel model = FlatModel(g, 50.0);
  const CongestionMonitor monitor(model);
  EXPECT_EQ(monitor.Grade(0.9), CongestionLevel::kNone);
  EXPECT_EQ(monitor.Grade(0.65), CongestionLevel::kSlow);
  EXPECT_EQ(monitor.Grade(0.45), CongestionLevel::kCongested);
  EXPECT_EQ(monitor.Grade(0.2), CongestionLevel::kBlocked);
}

TEST(CongestionMonitorTest, ScanFindsAndSortsAlarms) {
  const graph::Graph g = *graph::PathNetwork(5);
  const rtf::RtfModel model = FlatModel(g, 50.0);
  const CongestionMonitor monitor(model);
  // Roads: 0 fine, 1 slow (60%), 2 blocked (10%), 3 congested (40%),
  // 4 fine.
  const std::vector<double> estimates{50.0, 30.0, 5.0, 20.0, 55.0};
  const auto alarms = monitor.Scan(0, estimates, {0, 1, 2, 3, 0});
  ASSERT_TRUE(alarms.ok());
  ASSERT_EQ(alarms->size(), 3u);
  EXPECT_EQ((*alarms)[0].road, 2);
  EXPECT_EQ((*alarms)[0].level, CongestionLevel::kBlocked);
  EXPECT_EQ((*alarms)[0].hops_from_probe, 2);
  EXPECT_EQ((*alarms)[1].road, 3);
  EXPECT_EQ((*alarms)[1].level, CongestionLevel::kCongested);
  EXPECT_EQ((*alarms)[2].road, 1);
  EXPECT_EQ((*alarms)[2].level, CongestionLevel::kSlow);
  EXPECT_NEAR((*alarms)[2].speed_ratio, 0.6, 1e-12);
}

TEST(CongestionMonitorTest, NoAlarmsWhenTrafficNormal) {
  const graph::Graph g = *graph::PathNetwork(3);
  const rtf::RtfModel model = FlatModel(g, 40.0);
  const CongestionMonitor monitor(model);
  const auto alarms = monitor.Scan(0, {38.0, 42.0, 40.0});
  ASSERT_TRUE(alarms.ok());
  EXPECT_TRUE(alarms->empty());
}

TEST(CongestionMonitorTest, CustomThresholds) {
  const graph::Graph g = *graph::PathNetwork(2);
  const rtf::RtfModel model = FlatModel(g, 50.0);
  CongestionThresholds strict;
  strict.slow = 0.95;
  strict.congested = 0.9;
  strict.blocked = 0.8;
  const CongestionMonitor monitor(model, strict);
  const auto alarms = monitor.Scan(0, {46.0, 50.0});
  ASSERT_TRUE(alarms.ok());
  ASSERT_EQ(alarms->size(), 1u);
  EXPECT_EQ((*alarms)[0].level, CongestionLevel::kSlow);
}

TEST(CongestionMonitorTest, LevelNames) {
  EXPECT_STREQ(CongestionLevelName(CongestionLevel::kNone), "none");
  EXPECT_STREQ(CongestionLevelName(CongestionLevel::kSlow), "slow");
  EXPECT_STREQ(CongestionLevelName(CongestionLevel::kCongested),
               "congested");
  EXPECT_STREQ(CongestionLevelName(CongestionLevel::kBlocked), "blocked");
}

TEST(CongestionMonitorTest, Validation) {
  const graph::Graph g = *graph::PathNetwork(3);
  const rtf::RtfModel model = FlatModel(g, 50.0);
  const CongestionMonitor monitor(model);
  EXPECT_FALSE(monitor.Scan(5, {1.0, 1.0, 1.0}).ok());
  EXPECT_FALSE(monitor.Scan(0, {1.0}).ok());
  EXPECT_FALSE(monitor.Scan(0, {1.0, 1.0, 1.0}, {0}).ok());
}

}  // namespace
}  // namespace crowdrtse::core
