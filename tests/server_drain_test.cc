/// Shutdown-ordering regression tests (run under TSan in CI): tearing an
/// engine or the Gamma_R cache down while other threads are mid-serve /
/// mid-compute used to race their worker pools' destruction. Drain() now
/// gates both; these tests destroy under load and let the sanitizer judge.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "rtf/correlation_cache.h"
#include "server/query_engine.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::server {
namespace {

class DrainTest : public ::testing::Test {
 protected:
  DrainTest() {
    util::Rng rng(3);
    graph::RoadNetworkOptions net;
    net.num_roads = 100;
    graph_ = *graph::RoadNetwork(net, rng);
    traffic::TrafficModelOptions traffic_options;
    traffic_options.num_days = 8;
    sim_ = std::make_unique<traffic::TrafficSimulator>(graph_,
                                                       traffic_options, 5);
    history_ = sim_->GenerateHistory();
    truth_ = sim_->GenerateEvaluationDay();
    system_ = std::make_unique<core::CrowdRtse>(
        *core::CrowdRtse::BuildOffline(graph_, history_, {}));
    WorkerRegistryOptions registry_options;
    registry_options.num_workers = 600;
    registry_ = std::make_unique<WorkerRegistry>(graph_, registry_options,
                                                 7);
    costs_ = crowd::CostModel::Constant(100, 2);
    crowd_sim_ =
        std::make_unique<crowd::CrowdSimulator>(crowd::CrowdSimOptions{},
                                                util::Rng(9));
    ledger_ = std::make_unique<BudgetLedger>(-1, 12);
  }

  QueryRequest MakeRequest(int slot = 100) {
    QueryRequest request;
    request.slot = slot;
    request.queried = {3, 17, 42, 77};
    return request;
  }

  graph::Graph graph_;
  std::unique_ptr<traffic::TrafficSimulator> sim_;
  traffic::HistoryStore history_;
  traffic::DayMatrix truth_;
  std::unique_ptr<core::CrowdRtse> system_;
  std::unique_ptr<WorkerRegistry> registry_;
  crowd::CostModel costs_;
  std::unique_ptr<crowd::CrowdSimulator> crowd_sim_;
  std::unique_ptr<BudgetLedger> ledger_;
};

// The §6 regression proper: serving threads hammer the engine while the
// main thread drains and then destroys it. Before the drain gate this
// destroyed the propagator pool and the Gamma_R fan-out pool under the
// serving threads' feet.
TEST_F(DrainTest, DestructionUnderServingLoadIsSafe) {
  auto engine = std::make_unique<QueryEngine>(*system_, *registry_,
                                              *ledger_, costs_, *crowd_sim_);
  constexpr int kThreads = 4;
  std::atomic<int64_t> served{0};
  std::atomic<int64_t> refused{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Spread across slots so cold Gamma_R computes stay in flight.
      for (int i = 0; !engine->draining(); ++i) {
        const auto response =
            engine->Serve(MakeRequest(100 + (t * 7 + i) % 40), truth_);
        if (response.ok()) {
          served.fetch_add(1);
        } else {
          // Only the drain refusal is a legal failure here.
          EXPECT_EQ(response.status().code(),
                    util::StatusCode::kFailedPrecondition);
          refused.fetch_add(1);
        }
      }
    });
  }
  // Let real serving overlap the drain.
  while (served.load() < 4) std::this_thread::yield();
  engine->Drain();

  // Post-drain the engine refuses but never crashes.
  EXPECT_TRUE(engine->draining());
  const auto after = engine->Serve(MakeRequest(), truth_);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(after.status().message().find("draining"), std::string::npos);

  for (auto& thread : threads) thread.join();
  const int64_t total = served.load();
  engine.reset();  // destructor's Drain() is idempotent
  EXPECT_GE(total, 4);
  EXPECT_EQ(ledger_->reserved_outstanding(), 0);
}

TEST_F(DrainTest, DrainIsIdempotentAndReentrant) {
  QueryEngine engine(*system_, *registry_, *ledger_, costs_, *crowd_sim_);
  ASSERT_TRUE(engine.Serve(MakeRequest(), truth_).ok());
  engine.Drain();
  engine.Drain();
  std::thread other([&] { engine.Drain(); });
  other.join();
  EXPECT_EQ(engine.stats().queries_served, 1);
}

// The cache half of the ordering bug: destroying the CorrelationCache
// while a compute is mid-flight tore down the Dijkstra fan-out pool under
// the computing thread. ~CorrelationCache now waits the compute out.
TEST(CorrelationCacheDrainTest, DestructionWaitsForInFlightCompute) {
  const graph::Graph g = *graph::PathNetwork(4);
  auto cache = std::make_unique<rtf::CorrelationCache>();
  std::atomic<bool> started{false};
  std::atomic<bool> finished{false};
  std::thread computer([&] {
    const auto table =
        cache->GetOrCompute(0, [&](int, util::ThreadPool*) {
          started.store(true);
          // Long enough that the destructor below overlaps the compute.
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          finished.store(true);
          return rtf::CorrelationTable::FromEdgeCorrelations(
              g, {0.9, 0.8, 0.7});
        });
    EXPECT_TRUE(table.ok());
  });
  while (!started.load()) std::this_thread::yield();
  cache.reset();  // must block until the compute resolves
  EXPECT_TRUE(finished.load());
  computer.join();
}

TEST(CorrelationCacheDrainTest, DrainWithNothingInFlightReturnsAtOnce) {
  rtf::CorrelationCache cache;
  cache.Drain();  // no compute ever started
  const graph::Graph g = *graph::PathNetwork(4);
  ASSERT_TRUE(cache
                  .GetOrCompute(0,
                                [&](int, util::ThreadPool*) {
                                  return rtf::CorrelationTable::
                                      FromEdgeCorrelations(g,
                                                           {0.9, 0.8, 0.7});
                                })
                  .ok());
  cache.Drain();  // and again after the compute retired
}

}  // namespace
}  // namespace crowdrtse::server
