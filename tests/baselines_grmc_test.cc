#include "baselines/grmc.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "graph/generators.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::baselines {
namespace {

class GrmcTest : public ::testing::Test {
 protected:
  GrmcTest() {
    util::Rng rng(5);
    graph::RoadNetworkOptions net;
    net.num_roads = 40;
    graph_ = *graph::RoadNetwork(net, rng);
    traffic::TrafficModelOptions traffic_options;
    traffic_options.num_days = 12;
    sim_ = std::make_unique<traffic::TrafficSimulator>(graph_,
                                                       traffic_options, 9);
    history_ = sim_->GenerateHistory();
  }

  graph::Graph graph_;
  std::unique_ptr<traffic::TrafficSimulator> sim_;
  traffic::HistoryStore history_;
};

TEST_F(GrmcTest, CompletesRealtimeColumnReasonably) {
  GrmcOptions options;
  options.latent_rank = 8;
  const GrmcEstimator estimator(graph_, history_, options);
  const traffic::DayMatrix truth = sim_->GenerateEvaluationDay();
  const int slot = 100;
  std::vector<graph::RoadId> observed;
  std::vector<double> speeds;
  for (graph::RoadId r = 0; r < graph_.num_roads(); r += 3) {
    observed.push_back(r);
    speeds.push_back(truth.At(slot, r));
  }
  const auto est = estimator.Estimate(slot, observed, speeds);
  ASSERT_TRUE(est.ok());
  // Observed roads echo exactly.
  for (size_t i = 0; i < observed.size(); ++i) {
    EXPECT_DOUBLE_EQ((*est)[static_cast<size_t>(observed[i])], speeds[i]);
  }
  // Unobserved estimates should be closer to the truth than a constant
  // 0 guess and stay physical; compare against the global mean baseline.
  double grmc_err = 0.0;
  double mean_err = 0.0;
  double global_mean = 0.0;
  int count = 0;
  for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
    global_mean += truth.At(slot, r);
  }
  global_mean /= graph_.num_roads();
  for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
    if (r % 3 == 0) continue;
    grmc_err += std::fabs((*est)[static_cast<size_t>(r)] -
                          truth.At(slot, r));
    mean_err += std::fabs(global_mean - truth.At(slot, r));
    ++count;
  }
  EXPECT_LT(grmc_err / count, mean_err / count);
}

TEST_F(GrmcTest, DeterministicForSeed) {
  GrmcOptions options;
  const GrmcEstimator a(graph_, history_, options);
  const GrmcEstimator b(graph_, history_, options);
  const auto ra = a.Estimate(50, {0, 5}, {40.0, 60.0});
  const auto rb = b.Estimate(50, {0, 5}, {40.0, 60.0});
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  for (size_t i = 0; i < ra->size(); ++i) {
    EXPECT_DOUBLE_EQ((*ra)[i], (*rb)[i]);
  }
}

TEST_F(GrmcTest, GraphRegularisationSmoothsEstimates) {
  // With a strong Laplacian weight, adjacent unobserved roads should get
  // more similar estimates than with none.
  GrmcOptions smooth;
  smooth.graph_reg = 10.0;
  GrmcOptions rough;
  rough.graph_reg = 0.0;
  const GrmcEstimator smooth_est(graph_, history_, smooth);
  const GrmcEstimator rough_est(graph_, history_, rough);
  const auto rs = smooth_est.Estimate(100, {0}, {50.0});
  const auto rr = rough_est.Estimate(100, {0}, {50.0});
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rr.ok());
  double smooth_rough_sum = 0.0;
  double rough_rough_sum = 0.0;
  for (graph::EdgeId e = 0; e < graph_.num_edges(); ++e) {
    const auto [i, j] = graph_.EdgeEndpoints(e);
    smooth_rough_sum += std::fabs((*rs)[static_cast<size_t>(i)] -
                                  (*rs)[static_cast<size_t>(j)]);
    rough_rough_sum += std::fabs((*rr)[static_cast<size_t>(i)] -
                                 (*rr)[static_cast<size_t>(j)]);
  }
  EXPECT_LT(smooth_rough_sum, rough_rough_sum);
}

TEST_F(GrmcTest, Validation) {
  const GrmcEstimator estimator(graph_, history_, {});
  EXPECT_FALSE(estimator.Estimate(-1, {}, {}).ok());
  EXPECT_FALSE(estimator.Estimate(999, {}, {}).ok());
  EXPECT_FALSE(estimator.Estimate(0, {0}, {}).ok());
  EXPECT_FALSE(estimator.Estimate(0, {99}, {1.0}).ok());
  GrmcOptions bad;
  bad.latent_rank = 0;
  const GrmcEstimator bad_estimator(graph_, history_, bad);
  EXPECT_FALSE(bad_estimator.Estimate(0, {0}, {1.0}).ok());
  EXPECT_EQ(estimator.name(), "GRMC");
}

}  // namespace
}  // namespace crowdrtse::baselines
