#include "server/coalescer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace crowdrtse::server {
namespace {

QueryRequest MakeRequest(std::vector<graph::RoadId> roads, int slot = 7) {
  QueryRequest request;
  request.slot = slot;
  request.queried = std::move(roads);
  return request;
}

TEST(QueryCoalescerKeyTest, PermutationsOfOneRoadSetShareAKey) {
  QueryRequest a = MakeRequest({5, 1, 9});
  QueryRequest b = MakeRequest({9, 5, 1, 5});  // permuted, with a duplicate
  QueryCoalescer::CanonicalizeRoads(&a);
  QueryCoalescer::CanonicalizeRoads(&b);
  EXPECT_EQ(a.queried, b.queried);
  EXPECT_EQ(QueryCoalescer::KeyFor(a, ShedLevel::kNone),
            QueryCoalescer::KeyFor(b, ShedLevel::kNone));
}

TEST(QueryCoalescerKeyTest, DifferentSignaturesNeverCoalesce) {
  QueryRequest base = MakeRequest({1, 2, 3});
  const std::string key = QueryCoalescer::KeyFor(base, ShedLevel::kNone);

  QueryRequest other_slot = base;
  other_slot.slot = 8;
  EXPECT_NE(QueryCoalescer::KeyFor(other_slot, ShedLevel::kNone), key);

  QueryRequest other_roads = MakeRequest({1, 2, 4});
  EXPECT_NE(QueryCoalescer::KeyFor(other_roads, ShedLevel::kNone), key);

  QueryRequest other_budget = base;
  other_budget.budget_cap = 3;
  EXPECT_NE(QueryCoalescer::KeyFor(other_budget, ShedLevel::kNone), key);

  QueryRequest other_selector = base;
  other_selector.selector = core::SelectorKind::kRatioGreedy;
  EXPECT_NE(QueryCoalescer::KeyFor(other_selector, ShedLevel::kNone), key);

  // A different shed level runs a different pipeline — never shared.
  EXPECT_NE(QueryCoalescer::KeyFor(base, ShedLevel::kBudgetCap), key);

  // Road-list ambiguity: {1, 23} vs {12, 3} must not collide.
  QueryRequest ab = MakeRequest({1, 23});
  QueryRequest cd = MakeRequest({12, 3});
  QueryCoalescer::CanonicalizeRoads(&cd);
  EXPECT_NE(QueryCoalescer::KeyFor(ab, ShedLevel::kNone),
            QueryCoalescer::KeyFor(cd, ShedLevel::kNone));
}

TEST(QueryCoalescerTest, JoinersReceiveTheLeadersExactResponse) {
  QueryCoalescer coalescer;
  const std::string key = "k";
  auto [leader_batch, is_leader] = coalescer.Join(key);
  ASSERT_TRUE(is_leader);

  constexpr int kJoiners = 4;
  std::vector<QueryResponse> joined(kJoiners);
  std::vector<util::Status> statuses(kJoiners);
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  for (int i = 0; i < kJoiners; ++i) {
    threads.emplace_back([&, i] {
      auto [batch, lead] = coalescer.Join(key);
      EXPECT_FALSE(lead);
      ready.fetch_add(1);
      statuses[static_cast<size_t>(i)] =
          QueryCoalescer::Wait(batch, &joined[static_cast<size_t>(i)]);
    });
  }
  while (ready.load() < kJoiners) std::this_thread::yield();

  QueryResponse response;
  response.query_id = 42;
  response.queried_speeds = {31.25, 47.5};
  response.probed_roads = {3, 9};
  response.granted_budget = 12;
  response.paid = 7;
  coalescer.Complete(key, leader_batch, util::Status::Ok(),
                     QueryResponse(response));
  for (auto& thread : threads) thread.join();

  for (int i = 0; i < kJoiners; ++i) {
    ASSERT_TRUE(statuses[static_cast<size_t>(i)].ok());
    const QueryResponse& got = joined[static_cast<size_t>(i)];
    // Bit-identical fan-out: the joiner's answer IS the leader's answer.
    EXPECT_EQ(got.query_id, 42);
    EXPECT_EQ(got.queried_speeds, response.queried_speeds);
    EXPECT_EQ(got.probed_roads, response.probed_roads);
    EXPECT_EQ(got.granted_budget, 12);
    EXPECT_EQ(got.paid, 7);
  }
  EXPECT_EQ(coalescer.leads(), 1);
  EXPECT_EQ(coalescer.joins(), kJoiners);
}

TEST(QueryCoalescerTest, ErrorsPropagateToEveryJoiner) {
  QueryCoalescer coalescer;
  auto [batch, is_leader] = coalescer.Join("k");
  ASSERT_TRUE(is_leader);
  std::atomic<bool> joined{false};
  std::thread joiner([&] {
    auto [joined_batch, lead] = coalescer.Join("k");
    EXPECT_FALSE(lead);
    joined.store(true);
    QueryResponse response;
    const util::Status status =
        QueryCoalescer::Wait(joined_batch, &response);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  });
  // Completing before the join would retire the key and strand the joiner
  // leading a batch nobody completes.
  while (!joined.load()) std::this_thread::yield();
  coalescer.Complete(
      "k", batch,
      util::Status::FailedPrecondition("campaign budget exhausted"),
      QueryResponse());
  joiner.join();
}

TEST(QueryCoalescerTest, CompletedKeysRetireImmediately) {
  QueryCoalescer coalescer;
  auto [first, first_leads] = coalescer.Join("k");
  ASSERT_TRUE(first_leads);
  coalescer.Complete("k", first, util::Status::Ok(), QueryResponse());
  // The next arrival opens a fresh batch — results are never served from a
  // completed one (no stale caching).
  auto [second, second_leads] = coalescer.Join("k");
  EXPECT_TRUE(second_leads);
  EXPECT_NE(first.get(), second.get());
  coalescer.Complete("k", second, util::Status::Ok(), QueryResponse());
}

}  // namespace
}  // namespace crowdrtse::server
