#include "traffic/history_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/rng.h"

namespace crowdrtse::traffic {
namespace {

HistoryStore RandomHistory(int roads, int days, int slots, uint64_t seed) {
  util::Rng rng(seed);
  HistoryStore history(roads, days, slots);
  for (int day = 0; day < days; ++day) {
    for (int slot = 0; slot < slots; ++slot) {
      for (graph::RoadId r = 0; r < roads; ++r) {
        history.At(day, slot, r) = rng.UniformDouble(5.0, 90.0);
      }
    }
  }
  return history;
}

TEST(HistoryIoTest, BinaryRoundTrip) {
  const HistoryStore history = RandomHistory(7, 4, 12, 1);
  const std::string data = HistorySerializer::Serialize(history);
  const auto loaded = HistorySerializer::Deserialize(data);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_roads(), 7);
  EXPECT_EQ(loaded->num_days(), 4);
  EXPECT_EQ(loaded->num_slots(), 12);
  for (int day = 0; day < 4; ++day) {
    for (int slot = 0; slot < 12; ++slot) {
      for (graph::RoadId r = 0; r < 7; ++r) {
        EXPECT_DOUBLE_EQ(loaded->At(day, slot, r),
                         history.At(day, slot, r));
      }
    }
  }
}

TEST(HistoryIoTest, FileRoundTrip) {
  const HistoryStore history = RandomHistory(3, 2, 5, 2);
  const std::string path = ::testing::TempDir() + "/history_io_test.bin";
  ASSERT_TRUE(HistorySerializer::SaveToFile(history, path).ok());
  const auto loaded = HistorySerializer::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->At(1, 4, 2), history.At(1, 4, 2));
  std::remove(path.c_str());
}

TEST(HistoryIoTest, RejectsGarbage) {
  EXPECT_FALSE(HistorySerializer::Deserialize("nope").ok());
  const HistoryStore history = RandomHistory(3, 2, 5, 3);
  const std::string data = HistorySerializer::Serialize(history);
  EXPECT_FALSE(
      HistorySerializer::Deserialize(data.substr(0, data.size() - 9)).ok());
}

TEST(HistoryIoTest, MissingFileFails) {
  EXPECT_FALSE(HistorySerializer::LoadFromFile("/no/such/history.bin").ok());
}

TEST(HistoryIoTest, CsvRoundTrip) {
  std::vector<SpeedRecord> records{{0, 5, 2, 42.125}, {1, 100, 0, 7.5}};
  const std::string csv = RecordsToCsv(records);
  const auto parsed = RecordsFromCsv(csv);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].day, 0);
  EXPECT_EQ((*parsed)[0].slot, 5);
  EXPECT_EQ((*parsed)[0].road, 2);
  EXPECT_NEAR((*parsed)[0].speed_kmh, 42.125, 1e-3);
  EXPECT_EQ((*parsed)[1].slot, 100);
}

TEST(HistoryIoTest, CsvRejectsMissingColumns) {
  EXPECT_FALSE(RecordsFromCsv("day,slot,road\n1,2,3\n").ok());
  EXPECT_FALSE(RecordsFromCsv("day,slot,road,speed_kmh\n1,2,x,4\n").ok());
}

TEST(HistoryIoTest, ExtractDay) {
  const HistoryStore history = RandomHistory(4, 3, 6, 5);
  const auto records = ExtractDay(history, 1);
  EXPECT_EQ(records.size(), 24u);
  for (const SpeedRecord& r : records) {
    EXPECT_EQ(r.day, 1);
    EXPECT_DOUBLE_EQ(r.speed_kmh, history.At(1, r.slot, r.road));
  }
  EXPECT_TRUE(ExtractDay(history, 9).empty());
}

}  // namespace
}  // namespace crowdrtse::traffic
