#include "rtf/correlation_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "util/rng.h"

namespace crowdrtse::rtf {
namespace {

// A 4-road path graph: tables are 4x4 = 128 bytes of payload, so byte
// budgets in the tests below are easy to reason about.
constexpr std::size_t kTableBytes = 4 * 4 * sizeof(double);

graph::Graph TestGraph() { return *graph::PathNetwork(4); }

CorrelationCache::ComputeFn CountingCompute(const graph::Graph& graph,
                                            std::atomic<int>* count) {
  return [&graph, count](int, util::ThreadPool*) {
    count->fetch_add(1);
    return CorrelationTable::FromEdgeCorrelations(graph, {0.9, 0.8, 0.7});
  };
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/corr_cache_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(CorrelationCacheTest, MissThenHitReturnsSameTable) {
  const graph::Graph g = TestGraph();
  std::atomic<int> computes{0};
  CorrelationCache cache;
  const auto first = cache.GetOrCompute(3, CountingCompute(g, &computes));
  const auto second = cache.GetOrCompute(3, CountingCompute(g, &computes));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // same shared table
  EXPECT_EQ(computes.load(), 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.resident_tables, 1);
  EXPECT_EQ(stats.resident_bytes, static_cast<int64_t>(kTableBytes));
  EXPECT_EQ(stats.compute_latency.count, 1);
}

TEST(CorrelationCacheTest, RejectsNegativeSlot) {
  const graph::Graph g = TestGraph();
  std::atomic<int> computes{0};
  CorrelationCache cache;
  EXPECT_FALSE(cache.GetOrCompute(-1, CountingCompute(g, &computes)).ok());
  EXPECT_EQ(computes.load(), 0);
}

TEST(CorrelationCacheTest, ColdSlotDoesNotBlockOtherSlots) {
  // Thread A gets stuck *inside* the slot-0 computation; while it is stuck,
  // slot 1 must still be servable from this thread. Under the old
  // one-global-mutex design this test deadlocks.
  const graph::Graph g = TestGraph();
  CorrelationCache cache;
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<bool> slot0_entered{false};

  std::thread blocked([&] {
    const auto result =
        cache.GetOrCompute(0, [&](int, util::ThreadPool*) {
          slot0_entered = true;
          gate.wait();
          return CorrelationTable::FromEdgeCorrelations(g, {0.5, 0.5, 0.5});
        });
    EXPECT_TRUE(result.ok());
  });
  while (!slot0_entered.load()) std::this_thread::yield();

  std::atomic<int> computes{0};
  const auto other = cache.GetOrCompute(1, CountingCompute(g, &computes));
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(computes.load(), 1);
  EXPECT_TRUE(slot0_entered.load());

  release.set_value();
  blocked.join();
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(CorrelationCacheTest, DisjointColdSlotsComputeConcurrently) {
  // Every thread's compute spins until all four threads are inside their
  // computation at once — possible only if disjoint cold slots really run
  // in parallel. A serializing cache would never release the barrier.
  constexpr int kThreads = 4;
  const graph::Graph g = TestGraph();
  CorrelationCache cache;
  std::atomic<int> inside{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto result =
          cache.GetOrCompute(t, [&](int, util::ThreadPool*) {
            inside.fetch_add(1);
            while (inside.load() < kThreads) std::this_thread::yield();
            return CorrelationTable::FromEdgeCorrelations(g,
                                                          {0.9, 0.8, 0.7});
          });
      EXPECT_TRUE(result.ok());
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, kThreads);
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.resident_tables, kThreads);
}

TEST(CorrelationCacheTest, SameSlotFirstTouchesComputeExactlyOnce) {
  constexpr int kThreads = 8;
  const graph::Graph g = TestGraph();
  CorrelationCache cache;
  std::atomic<int> computes{0};
  std::atomic<bool> entered{false};
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  // The winning thread blocks inside the compute until every other thread
  // has had a chance to pile onto the same slot.
  const auto compute = [&](int, util::ThreadPool*) {
    computes.fetch_add(1);
    entered = true;
    gate.wait();
    return CorrelationTable::FromEdgeCorrelations(g, {0.9, 0.8, 0.7});
  };
  std::vector<std::thread> threads;
  std::atomic<int> started{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      started.fetch_add(1);
      const auto result = cache.GetOrCompute(42, compute);
      EXPECT_TRUE(result.ok());
    });
  }
  while (!entered.load() || started.load() < kThreads) {
    std::this_thread::yield();
  }
  release.set_value();
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(computes.load(), 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits + stats.misses, kThreads);
}

TEST(CorrelationCacheTest, ComputeErrorsPropagateButAreNotCached) {
  const graph::Graph g = TestGraph();
  CorrelationCache cache;
  std::atomic<int> calls{0};
  const auto failing = [&](int, util::ThreadPool*)
      -> util::Result<CorrelationTable> {
    calls.fetch_add(1);
    return util::Status::NumericalError("flaky");
  };
  EXPECT_FALSE(cache.GetOrCompute(0, failing).ok());
  EXPECT_EQ(calls.load(), 1);
  // The error is not cached: the next call retries and can succeed.
  std::atomic<int> computes{0};
  EXPECT_TRUE(cache.GetOrCompute(0, CountingCompute(g, &computes)).ok());
  EXPECT_EQ(computes.load(), 1);
}

TEST(CorrelationCacheTest, EvictionRespectsByteBudget) {
  const graph::Graph g = TestGraph();
  CorrelationCacheOptions options;
  options.memory_budget_bytes = 2 * kTableBytes;
  CorrelationCache cache(options);
  std::atomic<int> computes{0};
  ASSERT_TRUE(cache.GetOrCompute(0, CountingCompute(g, &computes)).ok());
  ASSERT_TRUE(cache.GetOrCompute(1, CountingCompute(g, &computes)).ok());
  ASSERT_TRUE(cache.GetOrCompute(2, CountingCompute(g, &computes)).ok());
  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.resident_tables, 2);
  EXPECT_LE(stats.resident_bytes,
            static_cast<int64_t>(options.memory_budget_bytes));
  // Slot 0 was least-recently used; touching it again recomputes a correct
  // table.
  const auto again = cache.GetOrCompute(0, CountingCompute(g, &computes));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(computes.load(), 4);
  EXPECT_DOUBLE_EQ((*again)->Corr(0, 1), 0.9);
  EXPECT_DOUBLE_EQ((*again)->Corr(0, 0), 1.0);
}

TEST(CorrelationCacheTest, HitsRefreshLruOrder) {
  const graph::Graph g = TestGraph();
  CorrelationCacheOptions options;
  options.memory_budget_bytes = 2 * kTableBytes;
  CorrelationCache cache(options);
  std::atomic<int> computes{0};
  ASSERT_TRUE(cache.GetOrCompute(0, CountingCompute(g, &computes)).ok());
  ASSERT_TRUE(cache.GetOrCompute(1, CountingCompute(g, &computes)).ok());
  ASSERT_TRUE(cache.GetOrCompute(0, CountingCompute(g, &computes)).ok());
  // Slot 1 is now the LRU victim.
  ASSERT_TRUE(cache.GetOrCompute(2, CountingCompute(g, &computes)).ok());
  EXPECT_EQ(computes.load(), 3);
  ASSERT_TRUE(cache.GetOrCompute(0, CountingCompute(g, &computes)).ok());
  EXPECT_EQ(computes.load(), 3);  // still resident
  ASSERT_TRUE(cache.GetOrCompute(1, CountingCompute(g, &computes)).ok());
  EXPECT_EQ(computes.load(), 4);  // evicted, recomputed
}

TEST(CorrelationCacheTest, BudgetBelowOneTableKeepsTheNewestTable) {
  const graph::Graph g = TestGraph();
  CorrelationCacheOptions options;
  options.memory_budget_bytes = kTableBytes / 2;
  CorrelationCache cache(options);
  std::atomic<int> computes{0};
  ASSERT_TRUE(cache.GetOrCompute(0, CountingCompute(g, &computes)).ok());
  EXPECT_EQ(cache.stats().resident_tables, 1);
  ASSERT_TRUE(cache.GetOrCompute(1, CountingCompute(g, &computes)).ok());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.resident_tables, 1);
  EXPECT_EQ(stats.evictions, 1);
}

TEST(CorrelationCacheTest, EvictionDoesNotInvalidateHeldTables) {
  const graph::Graph g = TestGraph();
  CorrelationCacheOptions options;
  options.memory_budget_bytes = kTableBytes;  // one table resident at most
  CorrelationCache cache(options);
  std::atomic<int> computes{0};
  const auto held = cache.GetOrCompute(0, CountingCompute(g, &computes));
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(cache.GetOrCompute(1, CountingCompute(g, &computes)).ok());
  EXPECT_EQ(cache.stats().evictions, 1);
  // The reader's shared_ptr outlives the eviction.
  EXPECT_DOUBLE_EQ((*held)->Corr(0, 1), 0.9);
}

TEST(CorrelationCacheTest, PersistsAndWarmStartsAcrossInstances) {
  const graph::Graph g = TestGraph();
  const std::string dir = FreshDir("warm");
  CorrelationCacheOptions options;
  options.persist_dir = dir;
  options.expected_num_roads = g.num_roads();
  std::atomic<int> computes{0};
  {
    CorrelationCache cache(options);
    ASSERT_TRUE(cache.GetOrCompute(3, CountingCompute(g, &computes)).ok());
    EXPECT_EQ(computes.load(), 1);
    EXPECT_TRUE(std::filesystem::exists(cache.PersistPath(3)));
  }
  {
    // Eager warm start: the restarted cache reloads slot 3 and never calls
    // the compute function again.
    CorrelationCache cache(options);
    EXPECT_EQ(cache.WarmStart(/*num_slots=*/8), 1);
    std::atomic<int> cold_computes{0};
    const auto table =
        cache.GetOrCompute(3, CountingCompute(g, &cold_computes));
    ASSERT_TRUE(table.ok());
    EXPECT_EQ(cold_computes.load(), 0);
    EXPECT_DOUBLE_EQ((*table)->Corr(0, 1), 0.9);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.warm_loads, 1);
    EXPECT_EQ(stats.hits, 1);
  }
  {
    // Lazy path: no WarmStart, the miss itself loads from disk.
    CorrelationCache cache(options);
    std::atomic<int> cold_computes{0};
    const auto table =
        cache.GetOrCompute(3, CountingCompute(g, &cold_computes));
    ASSERT_TRUE(table.ok());
    EXPECT_EQ(cold_computes.load(), 0);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.warm_loads, 1);
    EXPECT_EQ(stats.misses, 1);
  }
  std::filesystem::remove_all(dir);
}

TEST(CorrelationCacheTest, CorruptedPersistedFileFallsBackToCompute) {
  const graph::Graph g = TestGraph();
  const std::string dir = FreshDir("corrupt");
  CorrelationCacheOptions options;
  options.persist_dir = dir;
  options.expected_num_roads = g.num_roads();
  std::atomic<int> computes{0};
  {
    CorrelationCache cache(options);
    ASSERT_TRUE(cache.GetOrCompute(5, CountingCompute(g, &computes)).ok());
  }
  {
    // Truncate the persisted file mid-payload.
    CorrelationCache probe(options);
    const std::string path = probe.PersistPath(5);
    const auto full_size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full_size / 2);
  }
  {
    CorrelationCache cache(options);
    EXPECT_EQ(cache.WarmStart(8), 0);
    const auto table = cache.GetOrCompute(5, CountingCompute(g, &computes));
    ASSERT_TRUE(table.ok());
    EXPECT_EQ(computes.load(), 2);  // recomputed, not misparsed
    EXPECT_GE(cache.stats().persist_failures, 1);
    EXPECT_DOUBLE_EQ((*table)->Corr(0, 1), 0.9);
  }
  {
    // Scribble garbage over the (re-persisted) file.
    CorrelationCache probe(options);
    std::ofstream out(probe.PersistPath(5), std::ios::binary);
    out << "not a gamma table";
  }
  {
    CorrelationCache cache(options);
    const auto table = cache.GetOrCompute(5, CountingCompute(g, &computes));
    ASSERT_TRUE(table.ok());
    EXPECT_EQ(computes.load(), 3);
    EXPECT_GE(cache.stats().persist_failures, 1);
  }
  std::filesystem::remove_all(dir);
}

TEST(CorrelationCacheTest, MismatchedRoadCountRejectsPersistedFile) {
  const graph::Graph g = TestGraph();
  const std::string dir = FreshDir("mismatch");
  CorrelationCacheOptions options;
  options.persist_dir = dir;
  options.expected_num_roads = g.num_roads();
  std::atomic<int> computes{0};
  {
    CorrelationCache cache(options);
    ASSERT_TRUE(cache.GetOrCompute(0, CountingCompute(g, &computes)).ok());
  }
  CorrelationCacheOptions other = options;
  other.expected_num_roads = 7;  // pretend the network changed
  CorrelationCache cache(other);
  const auto table = cache.GetOrCompute(0, [&](int, util::ThreadPool*) {
    computes.fetch_add(1);
    return CorrelationTable::FromEdgeCorrelations(
        *graph::PathNetwork(7), {0.9, 0.8, 0.7, 0.6, 0.5, 0.4});
  });
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_roads(), 7);
  EXPECT_EQ(computes.load(), 2);
  EXPECT_GE(cache.stats().persist_failures, 1);
  std::filesystem::remove_all(dir);
}

TEST(CorrelationCacheTest, InvalidateDropsTableAndPersistedFile) {
  const graph::Graph g = TestGraph();
  const std::string dir = FreshDir("invalidate");
  CorrelationCacheOptions options;
  options.persist_dir = dir;
  CorrelationCache cache(options);
  std::atomic<int> computes{0};
  ASSERT_TRUE(cache.GetOrCompute(2, CountingCompute(g, &computes)).ok());
  ASSERT_TRUE(std::filesystem::exists(cache.PersistPath(2)));
  cache.Invalidate(2);
  EXPECT_FALSE(std::filesystem::exists(cache.PersistPath(2)));
  EXPECT_EQ(cache.stats().resident_tables, 0);
  ASSERT_TRUE(cache.GetOrCompute(2, CountingCompute(g, &computes)).ok());
  EXPECT_EQ(computes.load(), 2);
  std::filesystem::remove_all(dir);
}

TEST(CorrelationCacheTest, InvalidateDuringComputeDiscardsStaleResult) {
  // Invalidate lands while slot 0's compute is in flight. The stale result
  // (built with rho 0.9) must be discarded — neither cached nor persisted —
  // and both the computing thread and a coalesced waiter must end up with a
  // table built from the post-invalidation parameters (rho 0.5). The waiter
  // exercises the retry path: it wakes to a null table with an OK status
  // (the old code wrapped that OK status in a failed Result).
  const graph::Graph g = TestGraph();
  const std::string dir = FreshDir("stale");
  CorrelationCacheOptions options;
  options.persist_dir = dir;
  CorrelationCache cache(options);
  std::atomic<int> computes{0};
  std::atomic<bool> entered{false};
  std::atomic<bool> invalidated{false};
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  const auto compute = [&](int, util::ThreadPool*) {
    const double rho = invalidated.load() ? 0.5 : 0.9;
    if (computes.fetch_add(1) == 0) {
      entered = true;
      gate.wait();  // hold the first (pre-invalidation) compute open
    }
    return CorrelationTable::FromEdgeCorrelations(g, {rho, rho, rho});
  };
  std::thread computer([&] {
    const auto result = cache.GetOrCompute(0, compute);
    EXPECT_TRUE(result.ok());
    if (result.ok()) EXPECT_DOUBLE_EQ((*result)->Corr(0, 1), 0.5);
  });
  while (!entered.load()) std::this_thread::yield();
  std::thread waiter([&] {
    const auto result = cache.GetOrCompute(0, compute);
    EXPECT_TRUE(result.ok());
    if (result.ok()) EXPECT_DOUBLE_EQ((*result)->Corr(0, 1), 0.5);
  });
  while (cache.stats().coalesced < 1) std::this_thread::yield();
  cache.Invalidate(0);
  invalidated = true;
  release.set_value();
  computer.join();
  waiter.join();
  // Exactly one retry compute: the discarded first flight plus one fresh
  // one (the other thread coalesces onto it or hits the installed table).
  EXPECT_EQ(computes.load(), 2);
  // Only the fresh table was persisted.
  CorrelationCache reload(options);
  std::atomic<int> cold_computes{0};
  const auto table = reload.GetOrCompute(0, CountingCompute(g, &cold_computes));
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(cold_computes.load(), 0);
  EXPECT_DOUBLE_EQ((*table)->Corr(0, 1), 0.5);
  std::filesystem::remove_all(dir);
}

TEST(CorrelationCacheTest, ConcurrentStressDisjointAndSharedSlots) {
  // 8 threads hammering a mix of shared and private slots with real
  // computations (and the Dijkstra fan-out pool enabled): every result must
  // be a valid table and every slot computed at most... once per eviction —
  // with an unlimited budget, exactly once.
  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  util::Rng rng(7);
  graph::RoadNetworkOptions net;
  net.num_roads = 40;
  const graph::Graph g = *graph::RoadNetwork(net, rng);
  std::vector<double> rho(static_cast<size_t>(g.num_edges()), 0.8);
  CorrelationCache cache;
  std::atomic<int> computes{0};
  const auto compute = [&](int, util::ThreadPool* fanout) {
    computes.fetch_add(1);
    return CorrelationTable::FromEdgeCorrelations(
        g, rho, PathWeightMode::kNegLog, fanout);
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const int slot = (round % 2 == 0) ? 0 : (t + 1);  // shared + private
        const auto table = cache.GetOrCompute(slot, compute);
        ASSERT_TRUE(table.ok());
        ASSERT_EQ((*table)->num_roads(), g.num_roads());
        EXPECT_DOUBLE_EQ((*table)->Corr(0, 0), 1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // One shared slot + one private slot per thread, each computed once.
  EXPECT_EQ(computes.load(), kThreads + 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, kThreads + 1);
  EXPECT_EQ(stats.resident_tables, kThreads + 1);
}

}  // namespace
}  // namespace crowdrtse::rtf
