// Golden tests for the ascii-map compiler: exact road/edge lists and
// geometry for pinned sketches (the compiler contract is "fixtures can
// pin edge ids"), a graph_io checksum round-trip, tag precedence, and
// rejection of malformed sketches.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_io.h"
#include "scenario/ascii_map.h"

namespace crowdrtse::scenario {
namespace {

// The nine-road lattice most packs use.
constexpr char kLattice[] =
    "A-B-C\n"
    "|   |\n"
    "D-E-F\n"
    "|   |\n"
    "G-H-I\n";

TEST(AsciiMapTest, GoldenLatticeRoadsAndEdges) {
  auto fixture = CompileAsciiMap(kLattice);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();

  // Roads are discovered row-major, so names are ids in alphabetical
  // order for this sketch.
  const std::vector<std::string> want_names = {"A", "B", "C", "D", "E",
                                               "F", "G", "H", "I"};
  EXPECT_EQ(fixture->names, want_names);
  ASSERT_EQ(fixture->graph.num_roads(), 9);

  // Edges are numbered in discovery order: per road (row-major), the east
  // run before the south run.
  const std::vector<std::pair<graph::RoadId, graph::RoadId>> want_edges = {
      {0, 1},  // A-B (east)
      {0, 3},  // A-D (south)
      {1, 2},  // B-C
      {2, 5},  // C-F
      {3, 4},  // D-E
      {3, 6},  // D-G
      {4, 5},  // E-F
      {5, 8},  // F-I
      {6, 7},  // G-H
      {7, 8},  // H-I
  };
  ASSERT_EQ(fixture->graph.num_edges(),
            static_cast<int>(want_edges.size()));
  for (graph::EdgeId e = 0; e < fixture->graph.num_edges(); ++e) {
    EXPECT_EQ(fixture->graph.EdgeEndpoints(e), want_edges[static_cast<size_t>(e)])
        << "edge " << e;
  }
}

TEST(AsciiMapTest, GoldenLatticeGeometry) {
  auto fixture = CompileAsciiMap(kLattice);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();

  // Positions are sketch-grid cell centers on the unit square. The sketch
  // is 5 columns x 5 rows; A sits at (0, 0), E at (2, 2), I at (4, 4).
  ASSERT_EQ(fixture->positions.size(), 9u);
  EXPECT_DOUBLE_EQ(fixture->positions[0].first, 0.5 / 5.0);   // A.x
  EXPECT_DOUBLE_EQ(fixture->positions[0].second, 0.5 / 5.0);  // A.y
  EXPECT_DOUBLE_EQ(fixture->positions[4].first, 2.5 / 5.0);   // E.x
  EXPECT_DOUBLE_EQ(fixture->positions[4].second, 2.5 / 5.0);  // E.y
  EXPECT_DOUBLE_EQ(fixture->positions[8].first, 4.5 / 5.0);   // I.x
  EXPECT_DOUBLE_EQ(fixture->positions[8].second, 4.5 / 5.0);  // I.y

  // Untagged roads carry the arterial default profile and length.
  ASSERT_EQ(fixture->profiles.size(), 9u);
  for (const RoadProfile& profile : fixture->profiles) {
    EXPECT_EQ(profile.speed_class, SpeedClass::kArterial);
    EXPECT_DOUBLE_EQ(profile.base_kmh, 65.0);
  }
  ASSERT_EQ(fixture->lengths.num_roads(), 9);
}

TEST(AsciiMapTest, ChecksumRoundTripsThroughEdgeListFormat) {
  auto fixture = CompileAsciiMap(kLattice);
  ASSERT_TRUE(fixture.ok());

  const std::string text = graph::ToEdgeList(fixture->graph);
  auto reloaded = graph::FromEdgeList(text);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(graph::EdgeListChecksum(fixture->graph),
            graph::EdgeListChecksum(*reloaded));

  // And the checksum is sensitive: a different sketch digests differently.
  auto path = CompileAsciiMap("A-B-C-D");
  ASSERT_TRUE(path.ok());
  EXPECT_NE(graph::EdgeListChecksum(fixture->graph),
            graph::EdgeListChecksum(path->graph));
}

TEST(AsciiMapTest, TagPrecedenceRoadOverEdgeOverClassDefault) {
  std::vector<TagLine> tags;
  tags.push_back({"A-B", {{"class", "highway"}, {"len", "3.0"}}});
  tags.push_back({"B", {{"base", "50"}, {"noise", "1.0"}}});
  auto fixture = CompileAsciiMap("A-B-C", tags);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();

  // A takes the edge tag wholesale: highway class, overridden length.
  EXPECT_EQ(fixture->profiles[0].speed_class, SpeedClass::kHighway);
  EXPECT_DOUBLE_EQ(fixture->profiles[0].base_kmh, 95.0);
  EXPECT_DOUBLE_EQ(fixture->profiles[0].length_km, 3.0);
  // B layers its road tags on top of the edge tag: still highway class,
  // but base and noise come from the road line.
  EXPECT_EQ(fixture->profiles[1].speed_class, SpeedClass::kHighway);
  EXPECT_DOUBLE_EQ(fixture->profiles[1].base_kmh, 50.0);
  EXPECT_DOUBLE_EQ(fixture->profiles[1].noise_kmh, 1.0);
  // C is untouched.
  EXPECT_EQ(fixture->profiles[2].speed_class, SpeedClass::kArterial);

  EXPECT_EQ(fixture->RoadByName("B"), 1);
  EXPECT_EQ(fixture->RoadByName("Z"), graph::kInvalidRoad);
}

TEST(AsciiMapTest, RejectsDanglingHorizontalEdge) {
  EXPECT_FALSE(CompileAsciiMap("A-B-").ok());
  EXPECT_FALSE(CompileAsciiMap("-A-B").ok());
  EXPECT_FALSE(CompileAsciiMap("A- B").ok());
}

TEST(AsciiMapTest, RejectsDanglingVerticalEdge) {
  // Pipe with no road beneath it.
  EXPECT_FALSE(CompileAsciiMap("A-B\n|\n").ok());
  // Pipe column misaligned with the road above.
  EXPECT_FALSE(CompileAsciiMap("A-B\n |\n C").ok());
}

TEST(AsciiMapTest, RejectsDuplicateRoadLetter) {
  EXPECT_FALSE(CompileAsciiMap("A-B-A").ok());
}

TEST(AsciiMapTest, RejectsUnknownTagSelectorAndKey) {
  EXPECT_FALSE(CompileAsciiMap("A-B", {{"Z", {{"base", "50"}}}}).ok());
  EXPECT_FALSE(CompileAsciiMap("A-B", {{"A-C", {{"base", "50"}}}}).ok());
  EXPECT_FALSE(CompileAsciiMap("A-B", {{"A", {{"speed", "50"}}}}).ok());
  EXPECT_FALSE(
      CompileAsciiMap("A-B", {{"A", {{"class", "bicycle"}}}}).ok());
}

TEST(AsciiMapTest, RejectsEmptySketch) {
  EXPECT_FALSE(CompileAsciiMap("").ok());
  EXPECT_FALSE(CompileAsciiMap("   \n  \n").ok());
}

}  // namespace
}  // namespace crowdrtse::scenario
