#include "graph/coloring.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/rng.h"

namespace crowdrtse::graph {
namespace {

TEST(ColoringTest, PathUsesTwoColors) {
  const Graph g = *PathNetwork(10);
  const Coloring c = GreedyColoring(g);
  EXPECT_TRUE(IsProperColoring(g, c));
  EXPECT_LE(c.num_colors, 2);
}

TEST(ColoringTest, OddRingUsesAtMostThree) {
  const Graph g = *RingNetwork(7);
  const Coloring c = GreedyColoring(g);
  EXPECT_TRUE(IsProperColoring(g, c));
  EXPECT_LE(c.num_colors, 3);
}

TEST(ColoringTest, GridIsProper) {
  const Graph g = *GridNetwork(8, 8);
  const Coloring c = GreedyColoring(g);
  EXPECT_TRUE(IsProperColoring(g, c));
  EXPECT_LE(c.num_colors, 5);  // max degree 4 + 1
}

TEST(ColoringTest, RandomRoadNetworkProper) {
  util::Rng rng(13);
  RoadNetworkOptions options;
  options.num_roads = 200;
  const Graph g = *RoadNetwork(options, rng);
  const Coloring c = GreedyColoring(g);
  EXPECT_TRUE(IsProperColoring(g, c));
  // Colour count bounded by max degree + 1.
  int max_degree = 0;
  for (RoadId r = 0; r < g.num_roads(); ++r) {
    max_degree = std::max(max_degree, g.Degree(r));
  }
  EXPECT_LE(c.num_colors, max_degree + 1);
}

TEST(ColoringTest, ClassesPartitionRoads) {
  const Graph g = *GridNetwork(5, 5);
  const Coloring c = GreedyColoring(g);
  const auto classes = c.Classes();
  size_t total = 0;
  for (const auto& cls : classes) total += cls.size();
  EXPECT_EQ(total, 25u);
}

TEST(ColoringTest, ImproperColoringDetected) {
  const Graph g = *PathNetwork(3);
  Coloring bad;
  bad.color = {0, 0, 1};  // 0 and 1 are adjacent with the same colour
  bad.num_colors = 2;
  EXPECT_FALSE(IsProperColoring(g, bad));
}

TEST(ColoringTest, WrongSizeDetected) {
  const Graph g = *PathNetwork(3);
  Coloring bad;
  bad.color = {0, 1};
  bad.num_colors = 2;
  EXPECT_FALSE(IsProperColoring(g, bad));
}

TEST(ColoringTest, EmptyGraph) {
  GraphBuilder builder(0);
  const Graph g = *builder.Build();
  const Coloring c = GreedyColoring(g);
  EXPECT_EQ(c.num_colors, 0);
  EXPECT_TRUE(IsProperColoring(g, c));
}

}  // namespace
}  // namespace crowdrtse::graph
