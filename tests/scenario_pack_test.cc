// Parser tests for the .scn scenario-pack format: a full-feature pack
// parses into the expected structures, and each class of malformed input
// is rejected with a line-numbered error.

#include <string>

#include <gtest/gtest.h>

#include "scenario/pack.h"

namespace crowdrtse::scenario {
namespace {

constexpr char kFullPack[] = R"(# comment
[scenario]
name = full
description = every section exercised
seed = 7
slots_per_day = 24
history_days = 4

[map]
A-B-C
|   |
D-E-F

[tags]
A-B: class=highway len=2.0
E: class=local noise=1.5

[workers]
per_road = 5
noiseless = false
min_bias = 0.95
max_bias = 1.05

[engine]
fault_tolerant = true
campaign_budget = 300
per_query_cap = 12
theta = 0.9
shed_when_dry = true

[sharding]
shards = 3
halo = 4

[timeline]
at=2 phase name=warmup
at=3 storm queries=5 size=2 roads=all
at=5 storm rate=3.5 size=1 roads=list:A,B budget=6
at=8 phase name=chaos
at=8 incident road=E drop=0.4 duration=5 spillover=2
at=9 drift p=0.25
at=10 workers leave=0.5 add=7 roads=district:E:1
at=11 faults drop=0.2 delay=0.1 delay_min_ms=5 delay_max_ms=40 roads=all
at=12 liars road=B cohort=3 value=120
at=20 faults clear=true

[envelope]
min_served = 10
max_mape = 0.1

[envelope:chaos]
zero_silent_drops = true
min_outlier_reports = 2
)";

TEST(PackParserTest, ParsesFullFeaturePack) {
  auto pack = ParsePack(kFullPack);
  ASSERT_TRUE(pack.ok()) << pack.status().ToString();

  EXPECT_EQ(pack->name, "full");
  EXPECT_EQ(pack->seed, 7u);
  EXPECT_EQ(pack->world.slots_per_day, 24);
  EXPECT_EQ(pack->world.history_days, 4);
  EXPECT_NE(pack->sketch.find("A-B-C"), std::string::npos);
  ASSERT_EQ(pack->tags.size(), 2u);
  EXPECT_EQ(pack->tags[0].selector, "A-B");
  EXPECT_EQ(pack->tags[0].tags.at("class"), "highway");
  EXPECT_EQ(pack->workers_per_road, 5);
  EXPECT_FALSE(pack->noiseless);
  EXPECT_TRUE(pack->fault_tolerant);
  EXPECT_EQ(pack->campaign_budget, 300);
  EXPECT_TRUE(pack->shed_when_dry);
  EXPECT_EQ(pack->shards, 3);
  EXPECT_EQ(pack->halo, 4);

  ASSERT_EQ(pack->timeline.size(), 10u);
  EXPECT_EQ(pack->timeline[0].kind, Event::Kind::kPhase);
  EXPECT_EQ(pack->timeline[0].name, "warmup");
  EXPECT_EQ(pack->timeline[1].kind, Event::Kind::kStorm);
  EXPECT_EQ(pack->timeline[1].queries, 5);
  EXPECT_EQ(pack->timeline[2].rate, 3.5);
  ASSERT_EQ(pack->timeline[2].roads.kind, RoadsSpec::Kind::kList);
  EXPECT_EQ(pack->timeline[2].roads.names,
            (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(pack->timeline[2].budget, 6);
  EXPECT_EQ(pack->timeline[4].kind, Event::Kind::kIncident);
  EXPECT_EQ(pack->timeline[4].road, "E");
  EXPECT_EQ(pack->timeline[4].spillover, 2);
  EXPECT_EQ(pack->timeline[5].probability, 0.25);
  EXPECT_EQ(pack->timeline[6].leave, 0.5);
  EXPECT_EQ(pack->timeline[6].add, 7);
  EXPECT_EQ(pack->timeline[6].roads.kind, RoadsSpec::Kind::kDistrict);
  EXPECT_EQ(pack->timeline[6].roads.center, "E");
  EXPECT_EQ(pack->timeline[7].fault.drop_rate, 0.2);
  EXPECT_EQ(pack->timeline[7].fault.delay_max_ms, 40);
  EXPECT_EQ(pack->timeline[8].cohort, 3);
  EXPECT_EQ(pack->timeline[8].value, 120.0);
  EXPECT_TRUE(pack->timeline[9].clear);
  EXPECT_EQ(pack->LastEventSlot(), 20);

  ASSERT_EQ(pack->envelopes.size(), 2u);
  EXPECT_NE(pack->EnvelopeFor(""), nullptr);
  EXPECT_NE(pack->EnvelopeFor("chaos"), nullptr);
  EXPECT_EQ(pack->EnvelopeFor("warmup"), nullptr);
  EXPECT_EQ(pack->EnvelopeFor("chaos")->min_outlier_reports, 2);
}

constexpr char kMinimal[] = R"(
[scenario]
name = tiny
[map]
A-B
[timeline]
at=1 storm queries=1 size=1 roads=all
)";

TEST(PackParserTest, MinimalPackGetsDefaults) {
  auto pack = ParsePack(kMinimal);
  ASSERT_TRUE(pack.ok()) << pack.status().ToString();
  EXPECT_EQ(pack->seed, 1u);
  EXPECT_EQ(pack->world.slots_per_day, 48);
  EXPECT_EQ(pack->workers_per_road, 3);
  EXPECT_TRUE(pack->noiseless);
  EXPECT_FALSE(pack->fault_tolerant);
  EXPECT_EQ(pack->campaign_budget, -1);
  EXPECT_EQ(pack->shards, 4);
  EXPECT_EQ(pack->halo, 0);
  EXPECT_TRUE(pack->envelopes.empty());
}

std::string Rewrite(const std::string& needle, const std::string& repl) {
  std::string text = kMinimal;
  const size_t pos = text.find(needle);
  EXPECT_NE(pos, std::string::npos) << needle;
  text.replace(pos, needle.size(), repl);
  return text;
}

TEST(PackParserTest, RejectsMissingName) {
  EXPECT_FALSE(ParsePack(Rewrite("name = tiny", "")).ok());
}

TEST(PackParserTest, RejectsPackWithoutMap) {
  EXPECT_FALSE(ParsePack(Rewrite("[map]\nA-B", "")).ok());
}

TEST(PackParserTest, RejectsBothSketchAndGenerator) {
  EXPECT_FALSE(
      ParsePack(Rewrite("[map]\nA-B", "[map]\nA-B\n[generator]\nkind = grid"))
          .ok());
}

TEST(PackParserTest, RejectsUnknownSectionAndKey) {
  EXPECT_FALSE(ParsePack(std::string(kMinimal) + "[surprise]\nx = 1\n").ok());
  EXPECT_FALSE(ParsePack(Rewrite("name = tiny", "name = tiny\nfoo = 1")).ok());
}

TEST(PackParserTest, RejectsUnknownEventKindAndKey) {
  EXPECT_FALSE(ParsePack(Rewrite("storm queries=1 size=1 roads=all",
                                 "earthquake magnitude=7"))
                   .ok());
  EXPECT_FALSE(ParsePack(Rewrite("storm queries=1 size=1 roads=all",
                                 "storm queries=1 wat=2"))
                   .ok());
}

TEST(PackParserTest, RejectsOutOfRangeSlotAndDisorderedTimeline) {
  EXPECT_FALSE(ParsePack(Rewrite("at=1 storm", "at=48 storm")).ok());
  EXPECT_FALSE(ParsePack(Rewrite("at=1 storm", "at=-1 storm")).ok());
  EXPECT_FALSE(
      ParsePack(Rewrite("at=1 storm queries=1 size=1 roads=all",
                        "at=5 storm queries=1 size=1 roads=all\n"
                        "at=4 storm queries=1 size=1 roads=all"))
          .ok());
}

TEST(PackParserTest, RejectsStormWithoutVolumeAndLiarsWithoutCohort) {
  EXPECT_FALSE(
      ParsePack(Rewrite("storm queries=1 size=1 roads=all", "storm size=1"))
          .ok());
  EXPECT_FALSE(ParsePack(Rewrite("storm queries=1 size=1 roads=all",
                                 "liars road=A value=90"))
                   .ok());
}

TEST(PackParserTest, RejectsDuplicatePhaseNamesAndUnknownEnvelopePhase) {
  EXPECT_FALSE(
      ParsePack(Rewrite("at=1 storm queries=1 size=1 roads=all",
                        "at=1 phase name=p\nat=2 phase name=p"))
          .ok());
  EXPECT_FALSE(
      ParsePack(std::string(kMinimal) + "[envelope:ghost]\nmin_served = 1\n")
          .ok());
}

TEST(PackParserTest, RejectsBadRoadsSpecAndBadRates) {
  EXPECT_FALSE(ParsePack(Rewrite("roads=all", "roads=ring:A")).ok());
  EXPECT_FALSE(ParsePack(Rewrite("at=1 storm queries=1 size=1 roads=all",
                                 "at=1 faults drop=1.5"))
                   .ok());
}

TEST(PackParserTest, ResolveRoadsAgainstFixture) {
  auto pack = ParsePack(kFullPack);
  ASSERT_TRUE(pack.ok());
  auto fixture = BuildFixture(*pack);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  ASSERT_EQ(fixture->graph.num_roads(), 6);

  RoadsSpec all;  // kAll
  auto roads = ResolveRoads(all, *fixture);
  ASSERT_TRUE(roads.ok());
  EXPECT_EQ(roads->size(), 6u);

  RoadsSpec list;
  list.kind = RoadsSpec::Kind::kList;
  list.names = {"F", "A"};
  roads = ResolveRoads(list, *fixture);
  ASSERT_TRUE(roads.ok());
  EXPECT_EQ(*roads, (std::vector<graph::RoadId>{0, 5}));  // sorted

  list.names = {"Q"};
  EXPECT_FALSE(ResolveRoads(list, *fixture).ok());

  RoadsSpec district;
  district.kind = RoadsSpec::Kind::kDistrict;
  district.center = "A";
  district.hops = 1;
  roads = ResolveRoads(district, *fixture);
  ASSERT_TRUE(roads.ok());
  // A's 1-hop district: A itself, B (east), D (south).
  EXPECT_EQ(*roads, (std::vector<graph::RoadId>{0, 1, 3}));
}

TEST(PackParserTest, GeneratorPackBuildsGridFixture) {
  auto pack = ParsePack(
      "[scenario]\nname = g\n[generator]\nkind = grid\nrows = 3\ncols = 4\n"
      "[timeline]\nat=1 storm queries=1 size=1 roads=all\n");
  ASSERT_TRUE(pack.ok()) << pack.status().ToString();
  auto fixture = BuildFixture(*pack);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  EXPECT_EQ(fixture->graph.num_roads(), 12);
  EXPECT_EQ(fixture->positions.size(), 12u);
  EXPECT_EQ(fixture->RoadByName("0"), 0);
  EXPECT_EQ(fixture->RoadByName("11"), 11);
}

}  // namespace
}  // namespace crowdrtse::scenario
