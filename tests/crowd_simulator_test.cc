#include "crowd/crowd_simulator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crowdrtse::crowd {
namespace {

traffic::DayMatrix FlatTruth(int num_roads, double speed) {
  traffic::DayMatrix truth(traffic::kSlotsPerDay, num_roads);
  for (int slot = 0; slot < traffic::kSlotsPerDay; ++slot) {
    for (graph::RoadId r = 0; r < num_roads; ++r) {
      truth.At(slot, r) = speed;
    }
  }
  return truth;
}

TEST(CrowdSimulatorTest, ProbesTrackGroundTruth) {
  CrowdSimOptions options;
  CrowdSimulator sim(options, util::Rng(1));
  const traffic::DayMatrix truth = FlatTruth(10, 60.0);
  const CostModel costs = CostModel::Constant(10, 5);
  const auto round = sim.Probe({0, 3, 7}, costs, truth, 100);
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round->probes.size(), 3u);
  for (const ProbeResult& p : round->probes) {
    EXPECT_NEAR(p.probed_kmh, 60.0, 6.0);
    EXPECT_EQ(p.num_answers, 5);
  }
}

TEST(CrowdSimulatorTest, PaymentEqualsSumOfCosts) {
  CrowdSimulator sim({}, util::Rng(2));
  const traffic::DayMatrix truth = FlatTruth(5, 40.0);
  util::Rng cost_rng(3);
  const auto costs = CostModel::UniformRandom(5, 1, 10, cost_rng);
  ASSERT_TRUE(costs.ok());
  const std::vector<graph::RoadId> roads{0, 2, 4};
  const auto round = sim.Probe(roads, *costs, truth, 0);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->total_paid, costs->TotalCost(roads));
  EXPECT_EQ(round->raw_answers.size(),
            static_cast<size_t>(costs->TotalCost(roads)));
}

TEST(CrowdSimulatorTest, MoreAnswersTightenTheEstimate) {
  // Across many trials, 9-answer aggregates should deviate less than
  // 1-answer aggregates.
  const traffic::DayMatrix truth = FlatTruth(2, 50.0);
  const CostModel cheap = CostModel::Constant(2, 1);
  const CostModel thorough = CostModel::Constant(2, 9);
  CrowdSimOptions options;
  options.min_noise_kmh = 3.0;
  options.max_noise_kmh = 3.0;
  options.min_bias = 1.0;
  options.max_bias = 1.0;
  double err_cheap = 0.0;
  double err_thorough = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    CrowdSimulator sim_cheap(options, util::Rng(1000 + trial));
    CrowdSimulator sim_thorough(options, util::Rng(1000 + trial));
    err_cheap += std::fabs(
        sim_cheap.Probe({0}, cheap, truth, 0)->probes[0].probed_kmh - 50.0);
    err_thorough += std::fabs(
        sim_thorough.Probe({0}, thorough, truth, 0)->probes[0].probed_kmh -
        50.0);
  }
  EXPECT_LT(err_thorough, err_cheap);
}

TEST(CrowdSimulatorTest, OutliersHandledByTrimmedMean) {
  const traffic::DayMatrix truth = FlatTruth(1, 50.0);
  const CostModel costs = CostModel::Constant(1, 15);
  CrowdSimOptions options;
  options.outlier_rate = 0.2;
  options.aggregation = AggregationPolicy::kMedian;
  CrowdSimulator sim(options, util::Rng(5));
  double worst = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto round = sim.Probe({0}, costs, truth, 0);
    ASSERT_TRUE(round.ok());
    worst = std::max(worst, std::fabs(round->probes[0].probed_kmh - 50.0));
  }
  EXPECT_LT(worst, 10.0);
}

TEST(CrowdSimulatorTest, Validation) {
  CrowdSimulator sim({}, util::Rng(1));
  const traffic::DayMatrix truth = FlatTruth(3, 40.0);
  const CostModel costs = CostModel::Constant(3, 1);
  EXPECT_FALSE(sim.Probe({0}, costs, truth, -1).ok());
  EXPECT_FALSE(sim.Probe({0}, costs, truth, 999).ok());
  EXPECT_FALSE(sim.Probe({5}, costs, truth, 0).ok());
  const CostModel short_costs = CostModel::Constant(1, 1);
  EXPECT_FALSE(sim.Probe({2}, short_costs, truth, 0).ok());
}

TEST(CrowdSimulatorTest, EmptySelectionIsEmptyRound) {
  CrowdSimulator sim({}, util::Rng(1));
  const traffic::DayMatrix truth = FlatTruth(3, 40.0);
  const auto round = sim.Probe({}, CostModel::Constant(3, 1), truth, 0);
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->probes.empty());
  EXPECT_EQ(round->total_paid, 0);
}

}  // namespace
}  // namespace crowdrtse::crowd
