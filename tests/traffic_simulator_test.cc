#include "traffic/traffic_simulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "util/stats.h"

namespace crowdrtse::traffic {
namespace {

graph::Graph TestGraph() {
  util::Rng rng(11);
  graph::RoadNetworkOptions options;
  options.num_roads = 60;
  return *graph::RoadNetwork(options, rng);
}

TrafficModelOptions FastOptions() {
  TrafficModelOptions options;
  options.num_days = 6;
  return options;
}

TEST(TrafficOptionsTest, Validation) {
  TrafficModelOptions ok;
  EXPECT_TRUE(ValidateTrafficOptions(ok).ok());
  TrafficModelOptions bad = ok;
  bad.num_days = 0;
  EXPECT_FALSE(ValidateTrafficOptions(bad).ok());
  bad = ok;
  bad.max_base_speed = bad.min_base_speed - 1;
  EXPECT_FALSE(ValidateTrafficOptions(bad).ok());
  bad = ok;
  bad.temporal_persistence = 1.0;
  EXPECT_FALSE(ValidateTrafficOptions(bad).ok());
  bad = ok;
  bad.incident_rate_per_road_day = 1.5;
  EXPECT_FALSE(ValidateTrafficOptions(bad).ok());
  bad = ok;
  bad.spatial_mix = -0.1;
  EXPECT_FALSE(ValidateTrafficOptions(bad).ok());
}

TEST(TrafficSimulatorTest, ProfilesWithinConfiguredRanges) {
  const graph::Graph g = TestGraph();
  const TrafficModelOptions options = FastOptions();
  const TrafficSimulator sim(g, options, 1);
  ASSERT_EQ(sim.profiles().size(), static_cast<size_t>(g.num_roads()));
  for (const RoadProfile& p : sim.profiles()) {
    EXPECT_GE(p.base_speed, options.min_base_speed);
    EXPECT_LE(p.base_speed, options.max_base_speed);
    EXPECT_GE(p.noise_scale, options.min_noise_scale);
    EXPECT_LE(p.noise_scale, options.max_noise_scale);
    EXPECT_GE(p.morning_dip, options.min_rush_dip);
    EXPECT_LE(p.morning_dip, options.max_rush_dip);
  }
}

TEST(TrafficSimulatorTest, PeriodicSpeedDipsAtRushHour) {
  const graph::Graph g = TestGraph();
  const TrafficSimulator sim(g, FastOptions(), 2);
  const int rush = SlotOfTime(8, 15);
  const int night = SlotOfTime(3, 0);
  for (graph::RoadId r = 0; r < 10; ++r) {
    EXPECT_LT(sim.PeriodicSpeed(r, rush), sim.PeriodicSpeed(r, night));
  }
}

TEST(TrafficSimulatorTest, DaysAreDeterministic) {
  const graph::Graph g = TestGraph();
  const TrafficSimulator sim(g, FastOptions(), 3);
  const DayMatrix a = sim.GenerateDay(4);
  const DayMatrix b = sim.GenerateDay(4);
  for (int slot = 0; slot < kSlotsPerDay; slot += 37) {
    for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
      EXPECT_DOUBLE_EQ(a.At(slot, r), b.At(slot, r));
    }
  }
}

TEST(TrafficSimulatorTest, DifferentDaysDiffer) {
  const graph::Graph g = TestGraph();
  const TrafficSimulator sim(g, FastOptions(), 3);
  const DayMatrix a = sim.GenerateDay(0);
  const DayMatrix b = sim.GenerateDay(1);
  double max_diff = 0.0;
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    max_diff = std::max(max_diff, std::fabs(a.At(100, r) - b.At(100, r)));
  }
  EXPECT_GT(max_diff, 0.1);
}

TEST(TrafficSimulatorTest, SpeedsRespectFloor) {
  const graph::Graph g = TestGraph();
  TrafficModelOptions options = FastOptions();
  options.incident_rate_per_road_day = 0.5;  // many incidents
  const TrafficSimulator sim(g, options, 5);
  const DayMatrix day = sim.GenerateDay(0);
  for (int slot = 0; slot < kSlotsPerDay; ++slot) {
    for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
      EXPECT_GE(day.At(slot, r), options.min_speed);
    }
  }
}

TEST(TrafficSimulatorTest, SameSlotAcrossDaysIsPeriodic) {
  // The day-to-day spread around the periodic profile should be on the
  // order of the configured noise scales, far below the profile itself.
  const graph::Graph g = TestGraph();
  TrafficModelOptions options = FastOptions();
  options.num_days = 12;
  options.incident_rate_per_road_day = 0.0;  // isolate the periodic part
  const TrafficSimulator sim(g, options, 6);
  const HistoryStore history = sim.GenerateHistory();
  const int slot = SlotOfTime(12, 0);
  for (graph::RoadId r = 0; r < 10; ++r) {
    util::RunningStats stats;
    for (double v : history.Series(r, slot)) stats.Add(v);
    EXPECT_NEAR(stats.Mean(), sim.PeriodicSpeed(r, slot),
                4.0 * options.max_noise_scale);
    EXPECT_LT(stats.StdDev(), 3.0 * options.max_noise_scale);
  }
}

TEST(TrafficSimulatorTest, AdjacentRoadsCorrelate) {
  // Fluctuations diffuse along the graph: adjacent roads' deviations from
  // their periodic profile must correlate positively on average.
  const graph::Graph g = TestGraph();
  TrafficModelOptions options = FastOptions();
  options.incident_rate_per_road_day = 0.0;
  const TrafficSimulator sim(g, options, 7);
  const DayMatrix day = sim.GenerateDay(0);
  util::RunningStats corr_stats;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [i, j] = g.EdgeEndpoints(e);
    util::RunningCovariance cov;
    for (int slot = 0; slot < kSlotsPerDay; ++slot) {
      cov.Add(day.At(slot, i) - sim.PeriodicSpeed(i, slot),
              day.At(slot, j) - sim.PeriodicSpeed(j, slot));
    }
    corr_stats.Add(cov.Correlation());
  }
  EXPECT_GT(corr_stats.Mean(), 0.2);
}

TEST(TrafficSimulatorTest, IncidentsCreateAccidentalVariance) {
  // With incidents on, some slots must fall far below the periodic
  // profile — the accidental variance the paper says Per-style methods
  // miss.
  const graph::Graph g = TestGraph();
  TrafficModelOptions options = FastOptions();
  options.incident_rate_per_road_day = 1.0;
  options.incident_severity = 0.6;
  const TrafficSimulator sim(g, options, 8);
  const DayMatrix day = sim.GenerateDay(0);
  int big_drops = 0;
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    for (int slot = 0; slot < kSlotsPerDay; ++slot) {
      if (day.At(slot, r) < 0.6 * sim.PeriodicSpeed(r, slot)) {
        ++big_drops;
        break;
      }
    }
  }
  EXPECT_GT(big_drops, g.num_roads() / 3);
}

TEST(TrafficSimulatorTest, WeekendSeasonalityLightensRush) {
  const graph::Graph g = TestGraph();
  TrafficModelOptions options = FastOptions();
  options.weekend_rush_factor = 0.3;
  options.incident_rate_per_road_day = 0.0;
  const TrafficSimulator sim(g, options, 31);
  const int rush = SlotOfTime(8, 15);
  // Day 5 is a weekend; day 2 a weekday.
  EXPECT_TRUE(TrafficSimulator::IsWeekend(5));
  EXPECT_FALSE(TrafficSimulator::IsWeekend(2));
  for (graph::RoadId r = 0; r < 10; ++r) {
    EXPECT_GT(sim.PeriodicSpeedOnDay(r, rush, 5),
              sim.PeriodicSpeedOnDay(r, rush, 2));
    // Off-peak unaffected (bump ~0 at 03:00).
    EXPECT_NEAR(sim.PeriodicSpeedOnDay(r, SlotOfTime(3, 0), 5),
                sim.PeriodicSpeedOnDay(r, SlotOfTime(3, 0), 2), 0.01);
  }
  // Generated weekend days really are faster through the rush on average.
  const DayMatrix weekday = sim.GenerateDay(2);
  const DayMatrix weekend = sim.GenerateDay(5);
  double weekday_mean = 0.0;
  double weekend_mean = 0.0;
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    weekday_mean += weekday.At(rush, r);
    weekend_mean += weekend.At(rush, r);
  }
  EXPECT_GT(weekend_mean, weekday_mean);
}

TEST(TrafficSimulatorTest, WeekendMixInflatesSigmaEstimates) {
  // Training a single per-slot Gaussian on mixed weekday/weekend data must
  // show up as larger rush-hour sigma — quantifying the regime mixing a
  // 3-month crawl suffers.
  const graph::Graph g = TestGraph();
  TrafficModelOptions mixed = FastOptions();
  mixed.num_days = 14;
  mixed.weekend_rush_factor = 0.2;
  mixed.incident_rate_per_road_day = 0.0;
  TrafficModelOptions uniform = mixed;
  uniform.weekend_rush_factor = 1.0;
  const TrafficSimulator mixed_sim(g, mixed, 33);
  const TrafficSimulator uniform_sim(g, uniform, 33);
  const int rush = SlotOfTime(8, 15);
  double mixed_spread = 0.0;
  double uniform_spread = 0.0;
  const HistoryStore mixed_history = mixed_sim.GenerateHistory();
  const HistoryStore uniform_history = uniform_sim.GenerateHistory();
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    util::RunningStats ms;
    util::RunningStats us;
    for (double v : mixed_history.Series(r, rush)) ms.Add(v);
    for (double v : uniform_history.Series(r, rush)) us.Add(v);
    mixed_spread += ms.StdDev();
    uniform_spread += us.StdDev();
  }
  EXPECT_GT(mixed_spread, uniform_spread);
}

TEST(TrafficSimulatorTest, WeekendFactorValidated) {
  TrafficModelOptions bad;
  bad.weekend_rush_factor = -0.1;
  EXPECT_FALSE(ValidateTrafficOptions(bad).ok());
  bad.weekend_rush_factor = 2.0;
  EXPECT_FALSE(ValidateTrafficOptions(bad).ok());
}

TEST(TrafficSimulatorTest, HistoryAndEvaluationDayDisjoint) {
  const graph::Graph g = TestGraph();
  const TrafficSimulator sim(g, FastOptions(), 9);
  const HistoryStore history = sim.GenerateHistory();
  EXPECT_EQ(history.num_days(), FastOptions().num_days);
  const DayMatrix eval_day = sim.GenerateEvaluationDay();
  // The evaluation day must not replicate any history day.
  for (int day = 0; day < history.num_days(); ++day) {
    double diff = 0.0;
    for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
      diff += std::fabs(eval_day.At(0, r) - history.At(day, 0, r));
    }
    EXPECT_GT(diff, 1e-6);
  }
}

}  // namespace
}  // namespace crowdrtse::traffic
