#include "traffic/history_store.h"

#include <gtest/gtest.h>

#include "traffic/time_slots.h"

namespace crowdrtse::traffic {
namespace {

TEST(TimeSlotsTest, SlotArithmetic) {
  EXPECT_EQ(kSlotsPerDay, 288);
  EXPECT_EQ(SlotOfTime(0, 0), 0);
  EXPECT_EQ(SlotOfTime(0, 5), 1);
  EXPECT_EQ(SlotOfTime(8, 15), 99);
  EXPECT_EQ(SlotOfTime(23, 55), 287);
  EXPECT_EQ(HourOfSlot(99), 8);
  EXPECT_EQ(MinuteOfSlot(99), 15);
}

TEST(TimeSlotsTest, WrapSlot) {
  EXPECT_EQ(WrapSlot(288), 0);
  EXPECT_EQ(WrapSlot(-1), 287);
  EXPECT_EQ(WrapSlot(5), 5);
  EXPECT_EQ(WrapSlot(-289), 287);
}

TEST(TimeSlotsTest, IsValidSlot) {
  EXPECT_TRUE(IsValidSlot(0));
  EXPECT_TRUE(IsValidSlot(287));
  EXPECT_FALSE(IsValidSlot(288));
  EXPECT_FALSE(IsValidSlot(-1));
}

TEST(DayMatrixTest, AccessAndSlotViews) {
  DayMatrix m(4, 3);
  m.At(2, 1) = 42.5;
  EXPECT_DOUBLE_EQ(m.At(2, 1), 42.5);
  EXPECT_DOUBLE_EQ(m.SlotPtr(2)[1], 42.5);
  const auto speeds = m.SlotSpeeds(2);
  EXPECT_EQ(speeds.size(), 3u);
  EXPECT_DOUBLE_EQ(speeds[1], 42.5);
  EXPECT_DOUBLE_EQ(speeds[0], 0.0);
}

TEST(HistoryStoreTest, SetDayAndSeries) {
  HistoryStore store(3, 2, 4);
  DayMatrix day0(4, 3);
  DayMatrix day1(4, 3);
  day0.At(1, 2) = 10.0;
  day1.At(1, 2) = 20.0;
  ASSERT_TRUE(store.SetDay(0, day0).ok());
  ASSERT_TRUE(store.SetDay(1, day1).ok());
  EXPECT_EQ(store.Series(2, 1), (std::vector<double>{10.0, 20.0}));
  EXPECT_DOUBLE_EQ(store.At(1, 1, 2), 20.0);
}

TEST(HistoryStoreTest, SetDayValidation) {
  HistoryStore store(3, 2, 4);
  DayMatrix wrong_shape(4, 5);
  EXPECT_FALSE(store.SetDay(0, wrong_shape).ok());
  DayMatrix ok_shape(4, 3);
  EXPECT_FALSE(store.SetDay(2, ok_shape).ok());
  EXPECT_FALSE(store.SetDay(-1, ok_shape).ok());
}

TEST(HistoryStoreTest, AddRecord) {
  HistoryStore store(2, 3, kSlotsPerDay);
  SpeedRecord record;
  record.day = 1;
  record.slot = 100;
  record.road = 1;
  record.speed_kmh = 55.5;
  ASSERT_TRUE(store.AddRecord(record).ok());
  EXPECT_DOUBLE_EQ(store.At(1, 100, 1), 55.5);
}

TEST(HistoryStoreTest, AddRecordValidation) {
  HistoryStore store(2, 3, kSlotsPerDay);
  SpeedRecord record;
  record.day = 5;
  EXPECT_FALSE(store.AddRecord(record).ok());
  record.day = 0;
  record.slot = 999;
  EXPECT_FALSE(store.AddRecord(record).ok());
  record.slot = 0;
  record.road = 7;
  EXPECT_FALSE(store.AddRecord(record).ok());
}

TEST(HistoryStoreTest, RecordCountMatchesPaperScale) {
  // 607 roads x 288 slots x 30 days = 5,244,480 records — the paper's
  // crawl volume.
  HistoryStore store(607, 30);
  EXPECT_EQ(store.num_records(), 5244480u);
}

}  // namespace
}  // namespace crowdrtse::traffic
