// Tests of CrowdSimulator::ProbeWithAssignments — crowd answers produced
// by concrete assigned workers with persistent per-worker bias/noise.
#include <gtest/gtest.h>

#include <cmath>

#include "crowd/crowd_simulator.h"
#include "crowd/task_assignment.h"

namespace crowdrtse::crowd {
namespace {

traffic::DayMatrix FlatTruth(int num_roads, double speed) {
  traffic::DayMatrix truth(traffic::kSlotsPerDay, num_roads);
  for (int slot = 0; slot < traffic::kSlotsPerDay; ++slot) {
    for (graph::RoadId r = 0; r < num_roads; ++r) {
      truth.At(slot, r) = speed;
    }
  }
  return truth;
}

Worker MakeWorker(WorkerId id, graph::RoadId road, double bias,
                  double noise) {
  Worker w;
  w.id = id;
  w.road = road;
  w.bias = bias;
  w.noise_kmh = noise;
  return w;
}

TEST(PooledProbeTest, WorkersReportWithTheirOwnBias) {
  const traffic::DayMatrix truth = FlatTruth(3, 50.0);
  // A worker with a strong +20% bias and zero noise.
  const std::vector<Worker> workers{MakeWorker(0, 1, 1.2, 0.0)};
  const CostModel costs = CostModel::Constant(3, 1);
  const auto plan = AssignTasks({1}, costs, workers);
  ASSERT_TRUE(plan.ok());
  CrowdSimulator sim({}, util::Rng(1));
  const auto round = sim.ProbeWithAssignments(*plan, workers, truth, 100);
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round->probes.size(), 1u);
  EXPECT_NEAR(round->probes[0].probed_kmh, 60.0, 1e-9);  // 1.2 * 50
}

TEST(PooledProbeTest, UnderfilledRoadsAggregateFewerAnswers) {
  const traffic::DayMatrix truth = FlatTruth(2, 40.0);
  // Road 0 needs 3 answers but only 2 workers are present.
  const std::vector<Worker> workers{MakeWorker(0, 0, 1.0, 0.0),
                                    MakeWorker(1, 0, 1.0, 0.0)};
  const CostModel costs = CostModel::Constant(2, 3);
  const auto plan = AssignTasks({0}, costs, workers);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->FullyStaffed());
  CrowdSimulator sim({}, util::Rng(2));
  const auto round = sim.ProbeWithAssignments(*plan, workers, truth, 0);
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round->probes.size(), 1u);
  EXPECT_EQ(round->probes[0].num_answers, 2);
  EXPECT_EQ(round->total_paid, 2);  // pay only collected answers
}

TEST(PooledProbeTest, RoadWithNoWorkersProducesNoProbe) {
  const traffic::DayMatrix truth = FlatTruth(3, 40.0);
  const std::vector<Worker> workers{MakeWorker(0, 0, 1.0, 0.0)};
  const CostModel costs = CostModel::Constant(3, 1);
  const auto plan = AssignTasks({0, 2}, costs, workers);
  ASSERT_TRUE(plan.ok());
  CrowdSimulator sim({}, util::Rng(3));
  const auto round = sim.ProbeWithAssignments(*plan, workers, truth, 0);
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round->probes.size(), 1u);
  EXPECT_EQ(round->probes[0].road, 0);
}

TEST(PooledProbeTest, CleanWorkersBeatNoisyOnes) {
  // Hiring order prefers low-noise workers; with quota 2 of 4 workers, the
  // two clean ones answer and the estimate is tight.
  const traffic::DayMatrix truth = FlatTruth(1, 50.0);
  const std::vector<Worker> workers{
      MakeWorker(0, 0, 1.0, 25.0), MakeWorker(1, 0, 1.0, 0.1),
      MakeWorker(2, 0, 1.0, 25.0), MakeWorker(3, 0, 1.0, 0.1)};
  const CostModel costs = CostModel::Constant(1, 2);
  const auto plan = AssignTasks({0}, costs, workers);
  ASSERT_TRUE(plan.ok());
  for (const TaskAssignment& t : plan->assignments) {
    EXPECT_TRUE(t.worker == 1 || t.worker == 3);
  }
  CrowdSimulator sim({}, util::Rng(4));
  const auto round = sim.ProbeWithAssignments(*plan, workers, truth, 0);
  ASSERT_TRUE(round.ok());
  EXPECT_NEAR(round->probes[0].probed_kmh, 50.0, 1.0);
}

TEST(PooledProbeTest, Validation) {
  const traffic::DayMatrix truth = FlatTruth(2, 40.0);
  const std::vector<Worker> workers{MakeWorker(0, 0, 1.0, 0.0)};
  CrowdSimulator sim({}, util::Rng(5));
  AssignmentPlan plan;
  plan.assignments.push_back({/*worker=*/9, /*road=*/0, 1});
  EXPECT_FALSE(sim.ProbeWithAssignments(plan, workers, truth, 0).ok());
  AssignmentPlan bad_road;
  bad_road.assignments.push_back({/*worker=*/0, /*road=*/7, 1});
  EXPECT_FALSE(
      sim.ProbeWithAssignments(bad_road, workers, truth, 0).ok());
  AssignmentPlan ok_plan;
  ok_plan.assignments.push_back({/*worker=*/0, /*road=*/0, 1});
  EXPECT_FALSE(
      sim.ProbeWithAssignments(ok_plan, workers, truth, -1).ok());
}

TEST(PooledProbeTest, EmptyPlanIsEmptyRound) {
  const traffic::DayMatrix truth = FlatTruth(2, 40.0);
  CrowdSimulator sim({}, util::Rng(6));
  const auto round = sim.ProbeWithAssignments({}, {}, truth, 0);
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->probes.empty());
  EXPECT_EQ(round->total_paid, 0);
}

}  // namespace
}  // namespace crowdrtse::crowd
