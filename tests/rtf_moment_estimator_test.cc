#include "rtf/moment_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::rtf {
namespace {

/// Builds a tiny deterministic history over a 2-road path:
/// road 0 alternates 40 +/- 2, road 1 = road 0 + 10 (perfectly correlated).
traffic::HistoryStore CorrelatedHistory(int num_days) {
  traffic::HistoryStore store(2, num_days, /*num_slots=*/4);
  for (int day = 0; day < num_days; ++day) {
    for (int slot = 0; slot < 4; ++slot) {
      const double base = 40.0 + (day % 2 == 0 ? 2.0 : -2.0);
      store.At(day, slot, 0) = base;
      store.At(day, slot, 1) = base + 10.0;
    }
  }
  return store;
}

TEST(MomentEstimatorTest, RecoversMeansAndPerfectCorrelation) {
  const graph::Graph g = *graph::PathNetwork(2);
  const traffic::HistoryStore history = CorrelatedHistory(10);
  MomentEstimatorOptions options;
  options.slot_window = 0;
  const auto model = EstimateByMoments(g, history, options);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->Mu(0, 0), 40.0, 1e-9);
  EXPECT_NEAR(model->Mu(0, 1), 50.0, 1e-9);
  // Alternating +/-2 -> sample stddev ~2.1 for 10 samples.
  EXPECT_NEAR(model->Sigma(0, 0), 2.0 * std::sqrt(10.0 / 9.0), 1e-9);
  // Perfect correlation clamps to the max allowed value.
  EXPECT_DOUBLE_EQ(model->Rho(0, 0), RtfModel::kMaxRho);
}

TEST(MomentEstimatorTest, AntiCorrelationClampsToMin) {
  const graph::Graph g = *graph::PathNetwork(2);
  traffic::HistoryStore store(2, 10, 2);
  for (int day = 0; day < 10; ++day) {
    for (int slot = 0; slot < 2; ++slot) {
      const double delta = (day % 2 == 0 ? 3.0 : -3.0);
      store.At(day, slot, 0) = 40.0 + delta;
      store.At(day, slot, 1) = 40.0 - delta;  // anti-correlated
    }
  }
  const auto model = EstimateByMoments(g, store, MomentEstimatorOptions{});
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->Rho(0, 0), RtfModel::kMinRho);
}

TEST(MomentEstimatorTest, SigmaFloorApplied) {
  const graph::Graph g = *graph::PathNetwork(2);
  traffic::HistoryStore store(2, 5, 2);  // all zeros -> zero variance
  for (int day = 0; day < 5; ++day) {
    for (int slot = 0; slot < 2; ++slot) {
      store.At(day, slot, 0) = 30.0;
      store.At(day, slot, 1) = 30.0;
    }
  }
  MomentEstimatorOptions options;
  options.min_sigma = 0.75;
  const auto model = EstimateByMoments(g, store, options);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->Sigma(0, 0), 0.75);
}

TEST(MomentEstimatorTest, SlotWindowPoolsNeighbours) {
  const graph::Graph g = *graph::PathNetwork(2);
  traffic::HistoryStore store(2, 4, 3);
  // Slot means differ: slot 0 -> 10, slot 1 -> 20, slot 2 -> 30.
  for (int day = 0; day < 4; ++day) {
    for (int slot = 0; slot < 3; ++slot) {
      store.At(day, slot, 0) = 10.0 * (slot + 1);
      store.At(day, slot, 1) = 10.0 * (slot + 1);
    }
  }
  MomentEstimatorOptions narrow;
  narrow.slot_window = 0;
  const auto m0 = EstimateByMoments(g, store, narrow);
  ASSERT_TRUE(m0.ok());
  EXPECT_NEAR(m0->Mu(1, 0), 20.0, 1e-9);
  MomentEstimatorOptions wide;
  wide.slot_window = 1;
  const auto m1 = EstimateByMoments(g, store, wide);
  ASSERT_TRUE(m1.ok());
  // Pooled over slots 0..2 -> mean 20, but slot 0 pools {2, 0, 1}(wrap).
  EXPECT_NEAR(m1->Mu(1, 0), 20.0, 1e-9);
  EXPECT_GT(m1->Sigma(1, 0), m0->Sigma(1, 0));  // pooling adds profile spread
}

TEST(MomentEstimatorTest, ValidationErrors) {
  const graph::Graph g = *graph::PathNetwork(2);
  traffic::HistoryStore wrong_roads(3, 5, 2);
  EXPECT_FALSE(EstimateByMoments(g, wrong_roads, {}).ok());
  traffic::HistoryStore one_day(2, 1, 2);
  EXPECT_FALSE(EstimateByMoments(g, one_day, {}).ok());
  traffic::HistoryStore ok_history(2, 5, 2);
  MomentEstimatorOptions bad;
  bad.slot_window = -1;
  EXPECT_FALSE(EstimateByMoments(g, ok_history, bad).ok());
}

TEST(MomentEstimatorTest, SimulatedTrafficRecoversProfile) {
  util::Rng rng(3);
  graph::RoadNetworkOptions net_options;
  net_options.num_roads = 40;
  const graph::Graph g = *graph::RoadNetwork(net_options, rng);
  traffic::TrafficModelOptions traffic_options;
  traffic_options.num_days = 20;
  traffic_options.incident_rate_per_road_day = 0.0;
  const traffic::TrafficSimulator sim(g, traffic_options, 17);
  const traffic::HistoryStore history = sim.GenerateHistory();
  MomentEstimatorOptions options;
  options.slot_window = 0;
  const auto model = EstimateByMoments(g, history, options);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Validate().ok());
  // mu should track the simulator's periodic profile within a few noise
  // scales, for a sample of roads and slots.
  for (graph::RoadId r = 0; r < 10; ++r) {
    for (int slot : {30, 99, 150, 216}) {
      EXPECT_NEAR(model->Mu(slot, r), sim.PeriodicSpeed(r, slot),
                  4.0 * sim.profiles()[static_cast<size_t>(r)].noise_scale)
          << "road " << r << " slot " << slot;
    }
  }
  // Edge correlations must skew positive (spatially diffused noise).
  double rho_sum = 0.0;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    rho_sum += model->Rho(100, e);
  }
  EXPECT_GT(rho_sum / g.num_edges(), 0.25);
}

}  // namespace
}  // namespace crowdrtse::rtf
