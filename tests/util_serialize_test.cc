#include "util/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace crowdrtse::util {
namespace {

TEST(SerializeTest, ScalarRoundTrip) {
  BinaryWriter writer;
  writer.WriteUint32(0xDEADBEEF);
  writer.WriteUint64(1234567890123ULL);
  writer.WriteInt32(-42);
  writer.WriteDouble(3.14159);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(*reader.ReadUint32(), 0xDEADBEEF);
  EXPECT_EQ(*reader.ReadUint64(), 1234567890123ULL);
  EXPECT_EQ(*reader.ReadInt32(), -42);
  EXPECT_DOUBLE_EQ(*reader.ReadDouble(), 3.14159);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, StringRoundTrip) {
  BinaryWriter writer;
  writer.WriteString("hello world");
  writer.WriteString("");
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(*reader.ReadString(), "hello world");
  EXPECT_EQ(*reader.ReadString(), "");
}

TEST(SerializeTest, VectorRoundTrip) {
  BinaryWriter writer;
  writer.WriteDoubleVector({1.5, -2.5, 0.0});
  writer.WriteInt32Vector({7, -8});
  BinaryReader reader(writer.buffer());
  const auto doubles = reader.ReadDoubleVector();
  ASSERT_TRUE(doubles.ok());
  EXPECT_EQ(*doubles, (std::vector<double>{1.5, -2.5, 0.0}));
  const auto ints = reader.ReadInt32Vector();
  ASSERT_TRUE(ints.ok());
  EXPECT_EQ(*ints, (std::vector<int32_t>{7, -8}));
}

TEST(SerializeTest, TruncatedInputFails) {
  BinaryWriter writer;
  writer.WriteDouble(1.0);
  const std::string truncated = writer.buffer().substr(0, 4);
  BinaryReader reader(truncated);
  EXPECT_FALSE(reader.ReadDouble().ok());
}

TEST(SerializeTest, TruncatedVectorFails) {
  BinaryWriter writer;
  writer.WriteDoubleVector({1.0, 2.0, 3.0});
  const std::string truncated =
      writer.buffer().substr(0, writer.buffer().size() - 8);
  BinaryReader reader(truncated);
  EXPECT_FALSE(reader.ReadDoubleVector().ok());
}

TEST(SerializeTest, LyingLengthPrefixFails) {
  BinaryWriter writer;
  writer.WriteUint64(1'000'000'000ULL);  // claims a huge string follows
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(reader.ReadString().ok());
}

TEST(SerializeTest, FileRoundTrip) {
  BinaryWriter writer;
  writer.WriteUint32(7);
  writer.WriteString("file payload");
  const std::string path = ::testing::TempDir() + "/serialize_test.bin";
  ASSERT_TRUE(writer.Flush(path).ok());
  auto reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(*reader->ReadUint32(), 7u);
  EXPECT_EQ(*reader->ReadString(), "file payload");
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  EXPECT_FALSE(BinaryReader::FromFile("/no/such/file.bin").ok());
}

}  // namespace
}  // namespace crowdrtse::util
