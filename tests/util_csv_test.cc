#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace crowdrtse::util {
namespace {

TEST(CsvTest, SplitPlainLine) {
  const auto cells = SplitCsvLine("a,b,c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "c");
}

TEST(CsvTest, SplitKeepsEmptyCells) {
  const auto cells = SplitCsvLine("a,,c,");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[1], "");
  EXPECT_EQ(cells[3], "");
}

TEST(CsvTest, SplitQuotedCells) {
  const auto cells = SplitCsvLine(R"("hello, world","say ""hi""",plain)");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "hello, world");
  EXPECT_EQ(cells[1], "say \"hi\"");
  EXPECT_EQ(cells[2], "plain");
}

TEST(CsvTest, ParseWithHeader) {
  const auto table = ParseCsv("road,speed\n1,42.5\n2,38.0\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header.size(), 2u);
  EXPECT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][1], "38.0");
  EXPECT_EQ(table->ColumnIndex("speed"), 1);
  EXPECT_EQ(table->ColumnIndex("missing"), -1);
}

TEST(CsvTest, ParseWithoutHeaderSynthesisesNames) {
  const auto table = ParseCsv("1,2\n3,4\n", /*has_header=*/false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header[0], "c0");
  EXPECT_EQ(table->rows.size(), 2u);
}

TEST(CsvTest, RowWidthMismatchFails) {
  const auto table = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, SkipsBlankLines) {
  const auto table = ParseCsv("a,b\n\n1,2\n\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 1u);
}

TEST(CsvTest, RoundTripWithQuoting) {
  CsvTable table;
  table.header = {"name", "note"};
  table.rows.push_back({"x", "needs, comma"});
  table.rows.push_back({"y", "has \"quote\""});
  const std::string text = ToCsv(table);
  const auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows[0][1], "needs, comma");
  EXPECT_EQ(parsed->rows[1][1], "has \"quote\"");
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable table;
  table.header = {"a"};
  table.rows.push_back({"1"});
  const std::string path = ::testing::TempDir() + "/csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  const auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows.size(), 1u);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  const auto loaded = ReadCsvFile("/nonexistent/really/not/here.csv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace crowdrtse::util
