// Concurrent-serving stress tests: many client threads hammer one
// QueryEngine over a shared reservation ledger. The invariants under test
// are the tentpole guarantees — the campaign budget is never jointly
// overspent, every query lands in exactly one outcome counter, every
// granted query settles exactly once, and the metrics layer sees every
// phase.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "server/budget_ledger.h"
#include "server/query_engine.h"
#include "server/worker_registry.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::server {
namespace {

class ConcurrentEngineTest : public ::testing::Test {
 protected:
  ConcurrentEngineTest() {
    util::Rng rng(21);
    graph::RoadNetworkOptions net;
    net.num_roads = 100;
    graph_ = *graph::RoadNetwork(net, rng);
    traffic::TrafficModelOptions traffic_options;
    traffic_options.num_days = 8;
    sim_ = std::make_unique<traffic::TrafficSimulator>(graph_,
                                                       traffic_options, 5);
    history_ = sim_->GenerateHistory();
    truth_ = sim_->GenerateEvaluationDay();
    core::CrowdRtseConfig config;
    config.gsp.num_threads = 2;  // exercise the non-reentrant parallel GSP
    system_ = std::make_unique<core::CrowdRtse>(
        *core::CrowdRtse::BuildOffline(graph_, history_, config));
    WorkerRegistryOptions registry_options;
    registry_options.num_workers = 600;
    registry_ = std::make_unique<WorkerRegistry>(graph_, registry_options,
                                                 7);
    costs_ = crowd::CostModel::Constant(100, 2);
    crowd_sim_ =
        std::make_unique<crowd::CrowdSimulator>(crowd::CrowdSimOptions{},
                                                util::Rng(9));
  }

  QueryRequest MakeRequest(int slot) {
    QueryRequest request;
    request.slot = slot;
    request.queried = {3, 17, 42, 77};
    return request;
  }

  graph::Graph graph_;
  std::unique_ptr<traffic::TrafficSimulator> sim_;
  traffic::HistoryStore history_;
  traffic::DayMatrix truth_;
  std::unique_ptr<core::CrowdRtse> system_;
  std::unique_ptr<WorkerRegistry> registry_;
  crowd::CostModel costs_;
  std::unique_ptr<crowd::CrowdSimulator> crowd_sim_;
};

TEST_F(ConcurrentEngineTest, SharedLedgerNeverOverspendsCampaign) {
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 8;
  constexpr int64_t kCampaignBudget = 300;  // dries up mid-run
  BudgetLedger ledger(kCampaignBudget, /*per_query_cap=*/12);
  QueryEngine::Options options;
  options.propagator_pool_size = 3;
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_,
                     options);

  std::atomic<int> served{0};
  std::atomic<int> rejected{0};
  std::atomic<int64_t> paid_observed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        // A few distinct slots so cold correlation-cache fills race too.
        const auto response =
            engine.Serve(MakeRequest(100 + (t + i) % 3), truth_);
        if (response.ok()) {
          served.fetch_add(1);
          paid_observed.fetch_add(response->paid);
          EXPECT_LE(response->paid, response->granted_budget);
        } else {
          EXPECT_EQ(response.status().code(),
                    util::StatusCode::kFailedPrecondition);
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  const EngineStats stats = engine.stats();
  constexpr int kAttempts = kThreads * kQueriesPerThread;
  // The central invariant: reservations stopped concurrent queries from
  // jointly overspending.
  EXPECT_LE(ledger.total_spent(), kCampaignBudget);
  EXPECT_EQ(ledger.reserved_outstanding(), 0);
  // Every query landed in exactly one outcome bucket.
  EXPECT_EQ(stats.queries_served, served.load());
  EXPECT_EQ(stats.queries_rejected, rejected.load());
  EXPECT_EQ(stats.queries_served + stats.queries_rejected +
                stats.queries_failed,
            kAttempts);
  EXPECT_GT(stats.queries_served, 0);
  EXPECT_GT(stats.queries_rejected, 0);  // the campaign did dry up
  // Every granted query settled exactly once.
  EXPECT_EQ(static_cast<int64_t>(ledger.entries().size()),
            stats.queries_served + stats.queries_failed);
  EXPECT_EQ(stats.total_paid, ledger.total_spent());
  EXPECT_EQ(paid_observed.load(), stats.total_paid);
  // The metrics layer saw every served query end to end.
  EXPECT_EQ(stats.serve_latency.count, stats.queries_served);
  EXPECT_GE(stats.ocs_latency.count, stats.queries_served);
  EXPECT_LE(stats.serve_latency.p50_ms, stats.serve_latency.p99_ms);
}

TEST_F(ConcurrentEngineTest, DistinctQueryIdsUnderConcurrency) {
  BudgetLedger ledger(-1, 12);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  constexpr int kThreads = 6;
  constexpr int kQueriesPerThread = 5;
  std::vector<std::vector<int64_t>> ids(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const auto response = engine.Serve(MakeRequest(100), truth_);
        if (response.ok()) {
          ids[static_cast<size_t>(t)].push_back(response->query_id);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  std::vector<int64_t> all;
  for (const auto& per_thread : ids) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  EXPECT_EQ(all.size(),
            static_cast<size_t>(kThreads * kQueriesPerThread));
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate query id handed out";
}

TEST_F(ConcurrentEngineTest, ReportIncludesPerPhasePercentiles) {
  BudgetLedger ledger(-1, 12);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.Serve(MakeRequest(100 + i), truth_).ok());
  }
  const std::string report = engine.stats().Report();
  EXPECT_NE(report.find("served 4"), std::string::npos);
  EXPECT_NE(report.find("ocs:"), std::string::npos);
  EXPECT_NE(report.find("crowd:"), std::string::npos);
  EXPECT_NE(report.find("gsp:"), std::string::npos);
  EXPECT_NE(report.find("p50="), std::string::npos);
  EXPECT_NE(report.find("p95="), std::string::npos);
  EXPECT_NE(report.find("p99="), std::string::npos);
  // Gamma_R cache state is part of the service report: the four slots above
  // were each a cold miss, later queries of the same slot are hits.
  EXPECT_NE(report.find("gamma:"), std::string::npos);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.gamma_cache.misses, 4);
  ASSERT_TRUE(engine.Serve(MakeRequest(100), truth_).ok());
  EXPECT_GE(engine.stats().gamma_cache.hits, 1);
}

}  // namespace
}  // namespace crowdrtse::server
