#include "math/linear_solver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace crowdrtse::math {
namespace {

DenseMatrix RandomSpd(size_t n, util::Rng& rng) {
  DenseMatrix a(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) a.At(r, c) = rng.Normal();
  }
  DenseMatrix spd = a.Transposed().Multiply(a);
  for (size_t i = 0; i < n; ++i) spd.At(i, i) += static_cast<double>(n);
  return spd;
}

TEST(CholeskyTest, Solves2x2) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 4;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 3;
  auto factor = CholeskyFactor::Factorize(a);
  ASSERT_TRUE(factor.ok());
  const std::vector<double> x = factor->Solve({2, 5});
  // Verify A x = b.
  EXPECT_NEAR(4 * x[0] + 2 * x[1], 2.0, 1e-12);
  EXPECT_NEAR(2 * x[0] + 3 * x[1], 5.0, 1e-12);
}

TEST(CholeskyTest, RandomSystemsResidualSmall) {
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 8;
    const DenseMatrix a = RandomSpd(n, rng);
    std::vector<double> b(n);
    for (double& v : b) v = rng.Normal();
    auto solved = SolveSpd(a, b);
    ASSERT_TRUE(solved.ok());
    const std::vector<double> ax = a.Multiply(*solved);
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
  }
}

TEST(CholeskyTest, RejectsNonSquare) {
  DenseMatrix a(2, 3);
  EXPECT_FALSE(CholeskyFactor::Factorize(a).ok());
}

TEST(CholeskyTest, RejectsIndefinite) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 1;  // eigenvalues 3 and -1
  const auto factor = CholeskyFactor::Factorize(a);
  EXPECT_FALSE(factor.ok());
  EXPECT_EQ(factor.status().code(), util::StatusCode::kNumericalError);
}

TEST(ConjugateGradientTest, MatchesCholesky) {
  util::Rng rng(9);
  const size_t n = 12;
  const DenseMatrix a = RandomSpd(n, rng);
  std::vector<double> b(n);
  for (double& v : b) v = rng.Normal();
  const CgResult cg = ConjugateGradient(
      b, [&](const std::vector<double>& x) { return a.Multiply(x); });
  EXPECT_TRUE(cg.converged);
  const auto direct = SolveSpd(a, b);
  ASSERT_TRUE(direct.ok());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(cg.x[i], (*direct)[i], 1e-6);
}

TEST(ConjugateGradientTest, ZeroRhsConvergesImmediately) {
  const CgResult cg = ConjugateGradient(
      std::vector<double>(5, 0.0),
      [](const std::vector<double>& x) { return x; });
  EXPECT_TRUE(cg.converged);
  EXPECT_EQ(cg.iterations, 0);
  for (double v : cg.x) EXPECT_EQ(v, 0.0);
}

TEST(PreconditionedCgTest, MatchesDirectSolve) {
  util::Rng rng(13);
  const size_t n = 15;
  const DenseMatrix a = RandomSpd(n, rng);
  std::vector<double> b(n);
  for (double& v : b) v = rng.Normal();
  std::vector<double> diagonal(n);
  for (size_t i = 0; i < n; ++i) diagonal[i] = a.At(i, i);
  const CgResult pcg = PreconditionedConjugateGradient(
      b, [&](const std::vector<double>& x) { return a.Multiply(x); },
      diagonal);
  EXPECT_TRUE(pcg.converged);
  const auto direct = SolveSpd(a, b);
  ASSERT_TRUE(direct.ok());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(pcg.x[i], (*direct)[i], 1e-6);
}

TEST(PreconditionedCgTest, HelpsOnBadlyScaledSystems) {
  // A diagonal-dominant system whose scales span 6 orders of magnitude:
  // Jacobi preconditioning should converge in far fewer iterations.
  util::Rng rng(17);
  const size_t n = 60;
  DenseMatrix a(n, n, 0.0);
  std::vector<double> diagonal(n);
  for (size_t i = 0; i < n; ++i) {
    diagonal[i] = std::pow(10.0, rng.UniformDouble(-3.0, 3.0));
    a.At(i, i) = diagonal[i];
    if (i > 0) {
      // Couple to the previous row at a tenth of the smaller diagonal so
      // the matrix stays strictly diagonally dominant (hence SPD).
      const double off = 0.1 * std::min(diagonal[i - 1], diagonal[i]);
      a.At(i - 1, i) = off;
      a.At(i, i - 1) = off;
    }
  }
  std::vector<double> b(n);
  for (double& v : b) v = rng.Normal();
  CgOptions options;
  options.max_iterations = 5000;
  options.tolerance = 1e-10;
  const auto apply = [&](const std::vector<double>& x) {
    return a.Multiply(x);
  };
  const CgResult plain = ConjugateGradient(b, apply, options);
  const CgResult pcg =
      PreconditionedConjugateGradient(b, apply, diagonal, options);
  EXPECT_TRUE(pcg.converged);
  EXPECT_LT(pcg.iterations, plain.iterations);
}

TEST(ConjugateGradientTest, IterationCapRespected) {
  util::Rng rng(5);
  const size_t n = 30;
  const DenseMatrix a = RandomSpd(n, rng);
  std::vector<double> b(n);
  for (double& v : b) v = rng.Normal();
  CgOptions options;
  options.max_iterations = 2;
  options.tolerance = 1e-14;
  const CgResult cg = ConjugateGradient(
      b, [&](const std::vector<double>& x) { return a.Multiply(x); },
      options);
  EXPECT_LE(cg.iterations, 2);
}

}  // namespace
}  // namespace crowdrtse::math
