#include "graph/road_geometry.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crowdrtse::graph {
namespace {

TEST(RoadGeometryTest, UniformRandomWithinRange) {
  util::Rng rng(1);
  const auto geometry = RoadGeometry::UniformRandom(100, 0.2, 1.5, rng);
  ASSERT_TRUE(geometry.ok());
  EXPECT_EQ(geometry->num_roads(), 100);
  for (RoadId r = 0; r < 100; ++r) {
    EXPECT_GE(geometry->LengthKm(r), 0.2);
    EXPECT_LE(geometry->LengthKm(r), 1.5);
  }
}

TEST(RoadGeometryTest, UniformRandomValidation) {
  util::Rng rng(1);
  EXPECT_FALSE(RoadGeometry::UniformRandom(-1, 0.1, 1.0, rng).ok());
  EXPECT_FALSE(RoadGeometry::UniformRandom(5, 0.0, 1.0, rng).ok());
  EXPECT_FALSE(RoadGeometry::UniformRandom(5, 2.0, 1.0, rng).ok());
}

TEST(RoadGeometryTest, Constant) {
  const RoadGeometry geometry = RoadGeometry::Constant(4, 0.8);
  for (RoadId r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(geometry.LengthKm(r), 0.8);
  }
}

TEST(RoadGeometryTest, TravelMinutes) {
  const RoadGeometry geometry = RoadGeometry::Constant(1, 1.0);
  // 1 km at 60 km/h -> 1 minute.
  EXPECT_DOUBLE_EQ(geometry.TravelMinutes(0, 60.0), 1.0);
  // 1 km at 30 km/h -> 2 minutes.
  EXPECT_DOUBLE_EQ(geometry.TravelMinutes(0, 30.0), 2.0);
  EXPECT_TRUE(std::isinf(geometry.TravelMinutes(0, 0.0)));
}

TEST(RoadGeometryTest, PathLength) {
  const RoadGeometry geometry = RoadGeometry::Constant(5, 0.5);
  EXPECT_DOUBLE_EQ(geometry.PathLengthKm({0, 2, 4}), 1.5);
  EXPECT_DOUBLE_EQ(geometry.PathLengthKm({}), 0.0);
}

}  // namespace
}  // namespace crowdrtse::graph
