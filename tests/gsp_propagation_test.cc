#include "gsp/propagation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "rtf/moment_estimator.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::gsp {
namespace {

/// Uniform model over a graph: mu, sigma, rho the same everywhere.
rtf::RtfModel UniformModel(const graph::Graph& g, double mu, double sigma,
                           double rho) {
  rtf::RtfModel model(g, 1);
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    model.SetMu(0, r, mu);
    model.SetSigma(0, r, sigma);
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    model.SetRho(0, e, rho);
  }
  return model;
}

TEST(GspTest, NoSamplesReturnsPeriodicMeans) {
  const graph::Graph g = *graph::PathNetwork(5);
  rtf::RtfModel model = UniformModel(g, 50.0, 2.0, 0.8);
  model.SetMu(0, 3, 70.0);
  const SpeedPropagator propagator(model, {});
  const auto result = propagator.Propagate(0, {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->sweeps, 0);
  EXPECT_DOUBLE_EQ(result->speeds[3], 70.0);
  EXPECT_DOUBLE_EQ(result->speeds[0], 50.0);
}

TEST(GspTest, SampledRoadsKeepProbedValues) {
  const graph::Graph g = *graph::PathNetwork(5);
  const rtf::RtfModel model = UniformModel(g, 50.0, 2.0, 0.8);
  const SpeedPropagator propagator(model, {});
  const auto result = propagator.Propagate(0, {1, 3}, {20.0, 80.0});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->speeds[1], 20.0);
  EXPECT_DOUBLE_EQ(result->speeds[3], 80.0);
}

TEST(GspTest, ProbeDeviationPropagatesAndDecays) {
  // All roads expect 50; probing road 0 at 20 must pull road 1 well below
  // 50, road 2 less so, road 3 even less: the influence decays with hops.
  const graph::Graph g = *graph::PathNetwork(6);
  const rtf::RtfModel model = UniformModel(g, 50.0, 5.0, 0.9);
  GspOptions options;
  options.epsilon = 1e-8;
  const SpeedPropagator propagator(model, options);
  const auto result = propagator.Propagate(0, {0}, {20.0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  const auto& v = result->speeds;
  EXPECT_LT(v[1], 50.0);
  EXPECT_LT(v[1], v[2]);
  EXPECT_LT(v[2], v[3]);
  EXPECT_LT(v[3], v[4]);
  for (size_t i = 1; i < v.size(); ++i) {
    EXPECT_GT(v[i], 20.0 - 1e-9);
    EXPECT_LT(v[i], 50.0 + 1e-9);
  }
}

TEST(GspTest, ConvergedStateSatisfiesFixedPoint) {
  // Every non-sampled variable must satisfy Eq. (18) at convergence.
  util::Rng rng(3);
  graph::RoadNetworkOptions net;
  net.num_roads = 40;
  const graph::Graph g = *graph::RoadNetwork(net, rng);
  rtf::RtfModel model(g, 1);
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    model.SetMu(0, r, rng.UniformDouble(30.0, 70.0));
    model.SetSigma(0, r, rng.UniformDouble(1.0, 6.0));
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    model.SetRho(0, e, rng.UniformDouble(0.4, 0.95));
  }
  GspOptions options;
  options.epsilon = 1e-10;
  options.max_sweeps = 2000;
  const SpeedPropagator propagator(model, options);
  const std::vector<graph::RoadId> sampled{0, 10, 20};
  const std::vector<double> probed{25.0, 60.0, 45.0};
  const auto result = propagator.Propagate(0, sampled, probed);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    if (r == 0 || r == 10 || r == 20) continue;
    if (result->hops[static_cast<size_t>(r)] < 0) continue;
    const double fixed_point =
        propagator.UpdateValue(0, r, result->speeds);
    EXPECT_NEAR(result->speeds[static_cast<size_t>(r)], fixed_point, 1e-6);
  }
}

TEST(GspTest, UnreachableRoadsStayAtMu) {
  graph::GraphBuilder builder(4);
  builder.AddEdge(0, 1);  // component A
  builder.AddEdge(2, 3);  // component B
  const graph::Graph g = *builder.Build();
  rtf::RtfModel model = UniformModel(g, 50.0, 2.0, 0.9);
  model.SetMu(0, 3, 66.0);
  const SpeedPropagator propagator(model, {});
  const auto result = propagator.Propagate(0, {0}, {10.0});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->speeds[3], 66.0);
  EXPECT_EQ(result->hops[3], -1);
  EXPECT_LT(result->speeds[1], 50.0);  // reached and pulled down
}

TEST(GspTest, StrongerCorrelationPullsHarder) {
  const graph::Graph g = *graph::PathNetwork(2);
  const rtf::RtfModel weak_model = UniformModel(g, 50.0, 5.0, 0.3);
  const rtf::RtfModel strong_model = UniformModel(g, 50.0, 5.0, 0.95);
  const SpeedPropagator weak(weak_model, {});
  const SpeedPropagator strong(strong_model, {});
  const auto weak_result = weak.Propagate(0, {0}, {20.0});
  const auto strong_result = strong.Propagate(0, {0}, {20.0});
  ASSERT_TRUE(weak_result.ok());
  ASSERT_TRUE(strong_result.ok());
  EXPECT_LT(strong_result->speeds[1], weak_result->speeds[1]);
}

TEST(GspTest, MuOffsetsRespectedInPropagation) {
  // Roads with different mu: probing road 0 exactly at its mean must leave
  // neighbours at their own means (residual is zero).
  const graph::Graph g = *graph::PathNetwork(3);
  rtf::RtfModel model = UniformModel(g, 0.0, 2.0, 0.8);
  model.SetMu(0, 0, 40.0);
  model.SetMu(0, 1, 55.0);
  model.SetMu(0, 2, 30.0);
  GspOptions options;
  options.epsilon = 1e-10;
  const SpeedPropagator propagator(model, options);
  const auto result = propagator.Propagate(0, {0}, {40.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->speeds[1], 55.0, 1e-6);
  EXPECT_NEAR(result->speeds[2], 30.0, 1e-6);
}

TEST(GspTest, HopsReportedCorrectly) {
  const graph::Graph g = *graph::PathNetwork(5);
  const rtf::RtfModel model = UniformModel(g, 50.0, 2.0, 0.8);
  const SpeedPropagator propagator(model, {});
  const auto result = propagator.Propagate(0, {2}, {50.0});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hops, (std::vector<int>{2, 1, 0, 1, 2}));
}

TEST(GspTest, Validation) {
  const graph::Graph g = *graph::PathNetwork(3);
  const rtf::RtfModel model = UniformModel(g, 50.0, 2.0, 0.8);
  const SpeedPropagator propagator(model, {});
  EXPECT_FALSE(propagator.Propagate(5, {0}, {1.0}).ok());
  EXPECT_FALSE(propagator.Propagate(0, {0, 1}, {1.0}).ok());
  EXPECT_FALSE(propagator.Propagate(0, {9}, {1.0}).ok());
  GspOptions bad;
  bad.epsilon = 0.0;
  const SpeedPropagator bad_propagator(model, bad);
  EXPECT_FALSE(bad_propagator.Propagate(0, {0}, {1.0}).ok());
}

TEST(GspTest, EstimationQualityBeatsPeriodicBaseline) {
  // End-to-end on simulated traffic: GSP with 20% of roads probed must
  // beat the pure periodic estimate on the remaining roads.
  util::Rng rng(11);
  graph::RoadNetworkOptions net;
  net.num_roads = 80;
  const graph::Graph g = *graph::RoadNetwork(net, rng);
  traffic::TrafficModelOptions traffic_options;
  traffic_options.num_days = 12;
  const traffic::TrafficSimulator sim(g, traffic_options, 5);
  const traffic::HistoryStore history = sim.GenerateHistory();
  rtf::MomentEstimatorOptions moment_options;
  moment_options.slot_window = 1;
  const rtf::RtfModel model = *rtf::EstimateByMoments(g, history,
                                                      moment_options);
  const traffic::DayMatrix truth = sim.GenerateEvaluationDay();
  const int slot = 100;
  std::vector<graph::RoadId> sampled;
  std::vector<double> probed;
  for (graph::RoadId r = 0; r < g.num_roads(); r += 5) {
    sampled.push_back(r);
    probed.push_back(truth.At(slot, r));
  }
  const SpeedPropagator propagator(model, {});
  const auto result = propagator.Propagate(slot, sampled, probed);
  ASSERT_TRUE(result.ok());
  double gsp_err = 0.0;
  double per_err = 0.0;
  int count = 0;
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    if (r % 5 == 0) continue;
    gsp_err += std::fabs(result->speeds[static_cast<size_t>(r)] -
                         truth.At(slot, r));
    per_err += std::fabs(model.Mu(slot, r) - truth.At(slot, r));
    ++count;
  }
  EXPECT_LT(gsp_err / count, per_err / count);
}


TEST(GspTest, LargeHopLimitMatchesUnlimitedBitwise) {
  const graph::Graph g = *graph::PathNetwork(6);
  const rtf::RtfModel model = UniformModel(g, 50.0, 5.0, 0.9);
  GspOptions unlimited;
  unlimited.epsilon = 1e-8;
  GspOptions capped = unlimited;
  capped.hop_limit = 100;  // deeper than the graph: no road is frozen
  const SpeedPropagator a(model, unlimited);
  const SpeedPropagator b(model, capped);
  const auto ra = a.Propagate(0, {0}, {20.0});
  const auto rb = b.Propagate(0, {0}, {20.0});
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->speeds.size(), rb->speeds.size());
  for (size_t i = 0; i < ra->speeds.size(); ++i) {
    EXPECT_EQ(ra->speeds[i], rb->speeds[i]) << "road " << i;
  }
  EXPECT_EQ(ra->sweeps, rb->sweeps);
}

TEST(GspTest, HopLimitFreezesRoadsBeyondTheHorizon) {
  const graph::Graph g = *graph::PathNetwork(8);
  const rtf::RtfModel model = UniformModel(g, 50.0, 5.0, 0.9);
  GspOptions options;
  options.epsilon = 1e-8;
  options.hop_limit = 2;
  const SpeedPropagator propagator(model, options);
  const auto result = propagator.Propagate(0, {0}, {20.0});
  ASSERT_TRUE(result.ok());
  // Roads within H=2 hops relax toward the probe; everything deeper stays
  // frozen at its periodic mean, exactly.
  EXPECT_LT(result->speeds[1], 50.0);
  EXPECT_LT(result->speeds[2], 50.0);
  for (graph::RoadId r = 3; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(result->speeds[r], 50.0) << "road " << r;
  }
}

}  // namespace
}  // namespace crowdrtse::gsp
