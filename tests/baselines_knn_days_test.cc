#include "baselines/knn_days.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "graph/generators.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::baselines {
namespace {

TEST(KnnDaysTest, ExactHistoricalRepeatIsRecalled) {
  // History has two regimes; probing values identical to regime-A days
  // must reproduce regime A everywhere (k = 1).
  const graph::Graph g = *graph::PathNetwork(4);
  traffic::HistoryStore history(4, 6, 2);
  for (int day = 0; day < 6; ++day) {
    const double level = day % 2 == 0 ? 60.0 : 25.0;  // A: fast, B: jammed
    for (int slot = 0; slot < 2; ++slot) {
      for (graph::RoadId r = 0; r < 4; ++r) {
        history.At(day, slot, r) = level + r;
      }
    }
  }
  KnnDaysOptions options;
  options.k = 1;
  const KnnDaysEstimator estimator(g, history, options);
  const auto est = estimator.Estimate(0, {0}, {60.0});
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR((*est)[1], 61.0, 1e-9);
  EXPECT_NEAR((*est)[3], 63.0, 1e-9);
  const auto jammed = estimator.Estimate(0, {0}, {25.0});
  ASSERT_TRUE(jammed.ok());
  EXPECT_NEAR((*jammed)[3], 28.0, 1e-9);
}

TEST(KnnDaysTest, KernelWeightingFavoursCloserDays) {
  const graph::Graph g = *graph::PathNetwork(2);
  traffic::HistoryStore history(2, 3, 1);
  // Days at probe values 10, 20, 90; probing 12 should land near 10-20,
  // far from 90.
  history.At(0, 0, 0) = 10.0;
  history.At(0, 0, 1) = 100.0;
  history.At(1, 0, 0) = 20.0;
  history.At(1, 0, 1) = 200.0;
  history.At(2, 0, 0) = 90.0;
  history.At(2, 0, 1) = 900.0;
  KnnDaysOptions options;
  options.k = 3;
  options.bandwidth_kmh = 5.0;
  const KnnDaysEstimator estimator(g, history, options);
  const auto est = estimator.Estimate(0, {0}, {12.0});
  ASSERT_TRUE(est.ok());
  EXPECT_LT((*est)[1], 250.0);  // dominated by days 0/1, not day 2
  EXPECT_GT((*est)[1], 90.0);
}

TEST(KnnDaysTest, NoProbesGivesMeanOfAllDays) {
  const graph::Graph g = *graph::PathNetwork(2);
  traffic::HistoryStore history(2, 4, 1);
  for (int day = 0; day < 4; ++day) {
    history.At(day, 0, 0) = 10.0 * (day + 1);
    history.At(day, 0, 1) = 10.0 * (day + 1);
  }
  KnnDaysOptions options;
  options.k = 4;
  options.bandwidth_kmh = 0.0;  // unweighted
  const KnnDaysEstimator estimator(g, history, options);
  const auto est = estimator.Estimate(0, {}, {});
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR((*est)[0], 25.0, 1e-9);
}

TEST(KnnDaysTest, ProbesEchoed) {
  const graph::Graph g = *graph::PathNetwork(3);
  traffic::HistoryStore history(3, 3, 1);
  const KnnDaysEstimator estimator(g, history, {});
  const auto est = estimator.Estimate(0, {1}, {77.0});
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ((*est)[1], 77.0);
}

TEST(KnnDaysTest, KLargerThanHistoryClamped) {
  const graph::Graph g = *graph::PathNetwork(2);
  traffic::HistoryStore history(2, 2, 1);
  history.At(0, 0, 0) = 10.0;
  history.At(1, 0, 0) = 30.0;
  KnnDaysOptions options;
  options.k = 50;
  options.bandwidth_kmh = 0.0;
  const KnnDaysEstimator estimator(g, history, options);
  const auto est = estimator.Estimate(0, {}, {});
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR((*est)[0], 20.0, 1e-9);
}

TEST(KnnDaysTest, SimulatedTrafficReasonable) {
  util::Rng rng(5);
  graph::RoadNetworkOptions net;
  net.num_roads = 40;
  const graph::Graph g = *graph::RoadNetwork(net, rng);
  traffic::TrafficModelOptions traffic_options;
  traffic_options.num_days = 20;
  const traffic::TrafficSimulator sim(g, traffic_options, 9);
  const traffic::HistoryStore history = sim.GenerateHistory();
  const traffic::DayMatrix truth = sim.GenerateEvaluationDay();
  const int slot = 99;
  std::vector<graph::RoadId> observed;
  std::vector<double> speeds;
  for (graph::RoadId r = 0; r < g.num_roads(); r += 4) {
    observed.push_back(r);
    speeds.push_back(truth.At(slot, r));
  }
  const KnnDaysEstimator estimator(g, history, {});
  const auto est = estimator.Estimate(slot, observed, speeds);
  ASSERT_TRUE(est.ok());
  double err = 0.0;
  int count = 0;
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    if (r % 4 == 0) continue;
    err += std::fabs((*est)[static_cast<size_t>(r)] - truth.At(slot, r)) /
           truth.At(slot, r);
    ++count;
  }
  EXPECT_LT(err / count, 0.25);  // sane non-parametric quality
}

TEST(KnnDaysTest, Validation) {
  const graph::Graph g = *graph::PathNetwork(2);
  traffic::HistoryStore history(2, 3, 1);
  const KnnDaysEstimator estimator(g, history, {});
  EXPECT_FALSE(estimator.Estimate(5, {}, {}).ok());
  EXPECT_FALSE(estimator.Estimate(0, {0}, {}).ok());
  EXPECT_FALSE(estimator.Estimate(0, {9}, {1.0}).ok());
  KnnDaysOptions bad;
  bad.k = 0;
  const KnnDaysEstimator bad_estimator(g, history, bad);
  EXPECT_FALSE(bad_estimator.Estimate(0, {}, {}).ok());
  traffic::HistoryStore empty(2, 0, 1);
  const KnnDaysEstimator no_history(g, empty, {});
  EXPECT_FALSE(no_history.Estimate(0, {}, {}).ok());
}

}  // namespace
}  // namespace crowdrtse::baselines
