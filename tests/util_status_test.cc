#include "util/status.h"

#include <gtest/gtest.h>

namespace crowdrtse::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNumericalError),
               "NumericalError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status FailingHelper() { return Status::IoError("disk"); }

Status PropagatingFunction() {
  CROWDRTSE_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  const Status s = PropagatingFunction();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace crowdrtse::util
