#include <gtest/gtest.h>

#include "graph/generators.h"
#include "gsp/propagation.h"
#include "util/rng.h"

namespace crowdrtse::gsp {
namespace {

rtf::RtfModel RandomModel(const graph::Graph& g, uint64_t seed) {
  util::Rng rng(seed);
  rtf::RtfModel model(g, 1);
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    model.SetMu(0, r, rng.UniformDouble(30.0, 70.0));
    model.SetSigma(0, r, rng.UniformDouble(1.0, 6.0));
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    model.SetRho(0, e, rng.UniformDouble(0.4, 0.95));
  }
  return model;
}

TEST(GspWarmStartTest, SameFixedPointAsColdStart) {
  util::Rng rng(3);
  graph::RoadNetworkOptions net;
  net.num_roads = 80;
  const graph::Graph g = *graph::RoadNetwork(net, rng);
  const rtf::RtfModel model = RandomModel(g, 5);
  GspOptions options;
  options.epsilon = 1e-10;
  options.max_sweeps = 5000;
  const SpeedPropagator propagator(model, options);
  const std::vector<graph::RoadId> sampled{0, 20, 40, 60};
  const std::vector<double> pins{25.0, 60.0, 45.0, 38.0};
  const auto cold = propagator.Propagate(0, sampled, pins);
  ASSERT_TRUE(cold.ok());
  // Warm start from an arbitrary (bad) initialisation.
  std::vector<double> initial(static_cast<size_t>(g.num_roads()), 10.0);
  const auto warm = propagator.PropagateFrom(0, sampled, pins, initial);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->converged);
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    if (warm->hops[static_cast<size_t>(r)] < 0) {
      // Unreachable roads keep their initialisation by design.
      continue;
    }
    EXPECT_NEAR(warm->speeds[static_cast<size_t>(r)],
                cold->speeds[static_cast<size_t>(r)], 1e-6);
  }
}

TEST(GspWarmStartTest, WarmStartFromSolutionConvergesImmediately) {
  util::Rng rng(7);
  graph::RoadNetworkOptions net;
  net.num_roads = 60;
  const graph::Graph g = *graph::RoadNetwork(net, rng);
  const rtf::RtfModel model = RandomModel(g, 9);
  GspOptions options;
  options.epsilon = 1e-6;
  const SpeedPropagator propagator(model, options);
  const std::vector<graph::RoadId> sampled{5, 25, 45};
  const std::vector<double> pins{30.0, 55.0, 42.0};
  const auto first = propagator.Propagate(0, sampled, pins);
  ASSERT_TRUE(first.ok());
  const auto resumed =
      propagator.PropagateFrom(0, sampled, pins, first->speeds);
  ASSERT_TRUE(resumed.ok());
  EXPECT_LE(resumed->sweeps, 2);  // already at the fixed point
  EXPECT_LT(resumed->sweeps, first->sweeps);
}

TEST(GspWarmStartTest, ConsecutiveSlotsConvergeFasterWarm) {
  // Realistic streaming use: answer slot t, then warm-start slot t from a
  // perturbed variant of the same probes (a 5-minutes-later query).
  util::Rng rng(11);
  graph::RoadNetworkOptions net;
  net.num_roads = 100;
  const graph::Graph g = *graph::RoadNetwork(net, rng);
  const rtf::RtfModel model = RandomModel(g, 13);
  GspOptions options;
  options.epsilon = 1e-8;
  options.max_sweeps = 5000;
  const SpeedPropagator propagator(model, options);
  std::vector<graph::RoadId> sampled;
  std::vector<double> pins;
  for (graph::RoadId r = 0; r < g.num_roads(); r += 9) {
    sampled.push_back(r);
    pins.push_back(rng.UniformDouble(25.0, 70.0));
  }
  const auto previous = propagator.Propagate(0, sampled, pins);
  ASSERT_TRUE(previous.ok());
  std::vector<double> drifted = pins;
  for (double& v : drifted) v += rng.Normal(0.0, 0.5);  // slight drift
  const auto cold = propagator.Propagate(0, sampled, drifted);
  const auto warm =
      propagator.PropagateFrom(0, sampled, drifted, previous->speeds);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_LE(warm->sweeps, cold->sweeps);
}

TEST(GspWarmStartTest, Validation) {
  const graph::Graph g = *graph::PathNetwork(4);
  const rtf::RtfModel model = RandomModel(g, 15);
  const SpeedPropagator propagator(model, {});
  const std::vector<double> wrong_size(2, 50.0);
  EXPECT_FALSE(
      propagator.PropagateFrom(0, {0}, {40.0}, wrong_size).ok());
}

}  // namespace
}  // namespace crowdrtse::gsp
