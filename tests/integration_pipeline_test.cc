// End-to-end integration tests of the full CrowdRTSE pipeline: synthetic
// traffic -> offline RTF training -> OCS -> simulated crowdsourcing -> GSP,
// checking the paper's headline claims on a compact instance:
//   * GSP beats the periodicity-only and correlation-only baselines under
//     sparse probing;
//   * Hybrid-Greedy selection beats random selection;
//   * bigger budgets do not hurt quality.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/grmc.h"
#include "baselines/lasso.h"
#include "baselines/periodic_estimator.h"
#include "core/crowd_rtse.h"
#include "core/gsp_estimator.h"
#include "eval/metrics.h"
#include "graph/generators.h"
#include "ocs/greedy_selectors.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static constexpr int kNumRoads = 100;
  static constexpr int kSlot = 100;  // 08:20, inside the morning rush

  PipelineTest() {
    util::Rng rng(77);
    graph::RoadNetworkOptions net;
    net.num_roads = kNumRoads;
    graph_ = *graph::RoadNetwork(net, rng);
    traffic::TrafficModelOptions traffic_options;
    traffic_options.num_days = 15;
    sim_ = std::make_unique<traffic::TrafficSimulator>(graph_,
                                                       traffic_options, 99);
    history_ = sim_->GenerateHistory();
    truth_ = sim_->GenerateEvaluationDay();
    core::CrowdRtseConfig config;
    config.moments.slot_window = 1;
    system_ = std::make_unique<core::CrowdRtse>(
        *core::CrowdRtse::BuildOffline(graph_, history_, config));
    costs_ = crowd::CostModel::Constant(kNumRoads, 1);
    util::Rng query_rng(5);
    for (int pick : query_rng.SampleWithoutReplacement(kNumRoads, 30)) {
      queried_.push_back(pick);
    }
    for (graph::RoadId r = 0; r < kNumRoads; ++r) workers_.push_back(r);
  }

  /// Runs selection + probing + a given estimator, returns MAPE on the
  /// queried roads.
  eval::QualityMetrics RunOnce(const baselines::RealtimeEstimator& estimator,
                               core::SelectorKind selector, int budget,
                               uint64_t probe_seed) {
    auto selection = system_->SelectRoads(kSlot, queried_, workers_, costs_,
                                          budget, selector);
    EXPECT_TRUE(selection.ok());
    crowd::CrowdSimulator crowd_sim({}, util::Rng(probe_seed));
    auto round = crowd_sim.Probe(selection->roads, costs_, truth_, kSlot);
    EXPECT_TRUE(round.ok());
    std::vector<double> probed;
    for (const auto& p : round->probes) probed.push_back(p.probed_kmh);
    auto estimates = estimator.Estimate(kSlot, selection->roads, probed);
    EXPECT_TRUE(estimates.ok());
    return *eval::ComputeQuality(*estimates, truth_.SlotSpeeds(kSlot),
                                 queried_);
  }

  graph::Graph graph_;
  std::unique_ptr<traffic::TrafficSimulator> sim_;
  traffic::HistoryStore history_;
  traffic::DayMatrix truth_;
  std::unique_ptr<core::CrowdRtse> system_;
  crowd::CostModel costs_;
  std::vector<graph::RoadId> queried_;
  std::vector<graph::RoadId> workers_;
};

TEST_F(PipelineTest, GspBeatsPeriodicBaseline) {
  const core::GspEstimator gsp(system_->model(), {});
  const baselines::PeriodicEstimator per(system_->model());
  const auto gsp_quality =
      RunOnce(gsp, core::SelectorKind::kHybridGreedy, 15, 1);
  const auto per_quality =
      RunOnce(per, core::SelectorKind::kHybridGreedy, 15, 1);
  EXPECT_LT(gsp_quality.mape, per_quality.mape);
}

TEST_F(PipelineTest, GspBeatsLassoUnderSparseProbes) {
  // With a tiny budget, the paper's key claim: GSP's joint use of
  // periodicity and correlation wins over correlation-only regression.
  const core::GspEstimator gsp(system_->model(), {});
  baselines::LassoEstimatorOptions lasso_options;
  lasso_options.slot_window = 1;
  const baselines::LassoEstimator lasso(graph_, history_, lasso_options);
  eval::QualityAccumulator gsp_acc;
  eval::QualityAccumulator lasso_acc;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    gsp_acc.Add(RunOnce(gsp, core::SelectorKind::kHybridGreedy, 8, seed));
    lasso_acc.Add(
        RunOnce(lasso, core::SelectorKind::kHybridGreedy, 8, seed));
  }
  EXPECT_LT(gsp_acc.Mean().mape, lasso_acc.Mean().mape);
}

TEST_F(PipelineTest, HybridSelectionBeatsRandomForGsp) {
  const core::GspEstimator gsp(system_->model(), {});
  const auto table = system_->CorrelationsFor(kSlot);
  ASSERT_TRUE(table.ok());
  eval::QualityAccumulator hybrid_acc;
  eval::QualityAccumulator random_acc;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    hybrid_acc.Add(
        RunOnce(gsp, core::SelectorKind::kHybridGreedy, 10, seed));
    // Random selection through the OCS problem directly.
    auto problem = ocs::OcsProblem::Create(
        **table, queried_, system_->SigmaWeights(kSlot, queried_), workers_,
        costs_, 10, system_->config().theta);
    ASSERT_TRUE(problem.ok());
    util::Rng rng(seed * 13);
    const ocs::OcsSolution random = ocs::RandomSelect(*problem, rng);
    crowd::CrowdSimulator crowd_sim({}, util::Rng(seed));
    auto round = crowd_sim.Probe(random.roads, costs_, truth_, kSlot);
    ASSERT_TRUE(round.ok());
    std::vector<double> probed;
    for (const auto& p : round->probes) probed.push_back(p.probed_kmh);
    auto estimates = gsp.Estimate(kSlot, random.roads, probed);
    ASSERT_TRUE(estimates.ok());
    random_acc.Add(*eval::ComputeQuality(
        *estimates, truth_.SlotSpeeds(kSlot), queried_));
  }
  EXPECT_LE(hybrid_acc.Mean().mape, random_acc.Mean().mape + 0.02);
}

TEST_F(PipelineTest, LargerBudgetNeverMuchWorse) {
  const core::GspEstimator gsp(system_->model(), {});
  const auto small =
      RunOnce(gsp, core::SelectorKind::kHybridGreedy, 5, 3);
  const auto large =
      RunOnce(gsp, core::SelectorKind::kHybridGreedy, 40, 3);
  EXPECT_LE(large.mape, small.mape + 0.02);
}

TEST_F(PipelineTest, GrmcRunsEndToEnd) {
  baselines::GrmcOptions options;
  options.max_iterations = 10;
  const baselines::GrmcEstimator grmc(graph_, history_, options);
  const auto quality =
      RunOnce(grmc, core::SelectorKind::kHybridGreedy, 15, 2);
  EXPECT_GT(quality.cases, 0u);
  EXPECT_LT(quality.mape, 1.0);  // sane, not necessarily great
}

TEST_F(PipelineTest, FullDaySweepStaysHealthy) {
  // Run queries at several slots across the day; GSP must stay finite and
  // physical everywhere (night, rush hour, midday).
  const core::GspEstimator gsp(system_->model(), {});
  for (int slot : {0, 60, 99, 144, 216, 287}) {
    auto selection = system_->SelectRoads(slot, queried_, workers_, costs_,
                                          12, core::SelectorKind::kHybridGreedy);
    ASSERT_TRUE(selection.ok());
    crowd::CrowdSimulator crowd_sim({}, util::Rng(slot));
    auto round = crowd_sim.Probe(selection->roads, costs_, truth_, slot);
    ASSERT_TRUE(round.ok());
    std::vector<double> probed;
    for (const auto& p : round->probes) probed.push_back(p.probed_kmh);
    auto estimates = gsp.Estimate(slot, selection->roads, probed);
    ASSERT_TRUE(estimates.ok());
    for (double v : *estimates) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GT(v, 0.0);
      EXPECT_LT(v, 250.0);
    }
  }
}

}  // namespace
}  // namespace crowdrtse
