#include "rtf/ccd_trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "rtf/moment_estimator.h"
#include "util/rng.h"

namespace crowdrtse::rtf {
namespace {

/// Small random history over a path graph.
traffic::HistoryStore RandomHistory(int num_roads, int num_days,
                                    int num_slots, uint64_t seed) {
  util::Rng rng(seed);
  traffic::HistoryStore store(num_roads, num_days, num_slots);
  for (int day = 0; day < num_days; ++day) {
    for (int slot = 0; slot < num_slots; ++slot) {
      for (graph::RoadId r = 0; r < num_roads; ++r) {
        store.At(day, slot, r) = 40.0 + 5.0 * r + rng.Normal(0.0, 3.0);
      }
    }
  }
  return store;
}

TEST(CcdTrainerTest, LikelihoodNeverDecreasesAcrossTraining) {
  const graph::Graph g = *graph::PathNetwork(5);
  const traffic::HistoryStore history = RandomHistory(5, 12, 2, 1);
  CcdOptions options;
  options.max_iterations = 50;
  options.learning_rate = 0.02;
  const CcdTrainer trainer(g, history, options);
  RtfModel model(g, 2);
  // Start away from the optimum but at a sane scale.
  for (graph::RoadId r = 0; r < 5; ++r) {
    model.SetMu(0, r, 30.0);
    model.SetSigma(0, r, 5.0);
  }
  const double before = trainer.LogLikelihood(model, 0);
  const auto report = trainer.TrainSlot(model, 0);
  ASSERT_TRUE(report.ok());
  const double after = trainer.LogLikelihood(model, 0);
  EXPECT_GT(after, before);
  EXPECT_DOUBLE_EQ(after, report->final_log_likelihood);
}

TEST(CcdTrainerTest, MuConvergesTowardsSampleMeansOnIsolatedRoads) {
  // A graph with no edges decouples the likelihood: the optimum mu is the
  // per-road sample mean.
  graph::GraphBuilder builder(3);
  const graph::Graph g = *builder.Build();
  traffic::HistoryStore history(3, 8, 1);
  for (int day = 0; day < 8; ++day) {
    history.At(day, 0, 0) = 10.0 + day;          // mean 13.5
    history.At(day, 0, 1) = 50.0;                // mean 50
    history.At(day, 0, 2) = (day % 2) * 20.0;    // mean 10
  }
  CcdOptions options;
  options.max_iterations = 2000;
  options.learning_rate = 0.1;
  options.update_sigma = false;
  options.update_rho = false;
  options.mu_gradient_tolerance = 1e-6;
  const CcdTrainer trainer(g, history, options);
  RtfModel model(g, 1);
  const auto report = trainer.TrainSlot(model, 0);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_NEAR(model.Mu(0, 0), 13.5, 1e-3);
  EXPECT_NEAR(model.Mu(0, 1), 50.0, 1e-3);
  EXPECT_NEAR(model.Mu(0, 2), 10.0, 1e-3);
}

TEST(CcdTrainerTest, GradientMatchesFiniteDifference) {
  const graph::Graph g = *graph::PathNetwork(4);
  const traffic::HistoryStore history = RandomHistory(4, 10, 1, 5);
  CcdOptions options;
  const CcdTrainer trainer(g, history, options);
  RtfModel model(g, 1);
  for (graph::RoadId r = 0; r < 4; ++r) {
    model.SetMu(0, r, 35.0 + r);
    model.SetSigma(0, r, 2.0 + 0.3 * r);
  }
  model.SetRho(0, 1, 0.6);
  // Finite-difference check of dL/dmu_1 via the public MaxMuGradient is
  // indirect; instead perturb mu_1 and verify the likelihood slope.
  const double h = 1e-5;
  const double base = trainer.LogLikelihood(model, 0);
  model.SetMu(0, 1, model.Mu(0, 1) + h);
  const double bumped = trainer.LogLikelihood(model, 0);
  const double numeric = (bumped - base) / h;
  model.SetMu(0, 1, model.Mu(0, 1) - h);
  // Train 0 iterations would not expose the gradient; use MaxMuGradient
  // as an upper bound check instead: |dL/dmu_1| <= max_i |dL/dmu_i|.
  const double max_grad = trainer.MaxMuGradient(model, 0);
  EXPECT_LE(std::fabs(numeric), max_grad * (1.0 + 1e-3) + 1e-6);
}

TEST(CcdTrainerTest, SigmaStaysAboveFloorAndRhoInRange) {
  const graph::Graph g = *graph::PathNetwork(4);
  const traffic::HistoryStore history = RandomHistory(4, 10, 1, 9);
  CcdOptions options;
  options.max_iterations = 100;
  options.learning_rate = 0.5;  // aggressive on purpose
  const CcdTrainer trainer(g, history, options);
  RtfModel model(g, 1);
  ASSERT_TRUE(trainer.TrainSlot(model, 0).ok());
  for (graph::RoadId r = 0; r < 4; ++r) {
    EXPECT_GE(model.Sigma(0, r), RtfModel::kMinSigma);
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_GE(model.Rho(0, e), RtfModel::kMinRho);
    EXPECT_LE(model.Rho(0, e), RtfModel::kMaxRho);
  }
}

TEST(CcdTrainerTest, MomentInitialisationSpeedsConvergence) {
  util::Rng rng(2);
  graph::RoadNetworkOptions net;
  net.num_roads = 30;
  const graph::Graph g = *graph::RoadNetwork(net, rng);
  const traffic::HistoryStore history = RandomHistory(30, 10, 1, 11);
  CcdOptions options;
  options.max_iterations = 400;
  options.learning_rate = 0.05;
  options.mu_gradient_tolerance = 0.05;
  const CcdTrainer trainer(g, history, options);

  RtfModel cold(g, 1);
  const auto cold_report = trainer.TrainSlot(cold, 0);
  ASSERT_TRUE(cold_report.ok());

  MomentEstimatorOptions moment_options;
  moment_options.slot_window = 0;
  RtfModel warm = *EstimateByMoments(g, history, moment_options);
  const auto warm_report = trainer.TrainSlot(warm, 0);
  ASSERT_TRUE(warm_report.ok());
  EXPECT_LE(warm_report->iterations, cold_report->iterations);
}

TEST(CcdTrainerTest, GradientHistoryRecordedAndShrinks) {
  const graph::Graph g = *graph::PathNetwork(6);
  const traffic::HistoryStore history = RandomHistory(6, 10, 1, 13);
  CcdOptions options;
  options.max_iterations = 60;
  options.learning_rate = 0.02;
  options.record_gradient_history = true;
  options.update_sigma = false;
  options.update_rho = false;
  const CcdTrainer trainer(g, history, options);
  RtfModel model(g, 1);
  const auto report = trainer.TrainSlot(model, 0);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->mu_gradient_history.size(),
            static_cast<size_t>(report->iterations));
  EXPECT_LT(report->mu_gradient_history.back(),
            report->mu_gradient_history.front());
}

TEST(CcdTrainerTest, InvalidInputsRejected) {
  const graph::Graph g = *graph::PathNetwork(3);
  const traffic::HistoryStore history = RandomHistory(3, 5, 1, 17);
  CcdOptions options;
  const CcdTrainer trainer(g, history, options);
  RtfModel model(g, 1);
  EXPECT_FALSE(trainer.TrainSlot(model, 5).ok());
  EXPECT_FALSE(trainer.TrainSlot(model, -1).ok());
  CcdOptions bad;
  bad.learning_rate = 0.0;
  const CcdTrainer bad_trainer(g, history, bad);
  EXPECT_FALSE(bad_trainer.TrainSlot(model, 0).ok());
}

}  // namespace
}  // namespace crowdrtse::rtf
