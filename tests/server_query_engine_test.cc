#include "server/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "traffic/time_slots.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::server {
namespace {

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() {
    util::Rng rng(3);
    graph::RoadNetworkOptions net;
    net.num_roads = 100;
    graph_ = *graph::RoadNetwork(net, rng);
    traffic::TrafficModelOptions traffic_options;
    traffic_options.num_days = 8;
    sim_ = std::make_unique<traffic::TrafficSimulator>(graph_,
                                                       traffic_options, 5);
    history_ = sim_->GenerateHistory();
    truth_ = sim_->GenerateEvaluationDay();
    system_ = std::make_unique<core::CrowdRtse>(
        *core::CrowdRtse::BuildOffline(graph_, history_, {}));
    WorkerRegistryOptions registry_options;
    registry_options.num_workers = 600;
    registry_ = std::make_unique<WorkerRegistry>(graph_, registry_options,
                                                 7);
    costs_ = crowd::CostModel::Constant(100, 2);
    crowd_sim_ =
        std::make_unique<crowd::CrowdSimulator>(crowd::CrowdSimOptions{},
                                                util::Rng(9));
  }

  QueryRequest MakeRequest(int slot = 100) {
    QueryRequest request;
    request.slot = slot;
    request.queried = {3, 17, 42, 77};
    return request;
  }

  graph::Graph graph_;
  std::unique_ptr<traffic::TrafficSimulator> sim_;
  traffic::HistoryStore history_;
  traffic::DayMatrix truth_;
  std::unique_ptr<core::CrowdRtse> system_;
  std::unique_ptr<WorkerRegistry> registry_;
  crowd::CostModel costs_;
  std::unique_ptr<crowd::CrowdSimulator> crowd_sim_;
};

TEST_F(QueryEngineTest, ServesQueryEndToEnd) {
  BudgetLedger ledger(1000, 12);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  const auto response = engine.Serve(MakeRequest(), truth_);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->queried_speeds.size(), 4u);
  EXPECT_EQ(response->granted_budget, 12);
  EXPECT_LE(response->paid, 12);
  EXPECT_GT(response->paid, 0);
  EXPECT_FALSE(response->probed_roads.empty());
  for (double v : response->queried_speeds) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 200.0);
  }
  EXPECT_EQ(engine.stats().queries_served, 1);
  EXPECT_EQ(ledger.total_spent(), response->paid);
}

TEST_F(QueryEngineTest, QueryIdsIncrement) {
  BudgetLedger ledger(1000, 10);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  const auto a = engine.Serve(MakeRequest(), truth_);
  const auto b = engine.Serve(MakeRequest(), truth_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->query_id, a->query_id + 1);
}

TEST_F(QueryEngineTest, RejectsWhenCampaignExhausted) {
  BudgetLedger ledger(10, 10);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  const auto first = engine.Serve(MakeRequest(), truth_);
  ASSERT_TRUE(first.ok());
  // Drain whatever remains.
  for (int i = 0; i < 10 && !ledger.exhausted(); ++i) {
    (void)engine.Serve(MakeRequest(), truth_);
  }
  const auto rejected = engine.Serve(MakeRequest(), truth_);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_GE(engine.stats().queries_rejected, 1);
}

TEST_F(QueryEngineTest, RejectsEmptyQuery) {
  BudgetLedger ledger(100, 10);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  QueryRequest empty;
  empty.slot = 100;
  EXPECT_FALSE(engine.Serve(empty, truth_).ok());
}

TEST_F(QueryEngineTest, ProbedRoadsComeFromWorkerCoverage) {
  BudgetLedger ledger(1000, 10);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  const auto response = engine.Serve(MakeRequest(), truth_);
  ASSERT_TRUE(response.ok());
  const auto covered = registry_->CoveredRoads();
  for (graph::RoadId r : response->probed_roads) {
    EXPECT_TRUE(std::binary_search(covered.begin(), covered.end(), r));
  }
}

TEST_F(QueryEngineTest, WorksAcrossMovingWorkers) {
  BudgetLedger ledger(-1, 10);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  for (int step = 0; step < 5; ++step) {
    const auto response = engine.Serve(MakeRequest(100 + step), truth_);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    registry_->AdvanceSlot();
  }
  EXPECT_EQ(engine.stats().queries_served, 5);
  const std::string report = engine.stats().Report();
  EXPECT_NE(report.find("served 5"), std::string::npos);
}

TEST_F(QueryEngineTest, FullStaffingOptionPreventsUnderfilledRoads) {
  BudgetLedger ledger(-1, 20);
  QueryEngine::Options options;
  options.require_full_staffing = true;
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_,
                     options);
  for (int i = 0; i < 5; ++i) {
    const auto response = engine.Serve(MakeRequest(100 + i), truth_);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->underfilled_roads.empty());
    registry_->AdvanceSlot();
  }
}

// Regression (budget leak): a query that dies after its crowdsourcing
// round really paid the workers; that spend must reach the ledger even
// though the query failed. Forcing the GSP phase to fail (invalid epsilon)
// reproduces the old leak, where the early return skipped Settle and the
// campaign silently overspent.
TEST_F(QueryEngineTest, FailedQueryStillSettlesItsCrowdSpend) {
  core::CrowdRtseConfig broken_config;
  broken_config.gsp.epsilon = -1.0;  // GSP rejects this after the crowd ran
  auto broken_system =
      core::CrowdRtse::BuildOffline(graph_, history_, broken_config);
  ASSERT_TRUE(broken_system.ok());
  BudgetLedger ledger(1000, 12);
  QueryEngine engine(*broken_system, *registry_, ledger, costs_,
                     *crowd_sim_);
  const auto response = engine.Serve(MakeRequest(), truth_);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(engine.stats().queries_failed, 1);
  EXPECT_EQ(engine.stats().queries_served, 0);
  // The crowd round paid real units and they are all on the books.
  EXPECT_GT(ledger.total_spent(), 0);
  EXPECT_EQ(engine.stats().total_paid, ledger.total_spent());
  ASSERT_EQ(ledger.entries().size(), 1u);
  EXPECT_EQ(ledger.entries()[0].spent, ledger.total_spent());
  EXPECT_EQ(ledger.reserved_outstanding(), 0);
}

// Regression (missing slot validation): out-of-range slots used to flow
// into the RTF parameter tables unchecked.
TEST_F(QueryEngineTest, RejectsOutOfRangeSlot) {
  BudgetLedger ledger(1000, 12);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  for (int slot : {-1, traffic::kSlotsPerDay, traffic::kSlotsPerDay + 7}) {
    const auto response = engine.Serve(MakeRequest(slot), truth_);
    ASSERT_FALSE(response.ok()) << "slot " << slot;
    EXPECT_EQ(response.status().code(), util::StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(engine.stats().queries_rejected, 3);
  // Rejected before any grant: no spend, no reservation, no entries.
  EXPECT_EQ(ledger.total_spent(), 0);
  EXPECT_EQ(ledger.reserved_outstanding(), 0);
  EXPECT_TRUE(ledger.entries().empty());
}

// Regression (budget leak, validation order): a bad road id used to be
// detected only after the crowd round had paid — and the early return
// skipped settlement. Now it is rejected before any money moves.
TEST_F(QueryEngineTest, RejectsBadRoadBeforePayingWorkers) {
  BudgetLedger ledger(1000, 12);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  QueryRequest request = MakeRequest();
  request.queried.push_back(graph_.num_roads() + 5);
  const auto response = engine.Serve(request, truth_);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(ledger.total_spent(), 0);
  EXPECT_TRUE(ledger.entries().empty());
  EXPECT_EQ(engine.stats().queries_rejected, 1);
  EXPECT_EQ(engine.stats().queries_failed, 0);
}

TEST_F(QueryEngineTest, DeduplicatesQueriedRoads) {
  BudgetLedger ledger(1000, 12);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  QueryRequest request = MakeRequest();
  request.queried = {17, 3, 17, 42, 3};
  const auto response = engine.Serve(request, truth_);
  ASSERT_TRUE(response.ok());
  // The answer stays aligned with the request as submitted...
  ASSERT_EQ(response->queried_speeds.size(), 5u);
  // ...and duplicates agree with each other.
  EXPECT_EQ(response->queried_speeds[0], response->queried_speeds[2]);
  EXPECT_EQ(response->queried_speeds[1], response->queried_speeds[4]);
}

// Regression (invisible failures): every outcome increments exactly one of
// served / rejected / failed.
TEST_F(QueryEngineTest, EveryOutcomeCountedExactlyOnce) {
  BudgetLedger ledger(1000, 12);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  ASSERT_TRUE(engine.Serve(MakeRequest(), truth_).ok());     // served
  QueryRequest empty;
  empty.slot = 100;
  ASSERT_FALSE(engine.Serve(empty, truth_).ok());            // rejected
  ASSERT_FALSE(engine.Serve(MakeRequest(-3), truth_).ok());  // rejected
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries_served, 1);
  EXPECT_EQ(stats.queries_rejected, 2);
  EXPECT_EQ(stats.queries_failed, 0);
  EXPECT_EQ(stats.queries_served + stats.queries_rejected +
                stats.queries_failed,
            3);
  EXPECT_EQ(stats.serve_latency.count, 1);
}

// --- Fault-tolerant dispatch path (DESIGN.md §5c) ---------------------

TEST_F(QueryEngineTest, DispatchPathFaultFreeServesWithinLatencyBudget) {
  BudgetLedger ledger(1000, 12);
  util::SimClock clock;
  QueryEngine::Options options;
  options.fault_tolerant_dispatch = true;
  options.clock = &clock;
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_,
                     options);
  const QueryRequest request = MakeRequest();
  const auto response = engine.Serve(request, truth_);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->degraded_roads.empty());
  EXPECT_FALSE(response->probed_roads.empty());
  EXPECT_GT(response->paid, 0);
  EXPECT_EQ(ledger.total_spent(), response->paid);
  EXPECT_GT(response->dispatch_span_ms, 0.0);
  EXPECT_LE(response->dispatch_span_ms, options.dispatch.MaxRoundSpanMs());
  // Confidence annotations ride along: one variance per queried road.
  ASSERT_EQ(response->queried_variances.size(), request.queried.size());
  for (double v : response->queried_variances) EXPECT_GE(v, 0.0);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries_served, 1);
  EXPECT_EQ(stats.roads_degraded, 0);
  EXPECT_EQ(stats.crowd_retries, 0);
  EXPECT_EQ(stats.crowd_deadline_misses, 0);
}

// Satellite regression: with every worker on one probed road faulted out,
// the query still succeeds inside its budget; the road falls down the
// degradation ladder to its RTF periodic mean, lands in degraded_roads
// (and nowhere else), and `paid` excludes the unanswered tasks.
TEST_F(QueryEngineTest, SingleRoadWorkerOutageDegradesJustThatRoad) {
  BudgetLedger ledger(-1, 12);
  util::SimClock clock;
  QueryEngine::Options base;
  base.fault_tolerant_dispatch = true;
  base.clock = &clock;
  QueryEngine healthy(*system_, *registry_, ledger, costs_, *crowd_sim_,
                      base);
  const QueryRequest request = MakeRequest();
  const auto first = healthy.Serve(request, truth_);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->degraded_roads.empty());
  ASSERT_FALSE(first->probed_roads.empty());
  // Target a probed road, preferring one the client actually queried.
  graph::RoadId target = first->probed_roads.front();
  for (graph::RoadId r : first->probed_roads) {
    if (std::find(request.queried.begin(), request.queried.end(), r) !=
        request.queried.end()) {
      target = r;
      break;
    }
  }
  // Knock out every worker on the target road — including the spares the
  // controller would otherwise reassign to.
  QueryEngine::Options faulted = base;
  crowd::FaultSpec drop_all;
  drop_all.drop_rate = 1.0;
  for (const crowd::Worker* w : registry_->WorkersOn(target)) {
    faulted.fault_plan.SetWorkerSpec(w->id, drop_all);
  }
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_,
                     faulted);
  const auto second = engine.Serve(request, truth_);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(second->degraded_roads.size(), 1u);
  EXPECT_EQ(second->degraded_roads[0], target);
  // Regression: a degraded road must not double-count as underfilled or
  // still claim to be probed.
  EXPECT_EQ(std::count(second->underfilled_roads.begin(),
                       second->underfilled_roads.end(), target),
            0);
  EXPECT_EQ(std::count(second->probed_roads.begin(),
                       second->probed_roads.end(), target),
            0);
  // Unanswered tasks are not paid.
  EXPECT_LT(second->paid, first->paid);
  EXPECT_EQ(ledger.total_spent(), first->paid + second->paid);
  EXPECT_LE(second->dispatch_span_ms, base.dispatch.MaxRoundSpanMs());
  // If the degraded road was queried, its answer is exactly the RTF
  // periodic mean mu_i^t with a widened (positive) variance.
  const auto it =
      std::find(request.queried.begin(), request.queried.end(), target);
  if (it != request.queried.end()) {
    const size_t idx =
        static_cast<size_t>(it - request.queried.begin());
    const std::vector<double> mu =
        system_->PeriodicMeans(request.slot, {target});
    EXPECT_DOUBLE_EQ(second->queried_speeds[idx], mu[0]);
    EXPECT_GT(second->queried_variances[idx], 0.0);
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.roads_degraded, 1);
  EXPECT_EQ(stats.degraded_deadline, 1);
  EXPECT_GT(stats.crowd_deadline_misses, 0);
  EXPECT_NE(stats.Report().find("degraded: 1 roads"), std::string::npos);
}

TEST_F(QueryEngineTest, TotalCrowdOutageFallsBackToPeriodicMeans) {
  BudgetLedger ledger(1000, 12);
  util::SimClock clock;
  QueryEngine::Options options;
  options.fault_tolerant_dispatch = true;
  options.clock = &clock;
  crowd::FaultSpec blackout;
  blackout.drop_rate = 1.0;
  options.fault_plan = crowd::FaultPlan(blackout, /*seed=*/17);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_,
                     options);
  const QueryRequest request = MakeRequest();
  const auto response = engine.Serve(request, truth_);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  // Every probe failed: nothing was answered, nobody was paid...
  EXPECT_TRUE(response->probed_roads.empty());
  EXPECT_FALSE(response->degraded_roads.empty());
  EXPECT_EQ(response->paid, 0);
  EXPECT_EQ(ledger.total_spent(), 0);
  // ...yet the query completed within its latency budget and every
  // queried road reports the RTF periodic mean.
  EXPECT_LE(response->dispatch_span_ms, options.dispatch.MaxRoundSpanMs());
  const std::vector<double> mu =
      system_->PeriodicMeans(request.slot, request.queried);
  ASSERT_EQ(response->queried_speeds.size(), mu.size());
  for (size_t i = 0; i < mu.size(); ++i) {
    EXPECT_DOUBLE_EQ(response->queried_speeds[i], mu[i]);
    EXPECT_GT(response->queried_variances[i], 0.0);
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries_served, 1);
  EXPECT_EQ(static_cast<size_t>(stats.roads_degraded),
            response->degraded_roads.size());
  EXPECT_EQ(stats.degraded_deadline + stats.degraded_outlier +
                stats.degraded_unstaffed,
            stats.roads_degraded);
}

// Satellite regression: QueryResponse::underfilled_roads had no test
// coverage anywhere. A sparse crowd against a quota of 3 must surface the
// shortfall, on both the legacy and the fault-tolerant dispatch paths —
// and never double-count an underfilled road as degraded.
TEST_F(QueryEngineTest, UnderfilledRoadsSurfaceOnBothServePaths) {
  WorkerRegistryOptions sparse_options;
  sparse_options.num_workers = 60;
  WorkerRegistry sparse(graph_, sparse_options, 11);
  const crowd::CostModel quota3 = crowd::CostModel::Constant(100, 3);
  BudgetLedger ledger(-1, 30);
  QueryEngine legacy(*system_, sparse, ledger, quota3, *crowd_sim_);
  const auto legacy_response = legacy.Serve(MakeRequest(), truth_);
  ASSERT_TRUE(legacy_response.ok()) << legacy_response.status().ToString();
  ASSERT_FALSE(legacy_response->underfilled_roads.empty());
  for (graph::RoadId r : legacy_response->underfilled_roads) {
    EXPECT_EQ(std::count(legacy_response->probed_roads.begin(),
                         legacy_response->probed_roads.end(), r),
              1)
        << "underfilled road " << r << " must still be probed";
  }
  // Underfilled probes pay fewer units than quota * probes.
  EXPECT_LT(legacy_response->paid,
            3 * static_cast<int>(legacy_response->probed_roads.size()));

  util::SimClock clock;
  QueryEngine::Options options;
  options.fault_tolerant_dispatch = true;
  options.clock = &clock;
  QueryEngine dispatch(*system_, sparse, ledger, quota3, *crowd_sim_,
                       options);
  const auto response = dispatch.Serve(MakeRequest(), truth_);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_FALSE(response->underfilled_roads.empty());
  for (graph::RoadId r : response->underfilled_roads) {
    EXPECT_EQ(std::count(response->probed_roads.begin(),
                         response->probed_roads.end(), r),
              1);
    EXPECT_EQ(std::count(response->degraded_roads.begin(),
                         response->degraded_roads.end(), r),
              0)
        << "road " << r << " double-counted as underfilled and degraded";
  }
}

// --- Observability: tracing, metrics exposition, structured reasons ----

/// Spans of the most recent collected trace, plus a name -> record index
/// for the single-occurrence ones.
std::vector<util::trace::SpanRecord> LastTraceSpans(
    const QueryEngine& engine) {
  const auto recent = engine.traces().Recent();
  if (recent.empty()) return {};
  return recent.back()->spans();
}

const util::trace::SpanRecord* FindSpan(
    const std::vector<util::trace::SpanRecord>& spans,
    const std::string& name) {
  for (const util::trace::SpanRecord& span : spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

std::string AnnotationValue(const util::trace::SpanRecord& span,
                            const std::string& key) {
  for (const util::trace::Annotation& a : span.annotations) {
    if (a.key == key) return a.value;
  }
  return "";
}

TEST_F(QueryEngineTest, SampledQueryProducesFullSpanTree) {
  BudgetLedger ledger(1000, 12);
  QueryEngine::Options options;
  options.trace_sample_rate = 1.0;
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_,
                     options);
  const auto response = engine.Serve(MakeRequest(), truth_);
  ASSERT_TRUE(response.ok());

  // The compact summary rides on the response.
  ASSERT_FALSE(response->trace_summary.empty());
  EXPECT_EQ(response->trace_summary.query_id, response->query_id);
  EXPECT_EQ(response->trace_summary.lines[0].name, "serve");
  EXPECT_NE(response->trace_summary.ToString().find("serve"),
            std::string::npos);

  // The full trace landed in the collector with the whole phase tree.
  EXPECT_EQ(engine.traces().collected(), 1);
  const auto spans = LastTraceSpans(engine);
  const util::trace::SpanRecord* serve = FindSpan(spans, "serve");
  ASSERT_NE(serve, nullptr);
  EXPECT_EQ(serve->parent, 0);
  EXPECT_EQ(AnnotationValue(*serve, "outcome"), "served");
  for (const char* name :
       {"ocs", "ocs.correlations", "ocs.select", "crowd", "gsp",
        "gsp.acquire", "gsp.propagate", "settle"}) {
    const util::trace::SpanRecord* span = FindSpan(spans, name);
    EXPECT_NE(span, nullptr) << "missing span " << name;
    if (span != nullptr) {
      EXPECT_NE(span->parent, 0) << name;
    }
  }
  // Every parent id resolves within the trace.
  std::set<int64_t> ids;
  for (const auto& span : spans) ids.insert(span.id);
  for (const auto& span : spans) {
    if (span.parent != 0) {
      EXPECT_EQ(ids.count(span.parent), 1u)
          << "span " << span.name << " has dangling parent";
    }
  }
  // The Chrome export names this query.
  const std::string json = engine.traces().ChromeTraceJson();
  EXPECT_NE(
      json.find("\"query_id\":" + std::to_string(response->query_id)),
      std::string::npos);
}

TEST_F(QueryEngineTest, ZeroSampleRateLeavesNoTraceAndEmptySummary) {
  BudgetLedger ledger(1000, 12);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  const auto response = engine.Serve(MakeRequest(), truth_);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->trace_summary.empty());
  EXPECT_EQ(engine.traces().collected(), 0);
  EXPECT_TRUE(engine.traces().Recent().empty());
}

// Satellite bugfix assertion: the per-road degrade verdicts on the
// response are exactly the verdicts the dispatch trace recorded — the two
// can never drift apart again.
TEST_F(QueryEngineTest, TraceAndResponseAgreeOnDegradeReasons) {
  BudgetLedger ledger(1000, 12);
  util::SimClock clock;
  QueryEngine::Options options;
  options.fault_tolerant_dispatch = true;
  options.clock = &clock;
  options.trace_sample_rate = 1.0;
  crowd::FaultSpec blackout;
  blackout.drop_rate = 1.0;
  options.fault_plan = crowd::FaultPlan(blackout, /*seed=*/17);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_,
                     options);
  const auto response = engine.Serve(MakeRequest(), truth_);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_FALSE(response->degraded_roads.empty());

  // Reasons align one-to-one with the degraded roads.
  ASSERT_EQ(response->degraded_reasons.size(),
            response->degraded_roads.size());
  for (crowd::DegradeReason reason : response->degraded_reasons) {
    EXPECT_EQ(reason, crowd::DegradeReason::kDeadline);
  }

  // The dispatch span carries the same verdicts, in the same order.
  const auto spans = LastTraceSpans(engine);
  const util::trace::SpanRecord* dispatch =
      FindSpan(spans, "crowd.dispatch");
  ASSERT_NE(dispatch, nullptr);
  std::string expected;
  for (size_t i = 0; i < response->degraded_roads.size(); ++i) {
    if (i > 0) expected += ",";
    expected += std::to_string(response->degraded_roads[i]);
    expected += ":";
    expected +=
        crowd::DegradeReasonName(response->degraded_reasons[i]);
  }
  EXPECT_EQ(AnnotationValue(*dispatch, "degraded"), expected);

  // Per-attempt child spans hang off the dispatch span, each with a
  // terminal outcome annotation.
  int attempts = 0;
  for (const auto& span : spans) {
    if (span.name != "crowd.attempt") continue;
    ++attempts;
    EXPECT_EQ(span.parent, dispatch->id);
    EXPECT_FALSE(AnnotationValue(span, "outcome").empty());
    EXPECT_GE(span.start_us, dispatch->start_us);
    EXPECT_LE(span.end_us, dispatch->end_us);
  }
  EXPECT_GT(attempts, 0);
}

TEST_F(QueryEngineTest, MetricsExpositionMatchesStats) {
  BudgetLedger ledger(1000, 12);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine.Serve(MakeRequest(100 + i), truth_).ok());
  }
  QueryRequest empty;
  empty.slot = 100;
  ASSERT_FALSE(engine.Serve(empty, truth_).ok());

  const EngineStats stats = engine.stats();
  ASSERT_EQ(stats.queries_served, 3);
  ASSERT_EQ(stats.queries_rejected, 1);

  const std::string prom = engine.metrics().RenderPrometheus();
  EXPECT_NE(prom.find("crowdrtse_queries_served_total 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("crowdrtse_queries_rejected_total 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("crowdrtse_paid_units_total " +
                      std::to_string(stats.total_paid) + "\n"),
            std::string::npos);
  EXPECT_NE(prom.find("crowdrtse_serve_latency_ms_count 3\n"),
            std::string::npos);
  // Callback gauges surface live component state.
  EXPECT_NE(prom.find("crowdrtse_ledger_remaining_units " +
                      std::to_string(ledger.remaining()) + "\n"),
            std::string::npos);
  EXPECT_NE(prom.find("crowdrtse_ledger_reserved_outstanding 0\n"),
            std::string::npos);
  EXPECT_NE(prom.find("crowdrtse_gsp_leases_in_flight 0\n"),
            std::string::npos);
  EXPECT_NE(prom.find("crowdrtse_gamma_cache_resident_bytes"),
            std::string::npos);

  // The JSON report carries the same counters under the same names.
  const std::string json = stats.ReportJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"crowdrtse_queries_served_total\":3"),
            std::string::npos);
  EXPECT_NE(json.find("\"crowdrtse_queries_rejected_total\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"crowdrtse_serve_latency_ms\":{\"count\":3"),
            std::string::npos);
  // stats() remains a thin view over the registry: both agree.
  EXPECT_EQ(stats.serve_latency.count, 3);
  EXPECT_EQ(stats.total_paid, ledger.total_spent());
}

// --- Serve-path correctness fixes (DESIGN.md §6 satellites) ------------

// Satellite bugfix: slot bounds now come from world.num_slots() and the
// rejection names the actual bound, instead of a hard-coded constant that
// could drift from the served world.
TEST_F(QueryEngineTest, SlotRejectionReportsTheWorldsActualBound) {
  BudgetLedger ledger(1000, 12);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  const auto response = engine.Serve(MakeRequest(100000), truth_);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(response.status().message().find(
                "not in [0, " + std::to_string(truth_.num_slots()) + ")"),
            std::string::npos)
      << response.status().ToString();
}

// Admission control's first shed rung: a request-level budget cap below
// the ledger's grant limits the spend (fewer probed roads), while the
// unspent remainder of the normal grant flows back at settle time.
TEST_F(QueryEngineTest, BudgetCapLimitsSpendBelowTheGrant) {
  BudgetLedger ledger(-1, 12);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  const auto full = engine.Serve(MakeRequest(), truth_);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->paid, 4);  // otherwise the cap below would be idle

  QueryRequest capped = MakeRequest();
  capped.budget_cap = 4;
  const auto response = engine.Serve(capped, truth_);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_LE(response->paid, 4);
  EXPECT_GT(response->paid, 0);
  EXPECT_LT(response->probed_roads.size(), full->probed_roads.size());
  // The ledger granted normally and took back the unspent remainder.
  EXPECT_EQ(response->granted_budget, 12);
  EXPECT_EQ(ledger.total_spent(), full->paid + response->paid);
  EXPECT_EQ(ledger.reserved_outstanding(), 0);
}

// The ladder's periodic-mean rung: no budget, no workers, answers are
// exactly the RTF periodic means with load-shed provenance.
TEST_F(QueryEngineTest, PeriodicFallbackServesMeansWithoutSpending) {
  BudgetLedger ledger(1000, 12);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  const QueryRequest request = MakeRequest();
  const auto response = engine.ServePeriodicFallback(request, truth_);
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  const std::vector<double> mu =
      system_->PeriodicMeans(request.slot, request.queried);
  ASSERT_EQ(response->queried_speeds.size(), mu.size());
  for (size_t i = 0; i < mu.size(); ++i) {
    EXPECT_DOUBLE_EQ(response->queried_speeds[i], mu[i]);
    EXPECT_GT(response->queried_variances[i], 0.0);
  }
  // Provenance: every queried road degraded with reason kLoadShed.
  EXPECT_TRUE(response->probed_roads.empty());
  ASSERT_EQ(response->degraded_roads.size(), request.queried.size());
  ASSERT_EQ(response->degraded_reasons.size(), request.queried.size());
  for (crowd::DegradeReason reason : response->degraded_reasons) {
    EXPECT_EQ(reason, crowd::DegradeReason::kLoadShed);
  }
  // No money moved, and the books say so.
  EXPECT_EQ(response->granted_budget, 0);
  EXPECT_EQ(response->paid, 0);
  EXPECT_EQ(ledger.total_spent(), 0);
  EXPECT_TRUE(ledger.entries().empty());

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries_served, 1);
  EXPECT_EQ(stats.queries_shed, 1);
  EXPECT_EQ(stats.degraded_load_shed,
            static_cast<int64_t>(request.queried.size()));
  // Validation matches Serve: bad requests are rejected, not answered.
  EXPECT_FALSE(engine.ServePeriodicFallback(MakeRequest(-1), truth_).ok());
}

TEST_F(QueryEngineTest, DrainRefusesNewQueriesExplicitly) {
  BudgetLedger ledger(1000, 12);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  ASSERT_TRUE(engine.Serve(MakeRequest(), truth_).ok());
  engine.Drain();
  for (int i = 0; i < 2; ++i) {  // idempotent
    const auto refused = engine.Serve(MakeRequest(), truth_);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(),
              util::StatusCode::kFailedPrecondition);
    EXPECT_NE(refused.status().message().find("draining"),
              std::string::npos);
  }
  EXPECT_FALSE(engine.ServePeriodicFallback(MakeRequest(), truth_).ok());
  EXPECT_EQ(engine.stats().queries_served, 1);
}

TEST_F(QueryEngineTest, EstimatesTrackTruthReasonably) {
  BudgetLedger ledger(-1, 30);
  QueryEngine engine(*system_, *registry_, ledger, costs_, *crowd_sim_);
  const QueryRequest request = MakeRequest();
  const auto response = engine.Serve(request, truth_);
  ASSERT_TRUE(response.ok());
  for (size_t i = 0; i < request.queried.size(); ++i) {
    const double actual = truth_.At(request.slot, request.queried[i]);
    EXPECT_NEAR(response->queried_speeds[i], actual, 0.6 * actual)
        << "road " << request.queried[i];
  }
}

}  // namespace
}  // namespace crowdrtse::server
