#include "util/string_util.h"

#include <gtest/gtest.h>

namespace crowdrtse::util {
namespace {

TEST(SplitTest, Basic) {
  const auto pieces = Split("a:b:c", ':');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "b");
}

TEST(SplitTest, KeepsEmptyPieces) {
  const auto pieces = Split("::", ':');
  EXPECT_EQ(pieces.size(), 3u);
}

TEST(TrimTest, StripsWhitespace) {
  EXPECT_EQ(Trim("  hello\t\n"), "hello");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(ParseDoubleTest, Valid) {
  auto r = ParseDouble(" 3.25 ");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 3.25);
  r = ParseDouble("-1e3");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, -1000.0);
}

TEST(ParseDoubleTest, Invalid) {
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(ParseIntTest, Valid) {
  auto r = ParseInt("42");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  r = ParseInt(" -7 ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, -7);
}

TEST(ParseIntTest, Invalid) {
  EXPECT_FALSE(ParseInt("4.5").ok());
  EXPECT_FALSE(ParseInt("x").ok());
  EXPECT_FALSE(ParseInt("").ok());
}

TEST(ParseIntTest, OutOfRange) {
  EXPECT_FALSE(ParseInt("99999999999999999").ok());
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

}  // namespace
}  // namespace crowdrtse::util
