#include "server/sharded_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "obs/flight_recorder.h"
#include "partition/partitioner.h"
#include "rtf/correlation_table.h"
#include "server/query_engine.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::server {
namespace {

// The locality knobs of the exactness contract: correlation hop radius C,
// GSP hop limit H, halo >= max(2C, C + H + 1).
constexpr int kHopC = 2;
constexpr int kHopH = 2;
constexpr int kHalo = 5;

/// Shared world: the paper's 607-road network, a trained model with both
/// locality knobs on, a noiseless worker pool (bias 1, noise 0) so crowd
/// answers equal ground truth regardless of per-shard RNG streams — the
/// precondition for sharded-vs-unsharded bit-identity.
class ShardedEngineTest : public ::testing::Test {
 protected:
  ShardedEngineTest() {
    util::Rng rng(3);
    graph::RoadNetworkOptions net;
    net.num_roads = 607;
    graph_ = *graph::RoadNetwork(net, rng, &positions_);
    traffic::TrafficModelOptions traffic_options;
    traffic_options.num_days = 8;
    traffic::TrafficSimulator sim(graph_, traffic_options, 5);
    history_ = sim.GenerateHistory();
    truth_ = sim.GenerateEvaluationDay();

    config_.correlation_hop_radius = kHopC;
    config_.gsp.hop_limit = kHopH;
    config_.gsp.num_threads = 1;
    config_.prune_zero_gain_candidates = true;
    config_.refine_with_ccd = false;

    costs_ = crowd::CostModel::Constant(graph_.num_roads(), 2);

    // Deterministic noiseless crowd: 4 workers per road, everywhere.
    crowd::WorkerId next_id = 0;
    for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
      for (int k = 0; k < 4; ++k) {
        crowd::Worker w;
        w.id = next_id++;
        w.road = r;
        w.bias = 1.0;
        w.noise_kmh = 0.0;
        workers_.push_back(w);
      }
    }

    crowd_options_.min_bias = 1.0;
    crowd_options_.max_bias = 1.0;
    crowd_options_.min_noise_kmh = 0.0;
    crowd_options_.max_noise_kmh = 0.0;
    crowd_options_.outlier_rate = 0.0;
  }

  partition::Partition MakePartition(int num_shards, int halo = kHalo) {
    partition::PartitionerOptions options;
    options.num_shards = num_shards;
    options.halo_radius = halo;
    options.seed = 17;
    return *partition::PartitionByGeography(graph_, positions_, options);
  }

  std::unique_ptr<ShardedEngine> MakeSharded(int num_shards,
                                             BudgetLedger& ledger) {
    ShardedEngineOptions options;
    options.crowd = crowd_options_;
    auto engine =
        ShardedEngine::Create(graph_, MakePartition(num_shards), history_,
                              config_, costs_, workers_, ledger, truth_,
                              options);
    EXPECT_TRUE(engine.ok()) << engine.status().message();
    return std::move(*engine);
  }

  /// The unsharded reference engine over the same world and knobs.
  struct Reference {
    std::unique_ptr<core::CrowdRtse> system;
    std::unique_ptr<WorkerRegistry> registry;
    std::unique_ptr<crowd::CrowdSimulator> crowd_sim;
    std::unique_ptr<QueryEngine> engine;
  };
  Reference MakeReference(BudgetLedger& ledger) {
    Reference ref;
    ref.system = std::make_unique<core::CrowdRtse>(
        *core::CrowdRtse::BuildOffline(graph_, history_, config_));
    ref.registry = std::make_unique<WorkerRegistry>(
        graph_, workers_, WorkerRegistryOptions{}, 7);
    ref.crowd_sim = std::make_unique<crowd::CrowdSimulator>(crowd_options_,
                                                            util::Rng(9));
    ref.engine = std::make_unique<QueryEngine>(
        *ref.system, *ref.registry, ledger, costs_, *ref.crowd_sim,
        QueryEngine::Options{});
    return ref;
  }

  static void ExpectBitIdentical(const QueryResponse& got,
                                 const QueryResponse& want) {
    // Everything deterministic must match bitwise; wall-clock latencies
    // and trace summaries are exempt by construction.
    ASSERT_EQ(got.queried_speeds.size(), want.queried_speeds.size());
    for (size_t i = 0; i < want.queried_speeds.size(); ++i) {
      EXPECT_EQ(got.queried_speeds[i], want.queried_speeds[i])
          << "speed " << i;
    }
    EXPECT_EQ(got.probed_roads, want.probed_roads);
    EXPECT_EQ(got.underfilled_roads, want.underfilled_roads);
    EXPECT_EQ(got.degraded_roads, want.degraded_roads);
    EXPECT_EQ(got.queried_variances, want.queried_variances);
    EXPECT_EQ(got.granted_budget, want.granted_budget);
    EXPECT_EQ(got.paid, want.paid);
    EXPECT_EQ(got.gsp_sweeps, want.gsp_sweeps);
  }

  graph::Graph graph_;
  std::vector<std::pair<double, double>> positions_;
  traffic::HistoryStore history_;
  traffic::DayMatrix truth_;
  core::CrowdRtseConfig config_;
  crowd::CostModel costs_;
  std::vector<crowd::Worker> workers_;
  crowd::CrowdSimOptions crowd_options_;
};

TEST_F(ShardedEngineTest, SingleShardBitIdenticalToUnsharded) {
  BudgetLedger ledger_ref(100000, 12);
  BudgetLedger ledger_sharded(100000, 12);
  Reference ref = MakeReference(ledger_ref);
  auto sharded = MakeSharded(1, ledger_sharded);

  for (int q = 0; q < 6; ++q) {
    QueryRequest request;
    request.slot = 100 + q;
    request.queried = {static_cast<graph::RoadId>(3 + 90 * q),
                       static_cast<graph::RoadId>(17 + 90 * q),
                       static_cast<graph::RoadId>(42 + 90 * q)};
    const auto want = ref.engine->Serve(request, truth_);
    const auto got = sharded->Serve(request, truth_);
    ASSERT_TRUE(want.ok()) << want.status().message();
    ASSERT_TRUE(got.ok()) << got.status().message();
    ExpectBitIdentical(*got, *want);
  }
  EXPECT_EQ(ledger_sharded.total_spent(), ledger_ref.total_spent());
  EXPECT_EQ(ledger_sharded.reserved_outstanding(), 0);
}

// The golden acceptance test: K=4 sharded serving reproduces unsharded
// answers bitwise on single-owner queries, the common case the partitioner
// optimises for.
TEST_F(ShardedEngineTest, FourShardsBitIdenticalOnSingleOwnerQueries) {
  BudgetLedger ledger_ref(100000, 12);
  BudgetLedger ledger_sharded(100000, 12);
  Reference ref = MakeReference(ledger_ref);
  auto sharded = MakeSharded(4, ledger_sharded);

  const partition::Partition& partition = sharded->partition();
  int compared = 0;
  for (int s = 0; s < 4; ++s) {
    const auto& owned = partition.shards[static_cast<size_t>(s)].owned;
    ASSERT_GE(owned.size(), 12u);
    // A handful of queries per shard, roads spread across its territory.
    for (int q = 0; q < 3; ++q) {
      QueryRequest request;
      request.slot = 80 + 10 * s + q;
      request.queried = {owned[static_cast<size_t>(q)],
                         owned[owned.size() / 2],
                         owned[owned.size() - 1 - static_cast<size_t>(q)]};
      const auto want = ref.engine->Serve(request, truth_);
      const auto got = sharded->Serve(request, truth_);
      ASSERT_TRUE(want.ok()) << want.status().message();
      ASSERT_TRUE(got.ok()) << got.status().message();
      ExpectBitIdentical(*got, *want);
      ++compared;
    }
  }
  EXPECT_EQ(compared, 12);
  EXPECT_EQ(ledger_sharded.total_spent(), ledger_ref.total_spent());
  EXPECT_EQ(ledger_sharded.reserved_outstanding(), 0);
  EXPECT_EQ(sharded->stats().queries_served, 12);
}

TEST_F(ShardedEngineTest, CrossShardQueryMergesSanely) {
  BudgetLedger ledger(100000, 20);
  auto sharded = MakeSharded(4, ledger);
  const partition::Partition& partition = sharded->partition();

  QueryRequest request;
  request.slot = 100;
  // Two owned roads from every shard: maximally cross-shard.
  for (int s = 0; s < 4; ++s) {
    const auto& owned = partition.shards[static_cast<size_t>(s)].owned;
    request.queried.push_back(owned.front());
    request.queried.push_back(owned[owned.size() / 2]);
  }
  const auto response = sharded->Serve(request, truth_);
  ASSERT_TRUE(response.ok()) << response.status().message();
  ASSERT_EQ(response->queried_speeds.size(), request.queried.size());
  for (size_t i = 0; i < request.queried.size(); ++i) {
    EXPECT_GT(response->queried_speeds[i], 0.0) << "road "
                                                << request.queried[i];
    EXPECT_LT(response->queried_speeds[i], 200.0);
    // Each speed matches what the owner shard believes: noiseless workers
    // mean probed roads carry exact truth.
  }
  EXPECT_GT(response->paid, 0);
  EXPECT_LE(response->paid, response->granted_budget);
  // Provenance is sorted and deduplicated after the merge.
  EXPECT_TRUE(std::is_sorted(response->probed_roads.begin(),
                             response->probed_roads.end()));
  EXPECT_EQ(std::adjacent_find(response->probed_roads.begin(),
                               response->probed_roads.end()),
            response->probed_roads.end());
  EXPECT_EQ(ledger.reserved_outstanding(), 0);
  EXPECT_EQ(ledger.total_spent(), response->paid);

  const EngineStats stats = sharded->stats();
  EXPECT_EQ(stats.queries_served, 1);
  const std::string prom = sharded->metrics().RenderPrometheus();
  EXPECT_NE(prom.find("crowdrtse_queries_cross_shard_total 1"),
            std::string::npos);
}

TEST_F(ShardedEngineTest, ZeroCapGroupsFallBackInsteadOfOverspending) {
  BudgetLedger ledger(100000, 20);
  auto sharded = MakeSharded(4, ledger);
  const partition::Partition& partition = sharded->partition();

  QueryRequest request;
  request.slot = 100;
  for (int s = 0; s < 4; ++s) {
    request.queried.push_back(
        partition.shards[static_cast<size_t>(s)].owned.front());
  }
  // One unit across four owner groups: three proportional caps round to
  // zero and must answer from the periodic fallback, not overspend.
  request.budget_cap = 1;
  const auto response = sharded->Serve(request, truth_);
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_LE(response->paid, 1);
  EXPECT_FALSE(response->degraded_roads.empty());
  EXPECT_EQ(ledger.total_spent(), response->paid);
  EXPECT_EQ(ledger.reserved_outstanding(), 0);
}

TEST_F(ShardedEngineTest, StatsCarryPerShardBreakdown) {
  BudgetLedger ledger(100000, 12);
  auto sharded = MakeSharded(4, ledger);
  const partition::Partition& partition = sharded->partition();

  QueryRequest request;
  request.slot = 100;
  request.queried = {partition.shards[0].owned.front(),
                     partition.shards[0].owned.back()};
  ASSERT_TRUE(sharded->Serve(request, truth_).ok());

  const EngineStats stats = sharded->stats();
  ASSERT_EQ(stats.shards.size(), 4u);
  EXPECT_EQ(stats.shards[0].shard, 0);
  EXPECT_EQ(stats.shards[0].queries_served, 1);
  EXPECT_EQ(stats.shards[1].queries_served, 0);
  EXPECT_GT(stats.shards[0].gamma_cache_bytes, 0);

  const std::string report = stats.Report();
  EXPECT_NE(report.find("shard[0]"), std::string::npos) << report;
  EXPECT_NE(report.find("shard[3]"), std::string::npos);
  const std::string json = stats.ReportJson();
  EXPECT_NE(json.find("\"crowdrtse_shards\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"shard\":0"), std::string::npos);

  // An unsharded engine's JSON stays free of the per-shard array.
  BudgetLedger ref_ledger(1000, 12);
  Reference ref = MakeReference(ref_ledger);
  EXPECT_EQ(ref.engine->stats().ReportJson().find("crowdrtse_shards"),
            std::string::npos);
}

TEST_F(ShardedEngineTest, MetricsExposeLabeledShardSeries) {
  BudgetLedger ledger(100000, 12);
  auto sharded = MakeSharded(2, ledger);
  const std::string prom = sharded->metrics().RenderPrometheus();
  EXPECT_NE(prom.find("crowdrtse_shard_queries_served{shard=\"0\"}"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("crowdrtse_shard_queries_served{shard=\"1\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("crowdrtse_shard_owned_roads{shard=\"0\"}"),
            std::string::npos);
  // One TYPE header per family, not one per labeled series.
  size_t count = 0;
  const std::string header = "# TYPE crowdrtse_shard_queries_served gauge";
  for (size_t pos = prom.find(header); pos != std::string::npos;
       pos = prom.find(header, pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST_F(ShardedEngineTest, PeriodicFallbackAnswersEveryRoad) {
  BudgetLedger ledger(100000, 12);
  auto sharded = MakeSharded(4, ledger);
  const partition::Partition& partition = sharded->partition();

  QueryRequest request;
  request.slot = 100;
  for (int s = 0; s < 4; ++s) {
    request.queried.push_back(
        partition.shards[static_cast<size_t>(s)].owned.front());
  }
  const auto response = sharded->ServePeriodicFallback(request, truth_);
  ASSERT_TRUE(response.ok()) << response.status().message();
  ASSERT_EQ(response->queried_speeds.size(), request.queried.size());
  for (double v : response->queried_speeds) EXPECT_GT(v, 0.0);
  // Everything degraded as load-shed, nothing paid, nothing reserved.
  EXPECT_EQ(response->degraded_roads.size(), request.queried.size());
  EXPECT_EQ(response->paid, 0);
  EXPECT_EQ(ledger.total_spent(), 0);
  EXPECT_EQ(sharded->stats().queries_shed, 1);
}

TEST_F(ShardedEngineTest, DrainRefusesNewQueries) {
  BudgetLedger ledger(100000, 12);
  auto sharded = MakeSharded(2, ledger);
  sharded->Drain();
  EXPECT_TRUE(sharded->draining());
  QueryRequest request;
  request.slot = 100;
  request.queried = {1};
  const auto rejected = sharded->Serve(request, truth_);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(ShardedEngineTest, RejectsForeignWorldAndBadRequests) {
  BudgetLedger ledger(100000, 12);
  auto sharded = MakeSharded(2, ledger);

  traffic::DayMatrix other(truth_.num_slots(), truth_.num_roads());
  QueryRequest request;
  request.slot = 100;
  request.queried = {1};
  EXPECT_FALSE(sharded->Serve(request, other).ok());

  QueryRequest empty;
  empty.slot = 100;
  EXPECT_FALSE(sharded->Serve(empty, truth_).ok());

  QueryRequest bad_road;
  bad_road.slot = 100;
  bad_road.queried = {graph_.num_roads()};
  EXPECT_FALSE(sharded->Serve(bad_road, truth_).ok());

  QueryRequest bad_slot;
  bad_slot.slot = truth_.num_slots();
  bad_slot.queried = {1};
  EXPECT_FALSE(sharded->Serve(bad_slot, truth_).ok());
  EXPECT_EQ(sharded->stats().queries_rejected, 4);
  EXPECT_EQ(ledger.reserved_outstanding(), 0);
}

TEST_F(ShardedEngineTest, CreateEnforcesTheHaloInvariant) {
  BudgetLedger ledger(100000, 12);
  ShardedEngineOptions options;
  options.crowd = crowd_options_;
  // halo 3 < max(2C, C+H+1) = 5: locality contract broken, refuse to build.
  const auto engine =
      ShardedEngine::Create(graph_, MakePartition(4, 3), history_, config_,
                            costs_, workers_, ledger, truth_, options);
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().message().find("halo_radius"),
            std::string::npos)
      << engine.status().message();
}

TEST_F(ShardedEngineTest, RefineSlotPatchesEveryShardIncrementally) {
  // Incremental Gamma_R maintenance through the sharded front-end: after a
  // fan-out RefineSlot, every shard's resident table must equal a full
  // recompute from that shard's (refined) model bit for bit.
  BudgetLedger ledger(100000, 12);
  auto sharded = MakeSharded(3, ledger);
  const int slot = 30;
  for (int s = 0; s < sharded->num_shards(); ++s) {
    // Warm the slot so the incremental patch has a resident table.
    ASSERT_TRUE(sharded->shard_system(s).CorrelationsFor(slot).ok());
  }
  const auto rows = sharded->RefineSlot(slot);
  ASSERT_TRUE(rows.ok()) << rows.status().message();
  ASSERT_EQ(static_cast<int>(rows->size()), sharded->num_shards());
  for (int s = 0; s < sharded->num_shards(); ++s) {
    // With a warm sparse closure the incremental path never falls back:
    // either it patched rows or CCD changed no edge correlation.
    EXPECT_GE((*rows)[static_cast<size_t>(s)], 0) << "shard " << s;
    core::CrowdRtse& system = sharded->shard_system(s);
    const auto resident = system.CorrelationsFor(slot);
    ASSERT_TRUE(resident.ok());
    const auto full = rtf::CorrelationTable::Compute(
        system.model(), slot, system.config().path_mode, nullptr,
        system.config().correlation_hop_radius);
    ASSERT_TRUE(full.ok()) << full.status().message();
    EXPECT_EQ((*resident)->Serialize(), full->Serialize()) << "shard " << s;
  }
}

TEST_F(ShardedEngineTest, CreateRejectsPartitionFromAnotherGraph) {
  BudgetLedger ledger(100000, 12);
  ShardedEngineOptions options;
  options.crowd = crowd_options_;
  partition::Partition partition = MakePartition(4);
  partition.graph_checksum ^= 1;
  const auto engine =
      ShardedEngine::Create(graph_, partition, history_, config_, costs_,
                            workers_, ledger, truth_, options);
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().message().find("checksum"), std::string::npos);
}

TEST_F(ShardedEngineTest, CrossShardQueryYieldsOneStitchedTrace) {
  BudgetLedger ledger(-1, 24);
  ShardedEngineOptions options;
  options.crowd = crowd_options_;
  options.engine.trace_sample_rate = 1.0;
  options.engine.profile_sample_rate = 1.0;
  const partition::Partition partition = MakePartition(4);
  const auto engine =
      ShardedEngine::Create(graph_, partition, history_, config_, costs_,
                            workers_, ledger, truth_, options);
  ASSERT_TRUE(engine.ok()) << engine.status().message();

  // Three owned roads from every shard: the query MUST split 4 ways.
  QueryRequest request;
  request.slot = 12;
  std::map<int, int> taken;
  std::set<int> owners;
  for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
    const int owner = partition.OwnerOf(r);
    if (taken[owner]++ < 3) {
      request.queried.push_back(r);
      owners.insert(owner);
    }
  }
  ASSERT_EQ(owners.size(), 4u);

  const auto response = (*engine)->Serve(request, truth_);
  ASSERT_TRUE(response.ok()) << response.status().message();

  // The router samples; sub-engines adopt — so exactly ONE trace exists
  // for this query, holding every shard's spans, not K disconnected ones.
  std::shared_ptr<const util::trace::Trace> trace;
  for (const auto& t : (*engine)->traces().Recent()) {
    if (t->query_id() != response->query_id) continue;
    EXPECT_EQ(trace, nullptr) << "query produced more than one trace";
    trace = t;
  }
  ASSERT_NE(trace, nullptr);

  const std::vector<util::trace::SpanRecord> spans = trace->spans();
  std::map<int64_t, const util::trace::SpanRecord*> by_id;
  for (const auto& span : spans) by_id[span.id] = &span;
  // Spans land in completion order (fan-out children often finish before
  // the root closes), so resolve the root first, then validate edges.
  int roots = 0;
  int64_t root_id = 0;
  for (const auto& span : spans) {
    if (span.parent != 0) continue;
    ++roots;
    root_id = span.id;
    EXPECT_EQ(span.name, "serve");
  }
  EXPECT_EQ(roots, 1);
  std::set<std::string> shard_tags;
  bool have_merge = false;
  for (const auto& span : spans) {
    if (span.parent != 0) {
      EXPECT_EQ(by_id.count(span.parent), 1u)
          << "orphan span '" << span.name << "'";
    }
    if (span.name == "shard") {
      EXPECT_EQ(span.parent, root_id) << "shard span not under the root";
      for (const auto& annotation : span.annotations) {
        if (annotation.key == "shard") shard_tags.insert(annotation.value);
      }
    }
    if (span.name == "merge") have_merge = true;
  }
  EXPECT_EQ(shard_tags.size(), 4u) << "shard children must cover every owner";
  EXPECT_TRUE(have_merge);

  // The rollup fans back through the merge into the response.
  EXPECT_EQ(response->trace_summary.query_id, response->query_id);
  EXPECT_FALSE(response->trace_summary.lines.empty());

  // The flight recorder saw the split and the merge of exactly this query.
  bool saw_split = false;
  bool saw_merge = false;
  for (const auto& event : obs::FlightRecorder::Global().Snapshot()) {
    if (event.a != response->query_id) continue;
    if (event.kind == obs::EventKind::kShardSplit) {
      saw_split = true;
      EXPECT_EQ(event.b, 4);  // owner shards
    }
    if (event.kind == obs::EventKind::kShardMerge) saw_merge = true;
  }
  EXPECT_TRUE(saw_split);
  EXPECT_TRUE(saw_merge);
}

}  // namespace
}  // namespace crowdrtse::server
