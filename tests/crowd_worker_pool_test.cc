#include "crowd/worker_pool.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace crowdrtse::crowd {
namespace {

std::vector<graph::RoadId> Roads(int n) {
  std::vector<graph::RoadId> roads(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) roads[static_cast<size_t>(i)] = i;
  return roads;
}

TEST(WorkerPoolTest, ScatterPlacesAllWorkersOnGivenRoads) {
  util::Rng rng(1);
  WorkerPoolOptions options;
  options.num_workers = 500;
  const WorkerPool pool =
      WorkerPool::ScatterUniform(Roads(20), options, rng);
  EXPECT_EQ(pool.num_workers(), 500);
  for (const Worker& w : pool.workers()) {
    EXPECT_GE(w.road, 0);
    EXPECT_LT(w.road, 20);
    EXPECT_GE(w.bias, options.min_bias);
    EXPECT_LE(w.bias, options.max_bias);
    EXPECT_GE(w.noise_kmh, options.min_noise_kmh);
    EXPECT_LE(w.noise_kmh, options.max_noise_kmh);
  }
}

TEST(WorkerPoolTest, ScatterOnEmptyRoadsYieldsNoWorkers) {
  util::Rng rng(1);
  const WorkerPool pool = WorkerPool::ScatterUniform({}, {}, rng);
  EXPECT_EQ(pool.num_workers(), 0);
  EXPECT_TRUE(pool.CoveredRoads().empty());
}

TEST(WorkerPoolTest, CoverRoadsGuaranteesPerRoadCount) {
  util::Rng rng(2);
  const WorkerPool pool =
      WorkerPool::CoverRoads(Roads(10), /*per_road=*/3, {}, rng);
  EXPECT_EQ(pool.num_workers(), 30);
  for (graph::RoadId r = 0; r < 10; ++r) {
    EXPECT_EQ(pool.CountOn(r), 3);
  }
  EXPECT_EQ(pool.CoveredRoads().size(), 10u);
  EXPECT_EQ(pool.CoveredRoads(/*min_workers=*/4).size(), 0u);
}

TEST(WorkerPoolTest, CoveredRoadsSortedDistinct) {
  util::Rng rng(3);
  WorkerPoolOptions options;
  options.num_workers = 200;
  const WorkerPool pool =
      WorkerPool::ScatterUniform(Roads(15), options, rng);
  const auto covered = pool.CoveredRoads();
  EXPECT_TRUE(std::is_sorted(covered.begin(), covered.end()));
  EXPECT_TRUE(std::adjacent_find(covered.begin(), covered.end()) ==
              covered.end());
  // With 200 workers over 15 roads, every road is covered w.h.p.
  EXPECT_EQ(covered.size(), 15u);
}

TEST(WorkerPoolTest, WorkersOnReturnsMatchingWorkers) {
  util::Rng rng(4);
  const WorkerPool pool = WorkerPool::CoverRoads({7, 9}, 2, {}, rng);
  const auto on7 = pool.WorkersOn(7);
  EXPECT_EQ(on7.size(), 2u);
  for (const Worker* w : on7) EXPECT_EQ(w->road, 7);
  EXPECT_TRUE(pool.WorkersOn(8).empty());
}

TEST(WorkerPoolTest, WorkerIdsUnique) {
  util::Rng rng(5);
  WorkerPoolOptions options;
  options.num_workers = 100;
  const WorkerPool pool =
      WorkerPool::ScatterUniform(Roads(5), options, rng);
  std::vector<WorkerId> ids;
  for (const Worker& w : pool.workers()) ids.push_back(w.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
}

}  // namespace
}  // namespace crowdrtse::crowd
