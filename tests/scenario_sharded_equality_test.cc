// Sharded-vs-unsharded equality on a committed pack: replaying the same
// scenario against QueryEngine and ShardedEngine (pack shards, K=4 for
// rush_hour) must produce bit-identical answers for every single-owner
// query — the queries the sharding contract promises are untouched by
// the router — and identical envelope verdicts overall.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/pack.h"
#include "scenario/runner.h"

namespace crowdrtse::scenario {
namespace {

#ifndef CROWDRTSE_SCENARIO_DIR
#error "build must define CROWDRTSE_SCENARIO_DIR"
#endif

util::Result<Pack> LoadCommittedPack(const std::string& name) {
  return LoadPackFile(std::string(CROWDRTSE_SCENARIO_DIR) + "/" + name);
}

TEST(ShardedEqualityTest, RushHourSingleOwnerQueriesAreBitIdentical) {
  auto pack = LoadCommittedPack("rush_hour.scn");
  ASSERT_TRUE(pack.ok()) << pack.status().ToString();
  ASSERT_EQ(pack->shards, 4) << "the contract pack pins K=4";
  ASSERT_FALSE(pack->fault_tolerant)
      << "equality requires the hash-free serve path";
  ASSERT_TRUE(pack->noiseless);

  RunnerOptions options;
  options.keep_responses = true;
  options.engine = RunnerOptions::EngineKind::kSingle;
  auto single = RunScenario(*pack, options);
  options.engine = RunnerOptions::EngineKind::kSharded;
  auto sharded = RunScenario(*pack, options);
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  // The runner serves the identical request stream to both engines.
  ASSERT_EQ(single->records.size(), sharded->records.size());

  // Rebuild the exact partition the sharded replay used so we can tell
  // single-owner queries from cross-shard ones.
  auto fixture = BuildFixture(*pack);
  ASSERT_TRUE(fixture.ok());
  auto partition =
      BuildPackPartition(*pack, *fixture, pack->shards, pack->seed);
  ASSERT_TRUE(partition.ok()) << partition.status().ToString();

  int single_owner_queries = 0;
  for (size_t i = 0; i < single->records.size(); ++i) {
    const QueryRecord& a = single->records[i];
    const QueryRecord& b = sharded->records[i];
    ASSERT_EQ(a.request.queried, b.request.queried) << "query " << i;
    ASSERT_EQ(a.request.slot, b.request.slot) << "query " << i;
    EXPECT_EQ(a.ok, b.ok) << "query " << i;
    if (!a.ok || !b.ok) continue;

    const int owner = partition->OwnerOf(a.request.queried[0]);
    bool single_owner = true;
    for (graph::RoadId road : a.request.queried) {
      if (partition->OwnerOf(road) != owner) single_owner = false;
    }
    if (!single_owner) continue;
    ++single_owner_queries;

    ASSERT_EQ(a.response.queried_speeds.size(),
              b.response.queried_speeds.size());
    for (size_t k = 0; k < a.response.queried_speeds.size(); ++k) {
      // Bitwise: == on doubles, no tolerance.
      EXPECT_EQ(a.response.queried_speeds[k], b.response.queried_speeds[k])
          << "query " << i << " road " << a.request.queried[k];
    }
    EXPECT_EQ(a.response.probed_roads, b.response.probed_roads)
        << "query " << i;
    EXPECT_EQ(a.response.paid, b.response.paid) << "query " << i;
  }
  // The pack must actually exercise the contract: district storms keep a
  // healthy share of queries inside one shard.
  EXPECT_GT(single_owner_queries, 0);
}

TEST(ShardedEqualityTest, EnvelopeVerdictsMatchAcrossEngines) {
  for (const char* name :
       {"rush_hour.scn", "budget_wave.scn", "worker_starvation.scn"}) {
    auto pack = LoadCommittedPack(name);
    ASSERT_TRUE(pack.ok()) << name << ": " << pack.status().ToString();
    RunnerOptions options;
    options.engine = RunnerOptions::EngineKind::kSingle;
    auto single = RunScenario(*pack, options);
    options.engine = RunnerOptions::EngineKind::kSharded;
    auto sharded = RunScenario(*pack, options);
    ASSERT_TRUE(single.ok()) << name;
    ASSERT_TRUE(sharded.ok()) << name;
    EXPECT_TRUE(single->AllPassed()) << name << "\n" << single->ToJson();
    EXPECT_TRUE(sharded->AllPassed()) << name << "\n" << sharded->ToJson();
    ASSERT_EQ(single->phases.size(), sharded->phases.size()) << name;
    for (size_t i = 0; i < single->phases.size(); ++i) {
      EXPECT_EQ(single->phases[i].name, sharded->phases[i].name);
      EXPECT_EQ(single->phases[i].checked, sharded->phases[i].checked);
      EXPECT_EQ(single->phases[i].Passed(), sharded->phases[i].Passed())
          << name << " phase " << single->phases[i].name;
      EXPECT_EQ(single->phases[i].metrics.attempts,
                sharded->phases[i].metrics.attempts)
          << name << " phase " << single->phases[i].name;
    }
  }
}

}  // namespace
}  // namespace crowdrtse::scenario
