#include "baselines/ridge.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "graph/generators.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::baselines {
namespace {

TEST(RidgeFitTest, RecoversLinearModelAtLightPenalty) {
  util::Rng rng(1);
  const size_t n = 300;
  math::DenseMatrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.Normal(0.0, 2.0);
    x.At(i, 1) = rng.Normal(0.0, 2.0);
    y[i] = 4.0 * x.At(i, 0) - 1.5 * x.At(i, 1) + 2.0 + rng.Normal(0.0, 0.1);
  }
  const auto fit = RidgeFit(x, y, 1e-6);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->coefficients[0], 4.0, 0.05);
  EXPECT_NEAR(fit->coefficients[1], -1.5, 0.05);
  EXPECT_NEAR(fit->intercept, 2.0, 0.1);
}

TEST(RidgeFitTest, PenaltyShrinksTowardsZero) {
  util::Rng rng(2);
  const size_t n = 200;
  math::DenseMatrix x(n, 1);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.Normal();
    y[i] = 3.0 * x.At(i, 0) + rng.Normal(0.0, 0.2);
  }
  const auto light = RidgeFit(x, y, 0.01);
  const auto heavy = RidgeFit(x, y, 10.0);
  ASSERT_TRUE(light.ok());
  ASSERT_TRUE(heavy.ok());
  EXPECT_GT(light->coefficients[0], heavy->coefficients[0]);
  EXPECT_GT(heavy->coefficients[0], 0.0);
}

TEST(RidgeFitTest, ConstantColumnIgnored) {
  math::DenseMatrix x(10, 2);
  std::vector<double> y(10);
  for (size_t i = 0; i < 10; ++i) {
    x.At(i, 0) = 5.0;
    x.At(i, 1) = static_cast<double>(i);
    y[i] = static_cast<double>(2 * i);
  }
  const auto fit = RidgeFit(x, y, 1e-6);
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit->coefficients[0], 0.0);
  EXPECT_NEAR(fit->coefficients[1], 2.0, 0.01);
}

TEST(RidgeFitTest, Validation) {
  math::DenseMatrix x(5, 2);
  EXPECT_FALSE(RidgeFit(x, std::vector<double>(4), 0.1).ok());
  EXPECT_FALSE(RidgeFit(x, std::vector<double>(5), -1.0).ok());
  math::DenseMatrix tiny(1, 2);
  EXPECT_FALSE(RidgeFit(tiny, std::vector<double>(1), 0.1).ok());
}

class RidgeEstimatorTest : public ::testing::Test {
 protected:
  RidgeEstimatorTest() {
    util::Rng rng(5);
    graph::RoadNetworkOptions net;
    net.num_roads = 30;
    graph_ = *graph::RoadNetwork(net, rng);
    traffic::TrafficModelOptions traffic_options;
    traffic_options.num_days = 10;
    sim_ = std::make_unique<traffic::TrafficSimulator>(graph_,
                                                       traffic_options, 7);
    history_ = sim_->GenerateHistory();
  }

  graph::Graph graph_;
  std::unique_ptr<traffic::TrafficSimulator> sim_;
  traffic::HistoryStore history_;
};

TEST_F(RidgeEstimatorTest, EchoesProbesAndStaysPhysical) {
  const RidgeEstimator estimator(graph_, history_, {});
  const traffic::DayMatrix truth = sim_->GenerateEvaluationDay();
  const int slot = 100;
  std::vector<graph::RoadId> observed{0, 6, 12, 18, 24};
  std::vector<double> speeds;
  for (graph::RoadId r : observed) speeds.push_back(truth.At(slot, r));
  const auto est = estimator.Estimate(slot, observed, speeds);
  ASSERT_TRUE(est.ok());
  for (size_t i = 0; i < observed.size(); ++i) {
    EXPECT_DOUBLE_EQ((*est)[static_cast<size_t>(observed[i])], speeds[i]);
  }
  for (double v : *est) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 250.0);
  }
  EXPECT_EQ(estimator.name(), "Ridge");
}

TEST_F(RidgeEstimatorTest, BeatsGlobalMeanGuess) {
  const RidgeEstimator estimator(graph_, history_, {});
  const traffic::DayMatrix truth = sim_->GenerateEvaluationDay();
  const int slot = 99;
  std::vector<graph::RoadId> observed;
  std::vector<double> speeds;
  for (graph::RoadId r = 0; r < graph_.num_roads(); r += 3) {
    observed.push_back(r);
    speeds.push_back(truth.At(slot, r));
  }
  const auto est = estimator.Estimate(slot, observed, speeds);
  ASSERT_TRUE(est.ok());
  double global_mean = 0.0;
  for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
    global_mean += truth.At(slot, r);
  }
  global_mean /= graph_.num_roads();
  double ridge_err = 0.0;
  double mean_err = 0.0;
  int count = 0;
  for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
    if (r % 3 == 0) continue;
    ridge_err += std::fabs((*est)[static_cast<size_t>(r)] -
                           truth.At(slot, r));
    mean_err += std::fabs(global_mean - truth.At(slot, r));
    ++count;
  }
  EXPECT_LT(ridge_err / count, mean_err / count);
}

TEST_F(RidgeEstimatorTest, Validation) {
  const RidgeEstimator estimator(graph_, history_, {});
  EXPECT_FALSE(estimator.Estimate(-1, {}, {}).ok());
  EXPECT_FALSE(estimator.Estimate(0, {0}, {}).ok());
  EXPECT_FALSE(estimator.Estimate(0, {99}, {1.0}).ok());
  EXPECT_FALSE(
      estimator.EstimateTargets(0, {0}, {1.0}, {999}).ok());
}

}  // namespace
}  // namespace crowdrtse::baselines
