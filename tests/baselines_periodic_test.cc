#include "baselines/periodic_estimator.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace crowdrtse::baselines {
namespace {

TEST(PeriodicEstimatorTest, ReturnsSlotMeans) {
  const graph::Graph g = *graph::PathNetwork(3);
  rtf::RtfModel model(g, 2);
  model.SetMu(0, 0, 40.0);
  model.SetMu(0, 1, 50.0);
  model.SetMu(1, 1, 66.0);
  const PeriodicEstimator estimator(model);
  const auto slot0 = estimator.Estimate(0, {}, {});
  ASSERT_TRUE(slot0.ok());
  EXPECT_DOUBLE_EQ((*slot0)[0], 40.0);
  EXPECT_DOUBLE_EQ((*slot0)[1], 50.0);
  const auto slot1 = estimator.Estimate(1, {}, {});
  ASSERT_TRUE(slot1.ok());
  EXPECT_DOUBLE_EQ((*slot1)[1], 66.0);
}

TEST(PeriodicEstimatorTest, IgnoresProbesEvenOnObservedRoads) {
  // Per "purely relies on the periodicity" (paper §VII-C): probed values
  // never override the historical slot mean.
  const graph::Graph g = *graph::PathNetwork(3);
  rtf::RtfModel model(g, 1);
  model.SetMu(0, 2, 45.0);
  const PeriodicEstimator estimator(model);
  const auto est = estimator.Estimate(0, {2}, {99.0});
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ((*est)[2], 45.0);
}

TEST(PeriodicEstimatorTest, IgnoresProbesOnOtherRoads) {
  // The defining limitation of Per: probes on road 0 do not move road 1.
  const graph::Graph g = *graph::PathNetwork(2);
  rtf::RtfModel model(g, 1);
  model.SetMu(0, 0, 50.0);
  model.SetMu(0, 1, 50.0);
  const PeriodicEstimator estimator(model);
  const auto est = estimator.Estimate(0, {0}, {10.0});
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ((*est)[1], 50.0);
}

TEST(PeriodicEstimatorTest, Validation) {
  const graph::Graph g = *graph::PathNetwork(2);
  const rtf::RtfModel model(g, 1);
  const PeriodicEstimator estimator(model);
  EXPECT_FALSE(estimator.Estimate(1, {}, {}).ok());
  EXPECT_FALSE(estimator.Estimate(0, {0}, {}).ok());
  EXPECT_FALSE(estimator.Estimate(0, {9}, {1.0}).ok());
  EXPECT_EQ(estimator.name(), "Per");
}

}  // namespace
}  // namespace crowdrtse::baselines
