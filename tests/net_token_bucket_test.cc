#include "net/token_bucket.h"

#include <gtest/gtest.h>

#include "util/clock.h"

namespace crowdrtse::net {
namespace {

TEST(TokenBucketTest, BurstThenDeny) {
  util::SimClock clock;
  TokenBucket bucket(10.0, 3.0, &clock);  // 10 qps, burst 3
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire());  // burst spent, no time has passed
}

TEST(TokenBucketTest, DeterministicRefillBoundary) {
  util::SimClock clock;
  TokenBucket bucket(10.0, 1.0, &clock);  // one token per 100 ms
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire());

  // One microsecond short of the refill boundary: still denied.
  clock.AdvanceMicros(99'999);
  EXPECT_FALSE(bucket.TryAcquire());
  // Crossing it: exactly one token.
  clock.AdvanceMicros(1);
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire());
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  util::SimClock clock;
  TokenBucket bucket(100.0, 2.0, &clock);
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_TRUE(bucket.TryAcquire());
  // An hour of idling still refills only to the burst cap.
  clock.AdvanceMicros(3'600'000'000LL);
  EXPECT_DOUBLE_EQ(bucket.available(), 2.0);
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire());
}

TEST(TokenBucketTest, SteadyRateAdmitsExactCount) {
  util::SimClock clock;
  TokenBucket bucket(50.0, 1.0, &clock);
  int admitted = 0;
  // 200 acquire attempts in 5 ms steps at 50 qps. The last attempt sees
  // 199 * 5 ms = 995 ms of refill = 49 whole tokens, plus the initial
  // burst token: exactly 50 admissions, deterministically.
  for (int step = 0; step < 200; ++step) {
    if (bucket.TryAcquire()) ++admitted;
    clock.AdvanceMicros(5'000);
  }
  EXPECT_EQ(admitted, 50);
}

TEST(TokenBucketTest, NonPositiveRateDisablesLimiting) {
  util::SimClock clock;
  TokenBucket bucket(0.0, 1.0, &clock);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(bucket.TryAcquire());
}

}  // namespace
}  // namespace crowdrtse::net
