#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/crowd_rtse.h"
#include "graph/generators.h"
#include "rtf/correlation_cache.h"
#include "rtf/correlation_table.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::rtf {
namespace {

/// Golden contract of incremental Gamma_R maintenance: a sparse table with
/// only the affected rows recomputed equals a full rebuild bit for bit —
/// at the table level (RefreshedRows), through the cache
/// (PatchInPlace), and through the engine (CrowdRtse::RefineSlot).

graph::Graph TestNetwork(int num_roads) {
  util::Rng rng(23);
  graph::RoadNetworkOptions net;
  net.num_roads = num_roads;
  return *graph::RoadNetwork(net, rng);
}

std::vector<double> EdgeRhos(const graph::Graph& g) {
  std::vector<double> rho(static_cast<size_t>(g.num_edges()));
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    rho[static_cast<size_t>(e)] = 0.3 + 0.6 * ((e * 7) % 13) / 13.0;
  }
  return rho;
}

TEST(GammaDeltaTest, AffectedRowsCoverChangedEdgeNeighborhood) {
  // Path 0-1-2-3-4-5-6 (edge e joins roads e and e+1). With C = 2, a
  // 2-edge path from source s crosses edge (2, 3) only if s reaches an
  // endpoint within 1 hop: exactly roads {1, 2, 3, 4}.
  const graph::Graph g = *graph::PathNetwork(7);
  const std::vector<graph::RoadId> affected =
      AffectedCorrelationRows(g, {2}, 2);
  const std::set<graph::RoadId> got(affected.begin(), affected.end());
  EXPECT_EQ(got, (std::set<graph::RoadId>{1, 2, 3, 4}));
  EXPECT_EQ(affected.size(), got.size()) << "ids must be deduplicated";
  EXPECT_TRUE(AffectedCorrelationRows(g, {}, 2).empty());
}

TEST(GammaDeltaTest, RefreshedRowsEqualsFullRebuild) {
  const graph::Graph g = TestNetwork(257);
  constexpr int kHops = 3;
  const std::vector<double> old_rho = EdgeRhos(g);
  const auto table = CorrelationTable::FromEdgeCorrelations(
      g, old_rho, PathWeightMode::kNegLog, nullptr, kHops);
  ASSERT_TRUE(table.ok());

  std::vector<double> new_rho = old_rho;
  std::vector<graph::EdgeId> changed = {5, 41, 120};
  for (graph::EdgeId e : changed) {
    new_rho[static_cast<size_t>(e)] =
        std::min(0.95, old_rho[static_cast<size_t>(e)] + 0.2);
  }
  const std::vector<graph::RoadId> affected =
      AffectedCorrelationRows(g, changed, kHops);
  ASSERT_FALSE(affected.empty());
  ASSERT_LT(affected.size(), static_cast<size_t>(g.num_roads()))
      << "test network too dense to exercise row locality";

  const auto refreshed = table->RefreshedRows(g, new_rho, affected);
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().message();
  const auto full = CorrelationTable::FromEdgeCorrelations(
      g, new_rho, PathWeightMode::kNegLog, nullptr, kHops);
  ASSERT_TRUE(full.ok());
  // Bitwise table equality, every entry included (serialized form covers
  // the whole payload).
  EXPECT_EQ(refreshed->Serialize(), full->Serialize());
}

TEST(GammaDeltaTest, DenseTableRejectsRowRefresh) {
  // Dense closures have no row locality (one edge can shift any entry), so
  // the incremental path must refuse rather than return a partial table.
  const graph::Graph g = *graph::PathNetwork(6);
  const std::vector<double> rho(static_cast<size_t>(g.num_edges()), 0.8);
  const auto dense = CorrelationTable::FromEdgeCorrelations(g, rho);
  ASSERT_TRUE(dense.ok());
  EXPECT_FALSE(dense->RefreshedRows(g, rho, {0}).ok());
}

TEST(GammaDeltaTest, PatchInPlaceEqualsInvalidateAndRecompute) {
  const graph::Graph g = TestNetwork(257);
  constexpr int kHops = 3;
  const std::vector<double> old_rho = EdgeRhos(g);
  std::vector<double> new_rho = old_rho;
  new_rho[10] = 0.9;
  const std::vector<graph::RoadId> affected =
      AffectedCorrelationRows(g, {10}, kHops);

  CorrelationCache cache;
  const auto resident =
      cache.GetOrCompute(0, [&](int, util::ThreadPool* fanout) {
        return CorrelationTable::FromEdgeCorrelations(
            g, old_rho, PathWeightMode::kNegLog, fanout, kHops);
      });
  ASSERT_TRUE(resident.ok());

  const auto outcome = cache.PatchInPlace(
      0, [&](const CorrelationTable& current, util::ThreadPool* fanout) {
        return current.RefreshedRows(g, new_rho, affected, fanout);
      });
  EXPECT_EQ(outcome, CorrelationCache::PatchOutcome::kPatched);
  EXPECT_EQ(cache.stats().patches, 1);

  const auto patched =
      cache.GetOrCompute(0, [&](int, util::ThreadPool*)
                                -> util::Result<CorrelationTable> {
        ADD_FAILURE() << "patched table must be served without recompute";
        return util::Status::FailedPrecondition("unexpected recompute");
      });
  ASSERT_TRUE(patched.ok());
  const auto full = CorrelationTable::FromEdgeCorrelations(
      g, new_rho, PathWeightMode::kNegLog, nullptr, kHops);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ((*patched)->Serialize(), full->Serialize());
}

TEST(GammaDeltaTest, PatchInPlaceWithoutResidentTableInvalidates) {
  CorrelationCache cache;
  const auto outcome = cache.PatchInPlace(
      0, [](const CorrelationTable&, util::ThreadPool*)
             -> util::Result<CorrelationTable> {
        ADD_FAILURE() << "nothing resident: patch must not run";
        return util::Status::FailedPrecondition("unexpected patch");
      });
  EXPECT_EQ(outcome, CorrelationCache::PatchOutcome::kInvalidated);
  EXPECT_EQ(cache.stats().patch_fallbacks, 1);
}

/// End-to-end: RefineSlot with the incremental refresh produces exactly
/// the table a full invalidate-and-recompute produces, and reports how it
/// got there (row count vs -1).
TEST(GammaDeltaTest, RefineSlotIncrementalMatchesFullRecompute) {
  const graph::Graph g = TestNetwork(211);
  traffic::TrafficModelOptions traffic_options;
  traffic_options.num_days = 6;
  traffic::TrafficSimulator sim(g, traffic_options, 5);
  const traffic::HistoryStore history = sim.GenerateHistory();

  core::CrowdRtseConfig config;
  config.correlation_hop_radius = 2;
  config.refine_with_ccd = false;
  const int slot = 10;

  config.incremental_gamma_refresh = true;
  auto incremental = core::CrowdRtse::BuildOffline(g, history, config);
  ASSERT_TRUE(incremental.ok());
  config.incremental_gamma_refresh = false;
  auto full = core::CrowdRtse::BuildOffline(g, history, config);
  ASSERT_TRUE(full.ok());

  // Warm the slot so the incremental system has a resident table to patch.
  ASSERT_TRUE(incremental->CorrelationsFor(slot).ok());
  ASSERT_TRUE(full->CorrelationsFor(slot).ok());

  const auto rows_incremental = incremental->RefineSlot(slot);
  const auto rows_full = full->RefineSlot(slot);
  ASSERT_TRUE(rows_incremental.ok()) << rows_incremental.status().message();
  ASSERT_TRUE(rows_full.ok()) << rows_full.status().message();
  // The incremental path never falls back when a table is resident: it
  // either patched (> 0 rows) or CCD changed no edge correlation (0).
  EXPECT_GE(*rows_incremental, 0);
  EXPECT_LE(*rows_full, 0) << "full path must not report patched rows";
  EXPECT_EQ(*rows_incremental > 0,
            incremental->CorrelationCacheStats().patches == 1);

  // Both refinements are deterministic over the same world, so the two
  // systems hold identical parameters; the patched table must equal the
  // fully recomputed one bit for bit.
  const auto table_incremental = incremental->CorrelationsFor(slot);
  const auto table_full = full->CorrelationsFor(slot);
  ASSERT_TRUE(table_incremental.ok());
  ASSERT_TRUE(table_full.ok());
  EXPECT_EQ((*table_incremental)->Serialize(), (*table_full)->Serialize());
}

}  // namespace
}  // namespace crowdrtse::rtf
