#include <gtest/gtest.h>

#include "graph/generators.h"
#include "ocs/greedy_selectors.h"
#include "util/rng.h"

namespace crowdrtse::ocs {
namespace {

struct Instance {
  graph::Graph graph;
  rtf::CorrelationTable table;
  crowd::CostModel costs;
  std::vector<graph::RoadId> queried;
  std::vector<double> weights;
  std::vector<graph::RoadId> candidates;
};

Instance MakeInstance(uint64_t seed, int num_roads) {
  util::Rng rng(seed);
  graph::RoadNetworkOptions net;
  net.num_roads = num_roads;
  Instance inst{*graph::RoadNetwork(net, rng), {}, {}, {}, {}, {}};
  std::vector<double> rho(static_cast<size_t>(inst.graph.num_edges()));
  for (double& r : rho) r = rng.UniformDouble(0.3, 0.95);
  inst.table = *rtf::CorrelationTable::FromEdgeCorrelations(inst.graph, rho);
  inst.costs = *crowd::CostModel::UniformRandom(num_roads, 1, 6, rng);
  for (int i = 0; i < num_roads / 4; ++i) {
    inst.queried.push_back(i * 3);
    // Continuous random weights make exact gain ties measure-zero, so the
    // lazy and eager selections coincide exactly.
    inst.weights.push_back(rng.UniformDouble(0.5, 8.0));
  }
  for (int i = 0; i < num_roads; ++i) inst.candidates.push_back(i);
  return inst;
}

class LazyGreedyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LazyGreedyTest, MatchesEagerObjectiveAndSelection) {
  const Instance inst = MakeInstance(GetParam(), 80);
  for (double theta : {0.9, 1.0}) {
    for (int budget : {10, 30, 80}) {
      const auto problem = OcsProblem::Create(
          inst.table, inst.queried, inst.weights, inst.candidates,
          inst.costs, budget, theta);
      ASSERT_TRUE(problem.ok());
      const OcsSolution eager_ratio = RatioGreedy(*problem);
      const OcsSolution lazy_ratio = LazyRatioGreedy(*problem);
      // The objective always matches; selection sizes may differ by a few
      // zero-gain "budget filler" roads whose ties break differently.
      EXPECT_NEAR(lazy_ratio.objective, eager_ratio.objective, 1e-9);
      const OcsSolution eager_obj = ObjectiveGreedy(*problem);
      const OcsSolution lazy_obj = LazyObjectiveGreedy(*problem);
      EXPECT_NEAR(lazy_obj.objective, eager_obj.objective, 1e-9);
      const OcsSolution eager_hybrid = HybridGreedy(*problem);
      const OcsSolution lazy_hybrid = LazyHybridGreedy(*problem);
      EXPECT_NEAR(lazy_hybrid.objective, eager_hybrid.objective, 1e-9);
      EXPECT_TRUE(problem->IsFeasible(lazy_hybrid.roads));
      EXPECT_NEAR(lazy_hybrid.objective,
                  problem->Objective(lazy_hybrid.roads), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyGreedyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(LazyGreedyTest, EmptyBudget) {
  const Instance inst = MakeInstance(9, 30);
  const auto problem =
      OcsProblem::Create(inst.table, inst.queried, inst.weights,
                         inst.candidates, inst.costs, 0, 1.0);
  ASSERT_TRUE(problem.ok());
  EXPECT_TRUE(LazyHybridGreedy(*problem).roads.empty());
}

}  // namespace
}  // namespace crowdrtse::ocs
