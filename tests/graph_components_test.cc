#include "graph/connected_components.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "util/rng.h"

namespace crowdrtse::graph {
namespace {

TEST(ComponentsTest, SingleComponent) {
  const Graph g = *RingNetwork(5);
  const Components c = FindConnectedComponents(g);
  EXPECT_EQ(c.Count(), 1);
  EXPECT_EQ(c.members[0].size(), 5u);
  EXPECT_EQ(c.LargestComponent(), 0);
}

TEST(ComponentsTest, TwoComponentsAndIsolated) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 4);
  const Graph g = *builder.Build();
  const Components c = FindConnectedComponents(g);
  EXPECT_EQ(c.Count(), 3);
  EXPECT_EQ(c.component[0], c.component[2]);
  EXPECT_NE(c.component[0], c.component[3]);
  EXPECT_EQ(c.members[static_cast<size_t>(c.component[5])].size(), 1u);
  EXPECT_EQ(c.LargestComponent(), c.component[0]);
}

TEST(ComponentsTest, EmptyGraph) {
  GraphBuilder builder(0);
  const Components c = FindConnectedComponents(*builder.Build());
  EXPECT_EQ(c.Count(), 0);
  EXPECT_EQ(c.LargestComponent(), -1);
}

TEST(ComponentsTest, EveryRoadLabelled) {
  util::Rng rng(2);
  RoadNetworkOptions options;
  options.num_roads = 50;
  const Graph g = *RoadNetwork(options, rng);
  const Components c = FindConnectedComponents(g);
  size_t total = 0;
  for (const auto& members : c.members) total += members.size();
  EXPECT_EQ(total, 50u);
  for (int label : c.component) EXPECT_GE(label, 0);
}

TEST(GrowConnectedSubsetTest, ExactSize) {
  const Graph g = *GridNetwork(6, 6);
  const auto subset = GrowConnectedSubset(g, 0, 10);
  EXPECT_EQ(subset.size(), 10u);
  // Every road after the seed has a neighbour earlier in the subset
  // (BFS order), so the subset is connected.
  for (size_t i = 1; i < subset.size(); ++i) {
    bool attached = false;
    for (size_t j = 0; j < i && !attached; ++j) {
      attached = g.AreAdjacent(subset[i], subset[j]);
    }
    EXPECT_TRUE(attached) << "road " << subset[i] << " disconnected";
  }
}

TEST(GrowConnectedSubsetTest, CappedByComponentSize) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const Graph g = *builder.Build();
  EXPECT_EQ(GrowConnectedSubset(g, 0, 10).size(), 3u);
}

TEST(GrowConnectedSubsetTest, InvalidSeedOrSize) {
  const Graph g = *PathNetwork(3);
  EXPECT_TRUE(GrowConnectedSubset(g, -1, 2).empty());
  EXPECT_TRUE(GrowConnectedSubset(g, 0, 0).empty());
}

}  // namespace
}  // namespace crowdrtse::graph
