#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "gsp/propagation.h"
#include "util/rng.h"

namespace crowdrtse::gsp {
namespace {

rtf::RtfModel RandomModel(const graph::Graph& g, uint64_t seed) {
  util::Rng rng(seed);
  rtf::RtfModel model(g, 1);
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    model.SetMu(0, r, rng.UniformDouble(30.0, 70.0));
    model.SetSigma(0, r, rng.UniformDouble(1.0, 6.0));
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    model.SetRho(0, e, rng.UniformDouble(0.4, 0.95));
  }
  return model;
}

class GspParallelTest : public ::testing::TestWithParam<int> {};

TEST_P(GspParallelTest, ParallelReachesSameFixedPoint) {
  const int num_threads = GetParam();
  util::Rng rng(7);
  graph::RoadNetworkOptions net;
  net.num_roads = 150;
  const graph::Graph g = *graph::RoadNetwork(net, rng);
  const rtf::RtfModel model = RandomModel(g, 3);

  std::vector<graph::RoadId> sampled;
  std::vector<double> probed;
  for (graph::RoadId r = 0; r < g.num_roads(); r += 10) {
    sampled.push_back(r);
    probed.push_back(rng.UniformDouble(20.0, 80.0));
  }

  GspOptions sequential;
  sequential.epsilon = 1e-10;
  sequential.max_sweeps = 2000;
  GspOptions parallel = sequential;
  parallel.num_threads = num_threads;

  const auto seq = SpeedPropagator(model, sequential)
                       .Propagate(0, sampled, probed);
  const auto par = SpeedPropagator(model, parallel)
                       .Propagate(0, sampled, probed);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_TRUE(seq->converged);
  EXPECT_TRUE(par->converged);
  // Both converge to the same unique fixed point of the quadratic
  // objective (the update order differs, the optimum does not).
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    EXPECT_NEAR(par->speeds[static_cast<size_t>(r)],
                seq->speeds[static_cast<size_t>(r)], 1e-5)
        << "road " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, GspParallelTest,
                         ::testing::Values(2, 4, 8));

TEST(GspParallelTest2, ParallelFixedPointConditionHolds) {
  util::Rng rng(9);
  graph::RoadNetworkOptions net;
  net.num_roads = 100;
  const graph::Graph g = *graph::RoadNetwork(net, rng);
  const rtf::RtfModel model = RandomModel(g, 5);
  GspOptions options;
  options.epsilon = 1e-10;
  options.max_sweeps = 2000;
  options.num_threads = 4;
  const SpeedPropagator propagator(model, options);
  const std::vector<graph::RoadId> sampled{0, 50};
  const std::vector<double> probed{25.0, 70.0};
  const auto result = propagator.Propagate(0, sampled, probed);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->converged);
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    if (r == 0 || r == 50) continue;
    if (result->hops[static_cast<size_t>(r)] < 0) continue;
    EXPECT_NEAR(result->speeds[static_cast<size_t>(r)],
                propagator.UpdateValue(0, r, result->speeds), 1e-6);
  }
}

}  // namespace
}  // namespace crowdrtse::gsp
