#include "rtf/rtf_serialization.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "graph/generators.h"
#include "util/rng.h"

namespace crowdrtse::rtf {
namespace {

RtfModel RandomModel(const graph::Graph& g, int num_slots, uint64_t seed) {
  util::Rng rng(seed);
  RtfModel model(g, num_slots);
  for (int slot = 0; slot < num_slots; ++slot) {
    for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
      model.SetMu(slot, r, rng.UniformDouble(20.0, 80.0));
      model.SetSigma(slot, r, rng.UniformDouble(0.5, 8.0));
    }
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      model.SetRho(slot, e, rng.UniformDouble(0.1, 0.95));
    }
  }
  return model;
}

TEST(RtfSerializationTest, RoundTripInMemory) {
  const graph::Graph g = *graph::GridNetwork(4, 4);
  const RtfModel model = RandomModel(g, 3, 1);
  const std::string data = RtfSerializer::Serialize(model);
  const auto loaded = RtfSerializer::Deserialize(g, data);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_slots(), 3);
  for (int slot = 0; slot < 3; ++slot) {
    for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
      EXPECT_DOUBLE_EQ(loaded->Mu(slot, r), model.Mu(slot, r));
      EXPECT_DOUBLE_EQ(loaded->Sigma(slot, r), model.Sigma(slot, r));
    }
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_DOUBLE_EQ(loaded->Rho(slot, e), model.Rho(slot, e));
    }
  }
}

TEST(RtfSerializationTest, RoundTripOnDisk) {
  const graph::Graph g = *graph::PathNetwork(5);
  const RtfModel model = RandomModel(g, 2, 2);
  const std::string path = ::testing::TempDir() + "/rtf_model.bin";
  ASSERT_TRUE(RtfSerializer::SaveToFile(model, path).ok());
  const auto loaded = RtfSerializer::LoadFromFile(g, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->Mu(1, 4), model.Mu(1, 4));
  std::remove(path.c_str());
}

TEST(RtfSerializationTest, RejectsWrongMagic) {
  const graph::Graph g = *graph::PathNetwork(2);
  EXPECT_FALSE(RtfSerializer::Deserialize(g, "not a model").ok());
}

TEST(RtfSerializationTest, RejectsGraphMismatch) {
  const graph::Graph g = *graph::PathNetwork(5);
  const RtfModel model = RandomModel(g, 2, 3);
  const std::string data = RtfSerializer::Serialize(model);
  const graph::Graph other = *graph::PathNetwork(6);
  EXPECT_FALSE(RtfSerializer::Deserialize(other, data).ok());
  const graph::Graph ring = *graph::RingNetwork(5);  // same roads, more edges
  EXPECT_FALSE(RtfSerializer::Deserialize(ring, data).ok());
}

TEST(RtfSerializationTest, RejectsTruncated) {
  const graph::Graph g = *graph::PathNetwork(4);
  const RtfModel model = RandomModel(g, 1, 4);
  const std::string data = RtfSerializer::Serialize(model);
  EXPECT_FALSE(
      RtfSerializer::Deserialize(g, data.substr(0, data.size() / 2)).ok());
}

TEST(RtfSerializationTest, MissingFileFails) {
  const graph::Graph g = *graph::PathNetwork(2);
  EXPECT_FALSE(RtfSerializer::LoadFromFile(g, "/no/such/model.bin").ok());
}

}  // namespace
}  // namespace crowdrtse::rtf
