#include "crowd/gmission_scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"

namespace crowdrtse::crowd {
namespace {

TEST(GMissionScenarioTest, BuildsPaperShapedScenario) {
  util::Rng net_rng(1);
  graph::RoadNetworkOptions net;
  net.num_roads = 607;
  const graph::Graph g = *graph::RoadNetwork(net, net_rng);
  util::Rng rng(2);
  const auto scenario = BuildGMissionScenario(g, GMissionOptions{}, rng);
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario->queried_roads.size(), 50u);
  EXPECT_EQ(scenario->worker_roads.size(), 30u);
  // R^w subset of R^q.
  const std::set<graph::RoadId> queried(scenario->queried_roads.begin(),
                                        scenario->queried_roads.end());
  for (graph::RoadId r : scenario->worker_roads) {
    EXPECT_TRUE(queried.count(r) > 0);
  }
  // Queried roads form a connected subgraph (BFS-grown).
  for (size_t i = 1; i < scenario->queried_roads.size(); ++i) {
    bool attached = false;
    for (size_t j = 0; j < i && !attached; ++j) {
      attached = g.AreAdjacent(scenario->queried_roads[i],
                               scenario->queried_roads[j]);
    }
    EXPECT_TRUE(attached);
  }
}

TEST(GMissionScenarioTest, WorkerRoadsDistinct) {
  util::Rng net_rng(3);
  graph::RoadNetworkOptions net;
  net.num_roads = 200;
  const graph::Graph g = *graph::RoadNetwork(net, net_rng);
  util::Rng rng(4);
  const auto scenario = BuildGMissionScenario(g, GMissionOptions{}, rng);
  ASSERT_TRUE(scenario.ok());
  std::vector<graph::RoadId> roads = scenario->worker_roads;
  std::sort(roads.begin(), roads.end());
  EXPECT_TRUE(std::adjacent_find(roads.begin(), roads.end()) == roads.end());
}

TEST(GMissionScenarioTest, FailsOnTooSmallGraph) {
  const graph::Graph g = *graph::PathNetwork(10);
  util::Rng rng(1);
  const auto scenario = BuildGMissionScenario(g, GMissionOptions{}, rng);
  EXPECT_FALSE(scenario.ok());
}

TEST(GMissionScenarioTest, ValidatesOptions) {
  const graph::Graph g = *graph::PathNetwork(100);
  util::Rng rng(1);
  GMissionOptions bad;
  bad.num_worker_roads = 60;
  bad.num_queried_roads = 50;
  EXPECT_FALSE(BuildGMissionScenario(g, bad, rng).ok());
  bad = GMissionOptions{};
  bad.num_queried_roads = 0;
  EXPECT_FALSE(BuildGMissionScenario(g, bad, rng).ok());
}

TEST(GMissionScenarioTest, CustomSizes) {
  const graph::Graph g = *graph::GridNetwork(10, 10);
  util::Rng rng(7);
  GMissionOptions options;
  options.num_queried_roads = 20;
  options.num_worker_roads = 8;
  const auto scenario = BuildGMissionScenario(g, options, rng);
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario->queried_roads.size(), 20u);
  EXPECT_EQ(scenario->worker_roads.size(), 8u);
}

}  // namespace
}  // namespace crowdrtse::crowd
