#include "gsp/propagator_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "util/rng.h"

namespace crowdrtse::gsp {
namespace {

rtf::RtfModel RandomModel(const graph::Graph& g, uint64_t seed) {
  util::Rng rng(seed);
  rtf::RtfModel model(g, 1);
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    model.SetMu(0, r, rng.UniformDouble(30.0, 70.0));
    model.SetSigma(0, r, rng.UniformDouble(1.0, 6.0));
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    model.SetRho(0, e, rng.UniformDouble(0.4, 0.95));
  }
  return model;
}

class PropagatorPoolTest : public ::testing::Test {
 protected:
  PropagatorPoolTest() {
    util::Rng rng(11);
    graph::RoadNetworkOptions net;
    net.num_roads = 120;
    graph_ = *graph::RoadNetwork(net, rng);
    model_.emplace(RandomModel(graph_, 4));
    for (graph::RoadId r = 0; r < graph_.num_roads(); r += 8) {
      sampled_.push_back(r);
      probed_.push_back(rng.UniformDouble(20.0, 80.0));
    }
  }

  graph::Graph graph_;
  std::optional<rtf::RtfModel> model_;
  std::vector<graph::RoadId> sampled_;
  std::vector<double> probed_;
};

TEST_F(PropagatorPoolTest, SizeClampsToAtLeastOne) {
  PropagatorPool pool(*model_, GspOptions{}, 0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.available(), 1);
}

TEST_F(PropagatorPoolTest, LeaseTakesAndReturnsInstances) {
  PropagatorPool pool(*model_, GspOptions{}, 2);
  EXPECT_EQ(pool.available(), 2);
  {
    PropagatorPool::Lease a = pool.Acquire();
    EXPECT_EQ(pool.available(), 1);
    PropagatorPool::Lease b = pool.Acquire();
    EXPECT_EQ(pool.available(), 0);
  }
  EXPECT_EQ(pool.available(), 2);
}

TEST_F(PropagatorPoolTest, MovedLeaseReleasesOnce) {
  PropagatorPool pool(*model_, GspOptions{}, 1);
  {
    PropagatorPool::Lease a = pool.Acquire();
    PropagatorPool::Lease b = std::move(a);
    EXPECT_EQ(pool.available(), 0);
  }
  EXPECT_EQ(pool.available(), 1);
}

TEST_F(PropagatorPoolTest, LeasedPropagatorProducesRegularResults) {
  GspOptions options;
  options.epsilon = 1e-8;
  options.max_sweeps = 2000;
  const SpeedPropagator reference(*model_, options);
  const auto expected = reference.Propagate(0, sampled_, probed_);
  ASSERT_TRUE(expected.ok());

  PropagatorPool pool(*model_, options, 3);
  PropagatorPool::Lease lease = pool.Acquire();
  const auto actual = lease->Propagate(0, sampled_, probed_);
  ASSERT_TRUE(actual.ok());
  for (size_t i = 0; i < expected->speeds.size(); ++i) {
    EXPECT_NEAR(actual->speeds[i], expected->speeds[i], 1e-9);
  }
}

TEST_F(PropagatorPoolTest, ConcurrentLeasesReachTheSameFixedPoint) {
  GspOptions options;
  options.epsilon = 1e-8;
  options.max_sweeps = 2000;
  options.num_threads = 2;  // the non-reentrant configuration
  const SpeedPropagator reference(*model_, options);
  const auto expected = reference.Propagate(0, sampled_, probed_);
  ASSERT_TRUE(expected.ok());

  constexpr int kClients = 6;
  PropagatorPool pool(*model_, options, 2);  // fewer instances than clients
  std::vector<std::vector<double>> results(kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (int repeat = 0; repeat < 3; ++repeat) {
        PropagatorPool::Lease lease = pool.Acquire();
        const auto result = lease->Propagate(0, sampled_, probed_);
        if (!result.ok()) {
          failures.fetch_add(1);
          return;
        }
        results[static_cast<size_t>(c)] = result->speeds;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.available(), 2);
  for (const std::vector<double>& speeds : results) {
    ASSERT_EQ(speeds.size(), expected->speeds.size());
    for (size_t i = 0; i < speeds.size(); ++i) {
      EXPECT_NEAR(speeds[i], expected->speeds[i], 1e-5);
    }
  }
}

}  // namespace
}  // namespace crowdrtse::gsp
