// Pins the exact point where the MAD outlier filter stops protecting the
// aggregate from a coordinated-liar cohort. With n = 9 answers and liars
// reporting one agreed value, the median deviation — and with it the
// robust sigma — survives up to 4 liars and collapses to zero at 5:
// FilterReports(n=9, k<=4) drops every lie, FilterReports(n=9, k=5)
// keeps everything and the lie becomes the median. The liar_cohort.scn
// scenario pack books the same inversion end to end.

#include <vector>

#include <gtest/gtest.h>

#include "crowd/aggregation.h"
#include "crowd/worker.h"

namespace crowdrtse::crowd {
namespace {

constexpr double kLie = 100.0;
constexpr double kMadSigmas = 4.0;

// k liars at kLie, 9-k honest answers spread around 42 km/h.
std::vector<SpeedAnswer> CohortAnswers(int num_liars) {
  std::vector<SpeedAnswer> answers;
  const double honest[] = {40.0, 41.0, 42.0, 43.0, 44.0,
                           40.5, 41.5, 42.5, 43.5};
  WorkerId id = 0;
  for (int i = 0; i < 9 - num_liars; ++i) {
    answers.push_back({id++, 0, honest[i]});
  }
  for (int i = 0; i < num_liars; ++i) {
    answers.push_back({id++, 0, kLie});
  }
  return answers;
}

int CountLiesKept(const std::vector<SpeedAnswer>& kept) {
  int lies = 0;
  for (const SpeedAnswer& a : kept) lies += a.reported_kmh == kLie ? 1 : 0;
  return lies;
}

TEST(LiarCohortTest, MinorityCohortsAreFullyFiltered) {
  for (int k = 1; k <= 4; ++k) {
    const auto kept = FilterReports(CohortAnswers(k), kMadSigmas);
    EXPECT_EQ(CountLiesKept(kept), 0) << "cohort " << k;
    EXPECT_EQ(static_cast<int>(kept.size()), 9 - k) << "cohort " << k;
  }
}

TEST(LiarCohortTest, FiveOfNineCapturesTheMedianAndDisarmsTheFilter) {
  // At k = 5 the agreed lie is the median, the median absolute deviation
  // is zero, and the filter (by design) declines to judge: everything is
  // kept, so the aggregate is dragged to the coordinated story.
  const auto kept = FilterReports(CohortAnswers(5), kMadSigmas);
  EXPECT_EQ(kept.size(), 9u);
  EXPECT_EQ(CountLiesKept(kept), 5);
}

TEST(LiarCohortTest, ThresholdIsExactlyMajorityOfTheRound) {
  // The protection boundary sits between 4 and 5 for n = 9 — one more
  // agreeing liar flips the outcome from "all lies dropped" to "all lies
  // kept". This is the number the scenario packs reason about.
  EXPECT_EQ(CountLiesKept(FilterReports(CohortAnswers(4), kMadSigmas)), 0);
  EXPECT_EQ(CountLiesKept(FilterReports(CohortAnswers(5), kMadSigmas)), 5);
}

TEST(LiarCohortTest, FilterNeedsFourAnswersToEngage) {
  // Three answers — even with a flagrant outlier — pass through: the
  // robust statistic is meaningless on tiny rounds.
  std::vector<SpeedAnswer> answers = {{0, 0, 40.0}, {1, 0, 41.0},
                                      {2, 0, kLie}};
  EXPECT_EQ(FilterReports(answers, kMadSigmas).size(), 3u);
}

TEST(LiarCohortTest, DuplicateWorkerReportsAreDroppedBeforeFiltering) {
  // One worker repeating the lie five times is still one voice: dedup
  // runs first, so the cohort size that matters is distinct workers.
  std::vector<SpeedAnswer> answers = {
      {0, 0, 40.0}, {1, 0, 41.0}, {2, 0, 42.0}, {3, 0, 43.0},
      {4, 0, kLie}, {4, 0, kLie}, {4, 0, kLie}, {4, 0, kLie},
      {4, 0, kLie},
  };
  const auto kept = FilterReports(answers, kMadSigmas);
  EXPECT_EQ(CountLiesKept(kept), 0);
  EXPECT_EQ(kept.size(), 4u);
}

TEST(LiarCohortTest, NonPositiveSigmasDisablesTheFilter) {
  const auto kept = FilterReports(CohortAnswers(2), 0.0);
  EXPECT_EQ(kept.size(), 9u);
  EXPECT_EQ(CountLiesKept(kept), 2);
}

}  // namespace
}  // namespace crowdrtse::crowd
