#include "server/worker_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"

namespace crowdrtse::server {
namespace {

graph::Graph TestGraph() {
  util::Rng rng(1);
  graph::RoadNetworkOptions options;
  options.num_roads = 80;
  return *graph::RoadNetwork(options, rng);
}

TEST(WorkerRegistryTest, InitialPopulationOnValidRoads) {
  const graph::Graph g = TestGraph();
  WorkerRegistryOptions options;
  options.num_workers = 300;
  WorkerRegistry registry(g, options, 5);
  EXPECT_EQ(registry.num_workers(), 300);
  for (const crowd::Worker& w : registry.workers()) {
    EXPECT_TRUE(g.IsValidRoad(w.road));
  }
}

TEST(WorkerRegistryTest, PopulationStationaryUnderChurn) {
  const graph::Graph g = TestGraph();
  WorkerRegistryOptions options;
  options.num_workers = 200;
  options.churn_probability = 0.1;
  WorkerRegistry registry(g, options, 7);
  for (int step = 0; step < 20; ++step) registry.AdvanceSlot();
  EXPECT_EQ(registry.num_workers(), 200);
  EXPECT_EQ(registry.current_slot_offset(), 20);
}

TEST(WorkerRegistryTest, WorkersActuallyMove) {
  const graph::Graph g = TestGraph();
  WorkerRegistryOptions options;
  options.num_workers = 100;
  options.churn_probability = 0.0;
  options.move_probability = 1.0;
  WorkerRegistry registry(g, options, 9);
  std::vector<graph::RoadId> before;
  for (const auto& w : registry.workers()) before.push_back(w.road);
  registry.AdvanceSlot();
  int moved = 0;
  for (int i = 0; i < 100; ++i) {
    const graph::RoadId now = registry.workers()[static_cast<size_t>(i)].road;
    if (now != before[static_cast<size_t>(i)]) {
      // Must have moved along an edge.
      EXPECT_TRUE(g.AreAdjacent(before[static_cast<size_t>(i)], now));
      ++moved;
    }
  }
  EXPECT_GT(moved, 80);  // move_probability = 1, only isolated roads stay
}

TEST(WorkerRegistryTest, MoveProbabilityZeroFreezesLocations) {
  const graph::Graph g = TestGraph();
  WorkerRegistryOptions options;
  options.num_workers = 50;
  options.churn_probability = 0.0;
  options.move_probability = 0.0;
  WorkerRegistry registry(g, options, 11);
  std::vector<graph::RoadId> before;
  for (const auto& w : registry.workers()) before.push_back(w.road);
  registry.AdvanceSlot();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(registry.workers()[static_cast<size_t>(i)].road,
              before[static_cast<size_t>(i)]);
  }
}

TEST(WorkerRegistryTest, ChurnAssignsFreshIds) {
  const graph::Graph g = TestGraph();
  WorkerRegistryOptions options;
  options.num_workers = 100;
  options.churn_probability = 0.5;
  WorkerRegistry registry(g, options, 13);
  std::set<crowd::WorkerId> before;
  for (const auto& w : registry.workers()) before.insert(w.id);
  registry.AdvanceSlot();
  int fresh = 0;
  for (const auto& w : registry.workers()) {
    if (before.count(w.id) == 0) ++fresh;
  }
  EXPECT_GT(fresh, 20);
  EXPECT_LT(fresh, 80);
}

TEST(WorkerRegistryTest, StaffableRoadsRespectQuotas) {
  const graph::Graph g = TestGraph();
  WorkerRegistryOptions options;
  options.num_workers = 300;
  WorkerRegistry registry(g, options, 21);
  // With unit costs, staffable == covered.
  const crowd::CostModel unit =
      crowd::CostModel::Constant(g.num_roads(), 1);
  EXPECT_EQ(registry.StaffableRoads(unit), registry.CoveredRoads());
  // With an impossible quota nothing is staffable.
  const crowd::CostModel huge =
      crowd::CostModel::Constant(g.num_roads(), 1000);
  EXPECT_TRUE(registry.StaffableRoads(huge).empty());
  // Every staffable road really has the required head-count.
  const crowd::CostModel quota =
      crowd::CostModel::Constant(g.num_roads(), 4);
  for (graph::RoadId r : registry.StaffableRoads(quota)) {
    EXPECT_GE(registry.CountOn(r), 4);
  }
}

TEST(WorkerRegistryTest, CoveredRoadsReflectsPlacement) {
  const graph::Graph g = TestGraph();
  WorkerRegistryOptions options;
  options.num_workers = 1000;
  WorkerRegistry registry(g, options, 15);
  const auto covered = registry.CoveredRoads();
  EXPECT_TRUE(std::is_sorted(covered.begin(), covered.end()));
  // 1000 workers over 80 roads: essentially everything covered.
  EXPECT_GT(covered.size(), 70u);
  int total = 0;
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    total += registry.CountOn(r);
  }
  EXPECT_EQ(total, 1000);
  // Thresholded coverage shrinks.
  EXPECT_LE(registry.CoveredRoads(20).size(), covered.size());
}

}  // namespace
}  // namespace crowdrtse::server
