#include "rtf/correlation_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "graph/generators.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace crowdrtse::rtf {
namespace {

TEST(CorrelationTableTest, AdjacentEqualsEdgeRho) {
  const graph::Graph g = *graph::PathNetwork(3);
  const auto table =
      CorrelationTable::FromEdgeCorrelations(g, {0.8, 0.5});
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(table->Corr(0, 1), 0.8, 1e-12);
  EXPECT_NEAR(table->Corr(1, 2), 0.5, 1e-12);
}

TEST(CorrelationTableTest, NonAdjacentIsPathProduct) {
  const graph::Graph g = *graph::PathNetwork(4);
  const auto table =
      CorrelationTable::FromEdgeCorrelations(g, {0.8, 0.5, 0.9});
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(table->Corr(0, 2), 0.4, 1e-12);
  EXPECT_NEAR(table->Corr(0, 3), 0.8 * 0.5 * 0.9, 1e-12);
}

TEST(CorrelationTableTest, PicksMaxProductPath) {
  // Triangle: direct edge 0-2 weak (0.3); path 0-1-2 gives 0.9*0.9=0.81.
  graph::GraphBuilder builder(3);
  builder.AddEdge(0, 1);  // e0
  builder.AddEdge(1, 2);  // e1
  builder.AddEdge(0, 2);  // e2
  const graph::Graph g = *builder.Build();
  const auto table =
      CorrelationTable::FromEdgeCorrelations(g, {0.9, 0.9, 0.3});
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(table->Corr(0, 2), 0.81, 1e-12);
}

TEST(CorrelationTableTest, DiagonalOneAndSymmetric) {
  util::Rng rng(5);
  graph::RoadNetworkOptions options;
  options.num_roads = 50;
  const graph::Graph g = *graph::RoadNetwork(options, rng);
  std::vector<double> rho(static_cast<size_t>(g.num_edges()));
  for (double& r : rho) r = rng.UniformDouble(0.2, 0.95);
  const auto table = CorrelationTable::FromEdgeCorrelations(g, rho);
  ASSERT_TRUE(table.ok());
  for (graph::RoadId i = 0; i < g.num_roads(); ++i) {
    EXPECT_DOUBLE_EQ(table->Corr(i, i), 1.0);
    for (graph::RoadId j = 0; j < i; ++j) {
      EXPECT_NEAR(table->Corr(i, j), table->Corr(j, i), 1e-9);
    }
  }
}

TEST(CorrelationTableTest, ValuesBoundedByOne) {
  util::Rng rng(6);
  graph::RoadNetworkOptions options;
  options.num_roads = 40;
  const graph::Graph g = *graph::RoadNetwork(options, rng);
  std::vector<double> rho(static_cast<size_t>(g.num_edges()));
  for (double& r : rho) r = rng.UniformDouble(0.5, 1.0);
  const auto table = CorrelationTable::FromEdgeCorrelations(g, rho);
  ASSERT_TRUE(table.ok());
  for (graph::RoadId i = 0; i < g.num_roads(); ++i) {
    for (graph::RoadId j = 0; j < g.num_roads(); ++j) {
      EXPECT_LE(table->Corr(i, j), 1.0 + 1e-12);
      EXPECT_GE(table->Corr(i, j), 0.0);
    }
  }
}

TEST(CorrelationTableTest, DisconnectedRoadsZero) {
  graph::GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 3);
  const graph::Graph g = *builder.Build();
  const auto table = CorrelationTable::FromEdgeCorrelations(g, {0.9, 0.9});
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table->Corr(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(table->Corr(1, 3), 0.0);
}

TEST(CorrelationTableTest, ZeroRhoEdgeBlocksPath) {
  const graph::Graph g = *graph::PathNetwork(3);
  const auto table = CorrelationTable::FromEdgeCorrelations(g, {0.9, 0.0});
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table->Corr(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(table->Corr(1, 2), 0.0);
}

TEST(CorrelationTableTest, RoadSetCorrIsMax) {
  const graph::Graph g = *graph::PathNetwork(4);
  const auto table =
      CorrelationTable::FromEdgeCorrelations(g, {0.8, 0.5, 0.9});
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(table->RoadSetCorr(0, {2, 3}), 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(table->RoadSetCorr(0, {}), 0.0);
  EXPECT_DOUBLE_EQ(table->RoadSetCorr(0, {0, 3}), 1.0);  // self in set
}

TEST(CorrelationTableTest, ReciprocalModeDiffersFromNegLog) {
  // The paper's 1/rho weighting is a heuristic; build a case where the two
  // reductions choose different paths. Path A: two edges of 0.6
  // (product 0.36, reciprocal sum 3.33). Path B: edges 0.9 and 0.35
  // (product 0.315, reciprocal sum 1.11 + 2.86 = 3.97).
  // NegLog picks A (0.36); reciprocal also picks A here; instead use:
  // A: 0.5, 0.5 (product 0.25, sum 4.0); B: 0.9, 0.3 (product 0.27,
  // sum 1.11 + 3.33 = 4.44). NegLog -> B (0.27); reciprocal -> A (0.25).
  graph::GraphBuilder builder(4);
  builder.AddEdge(0, 1);  // e0: A first hop
  builder.AddEdge(1, 3);  // e1: A second hop
  builder.AddEdge(0, 2);  // e2: B first hop
  builder.AddEdge(2, 3);  // e3: B second hop
  const graph::Graph g = *builder.Build();
  const std::vector<double> rho{0.5, 0.5, 0.9, 0.3};
  const auto neg_log = CorrelationTable::FromEdgeCorrelations(
      g, rho, PathWeightMode::kNegLog);
  const auto reciprocal = CorrelationTable::FromEdgeCorrelations(
      g, rho, PathWeightMode::kReciprocal);
  ASSERT_TRUE(neg_log.ok());
  ASSERT_TRUE(reciprocal.ok());
  EXPECT_NEAR(neg_log->Corr(0, 3), 0.27, 1e-12);
  EXPECT_NEAR(reciprocal->Corr(0, 3), 0.25, 1e-12);
  // NegLog always dominates: it is the true max-product closure.
  EXPECT_GE(neg_log->Corr(0, 3), reciprocal->Corr(0, 3));
}

TEST(CorrelationTableTest, ComputeFromModelUsesSlotRho) {
  const graph::Graph g = *graph::PathNetwork(3);
  RtfModel model(g, 2);
  model.SetRho(0, 0, 0.9);
  model.SetRho(0, 1, 0.8);
  model.SetRho(1, 0, 0.2);
  model.SetRho(1, 1, 0.2);
  const auto slot0 = CorrelationTable::Compute(model, 0);
  const auto slot1 = CorrelationTable::Compute(model, 1);
  ASSERT_TRUE(slot0.ok());
  ASSERT_TRUE(slot1.ok());
  EXPECT_NEAR(slot0->Corr(0, 2), 0.72, 1e-12);
  EXPECT_NEAR(slot1->Corr(0, 2), 0.04, 1e-12);
  EXPECT_FALSE(CorrelationTable::Compute(model, 5).ok());
}

TEST(CorrelationTableTest, InvalidInputsRejected) {
  const graph::Graph g = *graph::PathNetwork(3);
  EXPECT_FALSE(CorrelationTable::FromEdgeCorrelations(g, {0.5}).ok());
  EXPECT_FALSE(
      CorrelationTable::FromEdgeCorrelations(g, {0.5, 1.5}).ok());
  EXPECT_FALSE(
      CorrelationTable::FromEdgeCorrelations(g, {0.5, -0.1}).ok());
}

TEST(CorrelationTableTest, PathDominance) {
  // corr(i, k) >= corr(i, j) * corr(j, k): the best i..k path is at least
  // as good as concatenating best i..j and j..k paths.
  util::Rng rng(8);
  graph::RoadNetworkOptions options;
  options.num_roads = 30;
  const graph::Graph g = *graph::RoadNetwork(options, rng);
  std::vector<double> rho(static_cast<size_t>(g.num_edges()));
  for (double& r : rho) r = rng.UniformDouble(0.3, 0.95);
  const auto table = CorrelationTable::FromEdgeCorrelations(g, rho);
  ASSERT_TRUE(table.ok());
  for (graph::RoadId i = 0; i < 10; ++i) {
    for (graph::RoadId j = 10; j < 20; ++j) {
      for (graph::RoadId k = 20; k < 30; ++k) {
        EXPECT_GE(table->Corr(i, k) + 1e-9,
                  table->Corr(i, j) * table->Corr(j, k));
      }
    }
  }
}

TEST(CorrelationTableTest, ParallelFanoutMatchesSerial) {
  util::Rng rng(17);
  graph::RoadNetworkOptions options;
  options.num_roads = 50;
  const graph::Graph g = *graph::RoadNetwork(options, rng);
  std::vector<double> rho(static_cast<size_t>(g.num_edges()));
  for (double& r : rho) r = rng.UniformDouble(0.2, 0.99);
  const auto serial = CorrelationTable::FromEdgeCorrelations(g, rho);
  util::ThreadPool pool(4);
  const auto parallel = CorrelationTable::FromEdgeCorrelations(
      g, rho, PathWeightMode::kNegLog, &pool);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  for (graph::RoadId i = 0; i < g.num_roads(); ++i) {
    for (graph::RoadId j = 0; j < g.num_roads(); ++j) {
      EXPECT_DOUBLE_EQ(serial->Corr(i, j), parallel->Corr(i, j));
    }
  }
}

TEST(CorrelationTableTest, CheckedCorrRejectsOutOfRangeIds) {
  const graph::Graph g = *graph::PathNetwork(3);
  const auto table = CorrelationTable::FromEdgeCorrelations(g, {0.8, 0.5});
  ASSERT_TRUE(table.ok());
  const auto ok = table->CheckedCorr(0, 1);
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(*ok, table->Corr(0, 1));
  EXPECT_FALSE(table->CheckedCorr(-1, 0).ok());
  EXPECT_FALSE(table->CheckedCorr(0, 3).ok());
  EXPECT_FALSE(table->CheckedCorr(3, 3).ok());
}

TEST(CorrelationTableTest, DeserializeRejectsMismatchedFormatVersion) {
  const graph::Graph g = *graph::PathNetwork(3);
  const auto table = CorrelationTable::FromEdgeCorrelations(g, {0.8, 0.5});
  ASSERT_TRUE(table.ok());
  std::string data = table->Serialize();
  ASSERT_TRUE(CorrelationTable::Deserialize(data).ok());
  // The version field sits right after the 4-byte magic; move it past
  // every supported layout (v2 dense, v3 sparse).
  uint32_t version = 0;
  std::memcpy(&version, data.data() + 4, sizeof(version));
  version += 100;
  std::memcpy(data.data() + 4, &version, sizeof(version));
  const auto rejected = CorrelationTable::Deserialize(data);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("version"), std::string::npos);
}

TEST(CorrelationTableTest, SerializeAndSaveToFileShareOneByteLayout) {
  const graph::Graph g = *graph::PathNetwork(4);
  const auto table =
      CorrelationTable::FromEdgeCorrelations(g, {0.9, 0.8, 0.7});
  ASSERT_TRUE(table.ok());
  const std::string path =
      ::testing::TempDir() + "/gamma_layout_test.bin";
  ASSERT_TRUE(table->SaveToFile(path).ok());
  std::string file_bytes;
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buffer[4096];
    size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      file_bytes.append(buffer, n);
    }
    std::fclose(f);
  }
  EXPECT_EQ(file_bytes, table->Serialize());
  std::remove(path.c_str());
}


TEST(CorrelationTableTest, SparseMatchesDenseWithinRadiusZeroBeyond) {
  // On a path there is exactly one path per pair, so the dense closure and
  // the C-bounded closure agree within C hops; beyond, sparse is exactly 0.
  const graph::Graph g = *graph::PathNetwork(6);
  const std::vector<double> rhos = {0.9, 0.8, 0.7, 0.6, 0.5};
  const auto dense = CorrelationTable::FromEdgeCorrelations(g, rhos);
  const auto sparse = CorrelationTable::FromEdgeCorrelations(
      g, rhos, PathWeightMode::kNegLog, nullptr, 2);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(sparse.ok());
  EXPECT_EQ(sparse->hop_radius(), 2);
  for (graph::RoadId i = 0; i < 6; ++i) {
    for (graph::RoadId j = 0; j < 6; ++j) {
      if (std::abs(i - j) <= 2) {
        EXPECT_NEAR(sparse->Corr(i, j), dense->Corr(i, j), 1e-9)
            << i << "," << j;
      } else {
        EXPECT_EQ(sparse->Corr(i, j), 0.0) << i << "," << j;
        EXPECT_GT(dense->Corr(i, j), 0.0);
      }
    }
  }
}

TEST(CorrelationTableTest, SparseSerializeRoundTripsBitwise) {
  const graph::Graph g = *graph::PathNetwork(5);
  const auto table = CorrelationTable::FromEdgeCorrelations(
      g, {0.9, 0.8, 0.7, 0.6}, PathWeightMode::kNegLog, nullptr, 2);
  ASSERT_TRUE(table.ok());
  const auto loaded = CorrelationTable::Deserialize(table->Serialize());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->hop_radius(), 2);
  EXPECT_EQ(loaded->num_roads(), 5);
  for (graph::RoadId i = 0; i < 5; ++i) {
    for (graph::RoadId j = 0; j < 5; ++j) {
      EXPECT_EQ(loaded->Corr(i, j), table->Corr(i, j)) << i << "," << j;
    }
  }
}

TEST(CorrelationTableTest, SparseModeRequiresNegLogWeights) {
  const graph::Graph g = *graph::PathNetwork(3);
  const auto rejected = CorrelationTable::FromEdgeCorrelations(
      g, {0.8, 0.5}, PathWeightMode::kReciprocal, nullptr, 2);
  ASSERT_FALSE(rejected.ok());
  EXPECT_FALSE(
      CorrelationTable::FromEdgeCorrelations(g, {0.8, 0.5},
                                             PathWeightMode::kNegLog,
                                             nullptr, -1)
          .ok());
}

}  // namespace
}  // namespace crowdrtse::rtf
