// Seeded fuzz-style robustness tests: every deserializer / parser in the
// library must reject arbitrary byte soup (and mutated valid payloads)
// with a Status — never crash, never accept garbage silently.
#include <gtest/gtest.h>

#include <string>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "rtf/correlation_table.h"
#include "rtf/rtf_serialization.h"
#include "traffic/history_io.h"
#include "util/csv.h"
#include "util/rng.h"

namespace crowdrtse {
namespace {

std::string RandomBytes(util::Rng& rng, size_t length) {
  std::string bytes(length, '\0');
  for (char& c : bytes) {
    c = static_cast<char>(rng.UniformUint64(256));
  }
  return bytes;
}

/// Flips a handful of random bytes of a valid payload.
std::string Mutate(std::string payload, util::Rng& rng, int flips) {
  for (int i = 0; i < flips && !payload.empty(); ++i) {
    const size_t at = static_cast<size_t>(
        rng.UniformUint64(payload.size()));
    payload[at] = static_cast<char>(rng.UniformUint64(256));
  }
  return payload;
}

TEST(FuzzRobustnessTest, RtfModelDeserializerNeverCrashes) {
  const graph::Graph g = *graph::PathNetwork(5);
  util::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto result = rtf::RtfSerializer::Deserialize(
        g, RandomBytes(rng, 1 + rng.UniformUint64(256)));
    EXPECT_FALSE(result.ok());  // random bytes must never parse
  }
}

TEST(FuzzRobustnessTest, MutatedRtfModelRejectedOrValid) {
  const graph::Graph g = *graph::PathNetwork(6);
  rtf::RtfModel model(g, 2);
  const std::string valid = rtf::RtfSerializer::Serialize(model);
  util::Rng rng(2);
  int accepted = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto result = rtf::RtfSerializer::Deserialize(
        g, Mutate(valid, rng, 1 + static_cast<int>(rng.UniformUint64(8))));
    if (result.ok()) {
      // A mutation that survives must still satisfy the model invariants
      // (it only hit mu/sigma/rho payload bytes in a legal way).
      EXPECT_TRUE(result->Validate().ok());
      ++accepted;
    }
  }
  // Most mutations corrupt the header or invariants.
  EXPECT_LT(accepted, 150);
}

TEST(FuzzRobustnessTest, HistoryDeserializerNeverCrashes) {
  util::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const auto result = traffic::HistorySerializer::Deserialize(
        RandomBytes(rng, 1 + rng.UniformUint64(512)));
    EXPECT_FALSE(result.ok());
  }
}

TEST(FuzzRobustnessTest, CorrelationTableDeserializerNeverCrashes) {
  util::Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const auto result = rtf::CorrelationTable::Deserialize(
        RandomBytes(rng, 1 + rng.UniformUint64(256)));
    EXPECT_FALSE(result.ok());
  }
}

TEST(FuzzRobustnessTest, EdgeListParserNeverCrashes) {
  util::Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    // Printable garbage exercises the text parser more deeply.
    std::string text;
    const size_t length = 1 + rng.UniformUint64(128);
    for (size_t i = 0; i < length; ++i) {
      text.push_back(static_cast<char>(' ' + rng.UniformUint64(95)));
    }
    const auto result = graph::FromEdgeList(text);
    if (result.ok()) {
      // Whatever parsed must be structurally sound.
      EXPECT_GE(result->num_roads(), 0);
      EXPECT_GE(result->num_edges(), 0);
    }
  }
}

TEST(FuzzRobustnessTest, CsvParserNeverCrashes) {
  util::Rng rng(6);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const size_t length = 1 + rng.UniformUint64(200);
    for (size_t i = 0; i < length; ++i) {
      const int pick = static_cast<int>(rng.UniformUint64(100));
      if (pick < 10) {
        text.push_back(',');
      } else if (pick < 18) {
        text.push_back('"');
      } else if (pick < 25) {
        text.push_back('\n');
      } else {
        text.push_back(static_cast<char>(' ' + rng.UniformUint64(95)));
      }
    }
    const auto result = util::ParseCsv(text);
    if (result.ok()) {
      for (const auto& row : result->rows) {
        EXPECT_EQ(row.size(), result->header.size());
      }
    }
  }
}

TEST(FuzzRobustnessTest, RecordsCsvRejectsBadCells) {
  util::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::string csv = "day,slot,road,speed_kmh\n";
    for (int row = 0; row < 3; ++row) {
      for (int col = 0; col < 4; ++col) {
        if (col > 0) csv.push_back(',');
        // Half the cells are garbage tokens.
        if (rng.Bernoulli(0.5)) {
          csv += std::to_string(rng.UniformInt(0, 100));
        } else {
          csv += "x!";
        }
      }
      csv.push_back('\n');
    }
    const auto result = traffic::RecordsFromCsv(csv);
    if (result.ok()) {
      EXPECT_EQ(result->size(), 3u);
    }
  }
}

}  // namespace
}  // namespace crowdrtse
