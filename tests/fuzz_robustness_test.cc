// Seeded fuzz-style robustness tests: every deserializer / parser in the
// library must reject arbitrary byte soup (and mutated valid payloads)
// with a Status — never crash, never accept garbage silently.
//
// Seeding: each test derives its stream from a per-test salt XORed with a
// base seed taken from the CROWDRTSE_FUZZ_SEED environment variable (CI
// sweeps it; unset means the fixed default 0). On failure the gtest trace
// prints the exact value to export for a bit-identical local replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "crowd/cost_model.h"
#include "crowd/dispatch_controller.h"
#include "crowd/fault_plan.h"
#include "crowd/task_assignment.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "rtf/correlation_table.h"
#include "rtf/rtf_serialization.h"
#include "traffic/history_io.h"
#include "util/clock.h"
#include "util/csv.h"
#include "util/rng.h"

namespace crowdrtse {
namespace {

/// Base fuzz seed: CROWDRTSE_FUZZ_SEED when set, 0 otherwise.
uint64_t BaseFuzzSeed() {
  const char* env = std::getenv("CROWDRTSE_FUZZ_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0;
}

/// Per-test RNG seed. SCOPED_TRACE the returned value so a failing run
/// logs how to replay it.
uint64_t FuzzSeed(uint64_t salt) { return BaseFuzzSeed() ^ salt; }

#define CROWDRTSE_TRACE_SEED(seed)                                       \
  SCOPED_TRACE(::testing::Message()                                      \
               << "replay: export CROWDRTSE_FUZZ_SEED="                  \
               << (BaseFuzzSeed()) << "  (effective test seed " << (seed) \
               << ")")

std::string RandomBytes(util::Rng& rng, size_t length) {
  std::string bytes(length, '\0');
  for (char& c : bytes) {
    c = static_cast<char>(rng.UniformUint64(256));
  }
  return bytes;
}

/// Flips a handful of random bytes of a valid payload.
std::string Mutate(std::string payload, util::Rng& rng, int flips) {
  for (int i = 0; i < flips && !payload.empty(); ++i) {
    const size_t at = static_cast<size_t>(
        rng.UniformUint64(payload.size()));
    payload[at] = static_cast<char>(rng.UniformUint64(256));
  }
  return payload;
}

TEST(FuzzRobustnessTest, RtfModelDeserializerNeverCrashes) {
  const graph::Graph g = *graph::PathNetwork(5);
  const uint64_t seed = FuzzSeed(1);
  CROWDRTSE_TRACE_SEED(seed);
  util::Rng rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    const auto result = rtf::RtfSerializer::Deserialize(
        g, RandomBytes(rng, 1 + rng.UniformUint64(256)));
    EXPECT_FALSE(result.ok());  // random bytes must never parse
  }
}

TEST(FuzzRobustnessTest, MutatedRtfModelRejectedOrValid) {
  const graph::Graph g = *graph::PathNetwork(6);
  rtf::RtfModel model(g, 2);
  const std::string valid = rtf::RtfSerializer::Serialize(model);
  const uint64_t seed = FuzzSeed(2);
  CROWDRTSE_TRACE_SEED(seed);
  util::Rng rng(seed);
  int accepted = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto result = rtf::RtfSerializer::Deserialize(
        g, Mutate(valid, rng, 1 + static_cast<int>(rng.UniformUint64(8))));
    if (result.ok()) {
      // A mutation that survives must still satisfy the model invariants
      // (it only hit mu/sigma/rho payload bytes in a legal way).
      EXPECT_TRUE(result->Validate().ok());
      ++accepted;
    }
  }
  // Most mutations corrupt the header or invariants.
  EXPECT_LT(accepted, 150);
}

TEST(FuzzRobustnessTest, HistoryDeserializerNeverCrashes) {
  const uint64_t seed = FuzzSeed(3);
  CROWDRTSE_TRACE_SEED(seed);
  util::Rng rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    const auto result = traffic::HistorySerializer::Deserialize(
        RandomBytes(rng, 1 + rng.UniformUint64(512)));
    EXPECT_FALSE(result.ok());
  }
}

TEST(FuzzRobustnessTest, CorrelationTableDeserializerNeverCrashes) {
  const uint64_t seed = FuzzSeed(4);
  CROWDRTSE_TRACE_SEED(seed);
  util::Rng rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    const auto result = rtf::CorrelationTable::Deserialize(
        RandomBytes(rng, 1 + rng.UniformUint64(256)));
    EXPECT_FALSE(result.ok());
  }
}

TEST(FuzzRobustnessTest, EdgeListParserNeverCrashes) {
  const uint64_t seed = FuzzSeed(5);
  CROWDRTSE_TRACE_SEED(seed);
  util::Rng rng(seed);
  for (int trial = 0; trial < 300; ++trial) {
    // Printable garbage exercises the text parser more deeply.
    std::string text;
    const size_t length = 1 + rng.UniformUint64(128);
    for (size_t i = 0; i < length; ++i) {
      text.push_back(static_cast<char>(' ' + rng.UniformUint64(95)));
    }
    const auto result = graph::FromEdgeList(text);
    if (result.ok()) {
      // Whatever parsed must be structurally sound.
      EXPECT_GE(result->num_roads(), 0);
      EXPECT_GE(result->num_edges(), 0);
    }
  }
}

TEST(FuzzRobustnessTest, CsvParserNeverCrashes) {
  const uint64_t seed = FuzzSeed(6);
  CROWDRTSE_TRACE_SEED(seed);
  util::Rng rng(seed);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const size_t length = 1 + rng.UniformUint64(200);
    for (size_t i = 0; i < length; ++i) {
      const int pick = static_cast<int>(rng.UniformUint64(100));
      if (pick < 10) {
        text.push_back(',');
      } else if (pick < 18) {
        text.push_back('"');
      } else if (pick < 25) {
        text.push_back('\n');
      } else {
        text.push_back(static_cast<char>(' ' + rng.UniformUint64(95)));
      }
    }
    const auto result = util::ParseCsv(text);
    if (result.ok()) {
      for (const auto& row : result->rows) {
        EXPECT_EQ(row.size(), result->header.size());
      }
    }
  }
}

TEST(FuzzRobustnessTest, RecordsCsvRejectsBadCells) {
  const uint64_t seed = FuzzSeed(7);
  CROWDRTSE_TRACE_SEED(seed);
  util::Rng rng(seed);
  for (int trial = 0; trial < 100; ++trial) {
    std::string csv = "day,slot,road,speed_kmh\n";
    for (int row = 0; row < 3; ++row) {
      for (int col = 0; col < 4; ++col) {
        if (col > 0) csv.push_back(',');
        // Half the cells are garbage tokens.
        if (rng.Bernoulli(0.5)) {
          csv += std::to_string(rng.UniformInt(0, 100));
        } else {
          csv += "x!";
        }
      }
      csv.push_back('\n');
    }
    const auto result = traffic::RecordsFromCsv(csv);
    if (result.ok()) {
      EXPECT_EQ(result->size(), 3u);
    }
  }
}

// Randomized fault plans against the dispatch controller: whatever the
// drop/delay/duplicate/corrupt mix, worker population, or quota, a round
// must terminate inside its worst-case span, pay exactly the accepted
// answers, and classify every selected road as probed xor degraded.
TEST(FuzzRobustnessTest, RandomFaultPlansNeverBreakDispatchInvariants) {
  const uint64_t seed = FuzzSeed(8);
  CROWDRTSE_TRACE_SEED(seed);
  util::Rng rng(seed);
  for (int trial = 0; trial < 50; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    const int num_roads = 2 + static_cast<int>(rng.UniformUint64(6));
    const int quota = 1 + static_cast<int>(rng.UniformUint64(3));
    std::vector<crowd::Worker> workers;
    std::vector<graph::RoadId> selected;
    for (graph::RoadId r = 0; r < num_roads; ++r) {
      selected.push_back(r);
      const int staff = static_cast<int>(rng.UniformUint64(5));  // may be 0
      for (int k = 0; k < staff; ++k) {
        crowd::Worker w;
        w.id = static_cast<crowd::WorkerId>(workers.size());
        w.road = r;
        w.bias = 1.0;
        w.noise_kmh = rng.UniformDouble(0.0, 3.0);
        workers.push_back(w);
      }
    }
    crowd::FaultSpec spec;
    spec.drop_rate = rng.UniformDouble(0.0, 0.5);
    spec.delay_rate = rng.UniformDouble(0.0, 0.4);
    spec.duplicate_rate = rng.UniformDouble(0.0, 0.3);
    spec.corrupt_rate = rng.UniformDouble(0.0, 0.3);
    spec.delay_min_ms = rng.UniformDouble(1.0, 80.0);
    spec.delay_max_ms = spec.delay_min_ms + rng.UniformDouble(0.0, 300.0);
    // Corrupt values straddle the plausibility window on purpose.
    spec.corrupt_min_kmh = rng.UniformDouble(0.0, 100.0);
    spec.corrupt_max_kmh = spec.corrupt_min_kmh + rng.UniformDouble(0.0, 400.0);
    const crowd::FaultPlan faults(spec, rng.UniformUint64(1u << 30));

    crowd::DispatchOptions options;
    options.deadline_ms = rng.UniformDouble(10.0, 60.0);
    options.max_attempts = 1 + static_cast<int>(rng.UniformUint64(4));
    options.backoff_base_ms = rng.UniformDouble(1.0, 20.0);
    options.backoff_cap_ms = rng.UniformDouble(20.0, 100.0);
    options.backoff_jitter = rng.UniformDouble(0.0, 0.9);
    options.reassign_stragglers = rng.Bernoulli(0.5);
    const crowd::CostModel costs =
        crowd::CostModel::Constant(num_roads, quota);
    const auto plan = crowd::AssignTasks(selected, costs, workers);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    util::SimClock clock;
    crowd::DispatchController controller(options, &clock);
    const auto round = controller.Run(
        *plan, workers, costs, faults,
        [&](const crowd::Worker& w, graph::RoadId road) {
          crowd::SpeedAnswer answer;
          answer.worker = w.id;
          answer.road = road;
          answer.reported_kmh = 40.0 + road;
          return answer;
        });
    ASSERT_TRUE(round.ok()) << round.status().ToString();
    EXPECT_LE(round->span_ms, options.MaxRoundSpanMs() + 1e-6);
    EXPECT_EQ(round->round.total_paid, round->stats.answered);
    EXPECT_EQ(round->stats.answered + round->stats.exhausted,
              round->stats.tasks);
    std::vector<graph::RoadId> covered;
    for (const crowd::ProbeResult& p : round->round.probes) {
      covered.push_back(p.road);
    }
    for (graph::RoadId r : round->degraded_roads) covered.push_back(r);
    std::sort(covered.begin(), covered.end());
    EXPECT_EQ(covered, selected);
    for (graph::RoadId r : round->underfilled_roads) {
      EXPECT_FALSE(std::binary_search(round->degraded_roads.begin(),
                                      round->degraded_roads.end(), r));
    }
  }
}

}  // namespace
}  // namespace crowdrtse
