#include "net/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace crowdrtse::net::json {
namespace {

// ---------------------------------------------------------------------------
// Parser basics.

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->AsBool());
  EXPECT_FALSE(Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Parse("3.25")->AsDouble(), 3.25);
  EXPECT_DOUBLE_EQ(Parse("-17")->AsDouble(), -17.0);
  EXPECT_DOUBLE_EQ(Parse("1e3")->AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(Parse("0.5")->AsDouble(), 0.5);
  EXPECT_EQ(Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, NestedStructures) {
  const auto doc =
      Parse(R"({"slot": 100, "roads": [3, 17, 42], "opts": {"x": true}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(*doc->Find("slot")->AsInt(), 100);
  const auto& roads = doc->Find("roads")->AsArray();
  ASSERT_EQ(roads.size(), 3u);
  EXPECT_EQ(*roads[1].AsInt(), 17);
  EXPECT_TRUE(doc->Find("opts")->Find("x")->AsBool());
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("nul").ok());
  EXPECT_FALSE(Parse("1 2").ok());          // trailing tokens
  EXPECT_FALSE(Parse("013").ok());          // leading zero
  EXPECT_FALSE(Parse("1.").ok());           // bare fraction
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("\"bad \\q escape\"").ok());
  EXPECT_FALSE(Parse("\"raw \x01 control\"").ok());
  EXPECT_FALSE(Parse("NaN").ok());          // RFC 8259 has no NaN token
  EXPECT_FALSE(Parse("Infinity").ok());
}

TEST(JsonParseTest, DepthLimitStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_FALSE(Parse(deep).ok());
  EXPECT_TRUE(Parse(deep, 400).ok());
}

TEST(JsonParseTest, AsIntRejectsNonIntegral) {
  EXPECT_FALSE(Parse("1.5")->AsInt().ok());
  EXPECT_TRUE(Parse("1.0")->AsInt().ok());
  EXPECT_EQ(*Parse("-42")->AsInt(), -42);
}

// ---------------------------------------------------------------------------
// String escaping round-trips: what the emitters produce, the parser must
// read back byte-identically (the RFC 8259 satellite).

std::string RoundTripString(const std::string& raw) {
  const std::string doc = "\"" + util::JsonEscape(raw) + "\"";
  const auto parsed = Parse(doc);
  EXPECT_TRUE(parsed.ok()) << doc << ": " << parsed.status().ToString();
  return parsed.ok() ? parsed->AsString() : std::string();
}

TEST(JsonEscapeRoundTripTest, QuotesBackslashesAndControlChars) {
  EXPECT_EQ(RoundTripString("plain"), "plain");
  EXPECT_EQ(RoundTripString("say \"hi\""), "say \"hi\"");
  EXPECT_EQ(RoundTripString("C:\\path\\to\\file"), "C:\\path\\to\\file");
  EXPECT_EQ(RoundTripString("line1\nline2\r\ttabbed"),
            "line1\nline2\r\ttabbed");
  std::string all_controls;
  for (int c = 1; c < 0x20; ++c) all_controls.push_back(static_cast<char>(c));
  EXPECT_EQ(RoundTripString(all_controls), all_controls);
  // Embedded NUL survives too (escaped as \u0000).
  std::string with_nul("a\0b", 3);
  EXPECT_EQ(RoundTripString(with_nul), with_nul);
}

TEST(JsonEscapeRoundTripTest, ValueDumpParsesBack) {
  Value v = Value::Object();
  v.Set("message", Value::Str("a \"quoted\"\nmulti-line\\thing"));
  v.Set("count", Value::Int(42));
  v.Set("ratio", Value::Number(0.125));
  Value arr = Value::Array();
  arr.MutableArray().push_back(Value::Str("x\ty"));
  arr.MutableArray().push_back(Value::Null());
  arr.MutableArray().push_back(Value::Bool(true));
  v.Set("items", std::move(arr));

  const auto parsed = Parse(v.Dump());
  ASSERT_TRUE(parsed.ok()) << v.Dump();
  EXPECT_EQ(parsed->Find("message")->AsString(),
            "a \"quoted\"\nmulti-line\\thing");
  EXPECT_EQ(*parsed->Find("count")->AsInt(), 42);
  EXPECT_DOUBLE_EQ(parsed->Find("ratio")->AsDouble(), 0.125);
  EXPECT_EQ(parsed->Find("items")->AsArray().size(), 3u);
  // Dump of a re-parse is a fixed point (canonical form).
  EXPECT_EQ(parsed->Dump(), v.Dump());
}

TEST(JsonEscapeRoundTripTest, NonFiniteNumbersDumpAsValidJson) {
  Value v = Value::Object();
  v.Set("nan", Value::Number(std::nan("")));
  v.Set("inf", Value::Number(std::numeric_limits<double>::infinity()));
  const auto parsed = Parse(v.Dump());
  ASSERT_TRUE(parsed.ok()) << v.Dump();
}

TEST(JsonEscapeRoundTripTest, UnicodeEscapesAndSurrogatePairs) {
  EXPECT_EQ(Parse("\"\\u0041\"")->AsString(), "A");
  EXPECT_EQ(Parse("\"\\u00e9\"")->AsString(), "\xC3\xA9");        // é
  EXPECT_EQ(Parse("\"\\u20ac\"")->AsString(), "\xE2\x82\xAC");    // €
  // U+1F600 as a surrogate pair.
  EXPECT_EQ(Parse("\"\\ud83d\\ude00\"")->AsString(),
            "\xF0\x9F\x98\x80");
  EXPECT_FALSE(Parse("\"\\ud83d\"").ok());         // unpaired high
  EXPECT_FALSE(Parse("\"\\ude00\"").ok());         // unpaired low
  EXPECT_FALSE(Parse("\"\\ud83d\\u0041\"").ok());  // bad low half
}

// ---------------------------------------------------------------------------
// The process's real emitters round-trip through the parser.

TEST(EmitterRoundTripTest, StructuredLogRecordsAreValidJson) {
  const std::string hostile =
      "path \"C:\\logs\"\nsecond line\twith\ttabs and \x01 control";
  const std::string record = util::FormatLogRecord(
      util::LogFormat::kJson, util::LogLevel::kWarning,
      "dir/some file \"x\".cc", 42, hostile);
  const auto parsed = Parse(record);
  ASSERT_TRUE(parsed.ok()) << record << ": " << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("msg")->AsString(), hostile);
  EXPECT_EQ(parsed->Find("severity")->AsString(), "WARN");
  EXPECT_EQ(*parsed->Find("line")->AsInt(), 42);
}

TEST(EmitterRoundTripTest, MetricsRegistryJsonIsValid) {
  util::metrics::MetricsRegistry registry;
  registry.GetCounter("requests_total", "how many").Increment(7);
  registry.GetGauge("queue \"depth\"\nnow", "hostile name").Set(-3);
  auto& histogram = registry.GetHistogram("latency_ms", "latencies");
  histogram.Record(1.5);
  histogram.Record(std::numeric_limits<double>::infinity());
  histogram.Record(std::nan(""));
  registry.RegisterCallbackGauge("live_value", "from a callback",
                                 [] { return int64_t{11}; });

  const std::string rendered = registry.RenderJson();
  const auto parsed = Parse(rendered);
  ASSERT_TRUE(parsed.ok()) << rendered << ": " << parsed.status().ToString();
  EXPECT_EQ(*parsed->Find("requests_total")->AsInt(), 7);
  EXPECT_EQ(*parsed->Find("queue \"depth\"\nnow")->AsInt(), -3);
  EXPECT_EQ(*parsed->Find("live_value")->AsInt(), 11);
  EXPECT_EQ(*parsed->Find("latency_ms")->Find("count")->AsInt(), 3);
}

TEST(EmitterRoundTripTest, PrometheusHelpTextIsEscaped) {
  util::metrics::MetricsRegistry registry;
  registry.GetCounter("evil_total", "first line\nsecond \\ line")
      .Increment();
  const std::string rendered = registry.RenderPrometheus();
  // The newline must arrive as the two characters '\' 'n', never a real
  // line break (which would split the exposition mid-record).
  EXPECT_NE(rendered.find("# HELP evil_total first line\\nsecond \\\\ line"),
            std::string::npos)
      << rendered;
  for (size_t pos = rendered.find('\n'); pos != std::string::npos;
       pos = rendered.find('\n', pos + 1)) {
    if (pos + 1 < rendered.size()) {
      // Every line starts a fresh record: a comment, a sample, or the end.
      const char next = rendered[pos + 1];
      EXPECT_TRUE(next == '#' || next == 'e') << rendered;
    }
  }
}

}  // namespace
}  // namespace crowdrtse::net::json
