#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/connected_components.h"
#include "graph/graph_io.h"
#include "util/rng.h"

namespace crowdrtse::graph {
namespace {

TEST(GridNetworkTest, SizesAndDegrees) {
  const auto g = GridNetwork(3, 4);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_roads(), 12);
  // Edges: 3*3 horizontal + 2*4 vertical = 17.
  EXPECT_EQ(g->num_edges(), 17);
  EXPECT_EQ(g->Degree(0), 2);   // corner
  EXPECT_EQ(g->Degree(1), 3);   // edge
  EXPECT_EQ(g->Degree(5), 4);   // interior
}

TEST(GridNetworkTest, RejectsBadDimensions) {
  EXPECT_FALSE(GridNetwork(0, 5).ok());
  EXPECT_FALSE(GridNetwork(3, -1).ok());
}

TEST(RingNetworkTest, EveryRoadDegreeTwo) {
  const auto g = RingNetwork(9);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 9);
  for (RoadId r = 0; r < 9; ++r) EXPECT_EQ(g->Degree(r), 2);
}

TEST(RingNetworkTest, RejectsTooSmall) {
  EXPECT_FALSE(RingNetwork(2).ok());
}

TEST(PathNetworkTest, EndpointsDegreeOne) {
  const auto g = PathNetwork(6);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->Degree(0), 1);
  EXPECT_EQ(g->Degree(5), 1);
  EXPECT_EQ(g->Degree(3), 2);
}

TEST(ScaleFreeTest, ConnectedWithExpectedEdgeCount) {
  util::Rng rng(5);
  const auto g = ScaleFreeNetwork(100, 2, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_roads(), 100);
  const Components c = FindConnectedComponents(*g);
  EXPECT_EQ(c.Count(), 1);
  // Seed clique of 3 roads (3 edges) + 97 roads x 2 edges.
  EXPECT_EQ(g->num_edges(), 3 + 97 * 2);
}

TEST(ScaleFreeTest, HubsEmerge) {
  util::Rng rng(8);
  const auto g = ScaleFreeNetwork(300, 2, rng);
  ASSERT_TRUE(g.ok());
  int max_degree = 0;
  for (RoadId r = 0; r < g->num_roads(); ++r) {
    max_degree = std::max(max_degree, g->Degree(r));
  }
  EXPECT_GT(max_degree, 10);  // preferential attachment grows hubs
}

TEST(ScaleFreeTest, RejectsBadParameters) {
  util::Rng rng(1);
  EXPECT_FALSE(ScaleFreeNetwork(1, 1, rng).ok());
  EXPECT_FALSE(ScaleFreeNetwork(10, 0, rng).ok());
  EXPECT_FALSE(ScaleFreeNetwork(10, 10, rng).ok());
}

TEST(RoadNetworkTest, ConnectedAndSparse) {
  util::Rng rng(42);
  RoadNetworkOptions options;
  options.num_roads = 607;
  const auto g = RoadNetwork(options, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_roads(), 607);
  const Components c = FindConnectedComponents(*g);
  EXPECT_EQ(c.Count(), 1);
  const double avg_degree =
      2.0 * g->num_edges() / static_cast<double>(g->num_roads());
  EXPECT_GT(avg_degree, 2.0);
  EXPECT_LT(avg_degree, 6.0);  // urban-road sparsity
}

TEST(RoadNetworkTest, DeterministicForSeed) {
  RoadNetworkOptions options;
  options.num_roads = 60;
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  const auto ga = RoadNetwork(options, rng_a);
  const auto gb = RoadNetwork(options, rng_b);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  EXPECT_EQ(ga->num_edges(), gb->num_edges());
}

TEST(RoadNetworkTest, RejectsBadOptions) {
  util::Rng rng(1);
  RoadNetworkOptions options;
  options.num_roads = 1;
  EXPECT_FALSE(RoadNetwork(options, rng).ok());
  options.num_roads = 10;
  options.neighbors_per_road = 0;
  EXPECT_FALSE(RoadNetwork(options, rng).ok());
}

TEST(InducedSubgraphTest, KeepsInternalEdges) {
  const Graph g = *GridNetwork(3, 3);
  // Take the top-left 2x2 block: roads 0,1,3,4.
  const auto sub = InducedSubgraph(g, {0, 1, 3, 4});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->graph.num_roads(), 4);
  EXPECT_EQ(sub->graph.num_edges(), 4);  // the 2x2 square
  EXPECT_EQ(sub->original_ids, (std::vector<RoadId>{0, 1, 3, 4}));
}

TEST(InducedSubgraphTest, RejectsDuplicatesAndOutOfRange) {
  const Graph g = *PathNetwork(4);
  EXPECT_FALSE(InducedSubgraph(g, {0, 0}).ok());
  EXPECT_FALSE(InducedSubgraph(g, {0, 9}).ok());
}


TEST(MetroNetworkTest, BuildsConnectedUrbanSparseGrid) {
  MetroNetworkOptions options;
  options.num_roads = 5000;
  std::vector<std::pair<double, double>> positions;
  const auto g = MetroNetwork(options, &positions);
  ASSERT_TRUE(g.ok());
  // Actual count is the nearest rows*cols grid around the target.
  EXPECT_GE(g->num_roads(), 4000);
  EXPECT_LE(g->num_roads(), 6000);
  ASSERT_EQ(positions.size(), static_cast<size_t>(g->num_roads()));
  for (const auto& [x, y] : positions) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
  }
  EXPECT_EQ(FindConnectedComponents(*g).Count(), 1);
  const double avg_degree =
      2.0 * g->num_edges() / static_cast<double>(g->num_roads());
  EXPECT_GT(avg_degree, 3.0);
  EXPECT_LT(avg_degree, 6.0);
}

TEST(MetroNetworkTest, DeterministicAndScalesDown) {
  MetroNetworkOptions options;
  options.num_roads = 1200;
  const auto a = MetroNetwork(options);
  const auto b = MetroNetwork(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(EdgeListChecksum(*a), EdgeListChecksum(*b));

  MetroNetworkOptions plain = options;
  plain.arterial_spacing = 0;
  plain.num_ring_roads = 0;
  const auto grid = MetroNetwork(plain);
  ASSERT_TRUE(grid.ok());
  // Arterials and rings only ever add edges.
  EXPECT_GT(a->num_edges(), grid->num_edges());
}

}  // namespace
}  // namespace crowdrtse::graph
