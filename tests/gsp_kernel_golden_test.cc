#include "gsp/propagation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "graph/generators.h"
#include "rtf/rtf_model.h"
#include "util/rng.h"

namespace crowdrtse::gsp {
namespace {

/// Golden equivalence contract of the sweep kernels (see GspKernel):
///  - kScalar is bit-identical to kReference (same operations, same order,
///    inverses precomputed instead of re-derived);
///  - kUnrolled / kAvx2 reassociate only the numerator's neighbour fold,
///    within a documented 1e-12 relative tolerance, and degrade to the
///    exact scalar arithmetic on rows of degree < 4.

/// Irregular planar-ish network with parameters varied per road/edge, so a
/// kernel that misindexes the SoA or packed arrays cannot luck into the
/// right answer (every road's parameters differ).
rtf::RtfModel VariedModel(const graph::Graph& g) {
  rtf::RtfModel model(g, 1);
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    model.SetMu(0, r, 30.0 + 40.0 * ((r * 29) % 97) / 97.0);
    model.SetSigma(0, r, 2.0 + 3.0 * ((r * 13) % 11) / 11.0);
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    model.SetRho(0, e, 0.2 + 0.7 * ((e * 17) % 23) / 23.0);
  }
  return model;
}

graph::Graph TestNetwork(int num_roads) {
  util::Rng rng(11);
  graph::RoadNetworkOptions net;
  net.num_roads = num_roads;
  return *graph::RoadNetwork(net, rng);
}

/// Runs a fixed number of sweeps (epsilon too small to ever converge), so
/// every kernel performs exactly the same relaxations and the final fields
/// are comparable sweep for sweep.
GspResult RunKernel(const rtf::RtfModel& model, GspKernel kernel,
              int num_threads = 1) {
  GspOptions options;
  options.kernel = kernel;
  options.epsilon = 1e-300;
  options.max_sweeps = 12;
  options.num_threads = num_threads;
  const SpeedPropagator propagator(model, options);
  std::vector<graph::RoadId> sampled;
  std::vector<double> speeds;
  for (graph::RoadId r = 0; r < model.num_roads(); r += 37) {
    sampled.push_back(r);
    speeds.push_back(model.Mu(0, r) - 7.5);
  }
  const auto result = propagator.Propagate(0, sampled, speeds);
  EXPECT_TRUE(result.ok()) << result.status().message();
  return *result;
}

void ExpectBitIdentical(const GspResult& got, const GspResult& want) {
  ASSERT_EQ(got.speeds.size(), want.speeds.size());
  for (size_t i = 0; i < want.speeds.size(); ++i) {
    EXPECT_EQ(got.speeds[i], want.speeds[i]) << "road " << i;
  }
}

void ExpectWithinRelative(const GspResult& got, const GspResult& want,
                          double tolerance) {
  ASSERT_EQ(got.speeds.size(), want.speeds.size());
  for (size_t i = 0; i < want.speeds.size(); ++i) {
    const double scale = std::max(1.0, std::fabs(want.speeds[i]));
    EXPECT_NEAR(got.speeds[i], want.speeds[i], tolerance * scale)
        << "road " << i;
  }
}

TEST(GspKernelGoldenTest, ScalarBitIdenticalToReference) {
  const graph::Graph g = TestNetwork(431);
  const rtf::RtfModel model = VariedModel(g);
  ExpectBitIdentical(RunKernel(model, GspKernel::kScalar),
                     RunKernel(model, GspKernel::kReference));
}

TEST(GspKernelGoldenTest, UnrolledWithinToleranceOfScalar) {
  const graph::Graph g = TestNetwork(431);
  const rtf::RtfModel model = VariedModel(g);
  ExpectWithinRelative(RunKernel(model, GspKernel::kUnrolled),
                       RunKernel(model, GspKernel::kScalar), 1e-12);
}

TEST(GspKernelGoldenTest, Avx2WithinToleranceOfScalar) {
  if (!SpeedPropagator::Avx2Supported()) {
    GTEST_SKIP() << "host has no AVX2";
  }
  const graph::Graph g = TestNetwork(431);
  const rtf::RtfModel model = VariedModel(g);
  ExpectWithinRelative(RunKernel(model, GspKernel::kAvx2),
                       RunKernel(model, GspKernel::kScalar), 1e-12);
}

TEST(GspKernelGoldenTest, LowDegreeRowsStayBitIdentical) {
  // Path graph: every degree is <= 2 < 4, so the vector kernels must take
  // the exact scalar path on every row and match bit for bit.
  const graph::Graph g = *graph::PathNetwork(64);
  const rtf::RtfModel model = VariedModel(g);
  const GspResult reference = RunKernel(model, GspKernel::kReference);
  ExpectBitIdentical(RunKernel(model, GspKernel::kScalar), reference);
  ExpectBitIdentical(RunKernel(model, GspKernel::kUnrolled), reference);
  if (SpeedPropagator::Avx2Supported()) {
    ExpectBitIdentical(RunKernel(model, GspKernel::kAvx2), reference);
  }
}

TEST(GspKernelGoldenTest, AutoResolvesToAVectorKernel) {
  const GspKernel resolved = SpeedPropagator::ResolveKernel(GspKernel::kAuto);
  if (SpeedPropagator::Avx2Supported()) {
    EXPECT_EQ(resolved, GspKernel::kAvx2);
  } else {
    EXPECT_EQ(resolved, GspKernel::kUnrolled);
  }
  // An explicit AVX2 request on a non-AVX2 host degrades to kUnrolled.
  EXPECT_EQ(SpeedPropagator::ResolveKernel(GspKernel::kAvx2), resolved);
  EXPECT_EQ(SpeedPropagator::ResolveKernel(GspKernel::kScalar),
            GspKernel::kScalar);
  EXPECT_EQ(SpeedPropagator::ResolveKernel(GspKernel::kReference),
            GspKernel::kReference);
}

TEST(GspKernelGoldenTest, DegenerateSigmaIsClampedNotPropagated) {
  // Regression for the NaN-poisoning bug: an unguarded 1/sigma^2 turns a
  // degenerate parameter into inf/NaN and poisons every speed downstream
  // of it. Every kernel must clamp instead, keep the whole field finite,
  // and agree with the reference exactly (the clamp is part of the shared
  // arithmetic, not a per-kernel patch).
  const graph::Graph g = TestNetwork(431);
  for (const double bad :
       {0.0, std::numeric_limits<double>::quiet_NaN()}) {
    rtf::RtfModel model = VariedModel(g);
    model.SetSigma(0, 17, bad);
    const uint64_t clamps_before = rtf::InvVarianceClampCount();
    const GspResult reference = RunKernel(model, GspKernel::kReference);
    EXPECT_GT(rtf::InvVarianceClampCount(), clamps_before);
    for (const double speed : reference.speeds) {
      ASSERT_TRUE(std::isfinite(speed)) << "bad sigma " << bad;
    }
    ExpectBitIdentical(RunKernel(model, GspKernel::kScalar), reference);
    for (const double speed : RunKernel(model, GspKernel::kUnrolled).speeds) {
      ASSERT_TRUE(std::isfinite(speed));
    }
    if (SpeedPropagator::Avx2Supported()) {
      for (const double speed : RunKernel(model, GspKernel::kAvx2).speeds) {
        ASSERT_TRUE(std::isfinite(speed));
      }
    }
  }
}

TEST(GspKernelGoldenTest, ColoringBuiltOncePerPropagator) {
  // Regression for the per-query recolouring bug: the colouring depends
  // only on the (immutable) graph, so however many parallel queries run,
  // it is computed exactly once per propagator.
  const graph::Graph g = TestNetwork(431);
  const rtf::RtfModel model = VariedModel(g);
  GspOptions options;
  options.num_threads = 4;
  options.epsilon = 1e-8;
  const SpeedPropagator propagator(model, options);
  EXPECT_EQ(propagator.coloring_builds(), 0u);
  for (int q = 0; q < 3; ++q) {
    const graph::RoadId probe = static_cast<graph::RoadId>(10 + 50 * q);
    const auto result = propagator.Propagate(0, {probe}, {25.0});
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result->speeds[static_cast<size_t>(probe)], 25.0);
  }
  EXPECT_EQ(propagator.coloring_builds(), 1u);
}

TEST(GspKernelGoldenTest, ParallelAgreesWithSequentialFixpoint) {
  // Parallel sweeps relax the same levels in a different intra-level order,
  // so intermediate fields differ; run to convergence and both must land on
  // the (unique, strictly convex) fixpoint within the sweep tolerance.
  const graph::Graph g = TestNetwork(431);
  const rtf::RtfModel model = VariedModel(g);
  GspOptions options;
  options.epsilon = 1e-10;
  options.max_sweeps = 2000;
  const SpeedPropagator sequential(model, options);
  options.num_threads = 4;
  const SpeedPropagator parallel(model, options);
  const auto want = sequential.Propagate(0, {3, 99, 217}, {20.0, 60.0, 40.0});
  const auto got = parallel.Propagate(0, {3, 99, 217}, {20.0, 60.0, 40.0});
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(want->converged);
  EXPECT_TRUE(got->converged);
  for (size_t i = 0; i < want->speeds.size(); ++i) {
    EXPECT_NEAR(got->speeds[i], want->speeds[i], 1e-8) << "road " << i;
  }
}

}  // namespace
}  // namespace crowdrtse::gsp
