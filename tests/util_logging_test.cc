#include "util/logging.h"

#include <gtest/gtest.h>

namespace crowdrtse::util {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, NonFatalLevelsDoNotAbort) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // suppress output below error
  LogMessage(LogLevel::kDebug, __FILE__, __LINE__, "suppressed");
  LogMessage(LogLevel::kInfo, __FILE__, __LINE__, "suppressed");
  LogMessage(LogLevel::kWarning, __FILE__, __LINE__, "suppressed");
  LogMessage(LogLevel::kError, __FILE__, __LINE__, "printed to stderr");
  SetLogLevel(original);
  SUCCEED();
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(
      LogMessage(LogLevel::kFatal, __FILE__, __LINE__, "fatal message"),
      "fatal message");
}

TEST(LoggingDeathTest, CheckMacroAbortsOnFalse) {
  EXPECT_DEATH(CROWDRTSE_CHECK(1 == 2), "check failed");
  CROWDRTSE_CHECK(1 == 1);  // no abort on truth
}

}  // namespace
}  // namespace crowdrtse::util
