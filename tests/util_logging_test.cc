#include "util/logging.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/clock.h"
#include "util/trace.h"

namespace crowdrtse::util {
namespace {

/// Reads everything written to `file` so far (rewinds first).
std::string Slurp(std::FILE* file) {
  std::fflush(file);
  std::rewind(file);
  std::string content;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, n);
  }
  return content;
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, FormatRoundTrip) {
  const LogFormat original = GetLogFormat();
  SetLogFormat(LogFormat::kJson);
  EXPECT_EQ(GetLogFormat(), LogFormat::kJson);
  SetLogFormat(LogFormat::kText);
  EXPECT_EQ(GetLogFormat(), LogFormat::kText);
  SetLogFormat(original);
}

TEST(LoggingTest, NonFatalLevelsDoNotAbort) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // suppress output below error
  LogMessage(LogLevel::kDebug, __FILE__, __LINE__, "suppressed");
  LogMessage(LogLevel::kInfo, __FILE__, __LINE__, "suppressed");
  LogMessage(LogLevel::kWarning, __FILE__, __LINE__, "suppressed");
  LogMessage(LogLevel::kError, __FILE__, __LINE__, "printed to stderr");
  SetLogLevel(original);
  SUCCEED();
}

TEST(LoggingTest, TextRecordKeepsHistoricalShape) {
  const std::string record =
      FormatLogRecord(LogFormat::kText, LogLevel::kWarning, "engine.cc", 42,
                      "slow query");
  EXPECT_NE(record.find("[WARN]"), std::string::npos);
  EXPECT_NE(record.find("engine.cc:42"), std::string::npos);
  EXPECT_NE(record.find("slow query"), std::string::npos);
}

TEST(LoggingTest, JsonRecordCarriesStructuredFields) {
  const std::string record = FormatLogRecord(
      LogFormat::kJson, LogLevel::kInfo, "engine.cc", 7, "he said \"hi\"");
  EXPECT_EQ(record.front(), '{');
  EXPECT_NE(record.find("\"ts_us\":"), std::string::npos);
  EXPECT_NE(record.find("\"severity\":\"INFO\""), std::string::npos);
  EXPECT_NE(record.find("\"thread\":"), std::string::npos);
  EXPECT_NE(record.find("\"file\":\"engine.cc\""), std::string::npos);
  EXPECT_NE(record.find("\"line\":7"), std::string::npos);
  // The message arrives JSON-escaped.
  EXPECT_NE(record.find("he said \\\"hi\\\""), std::string::npos);
  // Outside any traced query the record says query_id 0.
  EXPECT_NE(record.find("\"query_id\":0"), std::string::npos);
}

TEST(LoggingTest, JsonRecordStampsActiveTraceQueryId) {
  SimClock clock;
  trace::Trace traced(/*query_id=*/314, &clock);
  trace::ScopedTrace scoped(&traced);
  const std::string record = FormatLogRecord(
      LogFormat::kJson, LogLevel::kInfo, "engine.cc", 1, "inside serve");
  EXPECT_NE(record.find("\"query_id\":314"), std::string::npos);
}

TEST(LoggingTest, ConcurrentWritersNeverInterleave) {
  // The regression this suite exists for: before the writer mutex, two
  // threads logging at once could interleave fragments mid-line. Point the
  // log at a tmpfile, hammer it from several threads, then require every
  // line to be exactly one intact record. Runs under TSan in CI.
  std::FILE* capture = std::tmpfile();
  ASSERT_NE(capture, nullptr);
  const LogLevel original_level = GetLogLevel();
  const LogFormat original_format = GetLogFormat();
  SetLogLevel(LogLevel::kInfo);
  SetLogFormat(LogFormat::kJson);
  SetLogStream(capture);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        CROWDRTSE_LOG(Info, "writer " + std::to_string(t) + " message " +
                                std::to_string(i) + " padding-padding");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  SetLogStream(nullptr);
  SetLogFormat(original_format);
  SetLogLevel(original_level);

  const std::vector<std::string> lines = Lines(Slurp(capture));
  std::fclose(capture);
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads * kPerThread));
  std::set<std::string> seen;
  for (const std::string& line : lines) {
    // Each line is one complete JSON record: starts with the object,
    // carries exactly one msg field, ends with the closing brace.
    EXPECT_EQ(line.find("{\"ts_us\":"), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
    const size_t first_msg = line.find("\"msg\":");
    ASSERT_NE(first_msg, std::string::npos) << line;
    EXPECT_EQ(line.find("\"msg\":", first_msg + 1), std::string::npos)
        << line;
    seen.insert(line.substr(line.find("writer ")));
  }
  // No record was lost or duplicated into another.
  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(
      LogMessage(LogLevel::kFatal, __FILE__, __LINE__, "fatal message"),
      "fatal message");
}

TEST(LoggingDeathTest, CheckMacroAbortsOnFalse) {
  EXPECT_DEATH(CROWDRTSE_CHECK(1 == 2), "check failed");
  CROWDRTSE_CHECK(1 == 1);  // no abort on truth
}

}  // namespace
}  // namespace crowdrtse::util
