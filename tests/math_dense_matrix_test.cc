#include "math/dense_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crowdrtse::math {
namespace {

TEST(DenseMatrixTest, ConstructionAndAccess) {
  DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.At(0, 1), 7.0);
}

TEST(DenseMatrixTest, MatVec) {
  DenseMatrix m(2, 3);
  // [1 2 3; 4 5 6] * [1 1 1]^T = [6 15]^T
  double v = 1;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) m.At(r, c) = v++;
  }
  EXPECT_EQ(m.Multiply(std::vector<double>{1, 1, 1}), (std::vector<double>{6, 15}));
}

TEST(DenseMatrixTest, MatVecTransposed) {
  DenseMatrix m(2, 3);
  double v = 1;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) m.At(r, c) = v++;
  }
  // A^T [1 1]^T = column sums = [5 7 9].
  EXPECT_EQ(m.MultiplyTransposed(std::vector<double>{1, 1}), (std::vector<double>{5, 7, 9}));
}

TEST(DenseMatrixTest, MatMul) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  DenseMatrix b(2, 2);
  b.At(0, 0) = 5;
  b.At(0, 1) = 6;
  b.At(1, 0) = 7;
  b.At(1, 1) = 8;
  const DenseMatrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50);
}

TEST(DenseMatrixTest, Transposed) {
  DenseMatrix m(2, 3);
  m.At(0, 2) = 9;
  const DenseMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 9);
}

TEST(DenseMatrixTest, GramMatchesExplicitProduct) {
  DenseMatrix m(3, 2);
  double v = 1;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 2; ++c) m.At(r, c) = v++;
  }
  const DenseMatrix gram = m.Gram();
  const DenseMatrix expected = m.Transposed().Multiply(m);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(gram.At(r, c), expected.At(r, c));
    }
  }
  // Symmetry.
  EXPECT_DOUBLE_EQ(gram.At(0, 1), gram.At(1, 0));
}

TEST(DenseMatrixTest, Identity) {
  const DenseMatrix id = DenseMatrix::Identity(3);
  EXPECT_DOUBLE_EQ(id.At(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id.At(0, 2), 0.0);
}

TEST(DenseMatrixTest, FrobeniusNorm) {
  DenseMatrix m(1, 2);
  m.At(0, 0) = 3;
  m.At(0, 1) = 4;
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

}  // namespace
}  // namespace crowdrtse::math
