#include "server/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace crowdrtse::server {
namespace {

AdmissionOptions SmallLadder() {
  AdmissionOptions options;
  options.capacity = 4;
  options.shed_low_watermark = 2;
  options.hard_capacity = 8;
  options.level1_budget_cap = 5;
  return options;
}

// Tasks are not run (no worker), so queue depth equals admitted count —
// each watermark boundary is observable exactly.
TEST(AdmissionQueueTest, LadderBoundariesAreExact) {
  AdmissionQueue queue(SmallLadder());
  const auto admit = [&] { return queue.Admit([](ShedLevel) {}); };

  EXPECT_EQ(admit(), ShedLevel::kNone);            // depth 0
  EXPECT_EQ(admit(), ShedLevel::kNone);            // depth 1
  EXPECT_EQ(admit(), ShedLevel::kBudgetCap);       // depth 2 == shed_low
  EXPECT_EQ(admit(), ShedLevel::kBudgetCap);       // depth 3
  EXPECT_EQ(admit(), ShedLevel::kPeriodicFallback);  // depth 4 == capacity
  EXPECT_EQ(admit(), ShedLevel::kPeriodicFallback);  // 5
  EXPECT_EQ(admit(), ShedLevel::kPeriodicFallback);  // 6
  EXPECT_EQ(admit(), ShedLevel::kPeriodicFallback);  // 7
  EXPECT_EQ(admit(), ShedLevel::kReject);          // depth 8 == hard cap
  EXPECT_EQ(queue.depth(), 8);                     // rejects never enqueue

  const AdmissionStats stats = queue.stats();
  EXPECT_EQ(stats.admitted_full, 2);
  EXPECT_EQ(stats.admitted_budget_capped, 2);
  EXPECT_EQ(stats.admitted_fallback, 4);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.peak_depth, 8);
}

TEST(AdmissionQueueTest, TasksReceiveTheLevelStampedAtEnqueue) {
  AdmissionQueue queue(SmallLadder());
  std::vector<ShedLevel> seen;
  for (int i = 0; i < 5; ++i) {
    queue.Admit([&seen](ShedLevel level) { seen.push_back(level); });
  }
  // Drain single-threaded: FIFO order, stamped levels preserved even
  // though the queue has emptied by the time the last tasks run.
  while (queue.depth() > 0) queue.WaitAndRun();
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[0], ShedLevel::kNone);
  EXPECT_EQ(seen[1], ShedLevel::kNone);
  EXPECT_EQ(seen[2], ShedLevel::kBudgetCap);
  EXPECT_EQ(seen[3], ShedLevel::kBudgetCap);
  EXPECT_EQ(seen[4], ShedLevel::kPeriodicFallback);
}

TEST(AdmissionQueueTest, CloseDrainsQueuedTasksButRejectsNew) {
  AdmissionQueue queue(SmallLadder());
  std::atomic<int> ran{0};
  queue.Admit([&](ShedLevel) { ran.fetch_add(1); });
  queue.Admit([&](ShedLevel) { ran.fetch_add(1); });
  queue.Close();
  EXPECT_EQ(queue.Admit([&](ShedLevel) { ran.fetch_add(1); }),
            ShedLevel::kReject);

  // Workers drain what was queued before Close, then exit.
  std::thread worker([&] {
    while (queue.WaitAndRun()) {
    }
  });
  worker.join();
  EXPECT_EQ(ran.load(), 2);
}

TEST(AdmissionQueueTest, WorkersBlockUntilWorkArrives) {
  AdmissionQueue queue(SmallLadder());
  std::atomic<int> ran{0};
  std::thread worker([&] {
    while (queue.WaitAndRun()) {
    }
  });
  for (int i = 0; i < 20; ++i) {
    while (queue.Admit([&](ShedLevel) { ran.fetch_add(1); }) ==
           ShedLevel::kReject) {
      std::this_thread::yield();  // worker is draining; retry
    }
  }
  queue.Close();
  worker.join();
  EXPECT_EQ(ran.load(), 20);
}

TEST(AdmissionQueueTest, NormalizationDerivesWatermarks) {
  AdmissionOptions options;
  options.capacity = 10;
  const AdmissionOptions normalized = options.Normalized();
  EXPECT_EQ(normalized.shed_low_watermark, 5);
  EXPECT_EQ(normalized.hard_capacity, 20);

  // Degenerate settings are repaired, not obeyed.
  options.capacity = 0;
  options.shed_low_watermark = 99;
  options.hard_capacity = -5;
  const AdmissionOptions repaired = options.Normalized();
  EXPECT_EQ(repaired.capacity, 1);
  EXPECT_LE(repaired.shed_low_watermark, repaired.capacity);
  EXPECT_GE(repaired.hard_capacity, repaired.capacity);
}

TEST(AdmissionQueueTest, UpdateOptionsTakesEffectImmediately) {
  AdmissionQueue queue(SmallLadder());
  queue.Admit([](ShedLevel) {});
  queue.Admit([](ShedLevel) {});  // depth 2
  AdmissionOptions wider = SmallLadder();
  wider.shed_low_watermark = 4;
  queue.UpdateOptions(wider);
  EXPECT_EQ(queue.Admit([](ShedLevel) {}), ShedLevel::kNone);  // depth 2 < 4
  EXPECT_EQ(queue.options().shed_low_watermark, 4);
  queue.ClearStats();
  EXPECT_EQ(queue.stats().admitted_full, 0);
}

}  // namespace
}  // namespace crowdrtse::server
