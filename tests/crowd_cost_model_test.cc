#include "crowd/cost_model.h"

#include <gtest/gtest.h>

#include <set>

namespace crowdrtse::crowd {
namespace {

TEST(CostModelTest, UniformRandomWithinRange) {
  util::Rng rng(1);
  const auto model = CostModel::UniformRandom(200, 1, 5, rng);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_roads(), 200);
  std::set<int> seen;
  for (int c : model->costs()) {
    EXPECT_GE(c, 1);
    EXPECT_LE(c, 5);
    seen.insert(c);
  }
  EXPECT_EQ(seen.size(), 5u);  // the whole range appears
}

TEST(CostModelTest, UniformRandomValidation) {
  util::Rng rng(1);
  EXPECT_FALSE(CostModel::UniformRandom(-1, 1, 5, rng).ok());
  EXPECT_FALSE(CostModel::UniformRandom(10, 0, 5, rng).ok());
  EXPECT_FALSE(CostModel::UniformRandom(10, 5, 2, rng).ok());
}

TEST(CostModelTest, Constant) {
  const CostModel model = CostModel::Constant(5, 3);
  for (graph::RoadId r = 0; r < 5; ++r) EXPECT_EQ(model.Cost(r), 3);
}

TEST(CostModelTest, FromVolatilityScalesMonotonically) {
  const auto model =
      CostModel::FromVolatility({1.0, 2.0, 3.0, 4.0, 5.0}, 1, 9);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Cost(0), 1);
  EXPECT_EQ(model->Cost(4), 9);
  for (int i = 1; i < 5; ++i) {
    EXPECT_GE(model->Cost(i), model->Cost(i - 1));
  }
}

TEST(CostModelTest, FromVolatilityFlatSigmas) {
  const auto model = CostModel::FromVolatility({2.0, 2.0, 2.0}, 1, 5);
  ASSERT_TRUE(model.ok());
  for (int i = 0; i < 3; ++i) EXPECT_EQ(model->Cost(i), 1);
}

TEST(CostModelTest, FromVolatilityValidation) {
  EXPECT_FALSE(CostModel::FromVolatility({1.0}, 0, 5).ok());
  EXPECT_FALSE(CostModel::FromVolatility({1.0}, 5, 2).ok());
}

TEST(CostModelTest, TotalCost) {
  const CostModel model = CostModel::Constant(10, 2);
  EXPECT_EQ(model.TotalCost({0, 3, 7}), 6);
  EXPECT_EQ(model.TotalCost({}), 0);
}

TEST(CostModelTest, PaperRangesDefined) {
  EXPECT_EQ(kCostRangeC1Min, 1);
  EXPECT_EQ(kCostRangeC1Max, 10);
  EXPECT_EQ(kCostRangeC2Min, 1);
  EXPECT_EQ(kCostRangeC2Max, 5);
}

}  // namespace
}  // namespace crowdrtse::crowd
