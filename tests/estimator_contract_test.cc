// Interface-contract tests run uniformly over every RealtimeEstimator
// implementation: probe echoing (except Per, which by definition ignores
// probes), physical output ranges, determinism, and input validation.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "baselines/grmc.h"
#include "baselines/knn_days.h"
#include "baselines/lasso.h"
#include "baselines/periodic_estimator.h"
#include "baselines/ridge.h"
#include "core/gsp_estimator.h"
#include "graph/generators.h"
#include "rtf/moment_estimator.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse {
namespace {

/// Shared world for all estimator instances.
struct World {
  World() {
    util::Rng rng(21);
    graph::RoadNetworkOptions net;
    net.num_roads = 50;
    graph = *graph::RoadNetwork(net, rng);
    traffic::TrafficModelOptions traffic_options;
    traffic_options.num_days = 8;
    simulator = std::make_unique<traffic::TrafficSimulator>(
        graph, traffic_options, 23);
    history = simulator->GenerateHistory();
    rtf::MomentEstimatorOptions moments;
    moments.slot_window = 1;
    model = std::make_unique<rtf::RtfModel>(
        *rtf::EstimateByMoments(graph, history, moments));
    truth = simulator->GenerateEvaluationDay();
  }

  graph::Graph graph;
  std::unique_ptr<traffic::TrafficSimulator> simulator;
  traffic::HistoryStore history;
  std::unique_ptr<rtf::RtfModel> model;
  traffic::DayMatrix truth;
};

World& GetWorld() {
  static World* world = new World();
  return *world;
}

std::unique_ptr<baselines::RealtimeEstimator> MakeEstimator(
    const std::string& name) {
  World& w = GetWorld();
  if (name == "GSP") {
    return std::make_unique<core::GspEstimator>(*w.model,
                                                gsp::GspOptions{});
  }
  if (name == "Per") {
    return std::make_unique<baselines::PeriodicEstimator>(*w.model);
  }
  if (name == "LASSO") {
    return std::make_unique<baselines::LassoEstimator>(
        w.graph, w.history, baselines::LassoEstimatorOptions{});
  }
  if (name == "Ridge") {
    return std::make_unique<baselines::RidgeEstimator>(
        w.graph, w.history, baselines::RidgeEstimatorOptions{});
  }
  if (name == "GRMC") {
    baselines::GrmcOptions options;
    options.max_iterations = 8;
    return std::make_unique<baselines::GrmcEstimator>(w.graph, w.history,
                                                      options);
  }
  if (name == "kNN-days") {
    return std::make_unique<baselines::KnnDaysEstimator>(
        w.graph, w.history, baselines::KnnDaysOptions{});
  }
  return nullptr;
}

class EstimatorContractTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(EstimatorContractTest, NameMatches) {
  const auto estimator = MakeEstimator(GetParam());
  ASSERT_NE(estimator, nullptr);
  EXPECT_EQ(estimator->name(), GetParam());
}

TEST_P(EstimatorContractTest, OutputCoversAllRoadsAndStaysPhysical) {
  World& w = GetWorld();
  const auto estimator = MakeEstimator(GetParam());
  const int slot = 99;
  std::vector<graph::RoadId> observed{0, 10, 20, 30, 40};
  std::vector<double> speeds;
  for (graph::RoadId r : observed) speeds.push_back(w.truth.At(slot, r));
  const auto est = estimator->Estimate(slot, observed, speeds);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  ASSERT_EQ(est->size(), static_cast<size_t>(w.graph.num_roads()));
  for (double v : *est) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 300.0);
  }
}

TEST_P(EstimatorContractTest, ProbesEchoedExceptPer) {
  World& w = GetWorld();
  const auto estimator = MakeEstimator(GetParam());
  const int slot = 150;
  const std::vector<graph::RoadId> observed{5, 25};
  const std::vector<double> speeds{33.5, 61.25};
  const auto est = estimator->Estimate(slot, observed, speeds);
  ASSERT_TRUE(est.ok());
  if (GetParam() == "Per") {
    EXPECT_DOUBLE_EQ((*est)[5], w.model->Mu(slot, 5));
  } else {
    EXPECT_DOUBLE_EQ((*est)[5], 33.5);
    EXPECT_DOUBLE_EQ((*est)[25], 61.25);
  }
}

TEST_P(EstimatorContractTest, DeterministicAcrossCalls) {
  const auto estimator = MakeEstimator(GetParam());
  const std::vector<graph::RoadId> observed{3, 13};
  const std::vector<double> speeds{44.0, 52.0};
  const auto a = estimator->Estimate(100, observed, speeds);
  const auto b = estimator->Estimate(100, observed, speeds);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ((*a)[i], (*b)[i]) << GetParam() << " index " << i;
  }
}

TEST_P(EstimatorContractTest, RejectsBadInputs) {
  const auto estimator = MakeEstimator(GetParam());
  EXPECT_FALSE(estimator->Estimate(-1, {}, {}).ok());
  EXPECT_FALSE(estimator->Estimate(99999, {}, {}).ok());
  EXPECT_FALSE(estimator->Estimate(0, {0, 1}, {1.0}).ok());
  EXPECT_FALSE(estimator->Estimate(0, {-5}, {1.0}).ok());
}

TEST_P(EstimatorContractTest, EstimateTargetsConsistentOnTargets) {
  World& w = GetWorld();
  const auto estimator = MakeEstimator(GetParam());
  const int slot = 99;
  const std::vector<graph::RoadId> observed{0, 10, 20};
  std::vector<double> speeds;
  for (graph::RoadId r : observed) speeds.push_back(w.truth.At(slot, r));
  const std::vector<graph::RoadId> targets{1, 11, 21, 31};
  const auto full = estimator->Estimate(slot, observed, speeds);
  const auto targeted =
      estimator->EstimateTargets(slot, observed, speeds, targets);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(targeted.ok());
  for (graph::RoadId r : targets) {
    EXPECT_NEAR((*targeted)[static_cast<size_t>(r)],
                (*full)[static_cast<size_t>(r)], 1e-9)
        << GetParam() << " road " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEstimators, EstimatorContractTest,
                         ::testing::Values("GSP", "Per", "LASSO", "Ridge",
                                           "GRMC", "kNN-days"));

}  // namespace
}  // namespace crowdrtse
