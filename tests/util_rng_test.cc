#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace crowdrtse::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleCustomRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.UniformDouble(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit within 2000 draws
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(1);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
  EXPECT_EQ(rng.UniformInt(9, 2), 9);  // inverted range collapses to lo
}

TEST(RngTest, UniformUint64Bounded) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformUint64(10), 10u);
  }
}

TEST(RngTest, NormalHasRoughlyStandardMoments) {
  Rng rng(99);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(3);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  const std::vector<int> sample = rng.SampleWithoutReplacement(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  const std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementAllWhenKTooLarge) {
  Rng rng(17);
  const std::vector<int> sample = rng.SampleWithoutReplacement(5, 10);
  EXPECT_EQ(sample.size(), 5u);
  const std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(123);
  Rng child = a.Fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(123);
  parent_copy.NextUint64();  // advance past the fork draw
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextUint64() == parent_copy.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace crowdrtse::util
