#include "rtf/rtf_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"

namespace crowdrtse::rtf {
namespace {

TEST(RtfModelTest, DefaultInitialisation) {
  const graph::Graph g = *graph::PathNetwork(4);
  const RtfModel model(g, 5);
  EXPECT_EQ(model.num_slots(), 5);
  EXPECT_EQ(model.num_roads(), 4);
  EXPECT_EQ(model.num_edges(), 3);
  EXPECT_DOUBLE_EQ(model.Mu(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.Sigma(4, 3), 1.0);
  EXPECT_DOUBLE_EQ(model.Rho(2, 1), 0.5);
}

TEST(RtfModelTest, SettersAndSlotViews) {
  const graph::Graph g = *graph::PathNetwork(3);
  RtfModel model(g, 2);
  model.SetMu(1, 2, 50.0);
  model.SetSigma(1, 2, 4.0);
  model.SetRho(1, 0, 0.9);
  EXPECT_DOUBLE_EQ(model.Mu(1, 2), 50.0);
  EXPECT_DOUBLE_EQ(model.MuSlot(1)[2], 50.0);
  EXPECT_DOUBLE_EQ(model.SigmaSlot(1)[2], 4.0);
  EXPECT_DOUBLE_EQ(model.RhoSlot(1)[0], 0.9);
  // Other slots untouched.
  EXPECT_DOUBLE_EQ(model.Mu(0, 2), 0.0);
}

TEST(RtfModelTest, PairMeanIsOrientedDifference) {
  const graph::Graph g = *graph::PathNetwork(2);
  RtfModel model(g, 1);
  model.SetMu(0, 0, 30.0);
  model.SetMu(0, 1, 50.0);
  EXPECT_DOUBLE_EQ(model.PairMean(0, 0, 1), -20.0);
  EXPECT_DOUBLE_EQ(model.PairMean(0, 1, 0), 20.0);
}

TEST(RtfModelTest, PairVarianceFormula) {
  const graph::Graph g = *graph::PathNetwork(2);
  RtfModel model(g, 1);
  model.SetSigma(0, 0, 3.0);
  model.SetSigma(0, 1, 4.0);
  model.SetRho(0, 0, 0.5);
  // 9 + 16 - 2*0.5*12 = 13.
  EXPECT_DOUBLE_EQ(model.PairVariance(0, 0), 13.0);
}

TEST(RtfModelTest, PairVarianceFloored) {
  const graph::Graph g = *graph::PathNetwork(2);
  RtfModel model(g, 1);
  model.SetSigma(0, 0, 2.0);
  model.SetSigma(0, 1, 2.0);
  model.SetRho(0, 0, 1.0);  // rho=1 with equal sigmas -> zero variance
  EXPECT_GE(model.PairVariance(0, 0), RtfModel::kMinPairVariance);
}

TEST(RtfModelTest, ClampParameters) {
  const graph::Graph g = *graph::PathNetwork(2);
  RtfModel model(g, 1);
  model.SetSigma(0, 0, -5.0);
  model.SetRho(0, 0, 2.0);
  model.ClampParameters();
  EXPECT_GE(model.Sigma(0, 0), RtfModel::kMinSigma);
  EXPECT_LE(model.Rho(0, 0), RtfModel::kMaxRho);
}

TEST(RtfModelTest, ClampParametersSlotOverloadLeavesOtherSlotsAlone) {
  const graph::Graph g = *graph::PathNetwork(2);
  RtfModel model(g, 2);
  model.SetSigma(0, 0, -5.0);
  model.SetRho(0, 0, 2.0);
  model.SetSigma(1, 0, -5.0);
  model.SetRho(1, 0, 2.0);
  model.ClampParameters(0);
  EXPECT_GE(model.Sigma(0, 0), RtfModel::kMinSigma);
  EXPECT_LE(model.Rho(0, 0), RtfModel::kMaxRho);
  // Slot 1 is untouched — the overload must not write other slots'
  // parameters (concurrent readers depend on it).
  EXPECT_DOUBLE_EQ(model.Sigma(1, 0), -5.0);
  EXPECT_DOUBLE_EQ(model.Rho(1, 0), 2.0);
}

TEST(RtfModelTest, ValidateCatchesBadValues) {
  const graph::Graph g = *graph::PathNetwork(2);
  RtfModel model(g, 1);
  EXPECT_TRUE(model.Validate().ok());
  model.SetMu(0, 0, std::nan(""));
  EXPECT_FALSE(model.Validate().ok());
  model.SetMu(0, 0, 1.0);
  model.SetSigma(0, 1, 0.0);
  EXPECT_FALSE(model.Validate().ok());
  model.SetSigma(0, 1, 1.0);
  model.SetRho(0, 0, -0.2);
  EXPECT_FALSE(model.Validate().ok());
}

TEST(RtfModelTest, DefaultConstructedHasNoGraph) {
  RtfModel model;
  EXPECT_FALSE(model.Validate().ok());
}

}  // namespace
}  // namespace crowdrtse::rtf
