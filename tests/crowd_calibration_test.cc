#include "crowd/calibration.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace crowdrtse::crowd {
namespace {

TEST(CalibrationTest, LearnsMultiplicativeBias) {
  WorkerCalibration calibration(3);
  // Worker 7 consistently over-reports by 10%.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(calibration.Observe(7, 55.0, 50.0).ok());
  }
  EXPECT_NEAR(calibration.EstimatedBias(7), 1.1, 1e-9);
  EXPECT_NEAR(calibration.Debias(7, 66.0), 60.0, 1e-9);
  EXPECT_EQ(calibration.ObservationCount(7), 5);
}

TEST(CalibrationTest, UntrustedUntilEnoughObservations) {
  WorkerCalibration calibration(3);
  ASSERT_TRUE(calibration.Observe(1, 100.0, 50.0).ok());
  ASSERT_TRUE(calibration.Observe(1, 100.0, 50.0).ok());
  EXPECT_DOUBLE_EQ(calibration.EstimatedBias(1), 1.0);  // only 2 of 3
  ASSERT_TRUE(calibration.Observe(1, 100.0, 50.0).ok());
  EXPECT_NEAR(calibration.EstimatedBias(1), 2.0, 1e-9);
}

TEST(CalibrationTest, UnknownWorkerIsNeutral) {
  const WorkerCalibration calibration;
  EXPECT_DOUBLE_EQ(calibration.EstimatedBias(42), 1.0);
  EXPECT_DOUBLE_EQ(calibration.Debias(42, 33.0), 33.0);
  EXPECT_EQ(calibration.ObservationCount(42), 0);
}

TEST(CalibrationTest, NoisyObservationsAverageOut) {
  WorkerCalibration calibration(3);
  util::Rng rng(5);
  // True bias 0.9, noisy references.
  for (int i = 0; i < 400; ++i) {
    const double truth = rng.UniformDouble(20.0, 80.0);
    const double reported = 0.9 * truth + rng.Normal(0.0, 1.0);
    ASSERT_TRUE(
        calibration.Observe(3, std::max(0.0, reported), truth).ok());
  }
  EXPECT_NEAR(calibration.EstimatedBias(3), 0.9, 0.02);
}

TEST(CalibrationTest, DebiasAnswersInPlace) {
  WorkerCalibration calibration(1);
  ASSERT_TRUE(calibration.Observe(1, 60.0, 50.0).ok());  // bias 1.2
  std::vector<SpeedAnswer> answers;
  SpeedAnswer biased;
  biased.worker = 1;
  biased.road = 0;
  biased.reported_kmh = 72.0;
  answers.push_back(biased);
  SpeedAnswer neutral;
  neutral.worker = 2;
  neutral.road = 0;
  neutral.reported_kmh = 40.0;
  answers.push_back(neutral);
  calibration.DebiasAnswers(answers);
  EXPECT_NEAR(answers[0].reported_kmh, 60.0, 1e-9);
  EXPECT_DOUBLE_EQ(answers[1].reported_kmh, 40.0);
}

TEST(CalibrationTest, DegenerateZeroReporterStaysNeutral) {
  WorkerCalibration calibration(1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(calibration.Observe(9, 0.0, 50.0).ok());
  }
  EXPECT_DOUBLE_EQ(calibration.EstimatedBias(9), 1.0);  // guarded
}

TEST(CalibrationTest, Validation) {
  WorkerCalibration calibration;
  EXPECT_FALSE(calibration.Observe(1, 50.0, 0.0).ok());
  EXPECT_FALSE(calibration.Observe(1, 50.0, -5.0).ok());
  EXPECT_FALSE(calibration.Observe(1, -1.0, 50.0).ok());
}

}  // namespace
}  // namespace crowdrtse::crowd
