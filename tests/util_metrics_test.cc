#include "util/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace crowdrtse::util::metrics {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(LatencyHistogramTest, EmptySnapshotIsAllZero) {
  LatencyHistogram histogram;
  const LatencySnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.mean_ms, 0.0);
  EXPECT_EQ(snap.p50_ms, 0.0);
  EXPECT_EQ(snap.p99_ms, 0.0);
  EXPECT_EQ(snap.max_ms, 0.0);
}

TEST(LatencyHistogramTest, CountSumAndMaxAreExact) {
  LatencyHistogram histogram;
  histogram.Record(1.0);
  histogram.Record(2.0);
  histogram.Record(9.0);
  const LatencySnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 3);
  EXPECT_NEAR(snap.sum_ms, 12.0, 1e-6);
  EXPECT_NEAR(snap.mean_ms, 4.0, 1e-6);
  EXPECT_NEAR(snap.max_ms, 9.0, 1e-6);
}

TEST(LatencyHistogramTest, PercentilesLandWithinABucket) {
  LatencyHistogram histogram;
  // 100 samples spread 1..100 ms. Exact p50 = 50, p95 = 95, p99 = 99;
  // bucket interpolation is accurate to within one geometric bucket
  // (ratio 1.6), so allow that relative slack.
  for (int i = 1; i <= 100; ++i) {
    histogram.Record(static_cast<double>(i));
  }
  const LatencySnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 100);
  EXPECT_GT(snap.p50_ms, 50.0 / 1.7);
  EXPECT_LT(snap.p50_ms, 50.0 * 1.7);
  EXPECT_GT(snap.p95_ms, 95.0 / 1.7);
  EXPECT_LT(snap.p95_ms, 95.0 * 1.7);
  EXPECT_GT(snap.p99_ms, 99.0 / 1.7);
  EXPECT_LE(snap.p99_ms, snap.max_ms + 1e-9);
  // Order must hold regardless of interpolation.
  EXPECT_LE(snap.p50_ms, snap.p95_ms);
  EXPECT_LE(snap.p95_ms, snap.p99_ms);
  EXPECT_LE(snap.p99_ms, snap.max_ms);
}

TEST(LatencyHistogramTest, NegativeAndHugeSamplesClampIntoRange) {
  LatencyHistogram histogram;
  histogram.Record(-5.0);   // clamps to 0
  histogram.Record(1e12);   // lands in the overflow bucket
  const LatencySnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 2);
  EXPECT_NEAR(snap.max_ms, 1e12, 1e6);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(0.5 + 0.1 * static_cast<double>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const LatencySnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_GE(snap.max_ms, 0.5);
}

TEST(LatencySnapshotTest, ToStringMentionsPercentiles) {
  LatencyHistogram histogram;
  histogram.Record(2.0);
  const std::string text = histogram.Snapshot().ToString();
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p95="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
  EXPECT_NE(text.find("n=1"), std::string::npos);
}

TEST(LatencyHistogramTest, BucketBoundsAreMonotonic) {
  for (int i = 1; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_GT(LatencyHistogram::BucketUpperBound(i),
              LatencyHistogram::BucketUpperBound(i - 1));
  }
}

TEST(LatencyHistogramTest, SampleBelowFirstBoundLandsInFirstBucket) {
  LatencyHistogram histogram;
  histogram.Record(0.0);
  histogram.Record(LatencyHistogram::BucketUpperBound(0) / 2.0);
  const auto counts = histogram.BucketCounts();
  EXPECT_EQ(counts[0], 2);
  for (int i = 1; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(counts[static_cast<size_t>(i)], 0);
  }
}

TEST(LatencyHistogramTest, OverflowSamplesLandInLastBucket) {
  LatencyHistogram histogram;
  const double beyond =
      LatencyHistogram::BucketUpperBound(LatencyHistogram::kNumBuckets - 1) *
      10.0;
  histogram.Record(beyond);
  histogram.Record(std::numeric_limits<double>::infinity());
  const auto counts = histogram.BucketCounts();
  EXPECT_EQ(counts[LatencyHistogram::kNumBuckets - 1], 2);
  // Infinity clamps to the max representable sample; sum and max stay
  // finite so one bad input cannot poison the aggregates.
  const LatencySnapshot snap = histogram.Snapshot();
  EXPECT_TRUE(std::isfinite(snap.sum_ms));
  EXPECT_TRUE(std::isfinite(snap.max_ms));
}

TEST(LatencyHistogramTest, NanAndNegativeClampToZero) {
  LatencyHistogram histogram;
  histogram.Record(std::numeric_limits<double>::quiet_NaN());
  histogram.Record(-std::numeric_limits<double>::infinity());
  histogram.Record(-1.0);
  const LatencySnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 3);
  EXPECT_EQ(snap.sum_ms, 0.0);
  EXPECT_EQ(snap.max_ms, 0.0);
  EXPECT_FALSE(std::isnan(snap.mean_ms));
  const auto counts = histogram.BucketCounts();
  EXPECT_EQ(counts[0], 3);
}

TEST(LatencyHistogramTest, PercentileAtBucketBoundary) {
  LatencyHistogram histogram;
  // Every sample sits exactly on one bucket's upper bound. Bucketing is
  // strictly-greater, so the samples own the *next* bucket and every
  // percentile must land inside [bound, next bound] — and never above the
  // recorded max (which itself rounds to integer microseconds).
  const double bound = LatencyHistogram::BucketUpperBound(10);
  for (int i = 0; i < 100; ++i) histogram.Record(bound);
  const auto counts = histogram.BucketCounts();
  EXPECT_EQ(counts[11], 100);  // the bucket whose range is (bound10, bound11]
  const LatencySnapshot snap = histogram.Snapshot();
  EXPECT_NEAR(snap.max_ms, bound, 1e-3);  // microsecond rounding
  EXPECT_GE(snap.p50_ms, bound);
  EXPECT_LE(snap.p50_ms, LatencyHistogram::BucketUpperBound(11));
  EXPECT_LE(snap.p50_ms, snap.max_ms + 1e-12);
  EXPECT_LE(snap.p99_ms, snap.max_ms + 1e-12);
  EXPECT_LE(snap.p50_ms, snap.p95_ms);
  EXPECT_LE(snap.p95_ms, snap.p99_ms);
}

TEST(LatencyHistogramTest, SingleSamplePercentilesNeverExceedMax) {
  LatencyHistogram histogram;
  histogram.Record(3.0);
  const LatencySnapshot snap = histogram.Snapshot();
  EXPECT_LE(snap.p50_ms, snap.max_ms + 1e-12);
  EXPECT_LE(snap.p95_ms, snap.max_ms + 1e-12);
  EXPECT_LE(snap.p99_ms, snap.max_ms + 1e-12);
}

TEST(LatencySnapshotTest, ToJsonCarriesEveryField) {
  LatencyHistogram histogram;
  histogram.Record(2.0);
  const std::string json = histogram.Snapshot().ToJson();
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"sum_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"mean_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"p50_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"max_ms\":"), std::string::npos);
}

TEST(GaugeTest, SetAndAddRoundTrip) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0);
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);
}

TEST(MetricsRegistryTest, InstrumentsAreCreateOnFirstUseAndStable) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("requests_total", "requests");
  counter.Increment(5);
  // Second lookup returns the same instrument.
  EXPECT_EQ(&registry.GetCounter("requests_total"), &counter);
  EXPECT_EQ(registry.GetCounter("requests_total").value(), 5);
  Gauge& gauge = registry.GetGauge("in_flight");
  gauge.Set(2);
  EXPECT_EQ(&registry.GetGauge("in_flight"), &gauge);
  LatencyHistogram& histogram = registry.GetHistogram("latency_ms");
  EXPECT_EQ(&registry.GetHistogram("latency_ms"), &histogram);
}

TEST(MetricsRegistryDeathTest, KindMismatchIsAProgrammingError) {
  MetricsRegistry registry;
  registry.GetCounter("shared_name");
  EXPECT_DEATH(registry.GetGauge("shared_name"), "check failed");
  EXPECT_DEATH(registry.GetHistogram("shared_name"), "check failed");
}

TEST(MetricsRegistryTest, RenderPrometheusShape) {
  MetricsRegistry registry;
  registry.GetCounter("b_total", "a counter").Increment(3);
  registry.GetGauge("a_gauge", "a gauge").Set(-2);
  registry.GetHistogram("c_latency_ms").Record(1.0);
  int64_t live = 17;
  registry.RegisterCallbackGauge("d_live", "reads on demand",
                                 [&live] { return live; });
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP b_total a counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE b_total counter\nb_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE a_gauge gauge\na_gauge -2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE c_latency_ms histogram\n"), std::string::npos);
  EXPECT_NE(text.find("c_latency_ms_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("c_latency_ms_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("d_live 17\n"), std::string::npos);
  // Name order: a_gauge < b_total < c_latency_ms < d_live.
  EXPECT_LT(text.find("a_gauge"), text.find("b_total"));
  EXPECT_LT(text.find("b_total"), text.find("c_latency_ms"));
  // Callback gauges read live state at render time.
  live = 99;
  EXPECT_NE(registry.RenderPrometheus().find("d_live 99\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  LatencyHistogram& histogram = registry.GetHistogram("h_ms");
  histogram.Record(0.01);
  histogram.Record(1.0);
  histogram.Record(100.0);
  const std::string text = registry.RenderPrometheus();
  // Walk the bucket lines in order; cumulative counts never decrease and
  // the +Inf bucket equals the total count.
  int64_t previous = 0;
  size_t pos = 0;
  int buckets_seen = 0;
  while ((pos = text.find("h_ms_bucket{le=\"", pos)) != std::string::npos) {
    const size_t value_at = text.find("} ", pos) + 2;
    const int64_t cumulative = std::stoll(text.substr(value_at));
    EXPECT_GE(cumulative, previous);
    previous = cumulative;
    ++buckets_seen;
    pos = value_at;
  }
  EXPECT_EQ(buckets_seen, LatencyHistogram::kNumBuckets);
  EXPECT_EQ(previous, 3);
}

TEST(MetricsRegistryTest, RenderJsonIsOneFlatObject) {
  MetricsRegistry registry;
  registry.GetCounter("served_total").Increment(7);
  registry.GetGauge("leases").Set(3);
  registry.GetHistogram("lat_ms").Record(2.0);
  registry.RegisterCallbackGauge("bytes", "", [] { return int64_t{4096}; });
  const std::string json = registry.RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"served_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"leases\":3"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"lat_ms\":{\"count\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentLookupsAndIncrementsAreSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.GetCounter("contended_total").Increment();
        registry.GetHistogram("contended_ms").Record(0.5);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("contended_total").value(),
            kThreads * kPerThread);
  EXPECT_EQ(registry.GetHistogram("contended_ms").count(),
            kThreads * kPerThread);
}


TEST(MetricsRegistryTest, LabeledSeriesShareOneFamilyHeader) {
  MetricsRegistry registry;
  registry.RegisterCallbackGauge("shard_queries{shard=\"0\"}",
                                 "per-shard served", [] { return 4; });
  registry.RegisterCallbackGauge("shard_queries{shard=\"1\"}",
                                 "per-shard served", [] { return 6; });
  registry.GetCounter("shard_queries_other_total", "unrelated").Increment();
  const std::string prom = registry.RenderPrometheus();
  // Every labeled series renders with its label block...
  EXPECT_NE(prom.find("shard_queries{shard=\"0\"} 4"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("shard_queries{shard=\"1\"} 6"), std::string::npos);
  // ...but HELP/TYPE appear once per family, keyed by the bare base name.
  size_t type_count = 0;
  const std::string header = "# TYPE shard_queries gauge";
  for (size_t pos = prom.find(header); pos != std::string::npos;
       pos = prom.find(header, pos + 1)) {
    ++type_count;
  }
  EXPECT_EQ(type_count, 1u);
  size_t help_count = 0;
  const std::string help = "# HELP shard_queries per-shard served";
  for (size_t pos = prom.find(help); pos != std::string::npos;
       pos = prom.find(help, pos + 1)) {
    ++help_count;
  }
  EXPECT_EQ(help_count, 1u);
  // The lexically-adjacent unlabeled family keeps its own header.
  EXPECT_NE(prom.find("# TYPE shard_queries_other_total counter"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ExemplarRendersOnTheSampleBucket) {
  MetricsRegistry registry;
  LatencyHistogram& hist = registry.GetHistogram("serve_ms", "serve time");
  hist.RecordWithExemplar(2.5, 4242);
  hist.Record(2.5);  // exemplar-less sample on the same bucket keeps 4242
  const std::string prom = registry.RenderPrometheus();
  const size_t at = prom.find("trace_id=\"4242\"");
  ASSERT_NE(at, std::string::npos) << prom;
  // The exemplar rides a bucket line of this histogram, OpenMetrics style:
  // `serve_ms_bucket{le="..."} N # {trace_id="4242"} <value>`.
  const size_t line_start = prom.rfind('\n', at) + 1;
  EXPECT_EQ(prom.compare(line_start, 15, "serve_ms_bucket"), 0) << prom;
  EXPECT_NE(prom.find(" # {trace_id=\"4242\"} ", line_start),
            std::string::npos);
}

TEST(MetricsRegistryTest, ExemplarZeroIdMeansNone) {
  MetricsRegistry registry;
  registry.GetHistogram("quiet_ms").RecordWithExemplar(1.0, 0);
  EXPECT_EQ(registry.RenderPrometheus().find("trace_id"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentShardLabeledGaugeRegistration) {
  // The sharded engine registers per-shard labeled gauges while serving
  // threads render /metrics: registration, lookup, mutation and render must
  // be free of data races (CI re-runs this suite under TSan).
  MetricsRegistry registry;
  constexpr int kShards = 8;
  constexpr int kRounds = 200;
  std::atomic<bool> stop{false};
  std::thread renderer([&] {
    while (!stop.load()) {
      // May render empty before the first registration lands; the point is
      // that rendering concurrently with registration is race-free.
      (void)registry.RenderPrometheus();
    }
  });
  std::vector<std::thread> shards;
  for (int s = 0; s < kShards; ++s) {
    shards.emplace_back([&registry, s] {
      const std::string name =
          "shard_inflight{shard=\"" + std::to_string(s) + "\"}";
      for (int i = 0; i < kRounds; ++i) {
        registry.GetGauge(name, "in-flight per shard").Add(1);
        registry
            .GetHistogram("shard_serve_ms{shard=\"" + std::to_string(s) +
                          "\"}")
            .RecordWithExemplar(0.5 * s + 0.1, 100 + s);
      }
    });
  }
  for (std::thread& t : shards) t.join();
  stop.store(true);
  renderer.join();
  const std::string prom = registry.RenderPrometheus();
  for (int s = 0; s < kShards; ++s) {
    EXPECT_NE(prom.find("shard_inflight{shard=\"" + std::to_string(s) +
                        "\"} " + std::to_string(kRounds)),
              std::string::npos)
        << prom;
    EXPECT_NE(prom.find("shard_serve_ms_count{shard=\"" + std::to_string(s) +
                        "\"} " + std::to_string(kRounds)),
              std::string::npos);
  }
}

}  // namespace
}  // namespace crowdrtse::util::metrics
