#include "util/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace crowdrtse::util::metrics {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(LatencyHistogramTest, EmptySnapshotIsAllZero) {
  LatencyHistogram histogram;
  const LatencySnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.mean_ms, 0.0);
  EXPECT_EQ(snap.p50_ms, 0.0);
  EXPECT_EQ(snap.p99_ms, 0.0);
  EXPECT_EQ(snap.max_ms, 0.0);
}

TEST(LatencyHistogramTest, CountSumAndMaxAreExact) {
  LatencyHistogram histogram;
  histogram.Record(1.0);
  histogram.Record(2.0);
  histogram.Record(9.0);
  const LatencySnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 3);
  EXPECT_NEAR(snap.sum_ms, 12.0, 1e-6);
  EXPECT_NEAR(snap.mean_ms, 4.0, 1e-6);
  EXPECT_NEAR(snap.max_ms, 9.0, 1e-6);
}

TEST(LatencyHistogramTest, PercentilesLandWithinABucket) {
  LatencyHistogram histogram;
  // 100 samples spread 1..100 ms. Exact p50 = 50, p95 = 95, p99 = 99;
  // bucket interpolation is accurate to within one geometric bucket
  // (ratio 1.6), so allow that relative slack.
  for (int i = 1; i <= 100; ++i) {
    histogram.Record(static_cast<double>(i));
  }
  const LatencySnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 100);
  EXPECT_GT(snap.p50_ms, 50.0 / 1.7);
  EXPECT_LT(snap.p50_ms, 50.0 * 1.7);
  EXPECT_GT(snap.p95_ms, 95.0 / 1.7);
  EXPECT_LT(snap.p95_ms, 95.0 * 1.7);
  EXPECT_GT(snap.p99_ms, 99.0 / 1.7);
  EXPECT_LE(snap.p99_ms, snap.max_ms + 1e-9);
  // Order must hold regardless of interpolation.
  EXPECT_LE(snap.p50_ms, snap.p95_ms);
  EXPECT_LE(snap.p95_ms, snap.p99_ms);
  EXPECT_LE(snap.p99_ms, snap.max_ms);
}

TEST(LatencyHistogramTest, NegativeAndHugeSamplesClampIntoRange) {
  LatencyHistogram histogram;
  histogram.Record(-5.0);   // clamps to 0
  histogram.Record(1e12);   // lands in the overflow bucket
  const LatencySnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 2);
  EXPECT_NEAR(snap.max_ms, 1e12, 1e6);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(0.5 + 0.1 * static_cast<double>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const LatencySnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_GE(snap.max_ms, 0.5);
}

TEST(LatencySnapshotTest, ToStringMentionsPercentiles) {
  LatencyHistogram histogram;
  histogram.Record(2.0);
  const std::string text = histogram.Snapshot().ToString();
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p95="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
  EXPECT_NE(text.find("n=1"), std::string::npos);
}

TEST(LatencyHistogramTest, BucketBoundsAreMonotonic) {
  for (int i = 1; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_GT(LatencyHistogram::BucketUpperBound(i),
              LatencyHistogram::BucketUpperBound(i - 1));
  }
}

}  // namespace
}  // namespace crowdrtse::util::metrics
