#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

namespace crowdrtse::util {
namespace {

TEST(ThreadPoolTest, CoversWholeRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int call = 0; call < 200; ++call) {
    pool.ParallelFor(100, [&](size_t begin, size_t end) {
      total.fetch_add(static_cast<long>(end - begin));
    });
  }
  EXPECT_EQ(total.load(), 200L * 100L);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  size_t covered = 0;
  pool.ParallelFor(57, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 57u);
    covered = end - begin;
  });
  EXPECT_EQ(covered, 57u);
}

TEST(ThreadPoolTest, ZeroTotalIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, TotalSmallerThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunksAreContiguousAndDisjoint) {
  ThreadPool pool(5);
  std::mutex mutex;
  std::vector<std::pair<size_t, size_t>> chunks;
  pool.ParallelFor(103, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mutex);
    chunks.emplace_back(begin, end);
  });
  std::sort(chunks.begin(), chunks.end());
  size_t expected_begin = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GT(end, begin);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 103u);
}

TEST(ThreadPoolTest, NonPositiveThreadCountClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

}  // namespace
}  // namespace crowdrtse::util
