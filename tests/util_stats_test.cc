#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace crowdrtse::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.Mean(), 5.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.PopulationVariance(), 4.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatsTest, MergeEqualsBulk) {
  Rng rng(1);
  RunningStats bulk;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    bulk.Add(x);
    (i < 200 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), bulk.count());
  EXPECT_NEAR(left.Mean(), bulk.Mean(), 1e-10);
  EXPECT_NEAR(left.Variance(), bulk.Variance(), 1e-10);
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

TEST(RunningCovarianceTest, PerfectPositiveCorrelation) {
  RunningCovariance c;
  for (int i = 0; i < 50; ++i) {
    c.Add(i, 2.0 * i + 1.0);
  }
  EXPECT_NEAR(c.Correlation(), 1.0, 1e-12);
}

TEST(RunningCovarianceTest, PerfectNegativeCorrelation) {
  RunningCovariance c;
  for (int i = 0; i < 50; ++i) {
    c.Add(i, -3.0 * i);
  }
  EXPECT_NEAR(c.Correlation(), -1.0, 1e-12);
}

TEST(RunningCovarianceTest, IndependentNearZero) {
  Rng rng(4);
  RunningCovariance c;
  for (int i = 0; i < 20000; ++i) {
    c.Add(rng.Normal(), rng.Normal());
  }
  EXPECT_NEAR(c.Correlation(), 0.0, 0.03);
}

TEST(RunningCovarianceTest, DegenerateMarginalGivesZero) {
  RunningCovariance c;
  for (int i = 0; i < 10; ++i) c.Add(5.0, i);
  EXPECT_EQ(c.Correlation(), 0.0);
}

TEST(RunningCovarianceTest, CovarianceMatchesDefinition) {
  RunningCovariance c;
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 5, 9};
  for (size_t i = 0; i < xs.size(); ++i) c.Add(xs[i], ys[i]);
  // Sample covariance computed by hand: mean_x=2.5, mean_y=5.
  // sum (x-mx)(y-my) = (-1.5)(-3)+(-.5)(-1)+(.5)(0)+(1.5)(4) = 11.
  EXPECT_NEAR(c.Covariance(), 11.0 / 3.0, 1e-12);
}

TEST(QuantileTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(QuantileTest, Extremes) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, EmptyIsZero) { EXPECT_EQ(Quantile({}, 0.5), 0.0); }

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(TrimmedMeanTest, DropsOutliers) {
  // 10 values, trim 10% each side -> drops the 1000 and the -1000.
  std::vector<double> v{1, 1, 1, 1, 1, 1, 1, 1, 1000, -1000};
  EXPECT_DOUBLE_EQ(TrimmedMean(v, 0.1), 1.0);
}

TEST(TrimmedMeanTest, FallsBackWhenTooFew) {
  EXPECT_DOUBLE_EQ(TrimmedMean({2.0, 4.0}, 0.4), 3.0);
}

}  // namespace
}  // namespace crowdrtse::util
