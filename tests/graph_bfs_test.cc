#include "graph/bfs.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "util/rng.h"

namespace crowdrtse::graph {
namespace {

TEST(BfsTest, SingleSourcePath) {
  const Graph g = *PathNetwork(5);
  const HopLevels levels = MultiSourceBfs(g, {0});
  EXPECT_EQ(levels.hops, (std::vector<int>{0, 1, 2, 3, 4}));
  ASSERT_EQ(levels.levels.size(), 5u);
  EXPECT_EQ(levels.levels[3], (std::vector<RoadId>{3}));
  EXPECT_EQ(levels.MaxHop(), 4);
}

TEST(BfsTest, MultiSourceTakesMinimum) {
  const Graph g = *PathNetwork(7);
  const HopLevels levels = MultiSourceBfs(g, {0, 6});
  EXPECT_EQ(levels.hops[3], 3);
  EXPECT_EQ(levels.hops[5], 1);
  EXPECT_EQ(levels.levels[0].size(), 2u);
}

TEST(BfsTest, DuplicateSourcesTolerated) {
  const Graph g = *PathNetwork(3);
  const HopLevels levels = MultiSourceBfs(g, {1, 1, 1});
  EXPECT_EQ(levels.levels[0].size(), 1u);
  EXPECT_EQ(levels.hops[1], 0);
}

TEST(BfsTest, UnreachableIsMinusOne) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  const Graph g = *builder.Build();
  const HopLevels levels = MultiSourceBfs(g, {0});
  EXPECT_EQ(levels.hops[2], -1);
  EXPECT_EQ(levels.hops[3], -1);
}

TEST(BfsTest, NoSourcesGivesEmptyLevels) {
  const Graph g = *PathNetwork(3);
  const HopLevels levels = MultiSourceBfs(g, {});
  EXPECT_TRUE(levels.levels.empty());
  EXPECT_TRUE(std::all_of(levels.hops.begin(), levels.hops.end(),
                          [](int h) { return h == -1; }));
}

TEST(BfsTest, InvalidSourcesSkipped) {
  const Graph g = *PathNetwork(3);
  const HopLevels levels = MultiSourceBfs(g, {-1, 99, 1});
  EXPECT_EQ(levels.hops[1], 0);
  EXPECT_EQ(levels.levels[0].size(), 1u);
}

TEST(BfsTest, GridHopsMatchManhattanDistance) {
  const Graph g = *GridNetwork(4, 5);
  const HopLevels levels = MultiSourceBfs(g, {0});
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_EQ(levels.hops[static_cast<size_t>(r * 5 + c)], r + c);
    }
  }
}

TEST(BfsTest, LevelsPartitionReachableRoads) {
  util::Rng rng(1);
  RoadNetworkOptions options;
  options.num_roads = 80;
  const Graph g = *RoadNetwork(options, rng);
  const HopLevels levels = MultiSourceBfs(g, {0, 10, 20});
  size_t total = 0;
  std::vector<bool> seen(static_cast<size_t>(g.num_roads()), false);
  for (size_t l = 0; l < levels.levels.size(); ++l) {
    for (RoadId r : levels.levels[l]) {
      EXPECT_FALSE(seen[static_cast<size_t>(r)]);
      seen[static_cast<size_t>(r)] = true;
      EXPECT_EQ(levels.hops[static_cast<size_t>(r)],
                static_cast<int>(l));
      ++total;
    }
  }
  size_t reachable = 0;
  for (int h : levels.hops) reachable += h >= 0 ? 1 : 0;
  EXPECT_EQ(total, reachable);
}

TEST(RoadsWithinHopsTest, CoverageCounts) {
  const Graph g = *PathNetwork(10);
  EXPECT_EQ(RoadsWithinHops(g, {5}, 0).size(), 1u);
  EXPECT_EQ(RoadsWithinHops(g, {5}, 1).size(), 3u);
  EXPECT_EQ(RoadsWithinHops(g, {5}, 2).size(), 5u);
  EXPECT_EQ(RoadsWithinHops(g, {0}, 100).size(), 10u);
}

TEST(RoadsWithinHopsTest, MultiSourceUnion) {
  const Graph g = *PathNetwork(10);
  const auto covered = RoadsWithinHops(g, {0, 9}, 1);
  EXPECT_EQ(covered.size(), 4u);  // {0,1} and {8,9}
}

}  // namespace
}  // namespace crowdrtse::graph
