#include "util/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "util/clock.h"

namespace crowdrtse::util::trace {
namespace {

/// Finds the single span named `name`; fails the test if absent.
const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans,
                           const std::string& name) {
  for (const SpanRecord& span : spans) {
    if (span.name == name) return &span;
  }
  ADD_FAILURE() << "span not found: " << name;
  return nullptr;
}

TEST(SpanTest, NoopWithoutActiveTrace) {
  EXPECT_EQ(ActiveTrace(), nullptr);
  EXPECT_EQ(ActiveQueryId(), 0);
  Span span("orphan");
  EXPECT_FALSE(span.active());
  span.Annotate("ignored", int64_t{1});  // must not crash
}

TEST(SpanTest, NestsLexicallyAndRestoresParent) {
  SimClock clock;
  Trace trace(/*query_id=*/7, &clock);
  {
    ScopedTrace scoped(&trace);
    EXPECT_EQ(ActiveTrace(), &trace);
    EXPECT_EQ(ActiveQueryId(), 7);
    Span outer("outer");
    clock.AdvanceMillis(1.0);
    {
      Span inner("inner");
      clock.AdvanceMillis(2.0);
      Span innermost("innermost");
      clock.AdvanceMillis(1.0);
    }
    Span sibling("sibling");  // inner closed: parent must be outer again
  }
  EXPECT_EQ(ActiveTrace(), nullptr);

  const std::vector<SpanRecord> spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  const SpanRecord* outer = FindSpan(spans, "outer");
  const SpanRecord* inner = FindSpan(spans, "inner");
  const SpanRecord* innermost = FindSpan(spans, "innermost");
  const SpanRecord* sibling = FindSpan(spans, "sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(innermost, nullptr);
  ASSERT_NE(sibling, nullptr);
  EXPECT_EQ(outer->parent, 0);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(innermost->parent, inner->id);
  EXPECT_EQ(sibling->parent, outer->id);
  // SimClock timing: inner spans 3ms, innermost 1ms.
  EXPECT_EQ(inner->end_us - inner->start_us, 3000);
  EXPECT_EQ(innermost->end_us - innermost->start_us, 1000);
  // Children sit inside their parent's window.
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->end_us, outer->end_us);
}

TEST(SpanTest, EndIsIdempotentAndAnnotationsFormat) {
  SimClock clock;
  Trace trace(1, &clock);
  ScopedTrace scoped(&trace);
  {
    Span span("annotated");
    span.Annotate("text", "hello");
    span.Annotate("count", int64_t{42});
    span.Annotate("ratio", 0.25);
    span.End();
    span.End();  // second End must not record a duplicate
  }
  const std::vector<SpanRecord> spans = trace.spans();
  ASSERT_EQ(spans.size(), 1u);
  std::map<std::string, std::string> notes;
  for (const Annotation& a : spans[0].annotations) notes[a.key] = a.value;
  EXPECT_EQ(notes["text"], "hello");
  EXPECT_EQ(notes["count"], "42");
  EXPECT_EQ(notes["ratio"].substr(0, 4), "0.25");
}

TEST(TraceTest, AddCompleteSpanRecordsGivenWindow) {
  SimClock clock;
  Trace trace(3, &clock);
  const int64_t parent = trace.NextSpanId();
  const int64_t id = AddCompleteSpan(&trace, "event", parent,
                                     /*start_us=*/100, /*end_us=*/250,
                                     {{"outcome", "accepted"}});
  EXPECT_GT(id, parent);
  const std::vector<SpanRecord> spans = trace.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].id, id);
  EXPECT_EQ(spans[0].parent, parent);
  EXPECT_EQ(spans[0].start_us, 100);
  EXPECT_EQ(spans[0].end_us, 250);
  // Null trace: no-op, id 0.
  EXPECT_EQ(AddCompleteSpan(nullptr, "event", 0, 0, 1, {}), 0);
}

TEST(TraceTest, ConcurrentRecordingKeepsEverySpan) {
  SimClock clock;
  Trace trace(5, &clock);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      // Each thread installs the shared trace and records its own spans —
      // the serving thread plus a gamma-cache compute in real life.
      ScopedTrace scoped(&trace);
      for (int i = 0; i < kPerThread; ++i) {
        Span span("worker");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(trace.spans().size(),
            static_cast<size_t>(kThreads * kPerThread));
}

TEST(ShouldSampleTest, ExtremesAndDeterminism) {
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_FALSE(ShouldSample(0.0, key));
    EXPECT_FALSE(ShouldSample(-1.0, key));
    EXPECT_TRUE(ShouldSample(1.0, key));
    EXPECT_TRUE(ShouldSample(2.0, key));
    // Pure function of (rate, key): the same key decides identically.
    EXPECT_EQ(ShouldSample(0.5, key), ShouldSample(0.5, key));
  }
}

TEST(ShouldSampleTest, RateApproximatesFraction) {
  int sampled = 0;
  constexpr int kKeys = 10000;
  for (uint64_t key = 1; key <= kKeys; ++key) {
    if (ShouldSample(0.25, key)) ++sampled;
  }
  EXPECT_GT(sampled, kKeys / 4 - kKeys / 20);
  EXPECT_LT(sampled, kKeys / 4 + kKeys / 20);
}

TEST(SummarizeTest, MergesSameNamedSiblings) {
  SimClock clock;
  Trace trace(9, &clock);
  {
    ScopedTrace scoped(&trace);
    Span root("serve");
    for (int i = 0; i < 3; ++i) {
      Span child("retry");
      clock.AdvanceMillis(2.0);
    }
    Span other("settle");
    clock.AdvanceMillis(1.0);
  }
  const TraceSummary summary = Summarize(trace);
  EXPECT_EQ(summary.query_id, 9);
  ASSERT_FALSE(summary.empty());
  EXPECT_EQ(summary.lines[0].name, "serve");
  EXPECT_EQ(summary.lines[0].depth, 0);
  bool found_merged = false;
  for (const TraceSummary::Line& line : summary.lines) {
    if (line.name == "retry") {
      found_merged = true;
      EXPECT_EQ(line.count, 3);
      EXPECT_NEAR(line.total_ms, 6.0, 1e-6);
      EXPECT_EQ(line.depth, 1);
    }
  }
  EXPECT_TRUE(found_merged);
  const std::string text = summary.ToString();
  EXPECT_NE(text.find("retry x3"), std::string::npos);
}

TEST(ChromeTraceJsonTest, EmitsCompleteEventsWithIdsAndEscapes) {
  SimClock clock;
  auto trace = std::make_shared<Trace>(11, &clock);
  {
    ScopedTrace scoped(trace.get());
    Span span("outer");
    span.Annotate("note", "quo\"te");
    clock.AdvanceMillis(1.0);
    Span child("child");
    clock.AdvanceMillis(1.0);
  }
  const std::string json = ChromeTraceJson({trace});
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread_name
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":11"), std::string::npos);
  EXPECT_NE(json.find("\"query_id\":11"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"child\""), std::string::npos);
  // The quote in the annotation value must arrive escaped.
  EXPECT_NE(json.find("quo\\\"te"), std::string::npos);
  EXPECT_EQ(json.find("quo\"te\""), std::string::npos);
  // Null traces are skipped, empty input still renders a valid shell.
  EXPECT_NE(ChromeTraceJson({nullptr}).find("[]"), std::string::npos);
}

TEST(ChromeTraceJsonTest, WriteChromeTraceFileRoundTrips) {
  SimClock clock;
  auto trace = std::make_shared<Trace>(2, &clock);
  {
    ScopedTrace scoped(trace.get());
    Span span("serve");
    clock.AdvanceMillis(1.0);
  }
  const std::string path =
      ::testing::TempDir() + "/crowdrtse_trace_roundtrip.json";
  ASSERT_TRUE(WriteChromeTraceFile(path, {trace}).ok());
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string content(1 << 16, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), file));
  std::fclose(file);
  EXPECT_EQ(content, ChromeTraceJson({trace}));
  std::remove(path.c_str());
  // Unwritable path surfaces as a status, not a crash.
  EXPECT_FALSE(
      WriteChromeTraceFile("/nonexistent-dir/trace.json", {trace}).ok());
}

std::shared_ptr<const Trace> MakeTimedTrace(int64_t query_id,
                                            double duration_ms) {
  SimClock clock;
  auto trace = std::make_shared<Trace>(query_id, &clock);
  ScopedTrace scoped(trace.get());
  Span span("serve");
  clock.AdvanceMillis(duration_ms);
  span.End();
  return trace;
}

TEST(TraceCollectorTest, RingEvictsOldestSlowLogKeepsSlowest) {
  TraceCollector::Options options;
  options.ring_size = 2;
  options.slow_log_size = 2;
  TraceCollector collector(options);
  collector.Collect(MakeTimedTrace(1, 50.0));
  collector.Collect(MakeTimedTrace(2, 10.0));
  collector.Collect(MakeTimedTrace(3, 30.0));

  EXPECT_EQ(collector.collected(), 3);
  const auto recent = collector.Recent();
  ASSERT_EQ(recent.size(), 2u);  // query 1 fell off the ring
  EXPECT_EQ(recent[0]->query_id(), 2);
  EXPECT_EQ(recent[1]->query_id(), 3);

  const auto slowest = collector.Slowest();
  ASSERT_EQ(slowest.size(), 2u);  // query 2 was never slow enough
  EXPECT_EQ(slowest[0]->query_id(), 1);
  EXPECT_EQ(slowest[1]->query_id(), 3);

  const std::string report = collector.SlowQueryReport();
  EXPECT_NE(report.find("query 1"), std::string::npos);
  EXPECT_NE(report.find("serve"), std::string::npos);
  EXPECT_EQ(report.find("query 2"), std::string::npos);
}

TEST(TraceCollectorTest, ConcurrentCollectIsSafe) {
  TraceCollector::Options options;
  options.ring_size = 16;
  options.slow_log_size = 4;
  TraceCollector collector(options);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&collector, t] {
      for (int i = 0; i < kPerThread; ++i) {
        collector.Collect(
            MakeTimedTrace(t * kPerThread + i, 1.0 + t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(collector.collected(), kThreads * kPerThread);
  EXPECT_EQ(collector.Recent().size(), 16u);
  EXPECT_EQ(collector.Slowest().size(), 4u);
}

TEST(ScopedTraceTest, ExplicitParentStitchesFanoutThreads) {
  // The sharded router's fan-out: worker threads adopt the router's trace
  // with the root span as explicit parent, so their spans stitch under it
  // instead of forming disconnected roots.
  Trace trace(77);
  int64_t root_id = 0;
  {
    ScopedTrace scoped(&trace);
    Span root("serve");
    root_id = ActiveSpanId();
    ASSERT_NE(root_id, 0);

    std::vector<std::thread> shards;
    for (int s = 0; s < 3; ++s) {
      shards.emplace_back([&trace, root_id, s] {
        ScopedTrace adopt(&trace, root_id);
        Span shard("shard");
        shard.Annotate("shard", static_cast<int64_t>(s));
      });
    }
    for (std::thread& t : shards) t.join();
  }
  const std::vector<SpanRecord> spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  int shard_children = 0;
  for (const SpanRecord& span : spans) {
    if (span.name != "shard") continue;
    ++shard_children;
    EXPECT_EQ(span.parent, root_id) << "fan-out span not stitched";
  }
  EXPECT_EQ(shard_children, 3);
  EXPECT_EQ(FindSpan(spans, "serve")->parent, 0);
}

TEST(ScopedTraceTest, ExplicitParentRestoresPreviousScope) {
  Trace outer_trace(1);
  Trace inner_trace(2);
  ScopedTrace outer(&outer_trace);
  Span outer_span("outer");
  const int64_t outer_id = ActiveSpanId();
  {
    ScopedTrace inner(&inner_trace, 0);
    EXPECT_EQ(ActiveTrace(), &inner_trace);
    EXPECT_EQ(ActiveSpanId(), 0);
    Span root("root");
  }
  EXPECT_EQ(ActiveTrace(), &outer_trace);
  EXPECT_EQ(ActiveSpanId(), outer_id);
  ASSERT_EQ(inner_trace.spans().size(), 1u);
  EXPECT_EQ(inner_trace.spans()[0].parent, 0);
}

}  // namespace
}  // namespace crowdrtse::util::trace
