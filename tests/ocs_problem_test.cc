#include "ocs/ocs_problem.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace crowdrtse::ocs {
namespace {

/// Path 0-1-2-3 with edge rhos {0.8, 0.5, 0.9}.
class OcsProblemTest : public ::testing::Test {
 protected:
  OcsProblemTest()
      : graph_(*graph::PathNetwork(4)),
        table_(*rtf::CorrelationTable::FromEdgeCorrelations(
            graph_, {0.8, 0.5, 0.9})),
        costs_(crowd::CostModel::Constant(4, 1)) {}

  util::Result<OcsProblem> Make(std::vector<graph::RoadId> queried,
                                std::vector<double> weights,
                                std::vector<graph::RoadId> candidates,
                                int budget, double theta) {
    return OcsProblem::Create(table_, std::move(queried), std::move(weights),
                              std::move(candidates), costs_, budget, theta);
  }

  graph::Graph graph_;
  rtf::CorrelationTable table_;
  crowd::CostModel costs_;
};

TEST_F(OcsProblemTest, ObjectiveIsSigmaWeightedMaxCorr) {
  const auto problem = Make({0, 3}, {2.0, 1.0}, {1, 2}, 2, 1.0);
  ASSERT_TRUE(problem.ok());
  // corr(0,1)=0.8, corr(0,2)=0.4; corr(3,1)=0.45, corr(3,2)=0.9.
  EXPECT_NEAR(problem->Objective({1}), 2.0 * 0.8 + 1.0 * 0.45, 1e-12);
  EXPECT_NEAR(problem->Objective({2}), 2.0 * 0.4 + 1.0 * 0.9, 1e-12);
  EXPECT_NEAR(problem->Objective({1, 2}), 2.0 * 0.8 + 1.0 * 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(problem->Objective({}), 0.0);
}

TEST_F(OcsProblemTest, FeasibilityChecksBudget) {
  const auto problem = Make({0}, {1.0}, {1, 2, 3}, 2, 1.0);
  ASSERT_TRUE(problem.ok());
  EXPECT_TRUE(problem->IsFeasible({1, 2}));
  EXPECT_FALSE(problem->IsFeasible({1, 2, 3}));  // cost 3 > budget 2
}

TEST_F(OcsProblemTest, FeasibilityChecksMembershipAndDuplicates) {
  const auto problem = Make({0}, {1.0}, {1, 2}, 5, 1.0);
  ASSERT_TRUE(problem.ok());
  EXPECT_FALSE(problem->IsFeasible({3}));      // not a candidate
  EXPECT_FALSE(problem->IsFeasible({1, 1}));   // duplicate
  EXPECT_TRUE(problem->IsFeasible({}));
}

TEST_F(OcsProblemTest, RedundancyConstraint) {
  // corr(1,2) = 0.5. With theta 0.4 the pair is redundant.
  const auto tight = Make({0}, {1.0}, {1, 2}, 5, 0.4);
  ASSERT_TRUE(tight.ok());
  EXPECT_FALSE(tight->IsFeasible({1, 2}));
  EXPECT_TRUE(tight->RedundancyOk(2, {}));
  EXPECT_FALSE(tight->RedundancyOk(2, {1}));
  const auto loose = Make({0}, {1.0}, {1, 2}, 5, 0.6);
  ASSERT_TRUE(loose.ok());
  EXPECT_TRUE(loose->IsFeasible({1, 2}));
}

TEST_F(OcsProblemTest, RedundancyNeverAllowsReselection) {
  const auto problem = Make({0}, {1.0}, {1, 2}, 5, 1.0);
  ASSERT_TRUE(problem.ok());
  EXPECT_FALSE(problem->RedundancyOk(1, {1}));
}

TEST_F(OcsProblemTest, CreateValidation) {
  EXPECT_FALSE(Make({}, {}, {1}, 2, 1.0).ok());            // no queries
  EXPECT_FALSE(Make({0}, {1.0, 2.0}, {1}, 2, 1.0).ok());   // weight mismatch
  EXPECT_FALSE(Make({0}, {1.0}, {1}, -1, 1.0).ok());       // negative budget
  EXPECT_FALSE(Make({0}, {1.0}, {1}, 2, 0.0).ok());        // theta 0
  EXPECT_FALSE(Make({0}, {1.0}, {1}, 2, 1.5).ok());        // theta > 1
  EXPECT_FALSE(Make({0}, {1.0}, {9}, 2, 1.0).ok());        // bad candidate
  EXPECT_FALSE(Make({9}, {1.0}, {1}, 2, 1.0).ok());        // bad query
  EXPECT_FALSE(Make({0}, {-1.0}, {1}, 2, 1.0).ok());       // negative weight
  EXPECT_FALSE(Make({0}, {1.0}, {1, 1}, 2, 1.0).ok());     // dup candidate
  EXPECT_FALSE(Make({0, 0}, {1.0, 1.0}, {1}, 2, 1.0).ok());  // dup query
}

TEST_F(OcsProblemTest, IncrementalObjectiveMatchesBatch) {
  const auto problem = Make({0, 3}, {2.0, 1.0}, {1, 2}, 5, 1.0);
  ASSERT_TRUE(problem.ok());
  IncrementalObjective inc(*problem);
  EXPECT_NEAR(inc.Gain(1), problem->Objective({1}), 1e-12);
  inc.Add(1);
  EXPECT_NEAR(inc.objective(), problem->Objective({1}), 1e-12);
  EXPECT_NEAR(inc.Gain(2), problem->Objective({1, 2}) - problem->Objective({1}),
              1e-12);
  inc.Add(2);
  EXPECT_NEAR(inc.objective(), problem->Objective({1, 2}), 1e-12);
  EXPECT_EQ(inc.total_cost(), 2);
  EXPECT_EQ(inc.selection(), (std::vector<graph::RoadId>{1, 2}));
}

TEST_F(OcsProblemTest, GainIsMonotoneDiminishing) {
  // Submodularity: gain of a candidate never increases as the selection
  // grows.
  const auto problem = Make({0, 1, 2, 3}, {1.0, 1.0, 1.0, 1.0},
                            {0, 1, 2, 3}, 10, 1.0);
  ASSERT_TRUE(problem.ok());
  IncrementalObjective inc(*problem);
  const double gain_before = inc.Gain(2);
  inc.Add(1);
  const double gain_after = inc.Gain(2);
  EXPECT_LE(gain_after, gain_before + 1e-12);
}

}  // namespace
}  // namespace crowdrtse::ocs
