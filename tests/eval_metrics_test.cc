#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <numeric>

namespace crowdrtse::eval {
namespace {

TEST(ApeTest, Definition) {
  EXPECT_DOUBLE_EQ(AbsolutePercentageError(55.0, 50.0), 0.1);
  EXPECT_DOUBLE_EQ(AbsolutePercentageError(45.0, 50.0), 0.1);
  EXPECT_DOUBLE_EQ(AbsolutePercentageError(50.0, 50.0), 0.0);
}

TEST(QualityTest, MapeAndFer) {
  // Truth 100 everywhere; estimates off by 10%, 30%, 0%.
  const std::vector<double> truth{100.0, 100.0, 100.0};
  const std::vector<double> estimates{110.0, 70.0, 100.0};
  const auto q = ComputeQuality(estimates, truth, {0, 1, 2});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->cases, 3u);
  EXPECT_NEAR(q->mape, (0.1 + 0.3 + 0.0) / 3.0, 1e-12);
  EXPECT_NEAR(q->fer, 1.0 / 3.0, 1e-12);  // only the 30% case exceeds 0.2
  EXPECT_NEAR(q->median_ape, 0.1, 1e-12);
}

TEST(QualityTest, CustomFerThreshold) {
  const std::vector<double> truth{100.0, 100.0};
  const std::vector<double> estimates{105.0, 120.0};
  const auto q = ComputeQuality(estimates, truth, {0, 1}, 0.04);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->fer, 1.0);
}

TEST(QualityTest, SubsetOfRoads) {
  const std::vector<double> truth{100.0, 100.0, 100.0};
  const std::vector<double> estimates{200.0, 100.0, 100.0};
  const auto q = ComputeQuality(estimates, truth, {1, 2});
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->mape, 0.0);
}

TEST(QualityTest, SkipsNonPositiveTruth) {
  const std::vector<double> truth{0.0, 100.0};
  const std::vector<double> estimates{50.0, 100.0};
  const auto q = ComputeQuality(estimates, truth, {0, 1});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->cases, 1u);
  EXPECT_DOUBLE_EQ(q->mape, 0.0);
}

TEST(QualityTest, Validation) {
  EXPECT_FALSE(ComputeQuality({1.0}, {1.0, 2.0}, {0}).ok());
  EXPECT_FALSE(ComputeQuality({1.0}, {1.0}, {5}).ok());
  EXPECT_FALSE(ComputeQuality({1.0}, {1.0}, {-1}).ok());
}

TEST(QualityTest, EmptyRoadsGiveZeroMetrics) {
  const auto q = ComputeQuality({1.0}, {1.0}, {});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->cases, 0u);
  EXPECT_DOUBLE_EQ(q->mape, 0.0);
}

TEST(DapeTest, FractionsSumToOneAndBinCorrectly) {
  // APEs: 0.02 (bin 0), 0.07 (bin 1), 0.60 (open tail).
  const std::vector<double> truth{100.0, 100.0, 100.0};
  const std::vector<double> estimates{102.0, 107.0, 160.0};
  const auto dape = ComputeDape(estimates, truth, {0, 1, 2});
  ASSERT_TRUE(dape.ok());
  EXPECT_EQ(dape->total_cases, 3u);
  const double total = std::accumulate(dape->fractions.begin(),
                                       dape->fractions.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(dape->fractions[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(dape->fractions[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(dape->fractions.back(), 1.0 / 3.0, 1e-12);
}

TEST(DapeTest, EmptyInput) {
  const auto dape = ComputeDape({}, {}, {});
  ASSERT_TRUE(dape.ok());
  EXPECT_EQ(dape->total_cases, 0u);
}

TEST(AccumulatorTest, MeansAcrossTrials) {
  QualityAccumulator acc;
  QualityMetrics a;
  a.mape = 0.1;
  a.fer = 0.2;
  a.median_ape = 0.05;
  a.cases = 10;
  QualityMetrics b;
  b.mape = 0.3;
  b.fer = 0.4;
  b.median_ape = 0.15;
  b.cases = 20;
  acc.Add(a);
  acc.Add(b);
  const QualityMetrics mean = acc.Mean();
  EXPECT_NEAR(mean.mape, 0.2, 1e-12);
  EXPECT_NEAR(mean.fer, 0.3, 1e-12);
  EXPECT_NEAR(mean.median_ape, 0.1, 1e-12);
  EXPECT_EQ(mean.cases, 30u);
  EXPECT_EQ(acc.trials(), 2u);
}

TEST(AccumulatorTest, EmptyMeanIsZero) {
  const QualityMetrics mean = QualityAccumulator().Mean();
  EXPECT_DOUBLE_EQ(mean.mape, 0.0);
  EXPECT_EQ(mean.cases, 0u);
}

}  // namespace
}  // namespace crowdrtse::eval
