#include "rtf/moment_accumulator.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "rtf/moment_estimator.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::rtf {
namespace {

class MomentAccumulatorTest : public ::testing::Test {
 protected:
  MomentAccumulatorTest() {
    util::Rng rng(3);
    graph::RoadNetworkOptions net;
    net.num_roads = 40;
    graph_ = *graph::RoadNetwork(net, rng);
  }

  graph::Graph graph_;
};

TEST_F(MomentAccumulatorTest, MatchesBatchEstimator) {
  traffic::TrafficModelOptions traffic_options;
  traffic_options.num_days = 8;
  const traffic::TrafficSimulator sim(graph_, traffic_options, 5);
  const traffic::HistoryStore history = sim.GenerateHistory();

  for (int window : {0, 1, 2}) {
    MomentEstimatorOptions batch_options;
    batch_options.slot_window = window;
    const auto batch = EstimateByMoments(graph_, history, batch_options);
    ASSERT_TRUE(batch.ok());

    MomentAccumulator accumulator(graph_, history.num_slots(), window,
                                  batch_options.min_sigma);
    ASSERT_TRUE(accumulator.AbsorbHistory(history).ok());
    const auto streamed = accumulator.EmitModel();
    ASSERT_TRUE(streamed.ok());

    for (int slot : {0, 99, 287}) {
      for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
        EXPECT_NEAR(streamed->Mu(slot, r), batch->Mu(slot, r), 1e-9);
        EXPECT_NEAR(streamed->Sigma(slot, r), batch->Sigma(slot, r), 1e-9);
      }
      for (graph::EdgeId e = 0; e < graph_.num_edges(); ++e) {
        EXPECT_NEAR(streamed->Rho(slot, e), batch->Rho(slot, e), 1e-9);
      }
    }
  }
}

TEST_F(MomentAccumulatorTest, IncrementalAbsorptionEqualsBulk) {
  traffic::TrafficModelOptions traffic_options;
  traffic_options.num_days = 6;
  const traffic::TrafficSimulator sim(graph_, traffic_options, 7);
  const traffic::HistoryStore history = sim.GenerateHistory();

  MomentAccumulator bulk(graph_, history.num_slots(), 1);
  ASSERT_TRUE(bulk.AbsorbHistory(history).ok());

  // Absorb day by day instead (as an online deployment would).
  MomentAccumulator streaming(graph_, history.num_slots(), 1);
  for (int day = 0; day < history.num_days(); ++day) {
    ASSERT_TRUE(streaming.AbsorbDay(sim.GenerateDay(day)).ok());
  }
  EXPECT_EQ(streaming.num_days_absorbed(), bulk.num_days_absorbed());
  const auto a = bulk.EmitModel();
  const auto b = streaming.EmitModel();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
    EXPECT_NEAR(a->Mu(150, r), b->Mu(150, r), 1e-9);
    EXPECT_NEAR(a->Sigma(150, r), b->Sigma(150, r), 1e-9);
  }
}

TEST_F(MomentAccumulatorTest, ModelFreshensWithNewData) {
  // Absorb a quiet history, then days with a persistent new slowdown on
  // road 0; mu must drift towards the new regime.
  traffic::TrafficModelOptions traffic_options;
  traffic_options.num_days = 4;
  const traffic::TrafficSimulator sim(graph_, traffic_options, 9);
  MomentAccumulator accumulator(graph_, traffic::kSlotsPerDay, 0);
  ASSERT_TRUE(accumulator.AbsorbHistory(sim.GenerateHistory()).ok());
  const auto before = accumulator.EmitModel();
  ASSERT_TRUE(before.ok());

  for (int extra = 0; extra < 12; ++extra) {
    traffic::DayMatrix day = sim.GenerateDay(100 + extra);
    for (int slot = 0; slot < traffic::kSlotsPerDay; ++slot) {
      day.At(slot, 0) *= 0.5;  // road 0 permanently slowed
    }
    ASSERT_TRUE(accumulator.AbsorbDay(day).ok());
  }
  const auto after = accumulator.EmitModel();
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->Mu(100, 0), before->Mu(100, 0) * 0.85);
}

TEST_F(MomentAccumulatorTest, Validation) {
  MomentAccumulator accumulator(graph_, 10, 1);
  traffic::DayMatrix wrong_roads(10, 5);
  EXPECT_FALSE(accumulator.AbsorbDay(wrong_roads).ok());
  traffic::DayMatrix wrong_slots(5, graph_.num_roads());
  EXPECT_FALSE(accumulator.AbsorbDay(wrong_slots).ok());
  EXPECT_FALSE(accumulator.EmitModel().ok());  // 0 days
  traffic::DayMatrix ok_day(10, graph_.num_roads());
  ASSERT_TRUE(accumulator.AbsorbDay(ok_day).ok());
  EXPECT_FALSE(accumulator.EmitModel().ok());  // 1 day still too few
  ASSERT_TRUE(accumulator.AbsorbDay(ok_day).ok());
  EXPECT_TRUE(accumulator.EmitModel().ok());
}

}  // namespace
}  // namespace crowdrtse::rtf
