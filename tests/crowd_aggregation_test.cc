#include "crowd/aggregation.h"

#include <gtest/gtest.h>
#include <cmath>

namespace crowdrtse::crowd {
namespace {

std::vector<SpeedAnswer> MakeAnswers(const std::vector<double>& values) {
  std::vector<SpeedAnswer> answers;
  for (size_t i = 0; i < values.size(); ++i) {
    SpeedAnswer a;
    a.worker = static_cast<WorkerId>(i);
    a.road = 0;
    a.reported_kmh = values[i];
    answers.push_back(a);
  }
  return answers;
}

TEST(AggregationTest, Mean) {
  const auto r =
      AggregateAnswers(MakeAnswers({10, 20, 30}), AggregationPolicy::kMean);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 20.0);
}

TEST(AggregationTest, Median) {
  const auto r = AggregateAnswers(MakeAnswers({10, 100, 30}),
                                  AggregationPolicy::kMedian);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 30.0);
}

TEST(AggregationTest, TrimmedMeanRobustToOutlier) {
  // 10 honest answers near 50 plus two wild ones.
  std::vector<double> values(10, 50.0);
  values.push_back(500.0);
  values.push_back(0.0);
  const auto trimmed =
      AggregateAnswers(MakeAnswers(values), AggregationPolicy::kTrimmedMean);
  const auto mean =
      AggregateAnswers(MakeAnswers(values), AggregationPolicy::kMean);
  ASSERT_TRUE(trimmed.ok());
  ASSERT_TRUE(mean.ok());
  EXPECT_NEAR(*trimmed, 50.0, 1.0);
  EXPECT_GT(std::fabs(*mean - 50.0), 5.0);
}

TEST(AggregationTest, SingleAnswerPassesThrough) {
  for (auto policy :
       {AggregationPolicy::kMean, AggregationPolicy::kMedian,
        AggregationPolicy::kTrimmedMean}) {
    const auto r = AggregateAnswers(MakeAnswers({42.0}), policy);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(*r, 42.0);
  }
}

TEST(AggregationTest, EmptyFails) {
  EXPECT_FALSE(AggregateAnswers({}, AggregationPolicy::kMean).ok());
}

TEST(AggregationTest, PolicyNames) {
  EXPECT_STREQ(AggregationPolicyName(AggregationPolicy::kMean), "mean");
  EXPECT_STREQ(AggregationPolicyName(AggregationPolicy::kMedian), "median");
  EXPECT_STREQ(AggregationPolicyName(AggregationPolicy::kTrimmedMean),
               "trimmed_mean");
}

}  // namespace
}  // namespace crowdrtse::crowd
