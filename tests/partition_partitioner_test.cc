#include "partition/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "graph/bfs.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "partition/partition_io.h"
#include "rtf/correlation_table.h"
#include "util/rng.h"

namespace crowdrtse::partition {
namespace {

graph::Graph MakeWorld(
    std::vector<std::pair<double, double>>* positions, int num_roads = 607) {
  util::Rng rng(11);
  graph::RoadNetworkOptions net;
  net.num_roads = num_roads;
  return *graph::RoadNetwork(net, rng, positions);
}

/// Deterministic per-edge correlation from global endpoint ids, so the
/// same physical edge carries the same rho in the global graph and in any
/// induced subgraph.
double EdgeRho(graph::RoadId u, graph::RoadId v) {
  if (u > v) std::swap(u, v);
  const uint64_t h = static_cast<uint64_t>(u) * 2654435761ull +
                     static_cast<uint64_t>(v) * 40503ull;
  return 0.3 + 0.6 * static_cast<double>(h % 10007) / 10007.0;
}

std::vector<double> GlobalEdgeRhos(const graph::Graph& g) {
  std::vector<double> rhos(static_cast<size_t>(g.num_edges()));
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.EdgeEndpoints(e);
    rhos[static_cast<size_t>(e)] = EdgeRho(u, v);
  }
  return rhos;
}

TEST(PartitionerTest, DeterministicForFixedSeed) {
  std::vector<std::pair<double, double>> positions;
  const graph::Graph g = MakeWorld(&positions);
  PartitionerOptions options;
  options.num_shards = 4;
  options.seed = 42;
  const auto a = PartitionByGeography(g, positions, options);
  const auto b = PartitionByGeography(g, positions, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->owner, b->owner);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(a->shards[s].owned, b->shards[s].owned);
    EXPECT_EQ(a->shards[s].halo, b->shards[s].halo);
  }
}

TEST(PartitionerTest, EveryRoadOwnedExactlyOnce) {
  std::vector<std::pair<double, double>> positions;
  const graph::Graph g = MakeWorld(&positions);
  PartitionerOptions options;
  options.num_shards = 5;  // non-power-of-two K
  const auto partition = PartitionByGeography(g, positions, options);
  ASSERT_TRUE(partition.ok());
  std::vector<int> seen(static_cast<size_t>(g.num_roads()), 0);
  for (const ShardLayout& shard : partition->shards) {
    for (graph::RoadId r : shard.owned) ++seen[static_cast<size_t>(r)];
  }
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    EXPECT_EQ(seen[static_cast<size_t>(r)], 1) << "road " << r;
    EXPECT_TRUE(std::binary_search(
        partition->shards[static_cast<size_t>(partition->OwnerOf(r))]
            .owned.begin(),
        partition->shards[static_cast<size_t>(partition->OwnerOf(r))]
            .owned.end(),
        r));
  }
}

TEST(PartitionerTest, BalanceWithinBudget) {
  std::vector<std::pair<double, double>> positions;
  const graph::Graph g = MakeWorld(&positions);
  for (int k : {2, 3, 4, 8}) {
    PartitionerOptions options;
    options.num_shards = k;
    const auto partition = PartitionByGeography(g, positions, options);
    ASSERT_TRUE(partition.ok());
    EXPECT_LE(partition->BalanceRatio(), 1.2) << "K=" << k;
  }
}

TEST(PartitionerTest, RefinementDoesNotWorsenEdgeCut) {
  std::vector<std::pair<double, double>> positions;
  const graph::Graph g = MakeWorld(&positions);
  PartitionerOptions raw;
  raw.num_shards = 4;
  raw.refine_passes = 0;
  PartitionerOptions refined = raw;
  refined.refine_passes = 3;
  const auto a = PartitionByGeography(g, positions, raw);
  const auto b = PartitionByGeography(g, positions, refined);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(EdgeCut(g, *b), EdgeCut(g, *a));
}

TEST(PartitionerTest, HaloClosesTheHopBall) {
  std::vector<std::pair<double, double>> positions;
  const graph::Graph g = MakeWorld(&positions);
  PartitionerOptions options;
  options.num_shards = 4;
  options.halo_radius = 3;
  const auto partition = PartitionByGeography(g, positions, options);
  ASSERT_TRUE(partition.ok());
  for (const ShardLayout& shard : partition->shards) {
    const std::vector<graph::RoadId> ball =
        graph::RoadsWithinHops(g, shard.owned, options.halo_radius);
    for (graph::RoadId r : ball) {
      EXPECT_NE(shard.LocalId(r), graph::kInvalidRoad)
          << "road " << r << " is within " << options.halo_radius
          << " hops of an owned road but is not a member";
    }
  }
}

// The locality contract behind sharded serving: for roads whose C-hop
// ball lies inside the shard, the sparse Gamma_R computed on the induced
// subgraph is bit-identical to the global one.
TEST(PartitionerTest, ShardLocalSparseGammaMatchesGlobalBitwise) {
  std::vector<std::pair<double, double>> positions;
  const graph::Graph g = MakeWorld(&positions, 300);
  const int kHopC = 2;
  PartitionerOptions options;
  options.num_shards = 3;
  options.halo_radius = 2 * kHopC;
  const auto partition = PartitionByGeography(g, positions, options);
  ASSERT_TRUE(partition.ok());

  const auto global = rtf::CorrelationTable::FromEdgeCorrelations(
      g, GlobalEdgeRhos(g), rtf::PathWeightMode::kNegLog, nullptr, kHopC);
  ASSERT_TRUE(global.ok());

  for (const ShardLayout& shard : partition->shards) {
    const auto sub = graph::InducedSubgraph(g, shard.members);
    ASSERT_TRUE(sub.ok());
    std::vector<double> sub_rhos(
        static_cast<size_t>(sub->graph.num_edges()));
    for (graph::EdgeId e = 0; e < sub->graph.num_edges(); ++e) {
      const auto [a, b] = sub->graph.EdgeEndpoints(e);
      sub_rhos[static_cast<size_t>(e)] =
          EdgeRho(sub->original_ids[static_cast<size_t>(a)],
                  sub->original_ids[static_cast<size_t>(b)]);
    }
    const auto local = rtf::CorrelationTable::FromEdgeCorrelations(
        sub->graph, sub_rhos, rtf::PathWeightMode::kNegLog, nullptr, kHopC);
    ASSERT_TRUE(local.ok());
    for (size_t li = 0; li < shard.members.size(); ++li) {
      if (!shard.owned_local[li]) continue;
      const graph::RoadId gi = shard.members[li];
      for (size_t lj = 0; lj < shard.members.size(); ++lj) {
        const graph::RoadId gj = shard.members[lj];
        EXPECT_EQ(local->Corr(static_cast<graph::RoadId>(li),
                              static_cast<graph::RoadId>(lj)),
                  global->Corr(gi, gj))
            << "Gamma(" << gi << ", " << gj << ")";
      }
    }
  }
}

TEST(PartitionerTest, RejectsBadOptions) {
  std::vector<std::pair<double, double>> positions;
  const graph::Graph g = MakeWorld(&positions, 50);
  PartitionerOptions options;
  options.num_shards = 0;
  EXPECT_FALSE(PartitionByGeography(g, positions, options).ok());
  options.num_shards = 51;
  EXPECT_FALSE(PartitionByGeography(g, positions, options).ok());
  options.num_shards = 2;
  options.halo_radius = -1;
  EXPECT_FALSE(PartitionByGeography(g, positions, options).ok());
  options.halo_radius = 2;
  EXPECT_FALSE(
      PartitionByGeography(g, {{0.0, 0.0}}, options).ok());  // size mismatch
}

TEST(PartitionIoTest, RoundTripsThroughDisk) {
  std::vector<std::pair<double, double>> positions;
  const graph::Graph g = MakeWorld(&positions, 200);
  PartitionerOptions options;
  options.num_shards = 4;
  options.seed = 7;
  options.halo_radius = 3;
  const auto partition = PartitionByGeography(g, positions, options);
  ASSERT_TRUE(partition.ok());
  const std::string path = ::testing::TempDir() + "/partition_roundtrip.bin";
  ASSERT_TRUE(SavePartition(path, *partition).ok());
  const auto loaded = LoadPartition(path, g);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_roads, partition->num_roads);
  EXPECT_EQ(loaded->num_shards, partition->num_shards);
  EXPECT_EQ(loaded->halo_radius, partition->halo_radius);
  EXPECT_EQ(loaded->seed, partition->seed);
  EXPECT_EQ(loaded->graph_checksum, partition->graph_checksum);
  EXPECT_EQ(loaded->owner, partition->owner);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(loaded->shards[s].owned, partition->shards[s].owned);
    EXPECT_EQ(loaded->shards[s].halo, partition->shards[s].halo);
    EXPECT_EQ(loaded->shards[s].members, partition->shards[s].members);
  }
}

TEST(PartitionIoTest, RejectsTableFromDifferentRoadCount) {
  std::vector<std::pair<double, double>> positions;
  const graph::Graph g = MakeWorld(&positions, 200);
  PartitionerOptions options;
  options.num_shards = 2;
  const auto partition = PartitionByGeography(g, positions, options);
  ASSERT_TRUE(partition.ok());
  const std::string path = ::testing::TempDir() + "/partition_wrong_n.bin";
  ASSERT_TRUE(SavePartition(path, *partition).ok());

  std::vector<std::pair<double, double>> other_positions;
  const graph::Graph other = MakeWorld(&other_positions, 100);
  const auto loaded = LoadPartition(path, other);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("different map"),
            std::string::npos)
      << loaded.status().message();
}

TEST(PartitionIoTest, RejectsTableFromDifferentEdgeSet) {
  std::vector<std::pair<double, double>> positions;
  const graph::Graph g = MakeWorld(&positions, 200);
  PartitionerOptions options;
  options.num_shards = 2;
  const auto partition = PartitionByGeography(g, positions, options);
  ASSERT_TRUE(partition.ok());
  const std::string path = ::testing::TempDir() + "/partition_wrong_edges.bin";
  ASSERT_TRUE(SavePartition(path, *partition).ok());

  // Same road count, different wiring: another RNG stream reshuffles the
  // nearest-neighbour edges, so the checksum moves.
  util::Rng rng(99);
  graph::RoadNetworkOptions net;
  net.num_roads = 200;
  const graph::Graph other = *graph::RoadNetwork(net, rng);
  ASSERT_NE(graph::EdgeListChecksum(other), partition->graph_checksum);
  const auto loaded = LoadPartition(path, other);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("different edge set"),
            std::string::npos)
      << loaded.status().message();
}

}  // namespace
}  // namespace crowdrtse::partition
