#include "core/theta_tuner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::core {
namespace {

class ThetaTunerTest : public ::testing::Test {
 protected:
  ThetaTunerTest() {
    util::Rng rng(3);
    graph::RoadNetworkOptions net;
    net.num_roads = 80;
    graph_ = *graph::RoadNetwork(net, rng);
    traffic::TrafficModelOptions traffic_options;
    traffic_options.num_days = 10;
    const traffic::TrafficSimulator sim(graph_, traffic_options, 7);
    history_ = sim.GenerateHistory();
    costs_ = crowd::CostModel::Constant(80, 2);
  }

  ThetaTunerOptions FastOptions() {
    ThetaTunerOptions options;
    options.candidate_thetas = {0.7, 0.9, 1.0};
    options.validation_days = 2;
    options.slots = {99};
    options.budget = 20;
    options.query_size = 25;
    return options;
  }

  graph::Graph graph_;
  traffic::HistoryStore history_;
  crowd::CostModel costs_;
};

TEST_F(ThetaTunerTest, PicksACandidateAndScoresAll) {
  const auto result = TuneTheta(graph_, history_, costs_, FastOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->scores.size(), 3u);
  bool best_in_candidates = false;
  for (const ThetaScore& score : result->scores) {
    EXPECT_TRUE(std::isfinite(score.mape));
    EXPECT_GE(score.mape, 0.0);
    if (score.theta == result->best_theta) {
      best_in_candidates = true;
      // The winner has the (tied-)lowest MAPE.
      for (const ThetaScore& other : result->scores) {
        EXPECT_LE(score.mape, other.mape + 1e-9);
      }
    }
  }
  EXPECT_TRUE(best_in_candidates);
}

TEST_F(ThetaTunerTest, HonoursConfiguredPathWeightMode) {
  // The tuner must validate with the same closure semantics the engine
  // will serve with (it used to hard-code kNegLog).
  ThetaTunerOptions options = FastOptions();
  options.path_mode = rtf::PathWeightMode::kReciprocal;
  const auto result = TuneTheta(graph_, history_, costs_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->scores.size(), 3u);
  for (const ThetaScore& score : result->scores) {
    EXPECT_TRUE(std::isfinite(score.mape));
    EXPECT_GE(score.mape, 0.0);
  }
}

TEST_F(ThetaTunerTest, Deterministic) {
  const auto a = TuneTheta(graph_, history_, costs_, FastOptions());
  const auto b = TuneTheta(graph_, history_, costs_, FastOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->best_theta, b->best_theta);
  for (size_t i = 0; i < a->scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->scores[i].mape, b->scores[i].mape);
  }
}

TEST_F(ThetaTunerTest, TiesGoToSmallerTheta) {
  // A single candidate repeated twice with distinct values that can tie is
  // hard to force; instead check the documented rule on a degenerate list
  // where both thetas are permissive enough to never bind -> equal MAPE.
  ThetaTunerOptions options = FastOptions();
  options.candidate_thetas = {0.999, 1.0};
  const auto result = TuneTheta(graph_, history_, costs_, options);
  ASSERT_TRUE(result.ok());
  if (std::fabs(result->scores[0].mape - result->scores[1].mape) < 1e-12) {
    EXPECT_DOUBLE_EQ(result->best_theta, 0.999);
  }
}

TEST_F(ThetaTunerTest, Validation) {
  ThetaTunerOptions bad = FastOptions();
  bad.candidate_thetas = {};
  EXPECT_FALSE(TuneTheta(graph_, history_, costs_, bad).ok());
  bad = FastOptions();
  bad.candidate_thetas = {0.0};
  EXPECT_FALSE(TuneTheta(graph_, history_, costs_, bad).ok());
  bad = FastOptions();
  bad.validation_days = 9;  // leaves 1 training day
  EXPECT_FALSE(TuneTheta(graph_, history_, costs_, bad).ok());
  bad = FastOptions();
  bad.query_size = 0;
  EXPECT_FALSE(TuneTheta(graph_, history_, costs_, bad).ok());
  bad = FastOptions();
  bad.slots = {9999};
  EXPECT_FALSE(TuneTheta(graph_, history_, costs_, bad).ok());
}

}  // namespace
}  // namespace crowdrtse::core
