#include "graph/graph.h"

#include <gtest/gtest.h>

namespace crowdrtse::graph {
namespace {

Graph Triangle() {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  return *builder.Build();
}

TEST(GraphBuilderTest, BuildsTriangle) {
  const Graph g = Triangle();
  EXPECT_EQ(g.num_roads(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_EQ(g.Degree(2), 2);
}

TEST(GraphBuilderTest, EdgeIdsAreInsertionOrder) {
  GraphBuilder builder(3);
  const EdgeId e0 = builder.AddEdge(0, 1);
  const EdgeId e1 = builder.AddEdge(2, 1);  // reversed order is normalised
  EXPECT_EQ(e0, 0);
  EXPECT_EQ(e1, 1);
  const Graph g = *builder.Build();
  EXPECT_EQ(g.EdgeEndpoints(1), (std::pair<RoadId, RoadId>{1, 2}));
}

TEST(GraphBuilderTest, RejectsSelfLoop) {
  GraphBuilder builder(2);
  builder.AddEdge(1, 1);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(GraphBuilderTest, RejectsDuplicateEdge) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);  // same undirected edge
  EXPECT_FALSE(builder.Build().ok());
}

TEST(GraphBuilderTest, RejectsOutOfRangeEndpoint) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 5);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder builder(0);
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_roads(), 0);
  EXPECT_EQ(g->num_edges(), 0);
}

TEST(GraphBuilderTest, IsolatedRoads) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  const Graph g = *builder.Build();
  EXPECT_EQ(g.Degree(2), 0);
  EXPECT_TRUE(g.Neighbors(3).empty());
}

TEST(GraphTest, NeighborsAreSortedAndCarryEdgeIds) {
  GraphBuilder builder(4);
  builder.AddEdge(2, 0);
  builder.AddEdge(2, 3);
  builder.AddEdge(2, 1);
  const Graph g = *builder.Build();
  const auto neighbors = g.Neighbors(2);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0].neighbor, 0);
  EXPECT_EQ(neighbors[1].neighbor, 1);
  EXPECT_EQ(neighbors[2].neighbor, 3);
  EXPECT_EQ(neighbors[0].edge, 0);
  EXPECT_EQ(neighbors[1].edge, 2);
  EXPECT_EQ(neighbors[2].edge, 1);
}

TEST(GraphTest, FindEdge) {
  const Graph g = Triangle();
  EXPECT_NE(g.FindEdge(0, 1), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(0, 1), g.FindEdge(1, 0));
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  const Graph path = *builder.Build();
  EXPECT_EQ(path.FindEdge(0, 2), kInvalidEdge);
  EXPECT_EQ(path.FindEdge(0, 99), kInvalidEdge);
}

TEST(GraphTest, AreAdjacent) {
  const Graph g = Triangle();
  EXPECT_TRUE(g.AreAdjacent(0, 2));
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 3);
  const Graph split = *builder.Build();
  EXPECT_FALSE(split.AreAdjacent(1, 2));
}

TEST(GraphTest, IsValidRoad) {
  const Graph g = Triangle();
  EXPECT_TRUE(g.IsValidRoad(0));
  EXPECT_TRUE(g.IsValidRoad(2));
  EXPECT_FALSE(g.IsValidRoad(3));
  EXPECT_FALSE(g.IsValidRoad(-1));
}

}  // namespace
}  // namespace crowdrtse::graph
