#include "net/http.h"

#include <gtest/gtest.h>

#include <string>

namespace crowdrtse::net {
namespace {

util::Status FeedAll(HttpRequestParser* parser, const std::string& bytes) {
  return parser->Feed(bytes.data(), bytes.size());
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  ASSERT_TRUE(
      FeedAll(&parser, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").ok());
  HttpRequest request;
  const auto got = parser.Next(&request);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/metrics");
  EXPECT_EQ(request.headers.at("host"), "x");
  EXPECT_TRUE(request.body.empty());
  // No second request pending.
  EXPECT_FALSE(*parser.Next(&request));
}

TEST(HttpParserTest, ParsesPostBodyByContentLength) {
  HttpRequestParser parser;
  const std::string body = "{\"slot\":3}";
  ASSERT_TRUE(FeedAll(&parser,
                      "POST /query HTTP/1.1\r\nContent-Type: "
                      "application/json\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body)
                  .ok());
  HttpRequest request;
  const auto got = parser.Next(&request);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, body);
}

TEST(HttpParserTest, IncrementalBytesAndPipelining) {
  HttpRequestParser parser;
  const std::string wire =
      "POST /query HTTP/1.1\r\nContent-Length: 2\r\n\r\nab"
      "GET /healthz HTTP/1.1\r\n\r\n";
  HttpRequest request;
  int complete = 0;
  for (const char c : wire) {
    ASSERT_TRUE(parser.Feed(&c, 1).ok());
    for (;;) {
      const auto got = parser.Next(&request);
      ASSERT_TRUE(got.ok());
      if (!*got) break;
      ++complete;
      if (complete == 1) {
        EXPECT_EQ(request.body, "ab");
      } else {
        EXPECT_EQ(request.target, "/healthz");
      }
    }
  }
  EXPECT_EQ(complete, 2);
}

TEST(HttpParserTest, SplitsQueryStringAndDecodesTarget) {
  HttpRequestParser parser;
  ASSERT_TRUE(
      FeedAll(&parser, "GET /trace%2F7?limit=5&x=a%20b HTTP/1.1\r\n\r\n")
          .ok());
  HttpRequest request;
  ASSERT_TRUE(*parser.Next(&request));
  EXPECT_EQ(request.target, "/trace/7");
  EXPECT_EQ(request.query, "limit=5&x=a%20b");
}

TEST(HttpParserTest, RejectsMalformedInput) {
  {
    HttpRequestParser parser;
    ASSERT_TRUE(FeedAll(&parser, "NONSENSE\r\n\r\n").ok());
    HttpRequest request;
    EXPECT_FALSE(parser.Next(&request).ok());
  }
  {
    HttpRequestParser parser;
    ASSERT_TRUE(FeedAll(&parser, "GET / HTTP/2\r\n\r\n").ok());
    HttpRequest request;
    EXPECT_FALSE(parser.Next(&request).ok());
  }
  {
    HttpRequestParser parser;
    ASSERT_TRUE(FeedAll(&parser,
                        "GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n")
                    .ok());
    HttpRequest request;
    EXPECT_FALSE(parser.Next(&request).ok());
  }
  {
    HttpRequestParser parser;
    ASSERT_TRUE(
        FeedAll(&parser,
                "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            .ok());
    HttpRequest request;
    EXPECT_FALSE(parser.Next(&request).ok());
  }
}

TEST(HttpParserTest, OversizeHeadersRejected) {
  HttpRequestParser parser;
  std::string huge = "GET / HTTP/1.1\r\nX-Pad: ";
  huge.append(HttpRequestParser::kMaxHeaderBytes, 'x');
  ASSERT_TRUE(FeedAll(&parser, huge).ok());
  HttpRequest request;
  EXPECT_FALSE(parser.Next(&request).ok());
}

TEST(HttpRenderTest, ResponseHasLengthAndParsesStatusLine) {
  const std::string rendered =
      RenderHttpResponse(429, "{\"status\":\"rate_limited\"}",
                         "application/json");
  EXPECT_EQ(rendered.find("HTTP/1.1 429 Too Many Requests\r\n"), 0u);
  EXPECT_NE(rendered.find("Content-Length: 25\r\n"), std::string::npos);
  EXPECT_NE(rendered.find("\r\n\r\n{\"status\":\"rate_limited\"}"),
            std::string::npos);
}

TEST(HttpRenderTest, UrlDecode) {
  EXPECT_EQ(UrlDecode("/a%20b%2Fc"), "/a b/c");
  EXPECT_EQ(UrlDecode("plain"), "plain");
  EXPECT_EQ(UrlDecode("bad%2"), "bad%2");  // truncated escape passes through
  EXPECT_EQ(UrlDecode("%zz"), "%zz");      // non-hex passes through
}

}  // namespace
}  // namespace crowdrtse::net
