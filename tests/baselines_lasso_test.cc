#include "baselines/lasso.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "graph/generators.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::baselines {
namespace {

TEST(LassoFitTest, RecoversSparseLinearModel) {
  // y = 3 x0 - 2 x2 + 5 + noise; x1 is irrelevant.
  util::Rng rng(1);
  const size_t n = 200;
  math::DenseMatrix x(n, 3);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.Normal(0.0, 2.0);
    x.At(i, 1) = rng.Normal(0.0, 2.0);
    x.At(i, 2) = rng.Normal(0.0, 2.0);
    y[i] = 3.0 * x.At(i, 0) - 2.0 * x.At(i, 2) + 5.0 + rng.Normal(0.0, 0.1);
  }
  LassoFitOptions options;
  options.l1_penalty = 0.01;
  const auto fit = LassoFit(x, y, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit->converged);
  EXPECT_NEAR(fit->coefficients[0], 3.0, 0.1);
  EXPECT_NEAR(fit->coefficients[1], 0.0, 0.05);
  EXPECT_NEAR(fit->coefficients[2], -2.0, 0.1);
  EXPECT_NEAR(fit->intercept, 5.0, 0.2);
}

TEST(LassoFitTest, StrongPenaltyZeroesEverything) {
  util::Rng rng(2);
  const size_t n = 100;
  math::DenseMatrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.Normal();
    x.At(i, 1) = rng.Normal();
    y[i] = 0.5 * x.At(i, 0) + rng.Normal(0.0, 0.1);
  }
  LassoFitOptions options;
  options.l1_penalty = 100.0;
  const auto fit = LassoFit(x, y, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit->coefficients[0], 0.0);
  EXPECT_DOUBLE_EQ(fit->coefficients[1], 0.0);
}

TEST(LassoFitTest, PenaltyShrinksCoefficients) {
  util::Rng rng(3);
  const size_t n = 150;
  math::DenseMatrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.Normal();
    x.At(i, 1) = rng.Normal();
    y[i] = 2.0 * x.At(i, 0) + 1.0 * x.At(i, 1) + rng.Normal(0.0, 0.2);
  }
  LassoFitOptions light;
  light.l1_penalty = 0.01;
  LassoFitOptions heavy;
  heavy.l1_penalty = 0.5;
  const auto light_fit = LassoFit(x, y, light);
  const auto heavy_fit = LassoFit(x, y, heavy);
  ASSERT_TRUE(light_fit.ok());
  ASSERT_TRUE(heavy_fit.ok());
  EXPECT_LT(std::fabs(heavy_fit->coefficients[0]),
            std::fabs(light_fit->coefficients[0]));
}

TEST(LassoFitTest, ConstantColumnGetsZero) {
  math::DenseMatrix x(10, 2);
  std::vector<double> y(10);
  for (size_t i = 0; i < 10; ++i) {
    x.At(i, 0) = 7.0;  // constant
    x.At(i, 1) = static_cast<double>(i);
    y[i] = 2.0 * static_cast<double>(i);
  }
  const auto fit = LassoFit(x, y, {});
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit->coefficients[0], 0.0);
}

TEST(LassoFitTest, Validation) {
  math::DenseMatrix x(5, 2);
  EXPECT_FALSE(LassoFit(x, std::vector<double>(4), {}).ok());
  math::DenseMatrix tiny(1, 2);
  EXPECT_FALSE(LassoFit(tiny, std::vector<double>(1), {}).ok());
  LassoFitOptions bad;
  bad.l1_penalty = -1.0;
  EXPECT_FALSE(LassoFit(x, std::vector<double>(5), bad).ok());
}

class LassoEstimatorTest : public ::testing::Test {
 protected:
  LassoEstimatorTest() {
    util::Rng rng(5);
    graph::RoadNetworkOptions net;
    net.num_roads = 40;
    graph_ = *graph::RoadNetwork(net, rng);
    traffic::TrafficModelOptions traffic_options;
    traffic_options.num_days = 10;
    sim_ = std::make_unique<traffic::TrafficSimulator>(graph_,
                                                       traffic_options, 7);
    history_ = sim_->GenerateHistory();
  }

  graph::Graph graph_;
  std::unique_ptr<traffic::TrafficSimulator> sim_;
  traffic::HistoryStore history_;
};

TEST_F(LassoEstimatorTest, ObservedRoadsEchoAndOthersReasonable) {
  LassoEstimatorOptions options;
  const LassoEstimator estimator(graph_, history_, options);
  const traffic::DayMatrix truth = sim_->GenerateEvaluationDay();
  const int slot = 120;
  std::vector<graph::RoadId> observed;
  std::vector<double> speeds;
  for (graph::RoadId r = 0; r < graph_.num_roads(); r += 4) {
    observed.push_back(r);
    speeds.push_back(truth.At(slot, r));
  }
  const auto est = estimator.Estimate(slot, observed, speeds);
  ASSERT_TRUE(est.ok());
  for (size_t i = 0; i < observed.size(); ++i) {
    EXPECT_DOUBLE_EQ((*est)[static_cast<size_t>(observed[i])], speeds[i]);
  }
  // Unobserved estimates stay in a physical range.
  for (double v : *est) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 200.0);
  }
  EXPECT_EQ(estimator.name(), "LASSO");
}

TEST_F(LassoEstimatorTest, NoObservationsFallsBackToSlotMean) {
  const LassoEstimator estimator(graph_, history_, {});
  const auto est = estimator.Estimate(100, {}, {});
  ASSERT_TRUE(est.ok());
  // Must equal the historical slot mean.
  double sum = 0.0;
  for (int day = 0; day < history_.num_days(); ++day) {
    sum += history_.At(day, 100, 0);
  }
  EXPECT_NEAR((*est)[0], sum / history_.num_days(), 1e-9);
}

TEST_F(LassoEstimatorTest, Validation) {
  const LassoEstimator estimator(graph_, history_, {});
  EXPECT_FALSE(estimator.Estimate(-1, {}, {}).ok());
  EXPECT_FALSE(estimator.Estimate(0, {0}, {}).ok());
  EXPECT_FALSE(estimator.Estimate(0, {999}, {1.0}).ok());
}

}  // namespace
}  // namespace crowdrtse::baselines
