#include <gtest/gtest.h>

#include "graph/generators.h"
#include "rtf/ccd_trainer.h"
#include "rtf/correlation_table.h"
#include "util/rng.h"

namespace crowdrtse::rtf {
namespace {

traffic::HistoryStore RandomHistory(int num_roads, int num_days,
                                    int num_slots, uint64_t seed) {
  util::Rng rng(seed);
  traffic::HistoryStore store(num_roads, num_days, num_slots);
  for (int day = 0; day < num_days; ++day) {
    for (int slot = 0; slot < num_slots; ++slot) {
      for (graph::RoadId r = 0; r < num_roads; ++r) {
        store.At(day, slot, r) =
            40.0 + 3.0 * slot + rng.Normal(0.0, 2.0);
      }
    }
  }
  return store;
}

TEST(TrainSlotsTest, SequentialMatchesPerSlotTraining) {
  const graph::Graph g = *graph::PathNetwork(6);
  const traffic::HistoryStore history = RandomHistory(6, 8, 4, 1);
  CcdOptions options;
  options.max_iterations = 30;
  options.learning_rate = 0.02;
  const CcdTrainer trainer(g, history, options);

  RtfModel batch(g, 4);
  const auto reports = trainer.TrainSlots(batch, {0, 1, 2, 3});
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 4u);

  RtfModel reference(g, 4);
  for (int slot = 0; slot < 4; ++slot) {
    ASSERT_TRUE(trainer.TrainSlot(reference, slot).ok());
  }
  for (int slot = 0; slot < 4; ++slot) {
    for (graph::RoadId r = 0; r < 6; ++r) {
      EXPECT_DOUBLE_EQ(batch.Mu(slot, r), reference.Mu(slot, r));
      EXPECT_DOUBLE_EQ(batch.Sigma(slot, r), reference.Sigma(slot, r));
    }
  }
}

TEST(TrainSlotsTest, ParallelMatchesSequential) {
  const graph::Graph g = *graph::PathNetwork(8);
  const traffic::HistoryStore history = RandomHistory(8, 6, 6, 3);
  CcdOptions options;
  options.max_iterations = 25;
  options.learning_rate = 0.02;
  const CcdTrainer trainer(g, history, options);
  const std::vector<int> slots{0, 1, 2, 3, 4, 5};

  RtfModel sequential(g, 6);
  ASSERT_TRUE(trainer.TrainSlots(sequential, slots).ok());

  RtfModel parallel(g, 6);
  util::ThreadPool pool(4);
  ASSERT_TRUE(trainer.TrainSlots(parallel, slots, &pool).ok());

  for (int slot : slots) {
    for (graph::RoadId r = 0; r < 8; ++r) {
      EXPECT_DOUBLE_EQ(parallel.Mu(slot, r), sequential.Mu(slot, r));
      EXPECT_DOUBLE_EQ(parallel.Sigma(slot, r), sequential.Sigma(slot, r));
    }
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_DOUBLE_EQ(parallel.Rho(slot, e), sequential.Rho(slot, e));
    }
  }
}

TEST(TrainSlotsTest, Validation) {
  const graph::Graph g = *graph::PathNetwork(3);
  const traffic::HistoryStore history = RandomHistory(3, 5, 2, 5);
  const CcdTrainer trainer(g, history, {});
  RtfModel model(g, 2);
  EXPECT_FALSE(trainer.TrainSlots(model, {0, 5}).ok());
  EXPECT_FALSE(trainer.TrainSlots(model, {-1}).ok());
  EXPECT_FALSE(trainer.TrainSlots(model, {0, 0}).ok());  // duplicate
  const auto empty = trainer.TrainSlots(model, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(CorrelationTableIoTest, RoundTrip) {
  const graph::Graph g = *graph::GridNetwork(4, 4);
  util::Rng rng(7);
  std::vector<double> rho(static_cast<size_t>(g.num_edges()));
  for (double& r : rho) r = rng.UniformDouble(0.3, 0.95);
  const auto table = CorrelationTable::FromEdgeCorrelations(g, rho);
  ASSERT_TRUE(table.ok());
  const std::string data = table->Serialize();
  const auto loaded = CorrelationTable::Deserialize(data);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_roads(), table->num_roads());
  for (graph::RoadId i = 0; i < g.num_roads(); ++i) {
    for (graph::RoadId j = 0; j < g.num_roads(); ++j) {
      EXPECT_DOUBLE_EQ(loaded->Corr(i, j), table->Corr(i, j));
    }
  }
}

TEST(CorrelationTableIoTest, FileRoundTrip) {
  const graph::Graph g = *graph::PathNetwork(5);
  const auto table = CorrelationTable::FromEdgeCorrelations(
      g, {0.9, 0.8, 0.7, 0.6});
  ASSERT_TRUE(table.ok());
  const std::string path = ::testing::TempDir() + "/gamma_test.bin";
  ASSERT_TRUE(table->SaveToFile(path).ok());
  const auto loaded = CorrelationTable::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->Corr(0, 4), table->Corr(0, 4));
  std::remove(path.c_str());
}

TEST(CorrelationTableIoTest, RejectsGarbage) {
  EXPECT_FALSE(CorrelationTable::Deserialize("junk").ok());
  const graph::Graph g = *graph::PathNetwork(3);
  const auto table =
      CorrelationTable::FromEdgeCorrelations(g, {0.5, 0.5});
  ASSERT_TRUE(table.ok());
  const std::string data = table->Serialize();
  EXPECT_FALSE(
      CorrelationTable::Deserialize(data.substr(0, data.size() - 4)).ok());
  EXPECT_FALSE(CorrelationTable::LoadFromFile("/no/such/gamma.bin").ok());
}

}  // namespace
}  // namespace crowdrtse::rtf
