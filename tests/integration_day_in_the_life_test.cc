// "Day in the life" integration test: the serving stack runs a whole
// simulated day — workers drive around and churn, queries arrive every few
// slots, the ledger caps the campaign spend, the model gets refreshed
// nightly from the day's observations — exercising the server, crowd, rtf,
// ocs, gsp and eval layers together and checking global invariants.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "core/congestion_monitor.h"
#include "core/crowd_rtse.h"
#include "eval/metrics.h"
#include "graph/generators.h"
#include "rtf/moment_accumulator.h"
#include "server/budget_ledger.h"
#include "server/query_engine.h"
#include "server/worker_registry.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse {
namespace {

TEST(DayInTheLifeTest, FullServiceDay) {
  // --- world ------------------------------------------------------------
  util::Rng rng(1234);
  graph::RoadNetworkOptions net;
  net.num_roads = 120;
  const graph::Graph network = *graph::RoadNetwork(net, rng);
  traffic::TrafficModelOptions traffic_options;
  traffic_options.num_days = 10;
  const traffic::TrafficSimulator simulator(network, traffic_options, 55);
  const traffic::HistoryStore history = simulator.GenerateHistory();
  const traffic::DayMatrix today = simulator.GenerateEvaluationDay();

  auto system = core::CrowdRtse::BuildOffline(network, history, {});
  ASSERT_TRUE(system.ok());

  // --- serving stack ------------------------------------------------------
  server::WorkerRegistryOptions registry_options;
  registry_options.num_workers = 500;
  server::WorkerRegistry registry(network, registry_options, 77);
  const int64_t campaign_budget = 600;
  server::BudgetLedger ledger(campaign_budget, /*per_query_cap=*/15);
  const crowd::CostModel costs = crowd::CostModel::Constant(120, 2);
  crowd::CrowdSimulator crowd_sim({}, util::Rng(88));
  server::QueryEngine engine(*system, registry, ledger, costs, crowd_sim);
  const core::CongestionMonitor monitor(system->model());

  // --- the day -------------------------------------------------------------
  util::Rng query_rng(99);
  eval::QualityAccumulator quality;
  int64_t alarms_total = 0;
  int served = 0;
  int rejected = 0;
  for (int slot = 0; slot < traffic::kSlotsPerDay; slot += 12) {
    server::QueryRequest request;
    request.slot = slot;
    for (int pick : query_rng.SampleWithoutReplacement(120, 10)) {
      request.queried.push_back(pick);
    }
    const auto response = engine.Serve(request, today);
    if (!response.ok()) {
      EXPECT_EQ(response.status().code(),
                util::StatusCode::kFailedPrecondition);
      ++rejected;
      registry.AdvanceSlot();
      continue;
    }
    ++served;
    // Invariant: spend within grant, grant within cap.
    EXPECT_LE(response->paid, response->granted_budget);
    EXPECT_LE(response->granted_budget, 15);
    // Estimate quality on the queried roads.
    std::vector<double> all(static_cast<size_t>(network.num_roads()), 1.0);
    for (size_t i = 0; i < request.queried.size(); ++i) {
      all[static_cast<size_t>(request.queried[i])] =
          response->queried_speeds[i];
    }
    quality.Add(*eval::ComputeQuality(all, today.SlotSpeeds(slot),
                                      request.queried));
    // Congestion monitoring over the full estimate of a fresh propagation.
    std::vector<double> probe_speeds;
    for (graph::RoadId r : response->probed_roads) {
      probe_speeds.push_back(today.At(slot, r));
    }
    const auto estimate =
        system->Estimate(slot, response->probed_roads, probe_speeds);
    ASSERT_TRUE(estimate.ok());
    const auto alarms = monitor.Scan(slot, estimate->speeds,
                                     estimate->hops);
    ASSERT_TRUE(alarms.ok());
    alarms_total += static_cast<int64_t>(alarms->size());
    registry.AdvanceSlot();
  }

  // --- global invariants ----------------------------------------------------
  EXPECT_GT(served, 10);
  EXPECT_EQ(engine.stats().queries_served, served);
  EXPECT_EQ(engine.stats().queries_rejected, rejected);
  EXPECT_LE(ledger.total_spent(), campaign_budget);
  EXPECT_EQ(engine.stats().total_paid, ledger.total_spent());
  // The service stayed useful: mean MAPE clearly better than a coin flip.
  EXPECT_LT(quality.Mean().mape, 0.15);
  // The registry population stayed stationary through churn.
  EXPECT_EQ(registry.num_workers(), 500);

  // --- nightly model refresh -------------------------------------------------
  rtf::MomentAccumulator accumulator(network, traffic::kSlotsPerDay,
                                     /*slot_window=*/1);
  ASSERT_TRUE(accumulator.AbsorbHistory(history).ok());
  ASSERT_TRUE(accumulator.AbsorbDay(today).ok());
  const auto refreshed = accumulator.EmitModel();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_TRUE(refreshed->Validate().ok());
  EXPECT_EQ(accumulator.num_days_absorbed(), 11);
}

}  // namespace
}  // namespace crowdrtse
