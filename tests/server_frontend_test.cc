#include "server/frontend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "net/frame.h"
#include "net/http.h"
#include "net/json.h"
#include "net/socket.h"
#include "traffic/traffic_simulator.h"
#include "util/clock.h"
#include "util/rng.h"

namespace crowdrtse::server {
namespace {

/// End-to-end fixture: a real engine behind a real socket. The crowd is
/// configured noiseless (bias 1, zero reading noise, no outliers) so a
/// given request always produces the same speeds — what the coalescing
/// bit-identity assertions rely on.
class FrontendTest : public ::testing::Test {
 protected:
  FrontendTest() {
    util::Rng rng(3);
    graph::RoadNetworkOptions net;
    net.num_roads = 100;
    graph_ = *graph::RoadNetwork(net, rng);
    traffic::TrafficModelOptions traffic_options;
    traffic_options.num_days = 8;
    sim_ = std::make_unique<traffic::TrafficSimulator>(graph_,
                                                       traffic_options, 5);
    history_ = sim_->GenerateHistory();
    truth_ = sim_->GenerateEvaluationDay();
    system_ = std::make_unique<core::CrowdRtse>(
        *core::CrowdRtse::BuildOffline(graph_, history_, {}));
    // Noiseless workers: calibrated devices (bias 1) with zero reading
    // noise, so every answer equals ground truth and repeated serves of
    // one request are bit-identical.
    WorkerRegistryOptions registry_options;
    registry_options.num_workers = 600;
    registry_options.min_bias = 1.0;
    registry_options.max_bias = 1.0;
    registry_options.min_noise_kmh = 0.0;
    registry_options.max_noise_kmh = 0.0;
    registry_ = std::make_unique<WorkerRegistry>(graph_, registry_options,
                                                 7);
    costs_ = crowd::CostModel::Constant(100, 2);
    crowd::CrowdSimOptions crowd_options;
    crowd_options.min_bias = 1.0;
    crowd_options.max_bias = 1.0;
    crowd_options.min_noise_kmh = 0.0;
    crowd_options.max_noise_kmh = 0.0;
    crowd_sim_ = std::make_unique<crowd::CrowdSimulator>(crowd_options,
                                                         util::Rng(9));
    ledger_ = std::make_unique<BudgetLedger>(-1, 12);
    engine_ = std::make_unique<QueryEngine>(*system_, *registry_, *ledger_,
                                            costs_, *crowd_sim_);
  }

  void StartFrontend(FrontendOptions options = {}) {
    frontend_ = std::make_unique<Frontend>(*engine_, truth_, options);
    ASSERT_TRUE(frontend_->Start().ok());
    ASSERT_NE(frontend_->port(), 0);
  }

  static std::string QueryJson(int id, int slot = 100,
                               const std::string& roads = "[3,17,42,77]") {
    return "{\"id\":" + std::to_string(id) +
           ",\"slot\":" + std::to_string(slot) + ",\"roads\":" + roads + "}";
  }

  /// Lockstep HTTP POST on an existing connection.
  static util::Status Post(int fd, const std::string& target,
                           const std::string& body, int* status,
                           std::string* response_body) {
    const std::string wire =
        "POST " + target + " HTTP/1.1\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    CROWDRTSE_RETURN_IF_ERROR(net::WriteAll(fd, wire));
    return net::ReadHttpResponse(fd, status, response_body);
  }

  static util::Status Get(int fd, const std::string& target, int* status,
                          std::string* response_body) {
    CROWDRTSE_RETURN_IF_ERROR(
        net::WriteAll(fd, "GET " + target + " HTTP/1.1\r\n\r\n"));
    return net::ReadHttpResponse(fd, status, response_body);
  }

  graph::Graph graph_;
  std::unique_ptr<traffic::TrafficSimulator> sim_;
  traffic::HistoryStore history_;
  traffic::DayMatrix truth_;
  std::unique_ptr<core::CrowdRtse> system_;
  std::unique_ptr<WorkerRegistry> registry_;
  crowd::CostModel costs_;
  std::unique_ptr<crowd::CrowdSimulator> crowd_sim_;
  std::unique_ptr<BudgetLedger> ledger_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<Frontend> frontend_;
};

TEST_F(FrontendTest, ServesQueryOverHttp) {
  StartFrontend();
  auto client = net::ConnectLocal(frontend_->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  int status = 0;
  std::string body;
  ASSERT_TRUE(
      Post(client->get(), "/query", QueryJson(5), &status, &body).ok());
  EXPECT_EQ(status, 200);
  const auto doc = net::json::Parse(body);
  ASSERT_TRUE(doc.ok()) << body;
  EXPECT_EQ(doc->Find("status")->AsString(), "ok");
  EXPECT_EQ(*doc->Find("id")->AsInt(), 5);
  EXPECT_EQ(doc->Find("shed")->AsString(), "none");
  ASSERT_EQ(doc->Find("speeds")->AsArray().size(), 4u);
  for (const auto& speed : doc->Find("speeds")->AsArray()) {
    EXPECT_GT(speed.AsDouble(), 0.0);
    EXPECT_LT(speed.AsDouble(), 200.0);
  }
  EXPECT_EQ(*doc->Find("granted_budget")->AsInt(), 12);
  EXPECT_EQ(engine_->stats().queries_served, 1);
}

TEST_F(FrontendTest, SpeedsFollowTheClientsRoadOrder) {
  StartFrontend();
  auto client = net::ConnectLocal(frontend_->port());
  ASSERT_TRUE(client.ok());
  int status = 0;
  std::string forward, reversed;
  ASSERT_TRUE(Post(client->get(), "/query",
                   QueryJson(1, 100, "[3,17,42,77]"), &status, &forward)
                  .ok());
  ASSERT_EQ(status, 200);
  ASSERT_TRUE(Post(client->get(), "/query",
                   QueryJson(2, 100, "[77,42,17,3]"), &status, &reversed)
                  .ok());
  ASSERT_EQ(status, 200);
  const auto a = net::json::Parse(forward);
  const auto b = net::json::Parse(reversed);
  ASSERT_TRUE(a.ok() && b.ok());
  const auto& sa = a->Find("speeds")->AsArray();
  const auto& sb = b->Find("speeds")->AsArray();
  ASSERT_EQ(sa.size(), 4u);
  ASSERT_EQ(sb.size(), 4u);
  // Same canonical query (noiseless crowd): identical answers, but each
  // response is aligned with the order the client asked in.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(sa[i].AsDouble(), sb[3 - i].AsDouble());
  }
}

TEST_F(FrontendTest, ObservabilityEndpoints) {
  StartFrontend();
  auto client = net::ConnectLocal(frontend_->port());
  ASSERT_TRUE(client.ok());
  int status = 0;
  std::string body;

  ASSERT_TRUE(Get(client->get(), "/healthz", &status, &body).ok());
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");

  // Serve one query so the counters are non-trivial.
  ASSERT_TRUE(
      Post(client->get(), "/query", QueryJson(1), &status, &body).ok());
  ASSERT_EQ(status, 200);

  ASSERT_TRUE(Get(client->get(), "/metrics", &status, &body).ok());
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("crowdrtse_queries_served_total 1"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("# TYPE crowdrtse_serve_latency_ms histogram"),
            std::string::npos);

  ASSERT_TRUE(Get(client->get(), "/metrics.json", &status, &body).ok());
  EXPECT_EQ(status, 200);
  const auto metrics = net::json::Parse(body);
  ASSERT_TRUE(metrics.ok()) << body;
  EXPECT_EQ(*metrics->Find("crowdrtse_queries_served_total")->AsInt(), 1);

  ASSERT_TRUE(Get(client->get(), "/stats", &status, &body).ok());
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("Frontend:"), std::string::npos);

  ASSERT_TRUE(Get(client->get(), "/nope", &status, &body).ok());
  EXPECT_EQ(status, 404);
  ASSERT_TRUE(Get(client->get(), "/trace/abc", &status, &body).ok());
  EXPECT_EQ(status, 400);
  ASSERT_TRUE(Get(client->get(), "/trace/999999", &status, &body).ok());
  EXPECT_EQ(status, 404);
}

TEST_F(FrontendTest, TraceEndpointReturnsSampledQuery) {
  // Re-build the engine with tracing on for every query.
  QueryEngine::Options engine_options;
  engine_options.trace_sample_rate = 1.0;
  engine_ = std::make_unique<QueryEngine>(*system_, *registry_, *ledger_,
                                          costs_, *crowd_sim_,
                                          engine_options);
  StartFrontend();
  auto client = net::ConnectLocal(frontend_->port());
  ASSERT_TRUE(client.ok());
  int status = 0;
  std::string body;
  ASSERT_TRUE(
      Post(client->get(), "/query", QueryJson(1), &status, &body).ok());
  ASSERT_EQ(status, 200);
  const auto doc = net::json::Parse(body);
  ASSERT_TRUE(doc.ok());
  const int64_t query_id = *doc->Find("query_id")->AsInt();

  ASSERT_TRUE(Get(client->get(), "/trace/" + std::to_string(query_id),
                  &status, &body)
                  .ok());
  EXPECT_EQ(status, 200);
  const auto trace = net::json::Parse(body);
  ASSERT_TRUE(trace.ok()) << body;
  EXPECT_FALSE(trace->Find("traceEvents")->AsArray().empty());
}

TEST_F(FrontendTest, FrameProtocolRoundTrip) {
  StartFrontend();
  auto client = net::ConnectLocal(frontend_->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      net::WriteAll(client->get(), net::EncodeFrame(QueryJson(9))).ok());

  std::string header;
  ASSERT_TRUE(
      net::ReadExact(client->get(), net::kFrameHeaderBytes, &header).ok());
  ASSERT_EQ(header.substr(0, 4), "CQRC");
  const auto* bytes = reinterpret_cast<const unsigned char*>(header.data());
  const size_t length = static_cast<size_t>(bytes[4]) |
                        (static_cast<size_t>(bytes[5]) << 8) |
                        (static_cast<size_t>(bytes[6]) << 16) |
                        (static_cast<size_t>(bytes[7]) << 24);
  std::string payload;
  ASSERT_TRUE(net::ReadExact(client->get(), length, &payload).ok());
  const auto doc = net::json::Parse(payload);
  ASSERT_TRUE(doc.ok()) << payload;
  EXPECT_EQ(doc->Find("status")->AsString(), "ok");
  EXPECT_EQ(*doc->Find("id")->AsInt(), 9);
  EXPECT_EQ(doc->Find("speeds")->AsArray().size(), 4u);
}

TEST_F(FrontendTest, BadRequestsGetExplicitErrors) {
  StartFrontend();
  auto client = net::ConnectLocal(frontend_->port());
  ASSERT_TRUE(client.ok());
  int status = 0;
  std::string body;

  ASSERT_TRUE(
      Post(client->get(), "/query", "this is not json", &status, &body)
          .ok());
  EXPECT_EQ(status, 400);
  auto doc = net::json::Parse(body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("status")->AsString(), "error");

  ASSERT_TRUE(Post(client->get(), "/query", "{\"slot\":100}", &status,
                   &body)
                  .ok());
  EXPECT_EQ(status, 400);

  // Out-of-range slot: rejected by the engine's validation, with the
  // world's actual bound in the message.
  ASSERT_TRUE(Post(client->get(), "/query", QueryJson(1, 100000), &status,
                   &body)
                  .ok());
  EXPECT_EQ(status, 400);
  doc = net::json::Parse(body);
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc->Find("message")->AsString().find("not in [0, "),
            std::string::npos);
}

TEST_F(FrontendTest, RateLimitBoundariesAreDeterministic) {
  util::SimClock clock;
  FrontendOptions options;
  options.rate_limit_qps = 10.0;  // one token per 100 ms
  options.rate_limit_burst = 2.0;
  options.clock = &clock;
  StartFrontend(options);
  auto client = net::ConnectLocal(frontend_->port());
  ASSERT_TRUE(client.ok());
  int status = 0;
  std::string body;

  // The burst admits exactly two; the third is an explicit 429.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        Post(client->get(), "/query", QueryJson(i), &status, &body).ok());
    EXPECT_EQ(status, 200) << body;
  }
  ASSERT_TRUE(
      Post(client->get(), "/query", QueryJson(3), &status, &body).ok());
  EXPECT_EQ(status, 429);
  const auto doc = net::json::Parse(body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("status")->AsString(), "rate_limited");

  // One microsecond short of a refill: still denied.
  clock.AdvanceMicros(99'999);
  ASSERT_TRUE(
      Post(client->get(), "/query", QueryJson(4), &status, &body).ok());
  EXPECT_EQ(status, 429);
  // Crossing the boundary: exactly one more admission.
  clock.AdvanceMicros(1);
  ASSERT_TRUE(
      Post(client->get(), "/query", QueryJson(5), &status, &body).ok());
  EXPECT_EQ(status, 200) << body;
  ASSERT_TRUE(
      Post(client->get(), "/query", QueryJson(6), &status, &body).ok());
  EXPECT_EQ(status, 429);
  EXPECT_EQ(frontend_->stats().rate_limited, 3);
}

TEST_F(FrontendTest, OverloadShedsButNeverSilentlyDrops) {
  FrontendOptions options;
  options.num_workers = 1;
  options.admission.capacity = 2;
  options.admission.shed_low_watermark = 1;
  options.admission.hard_capacity = 4;
  StartFrontend(options);

  // A swarm of clients, each firing one query: every single one must get
  // exactly one response — ok (possibly shed to a cheaper rung) or an
  // explicit rejection. Nothing may vanish.
  constexpr int kClients = 16;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0}, shed{0}, rejected{0}, transport_errors{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto client = net::ConnectLocal(frontend_->port());
      if (!client.ok()) {
        transport_errors.fetch_add(1);
        return;
      }
      int status = 0;
      std::string body;
      if (!Post(client->get(), "/query", QueryJson(i), &status, &body)
               .ok()) {
        transport_errors.fetch_add(1);
        return;
      }
      const auto doc = net::json::Parse(body);
      if (!doc.ok()) {
        transport_errors.fetch_add(1);
        return;
      }
      const std::string& word = doc->Find("status")->AsString();
      if (word == "ok") {
        ok.fetch_add(1);
        if (doc->Find("shed")->AsString() != "none") shed.fetch_add(1);
      } else if (word == "rejected") {
        rejected.fetch_add(1);
      } else {
        transport_errors.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_EQ(ok.load() + rejected.load(), kClients);
  EXPECT_GT(ok.load(), 0);
  // Engine-side accounting agrees: nothing was dropped silently.
  const FrontendStats stats = frontend_->stats();
  EXPECT_EQ(stats.admission.admitted_full +
                stats.admission.admitted_budget_capped +
                stats.admission.admitted_fallback,
            ok.load());
  EXPECT_EQ(stats.admission.rejected, rejected.load());
}

TEST_F(FrontendTest, CoalescedResultsBitIdenticalToReplay) {
  FrontendOptions options;
  options.num_workers = 2;
  StartFrontend(options);

  // Fire the same query from several connections at once, then replay it
  // once on a quiet server. The crowd is noiseless, so every serving of
  // this request must produce the same numbers — whether it was coalesced
  // onto another in-flight serve or ran alone.
  constexpr int kClients = 6;
  std::vector<std::string> bodies(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto client = net::ConnectLocal(frontend_->port());
      if (!client.ok()) return;
      int status = 0;
      (void)Post(client->get(), "/query", QueryJson(7, 100), &status,
                 &bodies[static_cast<size_t>(i)]);
    });
  }
  for (auto& thread : threads) thread.join();

  auto replay_client = net::ConnectLocal(frontend_->port());
  ASSERT_TRUE(replay_client.ok());
  int status = 0;
  std::string replay_body;
  ASSERT_TRUE(Post(replay_client->get(), "/query", QueryJson(7, 100),
                   &status, &replay_body)
                  .ok());
  ASSERT_EQ(status, 200);
  const auto replay = net::json::Parse(replay_body);
  ASSERT_TRUE(replay.ok());

  for (int i = 0; i < kClients; ++i) {
    const auto doc = net::json::Parse(bodies[static_cast<size_t>(i)]);
    ASSERT_TRUE(doc.ok()) << bodies[static_cast<size_t>(i)];
    ASSERT_EQ(doc->Find("status")->AsString(), "ok");
    // Bit-identical payloads: speeds, probed set, budget accounting.
    EXPECT_EQ(doc->Find("speeds")->Dump(), replay->Find("speeds")->Dump());
    EXPECT_EQ(doc->Find("probed")->Dump(), replay->Find("probed")->Dump());
    EXPECT_EQ(doc->Find("granted_budget")->Dump(),
              replay->Find("granted_budget")->Dump());
    EXPECT_EQ(doc->Find("paid")->Dump(), replay->Find("paid")->Dump());
  }
  // Queries answered from a shared batch are accounted: every join saved
  // one full OCS/dispatch/GSP pass.
  const FrontendStats stats = frontend_->stats();
  EXPECT_EQ(static_cast<int64_t>(kClients) + 1 - stats.coalesce_joins,
            engine_->stats().queries_served);
}

TEST_F(FrontendTest, AdminCommands) {
  StartFrontend();
  auto client = net::ConnectLocal(frontend_->port());
  ASSERT_TRUE(client.ok());
  int status = 0;
  std::string body;

  ASSERT_TRUE(
      Post(client->get(), "/admin", "get capacity", &status, &body).ok());
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "capacity = 64\n");

  ASSERT_TRUE(
      Post(client->get(), "/admin", "set shed_low 3\n", &status, &body)
          .ok());
  EXPECT_EQ(body, "ok: shed_low = 3\n");
  ASSERT_TRUE(
      Post(client->get(), "/admin", "get shed_low", &status, &body).ok());
  EXPECT_EQ(body, "shed_low = 3\n");

  ASSERT_TRUE(
      Post(client->get(), "/admin", "bogus", &status, &body).ok());
  EXPECT_NE(body.find("error"), std::string::npos);

  ASSERT_TRUE(
      Post(client->get(), "/query", QueryJson(1), &status, &body).ok());
  ASSERT_EQ(status, 200);
  ASSERT_TRUE(
      Post(client->get(), "/admin", "stats-clear", &status, &body).ok());
  EXPECT_EQ(frontend_->stats().queries_received, 0);

  // Drain: new queries get an explicit 503, observability stays up.
  ASSERT_TRUE(Post(client->get(), "/admin", "drain", &status, &body).ok());
  EXPECT_EQ(body, "ok: draining\n");
  ASSERT_TRUE(
      Post(client->get(), "/query", QueryJson(2), &status, &body).ok());
  EXPECT_EQ(status, 503);
  const auto doc = net::json::Parse(body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("status")->AsString(), "rejected");
  ASSERT_TRUE(Get(client->get(), "/healthz", &status, &body).ok());
  EXPECT_EQ(status, 200);
}

TEST_F(FrontendTest, ShutdownIsIdempotentAndStopsServing) {
  StartFrontend();
  const uint16_t port = frontend_->port();
  frontend_->Shutdown();
  frontend_->Shutdown();  // idempotent
  EXPECT_FALSE(frontend_->running());
  // The listener is gone (kernel may refuse or reset; either way no
  // response ever arrives for a new query).
  auto client = net::ConnectLocal(port);
  if (client.ok()) {
    int status = 0;
    std::string body;
    EXPECT_FALSE(
        Post(client->get(), "/query", QueryJson(1), &status, &body).ok());
  }
}

}  // namespace
}  // namespace crowdrtse::server
