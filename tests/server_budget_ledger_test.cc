#include "server/budget_ledger.h"

#include <gtest/gtest.h>

namespace crowdrtse::server {
namespace {

TEST(BudgetLedgerTest, GrantsPerQueryCap) {
  BudgetLedger ledger(1000, 50);
  EXPECT_EQ(ledger.NextQueryBudget(), 50);
  EXPECT_FALSE(ledger.exhausted());
}

TEST(BudgetLedgerTest, GrantsRemainderWhenCampaignLow) {
  BudgetLedger ledger(60, 50);
  ASSERT_TRUE(ledger.Settle(1, 50, 45).ok());
  EXPECT_EQ(ledger.NextQueryBudget(), 15);  // 60 - 45
  ASSERT_TRUE(ledger.Settle(2, 15, 15).ok());
  EXPECT_EQ(ledger.NextQueryBudget(), 0);
  EXPECT_TRUE(ledger.exhausted());
}

TEST(BudgetLedgerTest, UnspentReservationFlowsBack) {
  BudgetLedger ledger(100, 60);
  ASSERT_TRUE(ledger.Settle(1, 60, 10).ok());
  EXPECT_EQ(ledger.total_spent(), 10);
  EXPECT_EQ(ledger.remaining(), 90);
  EXPECT_EQ(ledger.NextQueryBudget(), 60);
}

TEST(BudgetLedgerTest, UnlimitedCampaign) {
  BudgetLedger ledger(-1, 40);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ledger.NextQueryBudget(), 40);
    ASSERT_TRUE(ledger.Settle(i, 40, 40).ok());
  }
  EXPECT_EQ(ledger.remaining(), -1);
  EXPECT_FALSE(ledger.exhausted());
}

TEST(BudgetLedgerTest, RejectsOverspend) {
  BudgetLedger ledger(100, 50);
  EXPECT_FALSE(ledger.Settle(1, 50, 51).ok());
  EXPECT_FALSE(ledger.Settle(1, -1, 0).ok());
  EXPECT_FALSE(ledger.Settle(1, 10, -1).ok());
  EXPECT_EQ(ledger.total_spent(), 0);
}

TEST(BudgetLedgerTest, EntriesRecorded) {
  BudgetLedger ledger(100, 50);
  ASSERT_TRUE(ledger.Settle(7, 50, 33).ok());
  ASSERT_EQ(ledger.entries().size(), 1u);
  EXPECT_EQ(ledger.entries()[0].query_id, 7);
  EXPECT_EQ(ledger.entries()[0].reserved, 50);
  EXPECT_EQ(ledger.entries()[0].spent, 33);
}

TEST(BudgetLedgerTest, ReportMentionsTotals) {
  BudgetLedger ledger(100, 50);
  ASSERT_TRUE(ledger.Settle(1, 50, 20).ok());
  const std::string report = ledger.Report();
  EXPECT_NE(report.find("spent 20"), std::string::npos);
  EXPECT_NE(report.find("remaining 80"), std::string::npos);
}

}  // namespace
}  // namespace crowdrtse::server
