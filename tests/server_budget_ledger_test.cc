#include "server/budget_ledger.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace crowdrtse::server {
namespace {

TEST(BudgetLedgerTest, GrantsPerQueryCap) {
  BudgetLedger ledger(1000, 50);
  EXPECT_EQ(ledger.NextQueryBudget(), 50);
  EXPECT_FALSE(ledger.exhausted());
}

TEST(BudgetLedgerTest, GrantsRemainderWhenCampaignLow) {
  BudgetLedger ledger(60, 50);
  ASSERT_TRUE(ledger.Settle(1, 50, 45).ok());
  EXPECT_EQ(ledger.NextQueryBudget(), 15);  // 60 - 45
  ASSERT_TRUE(ledger.Settle(2, 15, 15).ok());
  EXPECT_EQ(ledger.NextQueryBudget(), 0);
  EXPECT_TRUE(ledger.exhausted());
}

TEST(BudgetLedgerTest, UnspentReservationFlowsBack) {
  BudgetLedger ledger(100, 60);
  ASSERT_TRUE(ledger.Settle(1, 60, 10).ok());
  EXPECT_EQ(ledger.total_spent(), 10);
  EXPECT_EQ(ledger.remaining(), 90);
  EXPECT_EQ(ledger.NextQueryBudget(), 60);
}

TEST(BudgetLedgerTest, UnlimitedCampaign) {
  BudgetLedger ledger(-1, 40);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ledger.NextQueryBudget(), 40);
    ASSERT_TRUE(ledger.Settle(i, 40, 40).ok());
  }
  EXPECT_EQ(ledger.remaining(), -1);
  EXPECT_FALSE(ledger.exhausted());
}

TEST(BudgetLedgerTest, RejectsOverspend) {
  BudgetLedger ledger(100, 50);
  EXPECT_FALSE(ledger.Settle(1, 50, 51).ok());
  EXPECT_FALSE(ledger.Settle(1, -1, 0).ok());
  EXPECT_FALSE(ledger.Settle(1, 10, -1).ok());
  EXPECT_EQ(ledger.total_spent(), 0);
}

TEST(BudgetLedgerTest, EntriesRecorded) {
  BudgetLedger ledger(100, 50);
  ASSERT_TRUE(ledger.Settle(7, 50, 33).ok());
  ASSERT_EQ(ledger.entries().size(), 1u);
  EXPECT_EQ(ledger.entries()[0].query_id, 7);
  EXPECT_EQ(ledger.entries()[0].reserved, 50);
  EXPECT_EQ(ledger.entries()[0].spent, 33);
}

TEST(BudgetLedgerTest, ReportMentionsTotals) {
  BudgetLedger ledger(100, 50);
  ASSERT_TRUE(ledger.Settle(1, 50, 20).ok());
  const std::string report = ledger.Report();
  EXPECT_NE(report.find("spent 20"), std::string::npos);
  EXPECT_NE(report.find("remaining 80"), std::string::npos);
}

TEST(BudgetLedgerTest, ReservationsEarmarkHeadroom) {
  BudgetLedger ledger(100, 60);
  EXPECT_EQ(ledger.Reserve(1), 60);
  // The second in-flight query only sees what the first left unreserved.
  EXPECT_EQ(ledger.NextQueryBudget(), 40);
  EXPECT_EQ(ledger.Reserve(2), 40);
  EXPECT_EQ(ledger.reserved_outstanding(), 100);
  EXPECT_TRUE(ledger.exhausted());
  EXPECT_EQ(ledger.Reserve(3), 0);
  // Settling releases the unspent remainder back to the campaign.
  ASSERT_TRUE(ledger.Settle(1, 60, 10).ok());
  EXPECT_EQ(ledger.reserved_outstanding(), 40);
  EXPECT_EQ(ledger.NextQueryBudget(), 50);  // 100 - 10 spent - 40 reserved
}

TEST(BudgetLedgerTest, ReleaseReturnsReservationWithoutAnEntry) {
  BudgetLedger ledger(100, 60);
  const int granted = ledger.Reserve(7);
  EXPECT_EQ(granted, 60);
  ASSERT_TRUE(ledger.Release(7, granted).ok());
  EXPECT_EQ(ledger.reserved_outstanding(), 0);
  EXPECT_EQ(ledger.NextQueryBudget(), 60);
  EXPECT_EQ(ledger.total_spent(), 0);
  EXPECT_TRUE(ledger.entries().empty());
}

TEST(BudgetLedgerTest, UnlimitedCampaignReservesFreely) {
  BudgetLedger ledger(-1, 40);
  EXPECT_EQ(ledger.Reserve(1), 40);
  EXPECT_EQ(ledger.Reserve(2), 40);
  EXPECT_EQ(ledger.NextQueryBudget(), 40);
  ASSERT_TRUE(ledger.Settle(1, 40, 40).ok());
  ASSERT_TRUE(ledger.Settle(2, 40, 40).ok());
  EXPECT_FALSE(ledger.exhausted());
}

TEST(BudgetLedgerTest, ReportMentionsInFlightReservations) {
  BudgetLedger ledger(100, 30);
  (void)ledger.Reserve(1);
  EXPECT_NE(ledger.Report().find("30 reserved in flight"),
            std::string::npos);
}

// The bug the reservation cycle fixes: two "in-flight" queries that both
// read the remainder before either settles must not jointly overspend.
TEST(BudgetLedgerTest, ConcurrentReserveSettleNeverOverspends) {
  constexpr int64_t kCampaign = 500;
  BudgetLedger ledger(kCampaign, 13);
  constexpr int kThreads = 8;
  std::atomic<int64_t> next_id{1};
  std::atomic<int64_t> granted_total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const int64_t id = next_id.fetch_add(1);
        const int granted = ledger.Reserve(id);
        if (granted == 0) continue;
        granted_total.fetch_add(granted);
        // Spend most of the grant, like a real crowd round would.
        const int spent = granted - (i % 3);
        ASSERT_TRUE(ledger.Settle(id, granted, std::max(0, spent)).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(ledger.total_spent(), kCampaign);
  EXPECT_EQ(ledger.reserved_outstanding(), 0);
  // Sum of settled spends matches the running total.
  int64_t from_entries = 0;
  for (const LedgerEntry& e : ledger.entries()) from_entries += e.spent;
  EXPECT_EQ(from_entries, ledger.total_spent());
}

}  // namespace
}  // namespace crowdrtse::server
