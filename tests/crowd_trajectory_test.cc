#include "crowd/trajectory.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/generators.h"
#include "traffic/time_slots.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::crowd {
namespace {

traffic::DayMatrix FlatTruth(int num_roads, double speed) {
  traffic::DayMatrix truth(traffic::kSlotsPerDay, num_roads);
  for (int slot = 0; slot < traffic::kSlotsPerDay; ++slot) {
    for (graph::RoadId r = 0; r < num_roads; ++r) {
      truth.At(slot, r) = speed;
    }
  }
  return truth;
}

TEST(TrajectoryTest, TripFollowsConnectedRoute) {
  const graph::Graph g = *graph::PathNetwork(6);
  const graph::RoadGeometry geometry = graph::RoadGeometry::Constant(6, 1.0);
  const traffic::DayMatrix truth = FlatTruth(6, 60.0);
  TrajectorySimulator sim(g, geometry, truth, {}, 1);
  const auto trip = sim.SimulateTrip(0, 0, 5, 8.0 * 60.0);
  ASSERT_TRUE(trip.ok());
  ASSERT_EQ(trip->events.size(), 6u);
  // Consecutive traversals touch adjacent roads and time is contiguous.
  for (size_t i = 0; i + 1 < trip->events.size(); ++i) {
    EXPECT_TRUE(g.AreAdjacent(trip->events[i].road,
                              trip->events[i + 1].road));
    EXPECT_DOUBLE_EQ(trip->events[i].exit_minute,
                     trip->events[i + 1].enter_minute);
  }
  // 1 km at 60 km/h per road: each traversal takes exactly one minute.
  for (const TraversalEvent& event : trip->events) {
    EXPECT_NEAR(event.DurationMinutes(), 1.0, 1e-9);
  }
}

TEST(TrajectoryTest, DerivedAnswersMatchTrueSpeeds) {
  const graph::Graph g = *graph::PathNetwork(5);
  const graph::RoadGeometry geometry = graph::RoadGeometry::Constant(5, 0.5);
  traffic::DayMatrix truth = FlatTruth(5, 40.0);
  TrajectorySimOptions options;
  options.measurement_noise_kmh = 0.0;  // exact odometry
  TrajectorySimulator sim(g, geometry, truth, options, 2);
  const auto trip = sim.SimulateTrip(7, 0, 4, 10.0 * 60.0);
  ASSERT_TRUE(trip.ok());
  const auto answers = sim.DeriveAnswers(*trip);
  ASSERT_EQ(answers.size(), trip->events.size());
  for (const SpeedAnswer& answer : answers) {
    EXPECT_EQ(answer.worker, 7);
    EXPECT_NEAR(answer.reported_kmh, 40.0, 1e-9);
  }
}

TEST(TrajectoryTest, CongestedRoadSlowsTraversalAndReport) {
  const graph::Graph g = *graph::PathNetwork(3);
  const graph::RoadGeometry geometry = graph::RoadGeometry::Constant(3, 1.0);
  traffic::DayMatrix truth = FlatTruth(3, 60.0);
  for (int slot = 0; slot < traffic::kSlotsPerDay; ++slot) {
    truth.At(slot, 1) = 15.0;  // road 1 jammed all day
  }
  TrajectorySimOptions options;
  options.measurement_noise_kmh = 0.0;
  TrajectorySimulator sim(g, geometry, truth, options, 3);
  const auto trip = sim.SimulateTrip(0, 0, 2, 9.0 * 60.0);
  ASSERT_TRUE(trip.ok());
  ASSERT_EQ(trip->events.size(), 3u);
  EXPECT_NEAR(trip->events[1].DurationMinutes(), 4.0, 1e-9);  // 1km @15
  const auto answers = sim.DeriveAnswers(*trip);
  EXPECT_NEAR(answers[1].reported_kmh, 15.0, 1e-9);
}

TEST(TrajectoryTest, TripTruncatedAtMidnight) {
  const graph::Graph g = *graph::PathNetwork(10);
  const graph::RoadGeometry geometry =
      graph::RoadGeometry::Constant(10, 1.0);
  const traffic::DayMatrix truth = FlatTruth(10, 60.0);  // 1 min per road
  TrajectorySimulator sim(g, geometry, truth, {}, 4);
  // Depart 5 minutes before midnight on a 10-road trip.
  const auto trip = sim.SimulateTrip(0, 0, 9, 24.0 * 60.0 - 5.0);
  ASSERT_TRUE(trip.ok());
  EXPECT_EQ(trip->events.size(), 5u);
  EXPECT_LE(trip->EndMinute(), 24.0 * 60.0 + 1e-9);
}

TEST(TrajectoryTest, AnswersInSlotFiltersByEntryTime) {
  const graph::Graph g = *graph::PathNetwork(4);
  const graph::RoadGeometry geometry = graph::RoadGeometry::Constant(4, 2.0);
  const traffic::DayMatrix truth = FlatTruth(4, 30.0);  // 4 min per road
  TrajectorySimOptions options;
  options.measurement_noise_kmh = 0.0;
  TrajectorySimulator sim(g, geometry, truth, options, 5);
  // Departing at 08:00 (slot 96): roads enter at minutes 480, 484, 488,
  // 492 -> slots 96, 96, 97, 98.
  const auto trip = sim.SimulateTrip(0, 0, 3, 8.0 * 60.0);
  ASSERT_TRUE(trip.ok());
  ASSERT_EQ(trip->events.size(), 4u);
  EXPECT_EQ(sim.AnswersInSlot(*trip, 96).size(), 2u);
  EXPECT_EQ(sim.AnswersInSlot(*trip, 97).size(), 1u);
  EXPECT_EQ(sim.AnswersInSlot(*trip, 98).size(), 1u);
  EXPECT_EQ(sim.AnswersInSlot(*trip, 99).size(), 0u);
}

TEST(TrajectoryTest, RandomTripsCoverDistinctRoads) {
  util::Rng net_rng(6);
  graph::RoadNetworkOptions net;
  net.num_roads = 60;
  const graph::Graph g = *graph::RoadNetwork(net, net_rng);
  util::Rng len_rng(7);
  const auto geometry = graph::RoadGeometry::UniformRandom(60, 0.2, 1.0,
                                                           len_rng);
  ASSERT_TRUE(geometry.ok());
  traffic::TrafficModelOptions traffic_options;
  traffic_options.num_days = 2;
  const traffic::TrafficSimulator world(g, traffic_options, 8);
  const traffic::DayMatrix truth = world.GenerateDay(0);
  TrajectorySimulator sim(g, *geometry, truth, {}, 9);
  std::set<graph::RoadId> covered;
  for (int w = 0; w < 30; ++w) {
    const auto trip = sim.SimulateRandomTrip(w, 9.0 * 60.0);
    ASSERT_TRUE(trip.ok());
    for (const TraversalEvent& event : trip->events) {
      covered.insert(event.road);
    }
  }
  EXPECT_GT(covered.size(), 15u);
}

TEST(TrajectoryTest, Validation) {
  const graph::Graph g = *graph::PathNetwork(3);
  const graph::RoadGeometry geometry = graph::RoadGeometry::Constant(3, 1.0);
  const traffic::DayMatrix truth = FlatTruth(3, 50.0);
  TrajectorySimulator sim(g, geometry, truth, {}, 1);
  EXPECT_FALSE(sim.SimulateTrip(0, -1, 2, 60.0).ok());
  EXPECT_FALSE(sim.SimulateTrip(0, 0, 9, 60.0).ok());
  EXPECT_FALSE(sim.SimulateTrip(0, 0, 2, -5.0).ok());
  EXPECT_FALSE(sim.SimulateTrip(0, 0, 2, 25.0 * 60.0).ok());
  // Disconnected goal.
  graph::GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  const graph::Graph split = *builder.Build();
  const graph::RoadGeometry geo4 = graph::RoadGeometry::Constant(4, 1.0);
  const traffic::DayMatrix truth4 = FlatTruth(4, 50.0);
  TrajectorySimulator split_sim(split, geo4, truth4, {}, 2);
  EXPECT_FALSE(split_sim.SimulateTrip(0, 0, 3, 60.0).ok());
}

}  // namespace
}  // namespace crowdrtse::crowd
