#include "eval/table_printer.h"

#include <gtest/gtest.h>

namespace crowdrtse::eval {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer_name", "12345"});
  const std::string out = table.ToString();
  // Header, rule, two rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer_name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // The "value" column starts at the same offset within the header line
  // and within each data row.
  const size_t header_col = out.find("value") - out.find("name");
  const size_t row_start = out.find("longer_name");
  const size_t row_col = out.find("12345") - row_start;
  EXPECT_EQ(header_col, row_col);
}

TEST(TablePrinterTest, NumericRows) {
  TablePrinter table({"label", "a", "b"});
  table.AddNumericRow("row", {1.23456, 7.0}, 2);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("7.00"), std::string::npos);
  EXPECT_EQ(out.find("1.2345"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter table({"only"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TablePrinterTest, CsvExport) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"with, comma", "2"});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("x,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with, comma\",2\n"), std::string::npos);
}

}  // namespace
}  // namespace crowdrtse::eval
