// Cross-validates GSP against direct numerical optimisation: the converged
// propagation must match the exact minimiser of the quadratic objective
// whose coordinate-wise minimiser is paper Eq. (18),
//
//   F(v) = sum_i (v_i - mu_i)^2 / sigma_i^2
//        + sum_{(i,j) in E} ((v_i - v_j) - mu_ij)^2 / sigma_ij^2
//
// with the sampled roads' variables pinned to the probed values. The
// stationarity system A v = b is assembled explicitly and solved with
// conjugate gradients; GSP must agree on every connected road.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "graph/generators.h"
#include "gsp/propagation.h"
#include "math/linear_solver.h"
#include "util/rng.h"

namespace crowdrtse::gsp {
namespace {

rtf::RtfModel RandomModel(const graph::Graph& g, uint64_t seed) {
  util::Rng rng(seed);
  rtf::RtfModel model(g, 1);
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    model.SetMu(0, r, rng.UniformDouble(25.0, 75.0));
    model.SetSigma(0, r, rng.UniformDouble(0.8, 7.0));
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    model.SetRho(0, e, rng.UniformDouble(0.3, 0.95));
  }
  return model;
}

/// Solves the pinned stationarity system exactly via CG and returns the
/// full speed vector (sampled roads at their pins).
std::vector<double> ExactConditionalOptimum(
    const rtf::RtfModel& model, const std::vector<graph::RoadId>& sampled,
    const std::vector<double>& pins) {
  const graph::Graph& g = model.graph();
  const int n = g.num_roads();
  std::vector<bool> pinned(static_cast<size_t>(n), false);
  std::vector<double> value(static_cast<size_t>(n), 0.0);
  for (size_t i = 0; i < sampled.size(); ++i) {
    pinned[static_cast<size_t>(sampled[i])] = true;
    value[static_cast<size_t>(sampled[i])] = pins[i];
  }
  // Index map for the free variables.
  std::map<graph::RoadId, size_t> index;
  std::vector<graph::RoadId> free_roads;
  for (graph::RoadId r = 0; r < n; ++r) {
    if (!pinned[static_cast<size_t>(r)]) {
      index[r] = free_roads.size();
      free_roads.push_back(r);
    }
  }
  const size_t m = free_roads.size();
  // Assemble A (dense; tests are small) and b from the stationarity of F:
  //   (1/sigma_i^2 + sum_j 1/u_ij) v_i - sum_{j free} v_j / u_ij
  //     = mu_i/sigma_i^2 + sum_j mu_ij/u_ij + sum_{j pinned} v_j / u_ij.
  math::DenseMatrix a(m, m, 0.0);
  std::vector<double> b(m, 0.0);
  for (size_t k = 0; k < m; ++k) {
    const graph::RoadId i = free_roads[k];
    const double sigma = model.Sigma(0, i);
    double diag = 1.0 / (sigma * sigma);
    b[k] = model.Mu(0, i) / (sigma * sigma);
    for (const graph::Adjacency& adj : g.Neighbors(i)) {
      const double inv_u = 1.0 / model.PairVariance(0, adj.edge);
      diag += inv_u;
      b[k] += model.PairMean(0, i, adj.neighbor) * inv_u;
      if (pinned[static_cast<size_t>(adj.neighbor)]) {
        b[k] += value[static_cast<size_t>(adj.neighbor)] * inv_u;
      } else {
        a.At(k, index.at(adj.neighbor)) -= inv_u;
      }
    }
    a.At(k, k) = diag;
  }
  const math::CgResult solved = math::ConjugateGradient(
      b, [&](const std::vector<double>& x) { return a.Multiply(x); },
      {2000, 1e-12});
  EXPECT_TRUE(solved.converged);
  for (size_t k = 0; k < m; ++k) {
    value[static_cast<size_t>(free_roads[k])] = solved.x[k];
  }
  return value;
}

class GspExactTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GspExactTest, MatchesDirectSolveOnRoadNetwork) {
  const uint64_t seed = GetParam();
  util::Rng rng(seed);
  graph::RoadNetworkOptions net;
  net.num_roads = 60;
  const graph::Graph g = *graph::RoadNetwork(net, rng);
  const rtf::RtfModel model = RandomModel(g, seed + 100);

  std::vector<graph::RoadId> sampled;
  std::vector<double> pins;
  for (graph::RoadId r = 0; r < g.num_roads();
       r += 7 + static_cast<int>(seed % 3)) {
    sampled.push_back(r);
    pins.push_back(rng.UniformDouble(15.0, 85.0));
  }

  GspOptions options;
  options.epsilon = 1e-12;
  options.max_sweeps = 20000;
  const SpeedPropagator propagator(model, options);
  const auto gsp = propagator.Propagate(0, sampled, pins);
  ASSERT_TRUE(gsp.ok());
  ASSERT_TRUE(gsp->converged);

  const std::vector<double> exact =
      ExactConditionalOptimum(model, sampled, pins);
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    if (gsp->hops[static_cast<size_t>(r)] < 0) continue;  // unreachable
    EXPECT_NEAR(gsp->speeds[static_cast<size_t>(r)],
                exact[static_cast<size_t>(r)], 1e-6)
        << "road " << r << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GspExactTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(GspExactTest, GridWithSingleProbe) {
  const graph::Graph g = *graph::GridNetwork(6, 6);
  const rtf::RtfModel model = RandomModel(g, 9);
  GspOptions options;
  options.epsilon = 1e-12;
  options.max_sweeps = 50000;
  const SpeedPropagator propagator(model, options);
  const auto gsp = propagator.Propagate(0, {17}, {12.0});
  ASSERT_TRUE(gsp.ok());
  ASSERT_TRUE(gsp->converged);
  const std::vector<double> exact =
      ExactConditionalOptimum(model, {17}, {12.0});
  for (graph::RoadId r = 0; r < g.num_roads(); ++r) {
    EXPECT_NEAR(gsp->speeds[static_cast<size_t>(r)],
                exact[static_cast<size_t>(r)], 1e-6);
  }
}

}  // namespace
}  // namespace crowdrtse::gsp
