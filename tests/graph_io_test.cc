#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "graph/generators.h"
#include "util/rng.h"

namespace crowdrtse::graph {
namespace {

TEST(GraphIoTest, TextRoundTrip) {
  util::Rng rng(3);
  RoadNetworkOptions options;
  options.num_roads = 40;
  const Graph g = *RoadNetwork(options, rng);
  const std::string text = ToEdgeList(g);
  const auto loaded = FromEdgeList(text);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_roads(), g.num_roads());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(loaded->EdgeEndpoints(e), g.EdgeEndpoints(e));
  }
}

TEST(GraphIoTest, EmptyGraphRoundTrip) {
  GraphBuilder builder(0);
  const std::string text = ToEdgeList(*builder.Build());
  const auto loaded = FromEdgeList(text);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_roads(), 0);
}

TEST(GraphIoTest, MissingHeaderFails) {
  EXPECT_FALSE(FromEdgeList("").ok());
  EXPECT_FALSE(FromEdgeList("garbage").ok());
}

TEST(GraphIoTest, TruncatedEdgeListFails) {
  EXPECT_FALSE(FromEdgeList("4 2\n0 1\n").ok());
}

TEST(GraphIoTest, NegativeCountsFail) {
  EXPECT_FALSE(FromEdgeList("-1 0\n").ok());
}

TEST(GraphIoTest, InvalidEdgeFails) {
  EXPECT_FALSE(FromEdgeList("2 1\n0 5\n").ok());  // endpoint out of range
  EXPECT_FALSE(FromEdgeList("2 1\n1 1\n").ok());  // self loop
}

TEST(GraphIoTest, FileRoundTrip) {
  const Graph g = *GridNetwork(3, 3);
  const std::string path = ::testing::TempDir() + "/graph_io_test.edges";
  ASSERT_TRUE(WriteEdgeListFile(path, g).ok());
  const auto loaded = ReadEdgeListFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadEdgeListFile("/no/such/graph.edges").ok());
}


TEST(GraphIoTest, StreamWriterMatchesStringFormat) {
  util::Rng rng(5);
  RoadNetworkOptions options;
  options.num_roads = 60;
  const Graph g = *RoadNetwork(options, rng);
  std::ostringstream out;
  ASSERT_TRUE(WriteEdgeList(out, g).ok());
  EXPECT_EQ(out.str(), ToEdgeList(g));
  std::istringstream in(out.str());
  const auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(EdgeListChecksum(*loaded), EdgeListChecksum(g));
}

TEST(GraphIoTest, FileRoundTripStreamsAndPreservesChecksum) {
  MetroNetworkOptions metro;
  metro.num_roads = 2000;
  const auto g = MetroNetwork(metro);
  ASSERT_TRUE(g.ok());
  const std::string path = ::testing::TempDir() + "/metro_edges.txt";
  ASSERT_TRUE(WriteEdgeListFile(path, *g).ok());
  const auto loaded = ReadEdgeListFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_roads(), g->num_roads());
  EXPECT_EQ(loaded->num_edges(), g->num_edges());
  EXPECT_EQ(EdgeListChecksum(*loaded), EdgeListChecksum(*g));
  std::remove(path.c_str());
}

TEST(GraphIoTest, ChecksumIsStableAndEdgeSensitive) {
  const Graph a = *PathNetwork(5);
  const Graph b = *PathNetwork(5);
  EXPECT_EQ(EdgeListChecksum(a), EdgeListChecksum(b));
  const Graph ring = *RingNetwork(5);  // one extra edge over the path
  EXPECT_NE(EdgeListChecksum(a), EdgeListChecksum(ring));
  GraphBuilder builder(5);  // same counts as the path, different wiring
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(2, 4);
  EXPECT_NE(EdgeListChecksum(*builder.Build()), EdgeListChecksum(a));
}

}  // namespace
}  // namespace crowdrtse::graph
