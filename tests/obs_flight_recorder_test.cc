#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/json.h"

namespace crowdrtse::obs {
namespace {

/// Tiny rings so wraparound happens within a handful of records:
/// bytes_per_thread below one slot still yields the 8-slot floor.
FlightRecorder::Options TinyOptions(int max_threads = 4) {
  FlightRecorder::Options options;
  options.bytes_per_thread = 1;
  options.max_threads = max_threads;
  return options;
}

/// The payload relation every test writes: a=i, b=2i+1, c=3i+2. A torn
/// record (payload words from two different writes) cannot satisfy it.
void RecordRelated(FlightRecorder& recorder, int64_t i) {
  recorder.Record(EventKind::kGspSweep, i, 2 * i + 1, 3 * i + 2);
}

void ExpectWhole(const EventRecord& record) {
  EXPECT_EQ(record.b, 2 * record.a + 1) << "torn record at seq " << record.seq;
  EXPECT_EQ(record.c, 3 * record.a + 2) << "torn record at seq " << record.seq;
}

TEST(FlightRecorderTest, RecordsAndSnapshotsInSequenceOrder) {
  FlightRecorder recorder(TinyOptions());
  recorder.Record(EventKind::kBudgetReserve, 7, 3);
  recorder.Record(EventKind::kBudgetSettle, 7, 3, 2);
  const std::vector<EventRecord> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].kind, EventKind::kBudgetReserve);
  EXPECT_EQ(events[0].a, 7);
  EXPECT_EQ(events[0].b, 3);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[1].kind, EventKind::kBudgetSettle);
  EXPECT_EQ(events[1].c, 2);
  EXPECT_EQ(recorder.recorded(), 2);
  EXPECT_EQ(recorder.dropped(), 0);
}

TEST(FlightRecorderTest, WraparoundEvictsWholeOldestRecords) {
  FlightRecorder recorder(TinyOptions());
  const int64_t slots = static_cast<int64_t>(recorder.slots_per_thread());
  const int64_t total = 5 * slots + 3;  // wrap several times, misaligned
  for (int64_t i = 0; i < total; ++i) RecordRelated(recorder, i);

  const std::vector<EventRecord> events = recorder.Snapshot();
  // Exactly the ring capacity survives, and it is exactly the NEWEST
  // records — eviction is record-aligned, never a partial overwrite.
  ASSERT_EQ(static_cast<int64_t>(events.size()), slots);
  uint64_t previous_seq = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    ExpectWhole(events[i]);
    EXPECT_GT(events[i].seq, previous_seq) << "dump not sequence-sorted";
    previous_seq = events[i].seq;
    EXPECT_EQ(events[i].a, total - slots + static_cast<int64_t>(i));
  }
  EXPECT_EQ(recorder.recorded(), total);
  EXPECT_EQ(recorder.dropped(), 0);  // wraparound is not a drop
}

TEST(FlightRecorderTest, ConcurrentWritersAndDumperSeeNoTornRecords) {
  FlightRecorder recorder(TinyOptions(8));
  constexpr int kWriters = 4;
  constexpr int64_t kPerWriter = 20000;
  std::atomic<bool> stop{false};

  std::thread dumper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const EventRecord& record : recorder.Snapshot()) {
        ExpectWhole(record);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder] {
      for (int64_t i = 0; i < kPerWriter; ++i) RecordRelated(recorder, i);
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  dumper.join();

  const std::vector<EventRecord> events = recorder.Snapshot();
  std::set<uint64_t> seqs;
  for (const EventRecord& record : events) {
    ExpectWhole(record);
    EXPECT_TRUE(seqs.insert(record.seq).second) << "duplicate seq";
    EXPECT_LT(record.thread, static_cast<uint32_t>(kWriters));
  }
  EXPECT_EQ(recorder.recorded(), kWriters * kPerWriter);
  EXPECT_EQ(recorder.dropped(), 0);
  EXPECT_EQ(recorder.threads_registered(), kWriters);
}

TEST(FlightRecorderTest, ThreadCapDropsInsteadOfAllocating) {
  FlightRecorder recorder(TinyOptions(/*max_threads=*/1));
  // Both threads must be alive at once: a joined thread's id may be reused
  // and would legitimately re-find the first ring instead of dropping.
  std::atomic<bool> first_recorded{false};
  std::atomic<bool> second_done{false};
  std::thread first([&] {
    RecordRelated(recorder, 1);
    first_recorded.store(true);
    while (!second_done.load()) std::this_thread::yield();
  });
  std::thread second([&] {
    while (!first_recorded.load()) std::this_thread::yield();
    RecordRelated(recorder, 2);
    RecordRelated(recorder, 3);
    second_done.store(true);
  });
  first.join();
  second.join();
  EXPECT_EQ(recorder.threads_registered(), 1);
  EXPECT_EQ(recorder.dropped(), 2);
  EXPECT_EQ(recorder.Snapshot().size(), 1u);
}

TEST(FlightRecorderTest, DisabledRecordIsInvisible) {
  FlightRecorder recorder(TinyOptions());
  recorder.SetEnabled(false);
  RecordRelated(recorder, 1);
  EXPECT_EQ(recorder.recorded(), 0);
  EXPECT_TRUE(recorder.Snapshot().empty());
  recorder.SetEnabled(true);
  RecordRelated(recorder, 2);
  EXPECT_EQ(recorder.recorded(), 1);
  EXPECT_EQ(recorder.Snapshot().size(), 1u);
}

TEST(FlightRecorderTest, ClearRestartsTheSequence) {
  FlightRecorder recorder(TinyOptions());
  for (int64_t i = 0; i < 10; ++i) RecordRelated(recorder, i);
  recorder.Clear();
  EXPECT_EQ(recorder.recorded(), 0);
  EXPECT_TRUE(recorder.Snapshot().empty());
  RecordRelated(recorder, 42);
  const std::vector<EventRecord> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 1u);
}

TEST(FlightRecorderTest, ScopedShardTagsAndNests) {
  FlightRecorder recorder(TinyOptions());
  EXPECT_EQ(CurrentShard(), kNoShard);
  recorder.Record(EventKind::kGammaHit, 1);
  {
    ScopedShard outer(2);
    EXPECT_EQ(CurrentShard(), 2);
    recorder.Record(EventKind::kGammaHit, 2);
    {
      ScopedShard inner(5);
      EXPECT_EQ(CurrentShard(), 5);
      recorder.Record(EventKind::kGammaHit, 3);
    }
    EXPECT_EQ(CurrentShard(), 2);
  }
  EXPECT_EQ(CurrentShard(), kNoShard);
  const std::vector<EventRecord> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].shard, kNoShard);
  EXPECT_EQ(events[1].shard, 2);
  EXPECT_EQ(events[2].shard, 5);
}

TEST(FlightRecorderTest, DumpJsonParsesAndCarriesTheSchema) {
  FlightRecorder recorder(TinyOptions());
  recorder.Record(EventKind::kShardSplit, 9, 4, 24);
  const std::string dump = recorder.DumpJson();
  const auto doc = net::json::Parse(dump);
  ASSERT_TRUE(doc.ok()) << dump;
  EXPECT_EQ(*doc->Find("recorded")->AsInt(), 1);
  EXPECT_EQ(*doc->Find("dropped")->AsInt(), 0);
  EXPECT_EQ(*doc->Find("threads")->AsInt(), 1);
  const auto& events = doc->Find("events")->AsArray();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].Find("kind")->AsString(), "shard.split");
  EXPECT_EQ(*events[0].Find("seq")->AsInt(), 1);
  EXPECT_EQ(*events[0].Find("a")->AsInt(), 9);
  EXPECT_EQ(*events[0].Find("b")->AsInt(), 4);
  EXPECT_EQ(*events[0].Find("c")->AsInt(), 24);
}

TEST(FlightRecorderTest, EventKindNamesAreStable) {
  EXPECT_STREQ(EventKindName(EventKind::kAdmissionVerdict),
               "admission.verdict");
  EXPECT_STREQ(EventKindName(EventKind::kShedTransition), "shed.transition");
  EXPECT_STREQ(EventKindName(EventKind::kShardSplit), "shard.split");
  EXPECT_STREQ(EventKindName(EventKind::kShardMerge), "shard.merge");
  EXPECT_STREQ(EventKindName(EventKind::kDispatchAttempt),
               "dispatch.attempt");
  EXPECT_STREQ(EventKindName(EventKind::kGammaHit), "gamma.hit");
  EXPECT_STREQ(EventKindName(EventKind::kGammaMiss), "gamma.miss");
  EXPECT_STREQ(EventKindName(EventKind::kGammaPatch), "gamma.patch");
  EXPECT_STREQ(EventKindName(EventKind::kGspSweep), "gsp.sweep");
  EXPECT_STREQ(EventKindName(EventKind::kBudgetReserve), "budget.reserve");
  EXPECT_STREQ(EventKindName(EventKind::kBudgetSettle), "budget.settle");
  EXPECT_STREQ(EventKindName(EventKind::kCoalesceFanout), "coalesce.fanout");
}

}  // namespace
}  // namespace crowdrtse::obs
