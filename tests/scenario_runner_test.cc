// Scenario runner behavior: bit-exact replay from a seed, envelope
// verdicts wired into reports, incidents visibly moving the served
// estimates, fault swaps visibly degrading probes, and the runner's own
// validation of packs it cannot replay faithfully.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/json.h"
#include "scenario/pack.h"
#include "scenario/runner.h"

namespace crowdrtse::scenario {
namespace {

constexpr char kBasePack[] = R"(
[scenario]
name = runner_base
seed = 11
slots_per_day = 32

[map]
A-B-C
|   |
D-E-F

[tags]
E: class=local

[workers]
per_road = 4
noiseless = true

[timeline]
at=4 phase name=early
at=5 storm queries=4 size=2 roads=all
at=12 phase name=late
at=13 storm queries=4 size=2 roads=all

[envelope]
min_served = 8
max_failed = 0
max_mape = 0.05
)";

Pack MustParse(const std::string& text) {
  auto pack = ParsePack(text);
  EXPECT_TRUE(pack.ok()) << pack.status().ToString();
  return *pack;
}

TEST(ScenarioRunnerTest, ReplayIsByteIdenticalAcrossRuns) {
  const Pack pack = MustParse(kBasePack);
  for (const auto kind : {RunnerOptions::EngineKind::kSingle,
                          RunnerOptions::EngineKind::kSharded}) {
    RunnerOptions options;
    options.engine = kind;
    auto first = RunScenario(pack, options);
    auto second = RunScenario(pack, options);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_EQ(first->answers_digest, second->answers_digest)
        << EngineKindName(kind);
    EXPECT_EQ(first->ToJson(), second->ToJson()) << EngineKindName(kind);
    EXPECT_TRUE(first->AllPassed()) << first->ToJson();
  }
}

TEST(ScenarioRunnerTest, SeedChangesTheReplay) {
  const Pack pack = MustParse(kBasePack);
  RunnerOptions options;
  auto base = RunScenario(pack, options);
  options.seed = 12345;
  auto reseeded = RunScenario(pack, options);
  ASSERT_TRUE(base.ok() && reseeded.ok());
  EXPECT_NE(base->answers_digest, reseeded->answers_digest);
  EXPECT_EQ(reseeded->seed, 12345u);
}

TEST(ScenarioRunnerTest, PhasesSliceTheRunAndEnvelopesBindToThem) {
  const Pack pack = MustParse(kBasePack);
  auto report = RunScenario(pack, RunnerOptions{});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->phases.size(), 2u);
  EXPECT_EQ(report->phases[0].name, "early");
  EXPECT_EQ(report->phases[1].name, "late");
  EXPECT_EQ(report->phases[0].metrics.attempts, 4);
  EXPECT_EQ(report->phases[1].metrics.attempts, 4);
  EXPECT_FALSE(report->phases[0].checked);  // no [envelope:early] block
  EXPECT_TRUE(report->total.checked);
  EXPECT_EQ(report->total.metrics.attempts, 8);
  EXPECT_EQ(report->total.metrics.served, 8);
}

TEST(ScenarioRunnerTest, ImpossibleEnvelopeFailsTheRun) {
  std::string text = kBasePack;
  text.replace(text.find("min_served = 8"), 14, "min_served = 99");
  const Pack pack = MustParse(text);
  auto report = RunScenario(pack, RunnerOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->AllPassed());
  ASSERT_EQ(report->total.failures.size(), 1u);
  EXPECT_NE(report->total.failures[0].find("min_served"), std::string::npos);
  // The failure shows up in the serialized report too.
  EXPECT_NE(report->ToJson().find("\"passed\":false"), std::string::npos);
}

TEST(ScenarioRunnerTest, EnvelopeFailureDumpsTheFlightRecorder) {
  std::string text = kBasePack;
  text.replace(text.find("min_served = 8"), 14, "min_served = 99");
  const Pack pack = MustParse(text);
  const std::string dump_path =
      ::testing::TempDir() + "/runner_envelope_failure.flight.json";
  std::remove(dump_path.c_str());
  RunnerOptions options;
  options.flight_dump_path = dump_path;
  auto report = RunScenario(pack, options);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->AllPassed());

  std::ifstream in(dump_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "no flight dump at " << dump_path;
  std::ostringstream content;
  content << in.rdbuf();
  const auto doc = net::json::Parse(content.str());
  ASSERT_TRUE(doc.ok()) << "flight dump is not JSON";
  // The recorder was cleared at run start, so the dump covers exactly this
  // replay: budget activity of the failing run must be present, and the
  // events must arrive already ordered by the global sequence.
  const auto& events = doc->Find("events")->AsArray();
  ASSERT_FALSE(events.empty());
  bool saw_budget = false;
  int64_t previous_seq = 0;
  for (const auto& event : events) {
    const int64_t seq = *event.Find("seq")->AsInt();
    EXPECT_GT(seq, previous_seq) << "dump not replayable in order";
    previous_seq = seq;
    if (event.Find("kind")->AsString() == "budget.reserve") saw_budget = true;
  }
  EXPECT_TRUE(saw_budget);
  // The dump never leaks into the deterministic report JSON.
  EXPECT_EQ(report->ToJson().find("flight"), std::string::npos);
  std::remove(dump_path.c_str());
}

TEST(ScenarioRunnerTest, PassingRunWritesNoFlightDump) {
  const Pack pack = MustParse(kBasePack);
  const std::string dump_path =
      ::testing::TempDir() + "/runner_envelope_pass.flight.json";
  std::remove(dump_path.c_str());
  RunnerOptions options;
  options.flight_dump_path = dump_path;
  auto report = RunScenario(pack, options);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->AllPassed());
  std::ifstream in(dump_path);
  EXPECT_FALSE(in.good()) << "passing run must not dump";
}

// An incident must move the *served answers*, not just internal state:
// the same storm on the incident road returns visibly slower speeds
// while the incident is active, on both engines.
TEST(ScenarioRunnerTest, IncidentDropsServedSpeeds) {
  constexpr char kIncidentPack[] = R"(
[scenario]
name = runner_incident
seed = 13
slots_per_day = 32

[map]
A-B-C
|   |
D-E-F

[workers]
per_road = 4
noiseless = true

[timeline]
at=4 phase name=before
at=5 storm queries=3 size=1 roads=list:E
at=12 phase name=during
at=12 incident road=E drop=0.6 duration=10 spillover=0
at=13 storm queries=3 size=1 roads=list:E
)";
  const Pack pack = MustParse(kIncidentPack);
  for (const auto kind : {RunnerOptions::EngineKind::kSingle,
                          RunnerOptions::EngineKind::kSharded}) {
    RunnerOptions options;
    options.engine = kind;
    options.keep_responses = true;
    auto report = RunScenario(pack, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_EQ(report->records.size(), 6u);
    double before = 0.0, during = 0.0;
    for (size_t i = 0; i < 3; ++i) {
      before += report->records[i].response.queried_speeds[0];
      during += report->records[i + 3].response.queried_speeds[0];
    }
    EXPECT_LT(during, 0.7 * before) << EngineKindName(kind);
  }
}

// Swapping in a drop-everything fault plan mid-run must push probes down
// the degradation ladder — and clearing it must restore clean service.
TEST(ScenarioRunnerTest, FaultSwapDegradesThenClears) {
  constexpr char kFaultPack[] = R"(
[scenario]
name = runner_faults
seed = 17
slots_per_day = 32

[map]
A-B-C
|   |
D-E-F

[workers]
per_road = 4
noiseless = true

[engine]
fault_tolerant = true

[timeline]
at=4 phase name=clean
at=5 storm queries=3 size=2 roads=all
at=12 phase name=broken
at=12 faults drop=1.0 roads=all
at=13 storm queries=3 size=2 roads=all
at=20 phase name=healed
at=20 faults clear=true
at=21 storm queries=3 size=2 roads=all
)";
  const Pack pack = MustParse(kFaultPack);
  auto report = RunScenario(pack, RunnerOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->phases.size(), 3u);
  EXPECT_EQ(report->phases[0].metrics.roads_degraded, 0);
  // Every probe of the broken phase dropped: every selected road degraded.
  EXPECT_GT(report->phases[1].metrics.roads_degraded, 0);
  EXPECT_EQ(report->phases[1].metrics.roads_probed, 0);
  EXPECT_EQ(report->phases[2].metrics.roads_degraded, 0);
  // Degraded probes are never paid.
  EXPECT_EQ(report->phases[1].metrics.paid, 0);
  EXPECT_GT(report->phases[2].metrics.paid, 0);
}

TEST(ScenarioRunnerTest, RejectsFaultEventsOnNonFaultTolerantPack) {
  std::string text = kBasePack;
  text.replace(text.find("at=5 storm queries=4 size=2 roads=all"),
               std::string("at=5 storm queries=4 size=2 roads=all").size(),
               "at=5 faults drop=0.5 roads=all");
  const Pack pack = MustParse(text);
  auto report = RunScenario(pack, RunnerOptions{});
  EXPECT_FALSE(report.ok());
}

TEST(ScenarioRunnerTest, WorkerChurnShrinksAndGrowsThePopulation) {
  const Pack pack = MustParse(kBasePack);
  auto fixture = BuildFixture(pack);
  ASSERT_TRUE(fixture.ok());
  const auto workers = BuildWorkerPopulation(pack, *fixture, pack.seed);
  EXPECT_EQ(workers.size(),
            static_cast<size_t>(4 * fixture->graph.num_roads()));
  // Same seed, same population — worker construction is replay-stable.
  const auto again = BuildWorkerPopulation(pack, *fixture, pack.seed);
  ASSERT_EQ(workers.size(), again.size());
  for (size_t i = 0; i < workers.size(); ++i) {
    EXPECT_EQ(workers[i].id, again[i].id);
    EXPECT_EQ(workers[i].road, again[i].road);
    EXPECT_DOUBLE_EQ(workers[i].bias, again[i].bias);
  }
}

}  // namespace
}  // namespace crowdrtse::scenario
