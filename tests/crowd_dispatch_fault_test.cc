// Deterministic fault-matrix suite for the fault-tolerant crowd dispatch
// path: {drop, delay-past-deadline, duplicate, corrupt/outlier} crossed
// with {retry succeeds, retry exhausts -> degrade}, all on util::SimClock
// so retry counts and the exact backoff schedule are assertable to the
// microsecond and a round costs zero wall time.
#include "crowd/dispatch_controller.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "crowd/aggregation.h"
#include "crowd/fault_plan.h"
#include "crowd/task_assignment.h"
#include "traffic/history_store.h"
#include "util/clock.h"

namespace crowdrtse::crowd {
namespace {

constexpr int kNumRoads = 8;
constexpr double kTruthBase = 30.0;

double TruthFor(graph::RoadId road) { return kTruthBase + road; }

/// Noise-free worker: her report is exactly the ground truth, so probe
/// values are assertable bit-exactly.
Worker MakeWorker(WorkerId id, graph::RoadId road) {
  Worker w;
  w.id = id;
  w.road = road;
  w.bias = 1.0;
  w.noise_kmh = 0.0;
  return w;
}

class DispatchFaultTest : public ::testing::Test {
 protected:
  DispatchFaultTest() : truth_(1, kNumRoads) {
    for (graph::RoadId r = 0; r < kNumRoads; ++r) {
      truth_.At(0, r) = TruthFor(r);
    }
    // Exact-schedule defaults: no jitter, generous plausibility window.
    options_.deadline_ms = 50.0;
    options_.max_attempts = 3;
    options_.backoff_base_ms = 10.0;
    options_.backoff_cap_ms = 200.0;
    options_.backoff_jitter = 0.0;
    options_.min_response_ms = 5.0;
    options_.max_response_ms = 20.0;
    options_.min_plausible_kmh = 0.5;
    options_.max_plausible_kmh = 150.0;
  }

  /// The controller's answer source: the worker reads the truth exactly.
  DispatchController::AnswerFn Answers() {
    return [this](const Worker& worker, graph::RoadId road) {
      SpeedAnswer answer;
      answer.worker = worker.id;
      answer.road = road;
      answer.reported_kmh = truth_.At(0, road);
      return answer;
    };
  }

  util::Result<DispatchRound> RunRound(
      const std::vector<graph::RoadId>& selected,
      const std::vector<Worker>& workers, const FaultPlan& faults,
      int quota = 1) {
    const CostModel costs = CostModel::Constant(kNumRoads, quota);
    util::Result<AssignmentPlan> plan =
        AssignTasks(selected, costs, workers);
    if (!plan.ok()) return plan.status();
    DispatchController controller(options_, &clock_);
    return controller.Run(*plan, workers, costs, faults, Answers());
  }

  traffic::DayMatrix truth_;
  DispatchOptions options_;
  util::SimClock clock_;
};

TEST_F(DispatchFaultTest, FaultFreeRoundAnswersEverythingFirstTry) {
  const std::vector<Worker> workers = {MakeWorker(0, 0), MakeWorker(1, 1),
                                       MakeWorker(2, 1)};
  const auto round = RunRound({0, 1}, workers, FaultPlan{}, /*quota=*/2);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->stats.retries, 0);
  EXPECT_EQ(round->stats.deadline_misses, 0);
  EXPECT_EQ(round->stats.answered, round->stats.tasks);
  EXPECT_TRUE(round->degraded_roads.empty());
  // Road 0 has one worker against a quota of 2: underfilled, not degraded.
  EXPECT_EQ(round->underfilled_roads, std::vector<graph::RoadId>{0});
  ASSERT_EQ(round->round.probes.size(), 2u);
  EXPECT_DOUBLE_EQ(round->round.probes[0].probed_kmh, TruthFor(0));
  EXPECT_DOUBLE_EQ(round->round.probes[1].probed_kmh, TruthFor(1));
  EXPECT_EQ(round->round.total_paid, 3);
  // Everyone answered inside her response window.
  EXPECT_LE(round->span_ms, options_.max_response_ms);
  EXPECT_GE(round->span_ms, options_.min_response_ms);
}

TEST_F(DispatchFaultTest, DroppedWorkerRetriesOnSpareExactSchedule) {
  // Worker 0 (hired first: lowest id at equal noise) always drops; worker
  // 1 is the spare on the same road.
  const std::vector<Worker> workers = {MakeWorker(0, 0), MakeWorker(1, 0)};
  FaultSpec drop_all;
  drop_all.drop_rate = 1.0;
  FaultPlan faults;
  faults.SetWorkerSpec(0, drop_all);
  const auto round = RunRound({0}, workers, faults);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  ASSERT_EQ(round->attempts.size(), 2u);
  EXPECT_EQ(round->attempts[0].worker, 0);
  EXPECT_EQ(round->attempts[0].dispatched_us, 0);
  EXPECT_EQ(round->attempts[0].fault, FaultKind::kDrop);
  // Retry 1 fires exactly at deadline + base backoff (jitter is 0) and
  // moves to the spare.
  EXPECT_EQ(round->attempts[1].worker, 1);
  EXPECT_EQ(round->attempts[1].dispatched_us, 60'000);
  EXPECT_TRUE(round->attempts[1].reassigned);
  EXPECT_EQ(round->stats.retries, 1);
  EXPECT_EQ(round->stats.reassignments, 1);
  EXPECT_EQ(round->stats.deadline_misses, 1);
  EXPECT_EQ(round->stats.answered, 1);
  ASSERT_EQ(round->round.probes.size(), 1u);
  EXPECT_DOUBLE_EQ(round->round.probes[0].probed_kmh, TruthFor(0));
  EXPECT_EQ(round->round.total_paid, 1);
  EXPECT_TRUE(round->degraded_roads.empty());
}

TEST_F(DispatchFaultTest, DropEverythingExhaustsBackoffScheduleAndDegrades) {
  const std::vector<Worker> workers = {MakeWorker(0, 3), MakeWorker(1, 3)};
  FaultSpec drop_all;
  drop_all.drop_rate = 1.0;
  FaultPlan faults;
  faults.SetRoadSpec(3, drop_all);  // every worker on the road drops
  const auto round = RunRound({3}, workers, faults);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  // Exact jitter-free schedule: dispatch at 0; deadline 50ms + 10ms
  // backoff -> 60ms; deadline 110ms + 20ms backoff -> 130ms; final
  // deadline 180ms exhausts the task.
  ASSERT_EQ(round->attempts.size(), 3u);
  EXPECT_EQ(round->attempts[0].dispatched_us, 0);
  EXPECT_EQ(round->attempts[1].dispatched_us, 60'000);
  EXPECT_EQ(round->attempts[2].dispatched_us, 130'000);
  EXPECT_EQ(round->stats.retries, 2);
  EXPECT_EQ(round->stats.deadline_misses, 3);
  EXPECT_EQ(round->stats.exhausted, 1);
  EXPECT_EQ(round->stats.answered, 0);
  EXPECT_DOUBLE_EQ(round->span_ms, 180.0);
  EXPECT_DOUBLE_EQ(round->span_ms, options_.MaxRoundSpanMs());
  ASSERT_EQ(round->degraded_roads.size(), 1u);
  EXPECT_EQ(round->degraded_roads[0], 3);
  EXPECT_EQ(round->degraded_reasons[0], DegradeReason::kDeadline);
  // An unanswered task pays nobody and yields no probe.
  EXPECT_EQ(round->round.total_paid, 0);
  EXPECT_TRUE(round->round.probes.empty());
  EXPECT_TRUE(round->underfilled_roads.empty());  // degraded, not both
}

TEST_F(DispatchFaultTest, DelayPastDeadlineRetriesAndCountsStraggler) {
  const std::vector<Worker> workers = {MakeWorker(0, 2), MakeWorker(1, 2)};
  FaultSpec slow;
  slow.delay_rate = 1.0;
  slow.delay_min_ms = 300.0;
  slow.delay_max_ms = 300.0;
  FaultPlan faults;
  faults.SetWorkerSpec(0, slow);
  const auto round = RunRound({2}, workers, faults);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  ASSERT_EQ(round->attempts.size(), 2u);
  EXPECT_EQ(round->attempts[0].fault, FaultKind::kDelay);
  EXPECT_EQ(round->attempts[1].dispatched_us, 60'000);
  EXPECT_TRUE(round->attempts[1].reassigned);
  EXPECT_EQ(round->stats.answered, 1);
  // The round resolves on the retry; nobody waits for the straggler...
  EXPECT_LT(round->span_ms, 100.0);
  // ...but its eventual arrival is on the books: late, and a duplicate of
  // the answer the spare already gave.
  EXPECT_GE(round->stats.late_reports, 1);
  EXPECT_GE(round->stats.duplicate_reports, 1);
  EXPECT_EQ(round->round.total_paid, 1);
}

TEST_F(DispatchFaultTest, DuplicateReportRejectedAndPaidOnce) {
  const std::vector<Worker> workers = {MakeWorker(0, 1)};
  FaultSpec dup;
  dup.duplicate_rate = 1.0;
  FaultPlan faults;
  faults.SetRoadSpec(1, dup);
  const auto round = RunRound({1}, workers, faults);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->stats.duplicate_reports, 1);
  EXPECT_EQ(round->stats.retries, 0);
  EXPECT_EQ(round->stats.answered, 1);
  ASSERT_EQ(round->round.probes.size(), 1u);
  EXPECT_EQ(round->round.probes[0].num_answers, 1);
  // The double submission is paid once, and aggregation sees one answer.
  EXPECT_EQ(round->round.total_paid, 1);
  EXPECT_DOUBLE_EQ(round->round.probes[0].probed_kmh, TruthFor(1));
}

TEST_F(DispatchFaultTest, CorruptReportRejectedThenRetrySucceeds) {
  const std::vector<Worker> workers = {MakeWorker(0, 4), MakeWorker(1, 4)};
  FaultSpec corrupt;
  corrupt.corrupt_rate = 1.0;
  corrupt.corrupt_min_kmh = 400.0;  // far outside the plausibility window
  corrupt.corrupt_max_kmh = 500.0;
  FaultPlan faults;
  faults.SetWorkerSpec(0, corrupt);
  const auto round = RunRound({4}, workers, faults);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->stats.outlier_reports, 1);
  EXPECT_EQ(round->stats.retries, 1);
  EXPECT_EQ(round->stats.reassignments, 1);
  // The outlier fails its attempt on arrival: the retry fires at arrival
  // (inside the worker response window) + base backoff, before the
  // original deadline would have.
  ASSERT_EQ(round->attempts.size(), 2u);
  EXPECT_GE(round->attempts[1].dispatched_us,
            static_cast<int64_t>((options_.min_response_ms +
                                  options_.backoff_base_ms) *
                                 1e3));
  EXPECT_LE(round->attempts[1].dispatched_us,
            static_cast<int64_t>((options_.max_response_ms +
                                  options_.backoff_base_ms) *
                                 1e3));
  ASSERT_EQ(round->round.probes.size(), 1u);
  EXPECT_DOUBLE_EQ(round->round.probes[0].probed_kmh, TruthFor(4));
  EXPECT_EQ(round->round.total_paid, 1);
}

TEST_F(DispatchFaultTest, AllCorruptExhaustsAndDegradesAsOutlier) {
  const std::vector<Worker> workers = {MakeWorker(0, 5), MakeWorker(1, 5),
                                       MakeWorker(2, 5)};
  FaultSpec corrupt;
  corrupt.corrupt_rate = 1.0;
  corrupt.corrupt_min_kmh = 400.0;
  corrupt.corrupt_max_kmh = 500.0;
  FaultPlan faults;
  faults.SetRoadSpec(5, corrupt);
  const auto round = RunRound({5}, workers, faults);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->stats.outlier_reports, 3);
  EXPECT_EQ(round->stats.retries, 2);
  EXPECT_EQ(round->stats.exhausted, 1);
  ASSERT_EQ(round->degraded_roads.size(), 1u);
  EXPECT_EQ(round->degraded_roads[0], 5);
  EXPECT_EQ(round->degraded_reasons[0], DegradeReason::kOutlier);
  EXPECT_EQ(round->round.total_paid, 0);
}

TEST_F(DispatchFaultTest, UnstaffedRoadDegradesAsUnstaffed) {
  // Road 6 has nobody on it; road 0 is staffed and healthy.
  const std::vector<Worker> workers = {MakeWorker(0, 0)};
  const auto round = RunRound({0, 6}, workers, FaultPlan{});
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  ASSERT_EQ(round->degraded_roads.size(), 1u);
  EXPECT_EQ(round->degraded_roads[0], 6);
  EXPECT_EQ(round->degraded_reasons[0], DegradeReason::kUnstaffed);
  ASSERT_EQ(round->round.probes.size(), 1u);
  EXPECT_EQ(round->round.probes[0].road, 0);
  // The unstaffed road never shows up as underfilled too (no double
  // counting between the classifications).
  EXPECT_TRUE(round->underfilled_roads.empty());
}

TEST_F(DispatchFaultTest, FaultedRoundReplaysBitIdentically) {
  const std::vector<Worker> workers = {
      MakeWorker(0, 0), MakeWorker(1, 0), MakeWorker(2, 1),
      MakeWorker(3, 1), MakeWorker(4, 2), MakeWorker(5, 2)};
  FaultSpec mix;
  mix.drop_rate = 0.3;
  mix.delay_rate = 0.2;
  mix.duplicate_rate = 0.1;
  mix.corrupt_rate = 0.1;
  mix.corrupt_min_kmh = 300.0;
  mix.corrupt_max_kmh = 400.0;
  const FaultPlan faults(mix, /*seed=*/42);
  const auto a = RunRound({0, 1, 2}, workers, faults, /*quota=*/2);
  const auto b = RunRound({0, 1, 2}, workers, faults, /*quota=*/2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->attempts.size(), b->attempts.size());
  for (size_t i = 0; i < a->attempts.size(); ++i) {
    EXPECT_EQ(a->attempts[i].worker, b->attempts[i].worker);
    EXPECT_EQ(a->attempts[i].attempt, b->attempts[i].attempt);
    EXPECT_EQ(a->attempts[i].dispatched_us, b->attempts[i].dispatched_us);
    EXPECT_EQ(a->attempts[i].fault, b->attempts[i].fault);
  }
  ASSERT_EQ(a->round.probes.size(), b->round.probes.size());
  for (size_t i = 0; i < a->round.probes.size(); ++i) {
    EXPECT_EQ(a->round.probes[i].road, b->round.probes[i].road);
    // Bit-identical, not just close.
    EXPECT_EQ(a->round.probes[i].probed_kmh, b->round.probes[i].probed_kmh);
  }
  EXPECT_EQ(a->degraded_roads, b->degraded_roads);
  EXPECT_EQ(a->round.total_paid, b->round.total_paid);
  EXPECT_DOUBLE_EQ(a->span_ms, b->span_ms);
}

TEST_F(DispatchFaultTest, JitteredBackoffStaysInEnvelopeDeterministically) {
  options_.backoff_jitter = 0.5;
  const std::vector<Worker> workers = {MakeWorker(0, 0)};
  FaultSpec drop_all;
  drop_all.drop_rate = 1.0;
  FaultPlan faults;
  faults.SetRoadSpec(0, drop_all);
  const auto a = RunRound({0}, workers, faults);
  const auto b = RunRound({0}, workers, faults);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->attempts.size(), 3u);
  // Retry k waits base * 2^(k-1) * U[0.5, 1.5] after the missed deadline.
  const int64_t gap1 = a->attempts[1].dispatched_us - 50'000;
  const int64_t gap2 = a->attempts[2].dispatched_us -
                       (a->attempts[1].dispatched_us + 50'000);
  EXPECT_GE(gap1, 5'000);
  EXPECT_LE(gap1, 15'000);
  EXPECT_GE(gap2, 10'000);
  EXPECT_LE(gap2, 30'000);
  // The jitter draw is a pure hash: both runs saw the same schedule.
  EXPECT_EQ(a->attempts[1].dispatched_us, b->attempts[1].dispatched_us);
  EXPECT_EQ(a->attempts[2].dispatched_us, b->attempts[2].dispatched_us);
  EXPECT_LE(a->span_ms, options_.MaxRoundSpanMs());
}

TEST_F(DispatchFaultTest, MixedFaultMatrixResolvesWithinBudget) {
  std::vector<Worker> workers;
  std::vector<graph::RoadId> selected;
  for (graph::RoadId r = 0; r < kNumRoads; ++r) {
    selected.push_back(r);
    for (int k = 0; k < 5; ++k) {
      workers.push_back(
          MakeWorker(static_cast<WorkerId>(r * 5 + k), r));
    }
  }
  FaultSpec mix;
  mix.drop_rate = 0.3;
  mix.delay_rate = 0.2;
  const FaultPlan faults(mix, /*seed=*/7);
  const auto round = RunRound(selected, workers, faults, /*quota=*/3);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  // Every task resolved inside the hard latency budget, faults or not.
  EXPECT_EQ(round->stats.answered + round->stats.exhausted,
            round->stats.tasks);
  EXPECT_LE(round->span_ms, options_.MaxRoundSpanMs());
  // probed + degraded partition the selected roads.
  std::vector<graph::RoadId> covered;
  for (const ProbeResult& p : round->round.probes) covered.push_back(p.road);
  for (graph::RoadId r : round->degraded_roads) covered.push_back(r);
  std::sort(covered.begin(), covered.end());
  EXPECT_EQ(covered, selected);
  for (graph::RoadId r : round->underfilled_roads) {
    EXPECT_FALSE(std::binary_search(round->degraded_roads.begin(),
                                    round->degraded_roads.end(), r));
  }
  // Payment covers exactly the accepted answers.
  EXPECT_EQ(round->round.total_paid, round->stats.answered);
}

TEST(FaultPlanTest, WorkerSpecOverridesRoadSpecOverridesDefault) {
  FaultSpec drop_all;
  drop_all.drop_rate = 1.0;
  FaultSpec dup_all;
  dup_all.duplicate_rate = 1.0;
  FaultPlan plan(drop_all, /*seed=*/1);
  plan.SetRoadSpec(2, dup_all);
  plan.SetWorkerSpec(9, FaultSpec{});  // healthy despite her road
  EXPECT_EQ(plan.Decide(1, 0, 1).kind, FaultKind::kDrop);
  EXPECT_EQ(plan.Decide(1, 2, 1).kind, FaultKind::kDuplicate);
  EXPECT_EQ(plan.Decide(9, 2, 1).kind, FaultKind::kNone);
}

TEST(FaultPlanTest, DecisionsAreDeterministicPerAttempt) {
  FaultSpec mix;
  mix.drop_rate = 0.5;
  mix.delay_rate = 0.3;
  const FaultPlan plan(mix, /*seed=*/11);
  int drops = 0;
  for (int attempt = 1; attempt <= 200; ++attempt) {
    const auto first = plan.Decide(3, 4, attempt);
    const auto again = plan.Decide(3, 4, attempt);
    EXPECT_EQ(first.kind, again.kind);
    EXPECT_EQ(first.delay_ms, again.delay_ms);
    if (first.kind == FaultKind::kDrop) ++drops;
  }
  // Roughly half the attempts drop (hash uniformity sanity check).
  EXPECT_GT(drops, 60);
  EXPECT_LT(drops, 140);
}

TEST(FilterReportsTest, DropsDuplicatesAndMadOutliersButNeverEverything) {
  std::vector<SpeedAnswer> answers;
  for (int i = 0; i < 5; ++i) {
    answers.push_back({/*worker=*/i, /*road=*/0,
                       /*reported_kmh=*/50.0 + 0.1 * i});
  }
  answers.push_back({/*worker=*/2, /*road=*/0, /*reported_kmh=*/49.0});
  answers.push_back({/*worker=*/7, /*road=*/0, /*reported_kmh=*/140.0});
  const auto kept = FilterReports(answers, /*mad_sigmas=*/4.0);
  ASSERT_EQ(kept.size(), 5u);  // duplicate worker 2 and the outlier gone
  for (const SpeedAnswer& a : kept) {
    EXPECT_LT(a.reported_kmh, 60.0);
  }
  // Identical answers (zero MAD) all survive.
  std::vector<SpeedAnswer> flat;
  for (int i = 0; i < 6; ++i) flat.push_back({i, 0, 40.0});
  EXPECT_EQ(FilterReports(flat, 4.0).size(), 6u);
}

TEST(SimClockTest, AdvancesManuallyAndOnSleepMonotonically) {
  util::SimClock clock(1'000);
  EXPECT_EQ(clock.NowMicros(), 1'000);
  clock.AdvanceMicros(500);
  EXPECT_EQ(clock.NowMicros(), 1'500);
  clock.SleepUntilMicros(10'000);  // jumps, no wall time
  EXPECT_EQ(clock.NowMicros(), 10'000);
  clock.SleepUntilMicros(5'000);  // never goes backwards
  EXPECT_EQ(clock.NowMicros(), 10'000);
  clock.AdvanceMillis(1.5);
  EXPECT_EQ(clock.NowMicros(), 11'500);
}

}  // namespace
}  // namespace crowdrtse::crowd
