#include "core/crowd_rtse.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/gsp_estimator.h"
#include "graph/generators.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::core {
namespace {

class CrowdRtseTest : public ::testing::Test {
 protected:
  CrowdRtseTest() {
    util::Rng rng(21);
    graph::RoadNetworkOptions net;
    net.num_roads = 80;
    graph_ = *graph::RoadNetwork(net, rng);
    traffic::TrafficModelOptions traffic_options;
    traffic_options.num_days = 10;
    sim_ = std::make_unique<traffic::TrafficSimulator>(graph_,
                                                       traffic_options, 23);
    history_ = sim_->GenerateHistory();
    costs_ = crowd::CostModel::Constant(graph_.num_roads(), 2);
    for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
      all_roads_.push_back(r);
    }
  }

  CrowdRtseConfig Config() {
    CrowdRtseConfig config;
    config.moments.slot_window = 1;
    return config;
  }

  graph::Graph graph_;
  std::unique_ptr<traffic::TrafficSimulator> sim_;
  traffic::HistoryStore history_;
  crowd::CostModel costs_;
  std::vector<graph::RoadId> all_roads_;
};

TEST_F(CrowdRtseTest, BuildOfflineTrainsValidModel) {
  auto system = CrowdRtse::BuildOffline(graph_, history_, Config());
  ASSERT_TRUE(system.ok());
  EXPECT_TRUE(system->model().Validate().ok());
  EXPECT_EQ(system->model().num_roads(), graph_.num_roads());
}

TEST_F(CrowdRtseTest, BuildOfflineValidatesConfig) {
  CrowdRtseConfig config = Config();
  config.theta = 0.0;
  EXPECT_FALSE(CrowdRtse::BuildOffline(graph_, history_, config).ok());
}

TEST_F(CrowdRtseTest, CorrelationTableCachedPerSlot) {
  auto system = CrowdRtse::BuildOffline(graph_, history_, Config());
  ASSERT_TRUE(system.ok());
  const auto a = system->CorrelationsFor(100);
  const auto b = system->CorrelationsFor(100);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // same cached pointer
  EXPECT_FALSE(system->CorrelationsFor(-1).ok());
}

TEST_F(CrowdRtseTest, WarmStartsCorrelationsFromPersistDir) {
  const std::string dir = ::testing::TempDir() + "/crowd_rtse_warm_start";
  std::filesystem::remove_all(dir);
  CrowdRtseConfig config = Config();
  config.correlation_cache.persist_dir = dir;
  {
    auto cold = CrowdRtse::BuildOffline(graph_, history_, config);
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(cold->CorrelationsFor(100).ok());  // compute + persist
    EXPECT_EQ(cold->CorrelationCacheStats().misses, 1);
    EXPECT_EQ(cold->CorrelationCacheStats().warm_loads, 0);
  }
  auto warm = CrowdRtse::BuildOffline(graph_, history_, config);
  ASSERT_TRUE(warm.ok());
  // BuildOffline eagerly reloaded the persisted slot from disk...
  EXPECT_GE(warm->CorrelationCacheStats().warm_loads, 1);
  // ...so touching it again is a pure hit, no recompute.
  ASSERT_TRUE(warm->CorrelationsFor(100).ok());
  EXPECT_EQ(warm->CorrelationCacheStats().misses, 0);
  EXPECT_GE(warm->CorrelationCacheStats().hits, 1);
  std::filesystem::remove_all(dir);
}

TEST_F(CrowdRtseTest, CorrelationMemoryBudgetEvicts) {
  CrowdRtseConfig config = Config();
  // Room for exactly one resident table: the second slot evicts the first.
  config.correlation_cache.memory_budget_bytes =
      static_cast<std::size_t>(graph_.num_roads()) *
      static_cast<std::size_t>(graph_.num_roads()) * sizeof(double);
  auto system = CrowdRtse::BuildOffline(graph_, history_, config);
  ASSERT_TRUE(system.ok());
  ASSERT_TRUE(system->CorrelationsFor(100).ok());
  ASSERT_TRUE(system->CorrelationsFor(101).ok());
  const auto stats = system->CorrelationCacheStats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.resident_tables, 1);
  // The evicted slot still answers correctly (recompute on next touch).
  EXPECT_TRUE(system->CorrelationsFor(100).ok());
}

TEST_F(CrowdRtseTest, SelectRoadsHonoursBudgetAndWorkers) {
  auto system = CrowdRtse::BuildOffline(graph_, history_, Config());
  ASSERT_TRUE(system.ok());
  const std::vector<graph::RoadId> queried{1, 5, 9, 13, 17};
  std::vector<graph::RoadId> workers;
  for (graph::RoadId r = 0; r < 40; ++r) workers.push_back(r);
  const auto selection =
      system->SelectRoads(100, queried, workers, costs_, 10);
  ASSERT_TRUE(selection.ok());
  EXPECT_LE(selection->total_cost, 10);
  const std::set<graph::RoadId> worker_set(workers.begin(), workers.end());
  for (graph::RoadId r : selection->roads) {
    EXPECT_TRUE(worker_set.count(r) > 0);
  }
}

TEST_F(CrowdRtseTest, SelectorKindsDiffer) {
  auto system = CrowdRtse::BuildOffline(graph_, history_, Config());
  ASSERT_TRUE(system.ok());
  const std::vector<graph::RoadId> queried{1, 5, 9};
  const auto hybrid = system->SelectRoads(50, queried, all_roads_, costs_,
                                          8, SelectorKind::kHybridGreedy);
  const auto ratio = system->SelectRoads(50, queried, all_roads_, costs_,
                                         8, SelectorKind::kRatioGreedy);
  const auto objective = system->SelectRoads(
      50, queried, all_roads_, costs_, 8, SelectorKind::kObjectiveGreedy);
  ASSERT_TRUE(hybrid.ok());
  ASSERT_TRUE(ratio.ok());
  ASSERT_TRUE(objective.ok());
  EXPECT_GE(hybrid->objective, ratio->objective - 1e-12);
  EXPECT_GE(hybrid->objective, objective->objective - 1e-12);
}

TEST_F(CrowdRtseTest, EndToEndQueryProducesEstimates) {
  auto system = CrowdRtse::BuildOffline(graph_, history_, Config());
  ASSERT_TRUE(system.ok());
  const traffic::DayMatrix truth = sim_->GenerateEvaluationDay();
  crowd::CrowdSimulator crowd_sim({}, util::Rng(31));
  const std::vector<graph::RoadId> queried{2, 6, 10, 14};
  const auto outcome = system->AnswerQuery(100, queried, all_roads_,
                                           costs_, 12, crowd_sim, truth);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->selection.roads.empty());
  EXPECT_EQ(outcome->round.probes.size(), outcome->selection.roads.size());
  EXPECT_EQ(outcome->estimate.speeds.size(),
            static_cast<size_t>(graph_.num_roads()));
  EXPECT_EQ(outcome->round.total_paid, outcome->selection.total_cost);
  // Estimated speeds are physical.
  for (double v : outcome->estimate.speeds) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 200.0);
  }
}

TEST_F(CrowdRtseTest, CcdRefinementRunsLazily) {
  CrowdRtseConfig config = Config();
  config.refine_with_ccd = true;
  config.ccd.max_iterations = 5;
  config.ccd.learning_rate = 0.01;
  auto system = CrowdRtse::BuildOffline(graph_, history_, config);
  ASSERT_TRUE(system.ok());
  const auto table = system->CorrelationsFor(100);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(system->model().Validate().ok());
}

TEST_F(CrowdRtseTest, ConcurrentCcdColdSlotsServeSafely) {
  // Four threads first-touch four distinct cold slots with CCD refinement
  // on. Refinement serializes on the CCD mutex but each Gamma_R computes
  // from a snapshot, so no thread reads the model while another mutates it
  // (under TSan this is the regression test for that race).
  CrowdRtseConfig config = Config();
  config.refine_with_ccd = true;
  config.ccd.max_iterations = 3;
  config.ccd.learning_rate = 0.01;
  auto system = CrowdRtse::BuildOffline(graph_, history_, config);
  ASSERT_TRUE(system.ok());
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto table = system->CorrelationsFor(100 + t);
      EXPECT_TRUE(table.ok());
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_TRUE(system->model().Validate().ok());
}

TEST_F(CrowdRtseTest, CopiesShareRefinedModel) {
  CrowdRtseConfig config = Config();
  config.refine_with_ccd = true;
  config.ccd.max_iterations = 5;
  config.ccd.learning_rate = 0.01;
  auto system = CrowdRtse::BuildOffline(graph_, history_, config);
  ASSERT_TRUE(system.ok());
  const auto original = system->CorrelationsFor(100);
  ASSERT_TRUE(original.ok());
  CrowdRtse copy = *system;
  // Evict the cached table, then recompute through the copy: the shared
  // CCD state already marks slot 100 refined, so the copy must see the
  // same (shared) refined parameters, not a private unrefined model.
  copy.correlation_cache().Invalidate(100);
  const auto recomputed = copy.CorrelationsFor(100);
  ASSERT_TRUE(recomputed.ok());
  for (graph::RoadId i = 0; i < graph_.num_roads(); i += 7) {
    for (graph::RoadId j = 0; j < graph_.num_roads(); j += 5) {
      EXPECT_DOUBLE_EQ((*original)->Corr(i, j), (*recomputed)->Corr(i, j));
    }
  }
}

TEST_F(CrowdRtseTest, ReciprocalPathModeChangesCorrelationsNotValidity) {
  CrowdRtseConfig exact = Config();
  CrowdRtseConfig paper = Config();
  paper.path_mode = rtf::PathWeightMode::kReciprocal;
  auto exact_system = CrowdRtse::BuildOffline(graph_, history_, exact);
  auto paper_system = CrowdRtse::BuildOffline(graph_, history_, paper);
  ASSERT_TRUE(exact_system.ok());
  ASSERT_TRUE(paper_system.ok());
  const auto exact_table = exact_system->CorrelationsFor(100);
  const auto paper_table = paper_system->CorrelationsFor(100);
  ASSERT_TRUE(exact_table.ok());
  ASSERT_TRUE(paper_table.ok());
  // The exact -log reduction dominates the 1/rho heuristic pointwise.
  int strictly_better = 0;
  for (graph::RoadId i = 0; i < graph_.num_roads(); i += 5) {
    for (graph::RoadId j = 0; j < graph_.num_roads(); j += 7) {
      if (i == j) continue;
      EXPECT_GE((*exact_table)->Corr(i, j) + 1e-12,
                (*paper_table)->Corr(i, j));
      if ((*exact_table)->Corr(i, j) > (*paper_table)->Corr(i, j) + 1e-12) {
        ++strictly_better;
      }
    }
  }
  EXPECT_GT(strictly_better, 0);
  // Selection still works end to end under the paper's mode.
  const auto selection = paper_system->SelectRoads(
      100, {1, 5, 9}, all_roads_, costs_, 8);
  ASSERT_TRUE(selection.ok());
  EXPECT_FALSE(selection->roads.empty());
}

TEST_F(CrowdRtseTest, LazySelectorMatchesHybridObjective) {
  auto system = CrowdRtse::BuildOffline(graph_, history_, Config());
  ASSERT_TRUE(system.ok());
  const std::vector<graph::RoadId> queried{1, 5, 9, 13};
  const auto hybrid = system->SelectRoads(100, queried, all_roads_, costs_,
                                          10, SelectorKind::kHybridGreedy);
  const auto lazy = system->SelectRoads(100, queried, all_roads_, costs_,
                                        10, SelectorKind::kLazyHybridGreedy);
  ASSERT_TRUE(hybrid.ok());
  ASSERT_TRUE(lazy.ok());
  EXPECT_NEAR(lazy->objective, hybrid->objective, 1e-9);
}

TEST_F(CrowdRtseTest, SigmaWeightsMatchModel) {
  auto system = CrowdRtse::BuildOffline(graph_, history_, Config());
  ASSERT_TRUE(system.ok());
  const auto weights = system->SigmaWeights(100, {3, 7});
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0], system->model().Sigma(100, 3));
  EXPECT_DOUBLE_EQ(weights[1], system->model().Sigma(100, 7));
}

TEST_F(CrowdRtseTest, EstimateWithConfidenceReportsVariances) {
  auto system = CrowdRtse::BuildOffline(graph_, history_, Config());
  ASSERT_TRUE(system.ok());
  const std::vector<graph::RoadId> sampled{3, 30};
  const std::vector<double> speeds{40.0, 55.0};
  const auto result = system->EstimateWithConfidence(100, sampled, speeds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->variance.size(),
            static_cast<size_t>(graph_.num_roads()));
  EXPECT_DOUBLE_EQ(result->variance[3], 0.0);
  EXPECT_DOUBLE_EQ(result->variance[30], 0.0);
  int positive = 0;
  for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
    if (r == 3 || r == 30) continue;
    EXPECT_GE(result->variance[static_cast<size_t>(r)], 0.0);
    if (result->variance[static_cast<size_t>(r)] > 0.0) ++positive;
  }
  EXPECT_EQ(positive, graph_.num_roads() - 2);
  // The estimate itself matches the plain path.
  const auto plain = system->Estimate(100, sampled, speeds);
  ASSERT_TRUE(plain.ok());
  for (size_t i = 0; i < plain->speeds.size(); ++i) {
    EXPECT_DOUBLE_EQ(result->estimate.speeds[i], plain->speeds[i]);
  }
}

TEST_F(CrowdRtseTest, GspEstimatorAdapterEchoesProbes) {
  auto system = CrowdRtse::BuildOffline(graph_, history_, Config());
  ASSERT_TRUE(system.ok());
  const GspEstimator estimator(system->model(), {});
  const auto est = estimator.Estimate(100, {4}, {33.0});
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ((*est)[4], 33.0);
  EXPECT_EQ(estimator.name(), "GSP");
}


TEST_F(CrowdRtseTest, ZeroGainPruningPreservesSelection) {
  CrowdRtseConfig base = Config();
  base.correlation_hop_radius = 2;
  CrowdRtseConfig pruned = base;
  pruned.prune_zero_gain_candidates = true;
  auto plain = CrowdRtse::BuildOffline(graph_, history_, base);
  auto fast = CrowdRtse::BuildOffline(graph_, history_, pruned);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(fast.ok());
  const std::vector<graph::RoadId> queried = {3, 17, 42};
  // Budget 6 = three roads at cost 2: every greedy pick carries strictly
  // positive gain. (A larger budget lets greedy pad the selection with
  // zero-gain filler, where pruned and unpruned runs may legitimately
  // pick different — equally worthless — roads.)
  const auto a =
      plain->SelectRoads(10, queried, all_roads_, costs_, 6);
  const auto b = fast->SelectRoads(10, queried, all_roads_, costs_, 6);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Pruning only removes candidates whose Gamma_R row over the queried set
  // is identically zero — they can never beat a positive-gain pick, so the
  // selected set is unchanged.
  EXPECT_EQ(a->roads, b->roads);
}

TEST_F(CrowdRtseTest, PruningStillRejectsInvalidQueriedRoads) {
  CrowdRtseConfig config = Config();
  config.correlation_hop_radius = 2;
  config.prune_zero_gain_candidates = true;
  auto system = CrowdRtse::BuildOffline(graph_, history_, config);
  ASSERT_TRUE(system.ok());
  EXPECT_FALSE(
      system->SelectRoads(10, {graph_.num_roads()}, all_roads_, costs_, 8)
          .ok());
}

}  // namespace
}  // namespace crowdrtse::core
