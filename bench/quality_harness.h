#ifndef CROWDRTSE_BENCH_QUALITY_HARNESS_H_
#define CROWDRTSE_BENCH_QUALITY_HARNESS_H_

// Shared harness for the estimation-quality experiments (paper Fig. 3 and
// Fig. 6): sweep (selector, budget) cells, run every estimator on the same
// probed data, and report APE populations from which MAPE / FER / DAPE are
// derived.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/grmc.h"
#include "baselines/lasso.h"
#include "baselines/periodic_estimator.h"
#include "core/gsp_estimator.h"
#include "graph/bfs.h"
#include "eval/table_printer.h"
#include "util/stats.h"
#include "semi_synthetic.h"

namespace crowdrtse::bench {

enum class Selector { kHybrid, kObjective, kRandom };

inline const char* SelectorName(Selector s) {
  switch (s) {
    case Selector::kHybrid:
      return "Hybrid";
    case Selector::kObjective:
      return "OBJ";
    case Selector::kRandom:
      return "Rand";
  }
  return "?";
}

/// One (selector, budget) experiment cell: the APE of every estimator on
/// every queried road over every query slot, plus coverage bookkeeping for
/// Table III.
struct CellResult {
  std::map<std::string, std::vector<double>> apes;
  int hop1_coverage = 0;  // queried roads within 1 hop of R^c (avg, rounded)
  int hop2_coverage = 0;
  int selected_roads = 0;
};

struct HarnessOptions {
  int query_size = 51;
  double theta = 0.92;
  int cost_min = crowd::kCostRangeC1Min;
  int cost_max = crowd::kCostRangeC1Max;
  uint64_t seed = 7;
  bool run_lasso = true;
  bool run_grmc = true;
  baselines::LassoEstimatorOptions lasso;
  baselines::GrmcOptions grmc;
  /// Worker roads; empty = all roads (the semi-synthetic R^w = R).
  std::vector<graph::RoadId> worker_roads;
  /// Query slots; empty = QuerySlots().
  std::vector<int> slots;
  /// Explicit R^q; empty = sample query_size roads uniformly. The gMission
  /// bench pins this to the scenario's connected component.
  std::vector<graph::RoadId> fixed_query;
};

class QualityHarness {
 public:
  QualityHarness(const SemiSyntheticWorld& world, HarnessOptions options)
      : world_(world), options_(std::move(options)) {
    if (options_.worker_roads.empty()) {
      options_.worker_roads = world.all_roads;
    }
    if (options_.slots.empty()) options_.slots = QuerySlots();
    util::Rng cost_rng(options_.seed);
    costs_ = std::make_unique<crowd::CostModel>(*crowd::CostModel::UniformRandom(
        world.network.num_roads(), options_.cost_min, options_.cost_max,
        cost_rng));
    queried_ = options_.fixed_query.empty()
                   ? MakeQuery(world, options_.query_size, options_.seed + 1)
                   : options_.fixed_query;
    for (int slot : options_.slots) {
      tables_.emplace(slot, *rtf::CorrelationTable::Compute(world.model,
                                                            slot));
    }
    gsp_ = std::make_unique<core::GspEstimator>(world.model,
                                                gsp::GspOptions{});
    per_ = std::make_unique<baselines::PeriodicEstimator>(world.model);
    if (options_.run_lasso) {
      lasso_ = std::make_unique<baselines::LassoEstimator>(
          world.network, world.history, options_.lasso);
    }
    if (options_.run_grmc) {
      grmc_ = std::make_unique<baselines::GrmcEstimator>(
          world.network, world.history, options_.grmc);
    }
  }

  const std::vector<graph::RoadId>& queried() const { return queried_; }
  const crowd::CostModel& costs() const { return *costs_; }

  /// Runs one cell. `theta_override` < 0 keeps the harness theta.
  CellResult Run(Selector selector, int budget,
                 double theta_override = -1.0) {
    const double theta =
        theta_override < 0.0 ? options_.theta : theta_override;
    CellResult cell;
    double hop1_sum = 0.0;
    double hop2_sum = 0.0;
    double selected_sum = 0.0;
    for (int slot : options_.slots) {
      const ocs::OcsProblem problem =
          MakeProblem(world_, tables_.at(slot), queried_,
                      options_.worker_roads, *costs_, slot, budget, theta);
      ocs::OcsSolution selection;
      switch (selector) {
        case Selector::kHybrid:
          selection = ocs::HybridGreedy(problem);
          break;
        case Selector::kObjective:
          selection = ocs::ObjectiveGreedy(problem);
          break;
        case Selector::kRandom: {
          util::Rng rng(options_.seed + static_cast<uint64_t>(slot) * 31 +
                        static_cast<uint64_t>(budget));
          selection = ocs::RandomSelect(problem, rng);
          break;
        }
      }
      selected_sum += static_cast<double>(selection.roads.size());
      hop1_sum += CountCovered(selection.roads, 1);
      hop2_sum += CountCovered(selection.roads, 2);

      const std::vector<double> probed =
          ProbeRoads(world_, selection.roads, *costs_, slot,
                     options_.seed + static_cast<uint64_t>(slot));
      const std::vector<double> truth = world_.truth.SlotSpeeds(slot);
      for (baselines::RealtimeEstimator* estimator : Estimators()) {
        auto estimates = estimator->EstimateTargets(slot, selection.roads,
                                                    probed, queried_);
        CROWDRTSE_CHECK(estimates.ok());
        auto& apes = cell.apes[estimator->name()];
        for (graph::RoadId r : queried_) {
          const double t = truth[static_cast<size_t>(r)];
          if (t <= 0.0) continue;
          apes.push_back(eval::AbsolutePercentageError(
              (*estimates)[static_cast<size_t>(r)], t));
        }
      }
    }
    const double trials = static_cast<double>(options_.slots.size());
    cell.hop1_coverage = static_cast<int>(hop1_sum / trials + 0.5);
    cell.hop2_coverage = static_cast<int>(hop2_sum / trials + 0.5);
    cell.selected_roads = static_cast<int>(selected_sum / trials + 0.5);
    return cell;
  }

  static double Mape(const std::vector<double>& apes) {
    return util::Mean(apes);
  }

  static double Fer(const std::vector<double>& apes,
                    double threshold = eval::kDefaultFerThreshold) {
    if (apes.empty()) return 0.0;
    size_t count = 0;
    for (double a : apes) count += a > threshold ? 1 : 0;
    return static_cast<double>(count) / static_cast<double>(apes.size());
  }

 private:
  std::vector<baselines::RealtimeEstimator*> Estimators() {
    std::vector<baselines::RealtimeEstimator*> estimators{gsp_.get(),
                                                          per_.get()};
    if (lasso_) estimators.push_back(lasso_.get());
    if (grmc_) estimators.push_back(grmc_.get());
    return estimators;
  }

  double CountCovered(const std::vector<graph::RoadId>& selection,
                      int hops) const {
    if (selection.empty()) return 0.0;
    const auto covered =
        graph::RoadsWithinHops(world_.network, selection, hops);
    std::vector<bool> in_covered(
        static_cast<size_t>(world_.network.num_roads()), false);
    for (graph::RoadId r : covered) in_covered[static_cast<size_t>(r)] = true;
    double count = 0.0;
    for (graph::RoadId r : queried_) {
      if (in_covered[static_cast<size_t>(r)]) count += 1.0;
    }
    return count;
  }

  const SemiSyntheticWorld& world_;
  HarnessOptions options_;
  std::unique_ptr<crowd::CostModel> costs_;
  std::vector<graph::RoadId> queried_;
  std::map<int, rtf::CorrelationTable> tables_;
  std::unique_ptr<core::GspEstimator> gsp_;
  std::unique_ptr<baselines::PeriodicEstimator> per_;
  std::unique_ptr<baselines::LassoEstimator> lasso_;
  std::unique_ptr<baselines::GrmcEstimator> grmc_;
};

}  // namespace crowdrtse::bench

#endif  // CROWDRTSE_BENCH_QUALITY_HARNESS_H_
