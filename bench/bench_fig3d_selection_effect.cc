// Reproduces paper Fig. 3 (d1-d3): GSP estimation quality under different
// crowdsourced-road selections — Hybrid-Greedy vs Objective-Greedy vs
// Randomisation — across budgets 30..150 (MAPE, FER, and DAPE at K=30).
//
// Expected shape: Hybrid-Greedy selection yields the best GSP quality,
// especially at small budgets, mirroring its higher OCS objective values
// (Fig. 2) and higher query coverage (Table III).
#include <cstdio>
#include <map>
#include <vector>

#include "quality_harness.h"

namespace crowdrtse::bench {
namespace {

const std::vector<int> kBudgets{30, 60, 90, 120, 150};

void Run() {
  std::printf(
      "=== Fig. 3 (d) — GSP quality under different selections ===\n");
  std::printf("607 roads, |R^q| = 51, theta = 0.92, costs C1 = 1..10\n");
  const SemiSyntheticWorld world = BuildWorld();
  HarnessOptions options;
  options.run_lasso = false;  // only GSP is compared in this panel
  options.run_grmc = false;
  QualityHarness harness(world, options);

  std::map<Selector, std::map<int, CellResult>> cells;
  for (Selector selector :
       {Selector::kHybrid, Selector::kObjective, Selector::kRandom}) {
    for (int budget : kBudgets) {
      cells[selector].emplace(budget, harness.Run(selector, budget));
    }
  }

  eval::TablePrinter mape(
      {"GSP MAPE", "K=30", "K=60", "K=90", "K=120", "K=150"});
  eval::TablePrinter fer(
      {"GSP FER", "K=30", "K=60", "K=90", "K=120", "K=150"});
  for (Selector selector :
       {Selector::kHybrid, Selector::kObjective, Selector::kRandom}) {
    std::vector<double> mape_row;
    std::vector<double> fer_row;
    for (int budget : kBudgets) {
      const auto& apes = cells[selector].at(budget).apes.at("GSP");
      mape_row.push_back(QualityHarness::Mape(apes));
      fer_row.push_back(QualityHarness::Fer(apes));
    }
    mape.AddNumericRow(SelectorName(selector), mape_row, 4);
    fer.AddNumericRow(SelectorName(selector), fer_row, 4);
  }
  std::printf("\n");
  mape.Print();
  std::printf("\n");
  fer.Print();

  std::printf("\nGSP DAPE at K=30 per selection (fraction per APE bin)\n");
  eval::TablePrinter dape({"selection", "<=.05", "<=.10", "<=.15", "<=.20",
                           "<=.25", "<=.30", "<=.35", "<=.40", "<=.45",
                           "<=.50", ">.50"});
  for (Selector selector :
       {Selector::kHybrid, Selector::kObjective, Selector::kRandom}) {
    const auto& apes = cells[selector].at(30).apes.at("GSP");
    std::vector<double> bins(11, 0.0);
    for (double a : apes) {
      size_t bin = 10;
      for (size_t i = 0; i < 10; ++i) {
        if (a <= 0.05 * static_cast<double>(i + 1)) {
          bin = i;
          break;
        }
      }
      bins[bin] += 1.0;
    }
    if (!apes.empty()) {
      for (double& b : bins) b /= static_cast<double>(apes.size());
    }
    dape.AddNumericRow(SelectorName(selector), bins, 3);
  }
  dape.Print();
}

}  // namespace
}  // namespace crowdrtse::bench

int main() {
  crowdrtse::bench::Run();
  return 0;
}
