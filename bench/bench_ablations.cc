// Ablation studies for the design choices called out in DESIGN.md §5-6
// (not a paper figure; exercises the optional/extension features):
//   1. answer aggregation policy (mean / median / trimmed mean) under
//      outlier-contaminated crowd answers;
//   2. path-correlation reduction: exact -log(rho) vs the paper's literal
//      1/rho heuristic (Eq. 9) — objective quality of the resulting OCS;
//   3. parallel GSP: wall-time and agreement vs the sequential schedule;
//   4. greedy-vs-exact OCS gap on small instances (empirical approximation
//      ratio vs the (1 - 1/e)/2 guarantee).
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/gsp_estimator.h"
#include "eval/table_printer.h"
#include "graph/bfs.h"
#include "ocs/exact_solver.h"
#include "quality_harness.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crowdrtse::bench {
namespace {

void AggregationAblation(const SemiSyntheticWorld& world) {
  std::printf("\n--- ablation 1: answer aggregation under outliers ---\n");
  const int slot = 99;
  const crowd::CostModel costs =
      crowd::CostModel::Constant(world.network.num_roads(), 7);
  std::vector<graph::RoadId> roads;
  for (graph::RoadId r = 0; r < world.network.num_roads(); r += 7) {
    roads.push_back(r);
  }
  eval::TablePrinter table(
      {"policy", "outlier=0.0", "outlier=0.1", "outlier=0.25"});
  for (auto policy :
       {crowd::AggregationPolicy::kMean, crowd::AggregationPolicy::kMedian,
        crowd::AggregationPolicy::kTrimmedMean}) {
    std::vector<double> row;
    for (double outlier_rate : {0.0, 0.1, 0.25}) {
      crowd::CrowdSimOptions options;
      options.aggregation = policy;
      options.outlier_rate = outlier_rate;
      crowd::CrowdSimulator sim(options, util::Rng(5));
      auto round = sim.Probe(roads, costs, world.truth, slot);
      CROWDRTSE_CHECK(round.ok());
      double mape = 0.0;
      for (const auto& p : round->probes) {
        mape += eval::AbsolutePercentageError(p.probed_kmh,
                                              world.truth.At(slot, p.road));
      }
      row.push_back(mape / static_cast<double>(round->probes.size()));
    }
    table.AddNumericRow(crowd::AggregationPolicyName(policy), row, 4);
  }
  table.Print();
  std::printf("(cells: MAPE of the aggregated probe vs ground truth)\n");
}

void PathWeightAblation(const SemiSyntheticWorld& world) {
  std::printf(
      "\n--- ablation 2: -log(rho) (exact) vs 1/rho (paper Eq. 9) ---\n");
  const int slot = 99;
  const auto exact_table = rtf::CorrelationTable::Compute(
      world.model, slot, rtf::PathWeightMode::kNegLog);
  const auto paper_table = rtf::CorrelationTable::Compute(
      world.model, slot, rtf::PathWeightMode::kReciprocal);
  CROWDRTSE_CHECK(exact_table.ok() && paper_table.ok());
  // How often does the heuristic find a weaker path?
  int weaker = 0;
  int total = 0;
  double worst_gap = 0.0;
  for (graph::RoadId i = 0; i < world.network.num_roads(); i += 13) {
    for (graph::RoadId j = 0; j < world.network.num_roads(); j += 13) {
      if (i == j) continue;
      const double exact = exact_table->Corr(i, j);
      const double paper = paper_table->Corr(i, j);
      ++total;
      if (paper < exact - 1e-12) {
        ++weaker;
        worst_gap = std::max(worst_gap, exact - paper);
      }
    }
  }
  std::printf(
      "sampled pairs: %d; heuristic strictly weaker on %d (%.2f%%); worst "
      "absolute gap %.4f\n",
      total, weaker, 100.0 * weaker / std::max(1, total), worst_gap);
}

void ParallelGspForNetwork(const graph::Graph& network,
                           const rtf::RtfModel& model, int slot) {
  std::vector<graph::RoadId> sampled;
  std::vector<double> probed;
  for (graph::RoadId r = 0; r < network.num_roads(); r += 12) {
    sampled.push_back(r);
    probed.push_back(model.Mu(slot, r) * 0.7);  // congested probes
  }
  eval::TablePrinter table({"threads", "ms/propagation", "sweeps",
                            "max |diff| vs sequential"});
  std::vector<double> reference;
  for (int threads : {1, 2, 4, 8}) {
    gsp::GspOptions options;
    options.num_threads = threads;
    options.epsilon = 1e-6;
    const gsp::SpeedPropagator propagator(model, options);
    util::Timer timer;
    const int reps = 10;
    gsp::GspResult last;
    for (int i = 0; i < reps; ++i) {
      auto result = propagator.Propagate(slot, sampled, probed);
      CROWDRTSE_CHECK(result.ok());
      last = std::move(*result);
    }
    const double ms = timer.ElapsedMillis() / reps;
    double max_diff = 0.0;
    if (threads == 1) {
      reference = last.speeds;
    } else {
      for (size_t i = 0; i < reference.size(); ++i) {
        max_diff = std::max(max_diff,
                            std::fabs(reference[i] - last.speeds[i]));
      }
    }
    table.AddRow({std::to_string(threads), util::FormatDouble(ms, 3),
                  std::to_string(last.sweeps),
                  util::FormatDouble(max_diff, 6)});
  }
  table.Print();
}

void ParallelGspAblation(const SemiSyntheticWorld& world) {
  std::printf("\n--- ablation 3: sequential vs parallel GSP ---\n");
  std::printf(
      "hardware threads on this machine: %u (speedups require > 1; the "
      "point of this table is that all schedules reach the same fixed "
      "point)\n",
      std::thread::hardware_concurrency());
  std::printf("city-scale network (%d roads):\n", world.network.num_roads());
  ParallelGspForNetwork(world.network, world.model, 99);

  // The level-parallel schedule only pays once the per-level colour groups
  // are large; demonstrate on a metro-area-scale network with a synthetic
  // uniform model.
  const graph::Graph metro = *graph::GridNetwork(160, 160);
  rtf::RtfModel metro_model(metro, 1);
  for (graph::RoadId r = 0; r < metro.num_roads(); ++r) {
    metro_model.SetMu(0, r, 50.0);
    metro_model.SetSigma(0, r, 4.0);
  }
  for (graph::EdgeId e = 0; e < metro.num_edges(); ++e) {
    metro_model.SetRho(0, e, 0.8);
  }
  std::printf("\nmetro-scale network (%d roads):\n", metro.num_roads());
  ParallelGspForNetwork(metro, metro_model, 0);
}

void GreedyVsExactAblation() {
  std::printf(
      "\n--- ablation 4: empirical Hybrid-Greedy approximation ratio ---\n");
  const double bound = (1.0 - 1.0 / 2.718281828) / 2.0;
  double worst = 1.0;
  double sum = 0.0;
  int count = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    graph::RoadNetworkOptions net;
    net.num_roads = 18;
    const graph::Graph g = *graph::RoadNetwork(net, rng);
    std::vector<double> rho(static_cast<size_t>(g.num_edges()));
    for (double& r : rho) r = rng.UniformDouble(0.3, 0.95);
    const auto table = rtf::CorrelationTable::FromEdgeCorrelations(g, rho);
    CROWDRTSE_CHECK(table.ok());
    const auto costs =
        crowd::CostModel::UniformRandom(18, 1, 4, rng);
    CROWDRTSE_CHECK(costs.ok());
    std::vector<graph::RoadId> queried;
    std::vector<double> weights;
    for (int i = 0; i < 6; ++i) {
      queried.push_back(i * 3);
      weights.push_back(rng.UniformDouble(0.5, 4.0));
    }
    std::vector<graph::RoadId> candidates;
    for (int i = 0; i < 18; ++i) candidates.push_back(i);
    const auto problem = ocs::OcsProblem::Create(
        *table, queried, weights, candidates, *costs, 7, 0.95);
    CROWDRTSE_CHECK(problem.ok());
    const auto exact = ocs::ExactSolve(*problem);
    CROWDRTSE_CHECK(exact.ok());
    if (exact->objective <= 0.0) continue;
    const double ratio =
        ocs::HybridGreedy(*problem).objective / exact->objective;
    worst = std::min(worst, ratio);
    sum += ratio;
    ++count;
  }
  std::printf(
      "instances: %d; mean ratio %.4f; worst ratio %.4f; theoretical bound "
      "%.4f\n",
      count, sum / count, worst, bound);
}

void VarianceObjectiveAblation(const SemiSyntheticWorld& world) {
  // Extension: select crowdsourced roads by expected *variance explained*
  // instead of the paper's sigma-weighted correlation — weights sigma_q^2
  // and squared path correlations (corr^2 of a max-product path is the
  // max-product of squared edge rhos, so the same machinery applies).
  std::printf(
      "\n--- ablation 5: variance-explained vs paper OCS objective ---\n");
  const int slot = 99;
  const auto corr_table = rtf::CorrelationTable::Compute(world.model, slot);
  CROWDRTSE_CHECK(corr_table.ok());
  std::vector<double> rho_sq(static_cast<size_t>(world.model.num_edges()));
  for (graph::EdgeId e = 0; e < world.model.num_edges(); ++e) {
    const double rho = world.model.Rho(slot, e);
    rho_sq[static_cast<size_t>(e)] = rho * rho;
  }
  const auto var_table = rtf::CorrelationTable::FromEdgeCorrelations(
      world.network, rho_sq);
  CROWDRTSE_CHECK(var_table.ok());

  const auto queried = MakeQuery(world, 40, 5);
  std::vector<double> sigma_weights;
  std::vector<double> variance_weights;
  for (graph::RoadId r : queried) {
    const double sigma = world.model.Sigma(slot, r);
    sigma_weights.push_back(sigma);
    variance_weights.push_back(sigma * sigma);
  }
  const crowd::CostModel costs =
      crowd::CostModel::Constant(world.network.num_roads(), 2);
  const core::GspEstimator gsp(world.model, {});

  eval::TablePrinter t({"objective", "K=20", "K=40", "K=80"});
  for (const bool use_variance : {false, true}) {
    std::vector<double> row;
    for (int budget : {20, 40, 80}) {
      auto problem = ocs::OcsProblem::Create(
          use_variance ? *var_table : *corr_table, queried,
          use_variance ? variance_weights : sigma_weights,
          world.all_roads, costs, budget, 0.92);
      CROWDRTSE_CHECK(problem.ok());
      const ocs::OcsSolution selection = ocs::HybridGreedy(*problem);
      crowd::CrowdSimulator sim({}, util::Rng(31));
      auto round = sim.Probe(selection.roads, costs, world.truth, slot);
      CROWDRTSE_CHECK(round.ok());
      std::vector<double> probed;
      for (const auto& p : round->probes) probed.push_back(p.probed_kmh);
      auto estimates = gsp.Estimate(slot, selection.roads, probed);
      CROWDRTSE_CHECK(estimates.ok());
      row.push_back(eval::ComputeQuality(*estimates,
                                         world.truth.SlotSpeeds(slot),
                                         queried)
                        ->mape);
    }
    t.AddNumericRow(use_variance ? "sigma^2 * corr^2" : "sigma * corr",
                    row, 4);
  }
  t.Print();
  std::printf("(cells: GSP MAPE over the queried roads)\n");
}

void Run() {
  std::printf("=== Ablation benches (design-choice studies) ===\n");
  WorldOptions options;
  options.num_roads = 300;  // ablations do not need the full 607 roads
  options.num_days = 15;
  const SemiSyntheticWorld world = BuildWorld(options);
  AggregationAblation(world);
  PathWeightAblation(world);
  ParallelGspAblation(world);
  GreedyVsExactAblation();
  VarianceObjectiveAblation(world);
}

}  // namespace
}  // namespace crowdrtse::bench

int main() {
  crowdrtse::bench::Run();
  return 0;
}
