// Correlation-cache bench: how long do N concurrent clients stall on cold
// Gamma_R slots? The baseline replicates the pre-cache design faithfully —
// one global mutex around a slot->table map, with the whole closure
// computation (one Dijkstra per source road) running *inside* the critical
// section, so a client asking for slot B waits for a stranger's slot A to
// finish. The cache column is rtf::CorrelationCache: per-slot singleflight,
// other slots never block, and the Dijkstra loop fans out across a thread
// pool.
//
// Expected shape on a multi-core host: at 1 client the cache already wins
// via the parallel fan-out; as clients grow the baseline's wall-clock
// approaches the *sum* of all slot computes (full serialization) while the
// cache's stays near the slowest single slot. On a single-core container
// both columns converge to the sum of computes — there the checked
// invariants (misses == cold slots, 7 of 8 same-slot touches coalesced)
// are the point, the speedup column needs real cores. The same-slot wave
// at the bottom shows coalescing: 8 first-touches of one cold slot trigger
// exactly one compute in both designs, so those two times converge
// everywhere — the concurrency win is strictly about disjoint slots.
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "semi_synthetic.h"
#include "eval/table_printer.h"
#include "rtf/correlation_cache.h"
#include "rtf/correlation_table.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crowdrtse::bench {
namespace {

constexpr int kSlotsPerClient = 2;
constexpr int kSlotStride = 7;  // spread cold slots across the day

/// The pre-cache CrowdRtse::CorrelationsFor, verbatim in spirit: one mutex
/// guards the map and the compute both, and the per-source Dijkstra loop
/// runs serially.
class GlobalLockBaseline {
 public:
  explicit GlobalLockBaseline(const rtf::RtfModel& model) : model_(model) {}

  const rtf::CorrelationTable& Get(int slot) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(slot);
    if (it == cache_.end()) {
      auto table = rtf::CorrelationTable::Compute(
          model_, slot, rtf::PathWeightMode::kNegLog);
      CROWDRTSE_CHECK(table.ok());
      it = cache_.emplace(slot, std::move(*table)).first;
    }
    return it->second;
  }

 private:
  const rtf::RtfModel& model_;
  std::mutex mutex_;
  std::map<int, rtf::CorrelationTable> cache_;
};

/// Slot list for client `c`: disjoint from every other client's.
std::vector<int> ClientSlots(int c) {
  std::vector<int> slots;
  for (int q = 0; q < kSlotsPerClient; ++q) {
    slots.push_back((c * kSlotsPerClient + q) * kSlotStride);
  }
  return slots;
}

template <typename GetTable>
double TimeClients(int num_clients, const GetTable& get, bool same_slot) {
  util::Timer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      for (int slot : ClientSlots(same_slot ? 0 : c)) get(slot);
    });
  }
  for (std::thread& c : clients) c.join();
  return wall.ElapsedSeconds();
}

void Run() {
  std::printf("=== Correlation-cache bench — cold Gamma_R slots, N clients"
              " ===\n");
  WorldOptions options;
  options.num_roads = 300;
  options.num_days = 8;
  const SemiSyntheticWorld world = BuildWorld(options);
  std::printf("%d roads -> %.1f MB per slot table, %d cold slots per"
              " client, %u hardware threads\n\n",
              world.network.num_roads(),
              static_cast<double>(world.network.num_roads()) *
                  world.network.num_roads() * sizeof(double) / (1024.0 * 1024.0),
              kSlotsPerClient, std::thread::hardware_concurrency());

  eval::TablePrinter table({"clients", "cold slots", "global lock s",
                            "cache s", "speedup"});
  rtf::CorrelationCache::StatsSnapshot last_stats;
  for (int clients : {1, 2, 4, 8}) {
    // Fresh state per thread count: every touched slot is cold.
    GlobalLockBaseline baseline(world.model);
    const double locked_seconds = TimeClients(
        clients, [&](int slot) { baseline.Get(slot); }, /*same_slot=*/false);

    rtf::CorrelationCache cache{rtf::CorrelationCacheOptions{}};
    const auto compute = [&](int slot, util::ThreadPool* fanout) {
      return rtf::CorrelationTable::Compute(
          world.model, slot, rtf::PathWeightMode::kNegLog, fanout);
    };
    const double cached_seconds = TimeClients(
        clients,
        [&](int slot) { CROWDRTSE_CHECK(cache.GetOrCompute(slot, compute).ok()); },
        /*same_slot=*/false);
    last_stats = cache.stats();

    table.AddRow({std::to_string(clients),
                  std::to_string(clients * kSlotsPerClient),
                  util::FormatDouble(locked_seconds, 2),
                  util::FormatDouble(cached_seconds, 2),
                  util::FormatDouble(locked_seconds / cached_seconds, 2)});
  }
  table.Print();
  std::printf("\ncache state after the 8-client run:\n  %s\n",
              last_stats.ToString().c_str());

  // Same-slot wave: 8 clients all first-touch the SAME two cold slots.
  // Both designs compute each exactly once (the cache via singleflight,
  // the baseline via the lock), so the times should be close — no false
  // win reported.
  {
    GlobalLockBaseline baseline(world.model);
    const double locked_seconds = TimeClients(
        8, [&](int slot) { baseline.Get(slot); }, /*same_slot=*/true);
    rtf::CorrelationCache cache{rtf::CorrelationCacheOptions{}};
    const auto compute = [&](int slot, util::ThreadPool* fanout) {
      return rtf::CorrelationTable::Compute(
          world.model, slot, rtf::PathWeightMode::kNegLog, fanout);
    };
    const double cached_seconds = TimeClients(
        8,
        [&](int slot) { CROWDRTSE_CHECK(cache.GetOrCompute(slot, compute).ok()); },
        /*same_slot=*/true);
    const auto stats = cache.stats();
    std::printf("\nsame-slot wave (8 clients, %d shared cold slots): global"
                " lock %.2fs, cache %.2fs, touches coalesced %lld\n",
                kSlotsPerClient,
                locked_seconds, cached_seconds,
                static_cast<long long>(stats.coalesced));
    CROWDRTSE_CHECK(stats.misses == static_cast<int64_t>(kSlotsPerClient));
  }
}

}  // namespace
}  // namespace crowdrtse::bench

int main() {
  crowdrtse::bench::Run();
  return 0;
}
