// Reproduces paper Fig. 2: the OCS objective value (VO) of Ratio-Greedy,
// Objective-Greedy and Hybrid-Greedy as the budget K sweeps 30..150, under
// both cost ranges (C1 = 1..10, C2 = 1..5), theta = 0.92, on the
// semi-synthetic 607-road network with |R^q| in {33, 51}.
//
// Panels (a)/(b) print the raw VO series; panels (c)/(d) print the
// Ratio/Hybrid and OBJ/Hybrid ratios the paper uses to highlight the gap.
//
// Expected shape (paper §VII-B): Hybrid >= max(Ratio, OBJ) everywhere; VO
// grows monotonically with K; Ratio catches up with Hybrid at large K; the
// Ratio-vs-Hybrid gap is wider under the wide cost range C1.
#include <cstdio>
#include <string>
#include <vector>

#include "semi_synthetic.h"
#include "eval/table_printer.h"

namespace crowdrtse::bench {
namespace {

constexpr double kTheta = 0.92;
const std::vector<int> kBudgets{30, 60, 90, 120, 150};

struct Series {
  std::vector<double> ratio;
  std::vector<double> objective;
  std::vector<double> hybrid;
};

Series RunSweep(const SemiSyntheticWorld& world,
                const rtf::CorrelationTable& table,
                const std::vector<graph::RoadId>& queried,
                const crowd::CostModel& costs, int slot) {
  Series series;
  for (int budget : kBudgets) {
    const ocs::OcsProblem problem =
        MakeProblem(world, table, queried, world.all_roads, costs, slot,
                    budget, kTheta);
    series.ratio.push_back(ocs::RatioGreedy(problem).objective);
    series.objective.push_back(ocs::ObjectiveGreedy(problem).objective);
    series.hybrid.push_back(ocs::HybridGreedy(problem).objective);
  }
  return series;
}

void PrintPanel(const std::string& title, const Series& series) {
  std::printf("\n%s\n", title.c_str());
  eval::TablePrinter table(
      {"algorithm", "K=30", "K=60", "K=90", "K=120", "K=150"});
  table.AddNumericRow("Ratio", series.ratio, 2);
  table.AddNumericRow("OBJ", series.objective, 2);
  table.AddNumericRow("Hybrid", series.hybrid, 2);
  table.Print();
}

void PrintRatioPanel(const std::string& title, const Series& series) {
  std::printf("\n%s\n", title.c_str());
  std::vector<double> ratio_vs_hybrid;
  std::vector<double> obj_vs_hybrid;
  for (size_t i = 0; i < kBudgets.size(); ++i) {
    ratio_vs_hybrid.push_back(series.ratio[i] / series.hybrid[i]);
    obj_vs_hybrid.push_back(series.objective[i] / series.hybrid[i]);
  }
  eval::TablePrinter table(
      {"ratio", "K=30", "K=60", "K=90", "K=120", "K=150"});
  table.AddNumericRow("Ratio/Hybrid", ratio_vs_hybrid, 4);
  table.AddNumericRow("OBJ/Hybrid", obj_vs_hybrid, 4);
  table.Print();
}

void Run() {
  std::printf("=== Fig. 2 — OCS objective value (VO) vs budget ===\n");
  std::printf("semi-synthetic network: 607 roads, theta = %.2f, R^w = R\n",
              kTheta);
  const SemiSyntheticWorld world = BuildWorld();
  const int slot = 99;  // 08:15, morning rush
  const auto table = rtf::CorrelationTable::Compute(world.model, slot);
  CROWDRTSE_CHECK(table.ok());

  util::Rng cost_rng(7);
  const auto costs_c1 = crowd::CostModel::UniformRandom(
      world.network.num_roads(), crowd::kCostRangeC1Min,
      crowd::kCostRangeC1Max, cost_rng);
  const auto costs_c2 = crowd::CostModel::UniformRandom(
      world.network.num_roads(), crowd::kCostRangeC2Min,
      crowd::kCostRangeC2Max, cost_rng);
  CROWDRTSE_CHECK(costs_c1.ok() && costs_c2.ok());

  for (int query_size : {33, 51}) {
    const auto queried = MakeQuery(world, query_size, 100 + query_size);
    const Series c1 = RunSweep(world, *table, queried, *costs_c1, slot);
    const Series c2 = RunSweep(world, *table, queried, *costs_c2, slot);
    PrintPanel("(a) VO, costs C1 = 1..10, |R^q| = " +
                   std::to_string(query_size),
               c1);
    PrintPanel("(b) VO, costs C2 = 1..5, |R^q| = " +
                   std::to_string(query_size),
               c2);
    PrintRatioPanel("(c) VO ratios vs Hybrid, costs C1, |R^q| = " +
                        std::to_string(query_size),
                    c1);
    PrintRatioPanel("(d) VO ratios vs Hybrid, costs C2, |R^q| = " +
                        std::to_string(query_size),
                    c2);
  }
}

}  // namespace
}  // namespace crowdrtse::bench

int main() {
  crowdrtse::bench::Run();
  return 0;
}
