// Reproduces paper Fig. 6: the gMission dataset experiment. A mutually
// connected 50-road subcomponent is queried (R^q); workers travel along 30
// of those roads (R^w strictly inside R^q); budgets are small (10..50);
// crowdsourced roads are selected by Hybrid-Greedy. MAPE and FER of GSP /
// LASSO / GRMC / Per are reported.
//
// Expected shape: the same pattern as the semi-synthetic Fig. 3 (a1/a2) at
// a smaller scale — GSP leads, most clearly at the smallest budget.
#include <cstdio>
#include <map>
#include <vector>

#include "crowd/aggregation.h"
#include "crowd/gmission_scenario.h"
#include "crowd/trajectory.h"
#include "graph/road_geometry.h"
#include "quality_harness.h"

namespace crowdrtse::bench {
namespace {

const std::vector<int> kBudgets{10, 20, 30, 40, 50};
const std::vector<std::string> kEstimators{"GSP", "LASSO", "GRMC", "Per"};

void Run() {
  std::printf("=== Fig. 6 — gMission dataset (MAPE / FER) ===\n");
  std::printf(
      "R^q: connected 50-road component, R^w: 30 roads inside R^q, "
      "Hybrid selection, costs 1..10\n");
  const SemiSyntheticWorld world = BuildWorld();

  util::Rng scenario_rng(3);
  const auto scenario = crowd::BuildGMissionScenario(
      world.network, crowd::GMissionOptions{}, scenario_rng);
  CROWDRTSE_CHECK(scenario.ok());

  HarnessOptions options;
  options.worker_roads = scenario->worker_roads;
  options.grmc.max_iterations = 15;
  options.grmc.history_columns = 15;
  options.lasso.fit.max_iterations = 200;
  options.lasso.fit.tolerance = 1e-4;
  options.fixed_query = scenario->queried_roads;
  QualityHarness harness(world, options);

  std::map<int, CellResult> cells;
  for (int budget : kBudgets) {
    cells.emplace(budget, harness.Run(Selector::kHybrid, budget));
  }

  eval::TablePrinter mape(
      {"MAPE", "K=10", "K=20", "K=30", "K=40", "K=50"});
  eval::TablePrinter fer({"FER", "K=10", "K=20", "K=30", "K=40", "K=50"});
  for (const std::string& name : kEstimators) {
    std::vector<double> mape_row;
    std::vector<double> fer_row;
    for (int budget : kBudgets) {
      const auto& apes = cells.at(budget).apes.at(name);
      mape_row.push_back(QualityHarness::Mape(apes));
      fer_row.push_back(QualityHarness::Fer(apes));
    }
    mape.AddNumericRow(name, mape_row, 4);
    fer.AddNumericRow(name, fer_row, 4);
  }
  std::printf("\n");
  mape.Print();
  std::printf("\n");
  fer.Print();

  // --- trajectory-grounded variant ------------------------------------
  // The real gMission collection had workers *driving* the queried roads,
  // with speeds computed from localisation. Replay that: one trip per
  // worker road through the held-out day, answers derived from traversal
  // times, aggregated per road, propagated by GSP.
  std::printf(
      "\ntrajectory-grounded probing (workers drive R^q; answers = road "
      "length / traversal time):\n");
  util::Rng len_rng(13);
  const auto geometry = graph::RoadGeometry::UniformRandom(
      world.network.num_roads(), 0.15, 0.9, len_rng);
  CROWDRTSE_CHECK(geometry.ok());
  crowd::TrajectorySimOptions trip_options;
  trip_options.measurement_noise_kmh = 1.5;
  crowd::TrajectorySimulator trips(world.network, *geometry, world.truth,
                                   trip_options, 17);
  const int slot = QuerySlots().front();
  std::map<graph::RoadId, std::vector<crowd::SpeedAnswer>> by_road;
  util::Rng goal_rng(19);
  for (size_t w = 0; w < scenario->worker_roads.size(); ++w) {
    // Each worker starts on her announced road and drives to a random
    // queried road, departing just before the query slot.
    const graph::RoadId goal = scenario->queried_roads[static_cast<size_t>(
        goal_rng.UniformUint64(scenario->queried_roads.size()))];
    const auto trip = trips.SimulateTrip(
        static_cast<crowd::WorkerId>(w), scenario->worker_roads[w], goal,
        slot * traffic::kMinutesPerSlot - 2.0);
    if (!trip.ok()) continue;
    for (const crowd::SpeedAnswer& answer :
         trips.AnswersInSlot(*trip, slot)) {
      by_road[answer.road].push_back(answer);
    }
  }
  std::vector<graph::RoadId> probed_roads;
  std::vector<double> probed_speeds;
  for (const auto& [road, answers] : by_road) {
    const auto fused = crowd::AggregateAnswers(
        answers, crowd::AggregationPolicy::kTrimmedMean);
    if (!fused.ok()) continue;
    probed_roads.push_back(road);
    probed_speeds.push_back(*fused);
  }
  const gsp::SpeedPropagator propagator(world.model, {});
  const auto estimate =
      propagator.Propagate(slot, probed_roads, probed_speeds);
  CROWDRTSE_CHECK(estimate.ok());
  const auto quality = eval::ComputeQuality(
      estimate->speeds, world.truth.SlotSpeeds(slot),
      scenario->queried_roads);
  std::printf(
      "trips covered %zu roads; GSP over trajectory probes: MAPE %.4f, "
      "FER %.4f on the %zu queried roads\n",
      by_road.size(), quality->mape, quality->fer,
      scenario->queried_roads.size());
}

}  // namespace
}  // namespace crowdrtse::bench

int main() {
  crowdrtse::bench::Run();
  return 0;
}
