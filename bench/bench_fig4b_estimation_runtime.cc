// Reproduces paper Fig. 4(b): the overall running time of the estimation
// methods (LASSO, GRMC, GSP) as the budget grows; Per is omitted as in the
// paper (its answer is a direct RTF lookup).
//
// Expected shape: LASSO cheapest per prediction (here amortised over the
// queried roads), GRMC the most expensive (iterative factorisation over
// the whole matrix), GSP in between and nearly flat in the budget.
#include <benchmark/benchmark.h>

#include <memory>

#include "quality_harness.h"

namespace crowdrtse::bench {
namespace {

struct Fixture {
  Fixture() : world(BuildWorld()) {
    const int slot = 99;
    table = std::make_unique<rtf::CorrelationTable>(
        *rtf::CorrelationTable::Compute(world.model, slot));
    util::Rng cost_rng(7);
    costs = std::make_unique<crowd::CostModel>(
        *crowd::CostModel::UniformRandom(world.network.num_roads(),
                                         crowd::kCostRangeC1Min,
                                         crowd::kCostRangeC1Max, cost_rng));
    queried = MakeQuery(world, 51, 151);
    gsp = std::make_unique<core::GspEstimator>(world.model,
                                               gsp::GspOptions{});
    baselines::LassoEstimatorOptions lasso_options;
    lasso_options.fit.max_iterations = 200;
    lasso_options.fit.tolerance = 1e-4;
    lasso = std::make_unique<baselines::LassoEstimator>(
        world.network, world.history, lasso_options);
    baselines::GrmcOptions grmc_options;
    grmc_options.max_iterations = 15;
    grmc_options.history_columns = 15;
    grmc = std::make_unique<baselines::GrmcEstimator>(
        world.network, world.history, grmc_options);
  }

  /// Selection + probe for a budget, cached per budget.
  const std::pair<std::vector<graph::RoadId>, std::vector<double>>& Probes(
      int budget) {
    auto it = probes.find(budget);
    if (it == probes.end()) {
      const ocs::OcsProblem problem =
          MakeProblem(world, *table, queried, world.all_roads, *costs, 99,
                      budget, 0.92);
      const ocs::OcsSolution selection = ocs::HybridGreedy(problem);
      auto probed = ProbeRoads(world, selection.roads, *costs, 99,
                               static_cast<uint64_t>(budget));
      it = probes.emplace(budget,
                          std::make_pair(selection.roads, probed)).first;
    }
    return it->second;
  }

  SemiSyntheticWorld world;
  std::unique_ptr<rtf::CorrelationTable> table;
  std::unique_ptr<crowd::CostModel> costs;
  std::vector<graph::RoadId> queried;
  std::unique_ptr<core::GspEstimator> gsp;
  std::unique_ptr<baselines::LassoEstimator> lasso;
  std::unique_ptr<baselines::GrmcEstimator> grmc;
  std::map<int, std::pair<std::vector<graph::RoadId>, std::vector<double>>>
      probes;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_Gsp(benchmark::State& state) {
  Fixture& f = GetFixture();
  const auto& [roads, probed] = f.Probes(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.gsp->Estimate(99, roads, probed));
  }
}

void BM_Lasso(benchmark::State& state) {
  Fixture& f = GetFixture();
  const auto& [roads, probed] = f.Probes(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.lasso->EstimateTargets(99, roads, probed, f.queried));
  }
}

void BM_Grmc(benchmark::State& state) {
  Fixture& f = GetFixture();
  const auto& [roads, probed] = f.Probes(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.grmc->Estimate(99, roads, probed));
  }
}

BENCHMARK(BM_Lasso)->DenseRange(30, 150, 60)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Grmc)->DenseRange(30, 150, 60)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Gsp)->DenseRange(30, 150, 60)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace crowdrtse::bench

BENCHMARK_MAIN();
