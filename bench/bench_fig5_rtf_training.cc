// Reproduces paper Fig. 5: RTF offline-training convergence vs network
// size. Road networks of 150..600 roads are generated at the same density
// as the semi-synthetic world; the CCD trainer (vanilla gradient ascent on
// mu, lambda = 0.1, the paper's setting) runs until {mu}_R's maximum
// gradient falls below the threshold; we report the iterations needed and
// the wall time.
//
// Expected shape: the convergence effort grows roughly linearly with the
// network size (iterations grow moderately, per-iteration cost linearly),
// so offline training stays tolerable for city-scale networks.
#include <cstdio>
#include <vector>

#include "eval/table_printer.h"
#include "graph/generators.h"
#include "rtf/ccd_trainer.h"
#include "traffic/traffic_simulator.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crowdrtse::bench {
namespace {

void Run() {
  std::printf("=== Fig. 5 — RTF training convergence vs network size ===\n");
  std::printf(
      "vanilla gradient ascent on mu, lambda = 0.02 (stable for our degree distribution), tolerance on max "
      "|dL/dmu|\n\n");

  eval::TablePrinter table({"roads", "iterations", "converged",
                            "us/iteration", "total_ms"});
  for (int size : {150, 300, 450, 600}) {
    util::Rng rng(42);  // same seed: nested-density networks of each size
    graph::RoadNetworkOptions net;
    net.num_roads = size;
    const graph::Graph g = *graph::RoadNetwork(net, rng);
    traffic::TrafficModelOptions traffic_options;
    traffic_options.num_days = 15;
    const traffic::TrafficSimulator sim(g, traffic_options, 43);
    const traffic::HistoryStore history = sim.GenerateHistory();

    rtf::CcdOptions options;
    options.learning_rate = 0.02;
    options.max_iterations = 5000;
    options.mu_gradient_tolerance = 0.05;
    options.update_sigma = false;  // the paper's Fig. 5 tracks mu only
    options.update_rho = false;
    const rtf::CcdTrainer trainer(g, history, options);
    rtf::RtfModel model(g, history.num_slots());
    util::Timer timer;
    const auto report = trainer.TrainSlot(model, /*slot=*/99);
    const double total_ms = timer.ElapsedMillis();
    CROWDRTSE_CHECK(report.ok());
    table.AddRow({std::to_string(size), std::to_string(report->iterations),
                  report->converged ? "yes" : "no",
                  util::FormatDouble(1000.0 * total_ms / report->iterations,
                                     2),
                  util::FormatDouble(total_ms, 1)});
  }
  table.Print();
}

}  // namespace
}  // namespace crowdrtse::bench

int main() {
  crowdrtse::bench::Run();
  return 0;
}
