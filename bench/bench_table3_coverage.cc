// Reproduces paper Table III: how many of the queried roads lie within the
// 1-hop / 2-hop neighbourhood of the selected crowdsourced roads R^c, per
// selection algorithm (OBJ / Rand / Hybrid) and budget (30..150).
//
// Expected shape: Hybrid covers the most queried roads at every budget;
// coverage grows with the budget for all selectors.
#include <cstdio>
#include <string>
#include <vector>

#include "quality_harness.h"

namespace crowdrtse::bench {
namespace {

const std::vector<int> kBudgets{30, 60, 90, 120, 150};

void Run() {
  std::printf(
      "=== Table III — 1-hop / 2-hop coverage of the queried roads ===\n");
  std::printf("607 roads, |R^q| = 51, theta = 0.92, costs C1 = 1..10\n\n");
  const SemiSyntheticWorld world = BuildWorld();
  HarnessOptions options;
  options.run_lasso = false;
  options.run_grmc = false;
  QualityHarness harness(world, options);

  eval::TablePrinter table(
      {"selector", "K=30", "K=60", "K=90", "K=120", "K=150"});
  for (Selector selector :
       {Selector::kObjective, Selector::kRandom, Selector::kHybrid}) {
    std::vector<std::string> row{SelectorName(selector)};
    for (int budget : kBudgets) {
      const CellResult cell = harness.Run(selector, budget);
      row.push_back(std::to_string(cell.hop1_coverage) + " / " +
                    std::to_string(cell.hop2_coverage));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n(cells: 1-hop / 2-hop covered queried roads, of %d)\n",
              static_cast<int>(harness.queried().size()));
}

}  // namespace
}  // namespace crowdrtse::bench

int main() {
  crowdrtse::bench::Run();
  return 0;
}
