// Streaming-service bench (extension experiment): a monitoring client asks
// for the same district every 5-minute slot through the morning. Compares
// cold-start GSP (the paper's Alg. 5 initialisation at mu) against
// warm-starting each propagation from the previous slot's answer, and
// reports the serving stack's end-to-end latency split.
//
// Expected shape: identical estimates; deviation-transfer warm starts save
// a modest number of sweeps (the fluctuation field decorrelates within a
// slot or two, so the probes' neighbourhoods dominate convergence), while
// naively reusing raw previous speeds is counterproductive; the OCS phase
// dominates end-to-end latency, all phases in milliseconds.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/gsp_estimator.h"
#include "eval/table_printer.h"
#include "quality_harness.h"
#include "semi_synthetic.h"
#include "server/budget_ledger.h"
#include "server/query_engine.h"
#include "server/worker_registry.h"
#include "util/string_util.h"

namespace crowdrtse::bench {
namespace {

void WarmStartStudy(const SemiSyntheticWorld& world) {
  std::printf("\n--- warm-start GSP across consecutive slots ---\n");
  const crowd::CostModel costs =
      crowd::CostModel::Constant(world.network.num_roads(), 2);
  gsp::GspOptions options;
  options.epsilon = 1e-5;
  options.max_sweeps = 5000;  // let both schedules actually converge
  const gsp::SpeedPropagator propagator(world.model, options);
  std::vector<graph::RoadId> sampled;
  for (graph::RoadId r = 0; r < world.network.num_roads(); r += 15) {
    sampled.push_back(r);
  }
  eval::TablePrinter table(
      {"slot", "cold sweeps", "warm sweeps", "max |cold-warm|"});
  std::vector<double> previous;
  int cold_total = 0;
  int warm_total = 0;
  for (int slot = 96; slot < 96 + 12; ++slot) {  // 08:00 .. 09:00
    std::vector<double> probes;
    for (graph::RoadId r : sampled) {
      probes.push_back(world.truth.At(slot, r));
    }
    const auto cold = propagator.Propagate(slot, sampled, probes);
    CROWDRTSE_CHECK(cold.ok());
    cold_total += cold->sweeps;
    if (previous.empty()) {
      previous = cold->speeds;
      continue;
    }
    // Deviation transfer: carry the previous slot's deviation-from-mu
    // field onto the new slot's mean (raw previous speeds would smuggle in
    // the old slot's profile and converge *slower* than a cold start).
    std::vector<double> initial(previous.size());
    for (graph::RoadId r = 0;
         r < world.network.num_roads(); ++r) {
      initial[static_cast<size_t>(r)] =
          world.model.Mu(slot, r) +
          (previous[static_cast<size_t>(r)] - world.model.Mu(slot - 1, r));
    }
    const auto warm =
        propagator.PropagateFrom(slot, sampled, probes, initial);
    CROWDRTSE_CHECK(warm.ok());
    warm_total += warm->sweeps;
    double max_diff = 0.0;
    for (size_t i = 0; i < cold->speeds.size(); ++i) {
      max_diff = std::max(max_diff,
                          std::fabs(cold->speeds[i] - warm->speeds[i]));
    }
    table.AddRow({std::to_string(slot), std::to_string(cold->sweeps),
                  std::to_string(warm->sweeps),
                  util::FormatDouble(max_diff, 5)});
    previous = warm->speeds;
  }
  table.Print();
  std::printf("total sweeps over the hour: cold %d vs warm %d\n",
              cold_total, warm_total);
}

void ServiceLatencyStudy(const SemiSyntheticWorld& world) {
  std::printf("\n--- serving-stack latency over a monitored hour ---\n");
  // BuildOffline over the shared history (moment training only).
  auto system = core::CrowdRtse::BuildOffline(world.network, world.history,
                                              {});
  CROWDRTSE_CHECK(system.ok());
  server::WorkerRegistryOptions registry_options;
  registry_options.num_workers = world.network.num_roads() * 3;
  server::WorkerRegistry registry(world.network, registry_options, 5);
  server::BudgetLedger ledger(-1, 20);
  const crowd::CostModel costs =
      crowd::CostModel::Constant(world.network.num_roads(), 2);
  crowd::CrowdSimulator crowd_sim({}, util::Rng(9));
  server::QueryEngine engine(*system, registry, ledger, costs, crowd_sim);
  const auto queried = MakeQuery(world, 25, 77);
  for (int slot = 96; slot < 96 + 12; ++slot) {
    server::QueryRequest request;
    request.slot = slot;
    request.queried = queried;
    const auto response = engine.Serve(request, world.truth);
    CROWDRTSE_CHECK(response.ok());
    registry.AdvanceSlot();
  }
  std::printf("%s\n", engine.stats().Report().c_str());
}

void Run() {
  std::printf("=== Streaming bench — consecutive-slot monitoring ===\n");
  WorldOptions options;
  options.num_roads = 400;
  options.num_days = 15;
  const SemiSyntheticWorld world = BuildWorld(options);
  WarmStartStudy(world);
  ServiceLatencyStudy(world);
}

}  // namespace
}  // namespace crowdrtse::bench

int main() {
  crowdrtse::bench::Run();
  return 0;
}
