// Reproduces paper Fig. 3, columns (a)-(c): MAPE (row 1), FER (row 2) and
// DAPE at K = 30 (row 3) of GSP vs LASSO vs GRMC vs Per, for budgets
// 30..150, with crowdsourced roads selected by Hybrid-Greedy (a),
// Objective-Greedy (b) and Randomisation (c). Semi-synthetic 607-road
// network, |R^q| = 51, theta = 0.92, costs C1.
//
// Expected shape (paper §VII-C): GSP has the best MAPE/FER in most cells,
// with the clearest margin at K = 30; LASSO approaches GSP's MAPE at large
// K but keeps a FER gap; Per is flat in K; GSP's DAPE mass concentrates
// near zero.
#include <cstdio>
#include <string>
#include <vector>

#include "quality_harness.h"

namespace crowdrtse::bench {
namespace {

const std::vector<int> kBudgets{30, 60, 90, 120, 150};
const std::vector<std::string> kEstimators{"GSP", "LASSO", "GRMC", "Per"};

void PrintColumn(QualityHarness& harness, Selector selector) {
  std::map<int, CellResult> cells;
  for (int budget : kBudgets) {
    cells.emplace(budget, harness.Run(selector, budget));
  }

  std::printf("\n--- selection: %s ---\n", SelectorName(selector));
  eval::TablePrinter mape(
      {"MAPE", "K=30", "K=60", "K=90", "K=120", "K=150"});
  eval::TablePrinter fer({"FER", "K=30", "K=60", "K=90", "K=120", "K=150"});
  for (const std::string& name : kEstimators) {
    std::vector<double> mape_row;
    std::vector<double> fer_row;
    for (int budget : kBudgets) {
      const auto& apes = cells.at(budget).apes.at(name);
      mape_row.push_back(QualityHarness::Mape(apes));
      fer_row.push_back(QualityHarness::Fer(apes));
    }
    mape.AddNumericRow(name, mape_row, 4);
    fer.AddNumericRow(name, fer_row, 4);
  }
  mape.Print();
  std::printf("\n");
  fer.Print();

  // DAPE at the smallest budget (paper row 3).
  std::printf("\nDAPE at K=30 (fraction of cases per APE bin)\n");
  eval::TablePrinter dape({"estimator", "<=.05", "<=.10", "<=.15", "<=.20",
                           "<=.25", "<=.30", "<=.35", "<=.40", "<=.45",
                           "<=.50", ">.50"});
  for (const std::string& name : kEstimators) {
    const auto& apes = cells.at(30).apes.at(name);
    std::vector<double> bins(11, 0.0);
    for (double a : apes) {
      size_t bin = 10;
      for (size_t i = 0; i < 10; ++i) {
        if (a <= 0.05 * static_cast<double>(i + 1)) {
          bin = i;
          break;
        }
      }
      bins[bin] += 1.0;
    }
    if (!apes.empty()) {
      for (double& b : bins) b /= static_cast<double>(apes.size());
    }
    dape.AddNumericRow(name, bins, 3);
  }
  dape.Print();
}

void Run() {
  std::printf(
      "=== Fig. 3 (a-c) — estimation quality vs budget, per selector ===\n");
  std::printf("607 roads, |R^q| = 51, theta = 0.92, costs C1 = 1..10\n");
  const SemiSyntheticWorld world = BuildWorld();
  HarnessOptions options;
  options.grmc.max_iterations = 15;
  options.grmc.history_columns = 15;
  options.lasso.fit.max_iterations = 200;
  options.lasso.fit.tolerance = 1e-4;
  QualityHarness harness(world, options);
  PrintColumn(harness, Selector::kHybrid);
  PrintColumn(harness, Selector::kObjective);
  PrintColumn(harness, Selector::kRandom);
}

}  // namespace
}  // namespace crowdrtse::bench

int main() {
  crowdrtse::bench::Run();
  return 0;
}
