// Reproduces paper Fig. 3 (e1-e3): the effect of the redundancy threshold
// theta on GSP quality — Theta(*) = 0.92 (the tuned value) vs Theta(1) =
// 1.0 (constraint disabled) — across budgets 30..150, Hybrid selection.
//
// Expected shape: the tuned theta helps at small budgets (it forces the
// probes to spread out, buying more diverse information) and makes little
// difference once the budget is large.
#include <cstdio>
#include <map>
#include <vector>

#include "quality_harness.h"
#include "core/theta_tuner.h"
#include "util/string_util.h"

namespace crowdrtse::bench {
namespace {

const std::vector<int> kBudgets{30, 60, 90, 120, 150};

void Run() {
  std::printf("=== Fig. 3 (e) — effect of redundancy threshold theta ===\n");
  std::printf("607 roads, |R^q| = 51, Hybrid selection, costs C1\n");
  const SemiSyntheticWorld world = BuildWorld();
  HarnessOptions options;
  options.run_lasso = false;
  options.run_grmc = false;
  QualityHarness harness(world, options);

  std::map<double, std::map<int, CellResult>> cells;
  // The paper tunes theta on historical data and lands on 0.92 for the
  // Hong Kong feed. Our synthetic correlation closure is flatter, so the
  // sweep includes tighter settings where the constraint actually binds.
  const std::vector<double> kThetas{0.7, 0.8, 0.92, 1.0};
  for (double theta : kThetas) {
    for (int budget : kBudgets) {
      cells[theta].emplace(budget,
                           harness.Run(Selector::kHybrid, budget, theta));
    }
  }

  eval::TablePrinter mape(
      {"GSP MAPE", "K=30", "K=60", "K=90", "K=120", "K=150"});
  eval::TablePrinter fer(
      {"GSP FER", "K=30", "K=60", "K=90", "K=120", "K=150"});
  eval::TablePrinter selected(
      {"|R^c|", "K=30", "K=60", "K=90", "K=120", "K=150"});
  for (double theta : kThetas) {
    const std::string label =
        theta == 1.0 ? "Theta(1)"
                     : "Theta(" + util::FormatDouble(theta, 2) + ")";
    std::vector<double> mape_row;
    std::vector<double> fer_row;
    std::vector<double> count_row;
    for (int budget : kBudgets) {
      const CellResult& cell = cells[theta].at(budget);
      mape_row.push_back(QualityHarness::Mape(cell.apes.at("GSP")));
      fer_row.push_back(QualityHarness::Fer(cell.apes.at("GSP")));
      count_row.push_back(static_cast<double>(cell.selected_roads));
    }
    mape.AddNumericRow(label, mape_row, 4);
    fer.AddNumericRow(label, fer_row, 4);
    selected.AddNumericRow(label, count_row, 0);
  }
  std::printf("\n");
  mape.Print();
  std::printf("\n");
  fer.Print();
  std::printf("\nselected crowdsourced roads per budget\n");
  selected.Print();

  // The paper tunes theta on historical data (its ref [30]); run our
  // cross-validation tuner on the same world and report what it picks.
  core::ThetaTunerOptions tuner_options;
  tuner_options.candidate_thetas = kThetas;
  tuner_options.validation_days = 3;
  tuner_options.budget = 60;
  tuner_options.query_size = 51;
  const crowd::CostModel unit_costs =
      crowd::CostModel::Constant(world.network.num_roads(), 2);
  const auto tuned = core::TuneTheta(world.network, world.history,
                                     unit_costs, tuner_options);
  CROWDRTSE_CHECK(tuned.ok());
  std::printf("\ncross-validated theta (budget 60, held-out days):\n");
  for (const core::ThetaScore& score : tuned->scores) {
    std::printf("  theta %.2f -> validation MAPE %.4f%s\n", score.theta,
                score.mape,
                score.theta == tuned->best_theta ? "   <-- tuned" : "");
  }
}

}  // namespace
}  // namespace crowdrtse::bench

int main() {
  crowdrtse::bench::Run();
  return 0;
}
