// Reproduces paper Fig. 4(a): overall running time (ORT) of the OCS
// algorithms as the budget grows, on the semi-synthetic 607-road network
// with costs from C1. Uses google-benchmark for the timing loop and prints
// one benchmark per (algorithm, budget) pair.
//
// Expected shape: running time grows roughly linearly with the budget;
// Hybrid ~ Ratio + OBJ (it runs both); even the largest budget stays well
// under one second.
#include <benchmark/benchmark.h>

#include <memory>

#include "semi_synthetic.h"

namespace crowdrtse::bench {
namespace {

constexpr double kTheta = 0.92;

struct Fixture {
  Fixture() : world(BuildWorld()) {
    const int slot = 99;
    table = std::make_unique<rtf::CorrelationTable>(
        *rtf::CorrelationTable::Compute(world.model, slot));
    util::Rng cost_rng(7);
    costs = std::make_unique<crowd::CostModel>(
        *crowd::CostModel::UniformRandom(world.network.num_roads(),
                                         crowd::kCostRangeC1Min,
                                         crowd::kCostRangeC1Max, cost_rng));
    queried = MakeQuery(world, 51, 151);
  }

  SemiSyntheticWorld world;
  std::unique_ptr<rtf::CorrelationTable> table;
  std::unique_ptr<crowd::CostModel> costs;
  std::vector<graph::RoadId> queried;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_RatioGreedy(benchmark::State& state) {
  Fixture& f = GetFixture();
  const ocs::OcsProblem problem =
      MakeProblem(f.world, *f.table, f.queried, f.world.all_roads, *f.costs,
                  99, static_cast<int>(state.range(0)), kTheta);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ocs::RatioGreedy(problem));
  }
}

void BM_ObjectiveGreedy(benchmark::State& state) {
  Fixture& f = GetFixture();
  const ocs::OcsProblem problem =
      MakeProblem(f.world, *f.table, f.queried, f.world.all_roads, *f.costs,
                  99, static_cast<int>(state.range(0)), kTheta);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ocs::ObjectiveGreedy(problem));
  }
}

void BM_HybridGreedy(benchmark::State& state) {
  Fixture& f = GetFixture();
  const ocs::OcsProblem problem =
      MakeProblem(f.world, *f.table, f.queried, f.world.all_roads, *f.costs,
                  99, static_cast<int>(state.range(0)), kTheta);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ocs::HybridGreedy(problem));
  }
}

void BM_LazyHybridGreedy(benchmark::State& state) {
  Fixture& f = GetFixture();
  const ocs::OcsProblem problem =
      MakeProblem(f.world, *f.table, f.queried, f.world.all_roads, *f.costs,
                  99, static_cast<int>(state.range(0)), kTheta);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ocs::LazyHybridGreedy(problem));
  }
}

BENCHMARK(BM_RatioGreedy)->DenseRange(30, 150, 30)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ObjectiveGreedy)->DenseRange(30, 150, 30)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HybridGreedy)->DenseRange(30, 150, 30)->Unit(benchmark::kMillisecond);
// Extension: lazy-evaluation hybrid (same objective value, fewer gain
// recomputations).
BENCHMARK(BM_LazyHybridGreedy)->DenseRange(30, 150, 30)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace crowdrtse::bench

BENCHMARK_MAIN();
