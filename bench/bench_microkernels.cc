// Micro-benchmarks of the hot kernels (perf-regression tracking, not a
// paper figure): BFS levelling, Dijkstra, the full correlation closure,
// one GSP sweep-to-convergence, moment estimation of one slot, and a
// 607-road LASSO fit. Keeps an eye on the pieces every online query or
// offline build touches.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/lasso.h"
#include "graph/bfs.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "gsp/propagation.h"
#include "rtf/correlation_table.h"
#include "rtf/moment_estimator.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

namespace crowdrtse::bench {
namespace {

struct Fixture {
  Fixture() {
    util::Rng rng(42);
    graph::RoadNetworkOptions net;
    net.num_roads = 607;
    network = *graph::RoadNetwork(net, rng);
    traffic::TrafficModelOptions traffic_options;
    traffic_options.num_days = 15;
    simulator = std::make_unique<traffic::TrafficSimulator>(
        network, traffic_options, 43);
    history = simulator->GenerateHistory();
    rtf::MomentEstimatorOptions moments;
    moments.slot_window = 1;
    model = std::make_unique<rtf::RtfModel>(
        *rtf::EstimateByMoments(network, history, moments));
    truth = simulator->GenerateEvaluationDay();
    for (graph::RoadId r = 0; r < network.num_roads(); r += 20) {
      sampled.push_back(r);
      probed.push_back(truth.At(99, r));
    }
  }

  graph::Graph network;
  std::unique_ptr<traffic::TrafficSimulator> simulator;
  traffic::HistoryStore history;
  std::unique_ptr<rtf::RtfModel> model;
  traffic::DayMatrix truth;
  std::vector<graph::RoadId> sampled;
  std::vector<double> probed;
};

Fixture& F() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_MultiSourceBfs(benchmark::State& state) {
  Fixture& f = F();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::MultiSourceBfs(f.network, f.sampled));
  }
}

void BM_DijkstraSingleSource(benchmark::State& state) {
  Fixture& f = F();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::Dijkstra(f.network, 0, [](graph::EdgeId) { return 1.0; }));
  }
}

void BM_CorrelationClosureFullSlot(benchmark::State& state) {
  Fixture& f = F();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rtf::CorrelationTable::Compute(*f.model, 99));
  }
}

void BM_GspPropagation(benchmark::State& state) {
  Fixture& f = F();
  const gsp::SpeedPropagator propagator(*f.model, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        propagator.Propagate(99, f.sampled, f.probed));
  }
}

void BM_MomentEstimationOneSlot(benchmark::State& state) {
  Fixture& f = F();
  // One-slot history slice keeps the benchmark focused on the kernel.
  traffic::HistoryStore slice(f.network.num_roads(),
                              f.history.num_days(), 1);
  for (int day = 0; day < f.history.num_days(); ++day) {
    for (graph::RoadId r = 0; r < f.network.num_roads(); ++r) {
      slice.At(day, 0, r) = f.history.At(day, 99, r);
    }
  }
  rtf::MomentEstimatorOptions options;
  options.slot_window = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rtf::EstimateByMoments(f.network, slice, options));
  }
}

void BM_LassoFit607Predictors(benchmark::State& state) {
  Fixture& f = F();
  const size_t rows = 90;
  const size_t cols = 30;
  math::DenseMatrix x(rows, cols);
  std::vector<double> y(rows);
  util::Rng rng(7);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      x.At(i, j) = f.history.At(static_cast<int>(i % 15), 99,
                                static_cast<graph::RoadId>(j * 3)) +
                   rng.Normal(0.0, 0.1);
    }
    y[i] = f.history.At(static_cast<int>(i % 15), 99, 100);
  }
  baselines::LassoFitOptions options;
  options.max_iterations = 200;
  options.tolerance = 1e-4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::LassoFit(x, y, options));
  }
}

BENCHMARK(BM_MultiSourceBfs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DijkstraSingleSource)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CorrelationClosureFullSlot)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GspPropagation)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MomentEstimationOneSlot)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LassoFit607Predictors)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace crowdrtse::bench

BENCHMARK_MAIN();
