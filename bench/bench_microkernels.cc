// Micro-benchmarks of the hot kernels, A/B-ing the mechanical-sympathy
// rewrites against their golden baselines on one metro-scale network:
//
//   - GSP Eq. (18) sweeps: the reference accessor kernel vs the SoA scalar,
//     four-lane unrolled and AVX2 kernels (all compute the same fixpoint;
//     see gsp::GspKernel), sequential and level-parallel.
//   - Gamma_R maintenance: full sparse-closure rebuild vs the incremental
//     RefreshedRows patch after a few edge correlations change.
//   - Graph primitives: callback Dijkstra vs the flat-weight DijkstraInto,
//     per-level BFS vs the flat single-allocation MultiSourceBfsInto.
//
// Every timed kernel lands in the JSON artifact as {kernel, ns_per_op,
// roads, threads}; the artifact also records the two headline speedups
// (GSP reference -> auto, Gamma_R full -> incremental) which --strict
// (default) gates at >= 3x.
//
// Flags: --roads=N --threads=T --reps=R --sweeps=S --hop_radius=C
//        --json_out=PATH --quick --no-strict
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/bfs.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "gsp/propagation.h"
#include "rtf/correlation_table.h"
#include "rtf/rtf_model.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace crowdrtse::bench {
namespace {

struct Flags {
  int roads = 60000;
  int threads = 4;
  int reps = 5;
  int sweeps = 8;       // fixed sweep count (epsilon = 0) for fair A/B
  int hop_radius = 3;   // sparse Gamma_R closure radius
  std::string json_out = "BENCH_microkernels.json";
  bool strict = true;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto int_flag = [&arg](const char* name, int* value) {
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        *value = std::atoi(arg.c_str() + prefix.size());
        return true;
      }
      return false;
    };
    if (int_flag("--roads", &flags.roads)) continue;
    if (int_flag("--threads", &flags.threads)) continue;
    if (int_flag("--reps", &flags.reps)) continue;
    if (int_flag("--sweeps", &flags.sweeps)) continue;
    if (int_flag("--hop_radius", &flags.hop_radius)) continue;
    if (arg.rfind("--json_out=", 0) == 0) {
      flags.json_out = arg.substr(11);
      continue;
    }
    if (arg == "--quick") {
      // Reduced sweep for the CI perf-smoke job: small enough to finish in
      // seconds, same code paths. Quick numbers are not gated.
      flags.roads = 8000;
      flags.reps = 2;
      flags.sweeps = 4;
      flags.strict = false;
      continue;
    }
    if (arg == "--no-strict") {
      flags.strict = false;
      continue;
    }
    std::printf("unknown flag: %s\n", arg.c_str());
    std::exit(2);
  }
  return flags;
}

/// Deterministic single-slot RTF over the metro grid: a west-east mean
/// gradient, mildly varying sigmas and edge correlations in [0.6, 0.95].
/// No training — the benchmarks measure kernels, not estimation.
rtf::RtfModel SyntheticModel(
    const graph::Graph& graph,
    const std::vector<std::pair<double, double>>& positions) {
  rtf::RtfModel model(graph, /*num_slots=*/1);
  for (graph::RoadId r = 0; r < graph.num_roads(); ++r) {
    const double x = positions[static_cast<size_t>(r)].first;
    model.SetMu(0, r, 30.0 + 40.0 * x);
    model.SetSigma(0, r, 4.0 + 2.0 * ((r % 7) / 7.0));
  }
  for (graph::EdgeId e = 0; e < graph.num_edges(); ++e) {
    model.SetRho(0, e, 0.6 + 0.35 * ((e % 11) / 11.0));
  }
  return model;
}

struct KernelResult {
  std::string kernel;
  double ns_per_op = 0.0;
  int roads = 0;
  int threads = 1;
};

double g_sink = 0.0;  // defeats dead-code elimination of benched results

template <typename Fn>
double MeasureNsPerOp(int reps, Fn&& fn) {
  fn();  // warm up caches, pools, lazily built colourings
  util::Timer timer;
  for (int i = 0; i < reps; ++i) fn();
  return timer.ElapsedSeconds() * 1e9 / std::max(1, reps);
}

const char* KernelName(gsp::GspKernel kernel) {
  switch (kernel) {
    case gsp::GspKernel::kAuto: return "auto";
    case gsp::GspKernel::kReference: return "reference";
    case gsp::GspKernel::kScalar: return "scalar";
    case gsp::GspKernel::kUnrolled: return "unrolled";
    case gsp::GspKernel::kAvx2: return "avx2";
  }
  return "?";
}

void DumpArtifact(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::printf("WARNING: could not write %s\n", path.c_str());
    return;
  }
  std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

void Run(const Flags& flags) {
  std::printf("=== bench_microkernels: %d roads, %d threads, %d reps, "
              "%d sweeps, C=%d ===\n",
              flags.roads, flags.threads, flags.reps, flags.sweeps,
              flags.hop_radius);

  graph::MetroNetworkOptions metro;
  metro.num_roads = flags.roads;
  std::vector<std::pair<double, double>> positions;
  util::Timer gen_timer;
  const auto graph = graph::MetroNetwork(metro, &positions);
  CROWDRTSE_CHECK(graph.ok());
  const int n = graph->num_roads();
  const rtf::RtfModel model = SyntheticModel(*graph, positions);
  std::printf("metro network: %d roads, %d edges (%.2fs)\n", n,
              graph->num_edges(), gen_timer.ElapsedSeconds());

  // Sparse probes, one per 64 roads, pinned near the periodic mean.
  std::vector<graph::RoadId> sampled;
  std::vector<double> probed;
  for (graph::RoadId r = 0; r < n; r += 64) {
    sampled.push_back(r);
    probed.push_back(model.Mu(0, r) + 3.0 * (((r / 64) % 5) - 2));
  }

  std::vector<KernelResult> results;
  const auto record = [&results, n](std::string name, double ns,
                                    int threads) {
    std::printf("  %-28s %14.0f ns/op  (threads=%d)\n", name.c_str(), ns,
                threads);
    results.push_back({std::move(name), ns, n, threads});
  };

  // --- GSP sweep kernels, sequential. epsilon = 0 pins every kernel to
  // exactly `sweeps` full sweeps, so ns/op compares identical work.
  double gsp_reference_ns = 0.0;
  double gsp_auto_ns = 0.0;
  std::vector<gsp::GspKernel> kernels = {
      gsp::GspKernel::kReference, gsp::GspKernel::kScalar,
      gsp::GspKernel::kUnrolled};
  if (gsp::SpeedPropagator::Avx2Supported()) {
    kernels.push_back(gsp::GspKernel::kAvx2);
  }
  kernels.push_back(gsp::GspKernel::kAuto);
  for (const gsp::GspKernel kernel : kernels) {
    gsp::GspOptions options;
    options.epsilon = 1e-300;  // never converges early: fixed sweep count
    options.max_sweeps = flags.sweeps;
    options.num_threads = 1;
    options.kernel = kernel;
    const gsp::SpeedPropagator propagator(model, options);
    const double ns = MeasureNsPerOp(flags.reps, [&] {
      const auto result = propagator.Propagate(0, sampled, probed);
      CROWDRTSE_CHECK(result.ok());
      g_sink += result->speeds[1];
    });
    record(std::string("gsp_propagate_") + KernelName(kernel), ns, 1);
    if (kernel == gsp::GspKernel::kReference) gsp_reference_ns = ns;
    if (kernel == gsp::GspKernel::kAuto) gsp_auto_ns = ns;
  }

  // --- GSP level-parallel, auto kernel.
  if (flags.threads > 1) {
    gsp::GspOptions options;
    options.epsilon = 1e-300;  // never converges early: fixed sweep count
    options.max_sweeps = flags.sweeps;
    options.num_threads = flags.threads;
    const gsp::SpeedPropagator propagator(model, options);
    const double ns = MeasureNsPerOp(flags.reps, [&] {
      const auto result = propagator.Propagate(0, sampled, probed);
      CROWDRTSE_CHECK(result.ok());
      g_sink += result->speeds[1];
    });
    record("gsp_propagate_parallel_auto", ns, flags.threads);
    CROWDRTSE_CHECK(propagator.coloring_builds() == 1);  // cached, not per-op
  }

  // --- Gamma_R: full sparse rebuild vs incremental row refresh after a
  // CCD-style perturbation of 8 edge correlations. Both serial, same rows.
  const auto full = rtf::CorrelationTable::Compute(
      model, 0, rtf::PathWeightMode::kNegLog, nullptr, flags.hop_radius);
  CROWDRTSE_CHECK(full.ok());
  rtf::RtfModel refined = model;
  std::vector<graph::EdgeId> changed_edges;
  for (int k = 0; k < 8; ++k) {
    const graph::EdgeId e =
        static_cast<graph::EdgeId>((static_cast<int64_t>(k) * 7919) %
                                   graph->num_edges());
    refined.SetRho(0, e, 0.5 + 0.04 * k);
    changed_edges.push_back(e);
  }
  std::vector<double> edge_rho(static_cast<size_t>(graph->num_edges()));
  for (graph::EdgeId e = 0; e < graph->num_edges(); ++e) {
    edge_rho[static_cast<size_t>(e)] = refined.Rho(0, e);
  }
  const std::vector<graph::RoadId> affected =
      rtf::AffectedCorrelationRows(*graph, changed_edges, flags.hop_radius);
  std::printf("  gamma refresh: %zu changed edges -> %zu affected rows "
              "of %d\n", changed_edges.size(), affected.size(), n);

  const int gamma_reps = std::max(1, flags.reps / 2);
  const double gamma_full_ns = MeasureNsPerOp(gamma_reps, [&] {
    const auto rebuilt = rtf::CorrelationTable::Compute(
        refined, 0, rtf::PathWeightMode::kNegLog, nullptr,
        flags.hop_radius);
    CROWDRTSE_CHECK(rebuilt.ok());
    g_sink += rebuilt->Corr(0, 0);
  });
  record("gamma_full_rebuild", gamma_full_ns, 1);

  const double gamma_incremental_ns = MeasureNsPerOp(flags.reps, [&] {
    const auto patched =
        full->RefreshedRows(*graph, edge_rho, affected, nullptr);
    CROWDRTSE_CHECK(patched.ok());
    g_sink += patched->Corr(0, 0);
  });
  record("gamma_incremental_refresh", gamma_incremental_ns, 1);

  // --- Graph primitives: flat rewrites vs their callback/nested baselines.
  {
    const double ns = MeasureNsPerOp(flags.reps, [&] {
      g_sink += static_cast<double>(
          graph::MultiSourceBfs(*graph, sampled).levels.size());
    });
    record("bfs_levels", ns, 1);
    graph::FlatHopLevels flat;
    const double flat_ns = MeasureNsPerOp(flags.reps, [&] {
      graph::MultiSourceBfsInto(*graph, sampled, flat);
      g_sink += static_cast<double>(flat.num_levels());
    });
    record("bfs_flat", flat_ns, 1);
  }
  {
    const double ns = MeasureNsPerOp(flags.reps, [&] {
      g_sink += graph::Dijkstra(*graph, 0, [](graph::EdgeId) {
                  return 1.0;
                }).distance[static_cast<size_t>(n - 1)];
    });
    record("dijkstra_callback", ns, 1);
    const std::vector<double> unit_weights(
        static_cast<size_t>(graph->num_edges()), 1.0);
    graph::DijkstraWorkspace workspace;
    const double flat_ns = MeasureNsPerOp(flags.reps, [&] {
      graph::DijkstraInto(*graph, 0, unit_weights, workspace);
      g_sink += workspace.distance[static_cast<size_t>(n - 1)];
    });
    record("dijkstra_flat", flat_ns, 1);
  }

  const double gsp_speedup =
      gsp_auto_ns > 0.0 ? gsp_reference_ns / gsp_auto_ns : 0.0;
  const double gamma_speedup = gamma_incremental_ns > 0.0
                                   ? gamma_full_ns / gamma_incremental_ns
                                   : 0.0;
  std::printf("GSP propagation reference -> auto: %.2fx\n", gsp_speedup);
  std::printf("Gamma_R refresh full -> incremental: %.2fx\n", gamma_speedup);

  std::string json = "{\n";
  json += "  \"bench\": \"microkernels\",\n";
  json += "  \"roads\": " + std::to_string(n) + ",\n";
  json += "  \"edges\": " + std::to_string(graph->num_edges()) + ",\n";
  json += "  \"threads\": " + std::to_string(flags.threads) + ",\n";
  json += "  \"reps\": " + std::to_string(flags.reps) + ",\n";
  json += "  \"gsp_sweeps\": " + std::to_string(flags.sweeps) + ",\n";
  json += "  \"gamma_hop_radius\": " + std::to_string(flags.hop_radius) +
          ",\n";
  json += "  \"avx2\": ";
  json += gsp::SpeedPropagator::Avx2Supported() ? "true" : "false";
  json += ",\n  \"kernels\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    json += "    {\"kernel\": \"" + r.kernel + "\", \"ns_per_op\": " +
            util::FormatDouble(r.ns_per_op, 0) +
            ", \"roads\": " + std::to_string(r.roads) +
            ", \"threads\": " + std::to_string(r.threads) + "}";
    json += (i + 1 < results.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"gsp_speedup_reference_to_auto\": " +
          util::FormatDouble(gsp_speedup, 2) + ",\n";
  json += "  \"gamma_refresh_speedup_full_to_incremental\": " +
          util::FormatDouble(gamma_speedup, 2) + "\n";
  json += "}\n";
  DumpArtifact(flags.json_out, json);

  if (flags.strict) {
    CROWDRTSE_CHECK(gsp_speedup >= 3.0);
    CROWDRTSE_CHECK(gamma_speedup >= 3.0);
    std::printf("strict speedup gate passed (GSP %.2fx, Gamma_R %.2fx, "
                "both >= 3x)\n", gsp_speedup, gamma_speedup);
  }
  if (g_sink == 12345.678) std::printf("%f\n", g_sink);  // keep g_sink live
}

}  // namespace
}  // namespace crowdrtse::bench

int main(int argc, char** argv) {
  crowdrtse::bench::Run(crowdrtse::bench::ParseFlags(argc, argv));
  return 0;
}
