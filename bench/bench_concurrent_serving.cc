// Concurrent-serving load driver: N client threads replay a day of
// realtime-speed queries against one shared QueryEngine and report QPS and
// tail latency per thread count. The replay walks the day in slot waves —
// within a wave every client fires its queries concurrently (atomic query
// ids, reservation ledger, leased propagators); between waves the worker
// population advances one slot, exactly the quiescence contract the engine
// documents for WorkerRegistry::AdvanceSlot.
//
// Expected shape: ledger spend never exceeds the campaign budget no matter
// the thread count, every query lands in exactly one outcome counter, and
// the per-phase p50/p95/p99 report shows OCS dominating the tail (the
// paper's Fig. 4 shape). Throughput scaling with threads is bounded by the
// machine's core count — on a single-core container the win is that
// concurrency is *safe*, not faster.
//
// Observability: the driver also dumps machine-readable artifacts next to
// the binary — EngineStats::ReportJson() for the 8-client serving pass and
// the fault storm (so BENCH_*.json trajectories can track serve-path
// counters), plus a fully sampled fault-storm pass that exports the Chrome
// trace and the Prometheus exposition for CI upload.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "semi_synthetic.h"
#include "crowd/fault_plan.h"
#include "eval/table_printer.h"
#include "server/budget_ledger.h"
#include "server/query_engine.h"
#include "server/worker_registry.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crowdrtse::bench {
namespace {

constexpr int kSlotStride = 8;       // every 40 minutes of the day
constexpr int kQueriesPerClientPerWave = 2;
constexpr int kQuerySize = 20;

/// Writes a bench artifact next to the binary; a failure is loud but not
/// fatal (a read-only working directory should not kill the bench).
void DumpArtifact(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::printf("WARNING: could not write %s\n", path.c_str());
    return;
  }
  std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

struct LoadResult {
  int attempts = 0;
  double wall_seconds = 0.0;
  util::metrics::LatencySnapshot client_latency;
  server::EngineStats stats;
  std::string ledger_report;
  /// EngineStats::ReportJson() — the serve-path counters as one JSON
  /// object, dumped for BENCH_*.json trajectories.
  std::string stats_json;
  int64_t total_spent = 0;
};

LoadResult ReplayDay(core::CrowdRtse& system, const SemiSyntheticWorld& world,
                     int num_clients) {
  server::WorkerRegistryOptions registry_options;
  registry_options.num_workers = world.network.num_roads() * 3;
  server::WorkerRegistry registry(world.network, registry_options, 5);
  const crowd::CostModel costs =
      crowd::CostModel::Constant(world.network.num_roads(), 2);
  // Finite campaign sized so the day fits; the invariant that spend stays
  // under it is checked below regardless.
  const int64_t campaign_budget = 1'000'000;
  server::BudgetLedger ledger(campaign_budget, /*per_query_cap=*/30);
  crowd::CrowdSimulator crowd_sim({}, util::Rng(9));
  server::QueryEngine::Options engine_options;
  engine_options.propagator_pool_size = num_clients;
  server::QueryEngine engine(system, registry, ledger, costs, crowd_sim,
                             engine_options);

  // Each client monitors its own district all day (distinct query sets).
  std::vector<std::vector<graph::RoadId>> districts;
  for (int c = 0; c < num_clients; ++c) {
    districts.push_back(
        MakeQuery(world, kQuerySize, 100 + static_cast<uint64_t>(c)));
  }

  util::metrics::LatencyHistogram client_latency;
  LoadResult result;
  util::Timer wall;
  for (int slot = 0; slot < traffic::kSlotsPerDay; slot += kSlotStride) {
    std::vector<std::thread> clients;
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        for (int q = 0; q < kQueriesPerClientPerWave; ++q) {
          server::QueryRequest request;
          request.slot = slot;
          request.queried = districts[static_cast<size_t>(c)];
          util::Timer timer;
          const auto response = engine.Serve(request, world.truth);
          client_latency.Record(timer.ElapsedMillis());
          CROWDRTSE_CHECK(response.ok());
        }
      });
    }
    for (std::thread& c : clients) c.join();
    // Quiesced between waves: safe to move the worker population.
    registry.AdvanceSlot();
  }
  result.wall_seconds = wall.ElapsedSeconds();
  result.attempts = (traffic::kSlotsPerDay / kSlotStride) * num_clients *
                    kQueriesPerClientPerWave;
  result.client_latency = client_latency.Snapshot();
  result.stats = engine.stats();
  result.ledger_report = ledger.Report();
  result.stats_json = result.stats.ReportJson();
  result.total_spent = ledger.total_spent();

  // The tentpole invariants, enforced on every run of the driver.
  CROWDRTSE_CHECK(result.total_spent <= campaign_budget);
  CROWDRTSE_CHECK(ledger.reserved_outstanding() == 0);
  CROWDRTSE_CHECK(result.stats.queries_served +
                      result.stats.queries_rejected +
                      result.stats.queries_failed ==
                  result.attempts);
  return result;
}

struct FaultedResult {
  int attempts = 0;
  double max_span_ms = 0.0;
  server::EngineStats stats;
  int64_t total_spent = 0;
  /// Single-client runs record every answer and degraded set in serve
  /// order, for the bitwise replay check.
  std::vector<double> speeds_trace;
  std::vector<graph::RoadId> degraded_trace;
  /// Rendered observability artifacts (stats JSON always; the trace and
  /// Prometheus dumps only when the pass ran with sampling on).
  std::string stats_json;
  std::string prometheus;
  std::string chrome_trace;
  std::string slow_query_report;
  int64_t traces_collected = 0;
};

/// Fault-storm replay: the same day under an injected 30% drop + 20% delay
/// FaultPlan, served by the fault-tolerant dispatch path on a SimClock (so
/// deadline waits and retries cost zero wall time). The invariants the
/// degradation ladder promises are CHECKed on every query: nothing fails,
/// and every round resolves inside DispatchOptions::MaxRoundSpanMs().
/// `trace_sample_rate` > 0 turns on per-query tracing with a ring sized to
/// hold the whole day, so the export covers every sampled query.
FaultedResult ReplayFaultedDay(core::CrowdRtse& system,
                               const SemiSyntheticWorld& world,
                               int num_clients,
                               double trace_sample_rate = 0.0) {
  server::WorkerRegistryOptions registry_options;
  registry_options.num_workers = world.network.num_roads() * 3;
  server::WorkerRegistry registry(world.network, registry_options, 5);
  const crowd::CostModel costs =
      crowd::CostModel::Constant(world.network.num_roads(), 2);
  server::BudgetLedger ledger(1'000'000, /*per_query_cap=*/30);
  crowd::CrowdSimulator crowd_sim({}, util::Rng(9));
  util::SimClock clock;
  server::QueryEngine::Options engine_options;
  engine_options.propagator_pool_size = num_clients;
  engine_options.fault_tolerant_dispatch = true;
  engine_options.clock = &clock;
  crowd::FaultSpec storm;
  storm.drop_rate = 0.3;
  storm.delay_rate = 0.2;
  engine_options.fault_plan = crowd::FaultPlan(storm, /*seed=*/2026);
  engine_options.trace_sample_rate = trace_sample_rate;
  engine_options.trace_ring_size = (traffic::kSlotsPerDay / kSlotStride) *
                                   num_clients * kQueriesPerClientPerWave;
  server::QueryEngine engine(system, registry, ledger, costs, crowd_sim,
                             engine_options);

  std::vector<std::vector<graph::RoadId>> districts;
  for (int c = 0; c < num_clients; ++c) {
    districts.push_back(
        MakeQuery(world, kQuerySize, 100 + static_cast<uint64_t>(c)));
  }
  const double span_budget_ms = engine_options.dispatch.MaxRoundSpanMs();

  FaultedResult result;
  std::mutex merge_mutex;
  for (int slot = 0; slot < traffic::kSlotsPerDay; slot += kSlotStride) {
    std::vector<std::thread> clients;
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        for (int q = 0; q < kQueriesPerClientPerWave; ++q) {
          server::QueryRequest request;
          request.slot = slot;
          request.queried = districts[static_cast<size_t>(c)];
          const auto response = engine.Serve(request, world.truth);
          // Zero failed queries under the storm: faults degrade roads,
          // never the query.
          CROWDRTSE_CHECK(response.ok());
          CROWDRTSE_CHECK(response->dispatch_span_ms <= span_budget_ms);
          std::lock_guard<std::mutex> lock(merge_mutex);
          result.max_span_ms =
              std::max(result.max_span_ms, response->dispatch_span_ms);
          if (num_clients == 1) {
            result.speeds_trace.insert(result.speeds_trace.end(),
                                       response->queried_speeds.begin(),
                                       response->queried_speeds.end());
            result.degraded_trace.insert(result.degraded_trace.end(),
                                         response->degraded_roads.begin(),
                                         response->degraded_roads.end());
          }
        }
      });
    }
    for (std::thread& c : clients) c.join();
    registry.AdvanceSlot();
  }
  result.attempts = (traffic::kSlotsPerDay / kSlotStride) * num_clients *
                    kQueriesPerClientPerWave;
  result.stats = engine.stats();
  result.total_spent = ledger.total_spent();
  result.stats_json = result.stats.ReportJson();
  result.traces_collected = engine.traces().collected();
  if (trace_sample_rate > 0.0) {
    result.prometheus = engine.metrics().RenderPrometheus();
    result.chrome_trace = engine.traces().ChromeTraceJson();
    result.slow_query_report = engine.traces().SlowQueryReport();
  }
  CROWDRTSE_CHECK(result.stats.queries_failed == 0);
  CROWDRTSE_CHECK(result.stats.queries_served == result.attempts);
  return result;
}

void Run() {
  std::printf("=== Concurrent serving bench — a day of queries, N clients"
              " ===\n");
  WorldOptions options;
  options.num_roads = 300;
  options.num_days = 10;
  const SemiSyntheticWorld world = BuildWorld(options);
  core::CrowdRtseConfig config;
  config.gsp.num_threads = 2;  // parallel GSP: the non-reentrant config
  auto system =
      core::CrowdRtse::BuildOffline(world.network, world.history, config);
  CROWDRTSE_CHECK(system.ok());
  // Warm the per-slot correlation cache once, as a deployed service would
  // during rollout, so every thread count measures serving rather than the
  // one-time offline closure computation.
  std::printf("warming correlation closures for %d slots...\n",
              traffic::kSlotsPerDay / kSlotStride);
  for (int slot = 0; slot < traffic::kSlotsPerDay; slot += kSlotStride) {
    CROWDRTSE_CHECK(system->CorrelationsFor(slot).ok());
  }

  eval::TablePrinter table({"clients", "queries", "QPS", "client p50 ms",
                            "client p95 ms", "client p99 ms", "spend"});
  for (int clients : {1, 2, 4, 8}) {
    const LoadResult result = ReplayDay(*system, world, clients);
    table.AddRow({std::to_string(clients), std::to_string(result.attempts),
                  util::FormatDouble(static_cast<double>(result.attempts) /
                                         result.wall_seconds,
                                     1),
                  util::FormatDouble(result.client_latency.p50_ms, 2),
                  util::FormatDouble(result.client_latency.p95_ms, 2),
                  util::FormatDouble(result.client_latency.p99_ms, 2),
                  std::to_string(result.total_spent)});
    if (clients == 8) {
      std::printf("\nper-phase latency at 8 clients:\n%s\n%s\n",
                  result.stats.Report().c_str(),
                  result.ledger_report.c_str());
      DumpArtifact("bench_concurrent_serving_stats.json",
                   result.stats_json + "\n");
    }
  }
  table.Print();

  std::printf("\n=== Fault storm — 30%% drop + 20%% delay, SimClock ===\n");
  eval::TablePrinter fault_table({"clients", "queries", "max span ms",
                                  "roads degraded", "retries", "spend"});
  for (int clients : {1, 4}) {
    const FaultedResult faulted = ReplayFaultedDay(*system, world, clients);
    fault_table.AddRow(
        {std::to_string(clients), std::to_string(faulted.attempts),
         util::FormatDouble(faulted.max_span_ms, 2),
         std::to_string(faulted.stats.roads_degraded),
         std::to_string(faulted.stats.crowd_retries),
         std::to_string(faulted.total_spent)});
    if (clients == 4) {
      DumpArtifact("bench_fault_storm_stats.json", faulted.stats_json + "\n");
    }
  }
  fault_table.Print();

  // A fully sampled pass (every query traced) exports the Chrome trace and
  // the Prometheus exposition — the CI smoke artifacts. The ring is sized
  // to the day, so the export must cover every query.
  std::printf("\ntracing the 1-client fault storm at sample rate 1.0...\n");
  const FaultedResult traced = ReplayFaultedDay(*system, world, 1, 1.0);
  CROWDRTSE_CHECK(traced.traces_collected == traced.attempts);
  DumpArtifact("bench_fault_storm_trace.json", traced.chrome_trace);
  DumpArtifact("bench_fault_storm_metrics.prom", traced.prometheus);
  std::printf("slowest traced queries:\n%s",
              traced.slow_query_report.c_str());

  // Same seed, fresh engine: the faulted day must replay bit-identically.
  std::printf("replaying the 1-client fault storm for determinism...\n");
  const FaultedResult a = ReplayFaultedDay(*system, world, 1);
  const FaultedResult b = ReplayFaultedDay(*system, world, 1);
  CROWDRTSE_CHECK(a.speeds_trace.size() == b.speeds_trace.size());
  for (size_t i = 0; i < a.speeds_trace.size(); ++i) {
    CROWDRTSE_CHECK(a.speeds_trace[i] == b.speeds_trace[i]);  // bitwise
  }
  CROWDRTSE_CHECK(a.degraded_trace == b.degraded_trace);
  CROWDRTSE_CHECK(a.total_spent == b.total_spent);
  // Tracing must be an observer, not a participant: the fully sampled pass
  // above served the same day and must have produced the same answers.
  CROWDRTSE_CHECK(traced.speeds_trace == a.speeds_trace);
  CROWDRTSE_CHECK(traced.degraded_trace == a.degraded_trace);
  std::printf("replay OK: %zu answers bit-identical, %zu degraded roads, "
              "max span %.2f ms\n",
              a.speeds_trace.size(), a.degraded_trace.size(),
              a.max_span_ms);
}

}  // namespace
}  // namespace crowdrtse::bench

int main() {
  crowdrtse::bench::Run();
  return 0;
}
