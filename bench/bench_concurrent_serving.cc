// Concurrent-serving load driver: N client threads replay a day of
// realtime-speed queries against one shared QueryEngine and report QPS and
// tail latency per thread count. The replay walks the day in slot waves —
// within a wave every client fires its queries concurrently (atomic query
// ids, reservation ledger, leased propagators); between waves the worker
// population advances one slot, exactly the quiescence contract the engine
// documents for WorkerRegistry::AdvanceSlot.
//
// Expected shape: ledger spend never exceeds the campaign budget no matter
// the thread count, every query lands in exactly one outcome counter, and
// the per-phase p50/p95/p99 report shows OCS dominating the tail (the
// paper's Fig. 4 shape). Throughput scaling with threads is bounded by the
// machine's core count — on a single-core container the win is that
// concurrency is *safe*, not faster.
//
// Observability: the driver also dumps machine-readable artifacts next to
// the binary — EngineStats::ReportJson() for the 8-client serving pass and
// the fault storm (so BENCH_*.json trajectories can track serve-path
// counters), plus a fully sampled fault-storm pass that exports the Chrome
// trace and the Prometheus exposition for CI upload.
//
// The final section goes through the wire: an open-loop Poisson load
// driver fires pipelined binary frames at the network front-end (DESIGN.md
// §6) against the paper's 607-road world, checks that offered load beyond
// the admission queue's hard capacity sheds through the degradation ladder
// with zero failed queries and zero silent drops while sustaining >= 1k
// answered queries/sec, verifies coalesced responses bit-identical to a
// single-client replay, and persists BENCH_serving.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "semi_synthetic.h"
#include "crowd/fault_plan.h"
#include "eval/table_printer.h"
#include "net/frame.h"
#include "net/http.h"
#include "net/json.h"
#include "net/socket.h"
#include "obs/flight_recorder.h"
#include "server/budget_ledger.h"
#include "server/frontend.h"
#include "server/query_engine.h"
#include "server/worker_registry.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crowdrtse::bench {
namespace {

constexpr int kSlotStride = 8;       // every 40 minutes of the day
constexpr int kQueriesPerClientPerWave = 2;
constexpr int kQuerySize = 20;

/// Writes a bench artifact next to the binary; a failure is loud but not
/// fatal (a read-only working directory should not kill the bench).
void DumpArtifact(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::printf("WARNING: could not write %s\n", path.c_str());
    return;
  }
  std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

struct LoadResult {
  int attempts = 0;
  double wall_seconds = 0.0;
  util::metrics::LatencySnapshot client_latency;
  server::EngineStats stats;
  std::string ledger_report;
  /// EngineStats::ReportJson() — the serve-path counters as one JSON
  /// object, dumped for BENCH_*.json trajectories.
  std::string stats_json;
  int64_t total_spent = 0;
};

LoadResult ReplayDay(core::CrowdRtse& system, const SemiSyntheticWorld& world,
                     int num_clients) {
  server::WorkerRegistryOptions registry_options;
  registry_options.num_workers = world.network.num_roads() * 3;
  server::WorkerRegistry registry(world.network, registry_options, 5);
  const crowd::CostModel costs =
      crowd::CostModel::Constant(world.network.num_roads(), 2);
  // Finite campaign sized so the day fits; the invariant that spend stays
  // under it is checked below regardless.
  const int64_t campaign_budget = 1'000'000;
  server::BudgetLedger ledger(campaign_budget, /*per_query_cap=*/30);
  crowd::CrowdSimulator crowd_sim({}, util::Rng(9));
  server::QueryEngine::Options engine_options;
  engine_options.propagator_pool_size = num_clients;
  server::QueryEngine engine(system, registry, ledger, costs, crowd_sim,
                             engine_options);

  // Each client monitors its own district all day (distinct query sets).
  std::vector<std::vector<graph::RoadId>> districts;
  for (int c = 0; c < num_clients; ++c) {
    districts.push_back(
        MakeQuery(world, kQuerySize, 100 + static_cast<uint64_t>(c)));
  }

  util::metrics::LatencyHistogram client_latency;
  LoadResult result;
  util::Timer wall;
  for (int slot = 0; slot < traffic::kSlotsPerDay; slot += kSlotStride) {
    std::vector<std::thread> clients;
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        for (int q = 0; q < kQueriesPerClientPerWave; ++q) {
          server::QueryRequest request;
          request.slot = slot;
          request.queried = districts[static_cast<size_t>(c)];
          util::Timer timer;
          const auto response = engine.Serve(request, world.truth);
          client_latency.Record(timer.ElapsedMillis());
          CROWDRTSE_CHECK(response.ok());
        }
      });
    }
    for (std::thread& c : clients) c.join();
    // Quiesced between waves: safe to move the worker population.
    registry.AdvanceSlot();
  }
  result.wall_seconds = wall.ElapsedSeconds();
  result.attempts = (traffic::kSlotsPerDay / kSlotStride) * num_clients *
                    kQueriesPerClientPerWave;
  result.client_latency = client_latency.Snapshot();
  result.stats = engine.stats();
  result.ledger_report = ledger.Report();
  result.stats_json = result.stats.ReportJson();
  result.total_spent = ledger.total_spent();

  // The tentpole invariants, enforced on every run of the driver.
  CROWDRTSE_CHECK(result.total_spent <= campaign_budget);
  CROWDRTSE_CHECK(ledger.reserved_outstanding() == 0);
  CROWDRTSE_CHECK(result.stats.queries_served +
                      result.stats.queries_rejected +
                      result.stats.queries_failed ==
                  result.attempts);
  return result;
}

struct FaultedResult {
  int attempts = 0;
  double max_span_ms = 0.0;
  server::EngineStats stats;
  int64_t total_spent = 0;
  /// Single-client runs record every answer and degraded set in serve
  /// order, for the bitwise replay check.
  std::vector<double> speeds_trace;
  std::vector<graph::RoadId> degraded_trace;
  /// Rendered observability artifacts (stats JSON always; the trace and
  /// Prometheus dumps only when the pass ran with sampling on).
  std::string stats_json;
  std::string prometheus;
  std::string chrome_trace;
  std::string slow_query_report;
  int64_t traces_collected = 0;
};

/// Fault-storm replay: the same day under an injected 30% drop + 20% delay
/// FaultPlan, served by the fault-tolerant dispatch path on a SimClock (so
/// deadline waits and retries cost zero wall time). The invariants the
/// degradation ladder promises are CHECKed on every query: nothing fails,
/// and every round resolves inside DispatchOptions::MaxRoundSpanMs().
/// `trace_sample_rate` > 0 turns on per-query tracing with a ring sized to
/// hold the whole day, so the export covers every sampled query.
FaultedResult ReplayFaultedDay(core::CrowdRtse& system,
                               const SemiSyntheticWorld& world,
                               int num_clients,
                               double trace_sample_rate = 0.0) {
  server::WorkerRegistryOptions registry_options;
  registry_options.num_workers = world.network.num_roads() * 3;
  server::WorkerRegistry registry(world.network, registry_options, 5);
  const crowd::CostModel costs =
      crowd::CostModel::Constant(world.network.num_roads(), 2);
  server::BudgetLedger ledger(1'000'000, /*per_query_cap=*/30);
  crowd::CrowdSimulator crowd_sim({}, util::Rng(9));
  util::SimClock clock;
  server::QueryEngine::Options engine_options;
  engine_options.propagator_pool_size = num_clients;
  engine_options.fault_tolerant_dispatch = true;
  engine_options.clock = &clock;
  crowd::FaultSpec storm;
  storm.drop_rate = 0.3;
  storm.delay_rate = 0.2;
  engine_options.fault_plan = crowd::FaultPlan(storm, /*seed=*/2026);
  engine_options.trace_sample_rate = trace_sample_rate;
  engine_options.trace_ring_size = (traffic::kSlotsPerDay / kSlotStride) *
                                   num_clients * kQueriesPerClientPerWave;
  server::QueryEngine engine(system, registry, ledger, costs, crowd_sim,
                             engine_options);

  std::vector<std::vector<graph::RoadId>> districts;
  for (int c = 0; c < num_clients; ++c) {
    districts.push_back(
        MakeQuery(world, kQuerySize, 100 + static_cast<uint64_t>(c)));
  }
  const double span_budget_ms = engine_options.dispatch.MaxRoundSpanMs();

  FaultedResult result;
  std::mutex merge_mutex;
  for (int slot = 0; slot < traffic::kSlotsPerDay; slot += kSlotStride) {
    std::vector<std::thread> clients;
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        for (int q = 0; q < kQueriesPerClientPerWave; ++q) {
          server::QueryRequest request;
          request.slot = slot;
          request.queried = districts[static_cast<size_t>(c)];
          const auto response = engine.Serve(request, world.truth);
          // Zero failed queries under the storm: faults degrade roads,
          // never the query.
          CROWDRTSE_CHECK(response.ok());
          CROWDRTSE_CHECK(response->dispatch_span_ms <= span_budget_ms);
          std::lock_guard<std::mutex> lock(merge_mutex);
          result.max_span_ms =
              std::max(result.max_span_ms, response->dispatch_span_ms);
          if (num_clients == 1) {
            result.speeds_trace.insert(result.speeds_trace.end(),
                                       response->queried_speeds.begin(),
                                       response->queried_speeds.end());
            result.degraded_trace.insert(result.degraded_trace.end(),
                                         response->degraded_roads.begin(),
                                         response->degraded_roads.end());
          }
        }
      });
    }
    for (std::thread& c : clients) c.join();
    registry.AdvanceSlot();
  }
  result.attempts = (traffic::kSlotsPerDay / kSlotStride) * num_clients *
                    kQueriesPerClientPerWave;
  result.stats = engine.stats();
  result.total_spent = ledger.total_spent();
  result.stats_json = result.stats.ReportJson();
  result.traces_collected = engine.traces().collected();
  if (trace_sample_rate > 0.0) {
    result.prometheus = engine.metrics().RenderPrometheus();
    result.chrome_trace = engine.traces().ChromeTraceJson();
    result.slow_query_report = engine.traces().SlowQueryReport();
  }
  CROWDRTSE_CHECK(result.stats.queries_failed == 0);
  CROWDRTSE_CHECK(result.stats.queries_served == result.attempts);
  return result;
}

// ---------------------------------------------------------------------------
// Socket-level serving: the network front-end under an open-loop load.

/// A serving stack with calibrated (bias 1) zero-noise workers, so a given
/// request always produces the same speeds — what the coalescing
/// bit-identity check relies on. The load numbers are unaffected: the
/// pipeline does exactly the same work either way.
struct NoiselessStack {
  std::unique_ptr<server::WorkerRegistry> registry;
  std::unique_ptr<server::BudgetLedger> ledger;
  std::unique_ptr<crowd::CrowdSimulator> crowd_sim;
  crowd::CostModel costs;
  std::unique_ptr<server::QueryEngine> engine;
};

NoiselessStack MakeNoiselessStack(core::CrowdRtse& system,
                                  const SemiSyntheticWorld& world,
                                  int pool_size) {
  NoiselessStack stack;
  server::WorkerRegistryOptions registry_options;
  registry_options.num_workers = world.network.num_roads() * 3;
  registry_options.min_bias = 1.0;
  registry_options.max_bias = 1.0;
  registry_options.min_noise_kmh = 0.0;
  registry_options.max_noise_kmh = 0.0;
  stack.registry = std::make_unique<server::WorkerRegistry>(
      world.network, registry_options, 5);
  stack.costs = crowd::CostModel::Constant(world.network.num_roads(), 2);
  stack.ledger = std::make_unique<server::BudgetLedger>(
      /*total=*/-1, /*per_query_cap=*/20);
  crowd::CrowdSimOptions crowd_options;
  crowd_options.min_bias = 1.0;
  crowd_options.max_bias = 1.0;
  crowd_options.min_noise_kmh = 0.0;
  crowd_options.max_noise_kmh = 0.0;
  stack.crowd_sim =
      std::make_unique<crowd::CrowdSimulator>(crowd_options, util::Rng(9));
  server::QueryEngine::Options engine_options;
  engine_options.propagator_pool_size = pool_size;
  stack.engine = std::make_unique<server::QueryEngine>(
      system, *stack.registry, *stack.ledger, stack.costs, *stack.crowd_sim,
      engine_options);
  return stack;
}

std::string RoadsJson(const std::vector<graph::RoadId>& roads) {
  std::string out = "[";
  for (size_t i = 0; i < roads.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(roads[i]);
  }
  return out + "]";
}

std::string QueryJson(int64_t id, int slot,
                      const std::vector<graph::RoadId>& roads) {
  return "{\"id\":" + std::to_string(id) +
         ",\"slot\":" + std::to_string(slot) +
         ",\"roads\":" + RoadsJson(roads) + "}";
}

struct OpenLoopResult {
  int attempts = 0;
  int ok = 0;
  int rejected = 0;
  int failed = 0;  // "error" statuses — the criterion says zero
  int shed_none = 0;
  int shed_budget_cap = 0;
  int shed_fallback = 0;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double wall_seconds = 0.0;
  util::metrics::LatencySnapshot latency;
  server::FrontendStats frontend_stats;
};

/// Open-loop driver: arrivals follow a seeded Poisson process at
/// `offered_qps`, fired as pipelined binary frames over `num_connections`
/// sockets no matter how fast responses come back — the server cannot slow
/// the arrival process down, which is exactly what makes the admission
/// ladder engage. Each connection pairs a sender thread (sleeps to its
/// arrival times) with a reader thread (matches responses back by id, since
/// workers complete out of order).
OpenLoopResult DriveOpenLoop(server::Frontend& frontend,
                             const SemiSyntheticWorld& world,
                             double offered_qps, int total_queries,
                             int num_connections, int slot) {
  using SteadyClock = std::chrono::steady_clock;
  // Pre-generated schedule: exponential inter-arrivals, fixed seed.
  util::Rng rng(777);
  std::vector<double> arrival_s(static_cast<size_t>(total_queries));
  double t = 0.0;
  for (double& a : arrival_s) {
    t += -std::log(1.0 - rng.UniformDouble()) / offered_qps;
    a = t;
  }
  // A small pool of recurring road sets: realistic clients monitor fixed
  // districts, and the repeats give the coalescer something to merge.
  std::vector<std::vector<graph::RoadId>> road_pool;
  for (int i = 0; i < 16; ++i) {
    road_pool.push_back(
        MakeQuery(world, kQuerySize, 9000 + static_cast<uint64_t>(i)));
  }

  struct Conn {
    net::Fd fd;
    std::vector<int> query_ids;  // global indices this connection carries
    std::mutex mutex;
    std::map<int64_t, SteadyClock::time_point> sent;
  };
  std::vector<std::unique_ptr<Conn>> conns;
  for (int c = 0; c < num_connections; ++c) {
    auto conn = std::make_unique<Conn>();
    auto fd = net::ConnectLocal(frontend.port());
    CROWDRTSE_CHECK(fd.ok());
    conn->fd = std::move(*fd);
    conns.push_back(std::move(conn));
  }
  for (int i = 0; i < total_queries; ++i) {
    conns[static_cast<size_t>(i % num_connections)]->query_ids.push_back(i);
  }

  util::metrics::LatencyHistogram latency;
  std::atomic<int> ok{0}, rejected{0}, failed{0};
  std::atomic<int> shed_none{0}, shed_budget_cap{0}, shed_fallback{0};
  const SteadyClock::time_point start = SteadyClock::now();

  std::vector<std::thread> threads;
  for (auto& conn_ptr : conns) {
    Conn* conn = conn_ptr.get();
    threads.emplace_back([&, conn] {  // sender
      for (int i : conn->query_ids) {
        const auto deadline =
            start + std::chrono::duration_cast<SteadyClock::duration>(
                        std::chrono::duration<double>(
                            arrival_s[static_cast<size_t>(i)]));
        std::this_thread::sleep_until(deadline);
        const std::string frame = net::EncodeFrame(QueryJson(
            i, slot, road_pool[static_cast<size_t>(i) % road_pool.size()]));
        {
          std::lock_guard<std::mutex> lock(conn->mutex);
          conn->sent[i] = SteadyClock::now();
        }
        CROWDRTSE_CHECK(net::WriteAll(conn->fd.get(), frame).ok());
      }
    });
    threads.emplace_back([&, conn] {  // reader
      for (size_t answered = 0; answered < conn->query_ids.size();) {
        std::string header, payload;
        CROWDRTSE_CHECK(
            net::ReadExact(conn->fd.get(), net::kFrameHeaderBytes, &header)
                .ok());
        uint32_t magic = 0, length = 0;
        std::memcpy(&magic, header.data(), 4);
        std::memcpy(&length, header.data() + 4, 4);
        CROWDRTSE_CHECK(magic == net::kFrameMagic);
        CROWDRTSE_CHECK(net::ReadExact(conn->fd.get(), length, &payload).ok());
        const SteadyClock::time_point now = SteadyClock::now();
        const auto doc = net::json::Parse(payload);
        CROWDRTSE_CHECK(doc.ok());
        const int64_t id = *doc->Find("id")->AsInt();
        {
          std::lock_guard<std::mutex> lock(conn->mutex);
          const auto it = conn->sent.find(id);
          CROWDRTSE_CHECK(it != conn->sent.end());
          latency.Record(std::chrono::duration<double, std::milli>(
                             now - it->second)
                             .count());
          conn->sent.erase(it);
        }
        const std::string status = doc->Find("status")->AsString();
        if (status == "ok") {
          ++ok;
          const std::string shed = doc->Find("shed")->AsString();
          if (shed == "none") ++shed_none;
          if (shed == "budget_cap") ++shed_budget_cap;
          if (shed == "periodic_fallback") ++shed_fallback;
        } else if (status == "rejected") {
          ++rejected;
        } else {
          ++failed;
        }
        ++answered;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  OpenLoopResult result;
  result.wall_seconds =
      std::chrono::duration<double>(SteadyClock::now() - start).count();
  result.attempts = total_queries;
  result.ok = ok.load();
  result.rejected = rejected.load();
  result.failed = failed.load();
  result.shed_none = shed_none.load();
  result.shed_budget_cap = shed_budget_cap.load();
  result.shed_fallback = shed_fallback.load();
  result.offered_qps = offered_qps;
  result.achieved_qps = total_queries / result.wall_seconds;
  result.latency = latency.Snapshot();
  result.frontend_stats = frontend.stats();
  return result;
}

std::string ServingJson(const OpenLoopResult& r) {
  std::string json = "{";
  json += "\"offered_qps\": " + util::FormatDouble(r.offered_qps, 1);
  json += ", \"achieved_qps\": " + util::FormatDouble(r.achieved_qps, 1);
  json += ", \"queries\": " + std::to_string(r.attempts);
  json += ", \"ok\": " + std::to_string(r.ok);
  json += ", \"rejected\": " + std::to_string(r.rejected);
  json += ", \"failed\": " + std::to_string(r.failed);
  json += ", \"p50_ms\": " + util::FormatDouble(r.latency.p50_ms, 3);
  json += ", \"p95_ms\": " + util::FormatDouble(r.latency.p95_ms, 3);
  json += ", \"p99_ms\": " + util::FormatDouble(r.latency.p99_ms, 3);
  json += ", \"shed_none\": " + std::to_string(r.shed_none);
  json += ", \"shed_budget_cap\": " + std::to_string(r.shed_budget_cap);
  json += ", \"shed_periodic_fallback\": " + std::to_string(r.shed_fallback);
  json += ", \"coalesce_leads\": " +
          std::to_string(r.frontend_stats.coalesce_leads);
  json += ", \"coalesce_joins\": " +
          std::to_string(r.frontend_stats.coalesce_joins);
  json += ", \"admission_rejected\": " +
          std::to_string(r.frontend_stats.admission.rejected);
  json += ", \"peak_queue_depth\": " +
          std::to_string(r.frontend_stats.admission.peak_depth);
  json += "}";
  return json;
}

/// Lockstep HTTP POST /query — the coalescing check goes over HTTP so both
/// wire protocols see load in this bench.
std::string PostQuery(uint16_t port, const std::string& body) {
  auto fd = net::ConnectLocal(port);
  CROWDRTSE_CHECK(fd.ok());
  const std::string wire =
      "POST /query HTTP/1.1\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  CROWDRTSE_CHECK(net::WriteAll(fd->get(), wire).ok());
  int status = 0;
  std::string response;
  CROWDRTSE_CHECK(net::ReadHttpResponse(fd->get(), &status, &response).ok());
  CROWDRTSE_CHECK(status == 200);
  return response;
}

/// The answer payload a client actually cares about, in canonical JSON, so
/// two responses can be compared for bitwise equality regardless of the
/// metadata (query_id, coalesced flag) that legitimately differs.
std::string AnswerFingerprint(const std::string& response_body) {
  const auto doc = net::json::Parse(response_body);
  CROWDRTSE_CHECK(doc.ok());
  CROWDRTSE_CHECK(doc->Find("status")->AsString() == "ok");
  CROWDRTSE_CHECK(doc->Find("shed")->AsString() == "none");
  return doc->Find("speeds")->Dump() + "|" + doc->Find("probed")->Dump() +
         "|" + doc->Find("granted_budget")->Dump() + "|" +
         doc->Find("paid")->Dump();
}

void RunSocketServing() {
  std::printf("\n=== Socket serving — open-loop Poisson load, 607-road"
              " world ===\n");
  WorldOptions options;  // the paper's §VII network size
  options.num_roads = 607;
  options.num_days = 10;
  const SemiSyntheticWorld world = BuildWorld(options);
  auto system =
      core::CrowdRtse::BuildOffline(world.network, world.history, {});
  CROWDRTSE_CHECK(system.ok());
  constexpr int kSlot = 100;
  CROWDRTSE_CHECK(system->CorrelationsFor(kSlot).ok());  // warm, like prod

  // --- Coalescing bit-identity: concurrent identical queries through the
  // coalescing front-end, then an uncoalesced single-client replay.
  {
    NoiselessStack stack = MakeNoiselessStack(*system, world, 4);
    server::FrontendOptions frontend_options;
    frontend_options.num_workers = 4;
    server::Frontend frontend(*stack.engine, world.truth, frontend_options);
    CROWDRTSE_CHECK(frontend.Start().ok());
    const std::vector<graph::RoadId> roads = MakeQuery(world, kQuerySize, 42);
    constexpr int kClients = 8;
    std::vector<std::string> fingerprints(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        fingerprints[static_cast<size_t>(c)] = AnswerFingerprint(
            PostQuery(frontend.port(), QueryJson(c, kSlot, roads)));
      });
    }
    for (std::thread& c : clients) c.join();
    // Sequential replay of the same request cannot coalesce with anything.
    const std::string replay = AnswerFingerprint(
        PostQuery(frontend.port(), QueryJson(99, kSlot, roads)));
    for (const std::string& fingerprint : fingerprints) {
      CROWDRTSE_CHECK(fingerprint == replay);  // bitwise, via canonical JSON
    }
    const server::FrontendStats stats = frontend.stats();
    std::printf("coalescing: %d concurrent + 1 replay bit-identical "
                "(%lld leads, %lld joins)\n",
                kClients, static_cast<long long>(stats.coalesce_leads),
                static_cast<long long>(stats.coalesce_joins));
    frontend.Shutdown();
  }

  // --- The open-loop load run: offered rate well beyond what full-service
  // serving sustains, admission sized so the ladder's every rung is in
  // play. hard_capacity = 2 * capacity (the default derivation), so this
  // drives the queue to twice its capacity by construction.
  NoiselessStack stack = MakeNoiselessStack(*system, world, 4);
  server::FrontendOptions frontend_options;
  frontend_options.num_workers = 4;
  frontend_options.admission.capacity = 32;
  server::Frontend frontend(*stack.engine, world.truth, frontend_options);
  CROWDRTSE_CHECK(frontend.Start().ok());

  constexpr double kOfferedQps = 1250.0;
  constexpr int kTotalQueries = 5000;
  const OpenLoopResult result = DriveOpenLoop(
      frontend, world, kOfferedQps, kTotalQueries, /*num_connections=*/8,
      kSlot);
  frontend.Shutdown();

  eval::TablePrinter table({"offered QPS", "achieved QPS", "queries", "ok",
                            "rejected", "p50 ms", "p95 ms", "p99 ms"});
  table.AddRow({util::FormatDouble(result.offered_qps, 0),
                util::FormatDouble(result.achieved_qps, 1),
                std::to_string(result.attempts), std::to_string(result.ok),
                std::to_string(result.rejected),
                util::FormatDouble(result.latency.p50_ms, 2),
                util::FormatDouble(result.latency.p95_ms, 2),
                util::FormatDouble(result.latency.p99_ms, 2)});
  table.Print();
  std::printf("shed ladder: %d full, %d budget-capped, %d fallback, "
              "%d rejected (peak depth %lld)\n",
              result.shed_none, result.shed_budget_cap, result.shed_fallback,
              result.rejected,
              static_cast<long long>(
                  result.frontend_stats.admission.peak_depth));
  DumpArtifact("BENCH_serving.json", ServingJson(result) + "\n");

  // The acceptance criteria, enforced on every run of the driver.
  CROWDRTSE_CHECK(result.failed == 0);  // zero failed queries
  CROWDRTSE_CHECK(result.ok + result.rejected == result.attempts);  // no
  // silent drops: every frame got exactly one explicit response
  CROWDRTSE_CHECK(result.shed_none + result.shed_budget_cap +
                      result.shed_fallback ==
                  result.ok);
  CROWDRTSE_CHECK(result.shed_budget_cap + result.shed_fallback > 0);
  CROWDRTSE_CHECK(result.achieved_qps >= 1000.0);
  CROWDRTSE_CHECK(stack.engine->stats().queries_failed == 0);
  CROWDRTSE_CHECK(stack.ledger->reserved_outstanding() == 0);
  std::printf("open loop OK: %.0f answered QPS, every query accounted\n",
              result.achieved_qps);
}

void Run() {
  std::printf("=== Concurrent serving bench — a day of queries, N clients"
              " ===\n");
  WorldOptions options;
  options.num_roads = 300;
  options.num_days = 10;
  const SemiSyntheticWorld world = BuildWorld(options);
  core::CrowdRtseConfig config;
  config.gsp.num_threads = 2;  // parallel GSP: the non-reentrant config
  auto system =
      core::CrowdRtse::BuildOffline(world.network, world.history, config);
  CROWDRTSE_CHECK(system.ok());
  // Warm the per-slot correlation cache once, as a deployed service would
  // during rollout, so every thread count measures serving rather than the
  // one-time offline closure computation.
  std::printf("warming correlation closures for %d slots...\n",
              traffic::kSlotsPerDay / kSlotStride);
  for (int slot = 0; slot < traffic::kSlotsPerDay; slot += kSlotStride) {
    CROWDRTSE_CHECK(system->CorrelationsFor(slot).ok());
  }

  eval::TablePrinter table({"clients", "queries", "QPS", "client p50 ms",
                            "client p95 ms", "client p99 ms", "spend"});
  for (int clients : {1, 2, 4, 8}) {
    const LoadResult result = ReplayDay(*system, world, clients);
    table.AddRow({std::to_string(clients), std::to_string(result.attempts),
                  util::FormatDouble(static_cast<double>(result.attempts) /
                                         result.wall_seconds,
                                     1),
                  util::FormatDouble(result.client_latency.p50_ms, 2),
                  util::FormatDouble(result.client_latency.p95_ms, 2),
                  util::FormatDouble(result.client_latency.p99_ms, 2),
                  std::to_string(result.total_spent)});
    if (clients == 8) {
      std::printf("\nper-phase latency at 8 clients:\n%s\n%s\n",
                  result.stats.Report().c_str(),
                  result.ledger_report.c_str());
      DumpArtifact("bench_concurrent_serving_stats.json",
                   result.stats_json + "\n");
    }
  }
  table.Print();

  std::printf("\n=== Fault storm — 30%% drop + 20%% delay, SimClock ===\n");
  eval::TablePrinter fault_table({"clients", "queries", "max span ms",
                                  "roads degraded", "retries", "spend"});
  for (int clients : {1, 4}) {
    const FaultedResult faulted = ReplayFaultedDay(*system, world, clients);
    fault_table.AddRow(
        {std::to_string(clients), std::to_string(faulted.attempts),
         util::FormatDouble(faulted.max_span_ms, 2),
         std::to_string(faulted.stats.roads_degraded),
         std::to_string(faulted.stats.crowd_retries),
         std::to_string(faulted.total_spent)});
    if (clients == 4) {
      DumpArtifact("bench_fault_storm_stats.json", faulted.stats_json + "\n");
    }
  }
  fault_table.Print();

  // A fully sampled pass (every query traced) exports the Chrome trace and
  // the Prometheus exposition — the CI smoke artifacts. The ring is sized
  // to the day, so the export must cover every query.
  std::printf("\ntracing the 1-client fault storm at sample rate 1.0...\n");
  const FaultedResult traced = ReplayFaultedDay(*system, world, 1, 1.0);
  CROWDRTSE_CHECK(traced.traces_collected == traced.attempts);
  DumpArtifact("bench_fault_storm_trace.json", traced.chrome_trace);
  DumpArtifact("bench_fault_storm_metrics.prom", traced.prometheus);
  std::printf("slowest traced queries:\n%s",
              traced.slow_query_report.c_str());

  // Same seed, fresh engine: the faulted day must replay bit-identically.
  std::printf("replaying the 1-client fault storm for determinism...\n");
  const FaultedResult a = ReplayFaultedDay(*system, world, 1);
  const FaultedResult b = ReplayFaultedDay(*system, world, 1);
  CROWDRTSE_CHECK(a.speeds_trace.size() == b.speeds_trace.size());
  for (size_t i = 0; i < a.speeds_trace.size(); ++i) {
    CROWDRTSE_CHECK(a.speeds_trace[i] == b.speeds_trace[i]);  // bitwise
  }
  CROWDRTSE_CHECK(a.degraded_trace == b.degraded_trace);
  CROWDRTSE_CHECK(a.total_spent == b.total_spent);
  // Tracing must be an observer, not a participant: the fully sampled pass
  // above served the same day and must have produced the same answers.
  CROWDRTSE_CHECK(traced.speeds_trace == a.speeds_trace);
  CROWDRTSE_CHECK(traced.degraded_trace == a.degraded_trace);
  std::printf("replay OK: %zu answers bit-identical, %zu degraded roads, "
              "max span %.2f ms\n",
              a.speeds_trace.size(), a.degraded_trace.size(),
              a.max_span_ms);

  // The flight recorder's overhead contract (DESIGN.md §10): recording
  // must be an observer — answers bit-identical with the recorder on and
  // off — and must stay within 2% of the recorder-off wall time.
  // Interleaved on/off reps, min-of-3 each, so machine noise (frequency
  // drift, a background task) hits both sides alike.
  std::printf("\n=== Flight recorder — on vs off, interleaved min-of-3"
              " ===\n");
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  const bool recorder_was_enabled = recorder.enabled();
  double best_on_seconds = 0.0;
  double best_off_seconds = 0.0;
  FaultedResult recorder_on;
  FaultedResult recorder_off;
  for (int rep = 0; rep < 3; ++rep) {
    recorder.SetEnabled(true);
    auto start = std::chrono::steady_clock::now();
    FaultedResult on = ReplayFaultedDay(*system, world, 1);
    const double on_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    recorder.SetEnabled(false);
    start = std::chrono::steady_clock::now();
    FaultedResult off = ReplayFaultedDay(*system, world, 1);
    const double off_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (rep == 0 || on_seconds < best_on_seconds) {
      best_on_seconds = on_seconds;
    }
    if (rep == 0 || off_seconds < best_off_seconds) {
      best_off_seconds = off_seconds;
    }
    recorder_on = std::move(on);
    recorder_off = std::move(off);
  }
  recorder.SetEnabled(recorder_was_enabled);
  CROWDRTSE_CHECK(recorder_on.speeds_trace == recorder_off.speeds_trace);
  CROWDRTSE_CHECK(recorder_on.speeds_trace == a.speeds_trace);  // bitwise
  CROWDRTSE_CHECK(recorder_on.degraded_trace == recorder_off.degraded_trace);
  CROWDRTSE_CHECK(recorder_on.total_spent == recorder_off.total_spent);
  const double overhead =
      best_off_seconds > 0.0
          ? (best_on_seconds - best_off_seconds) / best_off_seconds
          : 0.0;
  std::printf("recorder on %.3fs  off %.3fs  overhead %+.2f%%  "
              "(%lld events recorded)\n",
              best_on_seconds, best_off_seconds, overhead * 100.0,
              static_cast<long long>(recorder.recorded()));
  // 2% relative plus 10 ms absolute slack so sub-second runs on noisy CI
  // machines cannot fail on scheduler jitter alone.
  CROWDRTSE_CHECK(best_on_seconds <= best_off_seconds * 1.02 + 0.010);

  RunSocketServing();
}

}  // namespace
}  // namespace crowdrtse::bench

int main() {
  crowdrtse::bench::Run();
  return 0;
}
