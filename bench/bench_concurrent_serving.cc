// Concurrent-serving load driver: N client threads replay a day of
// realtime-speed queries against one shared QueryEngine and report QPS and
// tail latency per thread count. The replay walks the day in slot waves —
// within a wave every client fires its queries concurrently (atomic query
// ids, reservation ledger, leased propagators); between waves the worker
// population advances one slot, exactly the quiescence contract the engine
// documents for WorkerRegistry::AdvanceSlot.
//
// Expected shape: ledger spend never exceeds the campaign budget no matter
// the thread count, every query lands in exactly one outcome counter, and
// the per-phase p50/p95/p99 report shows OCS dominating the tail (the
// paper's Fig. 4 shape). Throughput scaling with threads is bounded by the
// machine's core count — on a single-core container the win is that
// concurrency is *safe*, not faster.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "semi_synthetic.h"
#include "eval/table_printer.h"
#include "server/budget_ledger.h"
#include "server/query_engine.h"
#include "server/worker_registry.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crowdrtse::bench {
namespace {

constexpr int kSlotStride = 8;       // every 40 minutes of the day
constexpr int kQueriesPerClientPerWave = 2;
constexpr int kQuerySize = 20;

struct LoadResult {
  int attempts = 0;
  double wall_seconds = 0.0;
  util::metrics::LatencySnapshot client_latency;
  server::EngineStats stats;
  std::string ledger_report;
  int64_t total_spent = 0;
};

LoadResult ReplayDay(core::CrowdRtse& system, const SemiSyntheticWorld& world,
                     int num_clients) {
  server::WorkerRegistryOptions registry_options;
  registry_options.num_workers = world.network.num_roads() * 3;
  server::WorkerRegistry registry(world.network, registry_options, 5);
  const crowd::CostModel costs =
      crowd::CostModel::Constant(world.network.num_roads(), 2);
  // Finite campaign sized so the day fits; the invariant that spend stays
  // under it is checked below regardless.
  const int64_t campaign_budget = 1'000'000;
  server::BudgetLedger ledger(campaign_budget, /*per_query_cap=*/30);
  crowd::CrowdSimulator crowd_sim({}, util::Rng(9));
  server::QueryEngine::Options engine_options;
  engine_options.propagator_pool_size = num_clients;
  server::QueryEngine engine(system, registry, ledger, costs, crowd_sim,
                             engine_options);

  // Each client monitors its own district all day (distinct query sets).
  std::vector<std::vector<graph::RoadId>> districts;
  for (int c = 0; c < num_clients; ++c) {
    districts.push_back(
        MakeQuery(world, kQuerySize, 100 + static_cast<uint64_t>(c)));
  }

  util::metrics::LatencyHistogram client_latency;
  LoadResult result;
  util::Timer wall;
  for (int slot = 0; slot < traffic::kSlotsPerDay; slot += kSlotStride) {
    std::vector<std::thread> clients;
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        for (int q = 0; q < kQueriesPerClientPerWave; ++q) {
          server::QueryRequest request;
          request.slot = slot;
          request.queried = districts[static_cast<size_t>(c)];
          util::Timer timer;
          const auto response = engine.Serve(request, world.truth);
          client_latency.Record(timer.ElapsedMillis());
          CROWDRTSE_CHECK(response.ok());
        }
      });
    }
    for (std::thread& c : clients) c.join();
    // Quiesced between waves: safe to move the worker population.
    registry.AdvanceSlot();
  }
  result.wall_seconds = wall.ElapsedSeconds();
  result.attempts = (traffic::kSlotsPerDay / kSlotStride) * num_clients *
                    kQueriesPerClientPerWave;
  result.client_latency = client_latency.Snapshot();
  result.stats = engine.stats();
  result.ledger_report = ledger.Report();
  result.total_spent = ledger.total_spent();

  // The tentpole invariants, enforced on every run of the driver.
  CROWDRTSE_CHECK(result.total_spent <= campaign_budget);
  CROWDRTSE_CHECK(ledger.reserved_outstanding() == 0);
  CROWDRTSE_CHECK(result.stats.queries_served +
                      result.stats.queries_rejected +
                      result.stats.queries_failed ==
                  result.attempts);
  return result;
}

void Run() {
  std::printf("=== Concurrent serving bench — a day of queries, N clients"
              " ===\n");
  WorldOptions options;
  options.num_roads = 300;
  options.num_days = 10;
  const SemiSyntheticWorld world = BuildWorld(options);
  core::CrowdRtseConfig config;
  config.gsp.num_threads = 2;  // parallel GSP: the non-reentrant config
  auto system =
      core::CrowdRtse::BuildOffline(world.network, world.history, config);
  CROWDRTSE_CHECK(system.ok());
  // Warm the per-slot correlation cache once, as a deployed service would
  // during rollout, so every thread count measures serving rather than the
  // one-time offline closure computation.
  std::printf("warming correlation closures for %d slots...\n",
              traffic::kSlotsPerDay / kSlotStride);
  for (int slot = 0; slot < traffic::kSlotsPerDay; slot += kSlotStride) {
    CROWDRTSE_CHECK(system->CorrelationsFor(slot).ok());
  }

  eval::TablePrinter table({"clients", "queries", "QPS", "client p50 ms",
                            "client p95 ms", "client p99 ms", "spend"});
  for (int clients : {1, 2, 4, 8}) {
    const LoadResult result = ReplayDay(*system, world, clients);
    table.AddRow({std::to_string(clients), std::to_string(result.attempts),
                  util::FormatDouble(static_cast<double>(result.attempts) /
                                         result.wall_seconds,
                                     1),
                  util::FormatDouble(result.client_latency.p50_ms, 2),
                  util::FormatDouble(result.client_latency.p95_ms, 2),
                  util::FormatDouble(result.client_latency.p99_ms, 2),
                  std::to_string(result.total_spent)});
    if (clients == 8) {
      std::printf("\nper-phase latency at 8 clients:\n%s\n%s\n",
                  result.stats.Report().c_str(),
                  result.ledger_report.c_str());
    }
  }
  table.Print();
}

}  // namespace
}  // namespace crowdrtse::bench

int main() {
  crowdrtse::bench::Run();
  return 0;
}
