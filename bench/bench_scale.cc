// Metropolitan-scale sharding sweep: one synthetic metro network (60k-600k
// roads), partitioned K ways, served by ShardedEngine under closed-loop
// client load. For each shard count the driver replays the same localized
// query mix and reports answered QPS, so the sweep isolates what sharding
// buys: per-shard worker registries (the O(workers) coverage scan shrinks
// K-fold), per-shard Gamma_R caches, and K independent crowd-phase locks.
//
// Invariants checked every configuration, strict mode additionally gates
// on near-linear scaling:
//   - zero failed queries; served + rejected == attempts (no silent drops);
//   - with the unlimited campaign here, rejected == 0 as well;
//   - the global ledger settles every reservation (outstanding == 0) and
//     its spend equals the sum of per-response payments;
//   - partition balance <= 1.2, every configuration;
//   - strict (default): answered QPS at the largest K >= 3x the K=1 QPS.
//
// Artifacts: BENCH_scale.json (the sweep as one JSON object) next to the
// binary, or wherever --out points.
//
// Flags: --roads=N --shards=1,4 --clients=8 --queries=N --halo=5
//        --out=PATH --no-strict
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "partition/partition.h"
#include "partition/partitioner.h"
#include "server/budget_ledger.h"
#include "server/sharded_engine.h"
#include "traffic/history_store.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crowdrtse::bench {
namespace {

struct Flags {
  int roads = 60000;
  std::vector<int> shards = {1, 4};
  int clients = 8;
  int queries = 1600;
  int halo = 5;
  std::string out = "BENCH_scale.json";
  bool strict = true;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto int_flag = [&arg](const char* name, int* value) {
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        *value = std::atoi(arg.c_str() + prefix.size());
        return true;
      }
      return false;
    };
    if (int_flag("--roads", &flags.roads)) continue;
    if (int_flag("--clients", &flags.clients)) continue;
    if (int_flag("--queries", &flags.queries)) continue;
    if (int_flag("--halo", &flags.halo)) continue;
    if (arg.rfind("--shards=", 0) == 0) {
      flags.shards.clear();
      for (const std::string& part : util::Split(arg.substr(9), ',')) {
        flags.shards.push_back(std::atoi(part.c_str()));
      }
      continue;
    }
    if (arg.rfind("--out=", 0) == 0) {
      flags.out = arg.substr(6);
      continue;
    }
    if (arg == "--no-strict") {
      flags.strict = false;
      continue;
    }
    std::printf("unknown flag: %s\n", arg.c_str());
    std::exit(2);
  }
  CROWDRTSE_CHECK(!flags.shards.empty());
  return flags;
}

constexpr int kSlots = 8;  // a short synthetic day keeps history cheap
constexpr int kDays = 3;
constexpr int kQuerySize = 4;
constexpr int kPerQueryCap = 12;

/// Deterministic synthetic speed field: a west-east congestion gradient
/// with per-slot waves and day-to-day jitter (so moment estimation sees
/// real variance). All values stay comfortably positive.
double SpeedAt(int day, int slot, graph::RoadId road, double x) {
  const double base = 30.0 + 40.0 * x;
  const double wave = 6.0 * std::sin(0.7 * slot + 0.01 * road);
  const double jitter =
      1.5 * (((day * 7 + slot * 3 + road) % 5) - 2);
  return base + wave + jitter;
}

struct SweepPoint {
  int shards = 0;
  double partition_seconds = 0.0;
  double build_seconds = 0.0;
  double wall_seconds = 0.0;
  double answered_qps = 0.0;
  int64_t served = 0;
  int64_t rejected = 0;
  int64_t failed = 0;
  int64_t cross_shard = 0;
  int64_t paid = 0;
  int64_t edge_cut = 0;
  double balance_ratio = 0.0;
};

void DumpArtifact(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::printf("WARNING: could not write %s\n", path.c_str());
    return;
  }
  std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

void Run(const Flags& flags) {
  std::printf("=== bench_scale: %d roads, shards {", flags.roads);
  for (size_t i = 0; i < flags.shards.size(); ++i) {
    std::printf("%s%d", i ? "," : "", flags.shards[i]);
  }
  std::printf("}, %d clients, %d queries ===\n", flags.clients,
              flags.queries);

  graph::MetroNetworkOptions metro;
  metro.num_roads = flags.roads;
  std::vector<std::pair<double, double>> positions;
  util::Timer gen_timer;
  const auto graph = graph::MetroNetwork(metro, &positions);
  CROWDRTSE_CHECK(graph.ok());
  const int n = graph->num_roads();
  std::printf("metro network: %d roads, %d edges (%.2fs)\n", n,
              graph->num_edges(), gen_timer.ElapsedSeconds());

  traffic::HistoryStore history(n, kDays, kSlots);
  traffic::DayMatrix truth(kSlots, n);
  for (int slot = 0; slot < kSlots; ++slot) {
    for (graph::RoadId r = 0; r < n; ++r) {
      const double x = positions[static_cast<size_t>(r)].first;
      for (int day = 0; day < kDays; ++day) {
        history.At(day, slot, r) = SpeedAt(day, slot, r, x);
      }
      truth.At(slot, r) = SpeedAt(kDays, slot, r, x);  // "today"
    }
  }

  core::CrowdRtseConfig config;
  config.correlation_hop_radius = 2;
  config.gsp.hop_limit = 2;
  config.prune_zero_gain_candidates = true;

  const crowd::CostModel costs = crowd::CostModel::Constant(n, 2);
  std::vector<crowd::Worker> workers;
  workers.reserve(static_cast<size_t>(n) * 2);
  crowd::WorkerId next_id = 0;
  for (graph::RoadId r = 0; r < n; ++r) {
    for (int k = 0; k < 2; ++k) {
      crowd::Worker w;
      w.id = next_id++;
      w.road = r;
      w.bias = 1.0;
      w.noise_kmh = 0.0;
      workers.push_back(w);
    }
  }
  crowd::CrowdSimOptions crowd_options;
  crowd_options.min_bias = 1.0;
  crowd_options.max_bias = 1.0;
  crowd_options.min_noise_kmh = 0.0;
  crowd_options.max_noise_kmh = 0.0;
  crowd_options.outlier_rate = 0.0;

  std::vector<SweepPoint> sweep;
  for (const int num_shards : flags.shards) {
    SweepPoint point;
    point.shards = num_shards;

    partition::PartitionerOptions partition_options;
    partition_options.num_shards = num_shards;
    partition_options.halo_radius = flags.halo;
    partition_options.seed = 17;
    util::Timer partition_timer;
    const auto partition =
        partition::PartitionByGeography(*graph, positions,
                                        partition_options);
    CROWDRTSE_CHECK(partition.ok());
    point.partition_seconds = partition_timer.ElapsedSeconds();
    point.edge_cut = partition::EdgeCut(*graph, *partition);
    point.balance_ratio = partition->BalanceRatio();
    CROWDRTSE_CHECK(point.balance_ratio <= 1.2);

    server::BudgetLedger ledger(/*campaign_budget=*/-1, kPerQueryCap);
    server::ShardedEngineOptions engine_options;
    engine_options.engine.propagator_pool_size = flags.clients;
    engine_options.crowd = crowd_options;
    util::Timer build_timer;
    auto engine = server::ShardedEngine::Create(
        *graph, *partition, history, config, costs, workers, ledger, truth,
        engine_options);
    CROWDRTSE_CHECK(engine.ok());
    point.build_seconds = build_timer.ElapsedSeconds();
    std::printf(
        "K=%d: partition %.2fs (cut %lld, balance %.3f), build %.2fs\n",
        num_shards, point.partition_seconds,
        static_cast<long long>(point.edge_cut), point.balance_ratio,
        point.build_seconds);

    // Closed-loop clients replay the same deterministic localized query
    // mix: 4 geographically adjacent roads per query, spread across the
    // whole city, slots rotating through the day.
    std::atomic<int64_t> attempts{0};
    std::atomic<int64_t> total_response_paid{0};
    util::Timer wall;
    std::vector<std::thread> clients;
    const int per_client =
        (flags.queries + flags.clients - 1) / flags.clients;
    for (int c = 0; c < flags.clients; ++c) {
      clients.emplace_back([&, c] {
        const int begin = c * per_client;
        const int end = std::min(flags.queries, begin + per_client);
        for (int q = begin; q < end; ++q) {
          server::QueryRequest request;
          request.slot = q % kSlots;
          const graph::RoadId base = static_cast<graph::RoadId>(
              (static_cast<int64_t>(q) * 9973) %
              static_cast<int64_t>(n - kQuerySize));
          for (int k = 0; k < kQuerySize; ++k) {
            request.queried.push_back(base + k);
          }
          attempts.fetch_add(1, std::memory_order_relaxed);
          const auto response = (*engine)->Serve(request, truth);
          CROWDRTSE_CHECK(response.ok());
          total_response_paid.fetch_add(response->paid,
                                        std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    point.wall_seconds = wall.ElapsedSeconds();

    const server::EngineStats stats = (*engine)->stats();
    point.served = stats.queries_served;
    point.rejected = stats.queries_rejected;
    point.failed = stats.queries_failed;
    point.paid = stats.total_paid;
    point.answered_qps =
        static_cast<double>(point.served) / point.wall_seconds;
    int64_t sub_served = 0;
    for (const server::ShardStats& shard : stats.shards) {
      std::printf("  shard[%d]: served %lld, gamma bytes %lld\n",
                  shard.shard, static_cast<long long>(shard.queries_served),
                  static_cast<long long>(shard.gamma_cache_bytes));
      sub_served += shard.queries_served;
    }
    // Each multi-owner query runs one sub-serve per owner shard, so the
    // sub-serve surplus over router serves counts the extra fan-out groups.
    point.cross_shard = std::max<int64_t>(0, sub_served - point.served);

    // The accounting invariants the sweep certifies at every K.
    CROWDRTSE_CHECK(point.failed == 0);
    CROWDRTSE_CHECK(point.rejected == 0);
    CROWDRTSE_CHECK(point.served + point.rejected == attempts.load());
    CROWDRTSE_CHECK(ledger.reserved_outstanding() == 0);
    CROWDRTSE_CHECK(ledger.total_spent() == total_response_paid.load());
    CROWDRTSE_CHECK(ledger.total_spent() == point.paid);

    std::printf("K=%d: %lld served in %.2fs -> %.1f answered QPS\n",
                num_shards, static_cast<long long>(point.served),
                point.wall_seconds, point.answered_qps);
    (*engine)->Drain();
    sweep.push_back(point);
  }

  double ratio = 0.0;
  const auto base_point =
      std::find_if(sweep.begin(), sweep.end(),
                   [](const SweepPoint& p) { return p.shards == 1; });
  const auto peak_point = std::max_element(
      sweep.begin(), sweep.end(), [](const SweepPoint& a,
                                     const SweepPoint& b) {
        return a.shards < b.shards;
      });
  if (base_point != sweep.end() && peak_point != sweep.end() &&
      peak_point->shards > 1) {
    ratio = peak_point->answered_qps / base_point->answered_qps;
    std::printf("scaling 1 -> %d shards: %.2fx answered QPS\n",
                peak_point->shards, ratio);
  }

  std::string json = "{\n";
  json += "  \"bench\": \"scale\",\n";
  json += "  \"roads\": " + std::to_string(flags.roads) + ",\n";
  json += "  \"clients\": " + std::to_string(flags.clients) + ",\n";
  json += "  \"queries\": " + std::to_string(flags.queries) + ",\n";
  json += "  \"halo_radius\": " + std::to_string(flags.halo) + ",\n";
  json += "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    json += "    {\"shards\": " + std::to_string(p.shards) +
            ", \"partition_seconds\": " +
            util::FormatDouble(p.partition_seconds, 3) +
            ", \"build_seconds\": " +
            util::FormatDouble(p.build_seconds, 3) +
            ", \"edge_cut\": " + std::to_string(p.edge_cut) +
            ", \"balance_ratio\": " +
            util::FormatDouble(p.balance_ratio, 4) +
            ", \"wall_seconds\": " +
            util::FormatDouble(p.wall_seconds, 3) +
            ", \"answered_qps\": " +
            util::FormatDouble(p.answered_qps, 1) +
            ", \"served\": " + std::to_string(p.served) +
            ", \"rejected\": " + std::to_string(p.rejected) +
            ", \"failed\": " + std::to_string(p.failed) +
            ", \"paid\": " + std::to_string(p.paid) + "}";
    json += (i + 1 < sweep.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"qps_ratio_1_to_max\": " + util::FormatDouble(ratio, 3) +
          "\n";
  json += "}\n";
  DumpArtifact(flags.out, json);

  if (flags.strict && ratio > 0.0) {
    CROWDRTSE_CHECK(ratio >= 3.0);
    std::printf("strict scaling gate passed (%.2fx >= 3x)\n", ratio);
  }
}

}  // namespace
}  // namespace crowdrtse::bench

int main(int argc, char** argv) {
  crowdrtse::bench::Run(crowdrtse::bench::ParseFlags(argc, argv));
  return 0;
}
