// Sensitivity studies (extension experiments beyond the paper's §VII):
// how robust is the GSP-vs-baselines ranking when the world gets harder?
//   1. crowd answer noise  — sweep the workers' reading noise;
//   2. accidental variance — sweep the incident rate of the ground truth;
//   3. history length      — sweep the number of offline training days;
//   4. estimator roster    — the two extension baselines (Ridge, kNN-days)
//      against GSP at a fixed budget.
// Runs on a 300-road world to keep the sweep affordable; shapes, not
// absolute numbers, are the output.
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/knn_days.h"
#include "baselines/ridge.h"
#include "core/gsp_estimator.h"
#include "eval/table_printer.h"
#include "quality_harness.h"
#include "util/string_util.h"

namespace crowdrtse::bench {
namespace {

constexpr int kBudget = 40;
constexpr int kQuerySize = 40;
constexpr int kSlot = 99;

/// One evaluation: select with Hybrid, probe with the given noise, run the
/// estimator, return MAPE over the queried roads.
double EvaluateOnce(const SemiSyntheticWorld& world,
                    const baselines::RealtimeEstimator& estimator,
                    const rtf::CorrelationTable& table,
                    const std::vector<graph::RoadId>& queried,
                    double probe_noise_kmh, uint64_t seed) {
  const crowd::CostModel costs =
      crowd::CostModel::Constant(world.network.num_roads(), 2);
  const ocs::OcsProblem problem = MakeProblem(
      world, table, queried, world.all_roads, costs, kSlot, kBudget, 0.92);
  const ocs::OcsSolution selection = ocs::HybridGreedy(problem);
  crowd::CrowdSimOptions sim_options;
  sim_options.min_noise_kmh = probe_noise_kmh;
  sim_options.max_noise_kmh = probe_noise_kmh;
  crowd::CrowdSimulator sim(sim_options, util::Rng(seed));
  auto round = sim.Probe(selection.roads, costs, world.truth, kSlot);
  CROWDRTSE_CHECK(round.ok());
  std::vector<double> probed;
  for (const auto& p : round->probes) probed.push_back(p.probed_kmh);
  auto estimates =
      estimator.EstimateTargets(kSlot, selection.roads, probed, queried);
  CROWDRTSE_CHECK(estimates.ok());
  const auto quality = eval::ComputeQuality(
      *estimates, world.truth.SlotSpeeds(kSlot), queried);
  return quality->mape;
}

void NoiseSweep(const SemiSyntheticWorld& world,
                const rtf::CorrelationTable& table,
                const std::vector<graph::RoadId>& queried) {
  std::printf("\n--- sensitivity 1: crowd answer noise (GSP vs Per) ---\n");
  const core::GspEstimator gsp(world.model, {});
  const baselines::PeriodicEstimator per(world.model);
  eval::TablePrinter t({"noise km/h", "GSP MAPE", "Per MAPE"});
  for (double noise : {0.5, 2.0, 5.0, 10.0, 20.0}) {
    t.AddNumericRow(
        util::FormatDouble(noise, 1),
        {EvaluateOnce(world, gsp, table, queried, noise, 1),
         EvaluateOnce(world, per, table, queried, noise, 1)},
        4);
  }
  t.Print();
  std::printf(
      "(expected: GSP degrades gracefully with probe noise and crosses "
      "Per only when probes become useless)\n");
}

void IncidentSweep() {
  std::printf(
      "\n--- sensitivity 2: incident rate of the ground truth ---\n");
  eval::TablePrinter t(
      {"incidents/road/day", "GSP MAPE", "Per MAPE", "Per/GSP"});
  for (double rate : {0.0, 0.1, 0.25, 0.5}) {
    WorldOptions options;
    options.num_roads = 300;
    options.num_days = 15;
    SemiSyntheticWorld world = BuildWorld(options);
    // Rebuild the ground truth with the requested incident rate.
    traffic::TrafficModelOptions traffic_options;
    traffic_options.num_days = 15;
    traffic_options.incident_rate_per_road_day = rate;
    traffic::TrafficSimulator sim(world.network, traffic_options,
                                  options.seed + 1);
    world.truth = sim.GenerateEvaluationDay();
    const auto table = rtf::CorrelationTable::Compute(world.model, kSlot);
    CROWDRTSE_CHECK(table.ok());
    const auto queried = MakeQuery(world, kQuerySize, 5);
    const core::GspEstimator gsp(world.model, {});
    const baselines::PeriodicEstimator per(world.model);
    const double gsp_mape =
        EvaluateOnce(world, gsp, *table, queried, 1.0, 2);
    const double per_mape =
        EvaluateOnce(world, per, *table, queried, 1.0, 2);
    t.AddNumericRow(util::FormatDouble(rate, 2),
                    {gsp_mape, per_mape, per_mape / gsp_mape}, 4);
  }
  t.Print();
  std::printf(
      "(expected: the GSP advantage widens as accidental variance grows — "
      "the paper's motivation #2)\n");
}

void HistoryLengthSweep() {
  std::printf("\n--- sensitivity 3: offline history length ---\n");
  eval::TablePrinter t({"days", "GSP MAPE", "LASSO-free Per MAPE"});
  for (int days : {3, 7, 15, 30}) {
    WorldOptions options;
    options.num_roads = 300;
    options.num_days = days;
    const SemiSyntheticWorld world = BuildWorld(options);
    const auto table = rtf::CorrelationTable::Compute(world.model, kSlot);
    CROWDRTSE_CHECK(table.ok());
    const auto queried = MakeQuery(world, kQuerySize, 5);
    const core::GspEstimator gsp(world.model, {});
    const baselines::PeriodicEstimator per(world.model);
    t.AddNumericRow(std::to_string(days),
                    {EvaluateOnce(world, gsp, *table, queried, 1.0, 3),
                     EvaluateOnce(world, per, *table, queried, 1.0, 3)},
                    4);
  }
  t.Print();
  std::printf("(expected: both improve with more days; GSP stays ahead)\n");
}

void ExtensionRoster(const SemiSyntheticWorld& world,
                     const rtf::CorrelationTable& table,
                     const std::vector<graph::RoadId>& queried) {
  std::printf(
      "\n--- sensitivity 4: extension baselines at budget %d ---\n",
      kBudget);
  const core::GspEstimator gsp(world.model, {});
  const baselines::PeriodicEstimator per(world.model);
  baselines::RidgeEstimatorOptions ridge_options;
  const baselines::RidgeEstimator ridge(world.network, world.history,
                                        ridge_options);
  const baselines::KnnDaysEstimator knn(world.network, world.history, {});
  eval::TablePrinter t({"estimator", "MAPE"});
  t.AddNumericRow("GSP",
                  {EvaluateOnce(world, gsp, table, queried, 1.0, 4)}, 4);
  t.AddNumericRow("Ridge",
                  {EvaluateOnce(world, ridge, table, queried, 1.0, 4)}, 4);
  t.AddNumericRow("kNN-days",
                  {EvaluateOnce(world, knn, table, queried, 1.0, 4)}, 4);
  t.AddNumericRow("Per",
                  {EvaluateOnce(world, per, table, queried, 1.0, 4)}, 4);
  t.Print();
}

void Run() {
  std::printf("=== Sensitivity benches (extension experiments) ===\n");
  WorldOptions options;
  options.num_roads = 300;
  options.num_days = 15;
  const SemiSyntheticWorld world = BuildWorld(options);
  const auto table = rtf::CorrelationTable::Compute(world.model, kSlot);
  CROWDRTSE_CHECK(table.ok());
  const auto queried = MakeQuery(world, kQuerySize, 5);
  NoiseSweep(world, *table, queried);
  IncidentSweep();
  HistoryLengthSweep();
  ExtensionRoster(world, *table, queried);
}

}  // namespace
}  // namespace crowdrtse::bench

int main() {
  crowdrtse::bench::Run();
  return 0;
}
