#ifndef CROWDRTSE_BENCH_SEMI_SYNTHETIC_H_
#define CROWDRTSE_BENCH_SEMI_SYNTHETIC_H_

// Shared experiment world for the bench harness: the semi-synthetic
// Hong-Kong-scale setting of the paper's §VII (607 monitored roads,
// 288 slots x 30 days of history = 5,244,480 records, workers covering all
// roads). Every bench binary rebuilds this deterministically, so printed
// series are reproducible run to run.

#include <memory>
#include <vector>

#include "core/crowd_rtse.h"
#include "crowd/cost_model.h"
#include "crowd/crowd_simulator.h"
#include "eval/metrics.h"
#include "graph/generators.h"
#include "ocs/greedy_selectors.h"
#include "ocs/ocs_problem.h"
#include "rtf/moment_estimator.h"
#include "traffic/traffic_simulator.h"
#include "util/logging.h"
#include "util/rng.h"

namespace crowdrtse::bench {

struct SemiSyntheticWorld {
  graph::Graph network;
  std::unique_ptr<traffic::TrafficSimulator> simulator;
  traffic::HistoryStore history;
  rtf::RtfModel model;
  traffic::DayMatrix truth;  // held-out evaluation day
  std::vector<graph::RoadId> all_roads;
};

struct WorldOptions {
  int num_roads = 607;   // the paper's Hong Kong network size
  int num_days = 30;     // 607*288*30 = 5,244,480 records
  uint64_t seed = 42;
  int slot_window = 1;
};

inline SemiSyntheticWorld BuildWorld(const WorldOptions& options = {}) {
  SemiSyntheticWorld world;
  util::Rng net_rng(options.seed);
  graph::RoadNetworkOptions net;
  net.num_roads = options.num_roads;
  world.network = *graph::RoadNetwork(net, net_rng);
  traffic::TrafficModelOptions traffic_options;
  traffic_options.num_days = options.num_days;
  world.simulator = std::make_unique<traffic::TrafficSimulator>(
      world.network, traffic_options, options.seed + 1);
  world.history = world.simulator->GenerateHistory();
  rtf::MomentEstimatorOptions moments;
  moments.slot_window = options.slot_window;
  world.model = *rtf::EstimateByMoments(world.network, world.history,
                                        moments);
  world.truth = world.simulator->GenerateEvaluationDay();
  world.all_roads.resize(static_cast<size_t>(world.network.num_roads()));
  for (graph::RoadId r = 0; r < world.network.num_roads(); ++r) {
    world.all_roads[static_cast<size_t>(r)] = r;
  }
  return world;
}

/// Distinct uniform-random queried roads (the paper's semi-synthetic R^q).
inline std::vector<graph::RoadId> MakeQuery(const SemiSyntheticWorld& world,
                                            int size, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<graph::RoadId> query;
  for (int pick : rng.SampleWithoutReplacement(world.network.num_roads(),
                                               size)) {
    query.push_back(pick);
  }
  return query;
}

/// Builds the OCS instance for one query at one slot.
inline ocs::OcsProblem MakeProblem(const SemiSyntheticWorld& world,
                                   const rtf::CorrelationTable& table,
                                   const std::vector<graph::RoadId>& queried,
                                   const std::vector<graph::RoadId>& workers,
                                   const crowd::CostModel& costs, int slot,
                                   int budget, double theta) {
  std::vector<double> weights;
  weights.reserve(queried.size());
  for (graph::RoadId r : queried) {
    weights.push_back(world.model.Sigma(slot, r));
  }
  auto problem = ocs::OcsProblem::Create(table, queried, weights, workers,
                                         costs, budget, theta);
  CROWDRTSE_CHECK(problem.ok());
  return std::move(*problem);
}

/// Probes `roads` against the held-out truth and returns the aggregated
/// crowd speeds (aligned with `roads`).
inline std::vector<double> ProbeRoads(const SemiSyntheticWorld& world,
                                      const std::vector<graph::RoadId>& roads,
                                      const crowd::CostModel& costs,
                                      int slot, uint64_t seed) {
  crowd::CrowdSimulator sim({}, util::Rng(seed));
  auto round = sim.Probe(roads, costs, world.truth, slot);
  CROWDRTSE_CHECK(round.ok());
  std::vector<double> probed;
  probed.reserve(round->probes.size());
  for (const auto& p : round->probes) probed.push_back(p.probed_kmh);
  return probed;
}

/// Query slots used by the quality benches: spread across the day so
/// rush-hour and off-peak behaviour both contribute.
inline std::vector<int> QuerySlots() { return {99, 150, 216}; }

}  // namespace crowdrtse::bench

#endif  // CROWDRTSE_BENCH_SEMI_SYNTHETIC_H_
