#ifndef CROWDRTSE_NET_FRAME_H_
#define CROWDRTSE_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace crowdrtse::net {

/// Length-prefixed binary framing for the non-HTTP endpoint: each frame is
///
///   [u32 magic 0x43525143 "CRQC"][u32 payload length, little endian]
///   [payload bytes]
///
/// The payload is the same JSON a POST /query body carries — the frame
/// layer buys cheap parsing (no header scan) and an unambiguous message
/// boundary for high-rate load drivers, not a different schema.
constexpr uint32_t kFrameMagic = 0x43525143;  // "CQRC" little-endian bytes
constexpr size_t kFrameHeaderBytes = 8;
constexpr uint32_t kMaxFramePayloadBytes = 8 * 1024 * 1024;

/// Serialises one frame around `payload`.
std::string EncodeFrame(const std::string& payload);

/// Incremental decoder: feed bytes, pop complete payloads. A bad magic or
/// oversize length poisons the stream (the connection must be dropped).
class FrameDecoder {
 public:
  util::Status Feed(const char* data, size_t size);

  /// Moves one complete payload into `out` if available; false when more
  /// bytes are needed.
  util::Result<bool> Next(std::string* out);

 private:
  std::string buffer_;
};

}  // namespace crowdrtse::net

#endif  // CROWDRTSE_NET_FRAME_H_
