#include "net/http.h"

#include <sys/socket.h>

#include <algorithm>
#include <cctype>
#include <cerrno>

namespace crowdrtse::net {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

util::Status HttpRequestParser::Feed(const char* data, size_t size) {
  if (buffer_.size() + size > kMaxHeaderBytes + kMaxBodyBytes) {
    return util::Status::InvalidArgument("request too large");
  }
  buffer_.append(data, size);
  return util::Status::Ok();
}

util::Result<bool> HttpRequestParser::Next(HttpRequest* out) {
  const size_t header_end = buffer_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (buffer_.size() > kMaxHeaderBytes) {
      return util::Status::InvalidArgument("header section too large");
    }
    return false;
  }
  if (header_end > kMaxHeaderBytes) {
    return util::Status::InvalidArgument("header section too large");
  }

  // Parse the request line.
  const size_t line_end = buffer_.find("\r\n");
  const std::string request_line = buffer_.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return util::Status::InvalidArgument("malformed request line: " +
                                         request_line);
  }
  const std::string version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return util::Status::InvalidArgument("unsupported HTTP version: " +
                                         version);
  }

  HttpRequest request;
  request.method = request_line.substr(0, sp1);
  std::string raw_target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t question = raw_target.find('?');
  if (question != std::string::npos) {
    request.query = raw_target.substr(question + 1);
    raw_target.resize(question);
  }
  request.target = UrlDecode(raw_target);

  // Parse headers.
  size_t cursor = line_end + 2;
  while (cursor < header_end) {
    const size_t eol = buffer_.find("\r\n", cursor);
    const std::string line = buffer_.substr(cursor, eol - cursor);
    cursor = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return util::Status::InvalidArgument("malformed header: " + line);
    }
    request.headers[Lower(line.substr(0, colon))] =
        Trim(line.substr(colon + 1));
  }

  // Body: Content-Length only (no chunked encoding — our clients are the
  // smoke tool, the bench driver, and curl, all of which send lengths).
  size_t content_length = 0;
  const auto it = request.headers.find("content-length");
  if (it != request.headers.end()) {
    const std::string& text = it->second;
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos) {
      return util::Status::InvalidArgument("bad Content-Length: " + text);
    }
    content_length = std::stoull(text);
    if (content_length > kMaxBodyBytes) {
      return util::Status::InvalidArgument("body too large: " + text);
    }
  } else if (request.headers.count("transfer-encoding") > 0) {
    return util::Status::InvalidArgument(
        "chunked transfer encoding is not supported");
  }

  const size_t body_start = header_end + 4;
  if (buffer_.size() - body_start < content_length) return false;
  request.body = buffer_.substr(body_start, content_length);
  buffer_.erase(0, body_start + content_length);
  *out = std::move(request);
  return true;
}

const char* HttpReason(int status_code) {
  switch (status_code) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string RenderHttpResponse(int status_code, const std::string& body,
                               const std::string& content_type) {
  std::string out = "HTTP/1.1 " + std::to_string(status_code) + " " +
                    HttpReason(status_code) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: keep-alive\r\n\r\n";
  out += body;
  return out;
}

util::Status ReadHttpResponse(int fd, int* status_code, std::string* body) {
  std::string buffer;
  char chunk[4096];
  size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::IoError("recv failed reading response headers");
    }
    if (n == 0) {
      return util::Status::IoError("connection closed mid-response");
    }
    buffer.append(chunk, static_cast<size_t>(n));
    header_end = buffer.find("\r\n\r\n");
    if (buffer.size() > HttpRequestParser::kMaxHeaderBytes &&
        header_end == std::string::npos) {
      return util::Status::InvalidArgument("response headers too large");
    }
  }
  // Status line: "HTTP/1.1 200 OK".
  const size_t sp = buffer.find(' ');
  if (sp == std::string::npos || sp + 4 > buffer.size()) {
    return util::Status::InvalidArgument("malformed status line");
  }
  *status_code = 0;
  for (size_t i = sp + 1; i < buffer.size() && buffer[i] != ' '; ++i) {
    if (buffer[i] < '0' || buffer[i] > '9') {
      return util::Status::InvalidArgument("malformed status code");
    }
    *status_code = *status_code * 10 + (buffer[i] - '0');
  }
  // Content-Length (case-insensitive scan of the header block).
  const std::string headers = Lower(buffer.substr(0, header_end));
  const size_t cl = headers.find("content-length:");
  if (cl == std::string::npos) {
    return util::Status::InvalidArgument("response missing Content-Length");
  }
  size_t length = 0;
  size_t i = cl + 15;
  while (i < headers.size() && (headers[i] == ' ' || headers[i] == '\t')) {
    ++i;
  }
  while (i < headers.size() && headers[i] >= '0' && headers[i] <= '9') {
    length = length * 10 + static_cast<size_t>(headers[i] - '0');
    ++i;
  }
  body->assign(buffer, header_end + 4,
               std::min(length, buffer.size() - header_end - 4));
  while (body->size() < length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::IoError("recv failed reading response body");
    }
    if (n == 0) {
      return util::Status::IoError("connection closed mid-body");
    }
    body->append(chunk, static_cast<size_t>(
                            std::min<size_t>(static_cast<size_t>(n),
                                             length - body->size())));
  }
  return util::Status::Ok();
}

std::string UrlDecode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size() &&
        std::isxdigit(static_cast<unsigned char>(text[i + 1])) &&
        std::isxdigit(static_cast<unsigned char>(text[i + 2]))) {
      const std::string hex = text.substr(i + 1, 2);
      out.push_back(
          static_cast<char>(std::stoi(hex, nullptr, 16)));
      i += 2;
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

}  // namespace crowdrtse::net
