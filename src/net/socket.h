#ifndef CROWDRTSE_NET_SOCKET_H_
#define CROWDRTSE_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace crowdrtse::net {

/// RAII file descriptor: closes on destruction, move-only. The building
/// block every higher net layer (listener, epoll loop, front-end
/// connections) hands around instead of raw ints.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Releases ownership without closing; returns the raw fd.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void Close();

 private:
  int fd_ = -1;
};

/// Puts `fd` into non-blocking mode (O_NONBLOCK).
util::Status SetNonBlocking(int fd);

/// Disables Nagle's algorithm (TCP_NODELAY) — query/response traffic is
/// small and latency-bound, so coalescing 40 ms of it is pure harm.
util::Status SetNoDelay(int fd);

/// A listening TCP socket bound to 127.0.0.1:`port` (port 0 lets the
/// kernel pick; bound_port() reports the result — how tests and the smoke
/// tool avoid port collisions). SO_REUSEADDR is set so restarts do not
/// trip over TIME_WAIT.
class TcpListener {
 public:
  TcpListener() = default;

  /// Binds and listens. `backlog` is the kernel accept queue depth.
  util::Status Listen(uint16_t port, int backlog = 128);

  /// Accepts one pending connection, non-blocking semantics follow the
  /// listener fd. Returns an invalid Fd (not an error) when no connection
  /// is pending (EAGAIN) — the epoll loop treats that as "drained".
  util::Result<Fd> Accept();

  /// Stops listening (closes the socket). bound_port() keeps reporting
  /// the last bound port.
  void Close() { fd_.Close(); }

  int fd() const { return fd_.get(); }
  bool listening() const { return fd_.valid(); }
  uint16_t bound_port() const { return bound_port_; }

 private:
  Fd fd_;
  uint16_t bound_port_ = 0;
};

/// Blocking client connect to 127.0.0.1:`port` — the load driver / smoke
/// tool side of the protocol. The returned fd is blocking with
/// TCP_NODELAY set.
util::Result<Fd> ConnectLocal(uint16_t port);

/// Writes all of `data` to a blocking fd, retrying short writes and EINTR.
util::Status WriteAll(int fd, const std::string& data);

/// Reads exactly `n` bytes from a blocking fd into `out` (appended).
/// Fails with IoError on EOF before `n` bytes arrive.
util::Status ReadExact(int fd, size_t n, std::string* out);

}  // namespace crowdrtse::net

#endif  // CROWDRTSE_NET_SOCKET_H_
