#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace crowdrtse::net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

void Fd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return util::Status::IoError(Errno("fcntl(F_GETFL)"));
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return util::Status::IoError(Errno("fcntl(F_SETFL, O_NONBLOCK)"));
  }
  return util::Status::Ok();
}

util::Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return util::Status::IoError(Errno("setsockopt(TCP_NODELAY)"));
  }
  return util::Status::Ok();
}

util::Status TcpListener::Listen(uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return util::Status::IoError(Errno("socket"));
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return util::Status::IoError(Errno("setsockopt(SO_REUSEADDR)"));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return util::Status::IoError(
        Errno("bind(127.0.0.1:" + std::to_string(port) + ")"));
  }
  if (::listen(fd.get(), backlog) < 0) {
    return util::Status::IoError(Errno("listen"));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return util::Status::IoError(Errno("getsockname"));
  }
  CROWDRTSE_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  bound_port_ = ntohs(bound.sin_port);
  fd_ = std::move(fd);
  return util::Status::Ok();
}

util::Result<Fd> TcpListener::Accept() {
  for (;;) {
    const int client =
        ::accept4(fd_.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (client >= 0) {
      Fd out(client);
      // Best-effort: a connection we cannot tune still serves.
      (void)SetNoDelay(client);
      return out;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Fd();  // drained
    // ECONNABORTED: the peer gave up while queued; nothing to accept.
    if (errno == ECONNABORTED) return Fd();
    return util::Status::IoError(Errno("accept"));
  }
}

util::Result<Fd> ConnectLocal(uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return util::Status::IoError(Errno("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    return util::Status::IoError(
        Errno("connect(127.0.0.1:" + std::to_string(port) + ")"));
  }
  (void)SetNoDelay(fd.get());
  return fd;
}

util::Status WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of killing
    // the process with SIGPIPE.
    const ssize_t n = ::send(fd, data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::IoError(Errno("send"));
    }
    written += static_cast<size_t>(n);
  }
  return util::Status::Ok();
}

util::Status ReadExact(int fd, size_t n, std::string* out) {
  size_t got = 0;
  char buffer[4096];
  while (got < n) {
    const size_t want = std::min(n - got, sizeof(buffer));
    const ssize_t r = ::read(fd, buffer, want);
    if (r < 0) {
      if (errno == EINTR) continue;
      return util::Status::IoError(Errno("read"));
    }
    if (r == 0) {
      return util::Status::IoError(
          "connection closed after " + std::to_string(got) + " of " +
          std::to_string(n) + " bytes");
    }
    out->append(buffer, static_cast<size_t>(r));
    got += static_cast<size_t>(r);
  }
  return util::Status::Ok();
}

}  // namespace crowdrtse::net
