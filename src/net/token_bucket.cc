#include "net/token_bucket.h"

#include <algorithm>

namespace crowdrtse::net {

namespace {
constexpr double kMicroPerToken = 1e6;
}  // namespace

TokenBucket::TokenBucket(double rate_per_sec, double burst,
                         util::Clock* clock)
    : rate_per_sec_(rate_per_sec),
      burst_micro_(std::max(burst, 1.0) * kMicroPerToken),
      clock_(clock),
      micro_tokens_(burst_micro_),
      last_refill_micros_(clock->NowMicros()) {}

void TokenBucket::RefillLocked(int64_t now_micros) {
  if (now_micros <= last_refill_micros_) return;
  const double elapsed_micros =
      static_cast<double>(now_micros - last_refill_micros_);
  micro_tokens_ = std::min(burst_micro_,
                           micro_tokens_ + elapsed_micros * rate_per_sec_);
  last_refill_micros_ = now_micros;
}

bool TokenBucket::TryAcquire() {
  if (rate_per_sec_ <= 0) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  RefillLocked(clock_->NowMicros());
  if (micro_tokens_ >= kMicroPerToken) {
    micro_tokens_ -= kMicroPerToken;
    return true;
  }
  return false;
}

double TokenBucket::available() {
  if (rate_per_sec_ <= 0) return burst_micro_ / kMicroPerToken;
  std::lock_guard<std::mutex> lock(mutex_);
  RefillLocked(clock_->NowMicros());
  return micro_tokens_ / kMicroPerToken;
}

}  // namespace crowdrtse::net
