#include "net/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace crowdrtse::net::json {

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double d) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

Value Value::Int(int64_t i) { return Number(static_cast<double>(i)); }

Value Value::Str(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::Object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

util::Result<int64_t> Value::AsInt() const {
  if (kind_ != Kind::kNumber) {
    return util::Status::InvalidArgument("not a number");
  }
  if (std::nearbyint(number_) != number_ || std::abs(number_) > 9.0e15) {
    return util::Status::InvalidArgument("not an exact integer: " +
                                         std::to_string(number_));
  }
  return static_cast<int64_t>(number_);
}

Value& Value::Set(const std::string& key, Value value) {
  kind_ = Kind::kObject;
  object_[key] = std::move(value);
  return *this;
}

const Value* Value::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string Value::Dump() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber: {
      if (std::isnan(number_) || std::isinf(number_)) return "0";
      // Integers render without a fraction so ids survive round-trips
      // textually; everything else gets enough digits to round-trip.
      if (std::nearbyint(number_) == number_ &&
          std::abs(number_) <= 9.0e15) {
        return std::to_string(static_cast<int64_t>(number_));
      }
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.17g", number_);
      return buffer;
    }
    case Kind::kString:
      return "\"" + util::JsonEscape(string_) + "\"";
    case Kind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ",";
        out += array_[i].Dump();
      }
      return out + "]";
    }
    case Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ",";
        first = false;
        out += "\"" + util::JsonEscape(key) + "\":" + value.Dump();
      }
      return out + "}";
    }
  }
  return "null";
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  util::Result<Value> Run() {
    SkipWhitespace();
    Value root;
    CROWDRTSE_RETURN_IF_ERROR(ParseValue(0, &root));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return root;
  }

 private:
  util::Status Error(const std::string& message) const {
    return util::Status::InvalidArgument(
        message + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  util::Status ParseValue(int depth, Value* out) {
    if (depth > max_depth_) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        CROWDRTSE_RETURN_IF_ERROR(ParseString(&s));
        *out = Value::Str(std::move(s));
        return util::Status::Ok();
      }
      case 't':
        return ParseLiteral("true", Value::Bool(true), out);
      case 'f':
        return ParseLiteral("false", Value::Bool(false), out);
      case 'n':
        return ParseLiteral("null", Value::Null(), out);
      default:
        return ParseNumber(out);
    }
  }

  util::Status ParseLiteral(const char* literal, Value value, Value* out) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (!Consume(*p)) return Error(std::string("expected '") + literal +
                                     "'");
    }
    *out = std::move(value);
    return util::Status::Ok();
  }

  util::Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (!ConsumeDigits()) return Error("invalid number");
    if (Consume('.')) {
      if (!ConsumeDigits()) return Error("invalid number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!ConsumeDigits()) return Error("invalid number exponent");
    }
    const std::string token = text_.substr(start, pos_ - start);
    // Leading zeros are invalid JSON ("013"), but leading "0." is fine.
    if (token.size() > 1) {
      const size_t first = token[0] == '-' ? 1 : 0;
      if (token[first] == '0' && first + 1 < token.size() &&
          token[first + 1] != '.' && token[first + 1] != 'e' &&
          token[first + 1] != 'E') {
        return Error("leading zero in number");
      }
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    *out = Value::Number(value);
    return util::Status::Ok();
  }

  bool ConsumeDigits() {
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    return pos_ > start;
  }

  util::Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    for (;;) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return util::Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          CROWDRTSE_RETURN_IF_ERROR(ParseHex4(&code));
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: require the low half and combine.
            if (!Consume('\\') || !Consume('u')) {
              return Error("unpaired high surrogate");
            }
            unsigned low = 0;
            CROWDRTSE_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            const unsigned combined =
                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            AppendUtf8(combined, out);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          } else {
            AppendUtf8(code, out);
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  util::Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    *out = value;
    return util::Status::Ok();
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  util::Status ParseObject(int depth, Value* out) {
    Consume('{');
    *out = Value::Object();
    SkipWhitespace();
    if (Consume('}')) return util::Status::Ok();
    for (;;) {
      SkipWhitespace();
      std::string key;
      CROWDRTSE_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SkipWhitespace();
      Value value;
      CROWDRTSE_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return util::Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  util::Status ParseArray(int depth, Value* out) {
    Consume('[');
    *out = Value::Array();
    SkipWhitespace();
    if (Consume(']')) return util::Status::Ok();
    for (;;) {
      SkipWhitespace();
      Value value;
      CROWDRTSE_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      out->MutableArray().push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return util::Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  const std::string& text_;
  const int max_depth_;
  size_t pos_ = 0;
};

}  // namespace

util::Result<Value> Parse(const std::string& text, int max_depth) {
  return Parser(text, max_depth).Run();
}

}  // namespace crowdrtse::net::json
