#ifndef CROWDRTSE_NET_JSON_H_
#define CROWDRTSE_NET_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace crowdrtse::net::json {

/// A parsed JSON value (RFC 8259). Small recursive variant used by the
/// wire protocol: query requests in, and round-trip validation of every
/// JSON the process emits (metrics, logs, traces) in tests. Numbers are
/// kept as doubles; AsInt() checks integrality where the protocol needs
/// exact ints (slots, road ids).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double d);
  static Value Int(int64_t i);
  static Value Str(std::string s);
  static Value Array();
  static Value Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  /// The number as an exact integer; fails when not integral or out of
  /// int64 range.
  util::Result<int64_t> AsInt() const;
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& AsArray() const { return array_; }
  const std::map<std::string, Value>& AsObject() const { return object_; }

  /// Mutators for building values to Dump().
  std::vector<Value>& MutableArray() { return array_; }
  Value& Set(const std::string& key, Value value);

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;

  /// Serialises per RFC 8259 (strings escaped, non-finite numbers clamp
  /// to 0 — JSON has no tokens for them). Stable member order (std::map).
  std::string Dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parses one JSON document; trailing non-whitespace is an error. Depth is
/// capped (default 64) so hostile input cannot blow the stack.
util::Result<Value> Parse(const std::string& text, int max_depth = 64);

}  // namespace crowdrtse::net::json

#endif  // CROWDRTSE_NET_JSON_H_
