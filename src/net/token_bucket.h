#ifndef CROWDRTSE_NET_TOKEN_BUCKET_H_
#define CROWDRTSE_NET_TOKEN_BUCKET_H_

#include <cstdint>
#include <mutex>

#include "util/clock.h"

namespace crowdrtse::net {

/// Classic token bucket: `rate_per_sec` tokens accrue continuously up to
/// `burst` capacity; TryAcquire spends one if available. Runs on the
/// injected util::Clock so tests drive refill deterministically with
/// SimClock (DESIGN.md §5c pattern). Thread-safe; a bucket guards one
/// client's admission, so the single mutex is uncontended in practice.
///
/// Accounting is in microtokens (one token = 1e6): refill adds
/// elapsed_micros * rate, which stays an exact integer-valued double for
/// integral rates — so "exactly at the refill boundary" admits and one
/// microsecond earlier denies, with no elapsed_sec rounding drift.
class TokenBucket {
 public:
  /// Starts full. rate_per_sec <= 0 disables limiting (always admits).
  TokenBucket(double rate_per_sec, double burst, util::Clock* clock);

  /// Spends one token if the bucket (after refill) has one. Never blocks.
  bool TryAcquire();

  /// Tokens currently available (after refill); for tests and /stats.
  double available();

 private:
  void RefillLocked(int64_t now_micros);

  const double rate_per_sec_;
  const double burst_micro_;
  util::Clock* const clock_;

  std::mutex mutex_;
  double micro_tokens_;
  int64_t last_refill_micros_;
};

}  // namespace crowdrtse::net

#endif  // CROWDRTSE_NET_TOKEN_BUCKET_H_
