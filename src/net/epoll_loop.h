#ifndef CROWDRTSE_NET_EPOLL_LOOP_H_
#define CROWDRTSE_NET_EPOLL_LOOP_H_

#include <cstdint>
#include <vector>

#include "net/socket.h"
#include "util/status.h"

namespace crowdrtse::net {

/// One readiness event out of EpollLoop::Wait.
struct ReadyEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Error/hangup: the owner should tear the connection down.
  bool closed = false;
};

/// Thin level-triggered epoll wrapper with a wakeup eventfd, the reactor
/// under the serving front-end. Single-consumer: exactly one thread calls
/// Wait(); Add/Modify/Remove and Wakeup may be called from any thread
/// (epoll_ctl is thread-safe against epoll_wait).
class EpollLoop {
 public:
  EpollLoop() = default;

  /// Creates the epoll instance and the wakeup eventfd.
  util::Status Init();

  util::Status Add(int fd, bool want_read, bool want_write);
  util::Status Modify(int fd, bool want_read, bool want_write);
  util::Status Remove(int fd);

  /// Blocks up to `timeout_millis` (-1 = forever) and appends readiness
  /// events to `out` (cleared first). The wakeup fd is consumed
  /// internally and never reported.
  util::Status Wait(int timeout_millis, std::vector<ReadyEvent>* out);

  /// Makes a concurrent Wait() return promptly (shutdown, new writable
  /// data queued by a worker thread).
  void Wakeup();

  bool initialized() const { return epoll_fd_.valid(); }

 private:
  Fd epoll_fd_;
  Fd wakeup_fd_;
};

}  // namespace crowdrtse::net

#endif  // CROWDRTSE_NET_EPOLL_LOOP_H_
