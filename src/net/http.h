#ifndef CROWDRTSE_NET_HTTP_H_
#define CROWDRTSE_NET_HTTP_H_

#include <cstddef>
#include <map>
#include <string>

#include "util/status.h"

namespace crowdrtse::net {

/// One parsed HTTP/1.1 request. Header names are lower-cased on parse
/// (field names are case-insensitive per RFC 9112); values keep their
/// bytes with surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string target;  // "/query", "/metrics", "/trace/42?k=v" -> path only
  std::string query;   // raw query string after '?', "" when absent
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Incremental HTTP/1.1 request parser for one connection: feed bytes as
/// they arrive, pop complete requests. Pipelining works — leftover bytes
/// after one request seed the next. Malformed input fails the whole
/// connection (the caller closes it; no resync attempts).
class HttpRequestParser {
 public:
  /// Hard caps so a hostile peer cannot balloon memory.
  static constexpr size_t kMaxHeaderBytes = 16 * 1024;
  static constexpr size_t kMaxBodyBytes = 8 * 1024 * 1024;

  /// Appends newly received bytes.
  util::Status Feed(const char* data, size_t size);

  /// Moves one complete request into `out` if available. Returns false
  /// when more bytes are needed (not an error).
  util::Result<bool> Next(HttpRequest* out);

 private:
  std::string buffer_;
};

/// Renders an HTTP/1.1 response with Content-Length and Connection:
/// keep-alive. `content_type` e.g. "application/json" or "text/plain".
std::string RenderHttpResponse(int status_code, const std::string& body,
                               const std::string& content_type);

/// Standard reason phrase for the handful of codes the server emits.
const char* HttpReason(int status_code);

/// Blocking client-side read of one HTTP/1.1 response from `fd` (the
/// smoke-tool / load-driver / test side; connections are lockstep
/// request-response). Parses the status line and Content-Length, then
/// reads exactly the body.
util::Status ReadHttpResponse(int fd, int* status_code, std::string* body);

/// Percent-decodes a URL path/query component (+ is not space here).
std::string UrlDecode(const std::string& text);

}  // namespace crowdrtse::net

#endif  // CROWDRTSE_NET_HTTP_H_
