#include "net/frame.h"

#include <cstring>

namespace crowdrtse::net {

namespace {

uint32_t LoadU32(const char* p) {
  // Explicit little-endian decode: the wire format must not depend on
  // host byte order.
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

void StoreU32(uint32_t value, std::string* out) {
  out->push_back(static_cast<char>(value & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
}

}  // namespace

std::string EncodeFrame(const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  StoreU32(kFrameMagic, &out);
  StoreU32(static_cast<uint32_t>(payload.size()), &out);
  out += payload;
  return out;
}

util::Status FrameDecoder::Feed(const char* data, size_t size) {
  if (buffer_.size() + size >
      kFrameHeaderBytes + static_cast<size_t>(kMaxFramePayloadBytes) * 2) {
    return util::Status::InvalidArgument("frame buffer overflow");
  }
  buffer_.append(data, size);
  return util::Status::Ok();
}

util::Result<bool> FrameDecoder::Next(std::string* out) {
  if (buffer_.size() < kFrameHeaderBytes) return false;
  if (LoadU32(buffer_.data()) != kFrameMagic) {
    return util::Status::InvalidArgument("bad frame magic");
  }
  const uint32_t length = LoadU32(buffer_.data() + 4);
  if (length > kMaxFramePayloadBytes) {
    return util::Status::InvalidArgument("frame payload too large: " +
                                         std::to_string(length));
  }
  if (buffer_.size() < kFrameHeaderBytes + length) return false;
  *out = buffer_.substr(kFrameHeaderBytes, length);
  buffer_.erase(0, kFrameHeaderBytes + length);
  return true;
}

}  // namespace crowdrtse::net
