#include "net/epoll_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace crowdrtse::net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

uint32_t MaskFor(bool want_read, bool want_write) {
  uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}

}  // namespace

util::Status EpollLoop::Init() {
  Fd epoll_fd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd.valid()) {
    return util::Status::IoError(Errno("epoll_create1"));
  }
  Fd wakeup_fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wakeup_fd.valid()) return util::Status::IoError(Errno("eventfd"));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd.get();
  if (::epoll_ctl(epoll_fd.get(), EPOLL_CTL_ADD, wakeup_fd.get(), &ev) < 0) {
    return util::Status::IoError(Errno("epoll_ctl(ADD wakeup)"));
  }
  epoll_fd_ = std::move(epoll_fd);
  wakeup_fd_ = std::move(wakeup_fd);
  return util::Status::Ok();
}

util::Status EpollLoop::Add(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = MaskFor(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    return util::Status::IoError(Errno("epoll_ctl(ADD)"));
  }
  return util::Status::Ok();
}

util::Status EpollLoop::Modify(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = MaskFor(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    return util::Status::IoError(Errno("epoll_ctl(MOD)"));
  }
  return util::Status::Ok();
}

util::Status EpollLoop::Remove(int fd) {
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return util::Status::IoError(Errno("epoll_ctl(DEL)"));
  }
  return util::Status::Ok();
}

util::Status EpollLoop::Wait(int timeout_millis,
                             std::vector<ReadyEvent>* out) {
  out->clear();
  epoll_event events[64];
  int n;
  do {
    n = ::epoll_wait(epoll_fd_.get(), events, 64, timeout_millis);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return util::Status::IoError(Errno("epoll_wait"));
  out->reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (events[i].data.fd == wakeup_fd_.get()) {
      uint64_t drained;
      while (::read(wakeup_fd_.get(), &drained, sizeof(drained)) > 0) {
      }
      continue;
    }
    ReadyEvent ready;
    ready.fd = events[i].data.fd;
    ready.readable = (events[i].events & EPOLLIN) != 0;
    ready.writable = (events[i].events & EPOLLOUT) != 0;
    ready.closed = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    out->push_back(ready);
  }
  return util::Status::Ok();
}

void EpollLoop::Wakeup() {
  const uint64_t one = 1;
  // Failure (full counter) still leaves the eventfd readable — the waiter
  // wakes either way, so the result is deliberately ignored.
  [[maybe_unused]] const ssize_t n =
      ::write(wakeup_fd_.get(), &one, sizeof(one));
}

}  // namespace crowdrtse::net
