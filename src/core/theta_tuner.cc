#include "core/theta_tuner.h"

#include <algorithm>
#include <string>

#include "eval/metrics.h"
#include "gsp/propagation.h"
#include "ocs/greedy_selectors.h"
#include "ocs/ocs_problem.h"
#include "rtf/correlation_cache.h"
#include "rtf/correlation_table.h"
#include "rtf/moment_estimator.h"
#include "util/rng.h"

namespace crowdrtse::core {

util::Result<ThetaTunerResult> TuneTheta(
    const graph::Graph& graph, const traffic::HistoryStore& history,
    const crowd::CostModel& costs, const ThetaTunerOptions& options) {
  if (options.candidate_thetas.empty()) {
    return util::Status::InvalidArgument("no candidate thetas");
  }
  for (double theta : options.candidate_thetas) {
    if (!(theta > 0.0 && theta <= 1.0)) {
      return util::Status::InvalidArgument("theta must be in (0, 1]");
    }
  }
  if (options.validation_days < 1 ||
      options.validation_days >= history.num_days() - 1) {
    return util::Status::InvalidArgument(
        "validation_days must leave at least 2 training days");
  }
  if (options.query_size < 1 ||
      options.query_size > graph.num_roads()) {
    return util::Status::InvalidArgument("bad query size");
  }
  for (int slot : options.slots) {
    if (slot < 0 || slot >= history.num_slots()) {
      return util::Status::OutOfRange("slot out of range: " +
                                      std::to_string(slot));
    }
  }

  // --- split: train on the prefix, validate on the suffix --------------
  const int train_days = history.num_days() - options.validation_days;
  traffic::HistoryStore train(history.num_roads(), train_days,
                              history.num_slots());
  for (int day = 0; day < train_days; ++day) {
    for (int slot = 0; slot < history.num_slots(); ++slot) {
      for (graph::RoadId r = 0; r < history.num_roads(); ++r) {
        train.At(day, slot, r) = history.At(day, slot, r);
      }
    }
  }
  util::Result<rtf::RtfModel> model =
      rtf::EstimateByMoments(graph, train, {});
  if (!model.ok()) return model.status();

  // --- fixed query + candidate set across all folds --------------------
  util::Rng rng(options.seed);
  std::vector<graph::RoadId> queried;
  for (int pick : rng.SampleWithoutReplacement(graph.num_roads(),
                                               options.query_size)) {
    queried.push_back(pick);
  }
  std::vector<graph::RoadId> candidates;
  for (graph::RoadId r = 0; r < graph.num_roads(); ++r) {
    candidates.push_back(r);
  }
  const gsp::SpeedPropagator propagator(*model, {});
  // Gamma_R for a slot is identical across candidate thetas; the cache
  // computes each slot once (with the Dijkstra fan-out) instead of
  // |thetas| times, in the configured path mode.
  rtf::CorrelationCache gamma_cache;
  const auto compute_gamma =
      [&model, &options](int s, util::ThreadPool* fanout) {
        return rtf::CorrelationTable::Compute(*model, s, options.path_mode,
                                              fanout);
      };

  ThetaTunerResult result;
  result.scores.reserve(options.candidate_thetas.size());
  for (double theta : options.candidate_thetas) {
    double mape_sum = 0.0;
    int cells = 0;
    for (int slot : options.slots) {
      util::Result<rtf::CorrelationCache::TablePtr> table =
          gamma_cache.GetOrCompute(slot, compute_gamma);
      if (!table.ok()) return table.status();
      std::vector<double> weights;
      for (graph::RoadId r : queried) {
        weights.push_back(model->Sigma(slot, r));
      }
      util::Result<ocs::OcsProblem> problem = ocs::OcsProblem::Create(
          **table, queried, weights, candidates, costs, options.budget,
          theta);
      if (!problem.ok()) return problem.status();
      const ocs::OcsSolution selection = ocs::LazyHybridGreedy(*problem);
      for (int day = train_days; day < history.num_days(); ++day) {
        // Noiseless probes: the tuning signal is the selection shape, not
        // the crowd noise.
        std::vector<double> probes;
        std::vector<double> truth(static_cast<size_t>(graph.num_roads()));
        for (graph::RoadId r = 0; r < graph.num_roads(); ++r) {
          truth[static_cast<size_t>(r)] = history.At(day, slot, r);
        }
        for (graph::RoadId r : selection.roads) {
          probes.push_back(truth[static_cast<size_t>(r)]);
        }
        util::Result<gsp::GspResult> estimate =
            propagator.Propagate(slot, selection.roads, probes);
        if (!estimate.ok()) return estimate.status();
        util::Result<eval::QualityMetrics> quality =
            eval::ComputeQuality(estimate->speeds, truth, queried);
        if (!quality.ok()) return quality.status();
        mape_sum += quality->mape;
        ++cells;
      }
    }
    ThetaScore score;
    score.theta = theta;
    score.mape = cells > 0 ? mape_sum / cells : 0.0;
    result.scores.push_back(score);
  }
  // Winner: lowest MAPE; ties go to the smaller theta (more diversity).
  result.best_theta = result.scores.front().theta;
  double best_mape = result.scores.front().mape;
  for (const ThetaScore& score : result.scores) {
    if (score.mape < best_mape - 1e-12 ||
        (score.mape <= best_mape + 1e-12 &&
         score.theta < result.best_theta)) {
      best_mape = std::min(best_mape, score.mape);
      result.best_theta = score.theta;
    }
  }
  return result;
}

}  // namespace crowdrtse::core
