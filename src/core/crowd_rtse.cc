#include "core/crowd_rtse.h"

#include "gsp/uncertainty.h"
#include "util/trace.h"

#include <string>
#include <utility>

namespace crowdrtse::core {

CrowdRtse::CrowdRtse(const graph::Graph& graph,
                     const traffic::HistoryStore& history,
                     rtf::RtfModel model, const CrowdRtseConfig& config)
    : graph_(&graph),
      history_(&history),
      config_(config),
      model_(std::make_shared<rtf::RtfModel>(std::move(model))) {
  rtf::CorrelationCacheOptions cache_options = config_.correlation_cache;
  if (cache_options.expected_num_roads <= 0) {
    cache_options.expected_num_roads = graph.num_roads();
  }
  // Persisted tables must match the configured closure shape, not whatever
  // the caller left in the cache options.
  cache_options.expected_hop_radius = config_.correlation_hop_radius;
  if (config_.refine_with_ccd) {
    // A persisted table cannot prove it was computed from the refined
    // parameters, so warm-starting would silently skip refinement.
    cache_options.persist_dir.clear();
  }
  correlation_cache_ =
      std::make_shared<rtf::CorrelationCache>(std::move(cache_options));
}

util::Result<CrowdRtse> CrowdRtse::BuildOffline(
    const graph::Graph& graph, const traffic::HistoryStore& history,
    const CrowdRtseConfig& config) {
  if (!(config.theta > 0.0 && config.theta <= 1.0)) {
    return util::Status::InvalidArgument("theta must be in (0, 1]");
  }
  if (config.correlation_hop_radius < 0) {
    return util::Status::InvalidArgument(
        "correlation_hop_radius must be >= 0");
  }
  if (config.correlation_hop_radius > 0 &&
      config.path_mode != rtf::PathWeightMode::kNegLog) {
    return util::Status::InvalidArgument(
        "correlation_hop_radius > 0 supports the kNegLog path mode only");
  }
  util::Result<rtf::RtfModel> model =
      rtf::EstimateByMoments(graph, history, config.moments);
  if (!model.ok()) return model.status();
  CrowdRtse system(graph, history, std::move(*model), config);
  if (config.warm_start_correlations) {
    // Loads whatever a previous run persisted; the cache is shared across
    // copies/moves of the returned object, so the warm tables survive.
    system.correlation_cache_->WarmStart(system.model_->num_slots());
  }
  return system;
}

util::Result<rtf::CorrelationCache::TablePtr> CrowdRtse::CorrelationsFor(
    int slot) {
  if (slot < 0 || slot >= model_->num_slots()) {
    return util::Status::OutOfRange("slot out of range: " +
                                    std::to_string(slot));
  }
  return correlation_cache_->GetOrCompute(
      slot,
      [this](int s,
             util::ThreadPool* fanout) -> util::Result<rtf::CorrelationTable> {
        if (config_.refine_with_ccd) {
          // Refinement mutates the shared model, so it runs under the CCD
          // mutex and touches only slot s's parameters. The table is then
          // computed from a snapshot taken under the same lock: the cache
          // runs compute callbacks for different cold slots concurrently,
          // and another slot's in-flight refinement must not mutate the
          // model mid-Compute.
          util::Result<rtf::RtfModel> snapshot =
              [&]() -> util::Result<rtf::RtfModel> {
            std::lock_guard<std::mutex> lock(ccd_state_->mutex);
            if (ccd_state_->refined_slots.count(s) == 0) {
              const rtf::CcdTrainer trainer(*graph_, *history_, config_.ccd);
              util::Result<rtf::CcdReport> report =
                  trainer.TrainSlot(*model_, s);
              if (!report.ok()) return report.status();
              model_->ClampParameters(s);
              ccd_state_->refined_slots.insert(s);
            }
            return *model_;
          }();
          if (!snapshot.ok()) return snapshot.status();
          return rtf::CorrelationTable::Compute(
              *snapshot, s, config_.path_mode, fanout,
              config_.correlation_hop_radius);
        }
        // Without refinement the model is immutable after BuildOffline, so
        // reading it lock-free here is safe.
        return rtf::CorrelationTable::Compute(*model_, s, config_.path_mode,
                                              fanout,
                                              config_.correlation_hop_radius);
      });
}

util::Result<int> CrowdRtse::RefineSlot(int slot) {
  if (slot < 0 || slot >= model_->num_slots()) {
    return util::Status::OutOfRange("slot out of range: " +
                                    std::to_string(slot));
  }
  const int num_edges = model_->num_edges();
  // Refine under the CCD mutex (the trainer mutates the shared model) and
  // snapshot the post-refinement edge correlations under the same lock, so
  // the patch below works from a consistent view even if another slot's
  // lazy refinement runs concurrently.
  std::vector<graph::EdgeId> changed_edges;
  std::vector<double> edge_rho(static_cast<size_t>(num_edges));
  {
    std::lock_guard<std::mutex> lock(ccd_state_->mutex);
    std::vector<double> old_rho(static_cast<size_t>(num_edges));
    for (graph::EdgeId e = 0; e < num_edges; ++e) {
      old_rho[static_cast<size_t>(e)] = model_->Rho(slot, e);
    }
    const rtf::CcdTrainer trainer(*graph_, *history_, config_.ccd);
    util::Result<rtf::CcdReport> report = trainer.TrainSlot(*model_, slot);
    if (!report.ok()) return report.status();
    model_->ClampParameters(slot);
    ccd_state_->refined_slots.insert(slot);
    for (graph::EdgeId e = 0; e < num_edges; ++e) {
      const double rho = model_->Rho(slot, e);
      edge_rho[static_cast<size_t>(e)] = rho;
      if (rho != old_rho[static_cast<size_t>(e)]) {
        changed_edges.push_back(e);
      }
    }
  }
  if (changed_edges.empty()) {
    // Gamma_R depends on the edge correlations only; mu/sigma shifts need
    // no table maintenance.
    return 0;
  }
  if (config_.correlation_hop_radius > 0 &&
      config_.incremental_gamma_refresh) {
    const std::vector<graph::RoadId> affected =
        rtf::AffectedCorrelationRows(*graph_, changed_edges,
                                     config_.correlation_hop_radius);
    const rtf::CorrelationCache::PatchOutcome outcome =
        correlation_cache_->PatchInPlace(
            slot,
            [this, &edge_rho, &affected](const rtf::CorrelationTable& current,
                                         util::ThreadPool* fanout)
                -> util::Result<rtf::CorrelationTable> {
              return current.RefreshedRows(*graph_, edge_rho, affected,
                                           fanout);
            });
    if (outcome == rtf::CorrelationCache::PatchOutcome::kPatched) {
      return static_cast<int>(affected.size());
    }
    // Nothing resident (or a race superseded the patch): the entry is
    // invalidated and the next lookup recomputes from the refined model.
    return -1;
  }
  correlation_cache_->Invalidate(slot);
  return -1;
}

std::vector<double> CrowdRtse::SigmaWeights(
    int slot, const std::vector<graph::RoadId>& queried_roads) const {
  std::vector<double> weights;
  weights.reserve(queried_roads.size());
  for (graph::RoadId r : queried_roads) {
    weights.push_back(model_->Sigma(slot, r));
  }
  return weights;
}

std::vector<double> CrowdRtse::PeriodicMeans(
    int slot, const std::vector<graph::RoadId>& roads) const {
  std::vector<double> means;
  means.reserve(roads.size());
  for (graph::RoadId r : roads) {
    means.push_back(model_->Mu(slot, r));
  }
  return means;
}

util::Result<ocs::OcsSolution> CrowdRtse::SelectRoads(
    int slot, const std::vector<graph::RoadId>& queried_roads,
    const std::vector<graph::RoadId>& worker_roads,
    const crowd::CostModel& costs, int budget, SelectorKind selector) {
  util::Result<rtf::CorrelationCache::TablePtr> table = [&] {
    util::trace::Span span("ocs.correlations");
    span.Annotate("slot", static_cast<int64_t>(slot));
    return CorrelationsFor(slot);
  }();
  if (!table.ok()) return table.status();
  // `*table` is held for the whole solve: OcsProblem keeps a raw reference,
  // and the shared_ptr outlives it even if the cache evicts the slot.
  const std::vector<graph::RoadId>* candidates = &worker_roads;
  std::vector<graph::RoadId> pruned;
  bool queried_in_range = true;
  for (graph::RoadId q : queried_roads) {
    if (q < 0 || q >= (*table)->num_roads()) queried_in_range = false;
  }
  // With an invalid queried set, skip pruning and let OcsProblem::Create
  // produce its usual rejection.
  if (config_.prune_zero_gain_candidates && queried_in_range) {
    pruned.reserve(worker_roads.size());
    for (graph::RoadId c : worker_roads) {
      // Out-of-range ids pass through so OcsProblem::Create still rejects
      // them with its usual error instead of a silent drop.
      if (c < 0 || c >= (*table)->num_roads() ||
          (*table)->RoadSetCorr(c, queried_roads) > 0.0) {
        pruned.push_back(c);
      }
    }
    candidates = &pruned;
  }
  util::Result<ocs::OcsProblem> problem = ocs::OcsProblem::Create(
      **table, queried_roads, SigmaWeights(slot, queried_roads),
      *candidates, costs, budget, config_.theta);
  if (!problem.ok()) return problem.status();
  util::trace::Span span("ocs.select");
  span.Annotate("candidates",
                static_cast<int64_t>(problem->candidate_roads().size()));
  switch (selector) {
    case SelectorKind::kHybridGreedy:
      return ocs::HybridGreedy(*problem);
    case SelectorKind::kRatioGreedy:
      return ocs::RatioGreedy(*problem);
    case SelectorKind::kObjectiveGreedy:
      return ocs::ObjectiveGreedy(*problem);
    case SelectorKind::kLazyHybridGreedy:
      return ocs::LazyHybridGreedy(*problem);
  }
  return util::Status::InvalidArgument("unknown selector");
}

util::Result<gsp::GspResult> CrowdRtse::Estimate(
    int slot, const std::vector<graph::RoadId>& sampled_roads,
    const std::vector<double>& sampled_speeds) const {
  const gsp::SpeedPropagator propagator(*model_, config_.gsp);
  return propagator.Propagate(slot, sampled_roads, sampled_speeds);
}

util::Result<CrowdRtse::ConfidentEstimate> CrowdRtse::EstimateWithConfidence(
    int slot, const std::vector<graph::RoadId>& sampled_roads,
    const std::vector<double>& sampled_speeds) const {
  util::Result<gsp::GspResult> estimate =
      Estimate(slot, sampled_roads, sampled_speeds);
  if (!estimate.ok()) return estimate.status();
  util::Result<std::vector<double>> variance =
      gsp::LocalConditionalVariances(*model_, slot, sampled_roads);
  if (!variance.ok()) return variance.status();
  ConfidentEstimate out;
  out.estimate = std::move(*estimate);
  out.variance = std::move(*variance);
  return out;
}

util::Result<CrowdRtse::QueryOutcome> CrowdRtse::AnswerQuery(
    int slot, const std::vector<graph::RoadId>& queried_roads,
    const std::vector<graph::RoadId>& worker_roads,
    const crowd::CostModel& costs, int budget,
    crowd::CrowdSimulator& crowd_sim, const traffic::DayMatrix& truth,
    SelectorKind selector) {
  QueryOutcome outcome;
  util::Result<ocs::OcsSolution> selection = SelectRoads(
      slot, queried_roads, worker_roads, costs, budget, selector);
  if (!selection.ok()) return selection.status();
  outcome.selection = std::move(*selection);

  util::Result<crowd::CrowdRound> round =
      crowd_sim.Probe(outcome.selection.roads, costs, truth, slot);
  if (!round.ok()) return round.status();
  outcome.round = std::move(*round);

  std::vector<double> probed;
  probed.reserve(outcome.round.probes.size());
  for (const crowd::ProbeResult& p : outcome.round.probes) {
    probed.push_back(p.probed_kmh);
  }
  util::Result<gsp::GspResult> estimate =
      Estimate(slot, outcome.selection.roads, probed);
  if (!estimate.ok()) return estimate.status();
  outcome.estimate = std::move(*estimate);
  return outcome;
}

}  // namespace crowdrtse::core
