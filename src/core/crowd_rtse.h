#ifndef CROWDRTSE_CORE_CROWD_RTSE_H_
#define CROWDRTSE_CORE_CROWD_RTSE_H_

#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "crowd/cost_model.h"
#include "crowd/crowd_simulator.h"
#include "graph/graph.h"
#include "gsp/propagation.h"
#include "ocs/greedy_selectors.h"
#include "ocs/ocs_problem.h"
#include "rtf/ccd_trainer.h"
#include "rtf/correlation_cache.h"
#include "rtf/correlation_table.h"
#include "rtf/moment_estimator.h"
#include "rtf/rtf_model.h"
#include "traffic/history_store.h"
#include "util/status.h"

namespace crowdrtse::core {

/// End-to-end configuration of the CrowdRTSE pipeline.
struct CrowdRtseConfig {
  /// Offline stage: closed-form moment estimation, optionally refined by
  /// the paper's CCD trainer (Alg. 1) on the slots you query.
  rtf::MomentEstimatorOptions moments;
  bool refine_with_ccd = false;
  rtf::CcdOptions ccd;
  /// Path-correlation reduction for Gamma_R (Eq. 8-10).
  rtf::PathWeightMode path_mode = rtf::PathWeightMode::kNegLog;

  /// 0 (the default) keeps the paper-exact dense Gamma_R closure. C > 0
  /// switches to the sparse C-hop-bounded closure: corr(i, j) is the max
  /// path product over paths of at most C edges and exactly 0 beyond —
  /// O(n * ball) memory instead of O(n^2), the only feasible form at
  /// metropolitan road counts, and the locality contract that lets a
  /// partition halo reproduce shard-local correlations exactly.
  int correlation_hop_radius = 0;

  /// Drop OCS candidates whose Gamma_R correlation to every queried road
  /// is zero before the greedy solve. Off by default: the paper's greedy
  /// spends leftover budget on zero-gain candidates, and the seed selectors
  /// preserve that behaviour. With the sparse hop-bounded closure this
  /// pruning keeps candidate pools small (the C-hop ball of the query) and
  /// makes shard-local selection identical to global selection.
  bool prune_zero_gain_candidates = false;

  /// Gamma_R cache behaviour: memory budget (bytes; 0 = unlimited, the
  /// pre-cache behaviour), warm-start persistence directory, lock sharding
  /// and Dijkstra fan-out width. Persistence is ignored when
  /// refine_with_ccd is set — a persisted table cannot prove it was
  /// computed from the refined parameters.
  rtf::CorrelationCacheOptions correlation_cache;
  /// Eagerly reload persisted Gamma_R tables during BuildOffline (no-op
  /// without correlation_cache.persist_dir), so a restarted engine does not
  /// re-pay one Dijkstra per road per warm slot.
  bool warm_start_correlations = true;

  /// When RefineSlot changes a slot's edge correlations and the closure is
  /// sparse (correlation_hop_radius > 0), patch the cached Gamma_R in
  /// place: recompute only the rows within C-1 hops of a changed edge
  /// (provably the only rows that can move) instead of invalidating and
  /// re-running one bounded closure per road. Exact — the patched table
  /// equals a full rebuild bit for bit. Dense closures always take the
  /// full-invalidate path regardless (one edge can shift any dense entry).
  bool incremental_gamma_refresh = true;

  /// Online stage defaults.
  double theta = 0.92;  // redundancy threshold (paper's tuned value)
  gsp::GspOptions gsp;
};

/// Which OCS algorithm answers the selection step. The lazy variant
/// returns the same objective value as Hybrid-Greedy via lazy submodular
/// evaluation (~10x faster on the 607-road instances) and is what the
/// serving layer defaults to.
enum class SelectorKind {
  kHybridGreedy,
  kRatioGreedy,
  kObjectiveGreedy,
  kLazyHybridGreedy,
};

/// The CrowdRTSE system façade (paper Fig. 1):
///
///   offline:  BuildOffline() trains the RTF over the historical record and
///             caches per-slot road-road correlation closures Gamma_R;
///   online:   SelectRoads() solves OCS for a query (which roads to probe),
///             the caller launches crowdsourcing (e.g. crowd::CrowdSimulator)
///             and feeds the probed speeds to Estimate(), which runs GSP and
///             returns realtime speeds for the whole network.
class CrowdRtse {
 public:
  /// Trains RTF from `history` over `graph` (both must outlive the object;
  /// if refine_with_ccd is set only queried slots are refined, lazily).
  static util::Result<CrowdRtse> BuildOffline(
      const graph::Graph& graph, const traffic::HistoryStore& history,
      const CrowdRtseConfig& config);

  const graph::Graph& graph() const { return *graph_; }
  const rtf::RtfModel& model() const { return *model_; }
  const CrowdRtseConfig& config() const { return config_; }

  /// The cached correlation closure for `slot` (computed on first use —
  /// ~one Dijkstra per road, fanned out across the cache's thread pool).
  /// Thread-safe and non-blocking across slots: concurrent first touches of
  /// the same cold slot coalesce onto one computation, while other slots —
  /// warm or cold — proceed untouched. The shared_ptr keeps the table alive
  /// even if the cache's memory budget evicts it meanwhile. With
  /// refine_with_ccd set, a slot's first touch additionally refines it:
  /// refinement is serialized on an internal mutex, writes only that slot's
  /// parameters, and the table is computed from a snapshot taken under the
  /// lock — so concurrent CorrelationsFor/SelectRoads/Serve are safe
  /// without pre-warming. The one remaining caveat: Estimate() reads the
  /// model without that lock, so don't call it directly (bypassing
  /// SelectRoads) for a slot whose first refinement may be in flight on
  /// another thread.
  util::Result<rtf::CorrelationCache::TablePtr> CorrelationsFor(int slot);

  /// Hit/miss/eviction counters and cold-compute latency of the Gamma_R
  /// cache (surfaced by server::EngineStats::Report).
  rtf::CorrelationCache::StatsSnapshot CorrelationCacheStats() const {
    return correlation_cache_->stats();
  }

  /// The Gamma_R cache itself (e.g. for WarmStart or Invalidate).
  rtf::CorrelationCache& correlation_cache() { return *correlation_cache_; }

  /// Runs the CCD trainer on `slot` (whether or not refine_with_ccd is
  /// set; the slot is marked refined so lazy refinement will not repeat
  /// it) and brings the cached Gamma_R closure up to date with the new
  /// parameters. With a sparse closure and incremental_gamma_refresh the
  /// resident table is patched in place — only the rows that can have
  /// moved are recomputed; otherwise the slot is invalidated and the next
  /// lookup recomputes in full. Returns the number of Gamma_R rows
  /// recomputed by the incremental path, or -1 when the full-invalidate
  /// path was taken (0 = no edge correlation changed, nothing to do).
  util::Result<int> RefineSlot(int slot);

  /// Online step 1 — OCS: choose which worker-covered roads to probe for
  /// the given query, budget and (config) theta.
  util::Result<ocs::OcsSolution> SelectRoads(
      int slot, const std::vector<graph::RoadId>& queried_roads,
      const std::vector<graph::RoadId>& worker_roads,
      const crowd::CostModel& costs, int budget,
      SelectorKind selector = SelectorKind::kHybridGreedy);

  /// Online step 3 — GSP: infer every road's speed from the probed data.
  util::Result<gsp::GspResult> Estimate(
      int slot, const std::vector<graph::RoadId>& sampled_roads,
      const std::vector<double>& sampled_speeds) const;

  /// GSP estimate plus a per-road confidence: the local conditional
  /// variance of the GMRF given the probes (cheap lower bound on the exact
  /// posterior variance — see gsp/uncertainty.h). Sampled roads report
  /// zero variance.
  struct ConfidentEstimate {
    gsp::GspResult estimate;
    std::vector<double> variance;
  };
  util::Result<ConfidentEstimate> EstimateWithConfidence(
      int slot, const std::vector<graph::RoadId>& sampled_roads,
      const std::vector<double>& sampled_speeds) const;

  /// Everything a query produced, for inspection.
  struct QueryOutcome {
    ocs::OcsSolution selection;
    crowd::CrowdRound round;
    gsp::GspResult estimate;
  };

  /// Convenience end-to-end answer against a simulated crowd: select roads
  /// (OCS), probe them via `crowd_sim` against `truth`, and propagate (GSP).
  util::Result<QueryOutcome> AnswerQuery(
      int slot, const std::vector<graph::RoadId>& queried_roads,
      const std::vector<graph::RoadId>& worker_roads,
      const crowd::CostModel& costs, int budget,
      crowd::CrowdSimulator& crowd_sim, const traffic::DayMatrix& truth,
      SelectorKind selector = SelectorKind::kHybridGreedy);

  /// Per-query sigma weights: the periodicity intensity of each queried
  /// road at `slot` (the weights of the OCS objective, Eq. 13).
  std::vector<double> SigmaWeights(
      int slot, const std::vector<graph::RoadId>& queried_roads) const;

  /// The RTF periodic means mu_i^t of `roads` at `slot` — the degradation
  /// ladder's fallback estimate for a road whose probes all failed (the
  /// same spatio-temporal prior STC/HTTE fall back on when probe data is
  /// missing).
  std::vector<double> PeriodicMeans(
      int slot, const std::vector<graph::RoadId>& roads) const;

 private:
  /// Lazy CCD bookkeeping, shared across copies like the cache itself.
  struct CcdState {
    std::mutex mutex;
    std::set<int> refined_slots;
  };

  CrowdRtse(const graph::Graph& graph, const traffic::HistoryStore& history,
            rtf::RtfModel model, const CrowdRtseConfig& config);

  const graph::Graph* graph_;
  const traffic::HistoryStore* history_;
  CrowdRtseConfig config_;
  // CrowdRtse stays copyable for Result<CrowdRtse>, so the (mutex-bearing)
  // cache and CCD state live behind shared_ptrs; copies share them. The
  // model is shared too: CCD refinement mutates it, and a copy recomputing
  // an evicted slot that the shared refined_slots set already marks as
  // refined must see those refined parameters, not a private stale copy.
  std::shared_ptr<rtf::RtfModel> model_;
  std::shared_ptr<rtf::CorrelationCache> correlation_cache_;
  std::shared_ptr<CcdState> ccd_state_ = std::make_shared<CcdState>();
};

}  // namespace crowdrtse::core

#endif  // CROWDRTSE_CORE_CROWD_RTSE_H_
