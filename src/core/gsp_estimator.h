#ifndef CROWDRTSE_CORE_GSP_ESTIMATOR_H_
#define CROWDRTSE_CORE_GSP_ESTIMATOR_H_

#include "baselines/estimator.h"
#include "gsp/propagation.h"
#include "rtf/rtf_model.h"

namespace crowdrtse::core {

/// Adapts GSP to the RealtimeEstimator interface so the evaluation harness
/// compares GSP / LASSO / GRMC / Per uniformly.
class GspEstimator : public baselines::RealtimeEstimator {
 public:
  /// The model must outlive the estimator.
  GspEstimator(const rtf::RtfModel& model, const gsp::GspOptions& options)
      : propagator_(model, options) {}

  util::Result<std::vector<double>> Estimate(
      int slot, const std::vector<graph::RoadId>& observed_roads,
      const std::vector<double>& observed_speeds) const override {
    util::Result<gsp::GspResult> result =
        propagator_.Propagate(slot, observed_roads, observed_speeds);
    if (!result.ok()) return result.status();
    return std::move(result->speeds);
  }

  std::string name() const override { return "GSP"; }

 private:
  gsp::SpeedPropagator propagator_;
};

}  // namespace crowdrtse::core

#endif  // CROWDRTSE_CORE_GSP_ESTIMATOR_H_
