#include "core/congestion_monitor.h"

#include <algorithm>
#include <string>

namespace crowdrtse::core {

const char* CongestionLevelName(CongestionLevel level) {
  switch (level) {
    case CongestionLevel::kNone:
      return "none";
    case CongestionLevel::kSlow:
      return "slow";
    case CongestionLevel::kCongested:
      return "congested";
    case CongestionLevel::kBlocked:
      return "blocked";
  }
  return "?";
}

CongestionMonitor::CongestionMonitor(const rtf::RtfModel& model,
                                     const CongestionThresholds& thresholds)
    : model_(model), thresholds_(thresholds) {}

CongestionLevel CongestionMonitor::Grade(double speed_ratio) const {
  if (speed_ratio < thresholds_.blocked) return CongestionLevel::kBlocked;
  if (speed_ratio < thresholds_.congested) {
    return CongestionLevel::kCongested;
  }
  if (speed_ratio < thresholds_.slow) return CongestionLevel::kSlow;
  return CongestionLevel::kNone;
}

util::Result<std::vector<CongestionAlarm>> CongestionMonitor::Scan(
    int slot, const std::vector<double>& estimates,
    const std::vector<int>& hops) const {
  if (slot < 0 || slot >= model_.num_slots()) {
    return util::Status::OutOfRange("slot out of range: " +
                                    std::to_string(slot));
  }
  if (estimates.size() != static_cast<size_t>(model_.num_roads())) {
    return util::Status::InvalidArgument(
        "estimate vector does not cover all roads");
  }
  if (!hops.empty() && hops.size() != estimates.size()) {
    return util::Status::InvalidArgument("hops vector size mismatch");
  }
  std::vector<CongestionAlarm> alarms;
  for (graph::RoadId r = 0; r < model_.num_roads(); ++r) {
    const double expected = model_.Mu(slot, r);
    if (expected <= 0.0) continue;
    const double ratio = estimates[static_cast<size_t>(r)] / expected;
    const CongestionLevel level = Grade(ratio);
    if (level == CongestionLevel::kNone) continue;
    CongestionAlarm alarm;
    alarm.road = r;
    alarm.level = level;
    alarm.estimated_kmh = estimates[static_cast<size_t>(r)];
    alarm.expected_kmh = expected;
    alarm.speed_ratio = ratio;
    alarm.hops_from_probe =
        hops.empty() ? -1 : hops[static_cast<size_t>(r)];
    alarms.push_back(alarm);
  }
  std::sort(alarms.begin(), alarms.end(),
            [](const CongestionAlarm& a, const CongestionAlarm& b) {
              if (a.level != b.level) {
                return static_cast<int>(a.level) > static_cast<int>(b.level);
              }
              return a.speed_ratio < b.speed_ratio;
            });
  return alarms;
}

}  // namespace crowdrtse::core
