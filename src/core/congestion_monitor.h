#ifndef CROWDRTSE_CORE_CONGESTION_MONITOR_H_
#define CROWDRTSE_CORE_CONGESTION_MONITOR_H_

#include <vector>

#include "graph/graph.h"
#include "rtf/rtf_model.h"
#include "util/status.h"

namespace crowdrtse::core {

/// Severity grades for a congestion alarm.
enum class CongestionLevel { kNone = 0, kSlow, kCongested, kBlocked };

const char* CongestionLevelName(CongestionLevel level);

/// One raised alarm: a road running well below its periodic expectation.
struct CongestionAlarm {
  graph::RoadId road = graph::kInvalidRoad;
  CongestionLevel level = CongestionLevel::kNone;
  double estimated_kmh = 0.0;
  double expected_kmh = 0.0;
  /// estimated / expected in [0, 1+); the alarm trigger.
  double speed_ratio = 1.0;
  /// Hop distance from the nearest probe (-1 if unknown): alarms far from
  /// any probe deserve less trust.
  int hops_from_probe = -1;
};

/// Alarm thresholds on estimate/expectation ratios.
struct CongestionThresholds {
  double slow = 0.7;        // below 70% of the periodic speed
  double congested = 0.5;
  double blocked = 0.3;
};

/// Turns a realtime estimate into congestion alarms — the traffic
/// surveillance / accident detection application from the paper's
/// introduction. Compares each road's estimated speed against its periodic
/// expectation mu_i^t and grades the shortfall.
class CongestionMonitor {
 public:
  /// The model must outlive the monitor.
  CongestionMonitor(const rtf::RtfModel& model,
                    const CongestionThresholds& thresholds = {});

  /// Scans `estimates` (all roads, as produced by GSP) at `slot`. `hops`
  /// (optional, may be empty) is GspResult::hops for provenance. Alarms
  /// come back sorted by severity then speed ratio.
  util::Result<std::vector<CongestionAlarm>> Scan(
      int slot, const std::vector<double>& estimates,
      const std::vector<int>& hops = {}) const;

  /// Grades a single ratio.
  CongestionLevel Grade(double speed_ratio) const;

 private:
  const rtf::RtfModel& model_;
  CongestionThresholds thresholds_;
};

}  // namespace crowdrtse::core

#endif  // CROWDRTSE_CORE_CONGESTION_MONITOR_H_
