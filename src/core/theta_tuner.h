#ifndef CROWDRTSE_CORE_THETA_TUNER_H_
#define CROWDRTSE_CORE_THETA_TUNER_H_

#include <vector>

#include "crowd/cost_model.h"
#include "graph/graph.h"
#include "rtf/correlation_table.h"
#include "traffic/history_store.h"
#include "util/status.h"

namespace crowdrtse::core {

/// Options of the redundancy-threshold tuner.
struct ThetaTunerOptions {
  /// Candidate thresholds, each in (0, 1].
  std::vector<double> candidate_thetas{0.7, 0.8, 0.9, 0.92, 0.95, 1.0};
  /// Gamma_R path reduction. Must match the engine's configured mode
  /// (CrowdRtseConfig::path_mode): tuning theta against kNegLog tables and
  /// then serving with kReciprocal ones would optimize the wrong objective.
  rtf::PathWeightMode path_mode = rtf::PathWeightMode::kNegLog;
  /// The last N historical days are held out as pseudo-realtime days.
  int validation_days = 3;
  /// Query slots evaluated on each validation day.
  std::vector<int> slots{99, 150, 216};
  int budget = 60;
  int query_size = 50;
  uint64_t seed = 1;
};

/// One candidate's cross-validation score.
struct ThetaScore {
  double theta = 0.0;
  double mape = 0.0;
};

struct ThetaTunerResult {
  double best_theta = 1.0;
  std::vector<ThetaScore> scores;  // aligned with candidate_thetas
};

/// Tunes the OCS redundancy threshold theta by historical cross-validation
/// (the paper defers to ref [30] for this step): the RTF is trained on the
/// history minus the last `validation_days`; each held-out day plays
/// realtime ground truth; for every candidate theta the full online
/// pipeline (selection at that theta -> noiseless probes -> GSP) is scored
/// by MAPE over a random query, and the best-scoring theta wins (ties to
/// the smaller theta, which keeps more diversity).
util::Result<ThetaTunerResult> TuneTheta(
    const graph::Graph& graph, const traffic::HistoryStore& history,
    const crowd::CostModel& costs,
    const ThetaTunerOptions& options = ThetaTunerOptions());

}  // namespace crowdrtse::core

#endif  // CROWDRTSE_CORE_THETA_TUNER_H_
