#ifndef CROWDRTSE_OCS_OCS_PROBLEM_H_
#define CROWDRTSE_OCS_OCS_PROBLEM_H_

#include <vector>

#include "crowd/cost_model.h"
#include "graph/graph.h"
#include "rtf/correlation_table.h"
#include "util/status.h"

namespace crowdrtse::ocs {

/// One instance of the Optimal Crowdsourced roads Selection problem (paper
/// Eq. 15):
///
///   maximise   sum_{r in R^q} sigma_r * corr(r, R^c)
///   subject to R^c subset of R^w,
///              sum_{r in R^c} c_r <= K,
///              corr(r_i, r_j) <= theta for all pairs in R^c.
///
/// The correlation table, cost model, and weight vector are borrowed; they
/// must outlive the problem object.
class OcsProblem {
 public:
  /// Validates shapes and ranges. `sigma_weights[i]` is the periodicity
  /// intensity of `queried_roads[i]` at the query slot.
  static util::Result<OcsProblem> Create(
      const rtf::CorrelationTable& correlations,
      std::vector<graph::RoadId> queried_roads,
      std::vector<double> sigma_weights,
      std::vector<graph::RoadId> candidate_roads,
      const crowd::CostModel& costs, int budget, double theta);

  const rtf::CorrelationTable& correlations() const { return *correlations_; }
  const std::vector<graph::RoadId>& queried_roads() const {
    return queried_roads_;
  }
  const std::vector<double>& sigma_weights() const { return sigma_weights_; }
  const std::vector<graph::RoadId>& candidate_roads() const {
    return candidate_roads_;
  }
  const crowd::CostModel& costs() const { return *costs_; }
  int budget() const { return budget_; }
  double theta() const { return theta_; }

  /// The periodicity-weighted correlation objective ocs(R^c) (Eq. 13);
  /// 0 for the empty selection.
  double Objective(const std::vector<graph::RoadId>& selection) const;

  /// True iff `selection` satisfies all three constraints.
  bool IsFeasible(const std::vector<graph::RoadId>& selection) const;

  /// True iff adding `candidate` to the (assumed feasible) `selection`
  /// keeps the redundancy constraint: corr(candidate, s) <= theta for all
  /// already-selected s.
  bool RedundancyOk(graph::RoadId candidate,
                    const std::vector<graph::RoadId>& selection) const;

 private:
  OcsProblem() = default;

  const rtf::CorrelationTable* correlations_ = nullptr;
  std::vector<graph::RoadId> queried_roads_;
  std::vector<double> sigma_weights_;
  std::vector<graph::RoadId> candidate_roads_;
  const crowd::CostModel* costs_ = nullptr;
  int budget_ = 0;
  double theta_ = 1.0;
};

/// Incremental evaluator for greedy selection: keeps, per queried road, the
/// best correlation into the current selection, so the marginal gain of a
/// candidate is O(|R^q|) and adding it is O(|R^q|). This realises the
/// paper's O(K |R^w|) greedy envelope with |R^q| as a constant factor.
class IncrementalObjective {
 public:
  explicit IncrementalObjective(const OcsProblem& problem);

  /// ocs(selection + candidate) - ocs(selection).
  double Gain(graph::RoadId candidate) const;

  /// Commits `candidate` into the selection.
  void Add(graph::RoadId candidate);

  double objective() const { return objective_; }
  const std::vector<graph::RoadId>& selection() const { return selection_; }
  int total_cost() const { return total_cost_; }

 private:
  const OcsProblem& problem_;
  std::vector<double> best_corr_;  // aligned with queried_roads
  std::vector<graph::RoadId> selection_;
  double objective_ = 0.0;
  int total_cost_ = 0;
};

/// A solved OCS instance.
struct OcsSolution {
  std::vector<graph::RoadId> roads;
  double objective = 0.0;
  int total_cost = 0;
};

}  // namespace crowdrtse::ocs

#endif  // CROWDRTSE_OCS_OCS_PROBLEM_H_
