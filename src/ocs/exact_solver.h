#ifndef CROWDRTSE_OCS_EXACT_SOLVER_H_
#define CROWDRTSE_OCS_EXACT_SOLVER_H_

#include "ocs/ocs_problem.h"

namespace crowdrtse::ocs {

/// Options for the exact branch-and-bound OCS solver.
struct ExactSolverOptions {
  /// Refuse instances with more candidates than this: OCS is NP-hard and
  /// the exact solver exists to audit the greedy approximation gap on small
  /// instances, not to run in production.
  int max_candidates = 24;
  /// Safety valve on explored nodes.
  long max_nodes = 50'000'000;
};

/// Optimal OCS by depth-first branch and bound over include/exclude
/// decisions. Pruning bound: for every queried road, the best correlation
/// achievable using the current selection plus all not-yet-decided
/// candidates — an admissible (never under-estimating) completion bound
/// because the objective is monotone in the selection.
util::Result<OcsSolution> ExactSolve(
    const OcsProblem& problem,
    const ExactSolverOptions& options = ExactSolverOptions());

}  // namespace crowdrtse::ocs

#endif  // CROWDRTSE_OCS_EXACT_SOLVER_H_
