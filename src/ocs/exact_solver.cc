#include "ocs/exact_solver.h"

#include <algorithm>
#include <string>

namespace crowdrtse::ocs {

namespace {

class BranchAndBound {
 public:
  BranchAndBound(const OcsProblem& problem, const ExactSolverOptions& options)
      : problem_(problem),
        options_(options),
        candidates_(problem.candidate_roads()) {
    // Decide high-value candidates first so good incumbents appear early.
    std::sort(candidates_.begin(), candidates_.end(),
              [&](graph::RoadId a, graph::RoadId b) {
                const double ga = SoloGain(a) / problem_.costs().Cost(a);
                const double gb = SoloGain(b) / problem_.costs().Cost(b);
                return ga > gb;
              });
  }

  util::Result<OcsSolution> Run() {
    std::vector<graph::RoadId> selection;
    std::vector<double> best_corr(problem_.queried_roads().size(), 0.0);
    Search(0, 0, 0.0, best_corr, selection);
    if (nodes_ >= options_.max_nodes) {
      return util::Status::FailedPrecondition(
          "exact solver node budget exhausted");
    }
    best_.objective = problem_.Objective(best_.roads);
    best_.total_cost = problem_.costs().TotalCost(best_.roads);
    return best_;
  }

 private:
  double SoloGain(graph::RoadId candidate) const {
    double gain = 0.0;
    const auto& queried = problem_.queried_roads();
    const auto& weights = problem_.sigma_weights();
    for (size_t i = 0; i < queried.size(); ++i) {
      gain += weights[i] * problem_.correlations().Corr(queried[i], candidate);
    }
    return gain;
  }

  /// Admissible completion bound: per queried road, the best correlation
  /// reachable via the current selection or any undecided candidate.
  double UpperBound(size_t next, const std::vector<double>& best_corr) const {
    const auto& queried = problem_.queried_roads();
    const auto& weights = problem_.sigma_weights();
    double bound = 0.0;
    for (size_t i = 0; i < queried.size(); ++i) {
      double best = best_corr[i];
      for (size_t k = next; k < candidates_.size(); ++k) {
        best = std::max(
            best, problem_.correlations().Corr(queried[i], candidates_[k]));
      }
      bound += weights[i] * best;
    }
    return bound;
  }

  void Search(size_t next, int cost_so_far, double objective,
              std::vector<double>& best_corr,
              std::vector<graph::RoadId>& selection) {
    if (++nodes_ >= options_.max_nodes) return;
    if (objective > best_objective_) {
      best_objective_ = objective;
      best_.roads = selection;
    }
    if (next >= candidates_.size()) return;
    if (UpperBound(next, best_corr) <= best_objective_) return;  // prune

    const graph::RoadId candidate = candidates_[next];
    const int cost = problem_.costs().Cost(candidate);
    // Branch 1: include (if feasible).
    if (cost_so_far + cost <= problem_.budget() &&
        problem_.RedundancyOk(candidate, selection)) {
      const auto& queried = problem_.queried_roads();
      const auto& weights = problem_.sigma_weights();
      std::vector<std::pair<size_t, double>> touched;
      double gain = 0.0;
      for (size_t i = 0; i < queried.size(); ++i) {
        const double corr =
            problem_.correlations().Corr(queried[i], candidate);
        if (corr > best_corr[i]) {
          touched.emplace_back(i, best_corr[i]);
          gain += weights[i] * (corr - best_corr[i]);
          best_corr[i] = corr;
        }
      }
      selection.push_back(candidate);
      Search(next + 1, cost_so_far + cost, objective + gain, best_corr,
             selection);
      selection.pop_back();
      for (const auto& [i, old] : touched) best_corr[i] = old;
    }
    // Branch 2: exclude.
    Search(next + 1, cost_so_far, objective, best_corr, selection);
  }

  const OcsProblem& problem_;
  ExactSolverOptions options_;
  std::vector<graph::RoadId> candidates_;
  OcsSolution best_;
  double best_objective_ = -1.0;
  long nodes_ = 0;
};

}  // namespace

util::Result<OcsSolution> ExactSolve(const OcsProblem& problem,
                                     const ExactSolverOptions& options) {
  if (static_cast<int>(problem.candidate_roads().size()) >
      options.max_candidates) {
    return util::Status::InvalidArgument(
        "instance too large for exact solving (" +
        std::to_string(problem.candidate_roads().size()) + " candidates, " +
        "limit " + std::to_string(options.max_candidates) + ")");
  }
  BranchAndBound solver(problem, options);
  return solver.Run();
}

}  // namespace crowdrtse::ocs
