#ifndef CROWDRTSE_OCS_GREEDY_SELECTORS_H_
#define CROWDRTSE_OCS_GREEDY_SELECTORS_H_

#include "ocs/ocs_problem.h"
#include "util/rng.h"

namespace crowdrtse::ocs {

/// Ratio-Greedy (paper Alg. 2): repeatedly adds the feasible candidate with
/// the highest marginal-gain-to-cost ratio. O(K |R^w| |R^q|) time,
/// O(|R^w|) space. Can be arbitrarily bad alone (paper Example 1).
OcsSolution RatioGreedy(const OcsProblem& problem);

/// Objective-Greedy (paper Alg. 3): repeatedly adds the feasible candidate
/// with the highest absolute marginal gain.
OcsSolution ObjectiveGreedy(const OcsProblem& problem);

/// Hybrid-Greedy (paper Alg. 4): runs both greedies and keeps the better
/// solution. Approximation ratio (1 - 1/e)/2 (paper Theorem 2).
OcsSolution HybridGreedy(const OcsProblem& problem);

/// Random baseline ("Rand" in the paper's figures): shuffles the candidates
/// and takes them while they stay feasible.
OcsSolution RandomSelect(const OcsProblem& problem, util::Rng& rng);

/// Lazy-evaluation variants (an optimisation beyond the paper): the OCS
/// objective is monotone submodular, so a candidate's marginal gain can
/// only shrink as the selection grows. The lazy greedy keeps stale gains
/// in a max-heap and only recomputes the top entry, selecting it when its
/// gain is fresh — typically re-scoring a handful of candidates per round
/// instead of the whole feasible set. Picks the same objective value as
/// the eager versions (selections can differ only on exact gain ties).
OcsSolution LazyRatioGreedy(const OcsProblem& problem);
OcsSolution LazyObjectiveGreedy(const OcsProblem& problem);

/// Hybrid over the lazy variants: the drop-in faster HybridGreedy.
OcsSolution LazyHybridGreedy(const OcsProblem& problem);

/// Detects the paper's Remark-2 trivial cases (theta == 1 and unit costs
/// with an over-adequate budget, or fewer queried roads than budget) and
/// returns the closed-form optimum; a disengaged Result status when the
/// instance is not trivial.
util::Result<OcsSolution> SolveTrivialCase(const OcsProblem& problem);

}  // namespace crowdrtse::ocs

#endif  // CROWDRTSE_OCS_GREEDY_SELECTORS_H_
