#include "ocs/greedy_selectors.h"

#include <algorithm>
#include <queue>
#include <set>

#include "util/trace.h"

namespace crowdrtse::ocs {

namespace {

/// Shared greedy skeleton: each round scores every still-feasible candidate
/// with `score(gain, cost)` and commits the argmax, until nothing fits the
/// remaining budget / redundancy constraints.
template <typename ScoreFn>
OcsSolution RunGreedy(const OcsProblem& problem, ScoreFn score) {
  IncrementalObjective objective(problem);
  std::vector<graph::RoadId> pool = problem.candidate_roads();
  std::vector<bool> selected(pool.size(), false);
  int budget_left = problem.budget();

  for (;;) {
    double best_score = -1.0;
    double best_gain = 0.0;
    size_t best_index = pool.size();
    for (size_t i = 0; i < pool.size(); ++i) {
      if (selected[i]) continue;
      const graph::RoadId candidate = pool[i];
      const int cost = problem.costs().Cost(candidate);
      if (cost > budget_left) continue;
      if (!problem.RedundancyOk(candidate, objective.selection())) continue;
      const double gain = objective.Gain(candidate);
      const double candidate_score = score(gain, cost);
      if (candidate_score > best_score) {
        best_score = candidate_score;
        best_gain = gain;
        best_index = i;
      }
    }
    if (best_index == pool.size()) break;  // feasible set exhausted
    (void)best_gain;
    selected[best_index] = true;
    budget_left -= problem.costs().Cost(pool[best_index]);
    objective.Add(pool[best_index]);
  }

  OcsSolution solution;
  solution.roads = objective.selection();
  solution.objective = objective.objective();
  solution.total_cost = objective.total_cost();
  return solution;
}

/// Lazy greedy skeleton. Invariants that make laziness sound here:
///  * gains are diminishing (submodular objective), so a stale gain is an
///    upper bound and the heap top with a fresh gain is the true argmax;
///  * the remaining budget only shrinks and the redundancy constraint only
///    tightens, so a candidate found infeasible can be discarded for good.
template <typename ScoreFn>
OcsSolution RunLazyGreedy(const OcsProblem& problem, ScoreFn score) {
  IncrementalObjective objective(problem);
  int budget_left = problem.budget();

  struct Entry {
    double score;
    double gain;
    graph::RoadId road;
    size_t stamp;  // selection count the score was computed at
    bool operator<(const Entry& other) const {
      return score < other.score;  // max-heap
    }
  };
  std::priority_queue<Entry> heap;
  for (graph::RoadId candidate : problem.candidate_roads()) {
    const double gain = objective.Gain(candidate);
    heap.push({score(gain, problem.costs().Cost(candidate)), gain,
               candidate, 0});
  }

  size_t selections = 0;
  while (!heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    const int cost = problem.costs().Cost(top.road);
    if (cost > budget_left) continue;  // permanently infeasible
    if (!problem.RedundancyOk(top.road, objective.selection())) continue;
    if (top.stamp != selections) {
      // Stale: re-score against the current selection and requeue.
      const double gain = objective.Gain(top.road);
      heap.push({score(gain, cost), gain, top.road, selections});
      continue;
    }
    objective.Add(top.road);
    budget_left -= cost;
    ++selections;
  }

  OcsSolution solution;
  solution.roads = objective.selection();
  solution.objective = objective.objective();
  solution.total_cost = objective.total_cost();
  return solution;
}

/// Stamps a finished selector run onto its span (no-op untraced).
OcsSolution Annotated(util::trace::Span& span, OcsSolution solution) {
  if (span.active()) {
    span.Annotate("selected", static_cast<int64_t>(solution.roads.size()));
    span.Annotate("objective", solution.objective);
    span.Annotate("cost", static_cast<int64_t>(solution.total_cost));
  }
  return solution;
}

}  // namespace

OcsSolution RatioGreedy(const OcsProblem& problem) {
  util::trace::Span span("ocs.ratio_greedy");
  return Annotated(span, RunGreedy(problem, [](double gain, int cost) {
                     return gain / static_cast<double>(cost);
                   }));
}

OcsSolution ObjectiveGreedy(const OcsProblem& problem) {
  util::trace::Span span("ocs.objective_greedy");
  return Annotated(span,
                   RunGreedy(problem,
                             [](double gain, int /*cost*/) { return gain; }));
}

OcsSolution HybridGreedy(const OcsProblem& problem) {
  OcsSolution ratio = RatioGreedy(problem);
  OcsSolution objective = ObjectiveGreedy(problem);
  return ratio.objective >= objective.objective ? ratio : objective;
}

OcsSolution LazyRatioGreedy(const OcsProblem& problem) {
  util::trace::Span span("ocs.lazy_ratio_greedy");
  return Annotated(span, RunLazyGreedy(problem, [](double gain, int cost) {
                     return gain / static_cast<double>(cost);
                   }));
}

OcsSolution LazyObjectiveGreedy(const OcsProblem& problem) {
  util::trace::Span span("ocs.lazy_objective_greedy");
  return Annotated(
      span, RunLazyGreedy(problem,
                          [](double gain, int /*cost*/) { return gain; }));
}

OcsSolution LazyHybridGreedy(const OcsProblem& problem) {
  OcsSolution ratio = LazyRatioGreedy(problem);
  OcsSolution objective = LazyObjectiveGreedy(problem);
  return ratio.objective >= objective.objective ? ratio : objective;
}

OcsSolution RandomSelect(const OcsProblem& problem, util::Rng& rng) {
  std::vector<graph::RoadId> pool = problem.candidate_roads();
  rng.Shuffle(pool);
  IncrementalObjective objective(problem);
  int budget_left = problem.budget();
  for (graph::RoadId candidate : pool) {
    const int cost = problem.costs().Cost(candidate);
    if (cost > budget_left) continue;
    if (!problem.RedundancyOk(candidate, objective.selection())) continue;
    objective.Add(candidate);
    budget_left -= cost;
  }
  OcsSolution solution;
  solution.roads = objective.selection();
  solution.objective = objective.objective();
  solution.total_cost = objective.total_cost();
  return solution;
}

util::Result<OcsSolution> SolveTrivialCase(const OcsProblem& problem) {
  const bool unit_costs = std::all_of(
      problem.candidate_roads().begin(), problem.candidate_roads().end(),
      [&](graph::RoadId r) { return problem.costs().Cost(r) == 1; });
  if (problem.theta() < 1.0 || !unit_costs) {
    return util::Status::FailedPrecondition(
        "not a trivial instance (needs theta == 1 and unit costs)");
  }
  OcsSolution solution;
  const int budget = problem.budget();
  if (static_cast<int>(problem.candidate_roads().size()) <= budget) {
    // Over-adequate budget: take everything (Remark 2, case 1).
    solution.roads = problem.candidate_roads();
  } else if (static_cast<int>(problem.queried_roads().size()) <= budget) {
    // Per queried road, pick its top-correlated candidate (case 2).
    std::set<graph::RoadId> chosen;
    for (graph::RoadId q : problem.queried_roads()) {
      double best = -1.0;
      graph::RoadId best_candidate = graph::kInvalidRoad;
      for (graph::RoadId c : problem.candidate_roads()) {
        const double corr = problem.correlations().Corr(q, c);
        if (corr > best) {
          best = corr;
          best_candidate = c;
        }
      }
      if (best_candidate != graph::kInvalidRoad) chosen.insert(best_candidate);
    }
    solution.roads.assign(chosen.begin(), chosen.end());
  } else {
    return util::Status::FailedPrecondition(
        "not a trivial instance (budget below both |R^w| and |R^q|)");
  }
  solution.objective = problem.Objective(solution.roads);
  solution.total_cost = problem.costs().TotalCost(solution.roads);
  return solution;
}

}  // namespace crowdrtse::ocs
