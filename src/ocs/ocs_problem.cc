#include "ocs/ocs_problem.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

namespace crowdrtse::ocs {

util::Result<OcsProblem> OcsProblem::Create(
    const rtf::CorrelationTable& correlations,
    std::vector<graph::RoadId> queried_roads,
    std::vector<double> sigma_weights,
    std::vector<graph::RoadId> candidate_roads,
    const crowd::CostModel& costs, int budget, double theta) {
  if (queried_roads.empty()) {
    return util::Status::InvalidArgument("no queried roads");
  }
  if (sigma_weights.size() != queried_roads.size()) {
    return util::Status::InvalidArgument(
        "sigma weight count must match queried roads");
  }
  if (budget < 0) {
    return util::Status::InvalidArgument("negative budget");
  }
  if (!(theta > 0.0 && theta <= 1.0)) {
    return util::Status::InvalidArgument("theta must be in (0, 1]");
  }
  const int n = correlations.num_roads();
  std::set<graph::RoadId> seen;
  for (graph::RoadId r : candidate_roads) {
    if (r < 0 || r >= n) {
      return util::Status::InvalidArgument("candidate road out of range: " +
                                           std::to_string(r));
    }
    if (r >= costs.num_roads()) {
      return util::Status::InvalidArgument(
          "candidate road missing from cost model: " + std::to_string(r));
    }
    if (!seen.insert(r).second) {
      return util::Status::InvalidArgument("duplicate candidate road: " +
                                           std::to_string(r));
    }
  }
  std::set<graph::RoadId> queried_seen;
  for (size_t i = 0; i < queried_roads.size(); ++i) {
    const graph::RoadId r = queried_roads[i];
    if (r < 0 || r >= n) {
      return util::Status::InvalidArgument("queried road out of range: " +
                                           std::to_string(r));
    }
    if (!queried_seen.insert(r).second) {
      // R^q is a set; a duplicate would double-weight one road silently.
      return util::Status::InvalidArgument("duplicate queried road: " +
                                           std::to_string(r));
    }
    if (!(sigma_weights[i] >= 0.0) || !std::isfinite(sigma_weights[i])) {
      return util::Status::InvalidArgument("sigma weights must be >= 0");
    }
  }

  OcsProblem problem;
  problem.correlations_ = &correlations;
  problem.queried_roads_ = std::move(queried_roads);
  problem.sigma_weights_ = std::move(sigma_weights);
  problem.candidate_roads_ = std::move(candidate_roads);
  problem.costs_ = &costs;
  problem.budget_ = budget;
  problem.theta_ = theta;
  return problem;
}

double OcsProblem::Objective(
    const std::vector<graph::RoadId>& selection) const {
  if (selection.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < queried_roads_.size(); ++i) {
    total += sigma_weights_[i] *
             correlations_->RoadSetCorr(queried_roads_[i], selection);
  }
  return total;
}

bool OcsProblem::RedundancyOk(
    graph::RoadId candidate,
    const std::vector<graph::RoadId>& selection) const {
  // theta == 1 disables the constraint (corr is capped at 1 anyway, but a
  // candidate correlating at exactly 1.0 with a selected road is then
  // allowed, matching the paper's Theta(1) setting).
  for (graph::RoadId s : selection) {
    if (s == candidate) return false;  // never select a road twice
    if (correlations_->Corr(candidate, s) > theta_) return false;
  }
  return true;
}

bool OcsProblem::IsFeasible(
    const std::vector<graph::RoadId>& selection) const {
  std::set<graph::RoadId> candidate_set(candidate_roads_.begin(),
                                        candidate_roads_.end());
  int total_cost = 0;
  for (size_t i = 0; i < selection.size(); ++i) {
    const graph::RoadId r = selection[i];
    if (candidate_set.count(r) == 0) return false;
    total_cost += costs_->Cost(r);
    for (size_t j = i + 1; j < selection.size(); ++j) {
      if (selection[j] == r) return false;
      if (correlations_->Corr(r, selection[j]) > theta_) return false;
    }
  }
  return total_cost <= budget_;
}

IncrementalObjective::IncrementalObjective(const OcsProblem& problem)
    : problem_(problem),
      best_corr_(problem.queried_roads().size(), 0.0) {}

double IncrementalObjective::Gain(graph::RoadId candidate) const {
  const auto& queried = problem_.queried_roads();
  const auto& weights = problem_.sigma_weights();
  double gain = 0.0;
  for (size_t i = 0; i < queried.size(); ++i) {
    const double corr = problem_.correlations().Corr(queried[i], candidate);
    if (corr > best_corr_[i]) {
      gain += weights[i] * (corr - best_corr_[i]);
    }
  }
  return gain;
}

void IncrementalObjective::Add(graph::RoadId candidate) {
  const auto& queried = problem_.queried_roads();
  const auto& weights = problem_.sigma_weights();
  for (size_t i = 0; i < queried.size(); ++i) {
    const double corr = problem_.correlations().Corr(queried[i], candidate);
    if (corr > best_corr_[i]) {
      objective_ += weights[i] * (corr - best_corr_[i]);
      best_corr_[i] = corr;
    }
  }
  selection_.push_back(candidate);
  total_cost_ += problem_.costs().Cost(candidate);
}

}  // namespace crowdrtse::ocs
