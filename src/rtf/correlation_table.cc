#include "rtf/correlation_table.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "graph/bfs.h"
#include "graph/dijkstra.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace crowdrtse::rtf {

namespace {

/// Sparse row of the C-hop-bounded closure from `src`: best_k(v) = max over
/// paths of at most k edges of the product of edge rhos, by Bellman-Ford
/// layering over the C-hop ball. Every candidate product multiplies its
/// rhos in path order from the source and competes through max, so the
/// result is independent of neighbour iteration order — an induced subgraph
/// containing the whole ball reproduces these doubles bit for bit (the
/// partition halo invariant). std::map keeps the emitted row sorted by
/// destination id for the CSR layout.
std::map<graph::RoadId, double> BoundedHopRow(
    const graph::Graph& graph, const std::vector<double>& edge_rho,
    graph::RoadId src, int hop_radius) {
  std::map<graph::RoadId, double> best;
  best[src] = 1.0;
  for (int k = 0; k < hop_radius; ++k) {
    std::map<graph::RoadId, double> next = best;
    bool changed = false;
    for (const auto& [u, val] : best) {
      if (val <= 0.0) continue;
      for (const graph::Adjacency& adj : graph.Neighbors(u)) {
        const double rho = edge_rho[static_cast<size_t>(adj.edge)];
        if (rho <= 0.0) continue;
        const double cand = val * rho;
        auto [it, inserted] = next.try_emplace(adj.neighbor, cand);
        if (inserted) {
          changed = true;
        } else if (cand > it->second) {
          it->second = cand;
          changed = true;
        }
      }
    }
    best = std::move(next);
    if (!changed) break;
  }
  best[src] = 1.0;
  return best;
}

}  // namespace

util::Result<CorrelationTable> CorrelationTable::Compute(
    const RtfModel& model, int slot, PathWeightMode mode,
    util::ThreadPool* fanout, int hop_radius) {
  if (slot < 0 || slot >= model.num_slots()) {
    return util::Status::OutOfRange("slot out of range");
  }
  std::vector<double> edge_rho(static_cast<size_t>(model.num_edges()));
  for (graph::EdgeId e = 0; e < model.num_edges(); ++e) {
    edge_rho[static_cast<size_t>(e)] = model.Rho(slot, e);
  }
  return FromEdgeCorrelations(model.graph(), edge_rho, mode, fanout,
                              hop_radius);
}

util::Result<CorrelationTable> CorrelationTable::FromEdgeCorrelations(
    const graph::Graph& graph, const std::vector<double>& edge_rho,
    PathWeightMode mode, util::ThreadPool* fanout, int hop_radius) {
  if (edge_rho.size() != static_cast<size_t>(graph.num_edges())) {
    return util::Status::InvalidArgument(
        "edge correlation count does not match the graph");
  }
  for (double rho : edge_rho) {
    if (!(rho >= 0.0 && rho <= 1.0)) {
      return util::Status::InvalidArgument(
          "edge correlations must lie in [0, 1]");
    }
  }
  if (hop_radius < 0) {
    return util::Status::InvalidArgument("hop radius must be >= 0");
  }
  if (hop_radius > 0 && mode != PathWeightMode::kNegLog) {
    // The bounded closure multiplies path products directly (the exact
    // Eq. 8 semantics); the reciprocal-weight heuristic exists only for
    // dense ablation runs.
    return util::Status::InvalidArgument(
        "hop-bounded correlation tables support the kNegLog path mode only");
  }

  const int n = graph.num_roads();

  if (hop_radius > 0) {
    CorrelationTable table;
    table.num_roads_ = n;
    table.hop_radius_ = hop_radius;
    std::vector<std::map<graph::RoadId, double>> rows(
        static_cast<size_t>(n));
    const auto compute_rows = [&](size_t begin, size_t end) {
      for (size_t src = begin; src < end; ++src) {
        rows[src] = BoundedHopRow(graph, edge_rho,
                                  static_cast<graph::RoadId>(src),
                                  hop_radius);
      }
    };
    if (fanout != nullptr && fanout->num_threads() > 1 && n > 1) {
      fanout->ParallelFor(static_cast<size_t>(n), compute_rows);
    } else {
      compute_rows(0, static_cast<size_t>(n));
    }
    size_t nnz = 0;
    for (const auto& row : rows) nnz += row.size();
    table.row_offsets_.reserve(static_cast<size_t>(n) + 1);
    table.cols_.reserve(nnz);
    table.vals_.reserve(nnz);
    table.row_offsets_.push_back(0);
    for (const auto& row : rows) {
      for (const auto& [dst, corr] : row) {
        if (corr <= 0.0) continue;
        table.cols_.push_back(dst);
        table.vals_.push_back(corr);
      }
      table.row_offsets_.push_back(
          static_cast<int64_t>(table.cols_.size()));
    }
    return table;
  }
  CorrelationTable table;
  table.num_roads_ = n;
  table.data_.assign(static_cast<size_t>(n) * static_cast<size_t>(n), 0.0);

  // Per-edge weights computed once for all n sources; the old callback
  // form re-derived -log(rho) at every relaxation of every Dijkstra.
  std::vector<double> weights(edge_rho.size());
  for (size_t e = 0; e < edge_rho.size(); ++e) {
    const double rho = edge_rho[e];
    if (rho <= 0.0) {
      weights[e] = graph::kUnreachable;  // zero correlation blocks
    } else if (mode == PathWeightMode::kNegLog) {
      weights[e] = -std::log(rho);
    } else {
      weights[e] = 1.0 / rho;
    }
  }

  // One Dijkstra per source; rows are disjoint, so sources fan out across
  // the pool with no synchronisation beyond the ParallelFor barrier. The
  // workspace amortises the heap/distance allocations across one chunk's
  // sources.
  const auto compute_row = [&](graph::RoadId src,
                               graph::DijkstraWorkspace& ws) {
    graph::DijkstraInto(graph, src, weights, ws);
    double* row = table.data_.data() +
                  static_cast<size_t>(src) * static_cast<size_t>(n);
    for (graph::RoadId dst = 0; dst < n; ++dst) {
      const double dist = ws.distance[static_cast<size_t>(dst)];
      if (dist == graph::kUnreachable) {
        row[dst] = 0.0;
        continue;
      }
      if (mode == PathWeightMode::kNegLog) {
        row[dst] = std::exp(-dist);
      } else {
        // Reconstruct the product along the chosen min-reciprocal path.
        double product = 1.0;
        for (graph::RoadId r = dst; r != src;) {
          const graph::RoadId parent = ws.parent[static_cast<size_t>(r)];
          const graph::EdgeId e = graph.FindEdge(r, parent);
          product *= edge_rho[static_cast<size_t>(e)];
          r = parent;
        }
        row[dst] = product;
      }
    }
    row[src] = 1.0;
  };

  if (fanout != nullptr && fanout->num_threads() > 1 && n > 1) {
    fanout->ParallelFor(static_cast<size_t>(n),
                        [&](size_t begin, size_t end) {
                          graph::DijkstraWorkspace ws;
                          for (size_t src = begin; src < end; ++src) {
                            compute_row(static_cast<graph::RoadId>(src), ws);
                          }
                        });
  } else {
    graph::DijkstraWorkspace ws;
    for (graph::RoadId src = 0; src < n; ++src) compute_row(src, ws);
  }
  return table;
}

util::Result<CorrelationTable> CorrelationTable::RefreshedRows(
    const graph::Graph& graph, const std::vector<double>& edge_rho,
    const std::vector<graph::RoadId>& sources,
    util::ThreadPool* fanout) const {
  if (hop_radius_ <= 0) {
    return util::Status::InvalidArgument(
        "RefreshedRows requires a sparse hop-bounded table (dense tables "
        "have no row locality; recompute in full)");
  }
  if (graph.num_roads() != num_roads_) {
    return util::Status::InvalidArgument(
        "graph road count does not match the table");
  }
  if (edge_rho.size() != static_cast<size_t>(graph.num_edges())) {
    return util::Status::InvalidArgument(
        "edge correlation count does not match the graph");
  }
  for (double rho : edge_rho) {
    if (!(rho >= 0.0 && rho <= 1.0)) {
      return util::Status::InvalidArgument(
          "edge correlations must lie in [0, 1]");
    }
  }
  std::vector<char> refresh(static_cast<size_t>(num_roads_), 0);
  std::vector<graph::RoadId> unique_sources;
  for (graph::RoadId s : sources) {
    if (s < 0 || s >= num_roads_) {
      return util::Status::InvalidArgument("source road out of range: " +
                                           std::to_string(s));
    }
    if (!refresh[static_cast<size_t>(s)]) {
      refresh[static_cast<size_t>(s)] = 1;
      unique_sources.push_back(s);
    }
  }

  std::vector<std::map<graph::RoadId, double>> rows(unique_sources.size());
  const auto compute_rows = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      rows[i] = BoundedHopRow(graph, edge_rho, unique_sources[i],
                              hop_radius_);
    }
  };
  if (fanout != nullptr && fanout->num_threads() > 1 &&
      unique_sources.size() > 1) {
    fanout->ParallelFor(unique_sources.size(), compute_rows);
  } else {
    compute_rows(0, unique_sources.size());
  }
  std::vector<int64_t> row_at(static_cast<size_t>(num_roads_), -1);
  for (size_t i = 0; i < unique_sources.size(); ++i) {
    row_at[static_cast<size_t>(unique_sources[i])] =
        static_cast<int64_t>(i);
  }

  CorrelationTable out;
  out.num_roads_ = num_roads_;
  out.hop_radius_ = hop_radius_;
  out.row_offsets_.reserve(row_offsets_.size());
  out.cols_.reserve(cols_.size());
  out.vals_.reserve(vals_.size());
  out.row_offsets_.push_back(0);
  for (graph::RoadId r = 0; r < num_roads_; ++r) {
    if (refresh[static_cast<size_t>(r)]) {
      const auto& row = rows[static_cast<size_t>(
          row_at[static_cast<size_t>(r)])];
      for (const auto& [dst, corr] : row) {
        if (corr <= 0.0) continue;
        out.cols_.push_back(dst);
        out.vals_.push_back(corr);
      }
    } else {
      // Untouched rows carry over bit for bit.
      const int64_t begin = row_offsets_[static_cast<size_t>(r)];
      const int64_t end = row_offsets_[static_cast<size_t>(r) + 1];
      out.cols_.insert(out.cols_.end(),
                       cols_.begin() + static_cast<ptrdiff_t>(begin),
                       cols_.begin() + static_cast<ptrdiff_t>(end));
      out.vals_.insert(out.vals_.end(),
                       vals_.begin() + static_cast<ptrdiff_t>(begin),
                       vals_.begin() + static_cast<ptrdiff_t>(end));
    }
    out.row_offsets_.push_back(static_cast<int64_t>(out.cols_.size()));
  }
  return out;
}

std::vector<graph::RoadId> AffectedCorrelationRows(
    const graph::Graph& graph,
    const std::vector<graph::EdgeId>& changed_edges, int hop_radius) {
  std::vector<graph::RoadId> endpoints;
  endpoints.reserve(2 * changed_edges.size());
  for (graph::EdgeId e : changed_edges) {
    if (e < 0 || e >= graph.num_edges()) continue;
    const auto [a, b] = graph.EdgeEndpoints(e);
    endpoints.push_back(a);
    endpoints.push_back(b);
  }
  if (endpoints.empty()) return {};
  return graph::RoadsWithinHops(graph, endpoints,
                                std::max(0, hop_radius - 1));
}

util::Result<double> CorrelationTable::CheckedCorr(graph::RoadId i,
                                                   graph::RoadId j) const {
  if (!InRange(i) || !InRange(j)) {
    return util::Status::OutOfRange(
        "road id out of range for correlation table: (" + std::to_string(i) +
        ", " + std::to_string(j) + ") with " + std::to_string(num_roads_) +
        " roads");
  }
  return Corr(i, j);
}

double CorrelationTable::RoadSetCorr(
    graph::RoadId road, const std::vector<graph::RoadId>& set) const {
  double best = 0.0;
  if (hop_radius_ > 0) {
    for (graph::RoadId s : set) {
      assert(InRange(s));
      best = std::max(best, SparseCorr(road, s));
    }
    return best;
  }
  const double* row = Row(road);
  for (graph::RoadId s : set) {
    assert(InRange(s));
    best = std::max(best, row[s]);
  }
  return best;
}

double CorrelationTable::SparseCorr(graph::RoadId i, graph::RoadId j) const {
  const auto begin = cols_.begin() + row_offsets_[static_cast<size_t>(i)];
  const auto end = cols_.begin() + row_offsets_[static_cast<size_t>(i) + 1];
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return vals_[static_cast<size_t>(it - cols_.begin())];
}

namespace {
constexpr uint32_t kTableMagic = 0x47414D31;  // "GAM1"
// Layout revisions after the magic. v1 (the seed) had no version field; v2
// inserted this field, so v1 files fail the version check and recompute
// rather than being misparsed. v3 is the sparse hop-bounded layout; dense
// tables keep writing v2 so existing persisted caches stay warm.
constexpr uint32_t kDenseFormatVersion = 2;
constexpr uint32_t kSparseFormatVersion = 3;
}  // namespace

void CorrelationTable::AppendTo(util::BinaryWriter& writer) const {
  writer.WriteUint32(kTableMagic);
  if (hop_radius_ == 0) {
    writer.WriteUint32(kDenseFormatVersion);
    writer.WriteInt32(num_roads_);
    writer.WriteDoubleVector(data_);
    return;
  }
  writer.WriteUint32(kSparseFormatVersion);
  writer.WriteInt32(num_roads_);
  writer.WriteInt32(hop_radius_);
  std::vector<int32_t> offsets;
  offsets.reserve(row_offsets_.size());
  for (int64_t offset : row_offsets_) {
    offsets.push_back(static_cast<int32_t>(offset));
  }
  writer.WriteInt32Vector(offsets);
  writer.WriteInt32Vector(cols_);
  writer.WriteDoubleVector(vals_);
}

util::Result<CorrelationTable> CorrelationTable::ParseFrom(
    util::BinaryReader& reader) {
  util::Result<uint32_t> magic = reader.ReadUint32();
  if (!magic.ok()) return magic.status();
  if (*magic != kTableMagic) {
    return util::Status::InvalidArgument("not a correlation table file");
  }
  util::Result<uint32_t> version = reader.ReadUint32();
  if (!version.ok()) return version.status();
  if (*version != kDenseFormatVersion &&
      *version != kSparseFormatVersion) {
    return util::Status::InvalidArgument(
        "unsupported correlation table format version " +
        std::to_string(*version) + " (expected " +
        std::to_string(kDenseFormatVersion) + " dense or " +
        std::to_string(kSparseFormatVersion) + " sparse)");
  }
  util::Result<int32_t> num_roads = reader.ReadInt32();
  if (!num_roads.ok()) return num_roads.status();
  if (*num_roads < 0) {
    return util::Status::InvalidArgument("negative road count");
  }
  CorrelationTable table;
  table.num_roads_ = *num_roads;
  if (*version == kDenseFormatVersion) {
    util::Result<std::vector<double>> values = reader.ReadDoubleVector();
    if (!values.ok()) return values.status();
    const size_t expected = static_cast<size_t>(*num_roads) *
                            static_cast<size_t>(*num_roads);
    if (values->size() != expected) {
      return util::Status::InvalidArgument("table payload size mismatch");
    }
    table.data_ = std::move(*values);
    return table;
  }
  util::Result<int32_t> hop_radius = reader.ReadInt32();
  if (!hop_radius.ok()) return hop_radius.status();
  if (*hop_radius <= 0) {
    return util::Status::InvalidArgument(
        "sparse correlation table with non-positive hop radius");
  }
  util::Result<std::vector<int32_t>> offsets = reader.ReadInt32Vector();
  if (!offsets.ok()) return offsets.status();
  util::Result<std::vector<int32_t>> cols = reader.ReadInt32Vector();
  if (!cols.ok()) return cols.status();
  util::Result<std::vector<double>> vals = reader.ReadDoubleVector();
  if (!vals.ok()) return vals.status();
  if (offsets->size() != static_cast<size_t>(*num_roads) + 1) {
    return util::Status::InvalidArgument("sparse offset count mismatch");
  }
  if ((*offsets)[0] != 0 ||
      static_cast<size_t>(offsets->back()) != cols->size() ||
      cols->size() != vals->size()) {
    return util::Status::InvalidArgument("sparse payload size mismatch");
  }
  for (size_t r = 0; r + 1 < offsets->size(); ++r) {
    const int32_t begin = (*offsets)[r];
    const int32_t end = (*offsets)[r + 1];
    if (begin > end) {
      return util::Status::InvalidArgument(
          "sparse offsets must be non-decreasing");
    }
    for (int32_t k = begin; k < end; ++k) {
      const int32_t col = (*cols)[static_cast<size_t>(k)];
      if (col < 0 || col >= *num_roads) {
        return util::Status::InvalidArgument(
            "sparse column out of range");
      }
      if (k > begin && (*cols)[static_cast<size_t>(k - 1)] >= col) {
        return util::Status::InvalidArgument(
            "sparse row columns must be strictly increasing");
      }
    }
  }
  table.hop_radius_ = *hop_radius;
  table.row_offsets_.reserve(offsets->size());
  for (int32_t offset : *offsets) table.row_offsets_.push_back(offset);
  table.cols_ = std::move(*cols);
  table.vals_ = std::move(*vals);
  return table;
}

std::string CorrelationTable::Serialize() const {
  util::BinaryWriter writer;
  AppendTo(writer);
  return writer.buffer();
}

util::Result<CorrelationTable> CorrelationTable::Deserialize(
    const std::string& data) {
  util::BinaryReader reader(data);
  return ParseFrom(reader);
}

util::Status CorrelationTable::SaveToFile(const std::string& path) const {
  util::BinaryWriter writer;
  AppendTo(writer);
  return writer.Flush(path);
}

util::Result<CorrelationTable> CorrelationTable::LoadFromFile(
    const std::string& path) {
  util::Result<util::BinaryReader> reader =
      util::BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  return ParseFrom(*reader);
}

}  // namespace crowdrtse::rtf
