#include "rtf/correlation_table.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "graph/dijkstra.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace crowdrtse::rtf {

util::Result<CorrelationTable> CorrelationTable::Compute(
    const RtfModel& model, int slot, PathWeightMode mode,
    util::ThreadPool* fanout) {
  if (slot < 0 || slot >= model.num_slots()) {
    return util::Status::OutOfRange("slot out of range");
  }
  std::vector<double> edge_rho(static_cast<size_t>(model.num_edges()));
  for (graph::EdgeId e = 0; e < model.num_edges(); ++e) {
    edge_rho[static_cast<size_t>(e)] = model.Rho(slot, e);
  }
  return FromEdgeCorrelations(model.graph(), edge_rho, mode, fanout);
}

util::Result<CorrelationTable> CorrelationTable::FromEdgeCorrelations(
    const graph::Graph& graph, const std::vector<double>& edge_rho,
    PathWeightMode mode, util::ThreadPool* fanout) {
  if (edge_rho.size() != static_cast<size_t>(graph.num_edges())) {
    return util::Status::InvalidArgument(
        "edge correlation count does not match the graph");
  }
  for (double rho : edge_rho) {
    if (!(rho >= 0.0 && rho <= 1.0)) {
      return util::Status::InvalidArgument(
          "edge correlations must lie in [0, 1]");
    }
  }

  const int n = graph.num_roads();
  CorrelationTable table;
  table.num_roads_ = n;
  table.data_.assign(static_cast<size_t>(n) * static_cast<size_t>(n), 0.0);

  const auto weight = [&](graph::EdgeId e) -> double {
    const double rho = edge_rho[static_cast<size_t>(e)];
    if (rho <= 0.0) return graph::kUnreachable;  // zero correlation blocks
    switch (mode) {
      case PathWeightMode::kNegLog:
        return -std::log(rho);
      case PathWeightMode::kReciprocal:
        return 1.0 / rho;
    }
    return graph::kUnreachable;
  };

  // One Dijkstra per source; rows are disjoint, so sources fan out across
  // the pool with no synchronisation beyond the ParallelFor barrier.
  const auto compute_row = [&](graph::RoadId src) {
    const graph::ShortestPaths tree = graph::Dijkstra(graph, src, weight);
    double* row = table.data_.data() +
                  static_cast<size_t>(src) * static_cast<size_t>(n);
    for (graph::RoadId dst = 0; dst < n; ++dst) {
      const double dist = tree.distance[static_cast<size_t>(dst)];
      if (dist == graph::kUnreachable) {
        row[dst] = 0.0;
        continue;
      }
      if (mode == PathWeightMode::kNegLog) {
        row[dst] = std::exp(-dist);
      } else {
        // Reconstruct the product along the chosen min-reciprocal path.
        double product = 1.0;
        for (graph::RoadId r = dst; r != src;) {
          const graph::RoadId parent =
              tree.parent[static_cast<size_t>(r)];
          const graph::EdgeId e = graph.FindEdge(r, parent);
          product *= edge_rho[static_cast<size_t>(e)];
          r = parent;
        }
        row[dst] = product;
      }
    }
    row[src] = 1.0;
  };

  if (fanout != nullptr && fanout->num_threads() > 1 && n > 1) {
    fanout->ParallelFor(static_cast<size_t>(n),
                        [&](size_t begin, size_t end) {
                          for (size_t src = begin; src < end; ++src) {
                            compute_row(static_cast<graph::RoadId>(src));
                          }
                        });
  } else {
    for (graph::RoadId src = 0; src < n; ++src) compute_row(src);
  }
  return table;
}

util::Result<double> CorrelationTable::CheckedCorr(graph::RoadId i,
                                                   graph::RoadId j) const {
  if (!InRange(i) || !InRange(j)) {
    return util::Status::OutOfRange(
        "road id out of range for correlation table: (" + std::to_string(i) +
        ", " + std::to_string(j) + ") with " + std::to_string(num_roads_) +
        " roads");
  }
  return Corr(i, j);
}

double CorrelationTable::RoadSetCorr(
    graph::RoadId road, const std::vector<graph::RoadId>& set) const {
  double best = 0.0;
  const double* row = Row(road);
  for (graph::RoadId s : set) {
    assert(InRange(s));
    best = std::max(best, row[s]);
  }
  return best;
}

namespace {
constexpr uint32_t kTableMagic = 0x47414D31;  // "GAM1"
// Layout revision after the magic. v1 (the seed) had no version field; v2
// inserted this field, so v1 files fail the version check and recompute
// rather than being misparsed.
constexpr uint32_t kFormatVersion = 2;
}  // namespace

void CorrelationTable::AppendTo(util::BinaryWriter& writer) const {
  writer.WriteUint32(kTableMagic);
  writer.WriteUint32(kFormatVersion);
  writer.WriteInt32(num_roads_);
  writer.WriteDoubleVector(data_);
}

util::Result<CorrelationTable> CorrelationTable::ParseFrom(
    util::BinaryReader& reader) {
  util::Result<uint32_t> magic = reader.ReadUint32();
  if (!magic.ok()) return magic.status();
  if (*magic != kTableMagic) {
    return util::Status::InvalidArgument("not a correlation table file");
  }
  util::Result<uint32_t> version = reader.ReadUint32();
  if (!version.ok()) return version.status();
  if (*version != kFormatVersion) {
    return util::Status::InvalidArgument(
        "unsupported correlation table format version " +
        std::to_string(*version) + " (expected " +
        std::to_string(kFormatVersion) + ")");
  }
  util::Result<int32_t> num_roads = reader.ReadInt32();
  if (!num_roads.ok()) return num_roads.status();
  if (*num_roads < 0) {
    return util::Status::InvalidArgument("negative road count");
  }
  util::Result<std::vector<double>> values = reader.ReadDoubleVector();
  if (!values.ok()) return values.status();
  const size_t expected = static_cast<size_t>(*num_roads) *
                          static_cast<size_t>(*num_roads);
  if (values->size() != expected) {
    return util::Status::InvalidArgument("table payload size mismatch");
  }
  CorrelationTable table;
  table.num_roads_ = *num_roads;
  table.data_ = std::move(*values);
  return table;
}

std::string CorrelationTable::Serialize() const {
  util::BinaryWriter writer;
  AppendTo(writer);
  return writer.buffer();
}

util::Result<CorrelationTable> CorrelationTable::Deserialize(
    const std::string& data) {
  util::BinaryReader reader(data);
  return ParseFrom(reader);
}

util::Status CorrelationTable::SaveToFile(const std::string& path) const {
  util::BinaryWriter writer;
  AppendTo(writer);
  return writer.Flush(path);
}

util::Result<CorrelationTable> CorrelationTable::LoadFromFile(
    const std::string& path) {
  util::Result<util::BinaryReader> reader =
      util::BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  return ParseFrom(*reader);
}

}  // namespace crowdrtse::rtf
