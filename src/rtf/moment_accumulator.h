#ifndef CROWDRTSE_RTF_MOMENT_ACCUMULATOR_H_
#define CROWDRTSE_RTF_MOMENT_ACCUMULATOR_H_

#include <vector>

#include "graph/graph.h"
#include "rtf/rtf_model.h"
#include "traffic/history_store.h"
#include "util/stats.h"
#include "util/status.h"

namespace crowdrtse::rtf {

/// Streaming RTF training: keeps the sufficient statistics of the moment
/// estimator (per (road, slot) mean/variance accumulators and per
/// (edge, slot) covariance accumulators) so the offline model can be kept
/// fresh as each new day of traffic lands, without retraining over the
/// whole history. An extension beyond the paper's batch-offline stage; the
/// emitted model is identical to batch moment estimation over the same
/// days (see rtf_moment_accumulator_test).
///
/// Memory: (|R| + |E|) x num_slots accumulators of a few doubles each —
/// for the 607-road network, ~15 MB.
class MomentAccumulator {
 public:
  /// Accumulates for `graph` (must outlive the accumulator) with the given
  /// slot count. `slot_window` pools adjacent slots exactly like
  /// MomentEstimatorOptions::slot_window.
  MomentAccumulator(const graph::Graph& graph, int num_slots,
                    int slot_window = 1, double min_sigma = 0.5);

  int num_days_absorbed() const { return num_days_; }

  /// Folds one full day of speeds into the statistics.
  util::Status AbsorbDay(const traffic::DayMatrix& day);

  /// Folds every day of a history store.
  util::Status AbsorbHistory(const traffic::HistoryStore& history);

  /// Emits the RTF model for the data absorbed so far. Requires >= 2 days.
  util::Result<RtfModel> EmitModel() const;

 private:
  size_t NodeIndex(int slot, graph::RoadId road) const {
    return static_cast<size_t>(slot) *
               static_cast<size_t>(graph_.num_roads()) +
           static_cast<size_t>(road);
  }
  size_t EdgeIndex(int slot, graph::EdgeId edge) const {
    return static_cast<size_t>(slot) *
               static_cast<size_t>(graph_.num_edges()) +
           static_cast<size_t>(edge);
  }

  const graph::Graph& graph_;
  int num_slots_;
  int slot_window_;
  double min_sigma_;
  int num_days_ = 0;
  std::vector<util::RunningStats> node_stats_;       // slot x road
  std::vector<util::RunningCovariance> edge_stats_;  // slot x edge
};

}  // namespace crowdrtse::rtf

#endif  // CROWDRTSE_RTF_MOMENT_ACCUMULATOR_H_
