#ifndef CROWDRTSE_RTF_CORRELATION_TABLE_H_
#define CROWDRTSE_RTF_CORRELATION_TABLE_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "rtf/rtf_model.h"
#include "util/status.h"

namespace crowdrtse::util {
class BinaryWriter;
class BinaryReader;
class ThreadPool;
}  // namespace crowdrtse::util

namespace crowdrtse::rtf {

/// How the max-product path correlation of paper Eq. (8) is reduced to a
/// shortest-path problem.
enum class PathWeightMode {
  /// Edge weight -log(rho): min-sum shortest path == max-product path. This
  /// is the mathematically exact reduction (log is monotone) and the
  /// default.
  kNegLog,
  /// Edge weight 1/rho, as literally written in the paper's Eq. (9). A
  /// heuristic: minimising sum of reciprocals does not in general maximise
  /// the product, but tracks it closely for rho near 1. Offered for
  /// paper-faithful comparison (see bench_ablations).
  kReciprocal,
};

/// Gamma_R: the road-road correlation closure for one time slot,
/// corr^t(r_i, r_j) = max over joining paths of the product of edge rhos
/// (Eq. 8). Two storage modes share this type:
///
///  - Dense (hop_radius() == 0, the paper-exact default): one Dijkstra per
///    source road, n^2 doubles, O(1) reads. 607 roads => ~2.9 MB per slot —
///    but 28.8 GB per slot at 60k roads, which is why metro-scale serving
///    uses the sparse mode.
///  - Sparse (hop_radius() == C > 0): corr(i, j) is the max product over
///    joining paths of at most C edges, and exactly 0 beyond C hops. Rows
///    are CSR slices sorted by destination id, read by binary search. This
///    is the locality contract partitioned serving relies on: a shard halo
///    that covers every member's C-hop ball reproduces the global table's
///    entries bit for bit.
///
/// The unchecked accessors (Corr/Row/RoadSetCorr) assume road ids already
/// validated against num_roads() — OcsProblem::Create and QueryEngine::Serve
/// both reject out-of-range ids at the trust boundary — and assert in debug
/// builds. Untrusted callers should use CheckedCorr. Row() is dense-only.
class CorrelationTable {
 public:
  CorrelationTable() = default;

  /// Computes the table for `slot` from the trained model. When `fanout` is
  /// non-null the per-source loop runs data-parallel on that pool (the
  /// pool's one-ParallelFor-at-a-time contract applies). `hop_radius` == 0
  /// computes the dense closure; > 0 computes the sparse C-hop-bounded
  /// closure described above.
  static util::Result<CorrelationTable> Compute(
      const RtfModel& model, int slot,
      PathWeightMode mode = PathWeightMode::kNegLog,
      util::ThreadPool* fanout = nullptr, int hop_radius = 0);

  /// Builds a table directly from per-edge correlations (used by tests and
  /// by scenarios that bypass RTF training).
  static util::Result<CorrelationTable> FromEdgeCorrelations(
      const graph::Graph& graph, const std::vector<double>& edge_rho,
      PathWeightMode mode = PathWeightMode::kNegLog,
      util::ThreadPool* fanout = nullptr, int hop_radius = 0);

  /// Incremental maintenance, sparse mode only: a copy of this table with
  /// the rows of `sources` recomputed against `edge_rho` and every other
  /// row copied bitwise. With `sources` = AffectedCorrelationRows(changed
  /// edges) the result equals a full FromEdgeCorrelations rebuild exactly:
  /// a row's C-hop ball either contains no changed edge (row unchanged) or
  /// the row is in the recompute set. Dense tables have no row locality
  /// (one edge can shift any entry), so they return InvalidArgument and
  /// callers fall back to a full recompute.
  util::Result<CorrelationTable> RefreshedRows(
      const graph::Graph& graph, const std::vector<double>& edge_rho,
      const std::vector<graph::RoadId>& sources,
      util::ThreadPool* fanout = nullptr) const;

  int num_roads() const { return num_roads_; }

  /// 0 for the dense closure, C for the sparse C-hop-bounded closure.
  int hop_radius() const { return hop_radius_; }

  /// Heap footprint of the closure, the unit of the correlation cache's
  /// memory budget (entry bookkeeping is negligible next to the payload and
  /// deliberately excluded to keep budgets predictable).
  std::size_t MemoryBytes() const {
    return data_.size() * sizeof(double) + vals_.size() * sizeof(double) +
           cols_.size() * sizeof(graph::RoadId) +
           row_offsets_.size() * sizeof(int64_t);
  }

  /// corr(i, j); 1 on the diagonal, 0 when the roads are disconnected (or,
  /// in sparse mode, farther apart than the hop radius).
  double Corr(graph::RoadId i, graph::RoadId j) const {
    assert(InRange(i) && InRange(j));
    if (hop_radius_ > 0) return SparseCorr(i, j);
    return data_[static_cast<size_t>(i) * static_cast<size_t>(num_roads_) +
                 static_cast<size_t>(j)];
  }

  /// Bounds-checked corr(i, j) for callers holding unvalidated road ids.
  util::Result<double> CheckedCorr(graph::RoadId i, graph::RoadId j) const;

  /// Road-set correlation corr(r, S) = max_{s in S} corr(r, s) (Eq. 11);
  /// 0 for the empty set.
  double RoadSetCorr(graph::RoadId road,
                     const std::vector<graph::RoadId>& set) const;

  /// Contiguous row of correlations from road `i` to every road. Dense
  /// tables only — sparse rows have no n-wide contiguous form.
  const double* Row(graph::RoadId i) const {
    assert(InRange(i) && hop_radius_ == 0);
    return data_.data() +
           static_cast<size_t>(i) * static_cast<size_t>(num_roads_);
  }

  /// Binary persistence: the offline stage computes Gamma_R once per used
  /// slot (|R| Dijkstras) and the online stage reloads it at startup. The
  /// byte layout is magic + format version + payload; loads reject files
  /// whose version does not match (stale caches recompute instead of being
  /// misparsed).
  std::string Serialize() const;
  static util::Result<CorrelationTable> Deserialize(const std::string& data);
  util::Status SaveToFile(const std::string& path) const;
  static util::Result<CorrelationTable> LoadFromFile(
      const std::string& path);

 private:
  bool InRange(graph::RoadId r) const { return r >= 0 && r < num_roads_; }

  /// Binary search in row i's CSR slice (sorted by destination id).
  double SparseCorr(graph::RoadId i, graph::RoadId j) const;

  /// Single source of truth for the byte layout: Serialize and SaveToFile
  /// both append through here, Deserialize and LoadFromFile both parse
  /// through ParseFrom, so the two paths cannot drift.
  void AppendTo(util::BinaryWriter& writer) const;
  static util::Result<CorrelationTable> ParseFrom(util::BinaryReader& reader);

  int num_roads_ = 0;
  int hop_radius_ = 0;
  // Dense storage (hop_radius_ == 0): row-major n x n.
  std::vector<double> data_;
  // Sparse storage (hop_radius_ > 0): CSR rows sorted by destination id.
  std::vector<int64_t> row_offsets_;  // num_roads_ + 1
  std::vector<graph::RoadId> cols_;
  std::vector<double> vals_;
};

/// The rows a C-hop-bounded closure must recompute when the rho of
/// `changed_edges` changes: a path of at most C edges from source s crosses
/// edge (u, v) only if it reaches an endpoint within C-1 hops of s, so the
/// (C-1)-hop ball around the changed endpoints covers every row that can
/// move. Returns deduplicated road ids; empty when no edges changed.
std::vector<graph::RoadId> AffectedCorrelationRows(
    const graph::Graph& graph,
    const std::vector<graph::EdgeId>& changed_edges, int hop_radius);

}  // namespace crowdrtse::rtf

#endif  // CROWDRTSE_RTF_CORRELATION_TABLE_H_
