#ifndef CROWDRTSE_RTF_CORRELATION_TABLE_H_
#define CROWDRTSE_RTF_CORRELATION_TABLE_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "rtf/rtf_model.h"
#include "util/status.h"

namespace crowdrtse::util {
class BinaryWriter;
class BinaryReader;
class ThreadPool;
}  // namespace crowdrtse::util

namespace crowdrtse::rtf {

/// How the max-product path correlation of paper Eq. (8) is reduced to a
/// shortest-path problem.
enum class PathWeightMode {
  /// Edge weight -log(rho): min-sum shortest path == max-product path. This
  /// is the mathematically exact reduction (log is monotone) and the
  /// default.
  kNegLog,
  /// Edge weight 1/rho, as literally written in the paper's Eq. (9). A
  /// heuristic: minimising sum of reciprocals does not in general maximise
  /// the product, but tracks it closely for rho near 1. Offered for
  /// paper-faithful comparison (see bench_ablations).
  kReciprocal,
};

/// Gamma_R: the dense road-road correlation closure for one time slot,
/// corr^t(r_i, r_j) = max over joining paths of the product of edge rhos
/// (Eq. 8), computed offline by one Dijkstra per source road and then read
/// in O(1) by OCS. 607 roads => ~2.9 MB per slot.
///
/// The unchecked accessors (Corr/Row/RoadSetCorr) assume road ids already
/// validated against num_roads() — OcsProblem::Create and QueryEngine::Serve
/// both reject out-of-range ids at the trust boundary — and assert in debug
/// builds. Untrusted callers should use CheckedCorr.
class CorrelationTable {
 public:
  CorrelationTable() = default;

  /// Computes the full table for `slot` from the trained model. When
  /// `fanout` is non-null the per-source Dijkstra loop runs data-parallel
  /// on that pool (the pool's one-ParallelFor-at-a-time contract applies).
  static util::Result<CorrelationTable> Compute(
      const RtfModel& model, int slot,
      PathWeightMode mode = PathWeightMode::kNegLog,
      util::ThreadPool* fanout = nullptr);

  /// Builds a table directly from per-edge correlations (used by tests and
  /// by scenarios that bypass RTF training).
  static util::Result<CorrelationTable> FromEdgeCorrelations(
      const graph::Graph& graph, const std::vector<double>& edge_rho,
      PathWeightMode mode = PathWeightMode::kNegLog,
      util::ThreadPool* fanout = nullptr);

  int num_roads() const { return num_roads_; }

  /// Heap footprint of the dense closure, the unit of the correlation
  /// cache's memory budget (entry bookkeeping is negligible next to n^2
  /// doubles and deliberately excluded to keep budgets predictable).
  std::size_t MemoryBytes() const { return data_.size() * sizeof(double); }

  /// corr(i, j); 1 on the diagonal, 0 when the roads are disconnected.
  double Corr(graph::RoadId i, graph::RoadId j) const {
    assert(InRange(i) && InRange(j));
    return data_[static_cast<size_t>(i) * static_cast<size_t>(num_roads_) +
                 static_cast<size_t>(j)];
  }

  /// Bounds-checked corr(i, j) for callers holding unvalidated road ids.
  util::Result<double> CheckedCorr(graph::RoadId i, graph::RoadId j) const;

  /// Road-set correlation corr(r, S) = max_{s in S} corr(r, s) (Eq. 11);
  /// 0 for the empty set.
  double RoadSetCorr(graph::RoadId road,
                     const std::vector<graph::RoadId>& set) const;

  /// Contiguous row of correlations from road `i` to every road.
  const double* Row(graph::RoadId i) const {
    assert(InRange(i));
    return data_.data() +
           static_cast<size_t>(i) * static_cast<size_t>(num_roads_);
  }

  /// Binary persistence: the offline stage computes Gamma_R once per used
  /// slot (|R| Dijkstras) and the online stage reloads it at startup. The
  /// byte layout is magic + format version + payload; loads reject files
  /// whose version does not match (stale caches recompute instead of being
  /// misparsed).
  std::string Serialize() const;
  static util::Result<CorrelationTable> Deserialize(const std::string& data);
  util::Status SaveToFile(const std::string& path) const;
  static util::Result<CorrelationTable> LoadFromFile(
      const std::string& path);

 private:
  bool InRange(graph::RoadId r) const { return r >= 0 && r < num_roads_; }

  /// Single source of truth for the byte layout: Serialize and SaveToFile
  /// both append through here, Deserialize and LoadFromFile both parse
  /// through ParseFrom, so the two paths cannot drift.
  void AppendTo(util::BinaryWriter& writer) const;
  static util::Result<CorrelationTable> ParseFrom(util::BinaryReader& reader);

  int num_roads_ = 0;
  std::vector<double> data_;
};

}  // namespace crowdrtse::rtf

#endif  // CROWDRTSE_RTF_CORRELATION_TABLE_H_
