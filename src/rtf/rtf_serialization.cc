#include "rtf/rtf_serialization.h"

#include <fstream>
#include <sstream>

#include "util/serialize.h"

namespace crowdrtse::rtf {

namespace {
constexpr uint32_t kMagic = 0x52544631;  // "RTF1"
constexpr uint32_t kVersion = 1;
}  // namespace

std::string RtfSerializer::Serialize(const RtfModel& model) {
  util::BinaryWriter writer;
  writer.WriteUint32(kMagic);
  writer.WriteUint32(kVersion);
  writer.WriteInt32(model.num_slots());
  writer.WriteInt32(model.num_roads());
  writer.WriteInt32(model.num_edges());
  writer.WriteDoubleVector(model.mu_);
  writer.WriteDoubleVector(model.sigma_);
  writer.WriteDoubleVector(model.rho_);
  return writer.buffer();
}

util::Result<RtfModel> RtfSerializer::Deserialize(const graph::Graph& graph,
                                                  const std::string& data) {
  util::BinaryReader reader(data);
  util::Result<uint32_t> magic = reader.ReadUint32();
  if (!magic.ok()) return magic.status();
  if (*magic != kMagic) {
    return util::Status::InvalidArgument("not an RTF model file");
  }
  util::Result<uint32_t> version = reader.ReadUint32();
  if (!version.ok()) return version.status();
  if (*version != kVersion) {
    return util::Status::InvalidArgument("unsupported RTF model version " +
                                         std::to_string(*version));
  }
  util::Result<int32_t> num_slots = reader.ReadInt32();
  util::Result<int32_t> num_roads = reader.ReadInt32();
  util::Result<int32_t> num_edges = reader.ReadInt32();
  if (!num_slots.ok()) return num_slots.status();
  if (!num_roads.ok()) return num_roads.status();
  if (!num_edges.ok()) return num_edges.status();
  if (*num_roads != graph.num_roads() || *num_edges != graph.num_edges()) {
    return util::Status::InvalidArgument(
        "model shape does not match the graph (roads " +
        std::to_string(*num_roads) + " vs " +
        std::to_string(graph.num_roads()) + ", edges " +
        std::to_string(*num_edges) + " vs " +
        std::to_string(graph.num_edges()) + ")");
  }
  if (*num_slots <= 0) {
    return util::Status::InvalidArgument("non-positive slot count");
  }

  RtfModel model(graph, *num_slots);
  util::Result<std::vector<double>> mu = reader.ReadDoubleVector();
  if (!mu.ok()) return mu.status();
  util::Result<std::vector<double>> sigma = reader.ReadDoubleVector();
  if (!sigma.ok()) return sigma.status();
  util::Result<std::vector<double>> rho = reader.ReadDoubleVector();
  if (!rho.ok()) return rho.status();
  if (mu->size() != model.mu_.size() ||
      sigma->size() != model.sigma_.size() ||
      rho->size() != model.rho_.size()) {
    return util::Status::InvalidArgument("parameter array size mismatch");
  }
  model.mu_ = std::move(*mu);
  model.sigma_ = std::move(*sigma);
  model.rho_ = std::move(*rho);
  CROWDRTSE_RETURN_IF_ERROR(model.Validate());
  return model;
}

util::Status RtfSerializer::SaveToFile(const RtfModel& model,
                                       const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return util::Status::IoError("cannot open " + path);
  const std::string data = Serialize(model);
  file.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!file) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::Result<RtfModel> RtfSerializer::LoadFromFile(const graph::Graph& graph,
                                                   const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return util::Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return Deserialize(graph, buffer.str());
}

}  // namespace crowdrtse::rtf
