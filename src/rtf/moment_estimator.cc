#include "rtf/moment_estimator.h"

#include <algorithm>
#include <cmath>

#include "traffic/time_slots.h"
#include "util/stats.h"

namespace crowdrtse::rtf {

util::Result<RtfModel> EstimateByMoments(
    const graph::Graph& graph, const traffic::HistoryStore& history,
    const MomentEstimatorOptions& options) {
  if (history.num_roads() != graph.num_roads()) {
    return util::Status::InvalidArgument(
        "history road count does not match the graph");
  }
  if (history.num_days() < 2) {
    return util::Status::InvalidArgument(
        "need at least 2 historical days to estimate variances");
  }
  if (options.slot_window < 0) {
    return util::Status::InvalidArgument("slot_window must be >= 0");
  }

  const int num_slots = history.num_slots();
  const int num_days = history.num_days();
  RtfModel model(graph, num_slots);

  for (int slot = 0; slot < num_slots; ++slot) {
    // Node statistics pooled over the slot window.
    for (graph::RoadId r = 0; r < graph.num_roads(); ++r) {
      util::RunningStats stats;
      for (int w = -options.slot_window; w <= options.slot_window; ++w) {
        const int s = (slot + w % num_slots + num_slots) % num_slots;
        for (int day = 0; day < num_days; ++day) {
          stats.Add(history.At(day, s, r));
        }
      }
      model.SetMu(slot, r, stats.Mean());
      model.SetSigma(slot, r, std::max(stats.StdDev(), options.min_sigma));
    }
    // Edge correlations pooled over the slot window.
    for (graph::EdgeId e = 0; e < graph.num_edges(); ++e) {
      const auto [i, j] = graph.EdgeEndpoints(e);
      util::RunningCovariance cov;
      for (int w = -options.slot_window; w <= options.slot_window; ++w) {
        const int s = (slot + w % num_slots + num_slots) % num_slots;
        for (int day = 0; day < num_days; ++day) {
          cov.Add(history.At(day, s, i), history.At(day, s, j));
        }
      }
      // The paper constrains rho to [0, 1]; anti-correlated samples clamp
      // to the minimum rather than flipping sign.
      const double rho = std::clamp(cov.Correlation(), RtfModel::kMinRho,
                                    RtfModel::kMaxRho);
      model.SetRho(slot, e, rho);
    }
  }
  model.ClampParameters();
  return model;
}

}  // namespace crowdrtse::rtf
