#ifndef CROWDRTSE_RTF_RTF_MODEL_H_
#define CROWDRTSE_RTF_RTF_MODEL_H_

#include <vector>

#include "graph/graph.h"
#include "traffic/time_slots.h"
#include "util/status.h"

namespace crowdrtse::rtf {

/// Realtime Traffic-speed Field: the Gaussian Markov Random Field of paper
/// §IV. For every road i and time slot t it stores the periodic expectation
/// mu_i^t and intensity-of-periodicity sigma_i^t; for every adjacent pair
/// (i, j) it stores the correlation coefficient rho_ij^t in [0, 1] (the edge
/// weight of G^t).
///
/// Derived pairwise quantities (paper Eq. 2):
///   mu_ij^t    = mu_i^t - mu_j^t
///   sigma_ij^2 = sigma_i^2 + sigma_j^2 - 2 rho_ij sigma_i sigma_j
///
/// Storage is slot-major flat arrays so that one query slot's parameters are
/// contiguous.
class RtfModel {
 public:
  RtfModel() = default;

  /// Allocates parameters for `num_slots` slots over `graph`'s roads/edges,
  /// initialised to mu=0, sigma=1, rho=0.5. The graph must outlive the
  /// model.
  RtfModel(const graph::Graph& graph,
           int num_slots = traffic::kSlotsPerDay);

  const graph::Graph& graph() const { return *graph_; }
  int num_slots() const { return num_slots_; }
  int num_roads() const { return num_roads_; }
  int num_edges() const { return num_edges_; }

  double Mu(int slot, graph::RoadId road) const {
    return mu_[NodeIndex(slot, road)];
  }
  double Sigma(int slot, graph::RoadId road) const {
    return sigma_[NodeIndex(slot, road)];
  }
  double Rho(int slot, graph::EdgeId edge) const {
    return rho_[EdgeIndex(slot, edge)];
  }

  void SetMu(int slot, graph::RoadId road, double value) {
    mu_[NodeIndex(slot, road)] = value;
  }
  void SetSigma(int slot, graph::RoadId road, double value) {
    sigma_[NodeIndex(slot, road)] = value;
  }
  void SetRho(int slot, graph::EdgeId edge, double value) {
    rho_[EdgeIndex(slot, edge)] = value;
  }

  /// mu_ij^t for the ordered pair (i, j): Mu(i) - Mu(j).
  double PairMean(int slot, graph::RoadId i, graph::RoadId j) const {
    return Mu(slot, i) - Mu(slot, j);
  }

  /// sigma_ij^2 for edge e (symmetric in the endpoints). Floored at a small
  /// positive value: rho -> 1 with sigma_i == sigma_j would otherwise send
  /// the GSP weights to infinity.
  double PairVariance(int slot, graph::EdgeId edge) const;

  /// Contiguous per-slot views (road- or edge-indexed).
  const double* MuSlot(int slot) const {
    return mu_.data() + static_cast<size_t>(slot) *
                            static_cast<size_t>(num_roads_);
  }
  const double* SigmaSlot(int slot) const {
    return sigma_.data() + static_cast<size_t>(slot) *
                               static_cast<size_t>(num_roads_);
  }
  const double* RhoSlot(int slot) const {
    return rho_.data() + static_cast<size_t>(slot) *
                             static_cast<size_t>(num_edges_);
  }

  /// Numeric floors applied across the library.
  static constexpr double kMinSigma = 1e-3;
  static constexpr double kMinPairVariance = 1e-6;
  static constexpr double kMinRho = 1e-3;
  static constexpr double kMaxRho = 0.999;

  /// Clamps sigma and rho into their legal ranges in place. The slot
  /// overload touches only that slot's parameters, so concurrent readers
  /// of *other* slots never observe a write.
  void ClampParameters();
  void ClampParameters(int slot);

  /// Shape/invariant validation: finite values, sigma > 0, rho in [0, 1].
  util::Status Validate() const;

 private:
  size_t NodeIndex(int slot, graph::RoadId road) const {
    return static_cast<size_t>(slot) * static_cast<size_t>(num_roads_) +
           static_cast<size_t>(road);
  }
  size_t EdgeIndex(int slot, graph::EdgeId edge) const {
    return static_cast<size_t>(slot) * static_cast<size_t>(num_edges_) +
           static_cast<size_t>(edge);
  }

  friend class RtfSerializer;

  const graph::Graph* graph_ = nullptr;
  int num_slots_ = 0;
  int num_roads_ = 0;
  int num_edges_ = 0;
  std::vector<double> mu_;
  std::vector<double> sigma_;
  std::vector<double> rho_;
};

}  // namespace crowdrtse::rtf

#endif  // CROWDRTSE_RTF_RTF_MODEL_H_
