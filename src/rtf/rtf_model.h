#ifndef CROWDRTSE_RTF_RTF_MODEL_H_
#define CROWDRTSE_RTF_RTF_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "traffic/time_slots.h"
#include "util/status.h"

namespace crowdrtse::rtf {

/// Ceiling for 1/sigma^2 and 1/sigma_ij^2 in the GSP weights (paper
/// Eq. 18). A degenerate parameter (sigma = 0, or a NaN smuggled past
/// validation) would otherwise turn one weight into inf/NaN and poison
/// every speed it propagates into. For legally clamped parameters
/// (sigma >= RtfModel::kMinSigma = 1e-3) the true inverse is <= 1e6, so
/// the ceiling never fires and bit-identity with the unguarded formula
/// holds.
constexpr double kMaxInvVariance = 1e12;

/// 1/variance with non-finite and oversized results clamped to
/// kMaxInvVariance. NaN input also lands on the ceiling (the comparison
/// fails). Bumps *clamp_count on clamp; callers batch the local count
/// into InvVarianceClampCount() so hot loops pay no atomic per element.
inline double ClampedInvVariance(double variance, uint64_t* clamp_count) {
  const double inv = 1.0 / variance;
  if (inv <= kMaxInvVariance) return inv;
  ++*clamp_count;
  return kMaxInvVariance;
}

/// Process-wide count of inverse-variance clamps. Exposed as a metrics
/// gauge by the serving layer; a non-zero value means degenerate RTF
/// parameters reached the GSP hot path.
uint64_t InvVarianceClampCount();

/// Folds a batch of locally-counted clamps into InvVarianceClampCount().
void AddInvVarianceClamps(uint64_t n);

/// Realtime Traffic-speed Field: the Gaussian Markov Random Field of paper
/// §IV. For every road i and time slot t it stores the periodic expectation
/// mu_i^t and intensity-of-periodicity sigma_i^t; for every adjacent pair
/// (i, j) it stores the correlation coefficient rho_ij^t in [0, 1] (the edge
/// weight of G^t).
///
/// Derived pairwise quantities (paper Eq. 2):
///   mu_ij^t    = mu_i^t - mu_j^t
///   sigma_ij^2 = sigma_i^2 + sigma_j^2 - 2 rho_ij sigma_i sigma_j
///
/// Storage is slot-major flat arrays so that one query slot's parameters are
/// contiguous.
class RtfModel {
 public:
  /// One slot's parameters in structure-of-arrays form, precomputed for the
  /// GSP update (paper Eq. 18). Node arrays are road-indexed; pair arrays
  /// are indexed by CSR adjacency position (Graph::Adjacencies()), so the
  /// half-edge at position k of road r's row carries the parameters of
  /// r -> Adjacencies()[k].neighbor. Inverses are pre-divided and clamped
  /// (ClampedInvVariance), so the sweep kernel runs multiply-add only.
  struct SlotSoa {
    std::vector<double> inv_var;      // per road: 1 / sigma_i^2
    std::vector<double> mu_inv_var;   // per road: mu_i / sigma_i^2
    std::vector<double> pair_inv_var; // per half-edge: 1 / sigma_ij^2
    std::vector<double> pair_mean;    // per half-edge: mu_i - mu_j
    /// Per road: the Eq. (18) denominator 1/sigma_i^2 + sum_j 1/sigma_ij^2,
    /// folded left-to-right in adjacency order — the value (bit for bit)
    /// the scalar sweep would accumulate. The denominator depends on the
    /// slot parameters only, never on the speeds, so precomputing it drops
    /// one add per neighbour per sweep from every kernel.
    std::vector<double> inv_var_sum;
    /// Per road: mu_i/sigma_i^2 + sum_j mu_ij/sigma_ij^2, the speed-
    /// independent part of the Eq. (18) numerator (same fold order). The
    /// vectorised kernels accumulate only sum_j v_j/sigma_ij^2 on top of
    /// this base — a documented <= 1e-12 reassociation of the scalar
    /// numerator (the scalar kernel keeps the per-neighbour form and stays
    /// bit-identical to the reference).
    std::vector<double> num_base;
  };

  RtfModel();
  ~RtfModel();
  RtfModel(const RtfModel& other);
  RtfModel& operator=(const RtfModel& other);
  RtfModel(RtfModel&& other) noexcept;
  RtfModel& operator=(RtfModel&& other) noexcept;

  /// Allocates parameters for `num_slots` slots over `graph`'s roads/edges,
  /// initialised to mu=0, sigma=1, rho=0.5. The graph must outlive the
  /// model.
  RtfModel(const graph::Graph& graph,
           int num_slots = traffic::kSlotsPerDay);

  const graph::Graph& graph() const { return *graph_; }
  int num_slots() const { return num_slots_; }
  int num_roads() const { return num_roads_; }
  int num_edges() const { return num_edges_; }

  double Mu(int slot, graph::RoadId road) const {
    return mu_[NodeIndex(slot, road)];
  }
  double Sigma(int slot, graph::RoadId road) const {
    return sigma_[NodeIndex(slot, road)];
  }
  double Rho(int slot, graph::EdgeId edge) const {
    return rho_[EdgeIndex(slot, edge)];
  }

  void SetMu(int slot, graph::RoadId road, double value) {
    mu_[NodeIndex(slot, road)] = value;
    MarkSlotDirty(slot);
  }
  void SetSigma(int slot, graph::RoadId road, double value) {
    sigma_[NodeIndex(slot, road)] = value;
    MarkSlotDirty(slot);
  }
  void SetRho(int slot, graph::EdgeId edge, double value) {
    rho_[EdgeIndex(slot, edge)] = value;
    MarkSlotDirty(slot);
  }

  /// The slot's parameters in SoA form, built lazily and cached until a
  /// Set*/Clamp* touches the slot. Safe for concurrent readers of the same
  /// slot (per-slot mutex on rebuild); the library-wide contract that a
  /// slot is never written while being read (CCD refinement holds a lock)
  /// covers the writer side, as with the scalar accessors.
  const SlotSoa& Soa(int slot) const;

  /// mu_ij^t for the ordered pair (i, j): Mu(i) - Mu(j).
  double PairMean(int slot, graph::RoadId i, graph::RoadId j) const {
    return Mu(slot, i) - Mu(slot, j);
  }

  /// sigma_ij^2 for edge e (symmetric in the endpoints). Floored at a small
  /// positive value: rho -> 1 with sigma_i == sigma_j would otherwise send
  /// the GSP weights to infinity.
  double PairVariance(int slot, graph::EdgeId edge) const;

  /// Contiguous per-slot views (road- or edge-indexed).
  const double* MuSlot(int slot) const {
    return mu_.data() + static_cast<size_t>(slot) *
                            static_cast<size_t>(num_roads_);
  }
  const double* SigmaSlot(int slot) const {
    return sigma_.data() + static_cast<size_t>(slot) *
                               static_cast<size_t>(num_roads_);
  }
  const double* RhoSlot(int slot) const {
    return rho_.data() + static_cast<size_t>(slot) *
                             static_cast<size_t>(num_edges_);
  }

  /// Numeric floors applied across the library.
  static constexpr double kMinSigma = 1e-3;
  static constexpr double kMinPairVariance = 1e-6;
  static constexpr double kMinRho = 1e-3;
  static constexpr double kMaxRho = 0.999;

  /// Clamps sigma and rho into their legal ranges in place. The slot
  /// overload touches only that slot's parameters, so concurrent readers
  /// of *other* slots never observe a write.
  void ClampParameters();
  void ClampParameters(int slot);

  /// Shape/invariant validation: finite values, sigma > 0, rho in [0, 1].
  util::Status Validate() const;

 private:
  struct SoaCache;  // per-slot entries; defined in rtf_model.cc

  size_t NodeIndex(int slot, graph::RoadId road) const {
    return static_cast<size_t>(slot) * static_cast<size_t>(num_roads_) +
           static_cast<size_t>(road);
  }
  size_t EdgeIndex(int slot, graph::EdgeId edge) const {
    return static_cast<size_t>(slot) * static_cast<size_t>(num_edges_) +
           static_cast<size_t>(edge);
  }

  void MarkSlotDirty(int slot);
  void MarkAllSlotsDirty();
  void BuildSoa(int slot, SlotSoa& out) const;

  friend class RtfSerializer;

  const graph::Graph* graph_ = nullptr;
  int num_slots_ = 0;
  int num_roads_ = 0;
  int num_edges_ = 0;
  std::vector<double> mu_;
  std::vector<double> sigma_;
  std::vector<double> rho_;
  // All entries start dirty, so direct writes to the vectors above by the
  // serializer (a friend) are picked up on the first Soa() call. Copies get
  // a fresh all-dirty cache.
  std::unique_ptr<SoaCache> soa_cache_;
};

}  // namespace crowdrtse::rtf

#endif  // CROWDRTSE_RTF_RTF_MODEL_H_
