#ifndef CROWDRTSE_RTF_CCD_TRAINER_H_
#define CROWDRTSE_RTF_CCD_TRAINER_H_

#include <vector>

#include "graph/graph.h"
#include "rtf/rtf_model.h"
#include "traffic/history_store.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace crowdrtse::rtf {

/// Options for the cyclic-coordinate-descent trainer (paper Alg. 1).
struct CcdOptions {
  /// Gradient-ascent step size (the paper's lambda; Fig. 5 fixes 0.1).
  double learning_rate = 0.1;
  int max_iterations = 500;
  /// Converged when the largest |dL/dmu| falls below this (the paper's
  /// Fig. 5 convergence measure: "{mu}_R's maximum gradient").
  double mu_gradient_tolerance = 1e-2;
  /// Which parameter groups the sweeps update. Fig. 5 reproduces the
  /// mu-only vanilla-gradient-descent setting by disabling sigma/rho.
  bool update_mu = true;
  bool update_sigma = true;
  bool update_rho = true;
  /// The paper's Eq. (5) omits the Gaussian log-normaliser, which makes the
  /// "likelihood" unbounded in sigma (inflating sigma always helps). We
  /// restore the -D log sigma^2 terms by default so the optimisation is
  /// well-posed; disable to follow the paper's formula literally (only
  /// sensible with update_sigma = update_rho = false).
  bool use_normalized_likelihood = true;
  /// Record the max-|dL/dmu| trajectory (for convergence plots).
  bool record_gradient_history = false;
};

/// Outcome of training one slot.
struct CcdReport {
  int iterations = 0;
  bool converged = false;
  double final_max_mu_gradient = 0.0;
  double final_log_likelihood = 0.0;
  std::vector<double> mu_gradient_history;  // filled if requested
};

/// Trainer for RTF parameters by coordinate-wise gradient ascent over the
/// joint likelihood of paper Eq. (5), one time slot at a time. Sufficient
/// statistics (per-road and per-edge first/second moments of the historical
/// speeds) are precomputed so every coordinate step is O(degree).
class CcdTrainer {
 public:
  /// The graph and history must outlive the trainer; history must cover the
  /// graph's roads.
  CcdTrainer(const graph::Graph& graph,
             const traffic::HistoryStore& history, CcdOptions options);

  const CcdOptions& options() const { return options_; }

  /// Runs CCD sweeps on `model`'s parameters for `slot`, in place, starting
  /// from the model's current values. Returns convergence diagnostics.
  util::Result<CcdReport> TrainSlot(RtfModel& model, int slot) const;

  /// Trains several slots, optionally in parallel: different slots touch
  /// disjoint parameter ranges of the model, so they can run concurrently
  /// on `pool` (nullptr = sequential). Reports come back aligned with
  /// `slots`; fails fast on invalid slots before any training starts.
  util::Result<std::vector<CcdReport>> TrainSlots(
      RtfModel& model, const std::vector<int>& slots,
      util::ThreadPool* pool = nullptr) const;

  /// Joint log-likelihood of `slot` under the model (Eq. 5, with the
  /// normaliser per `use_normalized_likelihood`). Exposed for tests: each
  /// accepted CCD step must not decrease this.
  double LogLikelihood(const RtfModel& model, int slot) const;

  /// Largest |dL/dmu_i| at the model's current parameters for `slot`.
  double MaxMuGradient(const RtfModel& model, int slot) const;

 private:
  struct SlotStats {
    // Node moments: sum_d v_i and sum_d v_i^2.
    std::vector<double> sum_v;
    std::vector<double> sum_vv;
    // Edge moments for (i, j) = EdgeEndpoints(e), oriented i - j:
    // sum_d (v_i - v_j) and sum_d (v_i - v_j)^2.
    std::vector<double> sum_d;
    std::vector<double> sum_dd;
    int num_days = 0;
  };

  SlotStats ComputeStats(int slot) const;

  double MuGradient(const RtfModel& model, int slot, const SlotStats& stats,
                    graph::RoadId i) const;
  double SigmaGradient(const RtfModel& model, int slot,
                       const SlotStats& stats, graph::RoadId i) const;
  double RhoGradient(const RtfModel& model, int slot, const SlotStats& stats,
                     graph::EdgeId e) const;

  const graph::Graph& graph_;
  const traffic::HistoryStore& history_;
  CcdOptions options_;
};

}  // namespace crowdrtse::rtf

#endif  // CROWDRTSE_RTF_CCD_TRAINER_H_
