#include "rtf/ccd_trainer.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

namespace crowdrtse::rtf {

namespace {

// A_i = sum_d (v_i^d - mu_i)^2 from precomputed moments.
double NodeResidualSq(double sum_v, double sum_vv, double mu, int days) {
  return sum_vv - 2.0 * mu * sum_v + static_cast<double>(days) * mu * mu;
}

// B_e = sum_d ((v_i - v_j) - mu_ij)^2, orientation-independent.
double EdgeResidualSq(double sum_d, double sum_dd, double mu_ij, int days) {
  return sum_dd - 2.0 * mu_ij * sum_d +
         static_cast<double>(days) * mu_ij * mu_ij;
}

}  // namespace

CcdTrainer::CcdTrainer(const graph::Graph& graph,
                       const traffic::HistoryStore& history,
                       CcdOptions options)
    : graph_(graph), history_(history), options_(options) {}

CcdTrainer::SlotStats CcdTrainer::ComputeStats(int slot) const {
  SlotStats stats;
  const int n = graph_.num_roads();
  const int m = graph_.num_edges();
  stats.num_days = history_.num_days();
  stats.sum_v.assign(static_cast<size_t>(n), 0.0);
  stats.sum_vv.assign(static_cast<size_t>(n), 0.0);
  stats.sum_d.assign(static_cast<size_t>(m), 0.0);
  stats.sum_dd.assign(static_cast<size_t>(m), 0.0);
  for (int day = 0; day < stats.num_days; ++day) {
    for (graph::RoadId r = 0; r < n; ++r) {
      const double v = history_.At(day, slot, r);
      stats.sum_v[static_cast<size_t>(r)] += v;
      stats.sum_vv[static_cast<size_t>(r)] += v * v;
    }
    for (graph::EdgeId e = 0; e < m; ++e) {
      const auto [i, j] = graph_.EdgeEndpoints(e);
      const double d = history_.At(day, slot, i) - history_.At(day, slot, j);
      stats.sum_d[static_cast<size_t>(e)] += d;
      stats.sum_dd[static_cast<size_t>(e)] += d * d;
    }
  }
  return stats;
}

double CcdTrainer::LogLikelihood(const RtfModel& model, int slot) const {
  const SlotStats stats = ComputeStats(slot);
  const int days = stats.num_days;
  double ll = 0.0;
  for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
    const double mu = model.Mu(slot, r);
    const double sigma = model.Sigma(slot, r);
    const double a = NodeResidualSq(stats.sum_v[static_cast<size_t>(r)],
                                    stats.sum_vv[static_cast<size_t>(r)],
                                    mu, days);
    ll -= a / (sigma * sigma);
    if (options_.use_normalized_likelihood) {
      ll -= static_cast<double>(days) * std::log(sigma * sigma);
    }
  }
  for (graph::EdgeId e = 0; e < graph_.num_edges(); ++e) {
    const auto [i, j] = graph_.EdgeEndpoints(e);
    const double mu_ij = model.PairMean(slot, i, j);
    const double u = model.PairVariance(slot, e);
    const double b = EdgeResidualSq(stats.sum_d[static_cast<size_t>(e)],
                                    stats.sum_dd[static_cast<size_t>(e)],
                                    mu_ij, days);
    // The edge term appears in both endpoints' neighbour sums in Eq. (5).
    ll -= 2.0 * b / u;
    if (options_.use_normalized_likelihood) {
      ll -= 2.0 * static_cast<double>(days) * std::log(u);
    }
  }
  return ll;
}

double CcdTrainer::MuGradient(const RtfModel& model, int slot,
                              const SlotStats& stats, graph::RoadId i) const {
  const int days = stats.num_days;
  const double sigma_i = model.Sigma(slot, i);
  // Node term: d/dmu_i [-(sum_d (v-mu)^2)/sigma^2] = 2 R_i / sigma^2.
  const double residual_sum = stats.sum_v[static_cast<size_t>(i)] -
                              static_cast<double>(days) * model.Mu(slot, i);
  double grad = 2.0 * residual_sum / (sigma_i * sigma_i);
  // Pairwise terms (each edge counted twice in Eq. 5).
  for (const graph::Adjacency& adj : graph_.Neighbors(i)) {
    const auto [a, b] = graph_.EdgeEndpoints(adj.edge);
    // Orient the stored difference moments as i -> neighbour.
    const double oriented_sum = (a == i)
                                    ? stats.sum_d[static_cast<size_t>(adj.edge)]
                                    : -stats.sum_d[static_cast<size_t>(adj.edge)];
    const double mu_ij = model.PairMean(slot, i, adj.neighbor);
    const double s_ij = oriented_sum - static_cast<double>(days) * mu_ij;
    grad += 4.0 * s_ij / model.PairVariance(slot, adj.edge);
  }
  return grad;
}

double CcdTrainer::SigmaGradient(const RtfModel& model, int slot,
                                 const SlotStats& stats,
                                 graph::RoadId i) const {
  const int days = stats.num_days;
  const double sigma_i = model.Sigma(slot, i);
  const double mu_i = model.Mu(slot, i);
  const double a = NodeResidualSq(stats.sum_v[static_cast<size_t>(i)],
                                  stats.sum_vv[static_cast<size_t>(i)],
                                  mu_i, days);
  double grad = 2.0 * a / (sigma_i * sigma_i * sigma_i);
  if (options_.use_normalized_likelihood) {
    grad -= 2.0 * static_cast<double>(days) / sigma_i;
  }
  for (const graph::Adjacency& adj : graph_.Neighbors(i)) {
    const double mu_ij = model.PairMean(slot, i, adj.neighbor);
    const double b = EdgeResidualSq(stats.sum_d[static_cast<size_t>(adj.edge)],
                                    stats.sum_dd[static_cast<size_t>(adj.edge)],
                                    // orientation cancels in the square
                                    (graph_.EdgeEndpoints(adj.edge).first == i)
                                        ? mu_ij
                                        : -mu_ij,
                                    days);
    const double u = model.PairVariance(slot, adj.edge);
    const double sigma_j = model.Sigma(slot, adj.neighbor);
    const double rho = model.Rho(slot, adj.edge);
    const double du_dsigma = 2.0 * sigma_i - 2.0 * rho * sigma_j;
    double factor = b / (u * u);
    if (options_.use_normalized_likelihood) {
      factor -= static_cast<double>(days) / u;
    }
    grad += 2.0 * factor * du_dsigma;
  }
  return grad;
}

double CcdTrainer::RhoGradient(const RtfModel& model, int slot,
                               const SlotStats& stats,
                               graph::EdgeId e) const {
  const int days = stats.num_days;
  const auto [i, j] = graph_.EdgeEndpoints(e);
  const double mu_ij = model.PairMean(slot, i, j);
  const double b = EdgeResidualSq(stats.sum_d[static_cast<size_t>(e)],
                                  stats.sum_dd[static_cast<size_t>(e)],
                                  mu_ij, days);
  const double u = model.PairVariance(slot, e);
  const double sigma_i = model.Sigma(slot, i);
  const double sigma_j = model.Sigma(slot, j);
  double factor = b / (u * u);
  if (options_.use_normalized_likelihood) {
    factor -= static_cast<double>(days) / u;
  }
  // du/drho = -2 sigma_i sigma_j; the edge term is counted twice in Eq. 5.
  return 2.0 * factor * (-2.0 * sigma_i * sigma_j);
}

double CcdTrainer::MaxMuGradient(const RtfModel& model, int slot) const {
  const SlotStats stats = ComputeStats(slot);
  double max_grad = 0.0;
  for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
    max_grad = std::max(max_grad,
                        std::fabs(MuGradient(model, slot, stats, r)));
  }
  return max_grad;
}

util::Result<CcdReport> CcdTrainer::TrainSlot(RtfModel& model,
                                              int slot) const {
  if (slot < 0 || slot >= model.num_slots() ||
      slot >= history_.num_slots()) {
    return util::Status::OutOfRange("slot out of range: " +
                                    std::to_string(slot));
  }
  if (history_.num_roads() != graph_.num_roads()) {
    return util::Status::InvalidArgument(
        "history road count does not match the graph");
  }
  if (options_.learning_rate <= 0.0) {
    return util::Status::InvalidArgument("learning_rate must be positive");
  }

  const SlotStats stats = ComputeStats(slot);
  const int days = stats.num_days;
  CcdReport report;
  // Normalise the step by the data scale so lambda = 0.1 behaves the same
  // for 2-day and 90-day histories (gradients scale linearly with D).
  const double step = options_.learning_rate / static_cast<double>(days);

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    double max_mu_grad = 0.0;
    if (options_.update_mu) {
      for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
        const double grad = MuGradient(model, slot, stats, r);
        max_mu_grad = std::max(max_mu_grad, std::fabs(grad));
        model.SetMu(slot, r, model.Mu(slot, r) + step * grad);
      }
    } else {
      max_mu_grad = 0.0;
      for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
        max_mu_grad = std::max(
            max_mu_grad, std::fabs(MuGradient(model, slot, stats, r)));
      }
    }
    if (options_.update_sigma) {
      for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
        const double grad = SigmaGradient(model, slot, stats, r);
        const double updated = model.Sigma(slot, r) + step * grad;
        model.SetSigma(slot, r, std::max(updated, RtfModel::kMinSigma));
      }
    }
    if (options_.update_rho) {
      for (graph::EdgeId e = 0; e < graph_.num_edges(); ++e) {
        const double grad = RhoGradient(model, slot, stats, e);
        const double updated = model.Rho(slot, e) + step * grad;
        model.SetRho(slot, e,
                     std::clamp(updated, RtfModel::kMinRho,
                                RtfModel::kMaxRho));
      }
    }
    report.iterations = iter + 1;
    if (options_.record_gradient_history) {
      report.mu_gradient_history.push_back(max_mu_grad);
    }
    // Convergence on the per-day-normalised mu gradient (Fig. 5 metric).
    report.final_max_mu_gradient = max_mu_grad / static_cast<double>(days);
    if (report.final_max_mu_gradient < options_.mu_gradient_tolerance) {
      report.converged = true;
      break;
    }
  }
  report.final_log_likelihood = LogLikelihood(model, slot);
  return report;
}

util::Result<std::vector<CcdReport>> CcdTrainer::TrainSlots(
    RtfModel& model, const std::vector<int>& slots,
    util::ThreadPool* pool) const {
  std::set<int> seen;
  for (int slot : slots) {
    if (slot < 0 || slot >= model.num_slots() ||
        slot >= history_.num_slots()) {
      return util::Status::OutOfRange("slot out of range: " +
                                      std::to_string(slot));
    }
    if (!seen.insert(slot).second) {
      // Duplicate slots would race when trained in parallel.
      return util::Status::InvalidArgument("duplicate slot: " +
                                           std::to_string(slot));
    }
  }
  std::vector<CcdReport> reports(slots.size());
  std::vector<util::Status> statuses(slots.size());
  const auto train_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      util::Result<CcdReport> report = TrainSlot(model, slots[i]);
      if (report.ok()) {
        reports[i] = std::move(*report);
      } else {
        statuses[i] = report.status();
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(slots.size(), train_range);
  } else {
    train_range(0, slots.size());
  }
  for (const util::Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return reports;
}

}  // namespace crowdrtse::rtf
