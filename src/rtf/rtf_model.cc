#include "rtf/rtf_model.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace crowdrtse::rtf {

RtfModel::RtfModel(const graph::Graph& graph, int num_slots)
    : graph_(&graph),
      num_slots_(num_slots),
      num_roads_(graph.num_roads()),
      num_edges_(graph.num_edges()),
      mu_(static_cast<size_t>(num_slots) * static_cast<size_t>(num_roads_),
          0.0),
      sigma_(static_cast<size_t>(num_slots) * static_cast<size_t>(num_roads_),
             1.0),
      rho_(static_cast<size_t>(num_slots) * static_cast<size_t>(num_edges_),
           0.5) {}

double RtfModel::PairVariance(int slot, graph::EdgeId edge) const {
  const auto [i, j] = graph_->EdgeEndpoints(edge);
  const double si = Sigma(slot, i);
  const double sj = Sigma(slot, j);
  const double rho = Rho(slot, edge);
  const double var = si * si + sj * sj - 2.0 * rho * si * sj;
  return std::max(var, kMinPairVariance);
}

void RtfModel::ClampParameters() {
  for (double& s : sigma_) s = std::max(s, kMinSigma);
  for (double& r : rho_) r = std::clamp(r, kMinRho, kMaxRho);
}

void RtfModel::ClampParameters(int slot) {
  for (graph::RoadId r = 0; r < num_roads_; ++r) {
    const size_t i = NodeIndex(slot, r);
    sigma_[i] = std::max(sigma_[i], kMinSigma);
  }
  for (graph::EdgeId e = 0; e < num_edges_; ++e) {
    const size_t i = EdgeIndex(slot, e);
    rho_[i] = std::clamp(rho_[i], kMinRho, kMaxRho);
  }
}

util::Status RtfModel::Validate() const {
  if (graph_ == nullptr) {
    return util::Status::FailedPrecondition("model has no graph");
  }
  for (size_t i = 0; i < mu_.size(); ++i) {
    if (!std::isfinite(mu_[i])) {
      return util::Status::NumericalError("non-finite mu at index " +
                                          std::to_string(i));
    }
  }
  for (size_t i = 0; i < sigma_.size(); ++i) {
    if (!std::isfinite(sigma_[i]) || sigma_[i] <= 0.0) {
      return util::Status::NumericalError("invalid sigma at index " +
                                          std::to_string(i));
    }
  }
  for (size_t i = 0; i < rho_.size(); ++i) {
    if (!std::isfinite(rho_[i]) || rho_[i] < 0.0 || rho_[i] > 1.0) {
      return util::Status::NumericalError("invalid rho at index " +
                                          std::to_string(i));
    }
  }
  return util::Status::Ok();
}

}  // namespace crowdrtse::rtf
