#include "rtf/rtf_model.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <string>

namespace crowdrtse::rtf {

namespace {
std::atomic<uint64_t> g_inv_variance_clamps{0};
}  // namespace

uint64_t InvVarianceClampCount() {
  return g_inv_variance_clamps.load(std::memory_order_relaxed);
}

void AddInvVarianceClamps(uint64_t n) {
  if (n != 0) g_inv_variance_clamps.fetch_add(n, std::memory_order_relaxed);
}

/// Per-slot SoA entries. `clean` is the fast-path gate: readers take the
/// mutex only when a rebuild is pending. A writer marking the slot dirty
/// concurrently with a reader of the same slot is excluded by the library
/// contract (CCD refinement serialises slot writes against reads), same as
/// for the scalar accessors.
struct RtfModel::SoaCache {
  struct Entry {
    std::mutex mutex;
    std::atomic<bool> clean{false};
    SlotSoa soa;
  };
  std::vector<Entry> entries;

  explicit SoaCache(int num_slots)
      : entries(static_cast<size_t>(num_slots)) {}
};

RtfModel::RtfModel() = default;
RtfModel::~RtfModel() = default;
RtfModel::RtfModel(RtfModel&& other) noexcept = default;
RtfModel& RtfModel::operator=(RtfModel&& other) noexcept = default;

RtfModel::RtfModel(const RtfModel& other)
    : graph_(other.graph_),
      num_slots_(other.num_slots_),
      num_roads_(other.num_roads_),
      num_edges_(other.num_edges_),
      mu_(other.mu_),
      sigma_(other.sigma_),
      rho_(other.rho_),
      soa_cache_(other.graph_ == nullptr
                     ? nullptr
                     : std::make_unique<SoaCache>(other.num_slots_)) {}

RtfModel& RtfModel::operator=(const RtfModel& other) {
  if (this == &other) return *this;
  graph_ = other.graph_;
  num_slots_ = other.num_slots_;
  num_roads_ = other.num_roads_;
  num_edges_ = other.num_edges_;
  mu_ = other.mu_;
  sigma_ = other.sigma_;
  rho_ = other.rho_;
  soa_cache_ = other.graph_ == nullptr
                   ? nullptr
                   : std::make_unique<SoaCache>(other.num_slots_);
  return *this;
}

RtfModel::RtfModel(const graph::Graph& graph, int num_slots)
    : graph_(&graph),
      num_slots_(num_slots),
      num_roads_(graph.num_roads()),
      num_edges_(graph.num_edges()),
      mu_(static_cast<size_t>(num_slots) * static_cast<size_t>(num_roads_),
          0.0),
      sigma_(static_cast<size_t>(num_slots) * static_cast<size_t>(num_roads_),
             1.0),
      rho_(static_cast<size_t>(num_slots) * static_cast<size_t>(num_edges_),
           0.5),
      soa_cache_(std::make_unique<SoaCache>(num_slots)) {}

void RtfModel::MarkSlotDirty(int slot) {
  if (soa_cache_ == nullptr) return;
  soa_cache_->entries[static_cast<size_t>(slot)].clean.store(
      false, std::memory_order_release);
}

void RtfModel::MarkAllSlotsDirty() {
  if (soa_cache_ == nullptr) return;
  for (auto& entry : soa_cache_->entries) {
    entry.clean.store(false, std::memory_order_release);
  }
}

const RtfModel::SlotSoa& RtfModel::Soa(int slot) const {
  SoaCache::Entry& entry =
      soa_cache_->entries[static_cast<size_t>(slot)];
  if (entry.clean.load(std::memory_order_acquire)) return entry.soa;
  std::lock_guard<std::mutex> lock(entry.mutex);
  if (!entry.clean.load(std::memory_order_relaxed)) {
    BuildSoa(slot, entry.soa);
    entry.clean.store(true, std::memory_order_release);
  }
  return entry.soa;
}

void RtfModel::BuildSoa(int slot, SlotSoa& out) const {
  const size_t n = static_cast<size_t>(num_roads_);
  out.inv_var.resize(n);
  out.mu_inv_var.resize(n);
  uint64_t clamps = 0;
  const double* mu = MuSlot(slot);
  const double* sigma = SigmaSlot(slot);
  for (size_t r = 0; r < n; ++r) {
    const double inv = ClampedInvVariance(sigma[r] * sigma[r], &clamps);
    out.inv_var[r] = inv;
    out.mu_inv_var[r] = mu[r] * inv;
  }
  const std::span<const graph::Adjacency> adj = graph_->Adjacencies();
  const std::span<const size_t> offsets = graph_->RowOffsets();
  out.pair_inv_var.resize(adj.size());
  out.pair_mean.resize(adj.size());
  out.inv_var_sum.resize(n);
  out.num_base.resize(n);
  for (graph::RoadId r = 0; r < num_roads_; ++r) {
    const size_t ri = static_cast<size_t>(r);
    const double mu_r = mu[ri];
    // Left-to-right folds in adjacency order: inv_var_sum must equal the
    // scalar sweep's denominator accumulation bit for bit.
    double den = out.inv_var[ri];
    double base = out.mu_inv_var[ri];
    for (size_t k = offsets[ri]; k < offsets[ri + 1]; ++k) {
      const double w =
          ClampedInvVariance(PairVariance(slot, adj[k].edge), &clamps);
      const double m = mu_r - mu[static_cast<size_t>(adj[k].neighbor)];
      out.pair_inv_var[k] = w;
      out.pair_mean[k] = m;
      den += w;
      base += m * w;
    }
    out.inv_var_sum[ri] = den;
    out.num_base[ri] = base;
  }
  AddInvVarianceClamps(clamps);
}

double RtfModel::PairVariance(int slot, graph::EdgeId edge) const {
  const auto [i, j] = graph_->EdgeEndpoints(edge);
  const double si = Sigma(slot, i);
  const double sj = Sigma(slot, j);
  const double rho = Rho(slot, edge);
  const double var = si * si + sj * sj - 2.0 * rho * si * sj;
  return std::max(var, kMinPairVariance);
}

void RtfModel::ClampParameters() {
  for (double& s : sigma_) s = std::max(s, kMinSigma);
  for (double& r : rho_) r = std::clamp(r, kMinRho, kMaxRho);
  MarkAllSlotsDirty();
}

void RtfModel::ClampParameters(int slot) {
  for (graph::RoadId r = 0; r < num_roads_; ++r) {
    const size_t i = NodeIndex(slot, r);
    sigma_[i] = std::max(sigma_[i], kMinSigma);
  }
  for (graph::EdgeId e = 0; e < num_edges_; ++e) {
    const size_t i = EdgeIndex(slot, e);
    rho_[i] = std::clamp(rho_[i], kMinRho, kMaxRho);
  }
  MarkSlotDirty(slot);
}

util::Status RtfModel::Validate() const {
  if (graph_ == nullptr) {
    return util::Status::FailedPrecondition("model has no graph");
  }
  for (size_t i = 0; i < mu_.size(); ++i) {
    if (!std::isfinite(mu_[i])) {
      return util::Status::NumericalError("non-finite mu at index " +
                                          std::to_string(i));
    }
  }
  for (size_t i = 0; i < sigma_.size(); ++i) {
    if (!std::isfinite(sigma_[i]) || sigma_[i] <= 0.0) {
      return util::Status::NumericalError("invalid sigma at index " +
                                          std::to_string(i));
    }
  }
  for (size_t i = 0; i < rho_.size(); ++i) {
    if (!std::isfinite(rho_[i]) || rho_[i] < 0.0 || rho_[i] > 1.0) {
      return util::Status::NumericalError("invalid rho at index " +
                                          std::to_string(i));
    }
  }
  return util::Status::Ok();
}

}  // namespace crowdrtse::rtf
