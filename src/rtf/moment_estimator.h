#ifndef CROWDRTSE_RTF_MOMENT_ESTIMATOR_H_
#define CROWDRTSE_RTF_MOMENT_ESTIMATOR_H_

#include "graph/graph.h"
#include "rtf/rtf_model.h"
#include "traffic/history_store.h"
#include "util/status.h"

namespace crowdrtse::rtf {

/// Options for the closed-form moment estimator.
struct MomentEstimatorOptions {
  /// Pool slots t-w .. t+w (wrapping around midnight) when estimating each
  /// slot's statistics. With ~30 historical days a single slot only has ~30
  /// samples; pooling adjacent five-minute slots sharpens sigma and rho
  /// without blurring the daily profile.
  int slot_window = 1;
  /// Floor for sigma in km/h (a road whose history is perfectly flat still
  /// needs a positive periodicity intensity for the GMRF to be proper).
  double min_sigma = 0.5;
};

/// Closed-form RTF parameter estimation: per (road, slot) sample mean and
/// standard deviation across days, and per (edge, slot) Pearson correlation
/// of the adjacent roads' speeds, clamped into (0, 1).
///
/// This matches the maximum-likelihood stationary point of the paper's
/// Eq. (5) node terms and serves both as the practical default and as the
/// initialiser for the paper's iterative CCD trainer (Alg. 1).
util::Result<RtfModel> EstimateByMoments(
    const graph::Graph& graph, const traffic::HistoryStore& history,
    const MomentEstimatorOptions& options = MomentEstimatorOptions());

}  // namespace crowdrtse::rtf

#endif  // CROWDRTSE_RTF_MOMENT_ESTIMATOR_H_
