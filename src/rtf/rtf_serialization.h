#ifndef CROWDRTSE_RTF_RTF_SERIALIZATION_H_
#define CROWDRTSE_RTF_RTF_SERIALIZATION_H_

#include <string>

#include "rtf/rtf_model.h"
#include "util/status.h"

namespace crowdrtse::rtf {

/// Persists trained RTF models so the offline stage can run once and the
/// online stage can reload the field on startup. Format: magic + version +
/// shape + the three flat parameter arrays, little-endian binary.
class RtfSerializer {
 public:
  /// Serialises `model` to an in-memory buffer.
  static std::string Serialize(const RtfModel& model);

  /// Reconstructs a model over `graph` from `data`; the shape recorded in
  /// the buffer must match the graph.
  static util::Result<RtfModel> Deserialize(const graph::Graph& graph,
                                            const std::string& data);

  static util::Status SaveToFile(const RtfModel& model,
                                 const std::string& path);
  static util::Result<RtfModel> LoadFromFile(const graph::Graph& graph,
                                             const std::string& path);
};

}  // namespace crowdrtse::rtf

#endif  // CROWDRTSE_RTF_RTF_SERIALIZATION_H_
