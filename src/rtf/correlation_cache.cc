#include "rtf/correlation_cache.h"

#include <filesystem>
#include <thread>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/stage_profiler.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/trace.h"

namespace crowdrtse::rtf {

std::string CorrelationCache::StatsSnapshot::ToString() const {
  std::string out =
      "hits=" + std::to_string(hits) + " misses=" + std::to_string(misses) +
      " coalesced=" + std::to_string(coalesced) +
      " warm=" + std::to_string(warm_loads) +
      " evictions=" + std::to_string(evictions) +
      " resident=" + std::to_string(resident_tables) + " tables/" +
      std::to_string(resident_bytes) + " bytes";
  if (patches > 0 || patch_fallbacks > 0) {
    out += " patches=" + std::to_string(patches) + "/" +
           std::to_string(patch_fallbacks) + " fallbacks";
  }
  if (persist_failures > 0) {
    out += " persist_failures=" + std::to_string(persist_failures);
  }
  out += "; compute " + compute_latency.ToString();
  return out;
}

CorrelationCache::CorrelationCache(CorrelationCacheOptions options)
    : options_(std::move(options)) {
  if (options_.num_shards < 1) options_.num_shards = 1;
  shards_ = std::make_unique<Shard[]>(static_cast<size_t>(options_.num_shards));
}

CorrelationCache::~CorrelationCache() { Drain(); }

void CorrelationCache::Drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drained_.wait(lock, [this] { return computes_in_flight_ == 0; });
}

std::shared_ptr<CorrelationCache::Entry> CorrelationCache::EntryFor(
    int slot) {
  Shard& shard = shards_[static_cast<size_t>(slot % options_.num_shards)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::shared_ptr<Entry>& entry = shard.entries[slot];
  if (!entry) entry = std::make_shared<Entry>();
  return entry;
}

util::Result<CorrelationCache::TablePtr> CorrelationCache::GetOrCompute(
    int slot, const ComputeFn& compute) {
  if (slot < 0) {
    return util::Status::OutOfRange("negative slot: " + std::to_string(slot));
  }
  // One span for the whole lookup, however many singleflight/eviction
  // retries it takes; the outcome annotation names the path that won.
  util::trace::Span span("gamma.lookup");
  span.Annotate("slot", static_cast<int64_t>(slot));
  for (;;) {
    std::shared_ptr<Entry> entry = EntryFor(slot);
    std::unique_lock<std::mutex> lock(entry->mutex);
    if (entry->table) {
      hits_.Increment();
      obs::RecordEvent(obs::EventKind::kGammaHit, slot);
      TablePtr table = entry->table;
      lock.unlock();
      Touch(slot);
      span.Annotate("outcome", "hit");
      return table;
    }
    if (entry->computing) {
      // Singleflight: somebody is already computing this slot — wait for
      // their result instead of duplicating ~one Dijkstra per road.
      coalesced_.Increment();
      span.Annotate("coalesced", "true");
      entry->computed.wait(lock, [&] { return !entry->computing; });
      if (entry->table) {
        hits_.Increment();
        obs::RecordEvent(obs::EventKind::kGammaHit, slot);
        TablePtr table = entry->table;
        lock.unlock();
        Touch(slot);
        span.Annotate("outcome", "coalesced_hit");
        return table;
      }
      if (!entry->error.ok()) {
        span.Annotate("outcome", "coalesced_error");
        return entry->error;
      }
      // No table and no error: the computer's result was discarded (an
      // Invalidate raced the compute) or the table was evicted before we
      // woke. Retry the whole lookup — never hand an OK Status to Result.
      lock.unlock();
      continue;
    }
    entry->computing = true;
    entry->error = util::Status::Ok();  // don't leak a prior round's error
    const uint64_t generation = entry->generation;
    lock.unlock();

    // Register with the drain gate for the whole slow path: Drain() (and
    // the destructor) must not tear down the fan-out pool while this
    // compute might still ParallelFor on it. The guard's decrement is the
    // last cache-member access on every exit from this iteration.
    {
      std::lock_guard<std::mutex> drain_lock(drain_mutex_);
      ++computes_in_flight_;
    }
    struct DrainGuard {
      CorrelationCache* cache;
      ~DrainGuard() {
        std::lock_guard<std::mutex> drain_lock(cache->drain_mutex_);
        if (--cache->computes_in_flight_ == 0) cache->drained_.notify_all();
      }
    } drain_guard{this};

    // The slow path runs outside every lock: other slots proceed untouched
    // and same-slot arrivals park on the condition variable above.
    misses_.Increment();
    obs::RecordEvent(obs::EventKind::kGammaMiss, slot);
    TablePtr table = TryLoadPersisted(slot);
    const bool warm_loaded = table != nullptr;
    util::Status error;
    if (!table) {
      obs::StageTimer gamma_stage(obs::Stage::kGammaCompute);
      util::Timer timer;
      util::Result<CorrelationTable> computed = [&] {
        util::ThreadPool* pool = nullptr;
        std::unique_lock<std::mutex> fan_lock(fanout_mutex_,
                                              std::try_to_lock);
        if (fan_lock.owns_lock()) {
          if (!fanout_) {
            int threads = options_.fanout_threads;
            if (threads <= 0) {
              threads = static_cast<int>(std::thread::hardware_concurrency());
            }
            if (threads > 1) {
              fanout_ = std::make_unique<util::ThreadPool>(threads);
            }
          }
          pool = fanout_.get();
        }
        return compute(slot, pool);
      }();
      compute_latency_.Record(timer.ElapsedMillis());
      if (computed.ok()) {
        table = std::make_shared<CorrelationTable>(std::move(*computed));
      } else {
        error = computed.status();
      }
    }

    lock.lock();
    entry->computing = false;
    const bool stale = entry->generation != generation;
    if (!stale) {
      entry->table = table;  // stays null on failure; the next call retries
      entry->error = error;
    }
    entry->computed.notify_all();
    lock.unlock();

    if (stale) {
      // Invalidate ran while we computed (or warm-loaded): the result was
      // built from pre-invalidation state. Discard it — no caching, no
      // persisting — and retry against the fresh parameters.
      span.Annotate("stale_retry", "true");
      continue;
    }
    if (!table) {
      span.Annotate("outcome", "compute_error");
      return error;
    }
    if (warm_loaded) {
      warm_loads_.Increment();
      span.Annotate("outcome", "warm_load");
    } else {
      Persist(slot, *table);
      span.Annotate("outcome", "computed");
    }
    Publish(slot, table);
    return table;
  }
}

void CorrelationCache::Touch(int slot) {
  std::lock_guard<std::mutex> lock(lru_mutex_);
  auto it = lru_index_.find(slot);
  if (it == lru_index_.end()) return;  // evicted in the meantime
  lru_.splice(lru_.begin(), lru_, it->second.position);
}

void CorrelationCache::Publish(int slot, const TablePtr& table) {
  std::vector<int> victims;
  {
    std::lock_guard<std::mutex> lock(lru_mutex_);
    auto it = lru_index_.find(slot);
    if (it != lru_index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.position);
    } else {
      lru_.push_front(slot);
      const std::size_t bytes = table->MemoryBytes();
      lru_index_[slot] = LruNode{lru_.begin(), bytes};
      resident_bytes_ += bytes;
    }
    if (options_.memory_budget_bytes > 0) {
      // Never evict the table just published — with a budget below one
      // table size the cache would otherwise thrash forever.
      while (resident_bytes_ > options_.memory_budget_bytes &&
             lru_.size() > 1 && lru_.back() != slot) {
        const int victim = lru_.back();
        lru_.pop_back();
        resident_bytes_ -= lru_index_[victim].bytes;
        lru_index_.erase(victim);
        victims.push_back(victim);
      }
    }
  }
  // Drop the victims' tables outside the LRU lock; readers holding the
  // shared_ptr keep their copy alive.
  for (int victim : victims) {
    std::shared_ptr<Entry> entry = EntryFor(victim);
    std::lock_guard<std::mutex> lock(entry->mutex);
    entry->table.reset();
    evictions_.Increment();
  }
}

CorrelationCache::PatchOutcome CorrelationCache::PatchInPlace(
    int slot, const PatchFn& patch) {
  if (slot < 0) return PatchOutcome::kInvalidated;
  util::trace::Span span("gamma.patch");
  span.Annotate("slot", static_cast<int64_t>(slot));
  std::shared_ptr<Entry> entry = EntryFor(slot);
  TablePtr current;
  uint64_t my_generation = 0;
  {
    std::unique_lock<std::mutex> lock(entry->mutex);
    // Bump first: the patch reflects a parameter change, so any compute in
    // flight (started against the old parameters) must discard its result
    // exactly as with Invalidate.
    ++entry->generation;
    my_generation = entry->generation;
    if (!entry->table || entry->computing) {
      lock.unlock();
      // Nothing resident to derive from (or someone mid-compute whose
      // result the bump already condemned): plain invalidation.
      patch_fallbacks_.Increment();
      obs::RecordEvent(obs::EventKind::kGammaPatch, slot, 1);
      span.Annotate("outcome", "fallback_invalidate");
      Invalidate(slot);
      return PatchOutcome::kInvalidated;
    }
    current = std::move(entry->table);
    entry->table.reset();
    entry->computing = true;  // concurrent lookups park on the CV
    entry->error = util::Status::Ok();
  }
  // De-account the old table while the patch runs; the successful install
  // below re-publishes with the new size, so LRU byte accounting never
  // drifts when the patched table's footprint differs.
  {
    std::lock_guard<std::mutex> lock(lru_mutex_);
    auto it = lru_index_.find(slot);
    if (it != lru_index_.end()) {
      resident_bytes_ -= it->second.bytes;
      lru_.erase(it->second.position);
      lru_index_.erase(it);
    }
  }

  // The patch runs outside all cache locks, under the drain gate (it may
  // fan out on the shared pool).
  {
    std::lock_guard<std::mutex> drain_lock(drain_mutex_);
    ++computes_in_flight_;
  }
  struct DrainGuard {
    CorrelationCache* cache;
    ~DrainGuard() {
      std::lock_guard<std::mutex> drain_lock(cache->drain_mutex_);
      if (--cache->computes_in_flight_ == 0) cache->drained_.notify_all();
    }
  } drain_guard{this};

  util::Timer timer;
  util::Result<CorrelationTable> patched = [&] {
    util::ThreadPool* pool = nullptr;
    std::unique_lock<std::mutex> fan_lock(fanout_mutex_, std::try_to_lock);
    if (fan_lock.owns_lock()) {
      if (!fanout_) {
        int threads = options_.fanout_threads;
        if (threads <= 0) {
          threads = static_cast<int>(std::thread::hardware_concurrency());
        }
        if (threads > 1) {
          fanout_ = std::make_unique<util::ThreadPool>(threads);
        }
      }
      pool = fanout_.get();
    }
    return patch(*current, pool);
  }();
  compute_latency_.Record(timer.ElapsedMillis());
  current.reset();

  TablePtr table;
  util::Status error;
  if (patched.ok()) {
    table = std::make_shared<CorrelationTable>(std::move(*patched));
  } else {
    error = patched.status();
  }

  bool stale = false;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    entry->computing = false;
    stale = entry->generation != my_generation;
    if (!stale) {
      entry->table = table;  // stays null on failure; next lookup recomputes
      entry->error = error;
    }
    entry->computed.notify_all();
  }
  if (stale) {
    // A concurrent Invalidate (or another patch) superseded this one; its
    // reset already cleared the persisted file. Discard our result.
    patch_fallbacks_.Increment();
    obs::RecordEvent(obs::EventKind::kGammaPatch, slot, 2);
    span.Annotate("outcome", "stale_discard");
    return PatchOutcome::kInvalidated;
  }
  if (!table) {
    // Leave the entry empty: waiters got `error`, the next lookup
    // recomputes from scratch. Drop the stale persisted file so a restart
    // cannot resurrect the pre-patch table.
    patch_fallbacks_.Increment();
    obs::RecordEvent(obs::EventKind::kGammaPatch, slot, 3);
    span.Annotate("outcome", "patch_error");
    const std::string path = PersistPath(slot);
    if (!path.empty()) {
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
    return PatchOutcome::kError;
  }
  patches_.Increment();
  obs::RecordEvent(obs::EventKind::kGammaPatch, slot, 0);
  Persist(slot, *table);
  Publish(slot, table);
  span.Annotate("outcome", "patched");
  return PatchOutcome::kPatched;
}

void CorrelationCache::Invalidate(int slot) {
  if (slot < 0) return;
  std::shared_ptr<Entry> entry = EntryFor(slot);
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    entry->table.reset();
    entry->error = util::Status::Ok();
    // An in-flight compute for this slot (started against the old
    // parameters) sees the bump when it finishes and discards its result.
    ++entry->generation;
  }
  {
    std::lock_guard<std::mutex> lock(lru_mutex_);
    auto it = lru_index_.find(slot);
    if (it != lru_index_.end()) {
      resident_bytes_ -= it->second.bytes;
      lru_.erase(it->second.position);
      lru_index_.erase(it);
    }
  }
  const std::string path = PersistPath(slot);
  if (!path.empty()) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
}

int CorrelationCache::WarmStart(int num_slots) {
  if (options_.persist_dir.empty()) return 0;
  int loaded = 0;
  for (int slot = 0; slot < num_slots; ++slot) {
    if (options_.memory_budget_bytes > 0) {
      std::lock_guard<std::mutex> lock(lru_mutex_);
      if (resident_bytes_ >= options_.memory_budget_bytes) break;
    }
    std::shared_ptr<Entry> entry = EntryFor(slot);
    std::unique_lock<std::mutex> lock(entry->mutex);
    if (entry->table || entry->computing) continue;
    TablePtr table = TryLoadPersisted(slot);
    if (!table) continue;
    entry->table = table;
    lock.unlock();
    warm_loads_.Increment();
    Publish(slot, table);
    ++loaded;
  }
  return loaded;
}

std::string CorrelationCache::PersistPath(int slot) const {
  if (options_.persist_dir.empty()) return "";
  return options_.persist_dir + "/gamma_slot_" + std::to_string(slot) +
         ".bin";
}

CorrelationCache::TablePtr CorrelationCache::TryLoadPersisted(int slot) {
  const std::string path = PersistPath(slot);
  if (path.empty()) return nullptr;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return nullptr;
  util::Result<CorrelationTable> loaded =
      CorrelationTable::LoadFromFile(path);
  if (!loaded.ok()) {
    persist_failures_.Increment();
    CROWDRTSE_LOG(Warning, "discarding persisted Gamma_R " + path + ": " +
                               loaded.status().ToString());
    return nullptr;
  }
  if (options_.expected_num_roads > 0 &&
      loaded->num_roads() != options_.expected_num_roads) {
    persist_failures_.Increment();
    CROWDRTSE_LOG(Warning,
                  "discarding persisted Gamma_R " + path + ": road count " +
                      std::to_string(loaded->num_roads()) +
                      " does not match the network (" +
                      std::to_string(options_.expected_num_roads) + ")");
    return nullptr;
  }
  if (loaded->hop_radius() != options_.expected_hop_radius) {
    persist_failures_.Increment();
    CROWDRTSE_LOG(Warning,
                  "discarding persisted Gamma_R " + path + ": hop radius " +
                      std::to_string(loaded->hop_radius()) +
                      " does not match the configured radius (" +
                      std::to_string(options_.expected_hop_radius) + ")");
    return nullptr;
  }
  return std::make_shared<CorrelationTable>(std::move(*loaded));
}

void CorrelationCache::Persist(int slot, const CorrelationTable& table) {
  const std::string path = PersistPath(slot);
  if (path.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(options_.persist_dir, ec);
  const util::Status saved = table.SaveToFile(path);
  if (!saved.ok()) {
    persist_failures_.Increment();
    CROWDRTSE_LOG(Warning, "failed to persist Gamma_R " + path + ": " +
                               saved.ToString());
  }
}

CorrelationCache::StatsSnapshot CorrelationCache::stats() const {
  StatsSnapshot snapshot;
  snapshot.hits = hits_.value();
  snapshot.misses = misses_.value();
  snapshot.coalesced = coalesced_.value();
  snapshot.evictions = evictions_.value();
  snapshot.warm_loads = warm_loads_.value();
  snapshot.persist_failures = persist_failures_.value();
  snapshot.patches = patches_.value();
  snapshot.patch_fallbacks = patch_fallbacks_.value();
  {
    std::lock_guard<std::mutex> lock(lru_mutex_);
    snapshot.resident_tables = static_cast<int64_t>(lru_.size());
    snapshot.resident_bytes = static_cast<int64_t>(resident_bytes_);
  }
  snapshot.compute_latency = compute_latency_.Snapshot();
  return snapshot;
}

}  // namespace crowdrtse::rtf
